GO ?= go

# Pinned external linter versions. The tools are optional — the build
# container has no network, so `make lint` runs them only when the binary
# is already on PATH (CI installs them at exactly these versions).
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: all build vet test race verify fmt-check lint lint-smoke bench bench-link bench-smoke linkbench-smoke trace-smoke pgo-smoke omd-smoke verify-smoke clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel harness, OM's concurrent analysis, the omd service
# (coalescing, queue, drain), the warm-path caches (stage stores,
# resident program cache, shared pass-memo snapshots), the telemetry
# layer (concurrent span recording, registry snapshots, the flight
# recorder ring), and the verification engine must stay race-clean.
race:
	$(GO) test -race ./internal/harness ./internal/om ./internal/omd \
		./internal/link ./internal/buildcache ./internal/obs ./internal/verify \
		./internal/dataflow

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# lint runs the Go-source linters: go vet, the repo's own nil-tolerant
# receiver convention check over the observability packages, and — when
# installed — staticcheck and govulncheck at the pinned versions above.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/niltolerant ./internal/obs
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck $(STATICCHECK_VERSION) not installed; skipping (CI runs it)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck $(GOVULNCHECK_VERSION) not installed; skipping (CI runs it)"; fi

# lint-smoke is the static-analysis gate on the linker's own output: every
# golden matrix cell of two real benchmarks must come back with zero error
# findings from the whole-program dataflow checks, and the fault-injection
# probe must prove the checks still have teeth (a deliberately broken
# pass run must be caught statically, no simulator, no journal).
lint-smoke:
	$(GO) run ./cmd/omlint -matrix -bench li,compress
	$(GO) run ./cmd/omlint -faultcheck

# bench runs the simulator benchmark suite and records it as
# BENCH_sim.json, embedding the pre-engine baseline so one file shows the
# perf trajectory. Commit the refreshed file when touching the simulator.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSim|BenchmarkFig6Dynamic' \
		-benchtime 2x -count 1 . ./internal/sim \
		| $(GO) run ./cmd/benchjson \
			-baseline results/BENCH_sim_baseline_pr1.json -o BENCH_sim.json
	@cat BENCH_sim.json

# bench-smoke executes every simulator benchmark exactly once so the bench
# suite itself cannot bit-rot; CI runs this on every push.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkSim|BenchmarkFig6Dynamic' \
		-benchtime 1x -count 1 . ./internal/sim

# bench-link runs the incremental warm-path link benchmarks (cold
# decode+merge+link vs relinks through the resident caches) and records
# them, with allocation counts, as BENCH_link.json. Commit the refreshed
# file when touching the warm path.
bench-link:
	$(GO) test -run '^$$' -bench 'BenchmarkLink(Cold|Warm)' \
		-benchmem -benchtime 2s -count 1 . \
		| $(GO) run ./cmd/benchjson -o BENCH_link.json
	@cat BENCH_link.json

# linkbench-smoke keeps the warm-path suite honest on every push: each link
# benchmark runs once, then a command-line -warmcheck link proves a warm
# relink is byte-identical to the cold link that preceded it.
linkbench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkLink(Cold|Warm)' -benchtime 1x -count 1 .
	@dir=$$(mktemp -d); \
	printf 'long g;\nlong add(long a, long b) { return a + b; }\nlong main() { long i; i = 0; while (i < 10) { g = add(g, i); i = i + 1; } return g; }\n' > $$dir/t.tc; \
	$(GO) run ./cmd/tcc -o $$dir/t.o $$dir/t.tc && \
	$(GO) run ./cmd/om -warmcheck -o $$dir/a.out $$dir/t.o; \
	status=$$?; rm -rf $$dir; exit $$status

# trace-smoke proves the decision journal accounts for every candidate
# site on a real benchmark: run one benchmark with tracing, then omtrace
# -check every journal (it fails if any address load, call site, or
# GP-reset pair is missing from the journal).
trace-smoke:
	@dir=$$(mktemp -d); \
	$(GO) run ./cmd/omrepro -bench compress -fig 3 -trace $$dir >/dev/null && \
	$(GO) run ./cmd/omtrace -check $$dir/*.json; \
	status=$$?; rm -rf $$dir; exit $$status

# pgo-smoke closes the profile feedback loop on two call-heavy benchmarks:
# instrument -> profile -> relink with layout -> verify identical output,
# strict (any cycle regression fails), and the layout journal must account
# for every procedure (omtrace -check).
pgo-smoke:
	@dir=$$(mktemp -d); \
	$(GO) run ./cmd/omrepro -fig pgo -bench li,sc -pgostrict -trace $$dir && \
	$(GO) run ./cmd/omtrace -check $$dir/*.pgo.json; \
	status=$$?; rm -rf $$dir; exit $$status

# omd-smoke proves the link service's exactly-one-execution property under
# load: an in-process daemon takes many concurrent identical submissions
# and must collapse them to a single link with byte-identical responses.
omd-smoke:
	$(GO) run ./cmd/omd -loadsmoke -smoke-clients 32

# verify-smoke is the correctness-engine gate: every golden matrix cell of
# two real benchmarks must translation-validate with zero failures, 200
# generated programs must behave identically unoptimized and optimized
# across the quick matrix, and each fuzz target runs 10 seconds from its
# seeded corpus (the minimized crashers in testdata/fuzz also replay as
# plain tests under `make test`). One -fuzz target per invocation — the
# go tool accepts only one fuzzing pattern at a time.
verify-smoke:
	$(GO) run ./cmd/omverify -matrix -bench li,compress
	$(GO) run ./cmd/omverify -diff 200 -seed 1
	$(GO) test -run '^$$' -fuzz '^FuzzObjfileRead$$' -fuzztime 10s ./internal/objfile
	$(GO) test -run '^$$' -fuzz '^FuzzImageRead$$' -fuzztime 10s ./internal/objfile
	$(GO) test -run '^$$' -fuzz '^FuzzLink$$' -fuzztime 10s ./internal/link
	$(GO) test -run '^$$' -fuzz '^FuzzUnmarshalOptions$$' -fuzztime 10s ./internal/om
	$(GO) test -run '^$$' -fuzz '^FuzzProfileRead$$' -fuzztime 10s ./internal/profile

# verify is the tier-1 gate: everything CI runs.
verify: build vet test race fmt-check lint lint-smoke bench-smoke linkbench-smoke trace-smoke pgo-smoke omd-smoke verify-smoke

clean:
	$(GO) clean ./...
