GO ?= go

.PHONY: all build vet test race verify fmt-check bench bench-smoke trace-smoke pgo-smoke omd-smoke clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel harness, OM's concurrent analysis, and the omd service
# (coalescing, queue, drain) must stay race-clean.
race:
	$(GO) test -race ./internal/harness ./internal/om ./internal/omd

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# bench runs the simulator benchmark suite and records it as
# BENCH_sim.json, embedding the pre-engine baseline so one file shows the
# perf trajectory. Commit the refreshed file when touching the simulator.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSim|BenchmarkFig6Dynamic' \
		-benchtime 2x -count 1 . ./internal/sim \
		| $(GO) run ./cmd/benchjson \
			-baseline results/BENCH_sim_baseline_pr1.json -o BENCH_sim.json
	@cat BENCH_sim.json

# bench-smoke executes every simulator benchmark exactly once so the bench
# suite itself cannot bit-rot; CI runs this on every push.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkSim|BenchmarkFig6Dynamic' \
		-benchtime 1x -count 1 . ./internal/sim

# trace-smoke proves the decision journal accounts for every candidate
# site on a real benchmark: run one benchmark with tracing, then omtrace
# -check every journal (it fails if any address load, call site, or
# GP-reset pair is missing from the journal).
trace-smoke:
	@dir=$$(mktemp -d); \
	$(GO) run ./cmd/omrepro -bench compress -fig 3 -trace $$dir >/dev/null && \
	$(GO) run ./cmd/omtrace -check $$dir/*.json; \
	status=$$?; rm -rf $$dir; exit $$status

# pgo-smoke closes the profile feedback loop on two call-heavy benchmarks:
# instrument -> profile -> relink with layout -> verify identical output,
# strict (any cycle regression fails), and the layout journal must account
# for every procedure (omtrace -check).
pgo-smoke:
	@dir=$$(mktemp -d); \
	$(GO) run ./cmd/omrepro -fig pgo -bench li,sc -pgostrict -trace $$dir && \
	$(GO) run ./cmd/omtrace -check $$dir/*.pgo.json; \
	status=$$?; rm -rf $$dir; exit $$status

# omd-smoke proves the link service's exactly-one-execution property under
# load: an in-process daemon takes many concurrent identical submissions
# and must collapse them to a single link with byte-identical responses.
omd-smoke:
	$(GO) run ./cmd/omd -loadsmoke -smoke-clients 32

# verify is the tier-1 gate: everything CI runs.
verify: build vet test race fmt-check bench-smoke trace-smoke pgo-smoke omd-smoke

clean:
	$(GO) clean ./...
