GO ?= go

.PHONY: all build vet test race verify fmt-check clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel harness and OM's concurrent analysis must stay race-clean.
race:
	$(GO) test -race ./internal/harness ./internal/om

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# verify is the tier-1 gate: everything CI runs.
verify: build vet test race fmt-check

clean:
	$(GO) clean ./...
