// Command om is the optimizing linker: it merges object modules, lifts the
// whole program to symbolic form, performs link-time address-calculation
// optimization at the selected level, and writes an executable image.
//
// Usage:
//
//	om [-o a.out] [-level none|simple|full] [-schedule] [-nostdlib]
//	   [-profile file] [-stats] [-trace file] [-verify] [-lint] [-metrics]
//	   [-warmcheck] [-v] file.o...
//
// -warmcheck links the program a second time through the per-procedure warm
// memo and fails unless the replayed image is byte-identical to the first —
// a command-line probe of the incremental pipeline's core invariant.
//
// -lint shadows the link with the static whole-program dataflow analysis:
// the symbolic program is analyzed before and after the optimization
// passes, and the link fails if the passes introduce any error finding the
// input program did not already carry (no simulator, no decision journal —
// purely static).
//
// -verify translation-validates the produced image against the link's own
// decision journal and refuses to write an image any rewrite of which cannot
// be proven sound. With -trace, the om-verify/v1 verdict document is written
// next to the journal as <trace>.verify.json.
//
// -profile enables profile-guided procedure layout from an om-profile/v1
// document (collected with axsim -profileout or om -instrument feedback);
// the profile must match the program being linked — stale procedure names
// fail the link.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/dataflow"
	"repro/internal/harness"
	"repro/internal/link"
	"repro/internal/objfile"
	"repro/internal/obs"
	"repro/internal/om"
	"repro/internal/profile"
	"repro/internal/rtlib"
	"repro/internal/verify"
)

func main() {
	out := flag.String("o", "a.out", "output image file")
	level := flag.String("level", "full", "optimization level: none, simple, or full")
	sched := flag.Bool("schedule", false, "reschedule code after optimizing (full only)")
	nostdlib := flag.Bool("nostdlib", false, "do not link the runtime library")
	shared := flag.String("shared", "", "comma-separated module names to treat as a dynamically-linked shared library")
	profFile := flag.String("profile", "", "om-profile JSON document driving profile-guided procedure layout")
	stats := flag.Bool("stats", false, "print static optimization statistics")
	jobs := flag.Int("j", 0, "max concurrent analysis goroutines (0 = GOMAXPROCS)")
	trace := flag.String("trace", "", "write the decision journal (one event per address load/call/GP-reset) to this file")
	verifyFlag := flag.Bool("verify", false, "translation-validate the image against the decision journal before writing it")
	lint := flag.Bool("lint", false, "statically analyze the program before and after the passes; fail on any new error finding")
	metrics := flag.Bool("metrics", false, "print per-phase timings as JSON on stderr")
	warmcheck := flag.Bool("warmcheck", false, "relink through the warm per-procedure memo and verify the image is byte-identical")
	verbose := flag.Bool("v", false, "print progress")
	flag.Parse()

	// All progress goes through one Logger so -trace/-metrics output and
	// progress lines compose (and tests can swap the sink).
	var logger harness.Logger = harness.LoggerFunc(func(string, ...any) {})
	if *verbose {
		logger = harness.LoggerFunc(func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		})
	}

	var lvl om.Level
	switch *level {
	case "none":
		lvl = om.LevelNone
	case "simple":
		lvl = om.LevelSimple
	case "full":
		lvl = om.LevelFull
	default:
		fmt.Fprintf(os.Stderr, "om: unknown level %q\n", *level)
		os.Exit(2)
	}

	var objs []*objfile.Object
	for _, name := range flag.Args() {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "om:", err)
			os.Exit(1)
		}
		obj, err := objfile.Read(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "om: %s: %v\n", name, err)
			os.Exit(1)
		}
		objs = append(objs, obj)
	}
	if len(objs) == 0 {
		fmt.Fprintln(os.Stderr, "om: no input objects")
		os.Exit(2)
	}
	logger.Logf("om: read %d object modules", len(objs))
	if !*nostdlib {
		lib, err := rtlib.StandardObjects()
		if err != nil {
			fmt.Fprintln(os.Stderr, "om:", err)
			os.Exit(1)
		}
		objs = append(objs, lib...)
		logger.Logf("om: linked runtime library (%d modules total)", len(objs))
	}

	p, err := link.Merge(objs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "om:", err)
		os.Exit(1)
	}
	if *shared != "" {
		p.MarkShared(strings.Split(*shared, ",")...)
	}
	opts := []om.Option{
		om.WithLevel(lvl), om.WithSchedule(*sched), om.WithParallelism(*jobs),
	}
	if *profFile != "" {
		pf, err := os.Open(*profFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "om:", err)
			os.Exit(1)
		}
		prof, err := profile.Read(pf)
		pf.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "om: %s: %v\n", *profFile, err)
			os.Exit(1)
		}
		opts = append(opts, om.WithProfile(prof))
		logger.Logf("om: profile %s: %d procedures, %d call edges",
			*profFile, len(prof.Procs), len(prof.Edges))
	}
	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
		opts = append(opts, om.WithMetrics(reg))
	}
	if *trace != "" || *verifyFlag {
		opts = append(opts, om.WithTrace())
	}
	var memo *om.Memo
	if *warmcheck {
		memo = om.NewMemo(reg)
		opts = append(opts, om.WithMemo(memo))
	}
	lintReports := map[om.ProgStage]*dataflow.Report{}
	if *lint {
		opts = append(opts, om.WithProgObserver(func(stage om.ProgStage, pg *om.Prog, pl *om.Plan) error {
			rep, err := dataflow.AnalyzeProg(pg, pl, string(stage))
			if err != nil {
				return fmt.Errorf("lint %s: %w", stage, err)
			}
			lintReports[stage] = rep
			return nil
		}))
	}
	res, err := om.Run(context.Background(), p, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "om:", err)
		os.Exit(1)
	}
	logger.Logf("om: optimized at %v: %v", lvl, res.Stats)
	if *lint {
		pre, post := lintReports[om.StageLifted], lintReports[om.StageOptimized]
		if pre == nil || post == nil {
			fmt.Fprintln(os.Stderr, "om: lint: analysis stages missing")
			os.Exit(1)
		}
		if regressions := lintRegressions(pre, post); len(regressions) > 0 {
			for _, f := range regressions {
				fmt.Fprintf(os.Stderr, "om: lint: new %s\n", f.String())
			}
			fmt.Fprintf(os.Stderr, "om: lint: the passes introduced %d error finding(s); refusing to write %s\n",
				len(regressions), *out)
			os.Exit(1)
		}
		logger.Logf("om: lint ok (%d pre-pass, %d post-pass sites; %d pre-existing errors)",
			pre.Checked, post.Checked, pre.Errors())
	}
	im := res.Image
	if *verifyFlag {
		doc, err := verify.ValidateImage(im, res.Journal)
		if err == nil {
			err = doc.Err()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "om: verify:", err)
			os.Exit(1)
		}
		logger.Logf("om: verify ok (%d checks)", doc.Checked)
		if *trace != "" {
			vf, err := os.Create(*trace + ".verify.json")
			if err == nil {
				err = verify.Write(vf, doc)
				vf.Close()
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "om: verify:", err)
				os.Exit(1)
			}
			logger.Logf("om: wrote verdicts to %s.verify.json", *trace)
		}
	}
	if memo != nil {
		// The first run populated the memo; a second run over the same
		// program and options must replay it to a byte-identical image —
		// the invariant the incremental warm path is built on.
		warm, err := om.Run(context.Background(), p, opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "om: warmcheck relink:", err)
			os.Exit(1)
		}
		var cold, hot bytes.Buffer
		if err := im.Write(&cold); err == nil {
			err = warm.Image.Write(&hot)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "om: warmcheck:", err)
			os.Exit(1)
		}
		if !bytes.Equal(cold.Bytes(), hot.Bytes()) {
			fmt.Fprintln(os.Stderr, "om: warmcheck: warm relink produced a different image")
			os.Exit(1)
		}
		st := memo.PassStats()
		logger.Logf("om: warmcheck ok (%d pass-memo hits, image byte-identical)", st.Hits)
	}
	if *stats {
		fmt.Fprintln(os.Stderr, res.Stats)
	}
	if *trace != "" {
		tf, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "om:", err)
			os.Exit(1)
		}
		if err := obs.WriteJournal(tf, res.Journal); err != nil {
			fmt.Fprintln(os.Stderr, "om:", err)
			os.Exit(1)
		}
		tf.Close()
		logger.Logf("om: wrote decision journal (%d events) to %s", len(res.Journal.Events), *trace)
	}
	if reg != nil {
		data, err := json.MarshalIndent(reg.Snapshot(), "", "\t")
		if err != nil {
			fmt.Fprintln(os.Stderr, "om:", err)
			os.Exit(1)
		}
		os.Stderr.Write(append(data, '\n'))
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "om:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := im.Write(f); err != nil {
		fmt.Fprintln(os.Stderr, "om:", err)
		os.Exit(1)
	}
	logger.Logf("om: wrote %s", *out)
}

// lintRegressions returns the post-pass error findings absent from the
// pre-pass report, keyed by (check, procedure): errors the passes
// introduced, as opposed to problems the input program already carried.
func lintRegressions(pre, post *dataflow.Report) []dataflow.Finding {
	had := make(map[string]bool)
	for _, f := range pre.Findings {
		if f.Severity == dataflow.SevError {
			had[f.ID+"\x00"+f.Proc] = true
		}
	}
	var out []dataflow.Finding
	for _, f := range post.Findings {
		if f.Severity == dataflow.SevError && !had[f.ID+"\x00"+f.Proc] {
			out = append(out, f)
		}
	}
	return out
}
