// Command om is the optimizing linker: it merges object modules, lifts the
// whole program to symbolic form, performs link-time address-calculation
// optimization at the selected level, and writes an executable image.
//
// Usage:
//
//	om [-o a.out] [-level none|simple|full] [-schedule] [-nostdlib] [-stats] file.o...
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/link"
	"repro/internal/objfile"
	"repro/internal/om"
	"repro/internal/rtlib"
)

func main() {
	out := flag.String("o", "a.out", "output image file")
	level := flag.String("level", "full", "optimization level: none, simple, or full")
	sched := flag.Bool("schedule", false, "reschedule code after optimizing (full only)")
	nostdlib := flag.Bool("nostdlib", false, "do not link the runtime library")
	shared := flag.String("shared", "", "comma-separated module names to treat as a dynamically-linked shared library")
	stats := flag.Bool("stats", false, "print static optimization statistics")
	jobs := flag.Int("j", 0, "max concurrent analysis goroutines (0 = GOMAXPROCS)")
	flag.Parse()

	var lvl om.Level
	switch *level {
	case "none":
		lvl = om.LevelNone
	case "simple":
		lvl = om.LevelSimple
	case "full":
		lvl = om.LevelFull
	default:
		fmt.Fprintf(os.Stderr, "om: unknown level %q\n", *level)
		os.Exit(2)
	}

	var objs []*objfile.Object
	for _, name := range flag.Args() {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "om:", err)
			os.Exit(1)
		}
		obj, err := objfile.Read(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "om: %s: %v\n", name, err)
			os.Exit(1)
		}
		objs = append(objs, obj)
	}
	if len(objs) == 0 {
		fmt.Fprintln(os.Stderr, "om: no input objects")
		os.Exit(2)
	}
	if !*nostdlib {
		lib, err := rtlib.StandardObjects()
		if err != nil {
			fmt.Fprintln(os.Stderr, "om:", err)
			os.Exit(1)
		}
		objs = append(objs, lib...)
	}

	p, err := link.Merge(objs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "om:", err)
		os.Exit(1)
	}
	if *shared != "" {
		p.MarkShared(strings.Split(*shared, ",")...)
	}
	res, err := om.Run(context.Background(), p,
		om.WithLevel(lvl), om.WithSchedule(*sched), om.WithParallelism(*jobs))
	if err != nil {
		fmt.Fprintln(os.Stderr, "om:", err)
		os.Exit(1)
	}
	im := res.Image
	if *stats {
		fmt.Fprintln(os.Stderr, res.Stats)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "om:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := im.Write(f); err != nil {
		fmt.Fprintln(os.Stderr, "om:", err)
		os.Exit(1)
	}
}
