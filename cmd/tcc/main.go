// Command tcc compiles Tiny C source files into a relocatable object module
// (the reproduction's stand-in for the DEC C compiler driver).
//
// Usage:
//
//	tcc [-o out.o] [-unit name] [-interproc] [-noschedule] file.tc...
//
// All named files form one compilation unit; compile files separately for
// the paper's compile-each mode.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/tcc"
)

func main() {
	out := flag.String("o", "a.o", "output object file")
	unit := flag.String("unit", "", "unit (module) name; defaults to the first file's base name")
	interproc := flag.Bool("interproc", false, "enable interprocedural optimization (compile-all style)")
	nosched := flag.Bool("noschedule", false, "disable the compile-time pipeline scheduler")
	gthresh := flag.Int64("G", 0, "optimistic compilation: assume data up to this many bytes is GP-reachable (the linker verifies; 0 = off)")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "tcc: no input files")
		os.Exit(2)
	}
	var sources []tcc.Source
	for _, name := range flag.Args() {
		text, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tcc:", err)
			os.Exit(1)
		}
		sources = append(sources, tcc.Source{Name: name, Text: string(text)})
	}
	unitName := *unit
	if unitName == "" {
		base := filepath.Base(flag.Arg(0))
		unitName = strings.TrimSuffix(base, filepath.Ext(base))
	}
	opts := tcc.DefaultOptions()
	if *interproc {
		opts = tcc.InterprocOptions()
	}
	if *nosched {
		opts.Schedule = false
	}
	opts.OptimisticGP = *gthresh
	obj, err := tcc.Compile(unitName, sources, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcc:", err)
		os.Exit(1)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcc:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := obj.Write(f); err != nil {
		fmt.Fprintln(os.Stderr, "tcc:", err)
		os.Exit(1)
	}
}
