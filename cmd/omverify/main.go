// Command omverify is the correctness gate for the link-time optimizer: it
// translation-validates OM's decision journal against produced images and
// differentially executes generated programs across the option matrix.
//
// Usage:
//
//	omverify -matrix [-bench name,...] [-quick] [-json]
//	omverify -diff N [-seed S] [-json]
//	omverify -image a.out [-journal journal.json] [-json]
//	omverify [-quick] [-nostdlib] [-json] file.o...
//
// -matrix compiles the named benchmarks (default: the full suite) and
// verifies every golden matrix cell — each optimization level with and
// without scheduling, every single-component ablation of OM-full, and
// profile-guided layout — failing if a single rewrite cannot be proven
// sound. -quick restricts the run to the differential runner's smaller cell
// set.
//
// -diff N generates N random programs, links each one unoptimized and
// through every quick cell, and diffs the final architectural state (exit,
// output traps, output bytes, data memory); the optimized images are also
// translation-validated, so one run exercises both pillars.
//
// -image validates an already-linked image: structural checks always, plus
// translation validation when the image's decision journal (om -trace) is
// supplied.
//
// With object file arguments, the objects are linked and verified across
// the matrix cells directly.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/objfile"
	"repro/internal/obs"
	"repro/internal/rtlib"
	benchspec "repro/internal/spec"
	"repro/internal/tcc"
	"repro/internal/verify"
)

func main() {
	matrix := flag.Bool("matrix", false, "verify the golden matrix over built-in benchmarks")
	bench := flag.String("bench", "", "comma-separated benchmark names for -matrix (default: all)")
	quick := flag.Bool("quick", false, "use the quick cell set instead of the full golden matrix")
	diff := flag.Int("diff", 0, "run N differential cases (generated programs, unoptimized vs every quick cell)")
	seed := flag.Int64("seed", 1, "base seed for -diff program generation")
	image := flag.String("image", "", "validate this linked image instead of running the matrix")
	journal := flag.String("journal", "", "decision journal for -image translation validation")
	nostdlib := flag.Bool("nostdlib", false, "do not add the runtime library to object file arguments")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of the text report")
	flag.Parse()

	ctx := context.Background()
	switch {
	case *image != "":
		runImage(*image, *journal, *jsonOut)
	case *diff > 0:
		runDiff(ctx, *diff, *seed, *jsonOut)
	case *matrix:
		runBenchMatrix(ctx, *bench, cells(*quick), *jsonOut)
	case flag.NArg() > 0:
		runObjects(ctx, flag.Args(), *nostdlib, cells(*quick), *jsonOut)
	default:
		fmt.Fprintln(os.Stderr, "usage: omverify -matrix | -diff N | -image a.out | file.o...")
		os.Exit(2)
	}
}

func cells(quick bool) []verify.Cell {
	if quick {
		return verify.QuickCells()
	}
	return verify.MatrixCells()
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "omverify: "+format+"\n", args...)
	os.Exit(1)
}

// runImage validates one linked image: structural checks, plus translation
// validation when its journal is supplied.
func runImage(imgFile, journalFile string, jsonOut bool) {
	f, err := os.Open(imgFile)
	if err != nil {
		fail("%v", err)
	}
	im, err := objfile.ReadImage(f)
	f.Close()
	if err != nil {
		fail("%s: %v", imgFile, err)
	}
	var j *obs.JournalDoc
	if journalFile != "" {
		jf, err := os.Open(journalFile)
		if err != nil {
			fail("%v", err)
		}
		j, err = obs.ReadJournal(jf)
		jf.Close()
		if err != nil {
			fail("%s: %v", journalFile, err)
		}
	}
	doc, err := verify.ValidateImage(im, j)
	if err != nil {
		fail("%s: %v", imgFile, err)
	}
	if jsonOut {
		if err := verify.Write(os.Stdout, doc); err != nil {
			fail("%v", err)
		}
	} else {
		fmt.Printf("%s: %d checks, %d failed\n", imgFile, doc.Checked, doc.Failed)
		for _, v := range doc.Verdicts {
			if !v.OK {
				fmt.Printf("  FAIL %s %s %s [%s]: %s\n", v.Cat, v.Proc, v.Reason, v.Rule, v.Err)
			}
		}
	}
	if doc.Failed > 0 {
		os.Exit(1)
	}
}

// runDiff is the differential-fuzzing mode.
func runDiff(ctx context.Context, cases int, seed int64, jsonOut bool) {
	rep, err := verify.Differential(ctx, verify.DiffOptions{Cases: cases, Seed: seed})
	if err != nil {
		fail("%v", err)
	}
	if jsonOut {
		emitJSON(rep)
	} else {
		fmt.Printf("differential: %d cases, %d runs, %d memory checks, %d mismatches\n",
			rep.Cases, rep.Runs, rep.Checked, len(rep.Mismatches))
		for _, m := range rep.Mismatches {
			fmt.Printf("  FAIL seed=%d cell=%s %s: %s\n", m.Seed, m.Cell, m.Field, m.Detail)
		}
	}
	if len(rep.Mismatches) > 0 {
		os.Exit(1)
	}
}

// runBenchMatrix compiles each named benchmark and verifies it across the
// cell set.
func runBenchMatrix(ctx context.Context, names string, cs []verify.Cell, jsonOut bool) {
	var benches []benchspec.Benchmark
	if names == "" {
		benches = benchspec.All()
	} else {
		for _, n := range strings.Split(names, ",") {
			b, ok := benchspec.ByName(strings.TrimSpace(n))
			if !ok {
				fail("unknown benchmark %q", n)
			}
			benches = append(benches, b)
		}
	}
	lib, err := rtlib.StandardObjects()
	if err != nil {
		fail("%v", err)
	}
	var entries []verify.MatrixEntry
	for _, b := range benches {
		var objs []*objfile.Object
		for _, m := range b.Modules {
			obj, err := tcc.Compile(m.Name, []tcc.Source{m}, tcc.DefaultOptions())
			if err != nil {
				fail("%s: %v", b.Name, err)
			}
			objs = append(objs, obj)
		}
		objs = append(objs, lib...)
		entries = append(entries, verify.RunMatrix(ctx, b.Name, objs, cs)...)
	}
	report(entries, jsonOut)
}

// runObjects verifies already-compiled object files across the cell set.
func runObjects(ctx context.Context, files []string, nostdlib bool, cs []verify.Cell, jsonOut bool) {
	var objs []*objfile.Object
	for _, name := range files {
		f, err := os.Open(name)
		if err != nil {
			fail("%v", err)
		}
		obj, err := objfile.Read(f)
		f.Close()
		if err != nil {
			fail("%s: %v", name, err)
		}
		objs = append(objs, obj)
	}
	if !nostdlib {
		lib, err := rtlib.StandardObjects()
		if err != nil {
			fail("%v", err)
		}
		objs = append(objs, lib...)
	}
	report(verify.RunMatrix(ctx, strings.Join(files, ","), objs, cs), jsonOut)
}

// report renders matrix entries and exits nonzero if any cell failed.
func report(entries []verify.MatrixEntry, jsonOut bool) {
	failed := 0
	for _, e := range entries {
		if e.Failed > 0 || e.Err != "" {
			failed++
		}
	}
	if jsonOut {
		emitJSON(struct {
			Entries []verify.MatrixEntry `json:"entries"`
			Failed  int                  `json:"failed_cells"`
		}{entries, failed})
	} else {
		for _, e := range entries {
			status := "ok"
			if e.Failed > 0 || e.Err != "" {
				status = "FAIL " + e.Err
			}
			fmt.Printf("%-12s %-36s %6d checks  %s\n", e.Label, e.Cell, e.Checked, status)
		}
		fmt.Printf("%d cells, %d failed\n", len(entries), failed)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// emitJSON prints v in the repository's JSON house style (tab-indented,
// trailing newline).
func emitJSON(v any) {
	data, err := json.MarshalIndent(v, "", "\t")
	if err != nil {
		fail("%v", err)
	}
	os.Stdout.Write(append(data, '\n'))
}
