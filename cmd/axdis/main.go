// Command axdis disassembles the text of a relocatable object module or a
// linked executable image.
//
// Usage:
//
//	axdis [-proc name] file.o|a.out
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/axp"
	"repro/internal/objfile"
)

func main() {
	proc := flag.String("proc", "", "disassemble only the named procedure")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: axdis [-proc name] file")
		os.Exit(2)
	}
	name := flag.Arg(0)

	// Try image first, then object.
	if f, err := os.Open(name); err == nil {
		if im, err := objfile.ReadImage(f); err == nil {
			f.Close()
			disImage(im, *proc)
			return
		}
		f.Close()
	}
	f, err := os.Open(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "axdis:", err)
		os.Exit(1)
	}
	obj, err := objfile.Read(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "axdis:", err)
		os.Exit(1)
	}
	disObject(obj, *proc)
}

func disImage(im *objfile.Image, proc string) {
	text := im.TextSegment()
	labels := make(map[uint64]string)
	for _, s := range im.Symbols {
		if s.Kind == objfile.SymProc {
			labels[s.Addr] = s.Name
		}
	}
	if proc == "" {
		fmt.Print(axp.Disassemble(text.Data, text.Addr, labels))
		return
	}
	sym, ok := im.FindSymbol(proc)
	if !ok {
		fmt.Fprintf(os.Stderr, "axdis: no symbol %s\n", proc)
		os.Exit(1)
	}
	lo := sym.Addr - text.Addr
	fmt.Print(axp.Disassemble(text.Data[lo:lo+sym.Size], sym.Addr, labels))
}

func disObject(obj *objfile.Object, proc string) {
	text := obj.Sections[objfile.SecText].Data
	labels := make(map[uint64]string)
	for _, s := range obj.Symbols {
		if s.Kind == objfile.SymProc {
			labels[s.Value] = s.Name
		}
	}
	if proc == "" {
		fmt.Print(axp.Disassemble(text, 0, labels))
		return
	}
	i := obj.FindSymbol(proc)
	if i < 0 || obj.Symbols[i].Kind != objfile.SymProc {
		fmt.Fprintf(os.Stderr, "axdis: no procedure %s\n", proc)
		os.Exit(1)
	}
	s := obj.Symbols[i]
	fmt.Print(axp.Disassemble(text[s.Value:s.End], s.Value, labels))
}
