// Command niltolerant is the standalone runner for the nil-tolerant
// receiver convention check (see internal/analyzers/niltolerant). It is
// what `make verify` runs over the observability packages; when
// golang.org/x/tools is available the analyzer can instead be repackaged
// as a `go vet -vettool` pass, which this command's file:line:col output
// already matches.
//
// Usage:
//
//	niltolerant dir...
//
// Each argument is one package directory (no recursion). Exits 1 if any
// method uses its pointer receiver without a nil guard.
package main

import (
	"fmt"
	"os"

	"repro/internal/analyzers/niltolerant"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: niltolerant dir...")
		os.Exit(2)
	}
	bad := false
	for _, dir := range os.Args[1:] {
		findings, err := niltolerant.CheckDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "niltolerant:", err)
			os.Exit(1)
		}
		for _, f := range findings {
			fmt.Println(f)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}
