// Command omrepro reproduces every table and figure of the paper's
// evaluation: it builds the benchmark suite in compile-each and compile-all
// modes, links each with the standard linker and with OM at every level,
// measures static code properties and simulated execution time, and prints
// the paper-style tables.
//
// Matrix cells run concurrently on a bounded worker pool (-j), and a
// content-addressed build cache (-cache, or the OMREPRO_CACHE environment
// variable) lets repeated runs skip compilation of unchanged sources.
// Results are deterministic: any -j produces identical figures.
//
// Usage:
//
//	omrepro [-fig 3|4|5|6|7|gat|size|all] [-bench name,name,...]
//	        [-j N] [-cache dir|off] [-v]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"

	"repro/internal/buildcache"
	"repro/internal/harness"
)

func main() {
	fig := flag.String("fig", "all", "figure to reproduce: 3, 4, 5, 6, 7, gat, size, ablate, or all")
	benchList := flag.String("bench", "", "comma-separated benchmark subset (default: all 19)")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "max concurrent build/measure jobs")
	cacheDir := flag.String("cache", os.Getenv("OMREPRO_CACHE"),
		"build cache directory ('' = in-memory only, 'off' = disabled; default $OMREPRO_CACHE)")
	verbose := flag.Bool("v", false, "print per-variant progress")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	r, err := harness.NewRunner()
	if err != nil {
		fmt.Fprintln(os.Stderr, "omrepro:", err)
		os.Exit(1)
	}
	r.Parallelism = *jobs
	if *verbose {
		r.Logger = harness.LoggerFunc(func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		})
	}
	if *cacheDir != "off" {
		cache, err := buildcache.New(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "omrepro:", err)
			os.Exit(1)
		}
		r.Cache = cache
	}

	var names []string
	if *benchList != "" {
		names = strings.Split(*benchList, ",")
	}

	if *fig == "ablate" {
		rows, err := r.RunAblations(ctx, names)
		if err != nil {
			fmt.Fprintln(os.Stderr, "omrepro:", err)
			os.Exit(1)
		}
		fmt.Println(harness.AblationTable(rows))
		reportCache(r, *verbose)
		return
	}

	results, err := r.RunSuite(ctx, names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "omrepro:", err)
		os.Exit(1)
	}

	emit := func(name, body string) {
		if *fig == "all" || *fig == name {
			fmt.Println(body)
		}
	}
	emit("3", harness.Figure3(results))
	emit("4", harness.Figure4(results))
	emit("5", harness.Figure5(results))
	emit("6", harness.Figure6(results))
	emit("7", harness.Figure7(results))
	emit("gat", harness.GATTable(results))
	emit("size", harness.CodeSizeTable(results))
	reportCache(r, *verbose)
}

func reportCache(r *harness.Runner, verbose bool) {
	if r.Cache == nil || !verbose {
		return
	}
	st := r.Cache.Stats()
	fmt.Fprintf(os.Stderr, "build cache: %d hits (%d from disk), %d compiles\n",
		st.Hits, st.DiskHits, st.Misses)
}
