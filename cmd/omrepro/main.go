// Command omrepro reproduces every table and figure of the paper's
// evaluation: it builds the benchmark suite in compile-each and compile-all
// modes, links each with the standard linker and with OM at every level,
// measures static code properties and simulated execution time, and prints
// the paper-style tables.
//
// Usage:
//
//	omrepro [-fig 3|4|5|6|7|gat|size|all] [-bench name,name,...] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/harness"
)

func main() {
	fig := flag.String("fig", "all", "figure to reproduce: 3, 4, 5, 6, 7, gat, size, ablate, or all")
	benchList := flag.String("bench", "", "comma-separated benchmark subset (default: all 19)")
	verbose := flag.Bool("v", false, "print per-variant progress")
	flag.Parse()

	r, err := harness.NewRunner()
	if err != nil {
		fmt.Fprintln(os.Stderr, "omrepro:", err)
		os.Exit(1)
	}
	if *verbose {
		r.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	var names []string
	if *benchList != "" {
		names = strings.Split(*benchList, ",")
	}

	if *fig == "ablate" {
		rows, err := r.RunAblations(names)
		if err != nil {
			fmt.Fprintln(os.Stderr, "omrepro:", err)
			os.Exit(1)
		}
		fmt.Println(harness.AblationTable(rows))
		return
	}

	results, err := r.RunSuite(names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "omrepro:", err)
		os.Exit(1)
	}

	emit := func(name, body string) {
		if *fig == "all" || *fig == name {
			fmt.Println(body)
		}
	}
	emit("3", harness.Figure3(results))
	emit("4", harness.Figure4(results))
	emit("5", harness.Figure5(results))
	emit("6", harness.Figure6(results))
	emit("7", harness.Figure7(results))
	emit("gat", harness.GATTable(results))
	emit("size", harness.CodeSizeTable(results))
}
