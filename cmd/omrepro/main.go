// Command omrepro reproduces every table and figure of the paper's
// evaluation: it builds the benchmark suite in compile-each and compile-all
// modes, links each with the standard linker and with OM at every level,
// measures static code properties and simulated execution time, and prints
// the paper-style tables.
//
// Matrix cells run concurrently on a bounded worker pool (-j), and a
// content-addressed build cache (-cache, or the OMREPRO_CACHE environment
// variable) lets repeated runs skip compilation of unchanged sources.
// Results are deterministic: any -j produces identical figures.
//
// With -trace, every OM-linked matrix cell's decision journal is written
// into the given directory (one JSON file per cell, renderable with
// omtrace); -metrics prints phase timings, cache traffic, and worker-pool
// utilization as JSON on stderr.
//
// Usage:
//
//	omrepro [-fig 3|4|5|6|7|gat|size|ablate|pgo|all] [-bench name,name,...]
//	        [-j N] [-cache dir|off] [-trace dir] [-metrics] [-pgostrict] [-v]
//
// -fig pgo runs the profile-guided-layout feedback loop (F-PGO): each
// benchmark is built instrumented, run to collect a call-edge profile, and
// relinked with OM-full plus Pettis-Hansen procedure layout; the table
// reports cycle and I-cache-miss deltas against the OM-full baseline under
// a scaled-down I-cache. With -pgostrict the run fails if layout costs
// cycles anywhere.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/buildcache"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/om"
)

func main() {
	fig := flag.String("fig", "all", "figure to reproduce: 3, 4, 5, 6, 7, gat, size, ablate, pgo, or all")
	benchList := flag.String("bench", "", "comma-separated benchmark subset (default: all 19)")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "max concurrent build/measure jobs")
	cacheDir := flag.String("cache", os.Getenv("OMREPRO_CACHE"),
		"build cache directory ('' = in-memory only, 'off' = disabled; default $OMREPRO_CACHE)")
	traceDir := flag.String("trace", "", "write per-cell decision journals into this directory")
	metrics := flag.Bool("metrics", false, "print phase metrics as JSON on stderr")
	pgoStrict := flag.Bool("pgostrict", false, "with -fig pgo: exit 1 if layout costs cycles on any benchmark")
	verbose := flag.Bool("v", false, "print per-variant progress")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	logger := harness.LoggerFunc(func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	})
	ropts := []harness.RunnerOption{harness.WithParallelism(*jobs)}
	if *verbose {
		ropts = append(ropts, harness.WithLogger(logger))
	}
	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
		ropts = append(ropts, harness.WithMetrics(reg))
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o777); err != nil {
			fmt.Fprintln(os.Stderr, "omrepro:", err)
			os.Exit(1)
		}
		ropts = append(ropts, harness.WithTrace(true))
	}
	if *cacheDir != "off" {
		cache, err := buildcache.New(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "omrepro:", err)
			os.Exit(1)
		}
		ropts = append(ropts, harness.WithCache(cache))
		// Matrix cells relink the same merged modules under different
		// options; the resident program cache and the per-procedure OM memo
		// make every cell after the first a warm relink.
		ropts = append(ropts,
			harness.WithProgramCache(buildcache.NewProgramCache(0, reg)),
			harness.WithMemo(om.NewMemo(reg)))
	}
	r, err := harness.New(ropts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "omrepro:", err)
		os.Exit(1)
	}

	var names []string
	if *benchList != "" {
		names = strings.Split(*benchList, ",")
	}

	if *fig == "pgo" {
		rows, err := r.RunPGO(ctx, names)
		if err != nil {
			fmt.Fprintln(os.Stderr, "omrepro:", err)
			os.Exit(1)
		}
		fmt.Println(harness.PGOTable(rows))
		if *traceDir != "" {
			if err := writePGOJournals(*traceDir, rows, logger); err != nil {
				fmt.Fprintln(os.Stderr, "omrepro:", err)
				os.Exit(1)
			}
		}
		reportCache(r, logger, *verbose)
		reportMetrics(r)
		if bad := harness.PGORegressions(rows); *pgoStrict && len(bad) > 0 {
			fmt.Fprintln(os.Stderr, "omrepro: pgo regressions:", strings.Join(bad, "; "))
			os.Exit(1)
		}
		return
	}

	if *fig == "ablate" {
		rows, err := r.RunAblations(ctx, names)
		if err != nil {
			fmt.Fprintln(os.Stderr, "omrepro:", err)
			os.Exit(1)
		}
		fmt.Println(harness.AblationTable(rows))
		reportCache(r, logger, *verbose)
		reportMetrics(r)
		return
	}

	results, err := r.RunSuite(ctx, names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "omrepro:", err)
		os.Exit(1)
	}

	emit := func(name, body string) {
		if *fig == "all" || *fig == name {
			fmt.Println(body)
		}
	}
	emit("3", harness.Figure3(results))
	emit("4", harness.Figure4(results))
	emit("5", harness.Figure5(results))
	emit("6", harness.Figure6(results))
	emit("7", harness.Figure7(results))
	emit("gat", harness.GATTable(results))
	emit("size", harness.CodeSizeTable(results))
	if *traceDir != "" {
		if err := writeJournals(*traceDir, results, logger); err != nil {
			fmt.Fprintln(os.Stderr, "omrepro:", err)
			os.Exit(1)
		}
	}
	reportCache(r, logger, *verbose)
	reportMetrics(r)
}

// writeJournals stores every cell's decision journal as
// dir/<bench>.<build>.<link>.json, the input format of omtrace.
func writeJournals(dir string, results []*harness.Result, logger harness.Logger) error {
	n := 0
	for _, res := range results {
		for _, v := range harness.AllVariants() {
			m := res.M[v]
			if m == nil || m.Journal == nil {
				continue
			}
			name := fmt.Sprintf("%s.%v.%v.json", res.Name, v.Build, v.Link)
			f, err := os.Create(filepath.Join(dir, name))
			if err != nil {
				return err
			}
			if err := obs.WriteJournal(f, m.Journal); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			n++
		}
	}
	logger.Logf("wrote %d decision journals to %s", n, dir)
	return nil
}

// writePGOJournals stores each benchmark's PGO-link decision journal as
// dir/<bench>.pgo.json, the input format of omtrace.
func writePGOJournals(dir string, rows []harness.PGORow, logger harness.Logger) error {
	n := 0
	for _, row := range rows {
		if row.Journal == nil {
			continue
		}
		f, err := os.Create(filepath.Join(dir, row.Bench+".pgo.json"))
		if err != nil {
			return err
		}
		if err := obs.WriteJournal(f, row.Journal); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		n++
	}
	logger.Logf("wrote %d pgo decision journals to %s", n, dir)
	return nil
}

// reportCache logs build-cache traffic through the runner's progress
// logger, so it composes with -trace/-metrics output.
func reportCache(r *harness.Runner, logger harness.Logger, verbose bool) {
	if r.Cache == nil || !verbose {
		return
	}
	st := r.Cache.Stats()
	logger.Logf("build cache: %d hits (%d from disk), %d compiles",
		st.Hits, st.DiskHits, st.Misses)
}

// reportMetrics prints the metrics snapshot (phase timers, cache counters,
// pool utilization) as JSON on stderr when -metrics is set.
func reportMetrics(r *harness.Runner) {
	if r.Metrics == nil {
		return
	}
	data, err := json.MarshalIndent(r.Metrics.Snapshot(), "", "\t")
	if err != nil {
		fmt.Fprintln(os.Stderr, "omrepro:", err)
		os.Exit(1)
	}
	os.Stderr.Write(append(data, '\n'))
}
