// Command omd runs the link-time optimization service: a resident daemon
// that accepts omd-job/v1 link jobs over HTTP/JSON, executes them on a
// bounded worker pool behind an explicit admission queue, coalesces
// identical in-flight requests into one execution, and keeps the build
// cache warm across requests.
//
// Usage:
//
//	omd [-addr :7333] [-j N] [-queue N] [-timeout 5m] [-cache dir|off] [-v]
//	omd -loadsmoke [-smoke-clients N]
//
// SIGINT/SIGTERM drains gracefully: admissions stop (503), queued and
// running jobs finish, then the process exits; a second signal (or the
// drain timeout) hard-cancels in-flight work.
//
// -loadsmoke is the self-test mode used by `make omd-smoke`: it starts an
// in-process server, fires many concurrent identical submissions at it, and
// exits nonzero unless the batch collapsed to exactly one execution with
// every client receiving identical bytes.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"repro/internal/buildcache"
	"repro/internal/obs"
	"repro/internal/omd"
	"repro/internal/omd/client"
)

type stderrLogger struct{}

func (stderrLogger) Logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

func main() {
	addr := flag.String("addr", ":7333", "listen address")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "max concurrently executing jobs")
	queue := flag.Int("queue", 64, "admission queue depth (excess submissions get 429)")
	timeout := flag.Duration("timeout", 5*time.Minute, "per-job deadline (queue wait + execution)")
	drain := flag.Duration("drain", time.Minute, "graceful shutdown budget before in-flight jobs are canceled")
	cacheDir := flag.String("cache", os.Getenv("OMD_CACHE"),
		"build cache directory ('' = in-memory only, 'off' = disabled; default $OMD_CACHE)")
	verbose := flag.Bool("v", false, "log job progress to stderr")
	loadSmoke := flag.Bool("loadsmoke", false, "run the coalescing load self-test and exit")
	smokeClients := flag.Int("smoke-clients", 32, "with -loadsmoke: concurrent identical submissions")
	flag.Parse()

	cfg := omd.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		JobTimeout: *timeout,
		Metrics:    obs.NewRegistry(),
	}
	if *verbose || *loadSmoke {
		cfg.Logger = stderrLogger{}
	}
	if *cacheDir != "off" {
		cache, err := buildcache.New(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "omd:", err)
			os.Exit(1)
		}
		cfg.Cache = cache
	}
	srv := omd.NewServer(cfg)

	if *loadSmoke {
		if err := runLoadSmoke(srv, *smokeClients); err != nil {
			fmt.Fprintln(os.Stderr, "omd: loadsmoke FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("omd: loadsmoke ok")
		return
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "omd: listening on %s (%d workers, queue %d)\n", *addr, cfg.Workers, *queue)

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "omd:", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "omd: %v: draining (again to force)\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	go func() {
		<-sigc
		cancel()
	}()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "omd:", err)
	}
	cancel()
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	_ = hs.Shutdown(shutCtx)
	fmt.Fprintln(os.Stderr, "omd: drained, exiting")
}

// runLoadSmoke hammers an in-process server with n concurrent identical
// submissions and verifies the exactly-one-execution property: every client
// gets the same image, and the executed-jobs counter reads 1.
func runLoadSmoke(srv *omd.Server, n int) error {
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()
	c := client.New(ts.URL, ts.Client())

	spec := &omd.JobSpec{Version: omd.SpecVersion, Benchmark: "li"}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	images := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := c.SubmitWait(ctx, spec)
			if err != nil {
				errs[i] = err
				return
			}
			if st.State != omd.JobDone {
				errs[i] = fmt.Errorf("job %s: state %s (%s)", st.ID, st.State, st.Error)
				return
			}
			images[i], errs[i] = c.Image(ctx, st.ID)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("client %d: %w", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(images[i], images[0]) {
			return fmt.Errorf("client %d received a different image (%d vs %d bytes)", i, len(images[i]), len(images[0]))
		}
	}
	snap, err := c.Metrics(ctx)
	if err != nil {
		return err
	}
	executed := snap.Counter("omd/jobs-executed")
	coalesced := snap.Counter("omd/coalesce-hits") + snap.Counter("omd/memo-hits")
	if executed != 1 {
		return fmt.Errorf("%d identical submissions ran %d executions, want exactly 1", n, executed)
	}
	if got := executed + coalesced; got != uint64(n) {
		return fmt.Errorf("accounting: executed+coalesced+memo = %d, want %d", got, n)
	}
	fmt.Fprintf(os.Stderr, "omd: loadsmoke: %d clients -> 1 execution (%d coalesced/memo) in %v, image %d bytes\n",
		n, coalesced, time.Since(start), len(images[0]))
	return nil
}
