// Command omd runs the link-time optimization service: a resident daemon
// that accepts omd-job/v1 link jobs over HTTP/JSON, executes them on a
// bounded worker pool behind an explicit admission queue, coalesces
// identical in-flight requests into one execution, and keeps the build
// cache warm across requests.
//
// Usage:
//
//	omd [-addr :7333] [-j N] [-queue N] [-timeout 5m] [-cache dir|off]
//	    [-slow dur] [-flights N] [-verifysample N] [-v]
//	omd -loadsmoke [-smoke-clients N]
//
// -verifysample N shadow-verifies every Nth fresh link: the image is
// translation-validated against its decision journal alongside the job,
// counted in /metrics (omd/verify-*) and visible as a verify span in the
// job trace; a shadow failure never fails the job. Jobs that request
// verification explicitly (JobSpec verify, `omctl submit -verify`) are
// always validated and do fail on a bad verdict.
//
// Every job gets a span-tree trace (GET /jobs/{id}/trace; recent completed
// traces at GET /debug/flights), structured logs correlate by trace id, and
// -slow logs the full span tree of any job slower than the threshold.
//
// SIGINT/SIGTERM drains gracefully: admissions stop (503), queued and
// running jobs finish, then the process exits; a second signal (or the
// drain timeout) hard-cancels in-flight work.
//
// -loadsmoke is the self-test mode used by `make omd-smoke`: it starts an
// in-process server, fires many concurrent identical submissions at it, and
// exits nonzero unless the batch collapsed to exactly one execution with
// every client receiving identical bytes and the executed job's trace
// carrying every lifecycle span.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"repro/internal/buildcache"
	"repro/internal/obs"
	"repro/internal/omd"
	"repro/internal/omd/client"
)

type stderrLogger struct{}

func (stderrLogger) Logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

func main() {
	addr := flag.String("addr", ":7333", "listen address")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "max concurrently executing jobs")
	queue := flag.Int("queue", 64, "admission queue depth (excess submissions get 429)")
	timeout := flag.Duration("timeout", 5*time.Minute, "per-job deadline (queue wait + execution)")
	drain := flag.Duration("drain", time.Minute, "graceful shutdown budget before in-flight jobs are canceled")
	cacheDir := flag.String("cache", os.Getenv("OMD_CACHE"),
		"build cache directory ('' = in-memory only, 'off' = disabled; default $OMD_CACHE)")
	slow := flag.Duration("slow", 30*time.Second, "log the full span tree of jobs slower than this (0 = never)")
	flights := flag.Int("flights", 0, "completed traces retained for /debug/flights (0 = default 128)")
	verifySample := flag.Int("verifysample", 0, "shadow-verify every Nth fresh link (0 = off); failures log + count, never fail the job")
	verbose := flag.Bool("v", false, "log job progress to stderr")
	loadSmoke := flag.Bool("loadsmoke", false, "run the coalescing load self-test and exit")
	smokeClients := flag.Int("smoke-clients", 32, "with -loadsmoke: concurrent identical submissions")
	flag.Parse()

	cfg := omd.Config{
		Workers:            *workers,
		QueueDepth:         *queue,
		JobTimeout:         *timeout,
		Metrics:            obs.NewRegistry(),
		SlowJob:            *slow,
		FlightRecorderSize: *flights,
		VerifySample:       *verifySample,
	}
	if *verbose || *loadSmoke {
		cfg.Logger = stderrLogger{}
		level := slog.LevelInfo
		if *verbose {
			level = slog.LevelDebug
		}
		cfg.Slog = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	}
	if *cacheDir != "off" {
		cache, err := buildcache.New(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "omd:", err)
			os.Exit(1)
		}
		cfg.Cache = cache
	}
	srv := omd.NewServer(cfg)

	if *loadSmoke {
		if err := runLoadSmoke(srv, *smokeClients); err != nil {
			fmt.Fprintln(os.Stderr, "omd: loadsmoke FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("omd: loadsmoke ok")
		return
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "omd: listening on %s (%d workers, queue %d)\n", *addr, cfg.Workers, *queue)

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "omd:", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "omd: %v: draining (again to force)\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	go func() {
		<-sigc
		cancel()
	}()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "omd:", err)
	}
	cancel()
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	_ = hs.Shutdown(shutCtx)
	fmt.Fprintln(os.Stderr, "omd: drained, exiting")
}

// runLoadSmoke hammers an in-process server with n concurrent identical
// submissions and verifies the exactly-one-execution property: every client
// gets the same image, and the executed-jobs counter reads 1.
func runLoadSmoke(srv *omd.Server, n int) error {
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()
	c := client.New(ts.URL, ts.Client())

	spec := &omd.JobSpec{Version: omd.SpecVersion, Benchmark: "li"}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	images := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := c.SubmitWait(ctx, spec)
			if err != nil {
				errs[i] = err
				return
			}
			if st.State != omd.JobDone {
				errs[i] = fmt.Errorf("job %s: state %s (%s)", st.ID, st.State, st.Error)
				return
			}
			images[i], errs[i] = c.Image(ctx, st.ID)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("client %d: %w", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(images[i], images[0]) {
			return fmt.Errorf("client %d received a different image (%d vs %d bytes)", i, len(images[i]), len(images[0]))
		}
	}
	snap, err := c.Metrics(ctx)
	if err != nil {
		return err
	}
	executed := snap.Counter("omd/jobs-executed")
	coalesced := snap.Counter("omd/coalesce-hits") + snap.Counter("omd/memo-hits")
	if executed != 1 {
		return fmt.Errorf("%d identical submissions ran %d executions, want exactly 1", n, executed)
	}
	if got := executed + coalesced; got != uint64(n) {
		return fmt.Errorf("accounting: executed+coalesced+memo = %d, want %d", got, n)
	}
	if err := checkExecutedTrace(ctx, c); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "omd: loadsmoke: %d clients -> 1 execution (%d coalesced/memo) in %v, image %d bytes\n",
		n, coalesced, time.Since(start), len(images[0]))
	return nil
}

// checkExecutedTrace finds the one job that actually executed and verifies
// its span tree is complete: every lifecycle phase present, none with a
// negative duration, and the substantial phases with real time in them.
func checkExecutedTrace(ctx context.Context, c *client.Client) error {
	jobs, err := c.List(ctx)
	if err != nil {
		return err
	}
	var lead *omd.JobStatus
	for i := range jobs {
		if !jobs[i].Coalesced && !jobs[i].MemoHit {
			lead = &jobs[i]
			break
		}
	}
	if lead == nil {
		return fmt.Errorf("trace check: no executed (non-coalesced, non-memo) job found among %d", len(jobs))
	}
	doc, err := c.Trace(ctx, lead.ID)
	if err != nil {
		return fmt.Errorf("trace check: fetch %s: %w", lead.ID, err)
	}
	// Presence for every lifecycle phase; positive duration for the phases
	// that do real work (cache lookups can legitimately round to zero).
	present := []string{
		"admission", "queue-wait", "execute",
		"program-cache", "compile", "merge",
		"om", "om/lift", "om/passes", "om/emit",
	}
	positive := map[string]bool{
		"execute": true, "compile": true, "om": true,
		"om/lift": true, "om/passes": true, "om/emit": true,
	}
	for _, phase := range present {
		sp := doc.Find(phase)
		if sp == nil {
			return fmt.Errorf("trace check: job %s trace lacks span %q:\n%s", lead.ID, phase, doc.Render())
		}
		if sp.Duration < 0 || (positive[phase] && sp.Duration == 0) {
			return fmt.Errorf("trace check: span %q duration %v:\n%s", phase, sp.Duration, doc.Render())
		}
	}
	var sum time.Duration
	for _, child := range doc.Root.Children {
		sum += child.Duration
	}
	if doc.Root.Duration <= 0 || doc.Root.Duration < sum {
		return fmt.Errorf("trace check: root %v does not cover children (sum %v):\n%s",
			doc.Root.Duration, sum, doc.Render())
	}
	fmt.Fprintf(os.Stderr, "omd: loadsmoke: trace %s complete (%d lifecycle spans, root %v)\n",
		doc.TraceID, len(present), doc.Root.Duration.Round(time.Millisecond))
	return nil
}
