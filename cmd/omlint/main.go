// Command omlint statically proves OM's address-calculation invariants: it
// runs the whole-program dataflow analysis (CFG construction, reaching
// definitions, liveness, and an abstract interpretation of register
// contents) over OM's symbolic program form and over final linked images,
// without executing anything.
//
// Usage:
//
//	omlint -image a.out [-json] [-missed]
//	omlint -matrix [-bench name,...] [-quick] [-json] [-missed]
//	omlint -faultcheck
//	omlint -checks [-json]
//	omlint [-level full] [-sched] [-nostdlib] [-json] [-missed] file.o...
//
// -image analyzes an already-linked executable. With object file
// arguments, the objects are linked, optimized at -level, and analyzed
// three times: the lifted symbolic program (pre-pass), the optimized
// symbolic program (post-pass), and the emitted image.
//
// -matrix compiles the named benchmarks (default: the full suite) and
// analyzes the image of every golden matrix cell, failing on any
// error-severity finding — the static half of the verification story
// omverify witnesses dynamically.
//
// -faultcheck is the detection-power self-test: it installs the standard
// fault injection (a kept address load silently deleted after the passes)
// and fails unless the analysis reports the break.
//
// -missed includes info-severity findings (missed optimizations,
// unreachable code) in the text output; errors are always shown. The exit
// status reflects error findings only.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/dataflow"
	"repro/internal/link"
	"repro/internal/objfile"
	"repro/internal/om"
	"repro/internal/rtlib"
	benchspec "repro/internal/spec"
	"repro/internal/tcc"
	"repro/internal/verify"
)

func main() {
	image := flag.String("image", "", "analyze this linked image")
	matrix := flag.Bool("matrix", false, "analyze the golden matrix over built-in benchmarks")
	bench := flag.String("bench", "", "comma-separated benchmark names for -matrix (default: all)")
	quick := flag.Bool("quick", false, "use the quick cell set instead of the full golden matrix")
	faultcheck := flag.Bool("faultcheck", false, "self-test: inject the standard pass fault and require a finding")
	checks := flag.Bool("checks", false, "print the check catalog")
	level := flag.String("level", "full", "optimization level for object file arguments (none, simple, full)")
	sched := flag.Bool("sched", false, "enable instruction scheduling for object file arguments")
	nostdlib := flag.Bool("nostdlib", false, "do not add the runtime library to object file arguments")
	missed := flag.Bool("missed", false, "include info-severity findings (missed optimizations) in text output")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of the text report")
	flag.Parse()

	ctx := context.Background()
	switch {
	case *checks:
		runChecks(*jsonOut)
	case *faultcheck:
		runFaultcheck(ctx)
	case *image != "":
		runImage(*image, *jsonOut, *missed)
	case *matrix:
		runBenchMatrix(ctx, *bench, *quick, *jsonOut, *missed)
	case flag.NArg() > 0:
		runObjects(ctx, flag.Args(), *level, *sched, *nostdlib, *jsonOut, *missed)
	default:
		fmt.Fprintln(os.Stderr, "usage: omlint -image a.out | -matrix | -faultcheck | -checks | file.o...")
		os.Exit(2)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "omlint: "+format+"\n", args...)
	os.Exit(1)
}

// runChecks prints the stable check catalog.
func runChecks(jsonOut bool) {
	cat := dataflow.Checks()
	if jsonOut {
		emitJSON(cat)
		return
	}
	for _, c := range cat {
		fmt.Printf("%s %-22s %-5s %s\n", c.ID, c.Name, c.Severity, c.Doc)
	}
}

// runImage analyzes one linked image.
func runImage(imgFile string, jsonOut, missed bool) {
	f, err := os.Open(imgFile)
	if err != nil {
		fail("%v", err)
	}
	im, err := objfile.ReadImage(f)
	f.Close()
	if err != nil {
		fail("%s: %v", imgFile, err)
	}
	rep, err := dataflow.AnalyzeImage(im)
	if err != nil {
		fail("%s: %v", imgFile, err)
	}
	report(imgFile, []*dataflow.Report{rep}, jsonOut, missed)
}

// runObjects links the objects, optimizes at the requested level, and
// analyzes the symbolic program at both observer stages plus the image.
func runObjects(ctx context.Context, files []string, level string, sched, nostdlib, jsonOut, missed bool) {
	lvl, err := om.ParseLevel(strings.TrimPrefix(level, "om-"))
	if err != nil {
		fail("%v", err)
	}
	var objs []*objfile.Object
	for _, name := range files {
		f, err := os.Open(name)
		if err != nil {
			fail("%v", err)
		}
		obj, err := objfile.Read(f)
		f.Close()
		if err != nil {
			fail("%s: %v", name, err)
		}
		objs = append(objs, obj)
	}
	if !nostdlib {
		lib, err := rtlib.StandardObjects()
		if err != nil {
			fail("%v", err)
		}
		objs = append(objs, lib...)
	}
	reps, err := lintObjects(ctx, objs, lvl, sched)
	if err != nil {
		fail("%v", err)
	}
	report(strings.Join(files, ","), reps, jsonOut, missed)
}

// lintObjects runs the three-report analysis: the lifted program, the
// optimized program, and the emitted image.
func lintObjects(ctx context.Context, objs []*objfile.Object, lvl om.Level, sched bool) ([]*dataflow.Report, error) {
	p, err := link.Merge(objs)
	if err != nil {
		return nil, err
	}
	var reps []*dataflow.Report
	res, err := om.Run(ctx, p, om.WithLevel(lvl), om.WithSchedule(sched),
		om.WithProgObserver(func(stage om.ProgStage, pg *om.Prog, pl *om.Plan) error {
			rep, err := dataflow.AnalyzeProg(pg, pl, string(stage))
			if err != nil {
				return err
			}
			reps = append(reps, rep)
			return nil
		}))
	if err != nil {
		return nil, err
	}
	rep, err := dataflow.AnalyzeImage(res.Image)
	if err != nil {
		return nil, err
	}
	return append(reps, rep), nil
}

// matrixRow is one benchmark × cell of the -matrix report.
type matrixRow struct {
	Label   string `json:"label"`
	Cell    string `json:"cell"`
	Checked uint64 `json:"checked"`
	Errors  int    `json:"errors"`
	Info    int    `json:"info"`
	Err     string `json:"err,omitempty"`

	report *dataflow.Report
}

// runBenchMatrix analyzes the image of every matrix cell for each named
// benchmark.
func runBenchMatrix(ctx context.Context, names string, quick, jsonOut, missed bool) {
	var benches []benchspec.Benchmark
	if names == "" {
		benches = benchspec.All()
	} else {
		for _, n := range strings.Split(names, ",") {
			b, ok := benchspec.ByName(strings.TrimSpace(n))
			if !ok {
				fail("unknown benchmark %q", n)
			}
			benches = append(benches, b)
		}
	}
	cells := verify.MatrixCells()
	if quick {
		cells = verify.QuickCells()
	}
	lib, err := rtlib.StandardObjects()
	if err != nil {
		fail("%v", err)
	}

	var rows []matrixRow
	failed := 0
	for _, b := range benches {
		var objs []*objfile.Object
		for _, m := range b.Modules {
			obj, err := tcc.Compile(m.Name, []tcc.Source{m}, tcc.DefaultOptions())
			if err != nil {
				fail("%s: %v", b.Name, err)
			}
			objs = append(objs, obj)
		}
		objs = append(objs, lib...)
		for _, c := range cells {
			row := matrixRow{Label: b.Name, Cell: c.Name()}
			rep, err := lintCell(ctx, objs, c)
			if err != nil {
				row.Err = err.Error()
				failed++
			} else {
				row.Checked = rep.Checked
				row.Errors = rep.Errors()
				row.Info = len(rep.Findings) - rep.Errors()
				row.report = rep
				if row.Errors > 0 {
					failed++
				}
			}
			rows = append(rows, row)
		}
	}

	if jsonOut {
		emitJSON(struct {
			Schema string      `json:"schema"`
			Rows   []matrixRow `json:"rows"`
			Failed int         `json:"failed_cells"`
		}{dataflow.Schema, rows, failed})
	} else {
		for _, row := range rows {
			status := "ok"
			switch {
			case row.Err != "":
				status = "FAIL " + row.Err
			case row.Errors > 0:
				status = fmt.Sprintf("FAIL %d error finding(s)", row.Errors)
			case row.Info > 0:
				status = fmt.Sprintf("ok (%d info)", row.Info)
			}
			fmt.Printf("%-12s %-36s %6d checks  %s\n", row.Label, row.Cell, row.Checked, status)
			if row.report == nil {
				continue
			}
			for _, f := range row.report.Findings {
				if f.Severity == dataflow.SevError || missed {
					fmt.Printf("  %s %s\n", f.Severity, f.String())
				}
			}
		}
		fmt.Printf("%d cells, %d failed\n", len(rows), failed)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// lintCell optimizes the objects at one matrix cell and analyzes the image.
func lintCell(ctx context.Context, objs []*objfile.Object, c verify.Cell) (*dataflow.Report, error) {
	p, err := link.Merge(objs)
	if err != nil {
		return nil, err
	}
	opts := []om.Option{om.WithLevel(c.Level), om.WithSchedule(c.Schedule)}
	if c.Ablation != (om.Ablation{}) {
		opts = append(opts, om.WithAblation(c.Ablation))
	}
	if c.Profile {
		// Profile-guided layout needs a profile; collect it from the
		// unprofiled image of the same cell.
		plain, err := om.Run(ctx, p, om.WithLevel(c.Level), om.WithSchedule(c.Schedule))
		if err != nil {
			return nil, err
		}
		prof, err := verify.EngineProfile(plain.Image, 100_000_000)
		if err != nil {
			return nil, err
		}
		opts = append(opts, om.WithProfile(prof))
		if p, err = link.Merge(objs); err != nil {
			return nil, err
		}
	}
	res, err := om.Run(ctx, p, opts...)
	if err != nil {
		return nil, err
	}
	return dataflow.AnalyzeImage(res.Image)
}

// faultcheckProgram is the fixture the self-test optimizes and breaks. The
// address-taken comparator guarantees a GAT address load survives OM-full
// (a procedure literal cannot be converted to GP-relative arithmetic or to
// a bsr), giving the fault hook a victim.
const faultcheckProgram = `
long table[24];
long acc = 0;

long step(long a, long b) { return b - a; }

long main() {
	long i;
	for (i = 0; i < 24; i = i + 1) {
		table[i] = lhash(i) % 97;
		acc = acc + table[i];
	}
	qsort8(table, 0, 23, step);
	print(acc);
	return 0;
}
`

// runFaultcheck proves detection power: with the standard fault injection
// installed (a kept address load deleted after the passes), the optimized
// symbolic program must produce at least one error finding.
func runFaultcheck(ctx context.Context) {
	injected := false
	restore := om.SetFaultHookForTesting(func(pg *om.Prog) {
		for _, pr := range pg.Procs {
			for _, si := range pr.Insts {
				if si.Lit != nil && !si.Lit.Converted && !si.Lit.Nullified && !si.Deleted {
					si.Deleted = true
					injected = true
					return
				}
			}
		}
	})
	defer restore()

	obj, err := tcc.Compile("prog", []tcc.Source{{Name: "prog", Text: faultcheckProgram}}, tcc.DefaultOptions())
	if err != nil {
		fail("%v", err)
	}
	lib, err := rtlib.StandardObjects()
	if err != nil {
		fail("%v", err)
	}
	p, err := link.Merge(append([]*objfile.Object{obj}, lib...))
	if err != nil {
		fail("%v", err)
	}
	var post *dataflow.Report
	_, err = om.Run(ctx, p, om.WithLevel(om.LevelFull),
		om.WithProgObserver(func(stage om.ProgStage, pg *om.Prog, pl *om.Plan) error {
			if stage != om.StageOptimized {
				return nil
			}
			rep, err := dataflow.AnalyzeProg(pg, pl, string(stage))
			if err != nil {
				return err
			}
			post = rep
			return nil
		}))
	if err != nil {
		fail("%v", err)
	}
	if !injected {
		fail("faultcheck: no kept address load to break — fixture no longer exercises the hook")
	}
	if post == nil {
		fail("faultcheck: optimized-stage analysis never ran")
	}
	if post.Errors() == 0 {
		fail("faultcheck: the injected fault produced no error finding — detection power lost")
	}
	for _, f := range post.Findings {
		if f.Severity == dataflow.SevError {
			fmt.Printf("caught: %s\n", f.String())
		}
	}
	fmt.Printf("faultcheck ok: %d error finding(s) on the broken program\n", post.Errors())
}

// report renders one or more findings documents and exits nonzero on any
// error finding.
func report(label string, reps []*dataflow.Report, jsonOut, missed bool) {
	errs := 0
	for _, r := range reps {
		errs += r.Errors()
	}
	if jsonOut {
		if len(reps) == 1 {
			if err := reps[0].Write(os.Stdout); err != nil {
				fail("%v", err)
			}
		} else {
			emitJSON(struct {
				Schema  string             `json:"schema"`
				Reports []*dataflow.Report `json:"reports"`
			}{dataflow.Schema, reps})
		}
	} else {
		for _, r := range reps {
			what := r.Source
			if r.Stage != "" {
				what += ":" + r.Stage
			}
			info := len(r.Findings) - r.Errors()
			fmt.Printf("%-12s %-36s %6d checks  %d errors, %d info\n",
				label, what, r.Checked, r.Errors(), info)
			for _, f := range r.Findings {
				if f.Severity == dataflow.SevError || missed {
					fmt.Printf("  %s %s\n", f.Severity, f.String())
				}
			}
		}
	}
	if errs > 0 {
		os.Exit(1)
	}
}

// emitJSON prints v in the repository's JSON house style (tab-indented,
// trailing newline).
func emitJSON(v any) {
	data, err := json.MarshalIndent(v, "", "\t")
	if err != nil {
		fail("%v", err)
	}
	os.Stdout.Write(append(data, '\n'))
}
