// Command omprof inspects and manipulates om-profile/v1 documents, the
// profile format of the profile-guided-layout feedback loop (collected by
// axsim -profileout or om's instrumentation, consumed by om -profile).
//
// With one profile it prints a summary: totals, the hottest procedures by
// weight, and the heaviest call edges. -merge combines training runs into
// one profile (counts sum); -diff compares two profiles procedure by
// procedure.
//
// Usage:
//
//	omprof [-top n] profile.json
//	omprof -merge -o merged.json profile.json...
//	omprof -diff old.json new.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/profile"
)

func main() {
	top := flag.Int("top", 10, "number of procedures and edges in the summary")
	merge := flag.Bool("merge", false, "merge the input profiles and write the result")
	out := flag.String("o", "merged.json", "output file for -merge")
	diff := flag.Bool("diff", false, "compare two profiles procedure by procedure")
	flag.Parse()

	switch {
	case *merge:
		if flag.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "usage: omprof -merge -o merged.json profile.json...")
			os.Exit(2)
		}
		var ps []*profile.Profile
		for _, name := range flag.Args() {
			ps = append(ps, read(name))
		}
		merged := profile.Merge(ps...)
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		if err := profile.Write(f, merged); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("merged %d profiles into %s: %d procedures, %d edges\n",
			len(ps), *out, len(merged.Procs), len(merged.Edges))
	case *diff:
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: omprof -diff old.json new.json")
			os.Exit(2)
		}
		printDiff(read(flag.Arg(0)), read(flag.Arg(1)))
	default:
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: omprof [-top n] profile.json")
			os.Exit(2)
		}
		summarize(flag.Arg(0), read(flag.Arg(0)), *top)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "omprof:", err)
	os.Exit(1)
}

func read(name string) *profile.Profile {
	f, err := os.Open(name)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	p, err := profile.Read(f)
	if err != nil {
		fail(fmt.Errorf("%s: %w", name, err))
	}
	return p
}

// summarize prints the profile's shape: totals, hottest procedures, and
// heaviest call edges.
func summarize(name string, p *profile.Profile, top int) {
	var weight, entries, edgeWeight uint64
	for _, pc := range p.Procs {
		weight += pc.Weight
		entries += pc.Entries
	}
	for _, e := range p.Edges {
		edgeWeight += e.Weight
	}
	fmt.Printf("%s: source %s, hash %.12s\n", name, p.Source, p.Hash())
	fmt.Printf("  %d procedures (%d entries, %d block executions), %d blocks, %d call edges (%d calls)\n",
		len(p.Procs), entries, weight, len(p.Blocks), len(p.Edges), edgeWeight)

	procs := append([]profile.ProcCount(nil), p.Procs...)
	sort.SliceStable(procs, func(i, j int) bool { return procs[i].Weight > procs[j].Weight })
	if len(procs) > top {
		procs = procs[:top]
	}
	fmt.Println("hot procedures:")
	for _, pc := range procs {
		fmt.Printf("  %-24s weight %-10d entries %d\n", pc.Name, pc.Weight, pc.Entries)
	}

	edges := append([]profile.Edge(nil), p.Edges...)
	sort.SliceStable(edges, func(i, j int) bool { return edges[i].Weight > edges[j].Weight })
	if len(edges) > top {
		edges = edges[:top]
	}
	fmt.Println("hot call edges:")
	for _, e := range edges {
		fmt.Printf("  %-24s -> %-24s weight %d\n", e.Caller, e.Callee, e.Weight)
	}
}

// printDiff lists procedures whose weight changed between the profiles,
// plus procedures present on only one side.
func printDiff(old, new *profile.Profile) {
	ow := make(map[string]uint64, len(old.Procs))
	for _, pc := range old.Procs {
		ow[pc.Name] = pc.Weight
	}
	nw := make(map[string]uint64, len(new.Procs))
	for _, pc := range new.Procs {
		nw[pc.Name] = pc.Weight
	}
	names := make(map[string]bool, len(ow)+len(nw))
	for n := range ow {
		names[n] = true
	}
	for n := range nw {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	changed := 0
	for _, n := range sorted {
		o, inOld := ow[n]
		w, inNew := nw[n]
		switch {
		case !inOld:
			fmt.Printf("  %-24s only in new (weight %d)\n", n, w)
		case !inNew:
			fmt.Printf("  %-24s only in old (weight %d)\n", n, o)
		case o != w:
			fmt.Printf("  %-24s %d -> %d (%+d)\n", n, o, w, int64(w)-int64(o))
		default:
			continue
		}
		changed++
	}
	if changed == 0 {
		fmt.Println("profiles agree on every procedure weight")
	}
}
