// Command benchjson converts `go test -bench` output on stdin into the
// repository's tracked benchmark records (BENCH_sim.json, BENCH_link.json):
//
//	{"date": "YYYY-MM-DD", "commit": "<short sha>",
//	 "benchmarks": [{"name", "ns_per_op", "instructions_per_sec"}, ...]}
//
// Benchmarks that report an `inst/s` metric (the simulator suite does) get
// instructions_per_sec filled in; runs under -benchmem also record
// bytes_per_op and allocs_per_op (the warm-link record tracks both). With
// -baseline, a previous record is embedded under "baseline" so a single
// file shows the perf trajectory.
//
// Usage: go test -run '^$' -bench Sim . ./internal/sim | benchjson -o BENCH_sim.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

type record struct {
	Date        string          `json:"date"`
	Commit      string          `json:"commit"`
	Environment environment     `json:"environment"`
	Benchmarks  []benchmark     `json:"benchmarks"`
	Baseline    json.RawMessage `json:"baseline,omitempty"`
}

// environment records where the numbers were measured, so regressions can
// be told apart from host or toolchain changes.
type environment struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Host       string `json:"host,omitempty"`
}

func hostEnvironment() environment {
	host, _ := os.Hostname()
	return environment{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Host:       host,
	}
}

type benchmark struct {
	Name       string  `json:"name"`
	NsPerOp    float64 `json:"ns_per_op"`
	InstPerSc  float64 `json:"instructions_per_sec,omitempty"`
	BytesPerOp float64 `json:"bytes_per_op,omitempty"`
	AllocsPer  float64 `json:"allocs_per_op,omitempty"`
}

// gomaxprocsSuffix is the "-N" go test appends to benchmark names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func parse(line string) (benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return benchmark{}, false
	}
	f := strings.Fields(line)
	if len(f) < 4 {
		return benchmark{}, false
	}
	b := benchmark{Name: gomaxprocsSuffix.ReplaceAllString(f[0], "")}
	// After the name and iteration count, the line is (value, unit) pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return benchmark{}, false
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "inst/s":
			b.InstPerSc = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPer = v
		}
	}
	return b, b.NsPerOp > 0
}

func commit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "previous record to embed under \"baseline\"")
	flag.Parse()

	rec := record{
		Date:        time.Now().UTC().Format("2006-01-02"),
		Commit:      commit(),
		Environment: hostEnvironment(),
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		if b, ok := parse(sc.Text()); ok {
			rec.Benchmarks = append(rec.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rec.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var compact bytes.Buffer
		if err := json.Compact(&compact, raw); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *baseline, err)
			os.Exit(1)
		}
		rec.Baseline = json.RawMessage(compact.Bytes())
	}
	data, err := json.MarshalIndent(rec, "", "\t")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
