// Command axsim runs an executable image in the Alpha AXP simulator and
// reports the program's output and, with -timing, the pipeline statistics.
// With -profile it additionally prints a hot-block report (per-block
// execution counts attributed to procedures) and the dynamic instruction
// mix; -profileout writes the counts as an om-profile/v1 document that
// om -profile and omprof consume; -metrics emits the run's counters as
// JSON on stderr.
//
// Usage:
//
//	axsim [-timing] [-profile] [-profileout file] [-metrics] [-max n] a.out
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/objfile"
	"repro/internal/profile"
	"repro/internal/sim"
)

func main() {
	timing := flag.Bool("timing", false, "model the dual-issue pipeline and caches")
	prof := flag.Bool("profile", false, "collect per-block execution counts and the instruction mix")
	profOut := flag.String("profileout", "", "write the block counts as an om-profile JSON document to this file")
	metrics := flag.Bool("metrics", false, "print run statistics as JSON on stderr")
	maxInst := flag.Uint64("max", 0, "abort after this many instructions (0 = default cap)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: axsim [-timing] [-profile] [-profileout file] [-metrics] a.out")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "axsim:", err)
		os.Exit(1)
	}
	im, err := objfile.ReadImage(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "axsim:", err)
		os.Exit(1)
	}
	cfg := sim.Config{MaxInstructions: *maxInst}
	if *timing {
		cfg = sim.DefaultConfig()
		cfg.MaxInstructions = *maxInst
	}
	cfg.Profile = *prof || *profOut != ""
	res, err := sim.Run(im, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "axsim:", err)
		os.Exit(1)
	}
	for _, v := range res.Output {
		fmt.Println(v)
	}
	if len(res.OutBytes) > 0 {
		os.Stdout.Write(res.OutBytes)
	}
	if *timing {
		s := res.Stats
		fmt.Fprintf(os.Stderr, "instructions %d\ncycles       %d\ncpi          %.3f\ndual-issued  %d\nloads        %d\nstores       %d\ntaken-br     %d\nicache       %d hits, %d misses\ndcache       %d hits, %d misses\n",
			s.Instructions, s.Cycles, float64(s.Cycles)/float64(s.Instructions),
			s.DualIssued, s.Loads, s.Stores, s.TakenBranch,
			s.ICacheHits, s.ICacheMisses, s.DCacheHits, s.DCacheMisses)
	}
	if *prof {
		printProfile(im, res)
	}
	if *profOut != "" {
		if err := writeProfile(*profOut, im, res); err != nil {
			fmt.Fprintln(os.Stderr, "axsim:", err)
			os.Exit(1)
		}
	}
	if *metrics {
		data, err := json.MarshalIndent(res.Stats, "", "\t")
		if err != nil {
			fmt.Fprintln(os.Stderr, "axsim:", err)
			os.Exit(1)
		}
		os.Stderr.Write(append(data, '\n'))
	}
	os.Exit(int(res.Exit & 0x7F))
}

// printProfile renders the hot-block report (top 20 block entry points,
// attributed to the covering procedure symbol) and the instruction mix.
func printProfile(im *objfile.Image, res *sim.Result) {
	fmt.Fprintf(os.Stderr, "hot blocks (%d distinct entry points):\n", len(res.BlockProfile))
	top := res.BlockProfile
	if len(top) > 20 {
		top = top[:20]
	}
	for _, b := range top {
		fmt.Fprintf(os.Stderr, "  %#10x %-24s %4d insts × %d\n",
			b.PC, procNameAt(im, b.PC), b.Len, b.Count)
	}
	type mix struct {
		op string
		n  uint64
	}
	var mixes []mix
	var total uint64
	for op, n := range res.InstMix {
		mixes = append(mixes, mix{op, n})
		total += n
	}
	sort.Slice(mixes, func(i, j int) bool {
		if mixes[i].n != mixes[j].n {
			return mixes[i].n > mixes[j].n
		}
		return mixes[i].op < mixes[j].op
	})
	fmt.Fprintln(os.Stderr, "instruction mix:")
	for _, m := range mixes {
		fmt.Fprintf(os.Stderr, "  %-8s %12d  %5.1f%%\n", m.op, m.n, 100*float64(m.n)/float64(total))
	}
}

// writeProfile converts the engine's block counts into an om-profile
// document (procedure weights, entry counts, and the bsr call edges
// decodable from the image) and writes it to the named file.
func writeProfile(name string, im *objfile.Image, res *sim.Result) error {
	blocks := make([]profile.PCBlock, len(res.BlockProfile))
	for i, b := range res.BlockProfile {
		blocks[i] = profile.PCBlock{PC: b.PC, Len: b.Len, Count: b.Count}
	}
	p, err := profile.FromImage(im, blocks)
	if err != nil {
		return err
	}
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := profile.Write(f, p); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// procNameAt finds the procedure symbol covering the address.
func procNameAt(im *objfile.Image, pc uint64) string {
	for _, s := range im.Symbols {
		if s.Kind == objfile.SymProc && pc >= s.Addr && pc < s.Addr+s.Size {
			return s.Name
		}
	}
	return "?"
}
