// Command axsim runs an executable image in the Alpha AXP simulator and
// reports the program's output and, with -timing, the pipeline statistics.
//
// Usage:
//
//	axsim [-timing] [-max n] a.out
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/objfile"
	"repro/internal/sim"
)

func main() {
	timing := flag.Bool("timing", false, "model the dual-issue pipeline and caches")
	maxInst := flag.Uint64("max", 0, "abort after this many instructions (0 = default cap)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: axsim [-timing] a.out")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "axsim:", err)
		os.Exit(1)
	}
	im, err := objfile.ReadImage(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "axsim:", err)
		os.Exit(1)
	}
	cfg := sim.Config{MaxInstructions: *maxInst}
	if *timing {
		cfg = sim.DefaultConfig()
		cfg.MaxInstructions = *maxInst
	}
	res, err := sim.Run(im, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "axsim:", err)
		os.Exit(1)
	}
	for _, v := range res.Output {
		fmt.Println(v)
	}
	if len(res.OutBytes) > 0 {
		os.Stdout.Write(res.OutBytes)
	}
	if *timing {
		s := res.Stats
		fmt.Fprintf(os.Stderr, "instructions %d\ncycles       %d\ncpi          %.3f\ndual-issued  %d\nloads        %d\nstores       %d\ntaken-br     %d\nicache       %d hits, %d misses\ndcache       %d hits, %d misses\n",
			s.Instructions, s.Cycles, float64(s.Cycles)/float64(s.Instructions),
			s.DualIssued, s.Loads, s.Stores, s.TakenBranch,
			s.ICacheHits, s.ICacheMisses, s.DCacheHits, s.DCacheMisses)
	}
	os.Exit(int(res.Exit & 0x7F))
}
