// Command omctl is the command-line client for the omd link service.
//
// Usage:
//
//	omctl submit [-server url] [-bench name | obj.o ...] [-level none|simple|full]
//	             [-schedule] [-trace] [-nostdlib] [-profile file] [-sim]
//	             [-buildmode compile-each|compile-all] [-timeout dur]
//	             [-wait] [-o image]
//	omctl status [-server url] jobID
//	omctl wait   [-server url] jobID
//	omctl fetch  [-server url] -o image jobID
//	omctl jobs   [-server url]
//	omctl metrics [-server url]
//
// The server defaults to $OMD_SERVER, then http://localhost:7333. submit
// prints the job status as JSON; with -wait it blocks until the job
// finishes, and with -o it also downloads the linked image — a warm daemon
// makes `omctl submit -wait -o a.out -bench li` the remote equivalent of a
// local cmd/om run, byte for byte.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/om"
	"repro/internal/omd"
	"repro/internal/omd/client"
)

func serverURL(fs *flag.FlagSet) *string {
	def := os.Getenv("OMD_SERVER")
	if def == "" {
		def = "http://localhost:7333"
	}
	return fs.String("server", def, "omd server base URL (default $OMD_SERVER)")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "omctl: "+format+"\n", args...)
	os.Exit(1)
}

func printJSON(v any) {
	data, err := json.MarshalIndent(v, "", "\t")
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Println(string(data))
}

func main() {
	if len(os.Args) < 2 {
		fatalf("usage: omctl submit|status|wait|fetch|jobs|metrics ... (see go doc)")
	}
	ctx := context.Background()
	switch cmd := os.Args[1]; cmd {
	case "submit":
		cmdSubmit(ctx, os.Args[2:])
	case "status", "wait":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		server := serverURL(fs)
		fs.Parse(os.Args[2:])
		if fs.NArg() != 1 {
			fatalf("usage: omctl %s [-server url] jobID", cmd)
		}
		c := client.New(*server, nil)
		var st *omd.JobStatus
		var err error
		if cmd == "wait" {
			st, err = c.Wait(ctx, fs.Arg(0), 100*time.Millisecond)
		} else {
			st, err = c.Status(ctx, fs.Arg(0))
		}
		if err != nil {
			fatalf("%v", err)
		}
		printJSON(st)
	case "fetch":
		fs := flag.NewFlagSet("fetch", flag.ExitOnError)
		server := serverURL(fs)
		out := fs.String("o", "", "output path for the linked image (required)")
		fs.Parse(os.Args[2:])
		if fs.NArg() != 1 || *out == "" {
			fatalf("usage: omctl fetch [-server url] -o image jobID")
		}
		data, err := client.New(*server, nil).Image(ctx, fs.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(*out, data, 0o666); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "omctl: wrote %s (%d bytes)\n", *out, len(data))
	case "jobs":
		fs := flag.NewFlagSet("jobs", flag.ExitOnError)
		server := serverURL(fs)
		fs.Parse(os.Args[2:])
		list, err := client.New(*server, nil).List(ctx)
		if err != nil {
			fatalf("%v", err)
		}
		printJSON(list)
	case "metrics":
		fs := flag.NewFlagSet("metrics", flag.ExitOnError)
		server := serverURL(fs)
		fs.Parse(os.Args[2:])
		snap, err := client.New(*server, nil).Metrics(ctx)
		if err != nil {
			fatalf("%v", err)
		}
		printJSON(snap)
	default:
		fatalf("unknown command %q (want submit|status|wait|fetch|jobs|metrics)", cmd)
	}
}

func cmdSubmit(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	server := serverURL(fs)
	bench := fs.String("bench", "", "benchmark of the built-in suite to link")
	buildMode := fs.String("buildmode", "", "benchmark build mode: compile-each (default) or compile-all")
	levelName := fs.String("level", "full", "optimization level: none, simple, or full")
	schedule := fs.Bool("schedule", false, "enable instruction scheduling")
	trace := fs.Bool("trace", false, "record a decision journal")
	noStdlib := fs.Bool("nostdlib", false, "do not link the runtime library")
	profPath := fs.String("profile", "", "om-profile/v1 file for profile-guided layout")
	simulate := fs.Bool("sim", false, "simulate the linked image and report dynamic stats")
	timeout := fs.Duration("timeout", 0, "per-job deadline override (0 = server default)")
	wait := fs.Bool("wait", false, "block until the job finishes")
	out := fs.String("o", "", "with -wait: download the linked image here")
	fs.Parse(args)
	if (*bench == "") == (fs.NArg() == 0) {
		fatalf("usage: omctl submit (-bench name | obj.o ...) [flags]")
	}
	if *out != "" && !*wait {
		fatalf("-o requires -wait")
	}

	level, err := om.ParseLevel(*levelName)
	if err != nil {
		fatalf("%v", err)
	}
	opts := []om.Option{om.WithLevel(level), om.WithSchedule(*schedule)}
	if *trace {
		opts = append(opts, om.WithTrace())
	}
	optDoc, err := om.MarshalOptions(opts...)
	if err != nil {
		fatalf("%v", err)
	}

	spec := &omd.JobSpec{
		Version:   omd.SpecVersion,
		Benchmark: *bench,
		BuildMode: *buildMode,
		NoStdlib:  *noStdlib,
		Options:   optDoc,
		Simulate:  *simulate,
		TimeoutMS: timeout.Milliseconds(),
	}
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fatalf("%v", err)
		}
		spec.Objects = append(spec.Objects, data)
	}
	if *profPath != "" {
		data, err := os.ReadFile(*profPath)
		if err != nil {
			fatalf("%v", err)
		}
		spec.Profile = data
	}

	c := client.New(*server, nil)
	var st *omd.JobStatus
	if *wait {
		st, err = c.SubmitWait(ctx, spec)
	} else {
		st, err = c.Submit(ctx, spec)
	}
	if err != nil {
		if client.IsQueueFull(err) {
			ae := err.(*client.APIError)
			fatalf("server busy, retry in %ds: %v", ae.RetryAfter, err)
		}
		fatalf("%v", err)
	}
	printJSON(st)
	if st.State == omd.JobFailed {
		os.Exit(1)
	}
	if *out != "" {
		data, err := c.Image(ctx, st.ID)
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(*out, data, 0o666); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "omctl: wrote %s (%d bytes)\n", *out, len(data))
	}
}
