// Command omctl is the command-line client for the omd link service.
//
// Usage:
//
//	omctl submit [-server url] [-bench name | obj.o ...] [-level none|simple|full]
//	             [-schedule] [-trace] [-nostdlib] [-profile file] [-sim]
//	             [-verify] [-lint]
//	             [-buildmode compile-each|compile-all] [-timeout dur]
//	             [-traceid id] [-wait] [-o image]
//	omctl status [-server url] jobID
//	omctl wait   [-server url] jobID
//	omctl fetch  [-server url] -o image jobID
//	omctl jobs   [-server url]
//	omctl metrics [-server url] [-json]
//	omctl trace  [-server url] [-json] jobID
//	omctl lint   [-server url] jobID
//	omctl top    [-server url] [-n jobs]
//
// metrics prints a human-readable summary of the server's queue, build
// cache, warm-path stage stores (resident program, lift, pass memo) with
// hit rates, and phase timers with p50/p90/p99 latencies estimated from the
// histogram buckets; -json prints the raw snapshot instead.
// trace renders a job's span tree — one line per span with duration and
// percentage of the job total — straight from GET /jobs/{id}/trace.
// lint prints the om-lint/v1 findings document of a job submitted with
// `submit -lint` (the static dataflow reports at both symbolic stages plus
// the linked image), straight from GET /jobs/{id}/lint.
// top is the operator's one-glance view: queue occupancy, worker
// utilization, cache hit rates, and the most recent job latencies.
// wait polls with jittered exponential backoff (20ms doubling to 640ms).
//
// The server defaults to $OMD_SERVER, then http://localhost:7333. submit
// prints the job status as JSON; with -wait it blocks until the job
// finishes, and with -o it also downloads the linked image — a warm daemon
// makes `omctl submit -wait -o a.out -bench li` the remote equivalent of a
// local cmd/om run, byte for byte.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/om"
	"repro/internal/omd"
	"repro/internal/omd/client"
)

func serverURL(fs *flag.FlagSet) *string {
	def := os.Getenv("OMD_SERVER")
	if def == "" {
		def = "http://localhost:7333"
	}
	return fs.String("server", def, "omd server base URL (default $OMD_SERVER)")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "omctl: "+format+"\n", args...)
	os.Exit(1)
}

func printJSON(v any) {
	data, err := json.MarshalIndent(v, "", "\t")
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Println(string(data))
}

func main() {
	if len(os.Args) < 2 {
		fatalf("usage: omctl submit|status|wait|fetch|jobs|metrics|trace|lint|top ... (see go doc)")
	}
	ctx := context.Background()
	switch cmd := os.Args[1]; cmd {
	case "submit":
		cmdSubmit(ctx, os.Args[2:])
	case "status", "wait":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		server := serverURL(fs)
		fs.Parse(os.Args[2:])
		if fs.NArg() != 1 {
			fatalf("usage: omctl %s [-server url] jobID", cmd)
		}
		c := client.New(*server, nil)
		var st *omd.JobStatus
		var err error
		if cmd == "wait" {
			// Interval 0 selects the client's jittered exponential backoff
			// (20ms start, doubling to 640ms), so short jobs resolve fast
			// and long ones don't hammer the server.
			st, err = c.Wait(ctx, fs.Arg(0), 0)
		} else {
			st, err = c.Status(ctx, fs.Arg(0))
		}
		if err != nil {
			fatalf("%v", err)
		}
		printJSON(st)
	case "fetch":
		fs := flag.NewFlagSet("fetch", flag.ExitOnError)
		server := serverURL(fs)
		out := fs.String("o", "", "output path for the linked image (required)")
		fs.Parse(os.Args[2:])
		if fs.NArg() != 1 || *out == "" {
			fatalf("usage: omctl fetch [-server url] -o image jobID")
		}
		data, err := client.New(*server, nil).Image(ctx, fs.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(*out, data, 0o666); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "omctl: wrote %s (%d bytes)\n", *out, len(data))
	case "jobs":
		fs := flag.NewFlagSet("jobs", flag.ExitOnError)
		server := serverURL(fs)
		fs.Parse(os.Args[2:])
		list, err := client.New(*server, nil).List(ctx)
		if err != nil {
			fatalf("%v", err)
		}
		printJSON(list)
	case "metrics":
		fs := flag.NewFlagSet("metrics", flag.ExitOnError)
		server := serverURL(fs)
		raw := fs.Bool("json", false, "print the raw MetricsSnapshot JSON")
		fs.Parse(os.Args[2:])
		snap, err := client.New(*server, nil).Metrics(ctx)
		if err != nil {
			fatalf("%v", err)
		}
		if *raw {
			printJSON(snap)
		} else {
			renderMetrics(snap)
		}
	case "trace":
		fs := flag.NewFlagSet("trace", flag.ExitOnError)
		server := serverURL(fs)
		raw := fs.Bool("json", false, "print the raw om-trace/v1 JSON")
		fs.Parse(os.Args[2:])
		if fs.NArg() != 1 {
			fatalf("usage: omctl trace [-server url] [-json] jobID")
		}
		doc, err := client.New(*server, nil).Trace(ctx, fs.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		if *raw {
			printJSON(doc)
		} else {
			fmt.Print(doc.Render())
		}
	case "lint":
		fs := flag.NewFlagSet("lint", flag.ExitOnError)
		server := serverURL(fs)
		fs.Parse(os.Args[2:])
		if fs.NArg() != 1 {
			fatalf("usage: omctl lint [-server url] jobID")
		}
		data, err := client.New(*server, nil).Lint(ctx, fs.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		os.Stdout.Write(data)
	case "top":
		fs := flag.NewFlagSet("top", flag.ExitOnError)
		server := serverURL(fs)
		recent := fs.Int("n", 8, "recent jobs to show")
		fs.Parse(os.Args[2:])
		c := client.New(*server, nil)
		snap, err := c.Metrics(ctx)
		if err != nil {
			fatalf("%v", err)
		}
		jobs, err := c.List(ctx)
		if err != nil {
			fatalf("%v", err)
		}
		renderTop(snap, jobs, *recent)
	default:
		fatalf("unknown command %q (want submit|status|wait|fetch|jobs|metrics|trace|top)", cmd)
	}
}

// renderTop is the operator's one-glance dashboard: queue and pool
// occupancy, worker utilization over the server's lifetime, every cache's
// hit rate, job latency quantiles, and the tail of the job log.
func renderTop(snap *omd.MetricsSnapshot, jobs []omd.JobStatus, recent int) {
	q := snap.Queue
	state := "accepting"
	if q.Draining {
		state = "draining"
	}
	uptime := time.Duration(q.UptimeMS) * time.Millisecond
	fmt.Printf("omd up %v, %s\n", uptime.Round(time.Second), state)
	fmt.Printf("queue: %d/%d queued, %d/%d workers busy\n", q.Depth, q.Capacity, q.Running, q.Workers)

	// Utilization: total worker-seconds spent executing over lifetime
	// worker-seconds available.
	if jt := timerFor(snap, "omd/job"); jt != nil && uptime > 0 && q.Workers > 0 {
		util := jt.Sum.Seconds() / (uptime.Seconds() * float64(q.Workers))
		fmt.Printf("utilization: %.1f%% (%d jobs executed, p50 %v  p90 %v  p99 %v)\n",
			100*util, jt.Count,
			jt.Quantile(0.50).Round(time.Microsecond),
			jt.Quantile(0.90).Round(time.Microsecond),
			jt.Quantile(0.99).Round(time.Microsecond))
	}

	submitted := snap.Counter("omd/submitted")
	if submitted > 0 {
		fmt.Printf("admissions: %d submitted, %d executed, %d coalesced, %d memo hits\n",
			submitted, snap.Counter("omd/jobs-executed"),
			snap.Counter("omd/coalesce-hits"), snap.Counter("omd/memo-hits"))
	}
	c := snap.Cache
	fmt.Printf("object cache: %s   image cache: %s\n",
		rate(c.Hits, c.Misses), rate(c.ImageHits, c.ImageMisses))
	for _, name := range []string{"program", "lift", "pass"} {
		hits, misses := snap.Counter("stage/"+name+"/hits"), snap.Counter("stage/"+name+"/misses")
		if hits+misses > 0 {
			fmt.Printf("stage %-8s %s\n", name+":", rate(hits, misses))
		}
	}

	if recent > 0 && len(jobs) > 0 {
		fmt.Printf("recent jobs:\n")
		if len(jobs) > recent {
			jobs = jobs[len(jobs)-recent:]
		}
		for i := len(jobs) - 1; i >= 0; i-- {
			j := jobs[i]
			flags := ""
			if j.Coalesced {
				flags += " coalesced"
			}
			if j.MemoHit {
				flags += " memo-hit"
			}
			if j.ImageCacheHit {
				flags += " image-cache"
			}
			fmt.Printf("  %-6s %-7s wait %-10v exec %-10v trace %s%s\n",
				j.ID, j.State, j.QueueWait.Round(time.Microsecond),
				j.Exec.Round(time.Microsecond), j.TraceID, flags)
		}
	}
}

// timerFor returns a named timer's stats from the snapshot, nil if absent.
func timerFor(snap *omd.MetricsSnapshot, name string) *obs.TimerStats {
	for _, e := range snap.Metrics {
		if e.Name == name && e.Kind == "timer" && e.Timings != nil && e.Timings.Count > 0 {
			return e.Timings
		}
	}
	return nil
}

// renderMetrics prints the snapshot for humans: queue and pool state, the
// object/image build cache, every warm-path stage store with its hit rate,
// the om pipeline counters, and the phase timers.
func renderMetrics(snap *omd.MetricsSnapshot) {
	q := snap.Queue
	state := "accepting"
	if q.Draining {
		state = "draining"
	}
	fmt.Printf("queue: %d/%d jobs queued, %d workers, %s\n", q.Depth, q.Capacity, q.Workers, state)

	c := snap.Cache
	fmt.Printf("object cache: %s (%d from disk), %d compiles\n",
		rate(c.Hits, c.Misses), c.DiskHits, c.Misses)
	fmt.Printf("image cache:  %s\n", rate(c.ImageHits, c.ImageMisses))

	// Warm-path stage stores report as stage/<name>/{hits,misses,evictions}.
	names := []string{}
	seen := map[string]bool{}
	for _, e := range snap.Metrics {
		if e.Kind != "counter" || !strings.HasPrefix(e.Name, "stage/") {
			continue
		}
		if name, _, ok := strings.Cut(strings.TrimPrefix(e.Name, "stage/"), "/"); ok && !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	for _, name := range names {
		fmt.Printf("stage %-8s %s, %d evictions\n", name+":",
			rate(snap.Counter("stage/"+name+"/hits"), snap.Counter("stage/"+name+"/misses")),
			snap.Counter("stage/"+name+"/evictions"))
	}

	if procs := snap.Counter("om/lift/procs") + snap.Counter("om/lift/replayed"); procs > 0 {
		fmt.Printf("om: %d modules decoded; %d procs lifted, %d replayed; %d passed, %d replayed\n",
			snap.Counter("om/decode/modules"),
			snap.Counter("om/lift/procs"), snap.Counter("om/lift/replayed"),
			snap.Counter("om/passes/procs"), snap.Counter("om/passes/replayed"))
	}

	for _, e := range snap.Metrics {
		if e.Kind == "timer" && e.Timings != nil && e.Timings.Count > 0 {
			t := e.Timings
			fmt.Printf("timer %-14s %4d × avg %v  p50 %v  p90 %v  p99 %v (total %v)\n",
				e.Name+":", t.Count,
				(t.Sum / time.Duration(t.Count)).Round(time.Microsecond),
				t.Quantile(0.50).Round(time.Microsecond),
				t.Quantile(0.90).Round(time.Microsecond),
				t.Quantile(0.99).Round(time.Microsecond),
				t.Sum.Round(time.Millisecond))
		}
	}
}

// rate formats "H hits / M misses (P% hit)".
func rate(hits, misses uint64) string {
	total := hits + misses
	if total == 0 {
		return "no traffic"
	}
	return fmt.Sprintf("%d hits / %d misses (%.1f%% hit)", hits, misses, 100*float64(hits)/float64(total))
}

func cmdSubmit(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	server := serverURL(fs)
	bench := fs.String("bench", "", "benchmark of the built-in suite to link")
	buildMode := fs.String("buildmode", "", "benchmark build mode: compile-each (default) or compile-all")
	levelName := fs.String("level", "full", "optimization level: none, simple, or full")
	schedule := fs.Bool("schedule", false, "enable instruction scheduling")
	trace := fs.Bool("trace", false, "record a decision journal")
	noStdlib := fs.Bool("nostdlib", false, "do not link the runtime library")
	profPath := fs.String("profile", "", "om-profile/v1 file for profile-guided layout")
	simulate := fs.Bool("sim", false, "simulate the linked image and report dynamic stats")
	verifyJob := fs.Bool("verify", false, "translation-validate the linked image on the server; a bad verdict fails the job")
	lintJob := fs.Bool("lint", false, "statically analyze the program on the server; an error finding fails the job")
	timeout := fs.Duration("timeout", 0, "per-job deadline override (0 = server default)")
	traceID := fs.String("traceid", "", "correlate the job under this trace id (Om-Trace-Id)")
	wait := fs.Bool("wait", false, "block until the job finishes")
	out := fs.String("o", "", "with -wait: download the linked image here")
	fs.Parse(args)
	if (*bench == "") == (fs.NArg() == 0) {
		fatalf("usage: omctl submit (-bench name | obj.o ...) [flags]")
	}
	if *out != "" && !*wait {
		fatalf("-o requires -wait")
	}

	level, err := om.ParseLevel(*levelName)
	if err != nil {
		fatalf("%v", err)
	}
	opts := []om.Option{om.WithLevel(level), om.WithSchedule(*schedule)}
	if *trace {
		opts = append(opts, om.WithTrace())
	}
	optDoc, err := om.MarshalOptions(opts...)
	if err != nil {
		fatalf("%v", err)
	}

	spec := &omd.JobSpec{
		Version:   omd.SpecVersion,
		Benchmark: *bench,
		BuildMode: *buildMode,
		NoStdlib:  *noStdlib,
		Options:   optDoc,
		Simulate:  *simulate,
		Verify:    *verifyJob,
		Lint:      *lintJob,
		TimeoutMS: timeout.Milliseconds(),
	}
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fatalf("%v", err)
		}
		spec.Objects = append(spec.Objects, data)
	}
	if *profPath != "" {
		data, err := os.ReadFile(*profPath)
		if err != nil {
			fatalf("%v", err)
		}
		spec.Profile = data
	}

	c := client.New(*server, nil)
	var st *omd.JobStatus
	if *traceID != "" {
		st, err = c.SubmitTraced(ctx, spec, *traceID, *wait)
	} else if *wait {
		st, err = c.SubmitWait(ctx, spec)
	} else {
		st, err = c.Submit(ctx, spec)
	}
	if err != nil {
		if client.IsQueueFull(err) {
			ae := err.(*client.APIError)
			fatalf("server busy, retry in %ds: %v", ae.RetryAfter, err)
		}
		fatalf("%v", err)
	}
	printJSON(st)
	if st.State == omd.JobFailed {
		os.Exit(1)
	}
	if *out != "" {
		data, err := c.Image(ctx, st.ID)
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(*out, data, 0o666); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "omctl: wrote %s (%d bytes)\n", *out, len(data))
	}
}
