// Command omtrace renders OM decision journals (written by `om -trace` or
// `omrepro -trace`) into human-readable "why was this site not optimized"
// reports, machine-readable JSON summaries, and a CI-friendly accounting
// check: every address load, call site, and GP-reset pair of the program
// must appear in the journal exactly once.
//
// Usage:
//
//	omtrace [-check [-verify doc]] [-json] [-kept] [-proc name] [-reason substr] journal.json...
//
// -check -verify cross-checks the journal against an om-verify/v1 verdict
// document (written by `om -verify -trace` or omverify): the two accounting
// systems must agree event-for-event on every reason code, so a validator
// that silently dropped events — or a journal reason the validator does not
// model — fails the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/obs"
	"repro/internal/verify"
)

func main() {
	check := flag.Bool("check", false, "verify journal accounting (events cover 100% of sites) and exit")
	verifyFile := flag.String("verify", "", "om-verify/v1 verdict document to cross-check reason counts against (with -check)")
	jsonOut := flag.Bool("json", false, "emit a JSON summary instead of the text report")
	keptOnly := flag.Bool("kept", false, "list only sites that stayed unoptimized")
	procFilter := flag.String("proc", "", "restrict the site listing to the named procedure")
	reasonFilter := flag.String("reason", "", "restrict the site listing to reason codes containing this substring")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: omtrace [-check [-verify doc]] [-json] [-kept] [-proc name] [-reason substr] journal.json...")
		os.Exit(2)
	}
	if *verifyFile != "" && !*check {
		fmt.Fprintln(os.Stderr, "omtrace: -verify requires -check")
		os.Exit(2)
	}

	var vdoc *verify.Doc
	if *verifyFile != "" {
		vf, err := os.Open(*verifyFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "omtrace:", err)
			os.Exit(1)
		}
		vdoc, err = verify.Read(vf)
		vf.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "omtrace: %s: %v\n", *verifyFile, err)
			os.Exit(1)
		}
	}

	ok := true
	for _, name := range flag.Args() {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "omtrace:", err)
			os.Exit(1)
		}
		d, err := obs.ReadJournal(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "omtrace: %s: %v\n", name, err)
			os.Exit(1)
		}
		switch {
		case *check:
			err := d.Check()
			if err == nil && vdoc != nil {
				err = vdoc.CrossCheck(d)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "omtrace: %s: FAIL: %v\n", name, err)
				ok = false
			} else {
				extra := ""
				if n, present := d.Totals["layout"]; present {
					extra = fmt.Sprintf(", %d layout", n)
				}
				cross := ""
				if vdoc != nil {
					cross = fmt.Sprintf("; %d verdicts cover every reason", vdoc.Checked)
				}
				fmt.Printf("%s: ok (%d addr, %d call, %d gpreset%s events, all accounted for%s)\n",
					name, d.Totals["addr"], d.Totals["call"], d.Totals["gpreset"], extra, cross)
			}
		case *jsonOut:
			emitJSON(name, d)
		default:
			report(name, d, *keptOnly, *procFilter, *reasonFilter)
		}
	}
	if !ok {
		os.Exit(1)
	}
}

// emitJSON prints a machine-readable summary in the repository's JSON
// house style (tab-indented, trailing newline, like BENCH_sim.json).
func emitJSON(name string, d *obs.JournalDoc) {
	summary := struct {
		File   string            `json:"file"`
		Schema string            `json:"schema"`
		Level  string            `json:"level,omitempty"`
		Totals map[string]uint64 `json:"totals"`
		Counts map[string]uint64 `json:"reason_counts"`
	}{name, d.Schema, d.Level, d.Totals, d.Counts}
	data, err := json.MarshalIndent(summary, "", "\t")
	if err != nil {
		fmt.Fprintln(os.Stderr, "omtrace:", err)
		os.Exit(1)
	}
	os.Stdout.Write(append(data, '\n'))
}

// report prints the per-reason tally and the site listing.
func report(name string, d *obs.JournalDoc, keptOnly bool, procFilter, reasonFilter string) {
	fmt.Printf("%s: %s — %d address loads, %d call sites, %d GP-resets\n",
		name, d.Level, d.Totals["addr"], d.Totals["call"], d.Totals["gpreset"])
	for _, reason := range d.Reasons() {
		fmt.Printf("  %-36s %6d\n", reason, d.Counts[reason])
	}
	fmt.Println()
	shown := 0
	for _, e := range d.Events {
		if keptOnly && !strings.Contains(e.Reason, ":kept:") {
			continue
		}
		if procFilter != "" && e.Proc != procFilter {
			continue
		}
		if reasonFilter != "" && !strings.Contains(e.Reason, reasonFilter) {
			continue
		}
		line := fmt.Sprintf("  %s+%d: %s", e.Proc, e.Index, describe(e))
		if e.Detail != "" {
			line += " (" + e.Detail + ")"
		}
		fmt.Println(line)
		shown++
	}
	if shown > 0 {
		fmt.Println()
	}
}

// describe turns an event into a "what happened and why" sentence.
func describe(e obs.Event) string {
	what := map[string]string{
		"addr":    "address load",
		"call":    "call",
		"gpreset": "GP-reset pair",
		"layout":  "procedure",
	}[e.Cat]
	target := ""
	if e.Target != "" {
		target = " of " + e.Target
	}
	switch {
	case strings.Contains(e.Reason, ":kept:"):
		why := strings.TrimPrefix(e.Reason, e.Cat+":kept:")
		return fmt.Sprintf("%s%s kept: %s", what, target, why)
	default:
		did := strings.TrimPrefix(e.Reason, e.Cat+":")
		return fmt.Sprintf("%s%s %s", what, target, did)
	}
}
