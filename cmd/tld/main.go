// Command tld is the traditional (standard) linker: it merges relocatable
// object modules and the runtime library into an executable image with no
// link-time optimization.
//
// Usage:
//
//	tld [-o a.out] [-nostdlib] file.o...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/link"
	"repro/internal/objfile"
	"repro/internal/rtlib"
)

func main() {
	out := flag.String("o", "a.out", "output image file")
	nostdlib := flag.Bool("nostdlib", false, "do not link the runtime library")
	shared := flag.String("shared", "", "comma-separated module names to treat as a dynamically-linked shared library")
	flag.Parse()

	objs, err := loadObjects(flag.Args(), !*nostdlib)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tld:", err)
		os.Exit(1)
	}
	p, err := link.Merge(objs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tld:", err)
		os.Exit(1)
	}
	if *shared != "" {
		p.MarkShared(strings.Split(*shared, ",")...)
	}
	im, err := p.Layout()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tld:", err)
		os.Exit(1)
	}
	if err := writeImage(*out, im); err != nil {
		fmt.Fprintln(os.Stderr, "tld:", err)
		os.Exit(1)
	}
}

func loadObjects(names []string, withLib bool) ([]*objfile.Object, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("no input objects")
	}
	var objs []*objfile.Object
	for _, name := range names {
		f, err := os.Open(name)
		if err != nil {
			return nil, err
		}
		obj, err := objfile.Read(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		objs = append(objs, obj)
	}
	if withLib {
		lib, err := rtlib.StandardObjects()
		if err != nil {
			return nil, err
		}
		objs = append(objs, lib...)
	}
	return objs, nil
}

func writeImage(name string, im *objfile.Image) error {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	defer f.Close()
	return im.Write(f)
}
