// Command omdump prints OM's symbolic view of a merged program: procedures,
// their relocation-derived annotations, and per-procedure statistics. It is
// the debugging window into the lift phase.
//
// Usage:
//
//	omdump [-proc name] [-nostdlib] file.o...
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/axp"
	"repro/internal/link"
	"repro/internal/objfile"
	"repro/internal/om"
	"repro/internal/rtlib"
)

func main() {
	proc := flag.String("proc", "", "dump only the named procedure")
	nostdlib := flag.Bool("nostdlib", false, "do not merge the runtime library")
	flag.Parse()

	var objs []*objfile.Object
	for _, name := range flag.Args() {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "omdump:", err)
			os.Exit(1)
		}
		obj, err := objfile.Read(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "omdump: %s: %v\n", name, err)
			os.Exit(1)
		}
		objs = append(objs, obj)
	}
	if len(objs) == 0 {
		fmt.Fprintln(os.Stderr, "omdump: no input objects")
		os.Exit(2)
	}
	if !*nostdlib {
		lib, err := rtlib.StandardObjects()
		if err != nil {
			fmt.Fprintln(os.Stderr, "omdump:", err)
			os.Exit(1)
		}
		objs = append(objs, lib...)
	}
	p, err := link.Merge(objs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "omdump:", err)
		os.Exit(1)
	}
	prog, err := om.Lift(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "omdump:", err)
		os.Exit(1)
	}
	for _, pr := range prog.Procs {
		if *proc != "" && pr.Name != *proc {
			continue
		}
		dumpProc(prog, pr)
	}
}

func dumpProc(prog *om.Prog, pr *om.Proc) {
	fmt.Printf("%s: (module %d, %d instructions", pr.Name, pr.Mod, len(pr.Insts))
	if pr.DataAddrTaken {
		fmt.Print(", address in data")
	}
	fmt.Println(")")
	for i, si := range pr.Insts {
		fmt.Printf("  %4d: %-28v", i, si.In)
		switch {
		case si.Lit != nil:
			fmt.Printf(" LITERAL %s%+d (%d uses)", si.Lit.Key.Name, si.Lit.Key.Addend, len(si.Lit.Uses))
		case si.Use != nil && si.Use.JSR:
			fmt.Print(" LITUSE jsr")
		case si.Use != nil:
			fmt.Print(" LITUSE base")
		case si.GPD != nil && si.GPD.High && si.GPD.Entry:
			fmt.Print(" GPDISP prologue (hi)")
		case si.GPD != nil && si.GPD.High:
			fmt.Print(" GPDISP after-call (hi)")
		case si.GPD != nil:
			fmt.Print(" GPDISP (lo)")
		case si.Call != nil:
			fmt.Printf(" CALL %s+%d", si.Call.Target.Name, si.Call.EntryOffset)
		case si.Indirect:
			fmt.Print(" indirect call")
		case si.GPRel != nil:
			fmt.Printf(" GPREL %s%+d", si.GPRel.Key.Name, si.GPRel.Extra)
		}
		if si.In.Op.IsBranch() && si.Target >= 0 {
			fmt.Printf(" -> L%d", si.Target)
		}
		for _, l := range si.Labels {
			fmt.Printf(" [L%d]", l)
		}
		fmt.Println()
		_ = i
	}
	_ = axp.WordBytes
	fmt.Println()
}
