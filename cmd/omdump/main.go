// Command omdump prints OM's symbolic view of a merged program: procedures,
// their relocation-derived annotations, and per-procedure statistics. It is
// the debugging window into the lift phase. With -stats it instead runs the
// optimizer with the decision journal enabled and prints a per-procedure
// breakdown of what happened to every candidate site.
//
// Usage:
//
//	omdump [-proc name] [-nostdlib] [-stats [-level none|simple|full]] file.o...
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/axp"
	"repro/internal/link"
	"repro/internal/objfile"
	"repro/internal/om"
	"repro/internal/rtlib"
)

func main() {
	proc := flag.String("proc", "", "dump only the named procedure")
	nostdlib := flag.Bool("nostdlib", false, "do not merge the runtime library")
	stats := flag.Bool("stats", false, "run the optimizer and print a per-procedure decision breakdown")
	level := flag.String("level", "full", "optimization level for -stats: none, simple, or full")
	flag.Parse()

	var objs []*objfile.Object
	for _, name := range flag.Args() {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "omdump:", err)
			os.Exit(1)
		}
		obj, err := objfile.Read(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "omdump: %s: %v\n", name, err)
			os.Exit(1)
		}
		objs = append(objs, obj)
	}
	if len(objs) == 0 {
		fmt.Fprintln(os.Stderr, "omdump: no input objects")
		os.Exit(2)
	}
	if !*nostdlib {
		lib, err := rtlib.StandardObjects()
		if err != nil {
			fmt.Fprintln(os.Stderr, "omdump:", err)
			os.Exit(1)
		}
		objs = append(objs, lib...)
	}
	p, err := link.Merge(objs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "omdump:", err)
		os.Exit(1)
	}
	if *stats {
		if err := dumpStats(p, *level, *proc); err != nil {
			fmt.Fprintln(os.Stderr, "omdump:", err)
			os.Exit(1)
		}
		return
	}
	prog, err := om.Lift(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "omdump:", err)
		os.Exit(1)
	}
	for _, pr := range prog.Procs {
		if *proc != "" && pr.Name != *proc {
			continue
		}
		dumpProc(prog, pr)
	}
}

func dumpProc(prog *om.Prog, pr *om.Proc) {
	fmt.Printf("%s: (module %d, %d instructions", pr.Name, pr.Mod, len(pr.Insts))
	if pr.DataAddrTaken {
		fmt.Print(", address in data")
	}
	fmt.Println(")")
	for i, si := range pr.Insts {
		fmt.Printf("  %4d: %-28v", i, si.In)
		switch {
		case si.Lit != nil:
			fmt.Printf(" LITERAL %s%+d (%d uses)", si.Lit.Key.Name, si.Lit.Key.Addend, len(si.Lit.Uses))
		case si.Use != nil && si.Use.JSR:
			fmt.Print(" LITUSE jsr")
		case si.Use != nil:
			fmt.Print(" LITUSE base")
		case si.GPD != nil && si.GPD.High && si.GPD.Entry:
			fmt.Print(" GPDISP prologue (hi)")
		case si.GPD != nil && si.GPD.High:
			fmt.Print(" GPDISP after-call (hi)")
		case si.GPD != nil:
			fmt.Print(" GPDISP (lo)")
		case si.Call != nil:
			fmt.Printf(" CALL %s+%d", si.Call.Target.Name, si.Call.EntryOffset)
		case si.Indirect:
			fmt.Print(" indirect call")
		case si.GPRel != nil:
			fmt.Printf(" GPREL %s%+d", si.GPRel.Key.Name, si.GPRel.Extra)
		}
		if si.In.Op.IsBranch() && si.Target >= 0 {
			fmt.Printf(" -> L%d", si.Target)
		}
		for _, l := range si.Labels {
			fmt.Printf(" [L%d]", l)
		}
		fmt.Println()
		_ = i
	}
	_ = axp.WordBytes
	fmt.Println()
}

// dumpStats runs the optimizer with the decision journal enabled and prints
// a per-procedure table: how many address loads were converted, nullified,
// or kept; how many calls became direct or stayed indirect; and how many
// GP-reset pairs were removed. The totals row matches om.Stats.
func dumpStats(p *link.Program, level, procFilter string) error {
	var lvl om.Level
	switch level {
	case "none":
		lvl = om.LevelNone
	case "simple":
		lvl = om.LevelSimple
	case "full":
		lvl = om.LevelFull
	default:
		return fmt.Errorf("unknown level %q", level)
	}
	res, err := om.Run(context.Background(), p, om.WithLevel(lvl), om.WithTrace())
	if err != nil {
		return err
	}
	type row struct {
		addrConv, addrNull, addrKept uint64
		callConv, callDir, callKept  uint64
		resetRm, resetKept           uint64
	}
	byProc := map[string]*row{}
	var names []string
	for _, e := range res.Journal.Events {
		r := byProc[e.Proc]
		if r == nil {
			r = &row{}
			byProc[e.Proc] = r
			names = append(names, e.Proc)
		}
		switch {
		case strings.HasPrefix(e.Reason, "addr:converted"):
			r.addrConv++
		case strings.HasPrefix(e.Reason, "addr:nullified"):
			r.addrNull++
		case e.Cat == "addr":
			r.addrKept++
		case strings.HasPrefix(e.Reason, "call:converted"):
			r.callConv++
		case strings.HasPrefix(e.Reason, "call:already-direct"):
			r.callDir++
		case e.Cat == "call":
			r.callKept++
		case strings.HasPrefix(e.Reason, "gpreset:removed"):
			r.resetRm++
		default:
			r.resetKept++
		}
	}
	sort.Strings(names)
	fmt.Printf("per-procedure decision breakdown at level %s (%d events)\n", level, len(res.Journal.Events))
	fmt.Printf("%-24s | %6s %6s %6s | %6s %6s %6s | %6s %6s\n",
		"procedure", "a.conv", "a.null", "a.kept", "c.conv", "c.dir", "c.kept", "r.gone", "r.kept")
	fmt.Println(strings.Repeat("-", 24+3+3*7+3+3*7+3+2*7))
	var tot row
	for _, n := range names {
		if procFilter != "" && n != procFilter {
			continue
		}
		r := byProc[n]
		fmt.Printf("%-24s | %6d %6d %6d | %6d %6d %6d | %6d %6d\n",
			n, r.addrConv, r.addrNull, r.addrKept, r.callConv, r.callDir, r.callKept, r.resetRm, r.resetKept)
		tot.addrConv += r.addrConv
		tot.addrNull += r.addrNull
		tot.addrKept += r.addrKept
		tot.callConv += r.callConv
		tot.callDir += r.callDir
		tot.callKept += r.callKept
		tot.resetRm += r.resetRm
		tot.resetKept += r.resetKept
	}
	fmt.Printf("%-24s | %6d %6d %6d | %6d %6d %6d | %6d %6d\n",
		"TOTAL", tot.addrConv, tot.addrNull, tot.addrKept, tot.callConv, tot.callDir, tot.callKept, tot.resetRm, tot.resetKept)
	fmt.Printf("\nstats: %v\n", res.Stats)
	return nil
}
