// Package repro's root benchmarks time the reproduction's tooling, one
// benchmark per paper artifact plus pipeline micro-benchmarks:
//
//   - BenchmarkFig3Statics / Fig4Statics / Fig5Statics: the static-analysis
//     pipeline behind Figures 3-5 (compile + merge + OM at both levels).
//   - BenchmarkFig6Dynamic: the dynamic experiment behind Figure 6 (all
//     link variants of one benchmark, simulated).
//   - BenchmarkFig7StandardLink / OMNone / OMSimple / OMFull / OMFullSched
//     and BenchmarkFig7InterprocBuild: the build-time columns of Figure 7.
//   - BenchmarkGATReduction: the §5.1 GAT measurement.
//
// Absolute times differ from the 1994 DEC hardware, but the orderings the
// paper reports (OM a small constant over ld; scheduling superlinear on
// big-basic-block programs like fpppp; interprocedural rebuilds far slower
// than an optimizing link) are reproduced by these benchmarks.
package repro

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/buildcache"
	"repro/internal/link"
	"repro/internal/objfile"
	"repro/internal/om"
	"repro/internal/rtlib"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/tcc"
)

// runOM merges the objects and runs OM under the given options (the
// benchmarks' shorthand for the link.Merge + om.Run pipeline).
func runOM(objs []*objfile.Object, opts ...om.Option) (*objfile.Image, *om.Stats, error) {
	p, err := link.Merge(objs)
	if err != nil {
		return nil, nil, err
	}
	res, err := om.Run(context.Background(), p, opts...)
	if err != nil {
		return nil, nil, err
	}
	return res.Image, res.Stats, nil
}

// buildObjects compiles a benchmark's modules separately plus the library.
func buildObjects(b *testing.B, name string) []*objfile.Object {
	b.Helper()
	bench, ok := spec.ByName(name)
	if !ok {
		b.Fatalf("no benchmark %s", name)
	}
	var objs []*objfile.Object
	for _, m := range bench.Modules {
		obj, err := tcc.Compile(m.Name, []tcc.Source{m}, tcc.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		objs = append(objs, obj)
	}
	lib, err := rtlib.StandardObjects()
	if err != nil {
		b.Fatal(err)
	}
	return append(objs, lib...)
}

func benchOM(b *testing.B, name string, opts ...om.Option) {
	objs := buildObjects(b, name)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := runOM(objs, opts...); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 7: build-time columns. The paper's table rows are programs;
// here li is the representative medium program and fpppp the
// big-basic-block stress case for the scheduling column.

func BenchmarkFig7StandardLink(b *testing.B) {
	objs := buildObjects(b, "li")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := link.Link(objs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7InterprocBuild(b *testing.B) {
	bench, _ := spec.ByName("li")
	lib, err := rtlib.StandardObjects()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj, err := tcc.Compile("li_all", bench.Modules, tcc.InterprocOptions())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := link.Link(append([]*objfile.Object{obj}, lib...)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7OMNone(b *testing.B)   { benchOM(b, "li", om.WithLevel(om.LevelNone)) }
func BenchmarkFig7OMSimple(b *testing.B) { benchOM(b, "li", om.WithLevel(om.LevelSimple)) }
func BenchmarkFig7OMFull(b *testing.B)   { benchOM(b, "li", om.WithLevel(om.LevelFull)) }
func BenchmarkFig7OMFullSched(b *testing.B) {
	benchOM(b, "li", om.WithLevel(om.LevelFull), om.WithSchedule(true))
}

// BenchmarkFig7SchedBigBlocks shows the superlinear scheduling cost the
// paper observed on fpppp and doduc.
func BenchmarkFig7SchedBigBlocks(b *testing.B) {
	benchOM(b, "fpppp", om.WithLevel(om.LevelFull), om.WithSchedule(true))
}

// --- Figures 3-5: the static measurement pipeline.

func benchStatics(b *testing.B, name string) {
	objs := buildObjects(b, name)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, lvl := range []om.Level{om.LevelNone, om.LevelSimple, om.LevelFull} {
			_, st, err := runOM(objs, om.WithLevel(lvl))
			if err != nil {
				b.Fatal(err)
			}
			if st.AddressLoads == 0 {
				b.Fatal("no address loads measured")
			}
		}
	}
}

func BenchmarkFig3Statics(b *testing.B) { benchStatics(b, "espresso") }
func BenchmarkFig4Statics(b *testing.B) { benchStatics(b, "spice") }
func BenchmarkFig5Statics(b *testing.B) { benchStatics(b, "tomcatv") }

// BenchmarkGATReduction measures the §5.1 quantity end to end.
func BenchmarkGATReduction(b *testing.B) {
	objs := buildObjects(b, "alvinn")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := runOM(objs, om.WithLevel(om.LevelFull))
		if err != nil {
			b.Fatal(err)
		}
		if st.GATBytesAfter >= st.GATBytesBefore {
			b.Fatal("GAT did not shrink")
		}
	}
}

// --- Figure 6: the dynamic experiment for one benchmark (spice, the
// smallest of the suite, to keep bench time reasonable).

func BenchmarkFig6Dynamic(b *testing.B) {
	objs := buildObjects(b, "spice")
	baseline, err := link.Link(objs)
	if err != nil {
		b.Fatal(err)
	}
	fullIm, _, err := runOM(objs, om.WithLevel(om.LevelFull), om.WithSchedule(true))
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r1, err := sim.Run(baseline, cfg)
		if err != nil {
			b.Fatal(err)
		}
		r2, err := sim.Run(fullIm, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if r2.Stats.Instructions >= r1.Stats.Instructions {
			b.Fatal("OM-full did not reduce instruction count")
		}
		insts += r1.Stats.Instructions + r2.Stats.Instructions
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "inst/s")
}

// --- Incremental warm-path benchmarks. Cold is the daemon's worst case —
// decode every uploaded module, merge, and link from nothing. The warm
// variants run against resident caches: WarmSameOptions re-submits one
// (program, options) point, replaying the per-procedure pass memo every
// iteration; WarmNewOptions alternates between two option sets of the same
// program, so every timed relink changes the options relative to the link
// before it — the daemon's steady-state options-change path, served from
// the resident program, lift store, and both sets' pass memo entries. (The
// first-ever visit to an option point recomputes its passes over the cached
// lifted form; the omd warm tests pin that path's zero-re-decode /
// zero-re-lift behavior via the pipeline counters.)

// serializeObjects renders each module to the wire bytes a daemon receives.
func serializeObjects(b *testing.B, objs []*objfile.Object) [][]byte {
	b.Helper()
	var raw [][]byte
	for _, obj := range objs {
		var buf bytes.Buffer
		if err := obj.Write(&buf); err != nil {
			b.Fatal(err)
		}
		raw = append(raw, buf.Bytes())
	}
	return raw
}

func BenchmarkLinkCold(b *testing.B) {
	raw := serializeObjects(b, buildObjects(b, "li"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var objs []*objfile.Object
		for _, data := range raw {
			obj, err := objfile.Read(bytes.NewReader(data))
			if err != nil {
				b.Fatal(err)
			}
			objs = append(objs, obj)
		}
		if _, _, err := runOM(objs, om.WithLevel(om.LevelFull)); err != nil {
			b.Fatal(err)
		}
	}
}

// warmLink primes the resident caches with one full link per option set,
// then times relinks cycling through the sets: one set is the repeated-
// submission path, several make every timed iteration an options-change
// relink of a program the caches already hold.
func warmLink(b *testing.B, memo *om.Memo, optSets ...[]om.Option) {
	objs := buildObjects(b, "li")
	pc := buildcache.NewProgramCache(0, nil)
	run := func(opts []om.Option) {
		p, _, err := pc.GetOrMerge(objs)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := om.Run(context.Background(), p, append(opts, om.WithMemo(memo))...); err != nil {
			b.Fatal(err)
		}
	}
	for _, opts := range optSets {
		run(opts)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(optSets[i%len(optSets)])
	}
}

func BenchmarkLinkWarmSameOptions(b *testing.B) {
	warmLink(b, om.NewMemo(nil),
		[]om.Option{om.WithLevel(om.LevelFull)})
}

func BenchmarkLinkWarmNewOptions(b *testing.B) {
	warmLink(b, om.NewMemo(nil),
		[]om.Option{om.WithLevel(om.LevelFull)},
		[]om.Option{om.WithAblation(om.Ablation{NoCommonSort: true})})
}

// --- Pipeline micro-benchmarks.

func BenchmarkCompileEach(b *testing.B) {
	bench, _ := spec.ByName("li")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range bench.Modules {
			if _, err := tcc.Compile(m.Name, []tcc.Source{m}, tcc.DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkLift(b *testing.B) {
	objs := buildObjects(b, "li")
	p, err := link.Merge(objs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := om.Lift(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateFunctional(b *testing.B) {
	objs := buildObjects(b, "spice")
	im, err := link.Link(objs)
	if err != nil {
		b.Fatal(err)
	}
	res, err := sim.Run(im, sim.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(im, sim.Config{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Stats.Instructions)*float64(b.N)/b.Elapsed().Seconds(), "inst/s")
}

func BenchmarkSimulateTiming(b *testing.B) {
	objs := buildObjects(b, "spice")
	im, err := link.Link(objs)
	if err != nil {
		b.Fatal(err)
	}
	res, err := sim.Run(im, sim.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(im, sim.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Stats.Instructions)*float64(b.N)/b.Elapsed().Seconds(), "inst/s")
}

// Sanity for the figure pipeline: keep the benchmarks honest by checking a
// couple of headline shapes once (not timed).
func TestBenchmarkShapes(t *testing.T) {
	objs := buildObjects2(t, "li")
	_, simple, err := runOM(objs, om.WithLevel(om.LevelSimple))
	if err != nil {
		t.Fatal(err)
	}
	_, full, err := runOM(objs, om.WithLevel(om.LevelFull))
	if err != nil {
		t.Fatal(err)
	}
	if simple.AddrRemovedFrac() < 0.3 {
		t.Errorf("OM-simple removed only %.0f%% of address loads", 100*simple.AddrRemovedFrac())
	}
	if full.AddrRemovedFrac() < simple.AddrRemovedFrac() {
		t.Error("OM-full removed fewer address loads than OM-simple")
	}
	if full.NullifiedFrac() < 0.05 {
		t.Errorf("OM-full deleted only %.1f%% of instructions", 100*full.NullifiedFrac())
	}
	fmt.Printf("li: simple %s\nli: full   %s\n", simple, full)
}

func buildObjects2(t *testing.T, name string) []*objfile.Object {
	t.Helper()
	bench, ok := spec.ByName(name)
	if !ok {
		t.Fatalf("no benchmark %s", name)
	}
	var objs []*objfile.Object
	for _, m := range bench.Modules {
		obj, err := tcc.Compile(m.Name, []tcc.Source{m}, tcc.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, obj)
	}
	lib, err := rtlib.StandardObjects()
	if err != nil {
		t.Fatal(err)
	}
	return append(objs, lib...)
}

// BenchmarkAblation times the full ablation pass set (the repository's
// added study attributing OM-full's win to its components).
func BenchmarkAblation(b *testing.B) {
	objs := buildObjects(b, "li")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ab := range om.Ablations() {
			p, err := link.Merge(objs)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := om.Run(context.Background(), p, om.WithAblation(ab)); err != nil {
				b.Fatal(err)
			}
		}
	}
}
