// Gatshrink: demonstrates GAT reduction and data placement on a program
// with many global variables. It prints the global address table before and
// after OM-full, and shows how the sorted commons land next to the GAT
// where 16-bit GP-relative displacements reach them.
//
//	go run ./examples/gatshrink
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/internal/link"
	"repro/internal/objfile"
	"repro/internal/om"
	"repro/internal/rtlib"
	"repro/internal/sim"
	"repro/internal/tcc"
)

func main() {
	// Generate a module with many globals of mixed sizes.
	var b strings.Builder
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&b, "long g%d;\n", i)
	}
	for i := 0; i < 6; i++ {
		fmt.Fprintf(&b, "long big%d[%d];\n", i, 256<<i)
	}
	b.WriteString(`
long touch() {
	long s = 0;
	long i;
`)
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&b, "\tg%d = %d;\n\ts = s + g%d;\n", i, i*3+1, i)
	}
	b.WriteString(`	for (i = 0; i < 256; i = i + 1) {
		big0[i] = s + i;
		big5[i] = big0[i] * 2;
	}
	return s;
}

long main() {
	print(touch());
	print(lsum(big0, 256));
	return 0;
}
`)

	obj, err := tcc.Compile("many", []tcc.Source{{Name: "many.tc", Text: b.String()}}, tcc.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	lib, err := rtlib.StandardObjects()
	if err != nil {
		log.Fatal(err)
	}
	objs := append([]*objfile.Object{obj}, lib...)

	baseline, err := link.Link(objs)
	if err != nil {
		log.Fatal(err)
	}
	p, err := link.Merge(objs)
	if err != nil {
		log.Fatal(err)
	}
	fullRes, err := om.Run(context.Background(), p, om.WithLevel(om.LevelFull))
	if err != nil {
		log.Fatal(err)
	}
	fullIm, stats := fullRes.Image, fullRes.Stats

	describe := func(label string, im *objfile.Image) {
		fmt.Printf("--- %s ---\n", label)
		for _, g := range im.GATs {
			fmt.Printf("GAT: [%#x, %#x) = %d bytes (%d slots), GP = %#x\n",
				g.Start, g.End, g.End-g.Start, (g.End-g.Start)/8, g.GP)
		}
		// Where did the small globals land relative to GP?
		within := 0
		beyond := 0
		gp := im.GATs[0].GP
		for _, s := range im.Symbols {
			if s.Kind != objfile.SymData || s.Size == 0 {
				continue
			}
			d := int64(s.Addr) - int64(gp)
			if d >= -32768 && d <= 32767 {
				within++
			} else {
				beyond++
			}
		}
		fmt.Printf("data symbols within 16-bit GP reach: %d, beyond: %d\n\n", within, beyond)
	}

	describe("standard link", baseline)
	describe("OM-full", fullIm)
	fmt.Println("OM-full statistics:", stats)

	// Both must still compute the same thing.
	r1, err := sim.Run(baseline, sim.Config{})
	if err != nil {
		log.Fatal(err)
	}
	r2, err := sim.Run(fullIm, sim.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbaseline output %v, om-full output %v\n", r1.Output, r2.Output)
}
