// Callopt: shows the procedure-call optimization instruction by
// instruction. It compiles a two-module program, then disassembles the same
// call site before OM, after OM-simple, and after OM-full — making the
// jsr->bsr conversion, the GP-reset removal, and the PV-load deletion
// visible.
//
//	go run ./examples/callopt
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/axp"
	"repro/internal/link"
	"repro/internal/objfile"
	"repro/internal/om"
	"repro/internal/rtlib"
	"repro/internal/tcc"
)

const caller = `
long helper(long a, long b);
long total = 0;

long driver(long n) {
	long i;
	for (i = 0; i < n; i = i + 1) {
		total = total + helper(i, n - i);
	}
	return total;
}

long main() {
	print(driver(100));
	return 0;
}
`

const callee = `
long helper(long a, long b) {
	return a * b + 1;
}
`

func main() {
	objA, err := tcc.Compile("caller", []tcc.Source{{Name: "caller.tc", Text: caller}}, tcc.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	objB, err := tcc.Compile("callee", []tcc.Source{{Name: "callee.tc", Text: callee}}, tcc.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	lib, err := rtlib.StandardObjects()
	if err != nil {
		log.Fatal(err)
	}
	objs := append([]*objfile.Object{objA, objB}, lib...)

	baseline, err := link.Link(objs)
	if err != nil {
		log.Fatal(err)
	}
	p, err := link.Merge(objs)
	if err != nil {
		log.Fatal(err)
	}
	simpleRes, err := om.Run(context.Background(), p, om.WithLevel(om.LevelSimple))
	if err != nil {
		log.Fatal(err)
	}
	simpleIm := simpleRes.Image
	p, err = link.Merge(objs)
	if err != nil {
		log.Fatal(err)
	}
	fullRes, err := om.Run(context.Background(), p, om.WithLevel(om.LevelFull))
	if err != nil {
		log.Fatal(err)
	}
	fullIm := fullRes.Image

	show := func(label string, im *objfile.Image) {
		sym, ok := im.FindSymbol("driver")
		if !ok {
			log.Fatalf("%s: no driver symbol", label)
		}
		text := im.TextSegment()
		lo := sym.Addr - text.Addr
		labels := map[uint64]string{}
		for _, s := range im.Symbols {
			if s.Kind == objfile.SymProc {
				labels[s.Addr] = s.Name
			}
		}
		fmt.Printf("=== driver under %s (%d instructions) ===\n", label, sym.Size/4)
		fmt.Print(axp.Disassemble(text.Data[lo:lo+sym.Size], sym.Addr, labels))
		fmt.Println()
	}

	fmt.Println("The call site inside driver: watch the PV load (ldq pv),")
	fmt.Println("the jsr, and the two GP-reset instructions after it.")
	fmt.Println()
	show("standard link", baseline)
	show("OM-simple (replacement only: nops, jsr->bsr)", simpleIm)
	show("OM-full (deletion, bsr past the GP setup)", fullIm)
}
