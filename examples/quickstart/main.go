// Quickstart: compile a Tiny C program, link it three ways (standard, OM
// simple, OM full), run each in the simulator, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/link"
	"repro/internal/objfile"
	"repro/internal/om"
	"repro/internal/rtlib"
	"repro/internal/sim"
	"repro/internal/tcc"
)

const program = `
// A little program with globals, calls, and floating point: everything the
// conservative 64-bit code model makes expensive.
long counter = 0;
double scale = 1.5;
long table[64];

long fill(long n) {
	long i;
	for (i = 0; i < n; i = i + 1) {
		table[i] = lhash(i) % 1000;
		counter = counter + 1;
	}
	return counter;
}

long main() {
	fill(64);
	long i;
	long sum = 0;
	for (i = 0; i < 64; i = i + 1) { sum = sum + table[i]; }
	print(sum);
	print_fixed(scale * sum);
	return 0;
}
`

func main() {
	// 1. Compile the user program (one module) the way "cc -O2" would.
	obj, err := tcc.Compile("quickstart", []tcc.Source{{Name: "quickstart.tc", Text: program}},
		tcc.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// 2. Pull in the precompiled runtime library.
	lib, err := rtlib.StandardObjects()
	if err != nil {
		log.Fatal(err)
	}
	objs := append([]*objfile.Object{obj}, lib...)

	// 3. Standard link.
	baseline, err := link.Link(objs)
	if err != nil {
		log.Fatal(err)
	}

	// 4. OM at both levels. Each level lifts a fresh merge (transforms
	// mutate the merged program).
	p, err := link.Merge(objs)
	if err != nil {
		log.Fatal(err)
	}
	simpleRes, err := om.Run(context.Background(), p, om.WithLevel(om.LevelSimple))
	if err != nil {
		log.Fatal(err)
	}
	simpleIm, simpleStats := simpleRes.Image, simpleRes.Stats
	p, err = link.Merge(objs)
	if err != nil {
		log.Fatal(err)
	}
	fullRes, err := om.Run(context.Background(), p,
		om.WithLevel(om.LevelFull), om.WithSchedule(true))
	if err != nil {
		log.Fatal(err)
	}
	fullIm, fullStats := fullRes.Image, fullRes.Stats

	// 5. Run all three with the 21064-flavored timing model.
	cfg := sim.DefaultConfig()
	run := func(label string, im *objfile.Image) uint64 {
		res, err := sim.Run(im, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s output=%v cycles=%d instructions=%d\n",
			label, res.Output, res.Stats.Cycles, res.Stats.Instructions)
		return res.Stats.Cycles
	}
	base := run("standard", baseline)
	simple := run("om-simple", simpleIm)
	full := run("om-full", fullIm)

	fmt.Println()
	fmt.Println("om-simple:", simpleStats)
	fmt.Println("om-full:  ", fullStats)
	fmt.Printf("\nspeedup: om-simple %.2f%%, om-full+sched %.2f%%\n",
		100*(float64(base)-float64(simple))/float64(base),
		100*(float64(base)-float64(full))/float64(base))
}
