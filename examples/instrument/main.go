// Instrument: uses OM's symbolic form as a link-time program-analysis and
// instrumentation platform (the capability the paper points to with ATOM).
// It lifts a whole linked program, reports its static structure (basic
// blocks, address loads, call graph), then inserts a counting trap at every
// basic block, runs the instrumented binary, and prints the hottest
// procedures — pixie-style profiling without compiler support.
//
//	go run ./examples/instrument
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro/internal/link"
	"repro/internal/objfile"
	"repro/internal/om"
	"repro/internal/profile"
	"repro/internal/rtlib"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/tcc"
)

func main() {
	// Analyze one of the benchmark programs.
	bench, _ := spec.ByName("li")
	var objs []*objfile.Object
	for _, m := range bench.Modules {
		obj, err := tcc.Compile(m.Name, []tcc.Source{m}, tcc.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		objs = append(objs, obj)
	}
	lib, err := rtlib.StandardObjects()
	if err != nil {
		log.Fatal(err)
	}
	p, err := link.Merge(append(objs, lib...))
	if err != nil {
		log.Fatal(err)
	}
	prog, err := om.Lift(p)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("whole-program analysis of %q: %d procedures\n\n", bench.Name, len(prog.Procs))
	fmt.Printf("%-18s %6s %7s %9s %7s %9s\n",
		"procedure", "insts", "blocks", "addrloads", "calls", "indirect")
	totalBlocks, totalCalls := 0, 0
	for _, pr := range prog.Procs {
		blocks := 1
		addrLoads, calls, indirect := 0, 0, 0
		for i, si := range pr.Insts {
			if i > 0 && len(si.Labels) > 0 {
				blocks++
			}
			if si.In.Op.IsBranch() && i+1 < len(pr.Insts) {
				blocks++
			}
			if si.Lit != nil {
				addrLoads++
			}
			if si.In.Op.IsCall() {
				calls++
				if si.Indirect {
					indirect++
				}
			}
		}
		totalBlocks += blocks
		totalCalls += calls
		fmt.Printf("%-18s %6d %7d %9d %7d %9d\n",
			pr.Name, len(pr.Insts), blocks, addrLoads, calls, indirect)
	}
	fmt.Printf("\ntotals: %d basic blocks, %d call sites\n", totalBlocks, totalCalls)

	// The call graph, recovered from relocations alone.
	fmt.Println("\nstatic call graph (direct calls via the GAT or bsr):")
	for _, pr := range prog.Procs {
		var callees []string
		for _, si := range pr.Insts {
			var target *om.Proc
			if si.Call != nil {
				target = si.Call.Target
			} else if si.Use != nil && si.Use.JSR {
				target = prog.ProcFor(si.Use.Lit.Lit.Key)
			}
			if target != nil {
				callees = append(callees, target.Name)
			}
		}
		if len(callees) > 0 {
			fmt.Printf("  %-16s -> %v\n", pr.Name, callees)
		}
	}

	// Now the dynamic side: instrument every basic block, run, and rank.
	ires, err := om.Run(context.Background(), p, om.WithInstrumentation())
	if err != nil {
		log.Fatal(err)
	}
	im, blocks := ires.Image, ires.Blocks
	res, err := sim.Run(im, sim.Config{MaxInstructions: 200_000_000})
	if err != nil {
		log.Fatal(err)
	}
	perProc := map[string]uint64{}
	for _, b := range blocks {
		perProc[b.Proc] += res.Profile[b.ID]
	}
	type hot struct {
		name  string
		count uint64
	}
	var hots []hot
	for name, c := range perProc {
		hots = append(hots, hot{name, c})
	}
	sort.Slice(hots, func(i, j int) bool {
		if hots[i].count != hots[j].count {
			return hots[i].count > hots[j].count
		}
		return hots[i].name < hots[j].name
	})
	fmt.Printf("\ndynamic profile (%d blocks instrumented, program output %v):\n", len(blocks), res.Output)
	fmt.Printf("%-18s %14s\n", "procedure", "block entries")
	for i, h := range hots {
		if i >= 8 {
			break
		}
		fmt.Printf("%-18s %14d\n", h.name, h.count)
	}

	// Close the feedback loop: the counts become an om-profile, and
	// relinking with it lays the hot procedures out front (Pettis-Hansen
	// chain merging), verified against the plain OM-full link.
	prof := profile.FromTraps(om.TrapBlocks(blocks), res.Profile)
	fmt.Printf("\nprofile: %d procedures, %d call edges (hash %.12s)\n",
		len(prof.Procs), len(prof.Edges), prof.Hash())
	relink := func(opts ...om.Option) *sim.Result {
		p, err := link.Merge(append(objs, lib...))
		if err != nil {
			log.Fatal(err)
		}
		omres, err := om.Run(context.Background(), p, opts...)
		if err != nil {
			log.Fatal(err)
		}
		r, err := sim.Run(omres.Image, sim.Config{MaxInstructions: 200_000_000})
		if err != nil {
			log.Fatal(err)
		}
		return r
	}
	base := relink(om.WithLevel(om.LevelFull))
	pgo := relink(om.WithLevel(om.LevelFull), om.WithProfile(prof))
	if fmt.Sprint(base.Exit, base.Output) != fmt.Sprint(pgo.Exit, pgo.Output) {
		log.Fatal("profile-guided layout changed program behavior")
	}
	fmt.Println("relinked with profile-guided layout: output identical to OM-full")
}
