// Sharedlib: demonstrates the shared-library extension (the paper's §6:
// "calls to dynamically linked library routines cannot be optimized as
// statically linked calls can"). The same program is optimized twice — once
// fully static, once with the math/util library modules dynamically linked —
// and the surviving call-site bookkeeping is compared.
//
//	go run ./examples/sharedlib
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/link"
	"repro/internal/objfile"
	"repro/internal/om"
	"repro/internal/rtlib"
	"repro/internal/sim"
	"repro/internal/tcc"
)

const program = `
long values[64];

long main() {
	srand48(2026);
	long i;
	for (i = 0; i < 64; i = i + 1) {
		values[i] = xrand() % 1000;       // xrand: in the (maybe-shared) library
	}
	long sum = lsum(values, 64);          // lsum: always statically linked
	print(sum);
	print_fixed(dsqrt(sum));              // dsqrt: in the (maybe-shared) library
	return 0;
}
`

func build(markShared bool) (*link.Program, error) {
	obj, err := tcc.Compile("user", []tcc.Source{{Name: "user", Text: program}}, tcc.DefaultOptions())
	if err != nil {
		return nil, err
	}
	lib, err := rtlib.StandardObjects()
	if err != nil {
		return nil, err
	}
	p, err := link.Merge(append([]*objfile.Object{obj}, lib...))
	if err != nil {
		return nil, err
	}
	if markShared {
		p.MarkShared("libmath", "libutil")
	}
	return p, nil
}

func main() {
	for _, shared := range []bool{false, true} {
		label := "fully static"
		if shared {
			label = "libmath+libutil dynamically linked"
		}
		p, err := build(shared)
		if err != nil {
			log.Fatal(err)
		}
		omres, err := om.Run(context.Background(), p, om.WithLevel(om.LevelFull))
		if err != nil {
			log.Fatal(err)
		}
		im, st := omres.Image, omres.Stats
		res, err := sim.Run(im, sim.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", label)
		fmt.Printf("output: %v\n", res.Output)
		fmt.Printf("segments: %d, GATs: %d (%d bytes)\n",
			len(im.Segments), len(im.GATs), im.GATBytes())
		fmt.Printf("after OM-full: %d jsr sites, %d PV loads, %d GP resets remain (%d indirect calls)\n",
			st.JSRAfter, st.PVAfter, st.GPResetAfter, st.IndirectCalls)
		fmt.Printf("cycles: %d\n\n", res.Stats.Cycles)
	}
	fmt.Println("The dynamically-linked build keeps the jsr/PV/GP-reset overhead at")
	fmt.Println("every call that crosses the library boundary; the static build")
	fmt.Println("removes all of it. This is why the paper's whole-program analysis")
	fmt.Println("\"encompassed non-shared versions of all library modules\".")
}
