package sim

import (
	"context"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/axp"
	"repro/internal/objfile"
)

// image assembles instructions into a minimal runnable image.
func image(t *testing.T, insts []axp.Inst) *objfile.Image {
	t.Helper()
	code, err := axp.EncodeAll(insts)
	if err != nil {
		t.Fatal(err)
	}
	return &objfile.Image{
		Entry: objfile.TextBase,
		Segments: []objfile.Segment{
			{Name: ".text", Addr: objfile.TextBase, Data: code},
			{Name: ".data", Addr: objfile.DataBase, Data: make([]byte, 4096)},
		},
		Symbols: []objfile.ImageSymbol{
			{Name: "__start", Addr: objfile.TextBase, Size: uint64(len(code)), Kind: objfile.SymProc},
		},
	}
}

// runInsts executes the program and returns its output trace.
func runInsts(t *testing.T, insts []axp.Inst) []int64 {
	t.Helper()
	res, err := Run(image(t, insts), Config{MaxInstructions: 100000})
	if err != nil {
		t.Fatal(err)
	}
	return res.Output
}

// emitOut writes instructions that print reg and then halt.
func outAndHalt(reg axp.Reg) []axp.Inst {
	return []axp.Inst{
		axp.Mov(reg, axp.A0),
		axp.Pal(axp.PalOutput),
		axp.Mov(axp.Zero, axp.A0),
		axp.Pal(axp.PalHalt),
	}
}

func TestExecArithmetic(t *testing.T) {
	cases := []struct {
		name  string
		setup []axp.Inst
		want  int64
	}{
		{"lda", []axp.Inst{axp.MemInst(axp.LDA, axp.T0, axp.Zero, -7)}, -7},
		{"ldah", []axp.Inst{axp.MemInst(axp.LDAH, axp.T0, axp.Zero, 2)}, 131072},
		{"addq-lit", []axp.Inst{
			axp.MemInst(axp.LDA, axp.T1, axp.Zero, 40),
			axp.OpLitInst(axp.ADDQ, axp.T1, 2, axp.T0),
		}, 42},
		{"subq", []axp.Inst{
			axp.MemInst(axp.LDA, axp.T1, axp.Zero, 10),
			axp.MemInst(axp.LDA, axp.T2, axp.Zero, 25),
			axp.OpInst(axp.SUBQ, axp.T1, axp.T2, axp.T0),
		}, -15},
		{"mulq", []axp.Inst{
			axp.MemInst(axp.LDA, axp.T1, axp.Zero, -6),
			axp.OpLitInst(axp.MULQ, axp.T1, 7, axp.T0),
		}, -42},
		{"sra-negative", []axp.Inst{
			axp.MemInst(axp.LDA, axp.T1, axp.Zero, -64),
			axp.OpLitInst(axp.SRA, axp.T1, 3, axp.T0),
		}, -8},
		{"srl", []axp.Inst{
			axp.MemInst(axp.LDA, axp.T1, axp.Zero, 64),
			axp.OpLitInst(axp.SRL, axp.T1, 3, axp.T0),
		}, 8},
		{"cmplt-true", []axp.Inst{
			axp.MemInst(axp.LDA, axp.T1, axp.Zero, -5),
			axp.OpLitInst(axp.CMPLT, axp.T1, 3, axp.T0),
		}, 1},
		{"cmpult-negative-is-big", []axp.Inst{
			axp.MemInst(axp.LDA, axp.T1, axp.Zero, -5),
			axp.OpLitInst(axp.CMPULT, axp.T1, 3, axp.T0),
		}, 0},
		{"ornot-zero", []axp.Inst{
			axp.MemInst(axp.LDA, axp.T1, axp.Zero, 0),
			axp.OpInst(axp.ORNOT, axp.Zero, axp.T1, axp.T0),
		}, -1},
		{"s8addq", []axp.Inst{
			axp.MemInst(axp.LDA, axp.T1, axp.Zero, 5),
			axp.OpLitInst(axp.S8ADDQ, axp.T1, 2, axp.T0),
		}, 42},
		{"cmoveq-taken", []axp.Inst{
			axp.MemInst(axp.LDA, axp.T0, axp.Zero, 9),
			axp.OpLitInst(axp.CMOVEQ, axp.Zero, 5, axp.T0),
		}, 5},
		{"cmovne-not-taken", []axp.Inst{
			axp.MemInst(axp.LDA, axp.T0, axp.Zero, 9),
			axp.OpLitInst(axp.CMOVNE, axp.Zero, 5, axp.T0),
		}, 9},
		{"addl-wraps", []axp.Inst{
			axp.MemInst(axp.LDAH, axp.T1, axp.Zero, 0x7FFF),
			axp.MemInst(axp.LDA, axp.T1, axp.T1, 0x7FFF),
			axp.OpInst(axp.ADDL, axp.T1, axp.T1, axp.T0),
		}, -65538}, // 0x7FFF7FFF + 0x7FFF7FFF wraps to 0xFFFEFFFE as a longword
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out := runInsts(t, append(c.setup, outAndHalt(axp.T0)...))
			if len(out) != 1 || out[0] != c.want {
				t.Errorf("got %v, want [%d]", out, c.want)
			}
		})
	}
}

func TestExecMemory(t *testing.T) {
	// Store then load via SP.
	prog := []axp.Inst{
		axp.MemInst(axp.LDA, axp.T1, axp.Zero, 1234),
		axp.MemInst(axp.STQ, axp.T1, axp.SP, -8),
		axp.MemInst(axp.LDQ, axp.T0, axp.SP, -8),
	}
	out := runInsts(t, append(prog, outAndHalt(axp.T0)...))
	if out[0] != 1234 {
		t.Fatalf("got %v", out)
	}

	// STL/LDL truncate and sign-extend.
	prog2 := []axp.Inst{
		axp.MemInst(axp.LDAH, axp.T1, axp.Zero, -1), // 0xFFFF0000 sign-extended
		axp.MemInst(axp.STL, axp.T1, axp.SP, -16),
		axp.MemInst(axp.LDL, axp.T0, axp.SP, -16),
	}
	out2 := runInsts(t, append(prog2, outAndHalt(axp.T0)...))
	if out2[0] != -65536 {
		t.Fatalf("ldl got %v, want -65536", out2)
	}
}

func TestExecBranches(t *testing.T) {
	// beq not taken, bne taken: output should be 7 (skips the lda 9).
	prog := []axp.Inst{
		axp.MemInst(axp.LDA, axp.T1, axp.Zero, 1),
		axp.BranchInst(axp.BNE, axp.T1, 1), // skip next
		axp.MemInst(axp.LDA, axp.T0, axp.Zero, 9),
		axp.MemInst(axp.LDA, axp.T0, axp.T0, 7), // t0 = t0 + 7
	}
	out := runInsts(t, append(prog, outAndHalt(axp.T0)...))
	if out[0] != 7 {
		t.Fatalf("got %v, want [7]", out)
	}
}

func TestExecCallRet(t *testing.T) {
	// bsr to a function that sets t0=11 and returns.
	prog := []axp.Inst{
		axp.BranchInst(axp.BSR, axp.RA, 4), // to +5th inst
		axp.Mov(axp.T0, axp.A0),
		axp.Pal(axp.PalOutput),
		axp.Mov(axp.Zero, axp.A0),
		axp.Pal(axp.PalHalt),
		// callee:
		axp.MemInst(axp.LDA, axp.T0, axp.Zero, 11),
		axp.JumpInst(axp.RET, axp.Zero, axp.RA),
	}
	res, err := Run(image(t, prog), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0] != 11 {
		t.Fatalf("got %v", res.Output)
	}
}

func TestExecFloat(t *testing.T) {
	// Build 2.5 via integer bits through memory, then arithmetic.
	prog := []axp.Inst{
		// 2.5 = 0x4004000000000000
		axp.MemInst(axp.LDAH, axp.T1, axp.Zero, 0x4004),
		axp.OpLitInst(axp.SLL, axp.T1, 32, axp.T1),
		axp.MemInst(axp.STQ, axp.T1, axp.SP, -8),
		axp.MemFInst(axp.LDT, 1, axp.SP, -8),
		axp.OpFInst(axp.ADDT, 1, 1, 2),   // f2 = 5.0
		axp.OpFInst(axp.MULT, 2, 2, 3),   // f3 = 25.0
		axp.OpFInst(axp.CVTTQ, 31, 3, 4), // f4 bits = 25
		axp.MemFInst(axp.STT, 4, axp.SP, -16),
		axp.MemInst(axp.LDQ, axp.T0, axp.SP, -16),
	}
	out := runInsts(t, append(prog, outAndHalt(axp.T0)...))
	if out[0] != 25 {
		t.Fatalf("got %v, want [25]", out)
	}
}

func TestExecErrors(t *testing.T) {
	// Unaligned quadword access.
	bad := []axp.Inst{
		axp.MemInst(axp.LDQ, axp.T0, axp.SP, -7),
	}
	if _, err := Run(image(t, bad), Config{}); err == nil {
		t.Error("expected unaligned-access error")
	}
	// Runaway loop hits the instruction cap.
	loop := []axp.Inst{axp.BranchInst(axp.BR, axp.Zero, -1)}
	if _, err := Run(image(t, loop), Config{MaxInstructions: 1000}); err == nil {
		t.Error("expected instruction-limit error")
	}
	// PC escaping text.
	escape := []axp.Inst{axp.JumpInst(axp.JMP, axp.Zero, axp.Zero)}
	if _, err := Run(image(t, escape), Config{}); err == nil {
		t.Error("expected bad-pc error")
	}
}

func TestCacheDirectMapped(t *testing.T) {
	c := NewCache(8<<10, 32)
	if c.Access(0x1000) {
		t.Error("first access should miss")
	}
	if !c.Access(0x1008) {
		t.Error("same line should hit")
	}
	if c.Access(0x1000 + 8192) {
		t.Error("aliased line should miss")
	}
	if c.Access(0x1000) {
		t.Error("original line should have been evicted")
	}
	c.Reset()
	if c.Access(0x1000) {
		t.Error("reset should invalidate")
	}
	if c.Accesses != 1 || c.Misses != 1 {
		t.Errorf("stats after reset: %d/%d", c.Accesses, c.Misses)
	}
}

func TestMemoryQuick(t *testing.T) {
	m := NewMemory()
	f := func(addr uint32, v uint64) bool {
		a := uint64(addr) &^ 7
		if err := m.Write64(a, v); err != nil {
			return false
		}
		got, err := m.Read64(a)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Unwritten memory reads as zero.
	if v, err := m.Read64(0x9999990000); err != nil || v != 0 {
		t.Errorf("fresh read = %d, %v", v, err)
	}
}

func TestTimingSensitivities(t *testing.T) {
	// A dependent chain of loads must cost more cycles than independent ALU
	// ops of the same count.
	mkProg := func(body []axp.Inst) []axp.Inst {
		return append(body, axp.Mov(axp.Zero, axp.A0), axp.Pal(axp.PalHalt))
	}
	var chain []axp.Inst
	for i := 0; i < 64; i++ {
		chain = append(chain, axp.MemInst(axp.LDQ, axp.T0, axp.SP, -8))
	}
	var alu []axp.Inst
	for i := 0; i < 64; i++ {
		alu = append(alu, axp.OpLitInst(axp.ADDQ, axp.T0, 1, axp.T0))
	}
	run := func(p []axp.Inst) uint64 {
		res, err := Run(image(t, mkProg(p)), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Cycles
	}
	// The load results are unused, so loads pipeline; but use each loaded
	// value to expose the 3-cycle latency.
	var chainUse []axp.Inst
	for i := 0; i < 64; i++ {
		chainUse = append(chainUse,
			axp.MemInst(axp.LDQ, axp.T0, axp.SP, -8),
			axp.OpLitInst(axp.ADDQ, axp.T0, 1, axp.T1))
	}
	cAlu := run(alu)
	cUse := run(chainUse)
	if cUse <= cAlu*2 {
		t.Errorf("load-use chain (%d cycles) should be slower than ALU chain (%d)", cUse, cAlu)
	}
	_ = run(chain)
}

func TestDualIssuePairing(t *testing.T) {
	// Independent int+mem pairs in the same quadword should dual-issue.
	var prog []axp.Inst
	for i := 0; i < 32; i++ {
		prog = append(prog,
			axp.OpLitInst(axp.ADDQ, axp.T0, 1, axp.T0),
			axp.MemInst(axp.LDQ, axp.T1, axp.SP, -8))
	}
	prog = append(prog, axp.Mov(axp.Zero, axp.A0), axp.Pal(axp.PalHalt))
	res, err := Run(image(t, prog), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DualIssued < 20 {
		t.Errorf("only %d dual issues out of ~32 possible pairs", res.Stats.DualIssued)
	}
}

func TestTwoLevelCache(t *testing.T) {
	// A working set larger than L1 (8KB) but within L2 must cost less with
	// the board cache than without it: repeat sweeps over 16KB of stack.
	var prog []axp.Inst
	prog = append(prog, axp.MemInst(axp.LDA, axp.T2, axp.Zero, 64)) // outer counter
	for i := 0; i < 2048; i++ {
		prog = append(prog, axp.MemInst(axp.LDQ, axp.T3, axp.SP, int32(-8-8*i)))
	}
	prog = append(prog,
		axp.OpLitInst(axp.SUBQ, axp.T2, 1, axp.T2),
		axp.BranchInst(axp.BGT, axp.T2, -(2048+2)),
		axp.Mov(axp.Zero, axp.A0),
		axp.Pal(axp.PalHalt),
	)
	run := func(cfg Config) Stats {
		res, err := Run(image(t, prog), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}
	flat := run(Config{Timing: true, MissPenalty: 30})
	two := run(Config{Timing: true, MissPenalty: 6, L2Bytes: 512 << 10, L2MissPenalty: 24})
	if two.Cycles >= flat.Cycles {
		t.Errorf("board cache did not help: %d vs %d cycles", two.Cycles, flat.Cycles)
	}
	if two.L2Misses == 0 {
		t.Error("L2 saw no misses (cold misses expected)")
	}
	if two.L2Misses*4 >= two.DCacheMisses {
		t.Errorf("L2 misses (%d) should be far fewer than L1 misses (%d)", two.L2Misses, two.DCacheMisses)
	}
}

func TestRunContextCancellation(t *testing.T) {
	// An infinite loop: br . (displacement -1 re-executes the branch).
	im := image(t, []axp.Inst{axp.BranchInst(axp.BR, axp.Zero, -1)})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, im, Config{MaxInstructions: 1 << 40})
	if err == nil {
		t.Fatal("canceled run returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
}
