package sim

import (
	"math/bits"
)

// pairOK reports whether two adjacent instructions may dual-issue
// (simplified 21064 slotting: the two must use different function units).
func pairOK(a, b issueClass) bool { return a != b }

// timeUop advances the pipeline model for the uop executed at pc. All
// per-instruction metadata (operand masks, issue class, written registers,
// base latency) was precomputed at decode time; only the dynamic parts —
// cache probes, readiness, slotting — run here.
func (m *Machine) timeUop(u *uop, pc uint64, taken bool, memAddr uint64, isMem bool) {
	// Operand availability (allocation-free masks: this is the hot path).
	ready := m.cycle
	ints, fps := u.rdInts, u.rdFPs
	for ints != 0 {
		r := uint(bits.TrailingZeros64(ints))
		ints &= ints - 1
		if m.regReady[r] > ready {
			ready = m.regReady[r]
		}
	}
	for fps != 0 {
		f := uint(bits.TrailingZeros64(fps))
		fps &= fps - 1
		if m.fregReady[f] > ready {
			ready = m.fregReady[f]
		}
	}

	// Instruction fetch: an I-cache miss on the line delays issue.
	if !m.icache.Access(pc) {
		ready += m.missPenalty
		if m.l2 != nil && !m.l2.Access(pc) {
			ready += m.l2MissPenalty
		}
	}

	cls := u.class
	var issue uint64
	canPair := m.slotUsed &&
		ready <= m.cycle &&
		pc == m.slotPC+4 &&
		pc&7 == 4 && // second half of the aligned quadword
		pairOK(m.slotClass, cls)
	if canPair {
		issue = m.cycle
		m.slotUsed = false
		m.stats.DualIssued++
		m.cycle = issue + 1
	} else {
		issue = ready
		if m.slotUsed && issue == m.cycle {
			issue++ // slot conflict: wait for the next cycle
		}
		if issue < m.cycle {
			issue = m.cycle
		}
		m.cycle = issue
		m.slotUsed = true
		m.slotClass = cls
		m.slotPC = pc
	}

	// Data cache.
	dmiss := false
	l2miss := false
	if isMem {
		dmiss = !m.dcache.Access(memAddr)
		if dmiss && m.missHook != nil {
			m.missHook(memAddr)
		}
		if dmiss && m.l2 != nil {
			l2miss = !m.l2.Access(memAddr)
		}
	}

	// Result availability: loads add the dynamic miss penalty on top of the
	// precomputed base latency.
	lat := u.latBas
	if u.isLoad && dmiss {
		lat += m.missPenalty
		if l2miss {
			lat += m.l2MissPenalty
		}
	}
	if u.writeR != regZero {
		m.regReady[u.writeR] = issue + lat
	}
	if u.writeF != regZero {
		m.fregReady[u.writeF] = issue + lat
	}
	// Stores that miss stall the write buffer briefly; model as a bump of
	// the issue clock rather than a register stall.
	if u.isStr && dmiss {
		m.cycle += 1
	}

	// Control transfers flush the issue slot and insert a bubble.
	if taken {
		m.stats.TakenBranch++
		m.cycle = issue + 1 + m.takenBubble
		m.slotUsed = false
	}
}
