package sim

import (
	"math/bits"

	"repro/internal/axp"
)

// Issue-to-use latencies of the timing model (cycles).
func resultLatency(in axp.Inst, dmiss bool, penalty int) uint64 {
	var lat uint64
	switch {
	case in.Op.IsLoad():
		lat = 3
		if dmiss {
			lat += uint64(penalty)
		}
	case in.Op == axp.MULQ || in.Op == axp.MULL:
		lat = 16
	case in.Op == axp.UMULH:
		lat = 18
	case in.Op == axp.DIVT:
		lat = 30
	case in.Op.Format() == axp.FormatOpF:
		lat = 6
	default:
		lat = 1
	}
	return lat
}

// pairOK reports whether two adjacent instructions may dual-issue
// (simplified 21064 slotting: the two must use different function units).
func pairOK(a, b issueClass) bool { return a != b }

// time advances the pipeline model for the instruction executed at pc.
func (m *Machine) time(in axp.Inst, pc uint64, taken bool, memAddr uint64, isMem bool) {
	// Operand availability (allocation-free masks: this is the hot path).
	ready := m.cycle
	ints, fps := in.ReadMasks()
	for ints != 0 {
		r := uint(bits.TrailingZeros64(ints))
		ints &= ints - 1
		if m.regReady[r] > ready {
			ready = m.regReady[r]
		}
	}
	for fps != 0 {
		f := uint(bits.TrailingZeros64(fps))
		fps &= fps - 1
		if m.fregReady[f] > ready {
			ready = m.fregReady[f]
		}
	}
	// CALL_PAL serializes and implicitly reads a0.
	if in.Op == axp.CALLPAL && m.regReady[axp.A0] > ready {
		ready = m.regReady[axp.A0]
	}

	// Instruction fetch: an I-cache miss on the line delays issue.
	if !m.icache.Access(pc) {
		ready += uint64(m.cfg.MissPenalty)
		if m.l2 != nil && !m.l2.Access(pc) {
			ready += uint64(m.cfg.L2MissPenalty)
		}
	}

	cls := classify(in)
	var issue uint64
	canPair := m.slotUsed &&
		ready <= m.cycle &&
		pc == m.slotPC+4 &&
		pc&7 == 4 && // second half of the aligned quadword
		pairOK(m.slotClass, cls)
	if canPair {
		issue = m.cycle
		m.slotUsed = false
		m.stats.DualIssued++
		m.cycle = issue + 1
	} else {
		issue = ready
		if m.slotUsed && issue == m.cycle {
			issue++ // slot conflict: wait for the next cycle
		}
		if issue < m.cycle {
			issue = m.cycle
		}
		m.cycle = issue
		m.slotUsed = true
		m.slotClass = cls
		m.slotPC = pc
	}

	// Data cache.
	dmiss := false
	l2miss := false
	if isMem {
		dmiss = !m.dcache.Access(memAddr)
		if dmiss && m.missHook != nil {
			m.missHook(memAddr)
		}
		if dmiss && m.l2 != nil {
			l2miss = !m.l2.Access(memAddr)
		}
	}

	// Result availability.
	penalty := m.cfg.MissPenalty
	if l2miss {
		penalty += m.cfg.L2MissPenalty
	}
	lat := resultLatency(in, dmiss, penalty)
	if w := in.Writes(); w != axp.Zero {
		m.regReady[w] = issue + lat
	}
	if w := in.WritesF(); w != axp.FZero {
		m.fregReady[w] = issue + lat
	}
	// Stores that miss stall the write buffer briefly; model as a bump of
	// the issue clock rather than a register stall.
	if in.Op.IsStore() && dmiss {
		m.cycle += 1
	}

	// Control transfers flush the issue slot and insert a bubble.
	if taken {
		m.stats.TakenBranch++
		m.cycle = issue + 1 + uint64(m.cfg.TakenBranchBubble)
		m.slotUsed = false
	}
}
