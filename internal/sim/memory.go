// Package sim implements a functional and timing simulator for the Alpha
// AXP subset in internal/axp. The timing model is a simplified 21064 (the
// CPU of the paper's DECstation 3000 Model 400): dual issue of adjacent
// instructions within an aligned quadword, 3-cycle load-use latency,
// direct-mapped instruction and data caches, and a taken-branch bubble.
// Absolute cycle counts are not meant to match the 1994 hardware; the
// sensitivities the paper's optimizations exploit (fewer address loads,
// fewer multi-cycle loads, dual-issue slotting, quadword alignment of
// branch targets, cache footprint) are all modeled.
package sim

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

const (
	pageBits = 16
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

// arena is a flat contiguous region backing a reserved address range. Both
// bounds are page-aligned, so any naturally-aligned access that starts
// inside an arena lies entirely inside it and page-map fallback never sees
// an address an arena covers.
type arena struct {
	base, size uint64
	data       []byte
}

// Memory is a sparse little-endian byte-addressable memory. Known-extent
// regions (the image's static segments and the stack) are reserved as flat
// arenas checked first on every access; the page map is the fallback for
// addresses outside every arena, so arbitrary sparse traffic still works.
type Memory struct {
	arenas []arena
	pages  map[uint64][]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64][]byte)}
}

// Reserve backs [addr, addr+size) with a flat zero-initialized arena,
// page-aligning the bounds. Overlapping or adjacent reservations merge;
// pages already populated in the sparse map are absorbed so existing
// contents stay visible. Arenas are searched in reservation order on the
// hot path, so callers should reserve the most-accessed regions first.
func (m *Memory) Reserve(addr, size uint64) {
	if size == 0 {
		return
	}
	base := addr &^ uint64(pageMask)
	end := (addr + size + pageMask) &^ uint64(pageMask)
	var absorbed []arena
	for changed := true; changed; {
		changed = false
		for i := range m.arenas {
			a := m.arenas[i]
			if a.base <= end && base <= a.base+a.size {
				if a.base < base {
					base = a.base
				}
				if ae := a.base + a.size; ae > end {
					end = ae
				}
				absorbed = append(absorbed, a)
				m.arenas = append(m.arenas[:i], m.arenas[i+1:]...)
				changed = true
				break
			}
		}
	}
	na := arena{base: base, size: end - base, data: make([]byte, end-base)}
	for _, a := range absorbed {
		copy(na.data[a.base-base:], a.data)
	}
	for pn := base >> pageBits; pn < end>>pageBits; pn++ {
		if p, ok := m.pages[pn]; ok {
			copy(na.data[pn<<pageBits-base:], p)
			delete(m.pages, pn)
		}
	}
	m.arenas = append(m.arenas, na)
}

func (m *Memory) page(addr uint64, create bool) []byte {
	pn := addr >> pageBits
	p, ok := m.pages[pn]
	if !ok && create {
		p = make([]byte, pageSize)
		m.pages[pn] = p
	}
	return p
}

// LoadBytes copies data into memory at addr.
func (m *Memory) LoadBytes(addr uint64, data []byte) {
	for len(data) > 0 {
		var dst []byte
		if a := m.arenaFor(addr); a != nil {
			dst = a.data[addr-a.base:]
		} else {
			dst = m.page(addr, true)[addr&pageMask:]
		}
		n := copy(dst, data)
		data = data[n:]
		addr += uint64(n)
	}
}

// arenaFor returns the arena containing addr, or nil.
func (m *Memory) arenaFor(addr uint64) *arena {
	for i := range m.arenas {
		a := &m.arenas[i]
		if addr-a.base < a.size {
			return a
		}
	}
	return nil
}

// Read64 reads an aligned quadword.
func (m *Memory) Read64(addr uint64) (uint64, error) {
	if addr&7 != 0 {
		return 0, fmt.Errorf("sim: unaligned quadword read at %#x", addr)
	}
	for i := range m.arenas {
		a := &m.arenas[i]
		if off := addr - a.base; off < a.size {
			return binary.LittleEndian.Uint64(a.data[off:]), nil
		}
	}
	p := m.page(addr, false)
	if p == nil {
		return 0, nil
	}
	return binary.LittleEndian.Uint64(p[addr&pageMask:]), nil
}

// Write64 writes an aligned quadword.
func (m *Memory) Write64(addr uint64, v uint64) error {
	if addr&7 != 0 {
		return fmt.Errorf("sim: unaligned quadword write at %#x", addr)
	}
	for i := range m.arenas {
		a := &m.arenas[i]
		if off := addr - a.base; off < a.size {
			binary.LittleEndian.PutUint64(a.data[off:], v)
			return nil
		}
	}
	p := m.page(addr, true)
	binary.LittleEndian.PutUint64(p[addr&pageMask:], v)
	return nil
}

// Read32 reads an aligned longword.
func (m *Memory) Read32(addr uint64) (uint32, error) {
	if addr&3 != 0 {
		return 0, fmt.Errorf("sim: unaligned longword read at %#x", addr)
	}
	for i := range m.arenas {
		a := &m.arenas[i]
		if off := addr - a.base; off < a.size {
			return binary.LittleEndian.Uint32(a.data[off:]), nil
		}
	}
	p := m.page(addr, false)
	if p == nil {
		return 0, nil
	}
	return binary.LittleEndian.Uint32(p[addr&pageMask:]), nil
}

// Write32 writes an aligned longword.
func (m *Memory) Write32(addr uint64, v uint32) error {
	if addr&3 != 0 {
		return fmt.Errorf("sim: unaligned longword write at %#x", addr)
	}
	for i := range m.arenas {
		a := &m.arenas[i]
		if off := addr - a.base; off < a.size {
			binary.LittleEndian.PutUint32(a.data[off:], v)
			return nil
		}
	}
	p := m.page(addr, true)
	binary.LittleEndian.PutUint32(p[addr&pageMask:], v)
	return nil
}

// Cache is a direct-mapped cache model tracking only tags.
type Cache struct {
	lineBits uint
	mask     uint64 // sets - 1; sets is always a power of two
	tags     []uint64
	valid    []bool
	// Stats
	Accesses uint64
	Misses   uint64
}

// NewCache builds a direct-mapped cache of the given total size and line
// size. Indexing uses line & (sets-1), which silently aliases distinct
// sets unless the set count is a power of two, so a non-power-of-two
// sizeBytes/lineBytes ratio is rounded DOWN to the nearest power of two
// (modeling the largest buildable direct-mapped cache within the budget).
// A cache smaller than one line is a configuration error and panics.
func NewCache(sizeBytes, lineBytes int) *Cache {
	lineBits := uint(0)
	for 1<<lineBits < lineBytes {
		lineBits++
	}
	sets := sizeBytes / lineBytes
	if sets < 1 {
		panic(fmt.Sprintf("sim: cache of %d bytes is smaller than one %d-byte line", sizeBytes, lineBytes))
	}
	if sets&(sets-1) != 0 {
		sets = 1 << (bits.Len(uint(sets)) - 1)
	}
	return &Cache{
		lineBits: lineBits,
		mask:     uint64(sets - 1),
		tags:     make([]uint64, sets),
		valid:    make([]bool, sets),
	}
}

// Sets returns the number of sets (lines) in the cache.
func (c *Cache) Sets() int { return len(c.tags) }

// Access touches addr and reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	line := addr >> c.lineBits
	set := line & c.mask
	if c.valid[set] && c.tags[set] == line {
		return true
	}
	c.valid[set] = true
	c.tags[set] = line
	c.Misses++
	return false
}

// Reset invalidates the cache.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
	}
	c.Accesses, c.Misses = 0, 0
}
