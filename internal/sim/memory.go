// Package sim implements a functional and timing simulator for the Alpha
// AXP subset in internal/axp. The timing model is a simplified 21064 (the
// CPU of the paper's DECstation 3000 Model 400): dual issue of adjacent
// instructions within an aligned quadword, 3-cycle load-use latency,
// direct-mapped instruction and data caches, and a taken-branch bubble.
// Absolute cycle counts are not meant to match the 1994 hardware; the
// sensitivities the paper's optimizations exploit (fewer address loads,
// fewer multi-cycle loads, dual-issue slotting, quadword alignment of
// branch targets, cache footprint) are all modeled.
package sim

import (
	"encoding/binary"
	"fmt"
)

const (
	pageBits = 16
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

// Memory is a sparse little-endian byte-addressable memory.
type Memory struct {
	pages map[uint64][]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64][]byte)}
}

func (m *Memory) page(addr uint64, create bool) []byte {
	pn := addr >> pageBits
	p, ok := m.pages[pn]
	if !ok && create {
		p = make([]byte, pageSize)
		m.pages[pn] = p
	}
	return p
}

// LoadBytes copies data into memory at addr.
func (m *Memory) LoadBytes(addr uint64, data []byte) {
	for len(data) > 0 {
		p := m.page(addr, true)
		off := addr & pageMask
		n := copy(p[off:], data)
		data = data[n:]
		addr += uint64(n)
	}
}

// Read64 reads an aligned quadword.
func (m *Memory) Read64(addr uint64) (uint64, error) {
	if addr&7 != 0 {
		return 0, fmt.Errorf("sim: unaligned quadword read at %#x", addr)
	}
	p := m.page(addr, false)
	if p == nil {
		return 0, nil
	}
	return binary.LittleEndian.Uint64(p[addr&pageMask:]), nil
}

// Write64 writes an aligned quadword.
func (m *Memory) Write64(addr uint64, v uint64) error {
	if addr&7 != 0 {
		return fmt.Errorf("sim: unaligned quadword write at %#x", addr)
	}
	p := m.page(addr, true)
	binary.LittleEndian.PutUint64(p[addr&pageMask:], v)
	return nil
}

// Read32 reads an aligned longword.
func (m *Memory) Read32(addr uint64) (uint32, error) {
	if addr&3 != 0 {
		return 0, fmt.Errorf("sim: unaligned longword read at %#x", addr)
	}
	p := m.page(addr, false)
	if p == nil {
		return 0, nil
	}
	return binary.LittleEndian.Uint32(p[addr&pageMask:]), nil
}

// Write32 writes an aligned longword.
func (m *Memory) Write32(addr uint64, v uint32) error {
	if addr&3 != 0 {
		return fmt.Errorf("sim: unaligned longword write at %#x", addr)
	}
	p := m.page(addr, true)
	binary.LittleEndian.PutUint32(p[addr&pageMask:], v)
	return nil
}

// Cache is a direct-mapped cache model tracking only tags.
type Cache struct {
	lineBits uint
	sets     int
	tags     []uint64
	valid    []bool
	// Stats
	Accesses uint64
	Misses   uint64
}

// NewCache builds a direct-mapped cache of the given total size and line size
// (both powers of two).
func NewCache(sizeBytes, lineBytes int) *Cache {
	lineBits := uint(0)
	for 1<<lineBits < lineBytes {
		lineBits++
	}
	sets := sizeBytes / lineBytes
	return &Cache{
		lineBits: lineBits,
		sets:     sets,
		tags:     make([]uint64, sets),
		valid:    make([]bool, sets),
	}
}

// Access touches addr and reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	line := addr >> c.lineBits
	set := int(line) & (c.sets - 1)
	if c.valid[set] && c.tags[set] == line {
		return true
	}
	c.valid[set] = true
	c.tags[set] = line
	c.Misses++
	return false
}

// Reset invalidates the cache.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
	}
	c.Accesses, c.Misses = 0, 0
}
