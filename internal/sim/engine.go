package sim

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/axp"
)

// This file is the simulator's execution core. The classic interpreter
// re-decoded operands, rebuilt operand-access closures, and linearly
// scanned the text segments on every fetch; the engine here pre-decodes
// each text segment once into flat uops (operands widened, displacements
// pre-scaled, timing metadata precomputed) and indexes them with a
// basic-block table so the run loop executes straight-line code by slice
// index and only re-resolves the segment on a control transfer. Nothing
// on the per-instruction path allocates.

// regZero is the always-zero register index in both register files.
const regZero = 31

// uop is a pre-decoded instruction. Everything exec and the timing model
// need per step is computed once at load time:
//
//   - disp is pre-scaled (bytes for memory format, LDAH's <<16 applied,
//     branch word displacements multiplied out to bytes)
//   - readInts/readFPs are the timing model's operand masks (CALL_PAL's
//     implicit a0 read folded in)
//   - writeR/writeF, class and latBase replace the per-step Writes()/
//     classify()/resultLatency() recomputation
//   - ctl marks instructions that may transfer control, i.e. basic-block
//     terminators for the block index
type uop struct {
	op     axp.Op
	class  issueClass
	ra, rb uint8
	rc     uint8
	fa, fb uint8
	fc     uint8
	writeR uint8
	writeF uint8
	hasLit bool
	isLoad bool
	isStr  bool
	ctl    bool
	lit    uint64
	disp   int64
	rdInts uint64
	rdFPs  uint64
	latBas uint64
	palFn  uint32
}

// decSeg is one executable segment pre-decoded for the engine. blockEnd[i]
// is the index one past the straight-line run beginning at instruction i:
// the basic-block table, precomputed for every possible entry PC, so block
// resolution is two array reads instead of a scan or a keyed cache probe.
type decSeg struct {
	base, end uint64
	insts     []axp.Inst // original decode, kept for error reporting
	uops      []uop
	blockEnd  []int32
}

func newDecSeg(base uint64, insts []axp.Inst) decSeg {
	s := decSeg{
		base:     base,
		end:      base + uint64(4*len(insts)),
		insts:    insts,
		uops:     make([]uop, len(insts)),
		blockEnd: make([]int32, len(insts)),
	}
	for i, in := range insts {
		s.uops[i] = predecode(in)
	}
	for i := len(insts) - 1; i >= 0; i-- {
		if s.uops[i].ctl || i == len(insts)-1 {
			s.blockEnd[i] = int32(i + 1)
		} else {
			s.blockEnd[i] = s.blockEnd[i+1]
		}
	}
	return s
}

func classify(in axp.Inst) issueClass {
	switch {
	case in.Op.IsMem() || in.Op == axp.LDA || in.Op == axp.LDAH:
		if in.Op.IsMem() {
			return classMem
		}
		return classInt
	case in.Op.IsBranch() || in.Op.IsJump() || in.Op == axp.CALLPAL:
		return classBr
	case in.Op.Format() == axp.FormatOpF:
		return classFP
	}
	return classInt
}

// latencyBase is the issue-to-use latency excluding cache-miss penalties
// (loads add the miss penalty dynamically).
func latencyBase(in axp.Inst) uint64 {
	switch {
	case in.Op.IsLoad():
		return 3
	case in.Op == axp.MULQ || in.Op == axp.MULL:
		return 16
	case in.Op == axp.UMULH:
		return 18
	case in.Op == axp.DIVT:
		return 30
	case in.Op.Format() == axp.FormatOpF:
		return 6
	}
	return 1
}

func predecode(in axp.Inst) uop {
	u := uop{
		op:     in.Op,
		class:  classify(in),
		ra:     uint8(in.Ra),
		rb:     uint8(in.Rb),
		rc:     uint8(in.Rc),
		fa:     uint8(in.Fa),
		fb:     uint8(in.Fb),
		fc:     uint8(in.Fc),
		hasLit: in.HasLit,
		lit:    uint64(in.Lit),
		isLoad: in.Op.IsLoad(),
		isStr:  in.Op.IsStore(),
		ctl:    in.Op.IsBranch() || in.Op.IsJump() || in.Op == axp.CALLPAL,
		palFn:  in.PalFn,
		writeR: uint8(in.Writes()),
		writeF: uint8(in.WritesF()),
		latBas: latencyBase(in),
	}
	switch in.Op.Format() {
	case axp.FormatBranch, axp.FormatBranchF:
		u.disp = int64(in.Disp) * 4
	default:
		if in.Op == axp.LDAH {
			u.disp = int64(in.Disp) << 16
		} else {
			u.disp = int64(in.Disp)
		}
	}
	u.rdInts, u.rdFPs = in.ReadMasks()
	if in.Op == axp.CALLPAL {
		// CALL_PAL serializes on a0 (the argument register of every PAL
		// service we model).
		u.rdInts |= 1 << axp.A0
	}
	return u
}

// resolve locates the decoded segment and instruction index for the
// current PC, preferring the segment the engine is already executing in.
func (m *Machine) resolve() (*decSeg, int, error) {
	pc := m.PC
	if pc&3 != 0 {
		return nil, 0, fmt.Errorf("sim: unaligned pc %#x", pc)
	}
	s := &m.segs[m.curSeg]
	if pc < s.base || pc >= s.end {
		found := false
		for i := range m.segs {
			t := &m.segs[i]
			if pc >= t.base && pc < t.end {
				m.curSeg = i
				s = t
				found = true
				break
			}
		}
		if !found {
			return nil, 0, fmt.Errorf("sim: pc %#x outside every text segment", pc)
		}
	}
	return s, int((pc - s.base) >> 2), nil
}

// opB returns the second operand of an operate-format uop.
func (m *Machine) opB(u *uop) uint64 {
	if u.hasLit {
		return u.lit
	}
	return m.R[u.rb]
}

// execUop performs the architectural effect of u and advances PC. It
// reports whether a branch was taken and the memory address touched, for
// timing. Writes to the zero registers are undone by the unconditional
// zeroing at the end, mirroring the hardware's wired-zero semantics.
func (m *Machine) execUop(u *uop) (taken bool, memAddr uint64, isMem bool, err error) {
	next := m.PC + 4
	R := &m.R

	switch u.op {
	case axp.LDA, axp.LDAH: // disp pre-scaled for LDAH
		R[u.ra] = R[u.rb] + uint64(u.disp)
	case axp.LDQ:
		memAddr = R[u.rb] + uint64(u.disp)
		isMem = true
		v, e := m.mem.Read64(memAddr)
		if e != nil {
			return false, 0, false, e
		}
		R[u.ra] = v
		m.stats.Loads++
	case axp.LDQU:
		memAddr = (R[u.rb] + uint64(u.disp)) &^ 7
		isMem = true
		if u.ra != regZero { // unop never touches memory in our model
			v, e := m.mem.Read64(memAddr)
			if e != nil {
				return false, 0, false, e
			}
			R[u.ra] = v
			m.stats.Loads++
		} else {
			isMem = false
		}
	case axp.LDL:
		memAddr = R[u.rb] + uint64(u.disp)
		isMem = true
		v, e := m.mem.Read32(memAddr)
		if e != nil {
			return false, 0, false, e
		}
		R[u.ra] = uint64(int64(int32(v)))
		m.stats.Loads++
	case axp.STQ:
		memAddr = R[u.rb] + uint64(u.disp)
		isMem = true
		if e := m.mem.Write64(memAddr, R[u.ra]); e != nil {
			return false, 0, false, e
		}
		m.stats.Stores++
	case axp.STL:
		memAddr = R[u.rb] + uint64(u.disp)
		isMem = true
		if e := m.mem.Write32(memAddr, uint32(R[u.ra])); e != nil {
			return false, 0, false, e
		}
		m.stats.Stores++
	case axp.LDT:
		memAddr = R[u.rb] + uint64(u.disp)
		isMem = true
		v, e := m.mem.Read64(memAddr)
		if e != nil {
			return false, 0, false, e
		}
		m.F[u.fa] = math.Float64frombits(v)
		m.stats.Loads++
	case axp.STT:
		memAddr = R[u.rb] + uint64(u.disp)
		isMem = true
		if e := m.mem.Write64(memAddr, math.Float64bits(m.F[u.fa])); e != nil {
			return false, 0, false, e
		}
		m.stats.Stores++

	case axp.JMP, axp.JSR, axp.RET:
		target := R[u.rb] &^ 3
		R[u.ra] = next
		next = target
		taken = true
	case axp.BR, axp.BSR:
		R[u.ra] = next
		next += uint64(u.disp)
		taken = true
	case axp.BEQ, axp.BNE, axp.BLT, axp.BLE, axp.BGE, axp.BGT, axp.BLBC, axp.BLBS:
		v := int64(R[u.ra])
		switch u.op {
		case axp.BEQ:
			taken = v == 0
		case axp.BNE:
			taken = v != 0
		case axp.BLT:
			taken = v < 0
		case axp.BLE:
			taken = v <= 0
		case axp.BGE:
			taken = v >= 0
		case axp.BGT:
			taken = v > 0
		case axp.BLBC:
			taken = v&1 == 0
		case axp.BLBS:
			taken = v&1 == 1
		}
		if taken {
			next += uint64(u.disp)
		}
	case axp.FBEQ, axp.FBNE, axp.FBLT, axp.FBLE, axp.FBGE, axp.FBGT:
		v := m.F[u.fa]
		switch u.op {
		case axp.FBEQ:
			taken = v == 0
		case axp.FBNE:
			taken = v != 0
		case axp.FBLT:
			taken = v < 0
		case axp.FBLE:
			taken = v <= 0
		case axp.FBGE:
			taken = v >= 0
		case axp.FBGT:
			taken = v > 0
		}
		if taken {
			next += uint64(u.disp)
		}

	case axp.ADDQ:
		R[u.rc] = R[u.ra] + m.opB(u)
	case axp.SUBQ:
		R[u.rc] = R[u.ra] - m.opB(u)
	case axp.ADDL:
		R[u.rc] = uint64(int64(int32(R[u.ra] + m.opB(u))))
	case axp.SUBL:
		R[u.rc] = uint64(int64(int32(R[u.ra] - m.opB(u))))
	case axp.S4ADDQ:
		R[u.rc] = R[u.ra]*4 + m.opB(u)
	case axp.S8ADDQ:
		R[u.rc] = R[u.ra]*8 + m.opB(u)
	case axp.MULQ:
		R[u.rc] = R[u.ra] * m.opB(u)
	case axp.MULL:
		R[u.rc] = uint64(int64(int32(R[u.ra] * m.opB(u))))
	case axp.UMULH:
		h, _ := bits.Mul64(R[u.ra], m.opB(u))
		R[u.rc] = h
	case axp.CMPEQ:
		R[u.rc] = b2u(R[u.ra] == m.opB(u))
	case axp.CMPLT:
		R[u.rc] = b2u(int64(R[u.ra]) < int64(m.opB(u)))
	case axp.CMPLE:
		R[u.rc] = b2u(int64(R[u.ra]) <= int64(m.opB(u)))
	case axp.CMPULT:
		R[u.rc] = b2u(R[u.ra] < m.opB(u))
	case axp.CMPULE:
		R[u.rc] = b2u(R[u.ra] <= m.opB(u))
	case axp.AND:
		R[u.rc] = R[u.ra] & m.opB(u)
	case axp.BIC:
		R[u.rc] = R[u.ra] &^ m.opB(u)
	case axp.BIS:
		R[u.rc] = R[u.ra] | m.opB(u)
	case axp.ORNOT:
		R[u.rc] = R[u.ra] | ^m.opB(u)
	case axp.XOR:
		R[u.rc] = R[u.ra] ^ m.opB(u)
	case axp.EQV:
		R[u.rc] = R[u.ra] ^ ^m.opB(u)
	case axp.SLL:
		R[u.rc] = R[u.ra] << (m.opB(u) & 63)
	case axp.SRL:
		R[u.rc] = R[u.ra] >> (m.opB(u) & 63)
	case axp.SRA:
		R[u.rc] = uint64(int64(R[u.ra]) >> (m.opB(u) & 63))
	case axp.CMOVEQ:
		if R[u.ra] == 0 {
			R[u.rc] = m.opB(u)
		}
	case axp.CMOVNE:
		if R[u.ra] != 0 {
			R[u.rc] = m.opB(u)
		}
	case axp.CMOVLT:
		if int64(R[u.ra]) < 0 {
			R[u.rc] = m.opB(u)
		}
	case axp.CMOVGE:
		if int64(R[u.ra]) >= 0 {
			R[u.rc] = m.opB(u)
		}

	case axp.ADDT:
		m.F[u.fc] = m.F[u.fa] + m.F[u.fb]
	case axp.SUBT:
		m.F[u.fc] = m.F[u.fa] - m.F[u.fb]
	case axp.MULT:
		m.F[u.fc] = m.F[u.fa] * m.F[u.fb]
	case axp.DIVT:
		m.F[u.fc] = m.F[u.fa] / m.F[u.fb]
	case axp.CMPTEQ:
		m.F[u.fc] = fpBool(m.F[u.fa] == m.F[u.fb])
	case axp.CMPTLT:
		m.F[u.fc] = fpBool(m.F[u.fa] < m.F[u.fb])
	case axp.CMPTLE:
		m.F[u.fc] = fpBool(m.F[u.fa] <= m.F[u.fb])
	case axp.CVTQT:
		m.F[u.fc] = float64(int64(math.Float64bits(m.F[u.fb])))
	case axp.CVTTQ:
		m.F[u.fc] = math.Float64frombits(uint64(truncToInt64(m.F[u.fb])))
	case axp.CPYS:
		a := math.Float64bits(m.F[u.fa])
		b := math.Float64bits(m.F[u.fb])
		m.F[u.fc] = math.Float64frombits(a&(1<<63) | b&^(1<<63))

	case axp.CALLPAL:
		if u.palFn&axp.PalProfileFlag != 0 {
			if m.profile == nil {
				m.profile = make(map[uint32]uint64)
			}
			m.profile[uint32(u.palFn&axp.PalProfileIDMask)]++
			break
		}
		switch u.palFn {
		case axp.PalHalt:
			m.halted = true
			m.exit = int64(R[axp.A0])
		case axp.PalOutput:
			m.out = append(m.out, int64(R[axp.A0]))
		case axp.PalOutputChar:
			m.outB = append(m.outB, byte(R[axp.A0]))
		case axp.PalCycles:
			R[axp.V0] = m.cycle
		default:
			return false, 0, false, fmt.Errorf("sim: unknown PAL function %#x", u.palFn)
		}
	default:
		return false, 0, false, fmt.Errorf("sim: unimplemented op %v", u.op)
	}

	R[regZero] = 0
	m.F[regZero] = 0
	m.PC = next
	return taken, memAddr, isMem, nil
}
