package sim

import (
	"context"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/axp"
	"repro/internal/objfile"
)

// Config controls the simulation.
type Config struct {
	// Timing enables the pipeline and cache model; without it the simulator
	// only executes functionally (faster, for correctness tests).
	Timing bool
	// MaxInstructions aborts runaway programs. 0 means the default cap.
	MaxInstructions uint64
	// ICacheBytes / DCacheBytes configure the direct-mapped caches
	// (defaults: 8KB each, 32-byte lines, like the 21064).
	ICacheBytes int
	DCacheBytes int
	// MissPenalty is the extra-cycle cost of a cache miss (to the board
	// cache; a flat model when L2Bytes is 0).
	MissPenalty int
	// L2Bytes, when nonzero, adds a unified second-level (board) cache of
	// this size; a first-level miss that hits L2 costs MissPenalty, and an
	// L2 miss additionally costs L2MissPenalty (the DECstation 3000/400
	// carried a 512KB board cache).
	L2Bytes int
	// L2MissPenalty is the extra cost of missing the board cache.
	L2MissPenalty int
	// TakenBranchBubble is the cycle bubble after a taken branch or jump.
	TakenBranchBubble int
}

// DefaultConfig returns the 21064-flavored timing configuration.
func DefaultConfig() Config {
	return Config{
		Timing:            true,
		ICacheBytes:       8 << 10,
		DCacheBytes:       8 << 10,
		MissPenalty:       10,
		TakenBranchBubble: 1,
	}
}

const defaultMaxInstructions = 400_000_000

// Stats aggregates the timing model's counters.
type Stats struct {
	Instructions uint64
	Cycles       uint64
	DualIssued   uint64
	Loads        uint64
	Stores       uint64
	TakenBranch  uint64
	ICacheMisses uint64
	DCacheMisses uint64
	ICacheHits   uint64
	DCacheHits   uint64
	L2Misses     uint64
}

// Result is the outcome of a simulation.
type Result struct {
	Exit     int64
	Output   []int64
	OutBytes []byte
	Stats    Stats
	// Profile holds per-block execution counts when the program was
	// instrumented with profiling traps (nil otherwise).
	Profile map[uint32]uint64
}

// Machine executes a linked image.
type Machine struct {
	cfg Config
	mem *Memory
	R   [32]uint64
	F   [32]float64
	PC  uint64
	// texts holds every decoded executable segment (static and shared).
	texts []textRange

	halted  bool
	exit    int64
	out     []int64
	outB    []byte
	profile map[uint32]uint64

	// Timing state.
	icache, dcache *Cache
	l2             *Cache
	regReady       [32]uint64
	fregReady      [32]uint64
	cycle          uint64 // next free issue cycle
	slotUsed       bool   // an instruction already issued at `cycle`
	slotClass      issueClass
	slotPC         uint64
	stats          Stats

	// missHook, when set, receives the address of every D-cache miss.
	missHook func(addr uint64)
}

type issueClass uint8

const (
	classInt issueClass = iota
	classMem
	classBr
	classFP
)

func classify(in axp.Inst) issueClass {
	switch {
	case in.Op.IsMem() || in.Op == axp.LDA || in.Op == axp.LDAH:
		if in.Op.IsMem() {
			return classMem
		}
		return classInt
	case in.Op.IsBranch() || in.Op.IsJump() || in.Op == axp.CALLPAL:
		return classBr
	case in.Op.Format() == axp.FormatOpF:
		return classFP
	}
	return classInt
}

// New prepares a machine to run the image.
func New(im *objfile.Image, cfg Config) (*Machine, error) {
	if cfg.MaxInstructions == 0 {
		cfg.MaxInstructions = defaultMaxInstructions
	}
	if cfg.ICacheBytes == 0 {
		cfg.ICacheBytes = 8 << 10
	}
	if cfg.DCacheBytes == 0 {
		cfg.DCacheBytes = 8 << 10
	}
	if cfg.MissPenalty == 0 {
		cfg.MissPenalty = 10
	}
	m := &Machine{cfg: cfg, mem: NewMemory()}
	for i := range im.Segments {
		seg := &im.Segments[i]
		m.mem.LoadBytes(seg.Addr, seg.Data)
		if seg.ZeroSize > 0 {
			m.mem.LoadBytes(seg.Addr+uint64(len(seg.Data)), make([]byte, seg.ZeroSize))
		}
	}
	for _, seg := range im.TextSegments() {
		insts, err := axp.DecodeAll(seg.Data)
		if err != nil {
			return nil, fmt.Errorf("sim: %s does not decode: %w", seg.Name, err)
		}
		m.texts = append(m.texts, textRange{
			base: seg.Addr, end: seg.Addr + uint64(len(seg.Data)), insts: insts,
		})
	}
	if len(m.texts) == 0 {
		return nil, fmt.Errorf("sim: image has no text segment")
	}
	m.PC = im.Entry
	m.R[axp.SP] = objfile.StackTop
	m.R[axp.PV] = im.Entry
	if cfg.Timing {
		m.icache = NewCache(cfg.ICacheBytes, 32)
		m.dcache = NewCache(cfg.DCacheBytes, 32)
		if cfg.L2Bytes > 0 {
			if cfg.L2MissPenalty == 0 {
				cfg.L2MissPenalty = 24
				m.cfg.L2MissPenalty = 24
			}
			m.l2 = NewCache(cfg.L2Bytes, 32)
		}
	}
	return m, nil
}

// Run executes until HALT or an error.
func Run(im *objfile.Image, cfg Config) (*Result, error) {
	return RunContext(context.Background(), im, cfg)
}

// RunContext is Run with cancellation: a long simulation aborts with the
// context's error a bounded number of instructions after it is canceled.
func RunContext(ctx context.Context, im *objfile.Image, cfg Config) (*Result, error) {
	m, err := New(im, cfg)
	if err != nil {
		return nil, err
	}
	return m.RunContext(ctx)
}

// Run executes the loaded program.
func (m *Machine) Run() (*Result, error) {
	return m.RunContext(context.Background())
}

// cancelCheckMask picks how often the run loop polls the context: every
// 64Ki instructions, cheap enough to be invisible in the timing model's
// wall-clock but prompt enough to stop a canceled matrix run quickly.
const cancelCheckMask = 1<<16 - 1

// RunContext executes the loaded program until HALT, an error, or
// cancellation.
func (m *Machine) RunContext(ctx context.Context) (*Result, error) {
	done := ctx.Done()
	for !m.halted {
		if m.stats.Instructions >= m.cfg.MaxInstructions {
			return nil, fmt.Errorf("sim: instruction limit (%d) exceeded at pc=%#x", m.cfg.MaxInstructions, m.PC)
		}
		if done != nil && m.stats.Instructions&cancelCheckMask == 0 {
			select {
			case <-done:
				return nil, fmt.Errorf("sim: run canceled at pc=%#x: %w", m.PC, ctx.Err())
			default:
			}
		}
		if err := m.step(); err != nil {
			return nil, err
		}
	}
	if m.cfg.Timing {
		m.stats.ICacheMisses = m.icache.Misses
		m.stats.ICacheHits = m.icache.Accesses - m.icache.Misses
		m.stats.DCacheMisses = m.dcache.Misses
		m.stats.DCacheHits = m.dcache.Accesses - m.dcache.Misses
		if m.l2 != nil {
			m.stats.L2Misses = m.l2.Misses
		}
		m.stats.Cycles = m.cycle
	}
	return &Result{Exit: m.exit, Output: m.out, OutBytes: m.outB, Stats: m.stats, Profile: m.profile}, nil
}

// textRange is one decoded executable segment.
type textRange struct {
	base, end uint64
	insts     []axp.Inst
}

func (m *Machine) fetch() (axp.Inst, error) {
	if m.PC&3 == 0 {
		for i := range m.texts {
			t := &m.texts[i]
			if m.PC >= t.base && m.PC < t.end {
				return t.insts[(m.PC-t.base)/4], nil
			}
		}
	}
	return axp.Inst{}, fmt.Errorf("sim: pc %#x outside every text segment", m.PC)
}

func (m *Machine) step() error {
	in, err := m.fetch()
	if err != nil {
		return err
	}
	pc := m.PC
	m.stats.Instructions++

	taken, memAddr, isMem, err := m.exec(in)
	if err != nil {
		return fmt.Errorf("%w (pc=%#x, inst=%v)", err, pc, in)
	}
	if m.cfg.Timing {
		m.time(in, pc, taken, memAddr, isMem)
	}
	return nil
}

// exec performs the architectural effect of in and advances PC. It reports
// whether a branch was taken and the memory address touched, for timing.
func (m *Machine) exec(in axp.Inst) (taken bool, memAddr uint64, isMem bool, err error) {
	next := m.PC + 4
	rr := func(r axp.Reg) uint64 { return m.R[r] }
	opB := func() uint64 {
		if in.HasLit {
			return uint64(in.Lit)
		}
		return m.R[in.Rb]
	}
	setR := func(r axp.Reg, v uint64) {
		if r != axp.Zero {
			m.R[r] = v
		}
	}
	setF := func(f axp.FReg, v float64) {
		if f != axp.FZero {
			m.F[f] = v
		}
	}

	switch in.Op {
	case axp.LDA:
		setR(in.Ra, rr(in.Rb)+uint64(int64(in.Disp)))
	case axp.LDAH:
		setR(in.Ra, rr(in.Rb)+uint64(int64(in.Disp)<<16))
	case axp.LDQ:
		memAddr = rr(in.Rb) + uint64(int64(in.Disp))
		isMem = true
		v, e := m.mem.Read64(memAddr)
		if e != nil {
			return false, 0, false, e
		}
		setR(in.Ra, v)
		m.stats.Loads++
	case axp.LDQU:
		memAddr = (rr(in.Rb) + uint64(int64(in.Disp))) &^ 7
		isMem = true
		if in.Ra != axp.Zero { // unop never touches memory in our model
			v, e := m.mem.Read64(memAddr)
			if e != nil {
				return false, 0, false, e
			}
			setR(in.Ra, v)
			m.stats.Loads++
		} else {
			isMem = false
		}
	case axp.LDL:
		memAddr = rr(in.Rb) + uint64(int64(in.Disp))
		isMem = true
		v, e := m.mem.Read32(memAddr)
		if e != nil {
			return false, 0, false, e
		}
		setR(in.Ra, uint64(int64(int32(v))))
		m.stats.Loads++
	case axp.STQ:
		memAddr = rr(in.Rb) + uint64(int64(in.Disp))
		isMem = true
		if e := m.mem.Write64(memAddr, rr(in.Ra)); e != nil {
			return false, 0, false, e
		}
		m.stats.Stores++
	case axp.STL:
		memAddr = rr(in.Rb) + uint64(int64(in.Disp))
		isMem = true
		if e := m.mem.Write32(memAddr, uint32(rr(in.Ra))); e != nil {
			return false, 0, false, e
		}
		m.stats.Stores++
	case axp.LDT:
		memAddr = rr(in.Rb) + uint64(int64(in.Disp))
		isMem = true
		v, e := m.mem.Read64(memAddr)
		if e != nil {
			return false, 0, false, e
		}
		setF(in.Fa, math.Float64frombits(v))
		m.stats.Loads++
	case axp.STT:
		memAddr = rr(in.Rb) + uint64(int64(in.Disp))
		isMem = true
		if e := m.mem.Write64(memAddr, math.Float64bits(m.F[in.Fa])); e != nil {
			return false, 0, false, e
		}
		m.stats.Stores++

	case axp.JMP, axp.JSR, axp.RET:
		target := rr(in.Rb) &^ 3
		setR(in.Ra, next)
		next = target
		taken = true
	case axp.BR, axp.BSR:
		setR(in.Ra, next)
		next = next + uint64(int64(in.Disp)*4)
		taken = true
	case axp.BEQ, axp.BNE, axp.BLT, axp.BLE, axp.BGE, axp.BGT, axp.BLBC, axp.BLBS:
		v := int64(rr(in.Ra))
		switch in.Op {
		case axp.BEQ:
			taken = v == 0
		case axp.BNE:
			taken = v != 0
		case axp.BLT:
			taken = v < 0
		case axp.BLE:
			taken = v <= 0
		case axp.BGE:
			taken = v >= 0
		case axp.BGT:
			taken = v > 0
		case axp.BLBC:
			taken = v&1 == 0
		case axp.BLBS:
			taken = v&1 == 1
		}
		if taken {
			next = next + uint64(int64(in.Disp)*4)
		}
	case axp.FBEQ, axp.FBNE, axp.FBLT, axp.FBLE, axp.FBGE, axp.FBGT:
		v := m.F[in.Fa]
		switch in.Op {
		case axp.FBEQ:
			taken = v == 0
		case axp.FBNE:
			taken = v != 0
		case axp.FBLT:
			taken = v < 0
		case axp.FBLE:
			taken = v <= 0
		case axp.FBGE:
			taken = v >= 0
		case axp.FBGT:
			taken = v > 0
		}
		if taken {
			next = next + uint64(int64(in.Disp)*4)
		}

	case axp.ADDQ:
		setR(in.Rc, rr(in.Ra)+opB())
	case axp.SUBQ:
		setR(in.Rc, rr(in.Ra)-opB())
	case axp.ADDL:
		setR(in.Rc, uint64(int64(int32(rr(in.Ra)+opB()))))
	case axp.SUBL:
		setR(in.Rc, uint64(int64(int32(rr(in.Ra)-opB()))))
	case axp.S4ADDQ:
		setR(in.Rc, rr(in.Ra)*4+opB())
	case axp.S8ADDQ:
		setR(in.Rc, rr(in.Ra)*8+opB())
	case axp.MULQ:
		setR(in.Rc, rr(in.Ra)*opB())
	case axp.MULL:
		setR(in.Rc, uint64(int64(int32(rr(in.Ra)*opB()))))
	case axp.UMULH:
		h, _ := bits.Mul64(rr(in.Ra), opB())
		setR(in.Rc, h)
	case axp.CMPEQ:
		setR(in.Rc, b2u(rr(in.Ra) == opB()))
	case axp.CMPLT:
		setR(in.Rc, b2u(int64(rr(in.Ra)) < int64(opB())))
	case axp.CMPLE:
		setR(in.Rc, b2u(int64(rr(in.Ra)) <= int64(opB())))
	case axp.CMPULT:
		setR(in.Rc, b2u(rr(in.Ra) < opB()))
	case axp.CMPULE:
		setR(in.Rc, b2u(rr(in.Ra) <= opB()))
	case axp.AND:
		setR(in.Rc, rr(in.Ra)&opB())
	case axp.BIC:
		setR(in.Rc, rr(in.Ra)&^opB())
	case axp.BIS:
		setR(in.Rc, rr(in.Ra)|opB())
	case axp.ORNOT:
		setR(in.Rc, rr(in.Ra)|^opB())
	case axp.XOR:
		setR(in.Rc, rr(in.Ra)^opB())
	case axp.EQV:
		setR(in.Rc, rr(in.Ra)^^opB())
	case axp.SLL:
		setR(in.Rc, rr(in.Ra)<<(opB()&63))
	case axp.SRL:
		setR(in.Rc, rr(in.Ra)>>(opB()&63))
	case axp.SRA:
		setR(in.Rc, uint64(int64(rr(in.Ra))>>(opB()&63)))
	case axp.CMOVEQ:
		if rr(in.Ra) == 0 {
			setR(in.Rc, opB())
		}
	case axp.CMOVNE:
		if rr(in.Ra) != 0 {
			setR(in.Rc, opB())
		}
	case axp.CMOVLT:
		if int64(rr(in.Ra)) < 0 {
			setR(in.Rc, opB())
		}
	case axp.CMOVGE:
		if int64(rr(in.Ra)) >= 0 {
			setR(in.Rc, opB())
		}

	case axp.ADDT:
		setF(in.Fc, m.F[in.Fa]+m.F[in.Fb])
	case axp.SUBT:
		setF(in.Fc, m.F[in.Fa]-m.F[in.Fb])
	case axp.MULT:
		setF(in.Fc, m.F[in.Fa]*m.F[in.Fb])
	case axp.DIVT:
		setF(in.Fc, m.F[in.Fa]/m.F[in.Fb])
	case axp.CMPTEQ:
		setF(in.Fc, fpBool(m.F[in.Fa] == m.F[in.Fb]))
	case axp.CMPTLT:
		setF(in.Fc, fpBool(m.F[in.Fa] < m.F[in.Fb]))
	case axp.CMPTLE:
		setF(in.Fc, fpBool(m.F[in.Fa] <= m.F[in.Fb]))
	case axp.CVTQT:
		setF(in.Fc, float64(int64(math.Float64bits(m.F[in.Fb]))))
	case axp.CVTTQ:
		setF(in.Fc, math.Float64frombits(uint64(truncToInt64(m.F[in.Fb]))))
	case axp.CPYS:
		a := math.Float64bits(m.F[in.Fa])
		b := math.Float64bits(m.F[in.Fb])
		setF(in.Fc, math.Float64frombits(a&(1<<63)|b&^(1<<63)))

	case axp.CALLPAL:
		if in.PalFn&axp.PalProfileFlag != 0 {
			if m.profile == nil {
				m.profile = make(map[uint32]uint64)
			}
			m.profile[uint32(in.PalFn&axp.PalProfileIDMask)]++
			break
		}
		switch in.PalFn {
		case axp.PalHalt:
			m.halted = true
			m.exit = int64(m.R[axp.A0])
		case axp.PalOutput:
			m.out = append(m.out, int64(m.R[axp.A0]))
		case axp.PalOutputChar:
			m.outB = append(m.outB, byte(m.R[axp.A0]))
		case axp.PalCycles:
			m.R[axp.V0] = m.cycle
		default:
			return false, 0, false, fmt.Errorf("sim: unknown PAL function %#x", in.PalFn)
		}
	default:
		return false, 0, false, fmt.Errorf("sim: unimplemented op %v", in.Op)
	}

	m.R[axp.Zero] = 0
	m.F[axp.FZero] = 0
	m.PC = next
	return taken, memAddr, isMem, nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// fpBool is the Alpha FP truth value: 2.0 for true, +0.0 for false.
func fpBool(b bool) float64 {
	if b {
		return 2.0
	}
	return 0.0
}

func truncToInt64(f float64) int64 {
	switch {
	case math.IsNaN(f):
		return 0
	case f >= math.MaxInt64:
		return math.MaxInt64
	case f <= math.MinInt64:
		return math.MinInt64
	}
	return int64(f)
}

// MissEntry pairs a symbol region with its data-cache miss count.
type MissEntry struct {
	Name  string
	Count uint64
}

// MissHistogram runs the image and attributes every D-cache miss to the
// covering data symbol (diagnostic helper for layout studies).
func MissHistogram(im *objfile.Image, cfg Config) []MissEntry {
	m, err := New(im, cfg)
	if err != nil {
		return nil
	}
	counts := make(map[string]uint64)
	name := func(addr uint64) string {
		best := "?"
		for _, s := range im.Symbols {
			if s.Kind == objfile.SymData && addr >= s.Addr && addr < s.Addr+s.Size {
				return s.Name
			}
		}
		if addr >= objfile.StackTop-objfile.StackSize && addr <= objfile.StackTop {
			return "<stack>"
		}
		for _, g := range im.GATs {
			if addr >= g.Start && addr < g.End {
				return "<gat>"
			}
		}
		return best
	}
	m.missHook = func(addr uint64) { counts[name(addr)]++ }
	if _, err := m.Run(); err != nil {
		return nil
	}
	var out []MissEntry
	for k, v := range counts {
		out = append(out, MissEntry{k, v})
	}
	for i := range out {
		for j := i + 1; j < len(out); j++ {
			if out[j].Count > out[i].Count {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	if len(out) > 8 {
		out = out[:8]
	}
	return out
}
