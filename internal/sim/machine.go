package sim

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/axp"
	"repro/internal/objfile"
)

// Config controls the simulation.
type Config struct {
	// Timing enables the pipeline and cache model; without it the simulator
	// only executes functionally (faster, for correctness tests).
	Timing bool
	// MaxInstructions aborts runaway programs. 0 means the default cap.
	MaxInstructions uint64
	// ICacheBytes / DCacheBytes configure the direct-mapped caches
	// (defaults: 8KB each, 32-byte lines, like the 21064).
	ICacheBytes int
	DCacheBytes int
	// MissPenalty is the extra-cycle cost of a cache miss (to the board
	// cache; a flat model when L2Bytes is 0).
	MissPenalty int
	// L2Bytes, when nonzero, adds a unified second-level (board) cache of
	// this size; a first-level miss that hits L2 costs MissPenalty, and an
	// L2 miss additionally costs L2MissPenalty (the DECstation 3000/400
	// carried a 512KB board cache).
	L2Bytes int
	// L2MissPenalty is the extra cost of missing the board cache.
	L2MissPenalty int
	// TakenBranchBubble is the cycle bubble after a taken branch or jump.
	TakenBranchBubble int
	// Profile enables execution profiling: per-block execution counts (the
	// hot-block report) and an instruction-mix histogram, returned in
	// Result.BlockProfile and Result.InstMix. Disabled, the run loop pays
	// only a pair of never-taken branches and allocates nothing extra, so
	// the zero-allocation property and benchmark throughput are preserved.
	Profile bool
}

// DefaultConfig returns the 21064-flavored timing configuration.
func DefaultConfig() Config {
	return Config{
		Timing:            true,
		ICacheBytes:       8 << 10,
		DCacheBytes:       8 << 10,
		MissPenalty:       10,
		TakenBranchBubble: 1,
	}
}

const defaultMaxInstructions = 400_000_000

// Stats aggregates the timing model's counters.
type Stats struct {
	Instructions uint64
	Cycles       uint64
	DualIssued   uint64
	Loads        uint64
	Stores       uint64
	TakenBranch  uint64
	ICacheMisses uint64
	DCacheMisses uint64
	ICacheHits   uint64
	DCacheHits   uint64
	L2Misses     uint64
}

// Result is the outcome of a simulation.
type Result struct {
	Exit     int64
	Output   []int64
	OutBytes []byte
	Stats    Stats
	// Profile holds per-block execution counts when the program was
	// instrumented with profiling traps (om.Instrument; nil otherwise),
	// keyed by the trap's block id. This is the pixie-style source: the
	// binary carries the counters, and profile.FromTraps turns the counts
	// plus the instrumenter's block table into an om-profile.
	Profile map[uint32]uint64
	// BlockProfile holds per-block execution counts from the engine's
	// profiling mode (Config.Profile), sorted by descending count with
	// equal counts in ascending-PC order. Each entry is one basic-block
	// entry point actually executed. This is the engine-side source: any
	// unmodified image can be profiled, and profile.FromImage attributes
	// the counts to procedure symbols. Either source feeds the
	// profile-guided layout pipeline (om.WithProfile).
	BlockProfile []BlockCount
	// InstMix maps opcode mnemonics to dynamic execution counts
	// (Config.Profile runs only).
	InstMix map[string]uint64
}

// BlockCount is one hot-block report entry: a basic-block entry point, the
// straight-line run length from it, and how often execution entered there.
type BlockCount struct {
	PC    uint64
	Len   int
	Count uint64
}

// Machine executes a linked image.
type Machine struct {
	cfg Config
	mem *Memory
	R   [32]uint64
	F   [32]float64
	PC  uint64
	// segs holds every executable segment (static and shared), pre-decoded
	// into the engine's uop form with a basic-block index; curSeg caches
	// the segment the engine is currently executing in.
	segs   []decSeg
	curSeg int

	halted  bool
	exit    int64
	out     []int64
	outB    []byte
	profile map[uint32]uint64

	// Profiling mode (cfg.Profile): per-segment block-entry counts parallel
	// to segs[i].uops, and per-opcode execution counts. Preallocated at
	// construction so the run loop only increments array slots.
	profiling  bool
	profBlocks [][]uint64
	profOps    []uint64

	// Timing state. The config's penalties are hoisted into machine fields
	// once at construction so the per-instruction path reads no Config.
	icache, dcache *Cache
	l2             *Cache
	missPenalty    uint64
	l2MissPenalty  uint64
	takenBubble    uint64
	regReady       [32]uint64
	fregReady      [32]uint64
	cycle          uint64 // next free issue cycle
	slotUsed       bool   // an instruction already issued at `cycle`
	slotClass      issueClass
	slotPC         uint64
	stats          Stats

	// missHook, when set, receives the address of every D-cache miss.
	missHook func(addr uint64)
}

type issueClass uint8

const (
	classInt issueClass = iota
	classMem
	classBr
	classFP
)

// New prepares a machine to run the image.
func New(im *objfile.Image, cfg Config) (*Machine, error) {
	if cfg.MaxInstructions == 0 {
		cfg.MaxInstructions = defaultMaxInstructions
	}
	if cfg.ICacheBytes == 0 {
		cfg.ICacheBytes = 8 << 10
	}
	if cfg.DCacheBytes == 0 {
		cfg.DCacheBytes = 8 << 10
	}
	if cfg.MissPenalty == 0 {
		cfg.MissPenalty = 10
	}
	m := &Machine{cfg: cfg, mem: NewMemory()}

	// Back the image's static segments and the stack with flat arenas so
	// the hot load/store path is a bounds check and an indexed access; the
	// sparse page map remains as the fallback for everything else. Data
	// segments are reserved first: the arena list is searched in order and
	// data traffic dominates the fallback-free path.
	isText := make(map[uint64]bool)
	for _, seg := range im.TextSegments() {
		isText[seg.Addr] = true
	}
	for i := range im.Segments {
		seg := &im.Segments[i]
		if !isText[seg.Addr] {
			m.mem.Reserve(seg.Addr, uint64(len(seg.Data))+seg.ZeroSize)
		}
	}
	m.mem.Reserve(objfile.StackTop-objfile.StackSize, objfile.StackSize)
	for _, seg := range im.TextSegments() {
		m.mem.Reserve(seg.Addr, uint64(len(seg.Data)))
	}

	for i := range im.Segments {
		seg := &im.Segments[i]
		m.mem.LoadBytes(seg.Addr, seg.Data)
		if seg.ZeroSize > 0 {
			m.mem.LoadBytes(seg.Addr+uint64(len(seg.Data)), make([]byte, seg.ZeroSize))
		}
	}
	for _, seg := range im.TextSegments() {
		insts, err := axp.DecodeAll(seg.Data)
		if err != nil {
			return nil, fmt.Errorf("sim: %s does not decode: %w", seg.Name, err)
		}
		m.segs = append(m.segs, newDecSeg(seg.Addr, insts))
	}
	if len(m.segs) == 0 {
		return nil, fmt.Errorf("sim: image has no text segment")
	}
	if cfg.Profile {
		m.profiling = true
		m.profBlocks = make([][]uint64, len(m.segs))
		for i := range m.segs {
			m.profBlocks[i] = make([]uint64, len(m.segs[i].uops))
		}
		m.profOps = make([]uint64, 256) // axp.Op is a uint8
	}
	m.PC = im.Entry
	m.R[axp.SP] = objfile.StackTop
	m.R[axp.PV] = im.Entry
	if cfg.Timing {
		m.icache = NewCache(cfg.ICacheBytes, 32)
		m.dcache = NewCache(cfg.DCacheBytes, 32)
		if cfg.L2Bytes > 0 {
			if cfg.L2MissPenalty == 0 {
				cfg.L2MissPenalty = 24
				m.cfg.L2MissPenalty = 24
			}
			m.l2 = NewCache(cfg.L2Bytes, 32)
		}
	}
	m.missPenalty = uint64(m.cfg.MissPenalty)
	m.l2MissPenalty = uint64(m.cfg.L2MissPenalty)
	m.takenBubble = uint64(m.cfg.TakenBranchBubble)
	return m, nil
}

// Run executes until HALT or an error.
func Run(im *objfile.Image, cfg Config) (*Result, error) {
	return RunContext(context.Background(), im, cfg)
}

// RunContext is Run with cancellation: a long simulation aborts with the
// context's error a bounded number of instructions after it is canceled.
func RunContext(ctx context.Context, im *objfile.Image, cfg Config) (*Result, error) {
	m, err := New(im, cfg)
	if err != nil {
		return nil, err
	}
	return m.RunContext(ctx)
}

// Run executes the loaded program.
func (m *Machine) Run() (*Result, error) {
	return m.RunContext(context.Background())
}

// cancelCheckMask picks how often the run loop polls the context: every
// 64Ki instructions, cheap enough to be invisible in the timing model's
// wall-clock but prompt enough to stop a canceled matrix run quickly.
const cancelCheckMask = 1<<16 - 1

// RunContext executes the loaded program until HALT, an error, or
// cancellation. The loop works a basic block at a time: resolve() maps PC
// to a pre-decoded segment once per control transfer, and the inner loop
// walks the block's uops by index with no per-instruction fetch lookup.
func (m *Machine) RunContext(ctx context.Context) (*Result, error) {
	done := ctx.Done()
	maxInst := m.cfg.MaxInstructions
	timing := m.cfg.Timing
	for !m.halted {
		if m.stats.Instructions >= maxInst {
			return nil, fmt.Errorf("sim: instruction limit (%d) exceeded at pc=%#x", maxInst, m.PC)
		}
		if done != nil && m.stats.Instructions&cancelCheckMask == 0 {
			select {
			case <-done:
				return nil, fmt.Errorf("sim: run canceled at pc=%#x: %w", m.PC, ctx.Err())
			default:
			}
		}
		seg, idx, err := m.resolve()
		if err != nil {
			return nil, err
		}
		end := int(seg.blockEnd[idx])
		if m.profiling {
			m.profBlocks[m.curSeg][idx]++
		}
		for {
			u := &seg.uops[idx]
			pc := m.PC
			m.stats.Instructions++
			if m.profiling {
				m.profOps[u.op]++
			}
			taken, memAddr, isMem, err := m.execUop(u)
			if err != nil {
				return nil, fmt.Errorf("%w (pc=%#x, inst=%v)", err, pc, seg.insts[idx])
			}
			if timing {
				m.timeUop(u, pc, taken, memAddr, isMem)
			}
			idx++
			if idx >= end || m.halted {
				break // control transfer (or halt): re-resolve
			}
			// Straight-line fallthrough: the next uop is at PC. Keep the
			// classic loop's per-instruction limit and cancellation cadence.
			if m.stats.Instructions >= maxInst {
				return nil, fmt.Errorf("sim: instruction limit (%d) exceeded at pc=%#x", maxInst, m.PC)
			}
			if done != nil && m.stats.Instructions&cancelCheckMask == 0 {
				select {
				case <-done:
					return nil, fmt.Errorf("sim: run canceled at pc=%#x: %w", m.PC, ctx.Err())
				default:
				}
			}
		}
	}
	if timing {
		m.stats.ICacheMisses = m.icache.Misses
		m.stats.ICacheHits = m.icache.Accesses - m.icache.Misses
		m.stats.DCacheMisses = m.dcache.Misses
		m.stats.DCacheHits = m.dcache.Accesses - m.dcache.Misses
		if m.l2 != nil {
			m.stats.L2Misses = m.l2.Misses
		}
		m.stats.Cycles = m.cycle
	}
	res := &Result{Exit: m.exit, Output: m.out, OutBytes: m.outB, Stats: m.stats, Profile: m.profile}
	if m.profiling {
		res.BlockProfile = m.blockProfile()
		res.InstMix = m.instMix()
	}
	return res, nil
}

// blockProfile summarizes the block-entry counters, sorted by descending
// count (ties by PC, so the report is deterministic).
func (m *Machine) blockProfile() []BlockCount {
	var out []BlockCount
	for s := range m.segs {
		seg := &m.segs[s]
		for i, n := range m.profBlocks[s] {
			if n == 0 {
				continue
			}
			out = append(out, BlockCount{
				PC:    seg.base + uint64(4*i),
				Len:   int(seg.blockEnd[i]) - i,
				Count: n,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].PC < out[j].PC
	})
	return out
}

// instMix maps executed opcode mnemonics to their dynamic counts.
func (m *Machine) instMix() map[string]uint64 {
	mix := make(map[string]uint64)
	for op, n := range m.profOps {
		if n > 0 {
			mix[axp.Op(op).String()] = n
		}
	}
	return mix
}

// fetch returns the decoded instruction at PC. An unaligned PC is reported
// as such, distinct from a PC outside every text segment.
func (m *Machine) fetch() (axp.Inst, error) {
	seg, idx, err := m.resolve()
	if err != nil {
		return axp.Inst{}, err
	}
	return seg.insts[idx], nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// fpBool is the Alpha FP truth value: 2.0 for true, +0.0 for false.
func fpBool(b bool) float64 {
	if b {
		return 2.0
	}
	return 0.0
}

func truncToInt64(f float64) int64 {
	switch {
	case math.IsNaN(f):
		return 0
	case f >= math.MaxInt64:
		return math.MaxInt64
	case f <= math.MinInt64:
		return math.MinInt64
	}
	return int64(f)
}

// MissEntry pairs a symbol region with its data-cache miss count.
type MissEntry struct {
	Name  string
	Count uint64
}

// MissHistogram runs the image and attributes every D-cache miss to the
// covering data symbol (diagnostic helper for layout studies).
func MissHistogram(im *objfile.Image, cfg Config) []MissEntry {
	m, err := New(im, cfg)
	if err != nil {
		return nil
	}
	counts := make(map[string]uint64)
	name := func(addr uint64) string {
		best := "?"
		for _, s := range im.Symbols {
			if s.Kind == objfile.SymData && addr >= s.Addr && addr < s.Addr+s.Size {
				return s.Name
			}
		}
		if addr >= objfile.StackTop-objfile.StackSize && addr <= objfile.StackTop {
			return "<stack>"
		}
		for _, g := range im.GATs {
			if addr >= g.Start && addr < g.End {
				return "<gat>"
			}
		}
		return best
	}
	m.missHook = func(addr uint64) { counts[name(addr)]++ }
	if _, err := m.Run(); err != nil {
		return nil
	}
	var out []MissEntry
	for k, v := range counts {
		out = append(out, MissEntry{k, v})
	}
	for i := range out {
		for j := i + 1; j < len(out); j++ {
			if out[j].Count > out[i].Count {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	if len(out) > 8 {
		out = out[:8]
	}
	return out
}

// ReadBytes copies n bytes of simulated memory starting at addr, for
// post-run state inspection (the differential verifier compares the final
// contents of data symbols across layouts). addr must be quadword-aligned;
// unmapped pages read as zero, matching the machine's own loads.
func (m *Machine) ReadBytes(addr uint64, n int) ([]byte, error) {
	if addr&7 != 0 {
		return nil, fmt.Errorf("sim: unaligned ReadBytes at %#x", addr)
	}
	quads := (n + 7) / 8
	buf := make([]byte, 8*quads)
	for i := 0; i < quads; i++ {
		v, err := m.mem.Read64(addr + uint64(8*i))
		if err != nil {
			return nil, err
		}
		binary.LittleEndian.PutUint64(buf[8*i:], v)
	}
	return buf[:n], nil
}
