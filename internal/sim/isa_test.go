package sim

import (
	"fmt"
	"testing"

	"repro/internal/axp"
)

// runAsm assembles a program, runs it, and returns its output trace. The
// program must end with a HALT.
func runAsm(t *testing.T, src string) []int64 {
	t.Helper()
	insts, _, err := axp.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(image(t, insts), Config{MaxInstructions: 100000})
	if err != nil {
		t.Fatal(err)
	}
	return res.Output
}

// out is the canonical print-t0 sequence.
const emitT0 = `
	bis zero, t0, a0
	call_pal OUTPUT
`

func TestISABitBranches(t *testing.T) {
	out := runAsm(t, `
	lda  t0, 5(zero)      ; odd
	blbs t0, odd
	lda  t0, -1(zero)
odd:`+emitT0+`
	lda  t0, 4(zero)      ; even
	blbc t0, even
	lda  t0, -2(zero)
even:`+emitT0+`
	bis zero, zero, a0
	call_pal HALT
`)
	if fmt.Sprint(out) != "[5 4]" {
		t.Fatalf("got %v", out)
	}
}

func TestISALogicalAndShifts(t *testing.T) {
	out := runAsm(t, `
	lda  t1, 204(zero)      ; 0xCC
	lda  t2, 170(zero)      ; 0xAA
	bic  t1, t2, t0         ; 0xCC &^ 0xAA = 0x44
`+emitT0+`
	eqv  t1, t2, t0         ; ~(0xCC ^ 0xAA) = ~0x66
`+emitT0+`
	lda  t1, 1(zero)
	sll  t1, #40, t0
	srl  t0, #8, t0         ; 1<<32
`+emitT0+`
	lda  t1, -16(zero)
	sra  t1, #2, t0         ; -4
`+emitT0+`
	bis zero, zero, a0
	call_pal HALT
`)
	want := fmt.Sprint([]int64{0x44, ^int64(0x66), 1 << 32, -4})
	if fmt.Sprint(out) != want {
		t.Fatalf("got %v, want %v", out, want)
	}
}

func TestISAMultiplyHigh(t *testing.T) {
	out := runAsm(t, `
	lda  t1, 1(zero)
	sll  t1, #63, t1        ; 0x8000000000000000 (unsigned 2^63)
	lda  t2, 4(zero)
	umulh t1, t2, t0        ; (2^63 * 4) >> 64 = 2
`+emitT0+`
	lda  t1, -1(zero)       ; unsigned max
	lda  t2, 2(zero)
	umulh t1, t2, t0        ; (2^64-1)*2 >> 64 = 1
`+emitT0+`
	lda  t1, 7(zero)
	mull t1, t1, t0         ; 49, longword
`+emitT0+`
	bis zero, zero, a0
	call_pal HALT
`)
	if fmt.Sprint(out) != "[2 1 49]" {
		t.Fatalf("got %v", out)
	}
}

func TestISAUnsignedCompares(t *testing.T) {
	out := runAsm(t, `
	lda  t1, -1(zero)       ; unsigned max
	lda  t2, 1(zero)
	cmpule t1, t2, t0       ; max <= 1? no
`+emitT0+`
	cmpule t2, t1, t0       ; 1 <= max? yes
`+emitT0+`
	cmpult t2, t2, t0       ; 1 < 1? no
`+emitT0+`
	bis zero, zero, a0
	call_pal HALT
`)
	if fmt.Sprint(out) != "[0 1 0]" {
		t.Fatalf("got %v", out)
	}
}

func TestISAConditionalMoves(t *testing.T) {
	out := runAsm(t, `
	lda  t0, 9(zero)
	lda  t1, -3(zero)
	cmovlt t1, #7, t0       ; t1 < 0, so t0 = 7
`+emitT0+`
	lda  t0, 9(zero)
	cmovge t1, #5, t0       ; t1 >= 0? no: t0 stays 9
`+emitT0+`
	bis zero, zero, a0
	call_pal HALT
`)
	if fmt.Sprint(out) != "[7 9]" {
		t.Fatalf("got %v", out)
	}
}

func TestISAScaledAdd(t *testing.T) {
	out := runAsm(t, `
	lda  t1, 10(zero)
	s4addq t1, #2, t0       ; 42
`+emitT0+`
	s8addq t1, #3, t0       ; 83
`+emitT0+`
	bis zero, zero, a0
	call_pal HALT
`)
	if fmt.Sprint(out) != "[42 83]" {
		t.Fatalf("got %v", out)
	}
}

func TestISAUnalignedLoad(t *testing.T) {
	// ldq_u with a non-zero destination really loads (rounded down).
	out := runAsm(t, `
	lda  t1, 1234(zero)
	stq  t1, -8(sp)
	lda  t2, -3(sp)         ; unaligned pointer into the stored quad
	ldq_u t0, 0(t2)
`+emitT0+`
	bis zero, zero, a0
	call_pal HALT
`)
	if fmt.Sprint(out) != "[1234]" {
		t.Fatalf("got %v", out)
	}
}

func TestISAJmp(t *testing.T) {
	out := runAsm(t, `
	bsr  ra, gettarget
	; ra now points at the lda below
	lda  t0, 55(zero)
`+emitT0+`
	bis zero, zero, a0
	call_pal HALT
gettarget:
	jmp  zero, (ra)         ; plain jump back
`)
	if fmt.Sprint(out) != "[55]" {
		t.Fatalf("got %v", out)
	}
}

func TestISAFloatBranchesAndSign(t *testing.T) {
	out := runAsm(t, `
	; build -2.5: 0xC004000000000000
	lda  t1, -16380(zero)   ; 0xC004 sign-extended
	sll  t1, #48, t1
	stq  t1, -8(sp)
	ldt  f1, -8(sp)
	fblt f1, isneg
	lda  t0, -1(zero)
	br   zero, done1
isneg:
	lda  t0, 1(zero)
done1:`+emitT0+`
	; cpys: copy sign of +1.0-ish (f31=+0) onto f1 -> +2.5
	cpys f31, f1, f2
	fbge f2, ispos
	lda  t0, -1(zero)
	br   zero, done2
ispos:
	lda  t0, 2(zero)
done2:`+emitT0+`
	; fbgt/fble
	fbgt f2, gt
	lda  t0, -1(zero)
gt:
	fble f1, le
	lda  t0, -1(zero)
le:`+emitT0+`
	bis zero, zero, a0
	call_pal HALT
`)
	if fmt.Sprint(out) != "[1 2 2]" {
		t.Fatalf("got %v", out)
	}
}

func TestISACvtQT(t *testing.T) {
	out := runAsm(t, `
	lda  t1, -7(zero)
	stq  t1, -8(sp)
	ldt  f1, -8(sp)
	cvtqt f31, f1, f2       ; f2 = -7.0
	addt f2, f2, f3         ; -14.0
	cvttq f31, f3, f4
	stt  f4, -16(sp)
	ldq  t0, -16(sp)
`+emitT0+`
	bis zero, zero, a0
	call_pal HALT
`)
	if fmt.Sprint(out) != "[-14]" {
		t.Fatalf("got %v", out)
	}
}

func TestISAUnknownPalFails(t *testing.T) {
	insts := []axp.Inst{axp.Pal(0x77)}
	if _, err := Run(image(t, insts), Config{}); err == nil {
		t.Fatal("expected error for unknown PAL function")
	}
}

func TestOutputChar(t *testing.T) {
	insts, _, err := axp.Assemble(`
	lda a0, 72(zero)
	call_pal OUTPUTC
	lda a0, 105(zero)
	call_pal OUTPUTC
	bis zero, zero, a0
	call_pal HALT
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(image(t, insts), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if string(res.OutBytes) != "Hi" {
		t.Fatalf("got %q", res.OutBytes)
	}
}
