package sim

import (
	"testing"

	"repro/internal/axp"
	"repro/internal/objfile"
)

// benchImage assembles instructions into a minimal runnable image without a
// testing.T (mirrors the image() helper in sim_test.go).
func benchImage(b *testing.B, insts []axp.Inst) *objfile.Image {
	b.Helper()
	code, err := axp.EncodeAll(insts)
	if err != nil {
		b.Fatal(err)
	}
	return &objfile.Image{
		Entry: objfile.TextBase,
		Segments: []objfile.Segment{
			{Name: ".text", Addr: objfile.TextBase, Data: code},
			{Name: ".data", Addr: objfile.DataBase, Data: make([]byte, 4096)},
		},
	}
}

// runSim executes the image b.N times and reports instructions/second,
// the engine's headline throughput metric.
func runSim(b *testing.B, im *objfile.Image, cfg Config) {
	b.Helper()
	var insts uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := New(im, cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		insts += res.Stats.Instructions
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "inst/s")
}

// stepProgram is a ~1.2M-instruction ALU/branch mix: the dispatch-and-
// execute fast path with no memory traffic.
func stepProgram() []axp.Inst {
	return []axp.Inst{
		axp.MemInst(axp.LDAH, axp.T0, axp.Zero, 2), // 131072 iterations
		// loop:
		axp.OpLitInst(axp.ADDQ, axp.T1, 3, axp.T1),
		axp.OpInst(axp.XOR, axp.T1, axp.T0, axp.T2),
		axp.OpLitInst(axp.SLL, axp.T2, 7, axp.T3),
		axp.OpLitInst(axp.CMPLT, axp.T3, 9, axp.T4),
		axp.OpInst(axp.SUBQ, axp.T3, axp.T1, axp.T5),
		axp.OpLitInst(axp.SRA, axp.T5, 2, axp.T5),
		axp.OpLitInst(axp.SUBQ, axp.T0, 1, axp.T0),
		axp.BranchInst(axp.BGT, axp.T0, -8),
		axp.Mov(axp.Zero, axp.A0),
		axp.Pal(axp.PalHalt),
	}
}

// BenchmarkSimStep measures raw interpreter throughput on straight-line
// integer code, functionally and under the timing model.
func BenchmarkSimStep(b *testing.B) {
	im := benchImage(b, stepProgram())
	b.Run("functional", func(b *testing.B) { runSim(b, im, Config{}) })
	b.Run("timing", func(b *testing.B) { runSim(b, im, DefaultConfig()) })
}

// BenchmarkSimMemory measures the load/store path: two pointers far enough
// apart to exercise distinct cache lines, four memory operations per
// iteration, all inside the stack arena.
func BenchmarkSimMemory(b *testing.B) {
	prog := []axp.Inst{
		axp.MemInst(axp.LDAH, axp.T0, axp.Zero, 3), // 196608 iterations
		axp.MemInst(axp.LDA, axp.T6, axp.SP, -16384),
		// loop:
		axp.MemInst(axp.STQ, axp.T0, axp.SP, -8),
		axp.MemInst(axp.LDQ, axp.T1, axp.SP, -8),
		axp.MemInst(axp.STQ, axp.T1, axp.T6, 0),
		axp.MemInst(axp.LDQ, axp.T2, axp.T6, 8),
		axp.OpLitInst(axp.SUBQ, axp.T0, 1, axp.T0),
		axp.BranchInst(axp.BGT, axp.T0, -6),
		axp.Mov(axp.Zero, axp.A0),
		axp.Pal(axp.PalHalt),
	}
	im := benchImage(b, prog)
	b.Run("functional", func(b *testing.B) { runSim(b, im, Config{}) })
	b.Run("timing", func(b *testing.B) { runSim(b, im, DefaultConfig()) })
}
