package sim

import (
	"context"
	"runtime"
	"strings"
	"testing"

	"repro/internal/axp"
	"repro/internal/objfile"
)

// --- fetch error classification ---

func TestFetchUnalignedPC(t *testing.T) {
	im := image(t, []axp.Inst{axp.Nop(), axp.Pal(axp.PalHalt)})
	m, err := New(im, Config{})
	if err != nil {
		t.Fatal(err)
	}

	m.PC = objfile.TextBase + 2 // inside .text but not instruction-aligned
	if _, err := m.fetch(); err == nil || !strings.Contains(err.Error(), "unaligned pc") {
		t.Errorf("unaligned in-segment pc: got %v, want unaligned-pc error", err)
	}
	m.PC = objfile.TextBase + 0x1_0000_0001 // unaligned and outside: unaligned wins
	if _, err := m.fetch(); err == nil || !strings.Contains(err.Error(), "unaligned pc") {
		t.Errorf("unaligned out-of-segment pc: got %v, want unaligned-pc error", err)
	}
	m.PC = objfile.TextBase + 0x1_0000_0000 // aligned but outside every segment
	if _, err := m.fetch(); err == nil || !strings.Contains(err.Error(), "outside every text segment") {
		t.Errorf("out-of-segment pc: got %v, want outside-segment error", err)
	}
	m.PC = objfile.TextBase
	if in, err := m.fetch(); err != nil || in.Op != axp.BIS {
		t.Errorf("valid pc: got %v, %v", in, err)
	}

	// End to end: an unaligned entry point aborts the run with the distinct
	// error, not the misleading outside-segment one.
	im.Entry = objfile.TextBase + 2
	if _, err := Run(im, Config{}); err == nil || !strings.Contains(err.Error(), "unaligned pc") {
		t.Errorf("run with unaligned entry: got %v, want unaligned-pc error", err)
	}
}

// --- cache set-count validation ---

func TestCacheNonPowerOfTwoSets(t *testing.T) {
	// 3KB / 32B lines = 96 sets, not a power of two: must round down to 64,
	// not alias silently through the index mask.
	c := NewCache(3<<10, 32)
	if c.Sets() != 64 {
		t.Fatalf("sets = %d, want 64", c.Sets())
	}
	// With 64 sets, line 64 maps to set 0 and must evict line 0.
	if c.Access(0) {
		t.Error("cold access hit")
	}
	if c.Access(64 * 32) {
		t.Error("aliased line hit")
	}
	if c.Access(0) {
		t.Error("line 0 should have been evicted by its 64-set alias")
	}

	if got := NewCache(8<<10, 32).Sets(); got != 256 {
		t.Errorf("power-of-two config changed: sets = %d, want 256", got)
	}

	defer func() {
		if recover() == nil {
			t.Error("cache smaller than one line did not panic")
		}
	}()
	NewCache(16, 32)
}

// --- memory edge cases ---

func TestLoadBytesSpanningPageBoundary(t *testing.T) {
	m := NewMemory()
	// Far from any arena: exercises the sparse page map across a boundary.
	addr := uint64(0x50_0000_0000) + pageSize - 4
	m.LoadBytes(addr, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	lo, err := m.Read32(addr)
	if err != nil || lo != 0x04030201 {
		t.Errorf("low half = %#x, %v", lo, err)
	}
	hi, err := m.Read32(addr + 4)
	if err != nil || hi != 0x08070605 {
		t.Errorf("high half across page boundary = %#x, %v", hi, err)
	}
}

func TestMemoryUnmappedReadsZero(t *testing.T) {
	m := NewMemory()
	if v, err := m.Read64(0x9999_0000); v != 0 || err != nil {
		t.Errorf("unmapped Read64 = %d, %v", v, err)
	}
	if v, err := m.Read32(0x9999_0000); v != 0 || err != nil {
		t.Errorf("unmapped Read32 = %d, %v", v, err)
	}
	m.Reserve(0x1000, 0x100)
	if v, err := m.Read64(0x1008); v != 0 || err != nil {
		t.Errorf("fresh arena Read64 = %d, %v", v, err)
	}
}

func TestMemoryUnalignedAccessErrors(t *testing.T) {
	m := NewMemory()
	m.Reserve(0, pageSize) // both backing stores must enforce alignment
	cases := []struct {
		name string
		f    func(addr uint64) error
	}{
		{"read64", func(a uint64) error { _, err := m.Read64(a); return err }},
		{"write64", func(a uint64) error { return m.Write64(a, 1) }},
		{"read32", func(a uint64) error { _, err := m.Read32(a); return err }},
		{"write32", func(a uint64) error { return m.Write32(a, 1) }},
	}
	for _, c := range cases {
		for _, base := range []uint64{0x10, 0x70_0000_0000} { // arena and page map
			if err := c.f(base + 1); err == nil {
				t.Errorf("%s at %#x: no unaligned error", c.name, base+1)
			}
		}
		if err := c.f(0x10); err != nil {
			t.Errorf("%s aligned: %v", c.name, err)
		}
	}
}

func TestMemoryArenaPageMapBoundary(t *testing.T) {
	m := NewMemory()
	m.Reserve(0x2_0000, 0x1_0000) // one exact page: arena = [0x20000, 0x30000)
	if a := m.arenaFor(0x2_0000); a == nil || a.size != 0x1_0000 {
		t.Fatalf("arena not page-exact: %+v", a)
	}
	// Last quadword inside the arena and first one past it (page-map side).
	if err := m.Write64(0x2_FFF8, 0xAAAA); err != nil {
		t.Fatal(err)
	}
	if err := m.Write64(0x3_0000, 0xBBBB); err != nil {
		t.Fatal(err)
	}
	if m.arenaFor(0x2_FFF8) == nil {
		t.Error("last in-arena quadword not arena-backed")
	}
	if m.arenaFor(0x3_0000) != nil {
		t.Error("address past arena end should fall back to the page map")
	}
	if v, _ := m.Read64(0x2_FFF8); v != 0xAAAA {
		t.Errorf("arena side = %#x", v)
	}
	if v, _ := m.Read64(0x3_0000); v != 0xBBBB {
		t.Errorf("page-map side = %#x", v)
	}

	// LoadBytes spanning from the arena into unreserved space.
	m.LoadBytes(0x2_FFFC, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	if v, _ := m.Read32(0x2_FFFC); v != 0x04030201 {
		t.Errorf("span load, arena half = %#x", v)
	}
	if v, _ := m.Read32(0x3_0000 + 4 - 4); v != 0x08070605 {
		t.Errorf("span load, fallback half = %#x", v)
	}
}

func TestReserveAbsorbsAndMerges(t *testing.T) {
	m := NewMemory()
	// Populate the page map first; a later reservation over the same range
	// must keep the contents visible.
	if err := m.Write64(0x5_0008, 77); err != nil {
		t.Fatal(err)
	}
	m.Reserve(0x5_0000, 0x100)
	if v, _ := m.Read64(0x5_0008); v != 77 {
		t.Errorf("absorbed page value = %d, want 77", v)
	}
	if len(m.pages) != 0 {
		t.Errorf("%d pages left shadowing the arena", len(m.pages))
	}
	// Overlapping reservations merge into one arena covering both.
	m.Reserve(0x5_8000, 0x2_0000)
	if len(m.arenas) != 1 {
		t.Fatalf("overlapping reservations left %d arenas, want 1", len(m.arenas))
	}
	if v, _ := m.Read64(0x5_0008); v != 77 {
		t.Errorf("value lost in merge: %d", v)
	}
	a := m.arenas[0]
	// [0x5_0000, 0x6_0000) merged with page-aligned [0x5_0000, 0x8_0000).
	if a.base != 0x5_0000 || a.size != 0x3_0000 {
		t.Errorf("merged arena = [%#x, +%#x)", a.base, a.size)
	}
}

// --- engine behavior ---

// TestRunNoPerInstructionAllocations pins the zero-allocation property of
// the execution core: a million-instruction run may allocate O(1) (Result,
// output buffers), never O(instructions).
func TestRunNoPerInstructionAllocations(t *testing.T) {
	mk := func() *Machine {
		// 500k iterations of {subq, bgt} = 1M+2 instructions.
		im := image(t, []axp.Inst{
			axp.MemInst(axp.LDAH, axp.T0, axp.Zero, 8), // t0 = 524288
			axp.OpLitInst(axp.SUBQ, axp.T0, 1, axp.T0),
			axp.BranchInst(axp.BGT, axp.T0, -2),
			axp.Pal(axp.PalHalt),
		})
		m, err := New(im, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	mk() // warm up lazy runtime state outside the measured window

	m := mk()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	res, err := m.RunContext(context.Background())
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Instructions < 1_000_000 {
		t.Fatalf("loop ran only %d instructions", res.Stats.Instructions)
	}
	if allocs := after.Mallocs - before.Mallocs; allocs > 1000 {
		t.Errorf("%d allocations for a %d-instruction run: engine is allocating per step",
			allocs, res.Stats.Instructions)
	}
}

// TestBlockEngineControlFlow cross-checks the block-indexed engine against
// dense control transfers: every instruction its own block.
func TestBlockEngineControlFlow(t *testing.T) {
	// Alternate branch/fallthrough so block resolution happens constantly.
	prog := []axp.Inst{
		axp.MemInst(axp.LDA, axp.T0, axp.Zero, 0),
		axp.BranchInst(axp.BR, axp.Zero, 1), // skip the poison lda
		axp.MemInst(axp.LDA, axp.T0, axp.Zero, 99),
		axp.OpLitInst(axp.ADDQ, axp.T0, 5, axp.T0),
		axp.BranchInst(axp.BEQ, axp.T0, 2), // not taken
		axp.OpLitInst(axp.ADDQ, axp.T0, 2, axp.T0),
		axp.BranchInst(axp.BR, axp.Zero, 1), // skip the next poison
		axp.MemInst(axp.LDA, axp.T0, axp.Zero, 98),
	}
	out := runInsts(t, append(prog, outAndHalt(axp.T0)...))
	if len(out) != 1 || out[0] != 7 {
		t.Fatalf("got %v, want [7]", out)
	}
}
