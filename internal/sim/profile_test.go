package sim

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/axp"
)

// loopImage is 500k iterations of {subq, bgt}: one hot two-instruction
// block plus a cold prologue.
func loopProgram() []axp.Inst {
	return []axp.Inst{
		axp.MemInst(axp.LDAH, axp.T0, axp.Zero, 8), // t0 = 524288
		axp.OpLitInst(axp.SUBQ, axp.T0, 1, axp.T0),
		axp.BranchInst(axp.BGT, axp.T0, -2),
		axp.Pal(axp.PalHalt),
	}
}

func TestProfileDisabledByDefault(t *testing.T) {
	im := image(t, loopProgram())
	res, err := Run(im, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.BlockProfile != nil || res.InstMix != nil {
		t.Error("profiling data collected without Config.Profile")
	}
}

func TestProfileCountsMatchExecution(t *testing.T) {
	im := image(t, loopProgram())
	cfg := DefaultConfig()
	cfg.Profile = true
	res, err := Run(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BlockProfile) == 0 {
		t.Fatal("Profile on but BlockProfile empty")
	}
	// The instruction mix accounts for every retired instruction.
	var mixed uint64
	for _, n := range res.InstMix {
		mixed += n
	}
	if mixed != res.Stats.Instructions {
		t.Errorf("instruction mix sums to %d, want Stats.Instructions %d", mixed, res.Stats.Instructions)
	}
	// The loop body dominates: subq and bgt each retire ~524288 times.
	if n := res.InstMix["subq"]; n != 524288 {
		t.Errorf("subq count = %d, want 524288", n)
	}
	if n := res.InstMix["bgt"]; n != 524288 {
		t.Errorf("bgt count = %d, want 524288", n)
	}
	// BlockProfile is sorted hottest-first and its top entry is the loop
	// block: dispatched once per taken back-branch (the first iteration
	// reaches it by fallthrough from the prologue's dispatch).
	top := res.BlockProfile[0]
	if top.Count != 524287 {
		t.Errorf("hottest block count = %d, want 524287", top.Count)
	}
	for i := 1; i < len(res.BlockProfile); i++ {
		if res.BlockProfile[i].Count > res.BlockProfile[i-1].Count {
			t.Fatalf("BlockProfile not sorted by descending count at %d", i)
		}
	}
	// Block entry counts weighted by block length also retire every
	// instruction (each block here runs to its end).
	var byBlock uint64
	for _, b := range res.BlockProfile {
		byBlock += uint64(b.Len) * b.Count
	}
	if byBlock != res.Stats.Instructions {
		t.Errorf("block profile covers %d instructions, want %d", byBlock, res.Stats.Instructions)
	}
}

// TestBlockProfileDeterministicOrder pins the tie-break: equal-count blocks
// come back in ascending-PC order. The ordering is a stable interface — the
// hot-block report, profile.FromImage, and the PGO pipeline's content
// hashing all consume it — so a change here is a breaking change.
func TestBlockProfileDeterministicOrder(t *testing.T) {
	// A chain of branches: every block is entered exactly once, giving
	// maximal count ties.
	prog := []axp.Inst{
		axp.BranchInst(axp.BR, axp.Zero, 0), // block 0 -> block 1
		axp.BranchInst(axp.BR, axp.Zero, 0), // block 1 -> block 2
		axp.BranchInst(axp.BR, axp.Zero, 0), // block 2 -> block 3
		axp.Pal(axp.PalHalt),                // block 3
	}
	im := image(t, prog)
	cfg := DefaultConfig()
	cfg.Profile = true
	var first []BlockCount
	for trial := 0; trial < 3; trial++ {
		res, err := Run(im, cfg)
		if err != nil {
			t.Fatal(err)
		}
		bp := res.BlockProfile
		if len(bp) < 3 {
			t.Fatalf("expected >= 3 blocks, got %d", len(bp))
		}
		for i := 1; i < len(bp); i++ {
			if bp[i].Count > bp[i-1].Count {
				t.Fatalf("not sorted by descending count at %d", i)
			}
			if bp[i].Count == bp[i-1].Count && bp[i].PC <= bp[i-1].PC {
				t.Fatalf("equal-count blocks not in ascending PC order: %#x after %#x",
					bp[i].PC, bp[i-1].PC)
			}
		}
		if trial == 0 {
			first = bp
			continue
		}
		for i := range bp {
			if bp[i] != first[i] {
				t.Fatalf("trial %d: BlockProfile[%d] = %+v, want %+v", trial, i, bp[i], first[i])
			}
		}
	}
}

// TestProfileRunStaysAllocationFree mirrors the zero-allocation guarantee
// with profiling ON: the counters are preallocated arrays, so the run loop
// still allocates nothing per instruction.
func TestProfileRunStaysAllocationFree(t *testing.T) {
	mk := func() *Machine {
		im := image(t, loopProgram())
		cfg := DefaultConfig()
		cfg.Profile = true
		m, err := New(im, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	mk() // warm up lazy runtime state outside the measured window

	m := mk()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	res, err := m.RunContext(context.Background())
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Instructions < 1_000_000 {
		t.Fatalf("loop ran only %d instructions", res.Stats.Instructions)
	}
	if allocs := after.Mallocs - before.Mallocs; allocs > 1000 {
		t.Errorf("%d allocations for a %d-instruction profiled run", allocs, res.Stats.Instructions)
	}
}
