// Package e2e_test runs whole-toolchain tests: Tiny C sources are compiled,
// linked with the runtime library, and executed in the simulator; outputs
// are checked against expectations computed in Go.
package e2e_test

import (
	"testing"

	"repro/internal/link"
	"repro/internal/objfile"
	"repro/internal/rtlib"
	"repro/internal/sim"
	"repro/internal/tcc"
)

// buildAndRun compiles the user sources (compile-each: one unit per source),
// links with the runtime library, and runs functionally.
func buildAndRun(t *testing.T, srcs []tcc.Source, opts tcc.Options) *sim.Result {
	t.Helper()
	im := buildImage(t, srcs, opts)
	res, err := sim.Run(im, sim.Config{MaxInstructions: 200_000_000})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func buildImage(t *testing.T, srcs []tcc.Source, opts tcc.Options) *objfile.Image {
	t.Helper()
	var objs []*objfile.Object
	for _, s := range srcs {
		obj, err := tcc.Compile(s.Name, []tcc.Source{s}, opts)
		if err != nil {
			t.Fatalf("compile %s: %v", s.Name, err)
		}
		objs = append(objs, obj)
	}
	lib, err := rtlib.Objects(opts)
	if err != nil {
		t.Fatal(err)
	}
	objs = append(objs, lib...)
	im, err := link.Link(objs)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return im
}

func TestHelloWorld(t *testing.T) {
	res := buildAndRun(t, []tcc.Source{{Name: "hello", Text: `
long main() {
	__output(42);
	return 0;
}
`}}, tcc.DefaultOptions())
	if res.Exit != 0 || len(res.Output) != 1 || res.Output[0] != 42 {
		t.Fatalf("exit=%d output=%v", res.Exit, res.Output)
	}
}

func TestArithmeticAndGlobals(t *testing.T) {
	res := buildAndRun(t, []tcc.Source{{Name: "arith", Text: `
long g = 10;
long arr[8];
long main() {
	long i;
	for (i = 0; i < 8; i = i + 1) {
		arr[i] = i * i - 2 * i + g;
	}
	long s = 0;
	for (i = 0; i < 8; i = i + 1) { s = s + arr[i]; }
	print(s);
	print(g * 3 - 7);
	print(-5 / 2);
	print(-5 % 2);
	print(17 / 5);
	print(17 % 5);
	print(1 << 40);
	print((-64) >> 3);
	return 0;
}
`}}, tcc.DefaultOptions())
	// sum_{i=0..7} (i^2 - 2i + 10) = 140 - 56 + 80 = 164
	want := []int64{164, 23, -2, -1, 3, 2, 1 << 40, -8}
	checkOutput(t, res, want, 0)
}

func checkOutput(t *testing.T, res *sim.Result, want []int64, exit int64) {
	t.Helper()
	if res.Exit != exit {
		t.Errorf("exit = %d, want %d", res.Exit, exit)
	}
	if len(res.Output) != len(want) {
		t.Fatalf("output = %v, want %v", res.Output, want)
	}
	for i := range want {
		if res.Output[i] != want[i] {
			t.Errorf("output[%d] = %d, want %d", i, res.Output[i], want[i])
		}
	}
}

func TestCallsAcrossModules(t *testing.T) {
	srcs := []tcc.Source{
		{Name: "moda", Text: `
extern long counter;
long bump(long n);
long main() {
	long r = bump(3) + bump(4);
	print(r);
	print(counter);
	return 0;
}
`},
		{Name: "modb", Text: `
long counter = 0;
long bump(long n) {
	counter = counter + 1;
	return n * n;
}
`},
	}
	res := buildAndRun(t, srcs, tcc.DefaultOptions())
	checkOutput(t, res, []int64{25, 2}, 0)
}

func TestRecursionAndStack(t *testing.T) {
	res := buildAndRun(t, []tcc.Source{{Name: "fib", Text: `
long fib(long n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
long main() {
	print(fib(15));
	return 0;
}
`}}, tcc.DefaultOptions())
	checkOutput(t, res, []int64{610}, 0)
}

func TestDoubleMath(t *testing.T) {
	res := buildAndRun(t, []tcc.Source{{Name: "fp", Text: `
double dsqrt(double x);
double dsin(double x);
long print_fixed(double d);
long main() {
	print_fixed(dsqrt(2.0));
	print_fixed(dsin(0.5));
	double a = 1.5;
	double b = a * a + 0.25;
	print_fixed(b);
	long n = 7;
	double c = b + n;
	print_fixed(c / 2.0);
	return 0;
}
`}}, tcc.DefaultOptions())
	// sqrt(2) = 1.414213..., sin(0.5) = 0.479425..., 2.5, 4.75
	want := []int64{1414213, 479425, 2500000, 4750000}
	if len(res.Output) != len(want) {
		t.Fatalf("output %v, want %v", res.Output, want)
	}
	for i := range want {
		d := res.Output[i] - want[i]
		if d < -2 || d > 2 {
			t.Errorf("output[%d] = %d, want ~%d", i, res.Output[i], want[i])
		}
	}
}

func TestFnptrSort(t *testing.T) {
	res := buildAndRun(t, []tcc.Source{{Name: "sortmain", Text: `
long qsort8(long* a, long lo, long hi, fnptr cmp);
long issorted(long* a, long n, fnptr cmp);
long xrand();
long srand48(long seed);

long data[64];

long up(long a, long b) { return a - b; }
long down(long a, long b) { return b - a; }

long main() {
	srand48(12345);
	long i;
	for (i = 0; i < 64; i = i + 1) { data[i] = xrand() % 1000; }
	qsort8(data, 0, 63, up);
	print(issorted(data, 64, up));
	qsort8(data, 0, 63, down);
	print(issorted(data, 64, down));
	print(data[0] >= data[63]);
	return 0;
}
`}}, tcc.DefaultOptions())
	checkOutput(t, res, []int64{1, 1, 1}, 0)
}

func TestPointersAndLocalArrays(t *testing.T) {
	res := buildAndRun(t, []tcc.Source{{Name: "ptrs", Text: `
long sumvia(long* p, long n) {
	long s = 0;
	long i;
	for (i = 0; i < n; i = i + 1) { s = s + p[i]; }
	return s;
}
long main() {
	long a[10];
	long i;
	for (i = 0; i < 10; i = i + 1) { a[i] = i + 1; }
	long* p = a;
	print(sumvia(p, 10));
	print(*p);
	*p = 99;
	print(a[0]);
	long x = 5;
	long* q = &x;
	*q = *q + 2;
	print(x);
	print(a[2 + 1]);
	return 0;
}
`}}, tcc.DefaultOptions())
	checkOutput(t, res, []int64{55, 1, 99, 7, 4}, 0)
}

func TestCompileAllMatchesCompileEach(t *testing.T) {
	srcs := []tcc.Source{
		{Name: "u1", Text: `
extern long acc;
long helper(long x);
static long local3(long v) { return v * 3; }
long work(long n) {
	long i;
	for (i = 0; i < n; i = i + 1) {
		acc = acc + helper(i) + local3(i);
	}
	return acc;
}
`},
		{Name: "u2", Text: `
long acc = 0;
long helper(long x) { return x * x + 1; }
long work(long n);
long main() {
	print(work(20));
	return 0;
}
`},
	}
	each := buildAndRun(t, srcs, tcc.DefaultOptions())

	// compile-all: all user sources in one unit with interprocedural opts.
	allObj, err := tcc.Compile("all", srcs, tcc.InterprocOptions())
	if err != nil {
		t.Fatal(err)
	}
	lib, err := rtlib.Objects(tcc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	im, err := link.Link(append([]*objfile.Object{allObj}, lib...))
	if err != nil {
		t.Fatal(err)
	}
	all, err := sim.Run(im, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(each.Output) != len(all.Output) || each.Output[0] != all.Output[0] {
		t.Fatalf("compile-each %v vs compile-all %v", each.Output, all.Output)
	}
}

func TestTimingModelRuns(t *testing.T) {
	srcs := []tcc.Source{{Name: "loop", Text: `
long a[256];
long main() {
	long i;
	long s = 0;
	for (i = 0; i < 256; i = i + 1) { a[i] = i; }
	for (i = 0; i < 256; i = i + 1) { s = s + a[i]; }
	print(s);
	return 0;
}
`}}
	im := buildImage(t, srcs, tcc.DefaultOptions())
	res, err := sim.Run(im, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != 255*256/2 {
		t.Fatalf("output %v", res.Output)
	}
	st := res.Stats
	if st.Cycles == 0 || st.Cycles < st.Instructions/2 {
		t.Errorf("implausible cycles=%d for %d instructions", st.Cycles, st.Instructions)
	}
	if st.DualIssued == 0 {
		t.Errorf("dual issue never happened")
	}
	if st.ICacheMisses == 0 || st.DCacheMisses == 0 {
		t.Errorf("caches saw no misses: i=%d d=%d", st.ICacheMisses, st.DCacheMisses)
	}
	if st.Cycles > st.Instructions*20 {
		t.Errorf("cycles=%d implausibly high for %d instructions", st.Cycles, st.Instructions)
	}
}

func TestCyclesIntrinsic(t *testing.T) {
	srcs := []tcc.Source{{Name: "cyc", Text: `
long main() {
	long c0 = __cycles();
	long i;
	long s = 0;
	for (i = 0; i < 1000; i = i + 1) { s = s + i; }
	long c1 = __cycles();
	print(s);
	print(c1 > c0);
	return 0;
}
`}}
	im := buildImage(t, srcs, tcc.DefaultOptions())
	res, err := sim.Run(im, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkOutput(t, res, []int64{499500, 1}, 0)
}
