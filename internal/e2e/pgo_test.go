package e2e_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/link"
	"repro/internal/objfile"
	"repro/internal/om"
	"repro/internal/profile"
	"repro/internal/progen"
	"repro/internal/rtlib"
	"repro/internal/sim"
	"repro/internal/tcc"
)

// TestPGOLayoutPreservesOutputProperty is the layout subsystem's central
// property: for random programs and arbitrary (even nonsensical) profiles
// over their procedures, OM-full plus profile-guided layout produces the
// same output as OM-full — placement may only move code, never change it —
// and the laid-out link is deterministic: relinking with the same profile
// yields a byte-identical image.
func TestPGOLayoutPreservesOutputProperty(t *testing.T) {
	lib, err := rtlib.StandardObjects()
	if err != nil {
		t.Fatal(err)
	}
	seeds := int64(12)
	if testing.Short() {
		seeds = 4
	}
	ctx := context.Background()
	for seed := int64(1); seed <= seeds; seed++ {
		srcs := progen.Generate(seed, progen.DefaultConfig())
		var objs []*objfile.Object
		for _, s := range srcs {
			obj, err := tcc.Compile(s.Name, []tcc.Source{s}, tcc.DefaultOptions())
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			objs = append(objs, obj)
		}
		all := append(objs, lib...)
		merge := func() *link.Program {
			p, err := link.Merge(all)
			if err != nil {
				t.Fatalf("seed %d: merge: %v", seed, err)
			}
			return p
		}

		base, err := om.Run(ctx, merge(), om.WithLevel(om.LevelFull))
		if err != nil {
			t.Fatalf("seed %d: om-full: %v", seed, err)
		}
		want := runImage(t, base.Image)

		pg, err := om.Lift(merge())
		if err != nil {
			t.Fatalf("seed %d: lift: %v", seed, err)
		}
		var names []string
		for _, pr := range pg.Procs {
			names = append(names, pr.Name)
		}
		rng := rand.New(rand.NewSource(seed*7919 + 13))
		prof := synthProfile(rng, names)

		var imgs [][]byte
		for trial := 0; trial < 2; trial++ {
			res, err := om.Run(ctx, merge(),
				om.WithLevel(om.LevelFull), om.WithProfile(prof))
			if err != nil {
				t.Fatalf("seed %d: om-full+layout: %v", seed, err)
			}
			if got := runImage(t, res.Image); got != want {
				t.Errorf("seed %d: layout changed output\n got: %s\nwant: %s", seed, got, want)
			}
			var buf bytes.Buffer
			if err := res.Image.Write(&buf); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			imgs = append(imgs, buf.Bytes())
		}
		if !bytes.Equal(imgs[0], imgs[1]) {
			t.Errorf("seed %d: relink with the same profile is not byte-identical", seed)
		}

		// Layout also composes with rescheduling.
		res, err := om.Run(ctx, merge(), om.WithLevel(om.LevelFull),
			om.WithSchedule(true), om.WithProfile(prof))
		if err != nil {
			t.Fatalf("seed %d: om-full+sched+layout: %v", seed, err)
		}
		schedBase, err := om.Run(ctx, merge(), om.WithLevel(om.LevelFull), om.WithSchedule(true))
		if err != nil {
			t.Fatalf("seed %d: om-full+sched: %v", seed, err)
		}
		wantSched := runImage(t, schedBase.Image)
		if got := runImage(t, res.Image); got != wantSched {
			t.Errorf("seed %d: layout+sched changed output", seed)
		}
	}
}

// synthProfile fabricates a randomized profile over the program's real
// procedure names: a random subset gets random weights (including weight
// zero), and random call edges connect arbitrary pairs — self-edges and
// zero-weight edges included, which the layout must tolerate.
func synthProfile(rng *rand.Rand, names []string) *profile.Profile {
	p := profile.New("synthetic")
	for _, n := range names {
		if rng.Intn(3) == 0 {
			continue // procedure absent from the profile: stays cold
		}
		p.Procs = append(p.Procs, profile.ProcCount{
			Name:    n,
			Entries: uint64(rng.Intn(1000)),
			Weight:  uint64(rng.Intn(100000)),
		})
	}
	for i := 0; i < 2*len(names); i++ {
		p.Edges = append(p.Edges, profile.Edge{
			Caller: names[rng.Intn(len(names))],
			Callee: names[rng.Intn(len(names))],
			Weight: uint64(rng.Intn(5000)), // zero-weight edges occur
		})
	}
	return p
}

// runImage executes the image functionally and fingerprints the behavior.
func runImage(t *testing.T, im *objfile.Image) string {
	t.Helper()
	res, err := sim.Run(im, sim.Config{MaxInstructions: 50_000_000})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return fmt.Sprint(res.Exit, res.Output)
}
