package e2e_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/link"
	"repro/internal/objfile"
	"repro/internal/om"
	"repro/internal/rtlib"
	"repro/internal/sim"
	"repro/internal/tcc"
)

// The paper's §6 discusses "optimistic compilation" (the MIPS -G scheme) as
// an alternative to link-time optimization: the compiler assumes small data
// is GP-reachable and emits direct references; the linker verifies the
// assumption and refuses to link when it fails. These tests reproduce both
// sides of that behavior.

const optimisticSrc = `
long counter = 0;
long knobs[4];
double factor = 2.5;
long big[4096];

long work(long n) {
	long i;
	for (i = 0; i < n; i = i + 1) {
		counter = counter + 1;
		knobs[i & 3] = counter * 2;
		big[i & 4095] = counter + knobs[0];
	}
	return counter + knobs[3];
}

long main() {
	print(work(500));
	print_fixed(factor * work(10));
	print(big[17]);
	return 0;
}
`

func optimisticOpts(g int64) tcc.Options {
	o := tcc.DefaultOptions()
	o.OptimisticGP = g
	return o
}

func buildWith(t *testing.T, srcs []tcc.Source, opts tcc.Options) []*objfile.Object {
	t.Helper()
	var objs []*objfile.Object
	for _, s := range srcs {
		obj, err := tcc.Compile(s.Name, []tcc.Source{s}, opts)
		if err != nil {
			t.Fatalf("compile %s: %v", s.Name, err)
		}
		objs = append(objs, obj)
	}
	lib, err := rtlib.Objects(opts)
	if err != nil {
		t.Fatal(err)
	}
	return append(objs, lib...)
}

func TestOptimisticMatchesConservative(t *testing.T) {
	srcs := []tcc.Source{{Name: "opt", Text: optimisticSrc}}
	base, err := link.Link(buildWith(t, srcs, tcc.DefaultOptions()))
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run(base, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	optIm, err := link.Link(buildWith(t, srcs, optimisticOpts(64)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sim.Run(optIm, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.Output) != fmt.Sprint(want.Output) {
		t.Fatalf("optimistic output %v, conservative %v", got.Output, want.Output)
	}
	// The optimistic build must execute fewer instructions: small-data
	// accesses skip the GAT load.
	if got.Stats.Instructions >= want.Stats.Instructions {
		t.Errorf("optimistic executed %d instructions, conservative %d",
			got.Stats.Instructions, want.Stats.Instructions)
	}
	// The paper's point survives: even optimistic code retains the general
	// calling convention, so OM still finds work.
	fullP, err := link.Merge(buildWith(t, srcs, optimisticOpts(64)))
	if err != nil {
		t.Fatal(err)
	}
	fullRes, err := om.Run(context.Background(), fullP, om.WithLevel(om.LevelFull))
	if err != nil {
		t.Fatal(err)
	}
	fullIm, st := fullRes.Image, fullRes.Stats
	full, err := sim.Run(fullIm, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(full.Output) != fmt.Sprint(want.Output) {
		t.Fatalf("om on optimistic code: output %v, want %v", full.Output, want.Output)
	}
	if full.Stats.Instructions >= got.Stats.Instructions {
		t.Errorf("om found nothing on optimistic code: %d vs %d instructions",
			full.Stats.Instructions, got.Stats.Instructions)
	}
	if st.Deleted == 0 {
		t.Error("om deleted nothing on optimistic code")
	}
}

func TestOptimisticLinkFailure(t *testing.T) {
	// Too many "small" variables for the GP window: with a generous -G
	// threshold the per-variable assumption holds at compile time but the
	// aggregate overflows, and the link must fail with recompile advice —
	// the failure mode the paper attributes to optimistic compilation.
	var b strings.Builder
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&b, "long small%d[64];\n", i) // 512 bytes each, 150KB total
	}
	b.WriteString("long main() {\n\tlong s = 0;\n")
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&b, "\tsmall%d[0] = %d;\n\ts = s + small%d[0];\n", i, i, i)
	}
	b.WriteString("\tprint(s);\n\treturn 0;\n}\n")
	srcs := []tcc.Source{{Name: "many", Text: b.String()}}

	_, err := link.Link(buildWith(t, srcs, optimisticOpts(1024)))
	if err == nil {
		t.Fatal("expected the optimistic link to fail")
	}
	if !strings.Contains(err.Error(), "-G") {
		t.Fatalf("error should advise recompiling with a lower -G threshold, got: %v", err)
	}

	// Recompiling with a lower threshold (the paper's prescribed fix) links
	// and runs.
	im, err := link.Link(buildWith(t, srcs, optimisticOpts(8)))
	if err != nil {
		t.Fatalf("low-threshold recompile still fails: %v", err)
	}
	res, err := sim.Run(im, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0] != 299*300/2 {
		t.Fatalf("output %v", res.Output)
	}
}

func TestOptimisticSmallBssNotCommon(t *testing.T) {
	obj, err := tcc.Compile("u", []tcc.Source{{Name: "u", Text: "long tiny; long big[512]; long f() { return tiny + big[0]; }"}},
		optimisticOpts(64))
	if err != nil {
		t.Fatal(err)
	}
	i := obj.FindSymbol("tiny")
	if i < 0 || obj.Symbols[i].Kind != objfile.SymData || obj.Symbols[i].Section != objfile.SecSBss {
		t.Errorf("tiny should be .sbss data under -G, got %+v", obj.Symbols[i])
	}
	j := obj.FindSymbol("big")
	if j < 0 || obj.Symbols[j].Kind != objfile.SymCommon {
		t.Errorf("big should remain a common, got %+v", obj.Symbols[j])
	}
	// tiny's accesses carry GPREL16 relocations; big's go through the GAT.
	var gprel, lit int
	for _, r := range obj.Relocs {
		switch r.Kind {
		case objfile.RGPRel16:
			gprel++
		case objfile.RLiteral:
			lit++
		}
	}
	if gprel == 0 {
		t.Error("no GPREL16 relocations emitted")
	}
	if lit == 0 {
		t.Error("large data should still use the GAT")
	}
}
