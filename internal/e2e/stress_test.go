package e2e_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/tcc"
)

// TestSpillStress forces the expression evaluator to keep many values live
// across calls, exercising the temp spill/reload machinery.
func TestSpillStress(t *testing.T) {
	res := buildAndRun(t, []tcc.Source{{Name: "spill", Text: `
long id(long x) { return x; }

long deep(long a, long b) {
	// Every operand chain holds temporaries across nested calls.
	return id(a + id(b + id(a * 2 + id(b * 3 + id(a - b))))) +
		(id(a) + id(b)) * (id(a + 1) + id(b + 1)) +
		id(id(id(id(id(a)))));
}

double did(double x) { return x; }

double fdeep(double a, double b) {
	return did(a + did(b * did(a - did(b + did(a * 0.5))))) +
		(did(a) + did(b)) * (did(a + 1.0) - did(b));
}

long main() {
	print(deep(10, 3));
	print_fixed(fdeep(2.0, 0.5));
	return 0;
}
`}}, tcc.DefaultOptions())
	// deep(10,3): id chain = 10 + (3 + (20 + (9 + 7))) = 49;
	// (10+3)*(11+4) = 195; last chain = 10. total = 49+195+10 = 254.
	if res.Output[0] != 254 {
		t.Errorf("deep = %d, want 254", res.Output[0])
	}
	// fdeep(2, .5): 2 + (.5*(2-(.5+1))) = 2+0.25 = 2.25;
	// (2+.5)*(3-.5) = 6.25. total 8.5 -> 8500000.
	if res.Output[1] != 8500000 {
		t.Errorf("fdeep = %d, want 8500000", res.Output[1])
	}
}

// TestManyLocalsOverflowSRegs pushes locals past the callee-saved register
// pool onto the frame.
func TestManyLocalsOverflowSRegs(t *testing.T) {
	var b strings.Builder
	b.WriteString("long f(long seed) {\n")
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&b, "\tlong v%d = seed + %d;\n", i, i)
	}
	for i := 0; i < 12; i++ {
		fmt.Fprintf(&b, "\tdouble d%d = seed + %d.5;\n", i, i)
	}
	b.WriteString("\tlong s = 0;\n")
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&b, "\ts = s + v%d;\n", i)
	}
	b.WriteString("\tdouble ds = 0.0;\n")
	for i := 0; i < 12; i++ {
		fmt.Fprintf(&b, "\tds = ds + d%d;\n", i)
	}
	b.WriteString("\tlong di = ds;\n\treturn s * 1000 + di;\n}\n")
	b.WriteString("long main() { print(f(7)); return 0; }\n")
	res := buildAndRun(t, []tcc.Source{{Name: "locals", Text: b.String()}}, tcc.DefaultOptions())
	// s = 20*7 + (0+..+19) = 140+190 = 330; ds = 12*7 + (0..11) + 12*0.5 = 84+66+6 = 156.
	if res.Output[0] != 330*1000+156 {
		t.Errorf("got %d, want %d", res.Output[0], 330*1000+156)
	}
}

// TestRecursionDeep checks a deep call chain (stack discipline, RA saving).
func TestRecursionDeep(t *testing.T) {
	res := buildAndRun(t, []tcc.Source{{Name: "deep", Text: `
long count(long n) {
	if (n == 0) { return 0; }
	return 1 + count(n - 1);
}
long main() {
	print(count(20000));
	return 0;
}
`}}, tcc.DefaultOptions())
	if res.Output[0] != 20000 {
		t.Errorf("got %v", res.Output)
	}
}

// TestShortCircuitSideEffects pins down evaluation-order semantics.
func TestShortCircuitSideEffects(t *testing.T) {
	res := buildAndRun(t, []tcc.Source{{Name: "sc", Text: `
long hits = 0;
long bump(long v) { hits = hits + 1; return v; }

long main() {
	if (bump(0) && bump(1)) { print(-1); }
	print(hits);               // 1: rhs skipped
	hits = 0;
	if (bump(1) || bump(1)) { print(1); }
	print(hits);               // 1: rhs skipped
	hits = 0;
	long v = bump(1) && bump(0);
	print(v);
	print(hits);               // 2: both evaluated
	return 0;
}
`}}, tcc.DefaultOptions())
	want := []int64{1, 1, 1, 0, 2}
	if fmt.Sprint(res.Output) != fmt.Sprint(want) {
		t.Errorf("got %v, want %v", res.Output, want)
	}
}

// TestFnptrComparisons covers fnptr equality semantics.
func TestFnptrComparisons(t *testing.T) {
	res := buildAndRun(t, []tcc.Source{{Name: "fp", Text: `
long a(long x) { return x; }
long b(long x) { return x + 1; }
long main() {
	fnptr p = a;
	fnptr q = a;
	fnptr r = b;
	print(p == q);
	print(p == r);
	print(p != r);
	print(p(5) + r(5));
	return 0;
}
`}}, tcc.DefaultOptions())
	want := []int64{1, 0, 1, 11}
	if fmt.Sprint(res.Output) != fmt.Sprint(want) {
		t.Errorf("got %v, want %v", res.Output, want)
	}
}

// TestGlobalInitializers covers brace initializers and negative constants.
func TestGlobalInitializers(t *testing.T) {
	res := buildAndRun(t, []tcc.Source{{Name: "init", Text: `
long table[6] = {10, -20, 3 * 7, 0, 5 + 5};
double ds[3] = {1.5, -2.5, 0.25};
long big = 1099511627776;
long main() {
	print(lsum(table, 6));
	print_fixed(ds[0] + ds[1] + ds[2]);
	print(big >> 40);
	return 0;
}
`}}, tcc.DefaultOptions())
	want := []int64{10 - 20 + 21 + 0 + 10 + 0, -750000, 1}
	if fmt.Sprint(res.Output) != fmt.Sprint(want) {
		t.Errorf("got %v, want %v", res.Output, want)
	}
}
