package buildcache_test

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/buildcache"
	"repro/internal/objfile"
	"repro/internal/om"
	"repro/internal/rtlib"
	"repro/internal/tcc"
)

func testObjects(t *testing.T) []*objfile.Object {
	t.Helper()
	obj, err := tcc.Compile("u", testSrc, tcc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	lib, err := rtlib.StandardObjects()
	if err != nil {
		t.Fatal(err)
	}
	return append([]*objfile.Object{obj}, lib...)
}

// TestProgramCacheResidency: the same module content resolves to the same
// resident Program (no re-merge); distinct shared markings never alias; and
// a fresh decode of identical bytes still hits, because the key is content,
// not identity.
func TestProgramCacheResidency(t *testing.T) {
	objs := testObjects(t)
	pc := buildcache.NewProgramCache(0, nil)

	p1, hit, err := pc.GetOrMerge(objs)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("empty cache reported a hit")
	}
	p2, hit, err := pc.GetOrMerge(objs)
	if err != nil {
		t.Fatal(err)
	}
	if !hit || p2 != p1 {
		t.Error("second merge of the same modules did not return the resident Program")
	}

	// Identical content, fresh Object values (as a daemon sees on re-upload).
	var redecoded []*objfile.Object
	for _, obj := range objs {
		var buf bytes.Buffer
		if err := obj.Write(&buf); err != nil {
			t.Fatal(err)
		}
		ro, err := objfile.Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		redecoded = append(redecoded, ro)
	}
	p3, hit, err := pc.GetOrMerge(redecoded)
	if err != nil {
		t.Fatal(err)
	}
	if !hit || p3 != p1 {
		t.Error("content-identical redecoded modules missed the cache")
	}

	// A shared marking is part of the key and applied before publication.
	shName := objs[len(objs)-1].Name
	ps, hit, err := pc.GetOrMerge(objs, shName)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("shared-marked link aliased the unmarked Program")
	}
	if ps == p1 || !ps.IsShared(len(objs)-1) {
		t.Error("shared marking not applied to the cached Program")
	}
	if p1.IsShared(len(objs) - 1) {
		t.Error("marking leaked into the unmarked resident Program")
	}

	// The resident Program stays usable: an om.Run over the cached value
	// matches one over a fresh merge.
	res1, err := om.Run(context.Background(), p1)
	if err != nil {
		t.Fatal(err)
	}
	pFresh, _, err := (*buildcache.ProgramCache)(nil).GetOrMerge(objs)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := om.Run(context.Background(), pFresh)
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := res1.Image.Write(&b1); err != nil {
		t.Fatal(err)
	}
	if err := res2.Image.Write(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("link over the resident Program differs from a fresh merge")
	}

	if st := pc.Stats(); st.Hits != 2 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 2 hits / 2 misses", st)
	}
}
