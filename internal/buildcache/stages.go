package buildcache

import (
	"sync"

	"repro/internal/obs"
)

// StageStore is a size-bounded FIFO cache for one stage of the incremental
// link pipeline (decoded programs, lifted-form snapshots, per-procedure
// transform results). Entries are opaque to the store; the caller supplies
// a content-hash key and a size estimate, and the store evicts the oldest
// entries whenever either the entry count or the byte budget is exceeded.
//
// Eviction is strictly FIFO by insertion order — a deliberately simple
// policy whose correctness is easy to pin in tests: after an eviction the
// key misses (no stale serves), and re-inserting admits a fresh entry.
// All methods are safe for concurrent use and tolerate a nil receiver.
type StageStore struct {
	name       string
	maxEntries int
	maxBytes   int64

	// Registry counters (nil-tolerant) so a resident daemon's /metrics
	// exposes per-stage traffic as stage/<name>/{hits,misses,evictions}.
	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter

	mu      sync.Mutex
	entries map[string]stageEntry
	order   []string // insertion order; front is next eviction victim
	bytes   int64
	stats   StageStats
}

// stageEntry is one cached value plus its accounted size.
type stageEntry struct {
	val  any
	size int64
}

// StageStats snapshots one store's traffic and occupancy.
type StageStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
}

// NewStageStore builds a store named for its pipeline stage. maxEntries and
// maxBytes bound occupancy (<= 0 selects 256 entries / 256 MiB); reg, when
// non-nil, receives the stage/<name>/* counters.
func NewStageStore(name string, maxEntries int, maxBytes int64, reg *obs.Registry) *StageStore {
	if maxEntries <= 0 {
		maxEntries = 256
	}
	if maxBytes <= 0 {
		maxBytes = 256 << 20
	}
	return &StageStore{
		name:       name,
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		hits:       reg.Counter("stage/" + name + "/hits"),
		misses:     reg.Counter("stage/" + name + "/misses"),
		evictions:  reg.Counter("stage/" + name + "/evictions"),
		entries:    make(map[string]stageEntry),
	}
}

// Name returns the stage name the store was created with.
func (s *StageStore) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Get returns the cached value for key. A nil store always misses.
func (s *StageStore) Get(key string) (any, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	e, ok := s.entries[key]
	if ok {
		s.stats.Hits++
	} else {
		s.stats.Misses++
	}
	s.mu.Unlock()
	if ok {
		s.hits.Add(1)
		return e.val, true
	}
	s.misses.Add(1)
	return nil, false
}

// Put stores val under key with the given size estimate, evicting the
// oldest entries until both bounds hold. A duplicate key refreshes the
// value in place without changing its eviction position. An entry larger
// than the whole byte budget is not admitted.
func (s *StageStore) Put(key string, val any, size int64) {
	if s == nil || size > s.maxBytes {
		return
	}
	if size < 0 {
		size = 0
	}
	var evicted uint64
	s.mu.Lock()
	if old, ok := s.entries[key]; ok {
		s.bytes += size - old.size
		s.entries[key] = stageEntry{val, size}
	} else {
		s.entries[key] = stageEntry{val, size}
		s.order = append(s.order, key)
		s.bytes += size
	}
	for (len(s.order) > s.maxEntries || s.bytes > s.maxBytes) && len(s.order) > 0 {
		victim := s.order[0]
		s.order = s.order[1:]
		if e, ok := s.entries[victim]; ok {
			s.bytes -= e.size
			delete(s.entries, victim)
			evicted++
		}
	}
	s.stats.Evictions += evicted
	s.mu.Unlock()
	s.evictions.Add(evicted)
}

// Len returns the number of resident entries.
func (s *StageStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats snapshots the store's traffic counters and occupancy.
func (s *StageStore) Stats() StageStats {
	if s == nil {
		return StageStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	st.Bytes = s.bytes
	return st
}
