package buildcache_test

import (
	"fmt"
	"testing"

	"repro/internal/buildcache"
	"repro/internal/obs"
)

func TestStageStoreFIFOEntryBound(t *testing.T) {
	s := buildcache.NewStageStore("t", 3, 0, nil)
	for i := 0; i < 5; i++ {
		s.Put(fmt.Sprintf("k%d", i), i, 1)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	// FIFO: the two oldest are gone, the three newest remain.
	for i := 0; i < 2; i++ {
		if _, ok := s.Get(fmt.Sprintf("k%d", i)); ok {
			t.Errorf("k%d survived FIFO eviction", i)
		}
	}
	for i := 2; i < 5; i++ {
		v, ok := s.Get(fmt.Sprintf("k%d", i))
		if !ok || v.(int) != i {
			t.Errorf("k%d = %v, %v; want %d, true", i, v, ok, i)
		}
	}
	st := s.Stats()
	if st.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", st.Evictions)
	}
	if st.Hits != 3 || st.Misses != 2 {
		t.Errorf("hits/misses = %d/%d, want 3/2", st.Hits, st.Misses)
	}
}

func TestStageStoreByteBound(t *testing.T) {
	s := buildcache.NewStageStore("t", 0, 100, nil)
	s.Put("a", "a", 40)
	s.Put("b", "b", 40)
	s.Put("c", "c", 40) // 120 > 100: evicts "a"
	if _, ok := s.Get("a"); ok {
		t.Error("byte bound did not evict the oldest entry")
	}
	if _, ok := s.Get("b"); !ok {
		t.Error("byte bound evicted more than needed")
	}
	if st := s.Stats(); st.Bytes != 80 {
		t.Errorf("resident bytes = %d, want 80", st.Bytes)
	}
	// An entry larger than the whole budget is not admitted (it would evict
	// everything and then still not fit).
	s.Put("huge", "x", 1000)
	if _, ok := s.Get("huge"); ok {
		t.Error("oversized entry was admitted")
	}
	if _, ok := s.Get("b"); !ok {
		t.Error("rejected oversized entry still evicted residents")
	}
}

func TestStageStoreDuplicatePut(t *testing.T) {
	s := buildcache.NewStageStore("t", 2, 0, nil)
	s.Put("a", 1, 10)
	s.Put("b", 2, 10)
	s.Put("a", 3, 20) // refresh in place: no new slot, no eviction
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	v, ok := s.Get("a")
	if !ok || v.(int) != 3 {
		t.Errorf("a = %v, want refreshed value 3", v)
	}
	if st := s.Stats(); st.Bytes != 30 || st.Evictions != 0 {
		t.Errorf("stats = %+v, want 30 bytes and no evictions", st)
	}
	// "a" kept its original FIFO position: one more insert evicts it first.
	s.Put("c", 4, 10)
	if _, ok := s.Get("a"); ok {
		t.Error("refreshed entry jumped the FIFO queue")
	}
}

func TestStageStoreRegistryCounters(t *testing.T) {
	reg := obs.NewRegistry()
	s := buildcache.NewStageStore("demo", 1, 0, reg)
	s.Put("a", 1, 1)
	s.Get("a")
	s.Get("missing")
	s.Put("b", 2, 1) // evicts a
	if got := reg.Counter("stage/demo/hits").Value(); got != 1 {
		t.Errorf("stage/demo/hits = %d, want 1", got)
	}
	if got := reg.Counter("stage/demo/misses").Value(); got != 1 {
		t.Errorf("stage/demo/misses = %d, want 1", got)
	}
	if got := reg.Counter("stage/demo/evictions").Value(); got != 1 {
		t.Errorf("stage/demo/evictions = %d, want 1", got)
	}
}

func TestStageStoreNilTolerance(t *testing.T) {
	var s *buildcache.StageStore
	s.Put("a", 1, 1)
	if _, ok := s.Get("a"); ok {
		t.Error("nil store reported a hit")
	}
	if s.Len() != 0 || s.Stats() != (buildcache.StageStats{}) {
		t.Error("nil store reported state")
	}
	var pc *buildcache.ProgramCache
	if _, ok := pc.Get("k"); ok {
		t.Error("nil program cache reported a hit")
	}
	pc.Put("k", nil)
	if pc.Stats() != (buildcache.StageStats{}) {
		t.Error("nil program cache reported stats")
	}
}
