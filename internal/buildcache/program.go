package buildcache

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"repro/internal/link"
	"repro/internal/objfile"
	"repro/internal/obs"
)

// ProgramCache is the first stage store of the incremental link pipeline: a
// content-hash-keyed cache of merged, resolved link.Programs. A set of
// object modules is validated, merged, and symbol-resolved once per content;
// every later link of the same modules shares the resulting Program
// read-only — which is safe because nothing past MarkShared mutates a
// Program, and OM lifts it into its own symbolic form before transforming.
//
// All methods tolerate a nil receiver (every lookup misses, every insert is
// dropped), so callers thread an optional cache without branching.
type ProgramCache struct {
	store *StageStore
}

// NewProgramCache builds a cache bounded to maxEntries programs (<= 0
// selects 64). reg, when non-nil, receives the stage/program/* counters.
func NewProgramCache(maxEntries int, reg *obs.Registry) *ProgramCache {
	if maxEntries <= 0 {
		maxEntries = 64
	}
	return &ProgramCache{store: NewStageStore("program", maxEntries, 0, reg)}
}

// ProgramKey derives the cache key for a module set: each module's content
// hash in link order plus the shared-library marking. It matches what
// link.Program.Hash would report after Merge+MarkShared of the same inputs.
func ProgramKey(objs []*objfile.Object, shared ...string) string {
	h := sha256.New()
	writeStr := func(s string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	writeStr(keyVersion + "/program")
	for _, obj := range objs {
		writeStr(obj.Hash())
	}
	for _, name := range shared {
		writeStr("shared:" + name)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// Get returns the cached Program for an explicit key.
func (pc *ProgramCache) Get(key string) (*link.Program, bool) {
	if pc == nil {
		return nil, false
	}
	v, ok := pc.store.Get(key)
	if !ok {
		return nil, false
	}
	return v.(*link.Program), true
}

// Put stores a merged Program under an explicit key. The caller promises
// the Program will not be mutated afterwards (MarkShared included).
func (pc *ProgramCache) Put(key string, p *link.Program) {
	if pc == nil {
		return
	}
	pc.store.Put(key, p, programSize(p))
}

// GetOrMerge returns the resident Program for the module set, merging and
// caching it on first sight. The boolean reports a cache hit. The shared
// names, when given, are applied with MarkShared before the Program is
// published (they are part of the key, so differently-marked links never
// alias).
func (pc *ProgramCache) GetOrMerge(objs []*objfile.Object, shared ...string) (*link.Program, bool, error) {
	if pc == nil {
		p, err := mergeMarked(objs, shared)
		return p, false, err
	}
	key := ProgramKey(objs, shared...)
	if p, ok := pc.Get(key); ok {
		return p, true, nil
	}
	p, err := mergeMarked(objs, shared)
	if err != nil {
		return nil, false, err
	}
	pc.Put(key, p)
	return p, false, nil
}

// Stats snapshots the underlying stage store.
func (pc *ProgramCache) Stats() StageStats {
	if pc == nil {
		return StageStats{}
	}
	return pc.store.Stats()
}

func mergeMarked(objs []*objfile.Object, shared []string) (*link.Program, error) {
	p, err := link.Merge(objs)
	if err != nil {
		return nil, err
	}
	if len(shared) > 0 {
		p.MarkShared(shared...)
	}
	return p, nil
}

// programSize estimates a Program's resident footprint for the byte bound:
// section bytes dominate, with a flat allowance per symbol and relocation.
func programSize(p *link.Program) int64 {
	var n int64
	for _, obj := range p.Objects {
		for k := range obj.Sections {
			n += int64(len(obj.Sections[k].Data))
		}
		n += int64(len(obj.Symbols))*96 + int64(len(obj.Relocs))*48
	}
	return n
}
