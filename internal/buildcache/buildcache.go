// Package buildcache is a content-addressed cache for compiled object
// modules. A cache key is the SHA-256 of everything that determines the
// compiler's output — unit name, every source file (name and text), and the
// full compilation option set — so a hit is always safe to reuse, in the
// spirit of WHOPR-style incremental whole-program builds: unchanged
// compilation inputs are never recompiled.
//
// Entries hold the serialized object-file bytes. A lookup decodes a fresh
// *objfile.Object, so callers may treat cached results exactly like freshly
// compiled ones. A Cache is optionally backed by a directory, letting
// repeated omrepro or benchmark runs across processes skip compilation
// entirely; with an empty directory name the cache is memory-only.
//
// All methods are safe for concurrent use, and every method tolerates a nil
// receiver (acting as a pass-through with no caching), so callers can thread
// an optional cache without branching.
package buildcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/objfile"
	"repro/internal/tcc"
)

// keyVersion invalidates old entries when the key schema or the object
// format changes incompatibly.
const keyVersion = "omcache-v1"

// Stats counts cache traffic. A miss corresponds one-to-one with an actual
// compilation performed by Compile, so "zero new misses" means "zero
// compiles".
type Stats struct {
	// Hits counts lookups served from the cache (memory or disk).
	Hits uint64
	// Misses counts lookups that found nothing; Compile turns each miss
	// into exactly one compilation.
	Misses uint64
	// DiskHits counts the subset of Hits served from the backing directory
	// rather than process memory.
	DiskHits uint64
	// ImageHits / ImageMisses count linked-image lookups (GetImage); they
	// are tallied separately so the compile-count identity above survives.
	ImageHits   uint64
	ImageMisses uint64
}

// Cache is a content-addressed store of serialized object modules.
type Cache struct {
	dir string

	mu    sync.Mutex
	mem   map[string][]byte
	stats Stats
}

// New creates a cache. A non-empty dir makes it persistent: entries are
// written as files under dir (created if absent) and survive the process.
func New(dir string) (*Cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o777); err != nil {
			return nil, fmt.Errorf("buildcache: %w", err)
		}
	}
	return &Cache{dir: dir, mem: make(map[string][]byte)}, nil
}

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Key derives the content address of a compilation: unit name, sources, and
// options all feed the hash, field by field, with length framing so that
// adjacent fields cannot alias.
func Key(unit string, sources []tcc.Source, opts tcc.Options) string {
	h := sha256.New()
	writeStr := func(s string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	writeInt := func(v int64) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(v))
		h.Write(n[:])
	}
	writeBool := func(b bool) {
		if b {
			writeInt(1)
		} else {
			writeInt(0)
		}
	}
	writeStr(keyVersion)
	writeStr(unit)
	writeInt(int64(len(sources)))
	for _, src := range sources {
		writeStr(src.Name)
		writeStr(src.Text)
	}
	writeBool(opts.Schedule)
	writeBool(opts.OptimizeStaticCalls)
	writeBool(opts.Inline)
	writeInt(opts.SmallDataBytes)
	writeInt(opts.OptimisticGP)
	return fmt.Sprintf("%x", h.Sum(nil))
}

// Get returns a freshly decoded object for the key, if cached.
func (c *Cache) Get(key string) (*objfile.Object, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	data, ok := c.mem[key]
	disk := false
	if !ok && c.dir != "" {
		if b, err := os.ReadFile(c.entryPath(key)); err == nil {
			data, ok, disk = b, true, true
			c.mem[key] = b
		}
	}
	c.mu.Unlock()
	var obj *objfile.Object
	if ok {
		o, err := objfile.Read(bytes.NewReader(data))
		if err != nil {
			// A corrupt entry (e.g. a truncated file from a killed
			// process) behaves like a miss; the caller recompiles and
			// overwrites it.
			ok = false
		} else {
			obj = o
		}
	}
	c.mu.Lock()
	if ok {
		c.stats.Hits++
		if disk {
			c.stats.DiskHits++
		}
	} else {
		c.stats.Misses++
	}
	c.mu.Unlock()
	return obj, ok
}

// Put stores the object under the key, in memory and (when configured) on
// disk. Disk writes go through a temporary file and rename so that readers
// never observe a partial entry.
func (c *Cache) Put(key string, obj *objfile.Object) error {
	if c == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := obj.Write(&buf); err != nil {
		return fmt.Errorf("buildcache: serialize %s: %w", obj.Name, err)
	}
	data := buf.Bytes()
	c.mu.Lock()
	c.mem[key] = data
	c.mu.Unlock()
	if c.dir == "" {
		return nil
	}
	tmp, err := os.CreateTemp(c.dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("buildcache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("buildcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("buildcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.entryPath(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("buildcache: %w", err)
	}
	return nil
}

// Compile is a caching tcc.Compile: on a hit it returns the cached object
// without invoking the compiler; on a miss it compiles and stores the
// result. A nil *Cache compiles unconditionally.
func (c *Cache) Compile(unit string, sources []tcc.Source, opts tcc.Options) (*objfile.Object, error) {
	if c == nil {
		return tcc.Compile(unit, sources, opts)
	}
	key := Key(unit, sources, opts)
	if obj, ok := c.Get(key); ok {
		return obj, nil
	}
	obj, err := tcc.Compile(unit, sources, opts)
	if err != nil {
		return nil, err
	}
	if err := c.Put(key, obj); err != nil {
		return nil, err
	}
	return obj, nil
}

func (c *Cache) entryPath(key string) string {
	return filepath.Join(c.dir, key+".o")
}

// ImageKey derives the content address of a linked image: the serialized
// input objects, the link/optimization configuration, and the content hash
// of the profile steering the layout ("" when unprofiled). Anything that
// influences the emitted image must feed this key — in particular a changed
// profile yields a changed key, so a warm rerun can never reuse a layout
// computed from stale counts.
func ImageKey(objs []*objfile.Object, variant, profileHash string) (string, error) {
	h := sha256.New()
	writeStr := func(s string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	writeStr(keyVersion + "/image")
	writeStr(variant)
	writeStr(profileHash)
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(objs)))
	h.Write(n[:])
	for _, obj := range objs {
		var buf bytes.Buffer
		if err := obj.Write(&buf); err != nil {
			return "", fmt.Errorf("buildcache: serialize %s: %w", obj.Name, err)
		}
		binary.LittleEndian.PutUint64(n[:], uint64(buf.Len()))
		h.Write(n[:])
		h.Write(buf.Bytes())
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

// RawImageKey is ImageKey over already-serialized modules: identical framing
// and result for bytes produced by Object.Write, with no decode required.
// It lets a daemon key a job on raw uploads without parsing them.
func RawImageKey(raw [][]byte, variant, profileHash string) string {
	h := sha256.New()
	writeStr := func(s string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	writeStr(keyVersion + "/image")
	writeStr(variant)
	writeStr(profileHash)
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(raw)))
	h.Write(n[:])
	for _, data := range raw {
		binary.LittleEndian.PutUint64(n[:], uint64(len(data)))
		h.Write(n[:])
		h.Write(data)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// GetImage returns a freshly decoded linked image for the key, if cached.
func (c *Cache) GetImage(key string) (*objfile.Image, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	data, ok := c.mem[key]
	if !ok && c.dir != "" {
		if b, err := os.ReadFile(c.imagePath(key)); err == nil {
			data, ok = b, true
			c.mem[key] = b
		}
	}
	c.mu.Unlock()
	var im *objfile.Image
	if ok {
		i, err := objfile.ReadImage(bytes.NewReader(data))
		if err != nil {
			ok = false // corrupt entry behaves like a miss
		} else {
			im = i
		}
	}
	c.mu.Lock()
	if ok {
		c.stats.ImageHits++
	} else {
		c.stats.ImageMisses++
	}
	c.mu.Unlock()
	return im, ok
}

// PutImage stores a linked image under the key, in memory and (when
// configured) on disk, with the same atomic-rename discipline as Put.
func (c *Cache) PutImage(key string, im *objfile.Image) error {
	if c == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := im.Write(&buf); err != nil {
		return fmt.Errorf("buildcache: serialize image: %w", err)
	}
	data := buf.Bytes()
	c.mu.Lock()
	c.mem[key] = data
	c.mu.Unlock()
	if c.dir == "" {
		return nil
	}
	tmp, err := os.CreateTemp(c.dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("buildcache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("buildcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("buildcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.imagePath(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("buildcache: %w", err)
	}
	return nil
}

func (c *Cache) imagePath(key string) string {
	return filepath.Join(c.dir, key+".img")
}
