package buildcache

import (
	"testing"

	"repro/internal/tcc"
)

var testSrc = []tcc.Source{{Name: "a.tc", Text: `
long main() {
	return 41 + 1;
}
`}}

func TestKeyDistinguishesInputs(t *testing.T) {
	base := Key("u", testSrc, tcc.DefaultOptions())
	if k := Key("v", testSrc, tcc.DefaultOptions()); k == base {
		t.Error("unit name not in key")
	}
	other := []tcc.Source{{Name: "a.tc", Text: testSrc[0].Text + "\n"}}
	if k := Key("u", other, tcc.DefaultOptions()); k == base {
		t.Error("source text not in key")
	}
	if k := Key("u", testSrc, tcc.InterprocOptions()); k == base {
		t.Error("compile options not in key")
	}
	// Length-framing: moving a boundary between name and text must change
	// the key even though the concatenation is identical.
	ab := []tcc.Source{{Name: "ab", Text: "c"}}
	ac := []tcc.Source{{Name: "a", Text: "bc"}}
	if Key("u", ab, tcc.DefaultOptions()) == Key("u", ac, tcc.DefaultOptions()) {
		t.Error("key is not length-framed")
	}
}

func TestCompileHitAndMiss(t *testing.T) {
	c, err := New("") // memory-only
	if err != nil {
		t.Fatal(err)
	}
	obj1, err := c.Compile("u", testSrc, tcc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	obj2, err := c.Compile("u", testSrc, tcc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if obj1 == obj2 {
		t.Error("cache returned a shared object; each Get must decode a fresh one")
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 miss and 1 hit", st)
	}
}

func TestDiskPersistenceAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c1.Compile("u", testSrc, tcc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	c2, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c2.Compile("u", testSrc, tcc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := c2.Stats()
	if st.Misses != 0 || st.Hits != 1 || st.DiskHits != 1 {
		t.Errorf("stats = %+v, want a single disk hit and no compiles", st)
	}
	if len(got.Symbols) != len(want.Symbols) {
		t.Errorf("decoded object has %d symbols, want %d", len(got.Symbols), len(want.Symbols))
	}
}

func TestNilCacheCompiles(t *testing.T) {
	var c *Cache
	if _, err := c.Compile("u", testSrc, tcc.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Errorf("nil cache stats = %+v", st)
	}
}
