package buildcache_test

import (
	"context"
	"testing"

	"repro/internal/buildcache"
	"repro/internal/link"
	"repro/internal/objfile"
	"repro/internal/om"
	"repro/internal/profile"
	"repro/internal/rtlib"
	"repro/internal/tcc"
)

var testSrc = []tcc.Source{{Name: "a.tc", Text: `
long main() {
	return 41 + 1;
}
`}}

func TestKeyDistinguishesInputs(t *testing.T) {
	base := buildcache.Key("u", testSrc, tcc.DefaultOptions())
	if k := buildcache.Key("v", testSrc, tcc.DefaultOptions()); k == base {
		t.Error("unit name not in key")
	}
	other := []tcc.Source{{Name: "a.tc", Text: testSrc[0].Text + "\n"}}
	if k := buildcache.Key("u", other, tcc.DefaultOptions()); k == base {
		t.Error("source text not in key")
	}
	if k := buildcache.Key("u", testSrc, tcc.InterprocOptions()); k == base {
		t.Error("compile options not in key")
	}
	// Length-framing: moving a boundary between name and text must change
	// the key even though the concatenation is identical.
	ab := []tcc.Source{{Name: "ab", Text: "c"}}
	ac := []tcc.Source{{Name: "a", Text: "bc"}}
	if buildcache.Key("u", ab, tcc.DefaultOptions()) == buildcache.Key("u", ac, tcc.DefaultOptions()) {
		t.Error("key is not length-framed")
	}
}

func TestCompileHitAndMiss(t *testing.T) {
	c, err := buildcache.New("") // memory-only
	if err != nil {
		t.Fatal(err)
	}
	obj1, err := c.Compile("u", testSrc, tcc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	obj2, err := c.Compile("u", testSrc, tcc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if obj1 == obj2 {
		t.Error("cache returned a shared object; each Get must decode a fresh one")
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 miss and 1 hit", st)
	}
}

func TestDiskPersistenceAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	c1, err := buildcache.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c1.Compile("u", testSrc, tcc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	c2, err := buildcache.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c2.Compile("u", testSrc, tcc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := c2.Stats()
	if st.Misses != 0 || st.Hits != 1 || st.DiskHits != 1 {
		t.Errorf("stats = %+v, want a single disk hit and no compiles", st)
	}
	if len(got.Symbols) != len(want.Symbols) {
		t.Errorf("decoded object has %d symbols, want %d", len(got.Symbols), len(want.Symbols))
	}
}

// TestImageCacheProfileHash is the PGO-relink contract: the same objects
// and the same profile hit the cache; mutating a single count in the
// profile changes its content hash and forces a relink.
func TestImageCacheProfileHash(t *testing.T) {
	obj, err := tcc.Compile("u", testSrc, tcc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	objs := []*objfile.Object{obj}

	prof := profile.New("synthetic")
	prof.Procs = []profile.ProcCount{{Name: "main", Entries: 1, Weight: 10}}
	key1, err := buildcache.ImageKey(objs, "om-full+pgo", prof.Hash())
	if err != nil {
		t.Fatal(err)
	}
	same, err := buildcache.ImageKey(objs, "om-full+pgo", prof.Hash())
	if err != nil {
		t.Fatal(err)
	}
	if same != key1 {
		t.Error("identical inputs produced different image keys")
	}

	prof.Procs[0].Weight = 11 // stale counts must not reuse the old layout
	key2, err := buildcache.ImageKey(objs, "om-full+pgo", prof.Hash())
	if err != nil {
		t.Fatal(err)
	}
	if key2 == key1 {
		t.Error("mutated profile did not change the image key")
	}
	if k, err := buildcache.ImageKey(objs, "om-full", ""); err != nil || k == key1 {
		t.Errorf("link variant not in key (err %v)", err)
	}

	dir := t.TempDir()
	c1, err := buildcache.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := rtlib.StandardObjects()
	if err != nil {
		t.Fatal(err)
	}
	p, err := link.Merge(append(append([]*objfile.Object(nil), objs...), lib...))
	if err != nil {
		t.Fatal(err)
	}
	res, err := om.Run(context.Background(), p, om.WithLevel(om.LevelFull))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c1.GetImage(key1); ok {
		t.Fatal("empty cache reported an image hit")
	}
	if err := c1.PutImage(key1, res.Image); err != nil {
		t.Fatal(err)
	}
	got, ok := c1.GetImage(key1)
	if !ok {
		t.Fatal("image stored but not found")
	}
	if got == res.Image {
		t.Error("cache returned the stored image; each GetImage must decode a fresh one")
	}
	if got.Entry != res.Image.Entry || len(got.Segments) != len(res.Image.Segments) {
		t.Error("decoded image differs from the stored one")
	}
	if _, ok := c1.GetImage(key2); ok {
		t.Error("mutated-profile key hit the stale entry")
	}
	if st := c1.Stats(); st.ImageHits != 1 || st.ImageMisses != 2 {
		t.Errorf("image stats = %+v, want 1 hit / 2 misses", st)
	}

	// Entries persist: a second instance over the same directory hits.
	c2, err := buildcache.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.GetImage(key1); !ok {
		t.Error("image entry did not persist across instances")
	}

	var nilCache *buildcache.Cache
	if _, ok := nilCache.GetImage(key1); ok {
		t.Error("nil cache reported an image hit")
	}
	if err := nilCache.PutImage(key1, res.Image); err != nil {
		t.Error(err)
	}
}

func TestNilCacheCompiles(t *testing.T) {
	var c *buildcache.Cache
	if _, err := c.Compile("u", testSrc, tcc.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st != (buildcache.Stats{}) {
		t.Errorf("nil cache stats = %+v", st)
	}
}
