package tcc

// Compile-time constant folding, as -O2 would do. Folding is exact: integer
// arithmetic uses the same wrapping int64 semantics as the simulator, and
// double arithmetic the same IEEE float64 operations, so a folded program
// behaves identically to an unfolded one.

// foldInt evaluates e if it is a constant long expression.
func foldInt(e *Expr) (int64, bool) {
	switch e.Kind {
	case ExprIntLit:
		return e.Int, true
	case ExprUnary:
		x, ok := foldInt(e.X)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case TokMinus:
			return -x, true
		case TokTilde:
			return ^x, true
		case TokBang:
			if x == 0 {
				return 1, true
			}
			return 0, true
		}
	case ExprBinary:
		if e.Type != TypeLong {
			return 0, false
		}
		x, ok := foldInt(e.X)
		if !ok {
			return 0, false
		}
		y, ok := foldInt(e.Y)
		if !ok {
			return 0, false
		}
		b2i := func(b bool) (int64, bool) {
			if b {
				return 1, true
			}
			return 0, true
		}
		switch e.Op {
		case TokPlus:
			return x + y, true
		case TokMinus:
			return x - y, true
		case TokStar:
			return x * y, true
		case TokSlash:
			if y == 0 {
				return 0, false // leave division by zero to the runtime
			}
			return x / y, true
		case TokPercent:
			if y == 0 {
				return 0, false
			}
			return x % y, true
		case TokAmp:
			return x & y, true
		case TokPipe:
			return x | y, true
		case TokCaret:
			return x ^ y, true
		case TokShl:
			return x << (uint64(y) & 63), true // matches the SLL semantics
		case TokShr:
			return x >> (uint64(y) & 63), true
		case TokEq:
			return b2i(x == y)
		case TokNe:
			return b2i(x != y)
		case TokLt:
			return b2i(x < y)
		case TokLe:
			return b2i(x <= y)
		case TokGt:
			return b2i(x > y)
		case TokGe:
			return b2i(x >= y)
		}
	}
	return 0, false
}

// foldDbl evaluates e if it is a constant double expression.
func foldDbl(e *Expr) (float64, bool) {
	switch e.Kind {
	case ExprFloatLit:
		return e.Flt, true
	case ExprIntLit:
		// Only used beneath a double context; conversion is exact per cvtqt.
		return float64(e.Int), true
	case ExprUnary:
		if e.Op == TokMinus && e.Type == TypeDouble {
			if x, ok := foldDbl(e.X); ok {
				return 0 - x, true // matches SUBT f31, x
			}
		}
	case ExprBinary:
		if e.Type != TypeDouble {
			return 0, false
		}
		x, ok := foldDbl(e.X)
		if !ok {
			return 0, false
		}
		y, ok := foldDbl(e.Y)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case TokPlus:
			return x + y, true
		case TokMinus:
			return x - y, true
		case TokStar:
			return x * y, true
		case TokSlash:
			return x / y, true
		}
	}
	return 0, false
}
