package tcc

// InlineUnit performs the compile-all interprocedural inlining pass: direct
// calls to trivial functions (a body of exactly "return <expr>;") are
// replaced by the callee expression with parameters substituted. This
// mirrors what the paper observes about compile-time interprocedural
// optimization: it inlines user routines but can do nothing about calls to
// previously compiled library routines.
//
// Substitution is only performed when it is obviously safe: each parameter
// occurs at most once in the callee expression, and every argument is free
// of side effects.
func InlineUnit(u *Unit) int {
	count := 0
	for _, fn := range u.FuncOrder {
		if fn.Body == nil {
			continue
		}
		count += inlineStmt(fn, fn.Body)
	}
	return count
}

// inlinableBody returns the returned expression if fn is a trivial
// single-return function, else nil.
func inlinableBody(fn *FuncDecl) *Expr {
	if fn == nil || fn.Builtin || fn.Body == nil || fn.Body.Kind != StmtBlock {
		return nil
	}
	if len(fn.Body.Body) != 1 {
		return nil
	}
	ret := fn.Body.Body[0]
	if ret.Kind != StmtReturn || ret.Expr == nil {
		return nil
	}
	if exprSize(ret.Expr) > 12 {
		return nil
	}
	return ret.Expr
}

func exprSize(e *Expr) int {
	if e == nil {
		return 0
	}
	n := 1 + exprSize(e.X) + exprSize(e.Y)
	for _, a := range e.Args {
		n += exprSize(a)
	}
	return n
}

// pure reports whether evaluating e has no side effects.
func pure(e *Expr) bool {
	if e == nil {
		return true
	}
	switch e.Kind {
	case ExprAssign, ExprCall:
		return false
	}
	if !pure(e.X) || !pure(e.Y) {
		return false
	}
	for _, a := range e.Args {
		if !pure(a) {
			return false
		}
	}
	return true
}

// paramUses counts occurrences of each parameter in the expression.
func paramUses(e *Expr, fn *FuncDecl, counts map[*VarDecl]int) bool {
	if e == nil {
		return true
	}
	switch e.Kind {
	case ExprVar:
		if e.Var != nil {
			isParam := false
			for _, p := range fn.Params {
				if e.Var == p {
					isParam = true
					break
				}
			}
			if !isParam {
				// References a callee-scope global are fine; callee locals
				// cannot appear in a single-return body without a decl.
				if !e.Var.Global {
					return false
				}
			} else {
				counts[e.Var]++
			}
		}
	case ExprAddr:
		// Taking addresses inside an inlined body risks aliasing parameter
		// temps; skip such candidates.
		return false
	}
	if !paramUses(e.X, fn, counts) || !paramUses(e.Y, fn, counts) {
		return false
	}
	for _, a := range e.Args {
		if !paramUses(a, fn, counts) {
			return false
		}
	}
	return true
}

// cloneSubst deep-copies expr, replacing parameter references with the
// corresponding argument expressions.
func cloneSubst(e *Expr, subst map[*VarDecl]*Expr) *Expr {
	if e == nil {
		return nil
	}
	if e.Kind == ExprVar && e.Var != nil {
		if arg, ok := subst[e.Var]; ok {
			return arg
		}
	}
	c := *e
	c.X = cloneSubst(e.X, subst)
	c.Y = cloneSubst(e.Y, subst)
	if len(e.Args) > 0 {
		c.Args = make([]*Expr, len(e.Args))
		for i, a := range e.Args {
			c.Args[i] = cloneSubst(a, subst)
		}
	}
	return &c
}

func inlineStmt(caller *FuncDecl, s *Stmt) int {
	if s == nil {
		return 0
	}
	n := 0
	n += inlineExpr(caller, &s.Expr)
	n += inlineExpr(caller, &s.Cond)
	n += inlineExpr(caller, &s.Post)
	if s.Decl != nil && len(s.Decl.Init) == 1 {
		n += inlineExpr(caller, &s.Decl.Init[0])
	}
	n += inlineStmt(caller, s.Init)
	n += inlineStmt(caller, s.Then)
	n += inlineStmt(caller, s.Else)
	for _, st := range s.Body {
		n += inlineStmt(caller, st)
	}
	return n
}

func inlineExpr(caller *FuncDecl, ep **Expr) int {
	e := *ep
	if e == nil {
		return 0
	}
	n := 0
	n += inlineExpr(caller, &e.X)
	n += inlineExpr(caller, &e.Y)
	for i := range e.Args {
		n += inlineExpr(caller, &e.Args[i])
	}
	if e.Kind != ExprCall || e.Func == nil || e.Func == caller {
		return n
	}
	body := inlinableBody(e.Func)
	if body == nil {
		return n
	}
	counts := make(map[*VarDecl]int)
	if !paramUses(body, e.Func, counts) {
		return n
	}
	for _, c := range counts {
		if c > 1 {
			return n
		}
	}
	for _, a := range e.Args {
		if !pure(a) {
			return n
		}
	}
	subst := make(map[*VarDecl]*Expr, len(e.Func.Params))
	for i, p := range e.Func.Params {
		arg := e.Args[i]
		// Match the parameter's register class.
		if p.Type.IsFloat() != arg.Type.IsFloat() {
			return n
		}
		subst[p] = arg
	}
	inlined := cloneSubst(body, subst)
	if inlined.Type != e.Type {
		// Result conversion would be needed; only inline exact matches.
		return n
	}
	*ep = inlined
	return n + 1
}
