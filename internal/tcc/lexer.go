package tcc

import (
	"strconv"
	"strings"
)

// Lexer tokenizes Tiny C source text.
type Lexer struct {
	src  string
	file string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src, reporting positions against file.
func NewLexer(file, src string) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1}
}

func (lx *Lexer) at() Pos { return Pos{File: lx.file, Line: lx.line, Col: lx.col} }

func (lx *Lexer) peekByte() byte {
	if lx.pos < len(lx.src) {
		return lx.src[lx.pos]
	}
	return 0
}

func (lx *Lexer) peek2() byte {
	if lx.pos+1 < len(lx.src) {
		return lx.src[lx.pos+1]
	}
	return 0
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.pos < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.at()
			lx.advance()
			lx.advance()
			for {
				if lx.pos >= len(lx.src) {
					return errf(start, "unterminated block comment")
				}
				if lx.peekByte() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := lx.at()
	if lx.pos >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := lx.peekByte()
	switch {
	case isIdentStart(c):
		start := lx.pos
		for lx.pos < len(lx.src) && (isIdentStart(lx.peekByte()) || isDigit(lx.peekByte())) {
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: pos}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: pos}, nil
	case isDigit(c):
		return lx.number(pos)
	}
	lx.advance()
	two := func(next byte, both, one TokKind) Token {
		if lx.peekByte() == next {
			lx.advance()
			return Token{Kind: both, Pos: pos}
		}
		return Token{Kind: one, Pos: pos}
	}
	switch c {
	case '(':
		return Token{Kind: TokLParen, Pos: pos}, nil
	case ')':
		return Token{Kind: TokRParen, Pos: pos}, nil
	case '{':
		return Token{Kind: TokLBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: TokRBrace, Pos: pos}, nil
	case '[':
		return Token{Kind: TokLBracket, Pos: pos}, nil
	case ']':
		return Token{Kind: TokRBracket, Pos: pos}, nil
	case ',':
		return Token{Kind: TokComma, Pos: pos}, nil
	case ';':
		return Token{Kind: TokSemi, Pos: pos}, nil
	case '+':
		return Token{Kind: TokPlus, Pos: pos}, nil
	case '-':
		return Token{Kind: TokMinus, Pos: pos}, nil
	case '*':
		return Token{Kind: TokStar, Pos: pos}, nil
	case '/':
		return Token{Kind: TokSlash, Pos: pos}, nil
	case '%':
		return Token{Kind: TokPercent, Pos: pos}, nil
	case '^':
		return Token{Kind: TokCaret, Pos: pos}, nil
	case '~':
		return Token{Kind: TokTilde, Pos: pos}, nil
	case '=':
		return two('=', TokEq, TokAssign), nil
	case '!':
		return two('=', TokNe, TokBang), nil
	case '&':
		return two('&', TokAndAnd, TokAmp), nil
	case '|':
		return two('|', TokOrOr, TokPipe), nil
	case '<':
		if lx.peekByte() == '<' {
			lx.advance()
			return Token{Kind: TokShl, Pos: pos}, nil
		}
		return two('=', TokLe, TokLt), nil
	case '>':
		if lx.peekByte() == '>' {
			lx.advance()
			return Token{Kind: TokShr, Pos: pos}, nil
		}
		return two('=', TokGe, TokGt), nil
	}
	return Token{}, errf(pos, "unexpected character %q", c)
}

func (lx *Lexer) number(pos Pos) (Token, error) {
	start := lx.pos
	isFloat := false
	if lx.peekByte() == '0' && (lx.peek2() == 'x' || lx.peek2() == 'X') {
		lx.advance()
		lx.advance()
		for lx.pos < len(lx.src) && isHexDigit(lx.peekByte()) {
			lx.advance()
		}
	} else {
		for lx.pos < len(lx.src) && isDigit(lx.peekByte()) {
			lx.advance()
		}
		if lx.peekByte() == '.' && isDigit(lx.peek2()) {
			isFloat = true
			lx.advance()
			for lx.pos < len(lx.src) && isDigit(lx.peekByte()) {
				lx.advance()
			}
		}
		if c := lx.peekByte(); c == 'e' || c == 'E' {
			save := lx.pos
			lx.advance()
			if lx.peekByte() == '+' || lx.peekByte() == '-' {
				lx.advance()
			}
			if isDigit(lx.peekByte()) {
				isFloat = true
				for lx.pos < len(lx.src) && isDigit(lx.peekByte()) {
					lx.advance()
				}
			} else {
				lx.pos = save
			}
		}
	}
	text := lx.src[start:lx.pos]
	if isFloat {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Token{}, errf(pos, "bad float literal %q: %v", text, err)
		}
		return Token{Kind: TokFloat, Flt: f, Pos: pos}, nil
	}
	var v uint64
	var err error
	if strings.HasPrefix(text, "0x") || strings.HasPrefix(text, "0X") {
		v, err = strconv.ParseUint(text[2:], 16, 64)
	} else {
		v, err = strconv.ParseUint(text, 10, 64)
	}
	if err != nil {
		return Token{}, errf(pos, "bad integer literal %q: %v", text, err)
	}
	return Token{Kind: TokInt, Int: int64(v), Pos: pos}, nil
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// LexAll tokenizes the whole input, for tests and tools.
func LexAll(file, src string) ([]Token, error) {
	lx := NewLexer(file, src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
