package tcc

// Type describes a Tiny C type. The language has 64-bit integers ("long"),
// IEEE doubles, pointers to either, untyped procedure pointers ("fnptr"),
// and one-dimensional arrays of long or double (variables only; arrays decay
// to pointers in expressions).
type Type uint8

const (
	TypeNone Type = iota
	TypeLong
	TypeDouble
	TypePtrLong
	TypePtrDouble
	TypeFnptr
	TypeArrayLong
	TypeArrayDouble
)

// String returns the source-level spelling of the type.
func (t Type) String() string {
	switch t {
	case TypeLong:
		return "long"
	case TypeDouble:
		return "double"
	case TypePtrLong:
		return "long*"
	case TypePtrDouble:
		return "double*"
	case TypeFnptr:
		return "fnptr"
	case TypeArrayLong:
		return "long[]"
	case TypeArrayDouble:
		return "double[]"
	}
	return "none"
}

// IsFloat reports whether values of the type live in FP registers.
func (t Type) IsFloat() bool { return t == TypeDouble }

// IsPointer reports whether t is a data pointer.
func (t Type) IsPointer() bool { return t == TypePtrLong || t == TypePtrDouble }

// IsArray reports whether t is an array type.
func (t Type) IsArray() bool { return t == TypeArrayLong || t == TypeArrayDouble }

// Elem returns the element type of an array or pointer.
func (t Type) Elem() Type {
	switch t {
	case TypePtrLong, TypeArrayLong:
		return TypeLong
	case TypePtrDouble, TypeArrayDouble:
		return TypeDouble
	}
	return TypeNone
}

// Decay converts array types to the corresponding pointer type.
func (t Type) Decay() Type {
	switch t {
	case TypeArrayLong:
		return TypePtrLong
	case TypeArrayDouble:
		return TypePtrDouble
	}
	return t
}

// PtrTo returns the pointer type to elem.
func PtrTo(elem Type) Type {
	switch elem {
	case TypeLong:
		return TypePtrLong
	case TypeDouble:
		return TypePtrDouble
	}
	return TypeNone
}

// ExprKind discriminates expression nodes.
type ExprKind uint8

const (
	ExprIntLit ExprKind = iota
	ExprFloatLit
	ExprVar     // variable reference (global, local, or param)
	ExprFuncRef // function name used as a value (address taken)
	ExprIndex   // base[index]
	ExprDeref   // *ptr
	ExprAddr    // &lvalue
	ExprUnary   // -x, !x, ~x
	ExprBinary  // arithmetic / comparison / logic
	ExprAssign  // lvalue = value
	ExprCall    // f(args) or fnptr-var(args)
	ExprCond    // short-circuit && and ||
)

// Expr is an expression node. Type is filled by semantic analysis.
type Expr struct {
	Kind ExprKind
	Pos  Pos
	Type Type

	Int  int64   // ExprIntLit
	Flt  float64 // ExprFloatLit
	Name string  // ExprVar, ExprFuncRef, ExprCall (direct)
	Op   TokKind // ExprUnary, ExprBinary, ExprCond
	X    *Expr   // operand / lhs / base / callee-variable
	Y    *Expr   // rhs / index
	Args []*Expr // ExprCall

	// Resolved by sema:
	Var  *VarDecl  // ExprVar: the variable referenced
	Func *FuncDecl // ExprFuncRef / direct ExprCall: the function
}

// StmtKind discriminates statement nodes.
type StmtKind uint8

const (
	StmtExpr StmtKind = iota
	StmtDecl
	StmtIf
	StmtWhile
	StmtFor
	StmtReturn
	StmtBlock
	StmtBreak
	StmtContinue
	StmtEmpty
)

// Stmt is a statement node.
type Stmt struct {
	Kind StmtKind
	Pos  Pos

	Expr *Expr    // StmtExpr, StmtReturn (may be nil)
	Decl *VarDecl // StmtDecl
	Init *Stmt    // StmtFor initializer
	Cond *Expr    // StmtIf/StmtWhile/StmtFor condition
	Post *Expr    // StmtFor post-expression
	Then *Stmt    // StmtIf then / loop body
	Else *Stmt    // StmtIf else
	Body []*Stmt  // StmtBlock
}

// VarDecl declares a global or local variable.
type VarDecl struct {
	Name     string
	Pos      Pos
	Type     Type
	ArrayLen int64 // elements, for array types
	Static   bool  // file-static (unexported)
	Extern   bool  // declared here, defined in another module
	Global   bool
	Init     []*Expr // constant initializers (globals) or single expr (locals)
	// AddrTaken marks variables whose address is taken with &; locals with
	// this flag must live in the stack frame rather than a register.
	AddrTaken bool

	// Filled during codegen for locals:
	Local *LocalInfo
}

// SizeBytes returns the variable's storage size.
func (v *VarDecl) SizeBytes() int64 {
	if v.Type.IsArray() {
		return 8 * v.ArrayLen
	}
	return 8
}

// LocalInfo records where codegen placed a local variable.
type LocalInfo struct {
	// InReg is true when the local lives in a callee-saved register.
	InReg bool
	Reg   uint8 // axp.Reg or axp.FReg value, when InReg
	// FrameOff is the byte offset from SP, when !InReg.
	FrameOff int64
	// AddrTaken marks locals whose address escapes; they must live on the
	// stack.
	AddrTaken bool
}

// FuncDecl declares a function.
type FuncDecl struct {
	Name    string
	Pos     Pos
	Ret     Type
	Params  []*VarDecl
	Body    *Stmt // nil for a forward declaration
	Static  bool
	Builtin bool // __output / __outputc / __halt / __cycles intrinsics

	// AddrTaken is set by sema when the function's name is used as a value;
	// such functions are reachable through procedure variables and OM must
	// keep their prologues and GAT entries.
	AddrTaken bool
	// Inlined marks functions eliminated entirely by the compile-all
	// inliner (no longer emitted).
	Inlined bool
}

// File is one parsed source file (one compilation unit in compile-each mode).
type File struct {
	Name  string
	Vars  []*VarDecl
	Funcs []*FuncDecl
}

// Unit is the sema'd unit of compilation: one or more files compiled
// together (compile-each: a single file; compile-all: all user files).
type Unit struct {
	Name  string
	Files []*File
	// Resolved global scope:
	Vars  map[string]*VarDecl
	Funcs map[string]*FuncDecl
	// Order of definition for deterministic layout.
	VarOrder  []*VarDecl
	FuncOrder []*FuncDecl
	// Externs are names referenced but not defined in this unit.
	ExternVars  map[string]*VarDecl  // synthesized decls (type known from use? no: must be declared)
	ExternFuncs map[string]*FuncDecl // synthesized forward decls
}
