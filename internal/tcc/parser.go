package tcc

// Parser builds a File AST from Tiny C source.
type Parser struct {
	lx   *Lexer
	tok  Token
	peek *Token
	file *File
}

// ParseFile parses one source file into a File AST. Semantic analysis is a
// separate pass (see Analyze).
func ParseFile(name, src string) (*File, error) {
	p := &Parser{lx: NewLexer(name, src), file: &File{Name: name}}
	if err := p.next(); err != nil {
		return nil, err
	}
	for p.tok.Kind != TokEOF {
		if err := p.parseTop(); err != nil {
			return nil, err
		}
	}
	return p.file, nil
}

func (p *Parser) next() error {
	if p.peek != nil {
		p.tok = *p.peek
		p.peek = nil
		return nil
	}
	t, err := p.lx.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *Parser) expect(k TokKind) (Token, error) {
	if p.tok.Kind != k {
		return Token{}, errf(p.tok.Pos, "expected %v, found %v", k, p.tok.Kind)
	}
	t := p.tok
	return t, p.next()
}

func (p *Parser) accept(k TokKind) (bool, error) {
	if p.tok.Kind == k {
		return true, p.next()
	}
	return false, nil
}

// parseType parses "long", "double", "long*", "double*", or "fnptr".
func (p *Parser) parseType() (Type, error) {
	var base Type
	switch p.tok.Kind {
	case TokLong:
		base = TypeLong
	case TokDouble:
		base = TypeDouble
	case TokFnptr:
		if err := p.next(); err != nil {
			return TypeNone, err
		}
		return TypeFnptr, nil
	default:
		return TypeNone, errf(p.tok.Pos, "expected type, found %v", p.tok.Kind)
	}
	if err := p.next(); err != nil {
		return TypeNone, err
	}
	if p.tok.Kind == TokStar {
		if err := p.next(); err != nil {
			return TypeNone, err
		}
		return PtrTo(base), nil
	}
	return base, nil
}

func (p *Parser) parseTop() error {
	static := false
	extern := false
	switch p.tok.Kind {
	case TokStatic:
		static = true
		if err := p.next(); err != nil {
			return err
		}
	case TokExtern:
		extern = true
		if err := p.next(); err != nil {
			return err
		}
	}
	typ, err := p.parseType()
	if err != nil {
		return err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return err
	}
	if p.tok.Kind == TokLParen {
		if extern {
			return errf(name.Pos, "extern applies to variables; use a forward declaration for functions")
		}
		return p.parseFunc(typ, name, static)
	}
	return p.parseGlobalVar(typ, name, static, extern)
}

func (p *Parser) parseGlobalVar(typ Type, name Token, static, extern bool) error {
	v := &VarDecl{Name: name.Text, Pos: name.Pos, Type: typ, Static: static, Global: true}
	if extern {
		v.Static = false
	}
	if ok, err := p.accept(TokLBracket); err != nil {
		return err
	} else if ok {
		n, err := p.expect(TokInt)
		if err != nil {
			return err
		}
		if n.Int <= 0 {
			return errf(n.Pos, "array length must be positive")
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return err
		}
		switch typ {
		case TypeLong:
			v.Type = TypeArrayLong
		case TypeDouble:
			v.Type = TypeArrayDouble
		default:
			return errf(name.Pos, "array of %v not supported", typ)
		}
		v.ArrayLen = n.Int
	}
	if ok, err := p.accept(TokAssign); err != nil {
		return err
	} else if ok {
		if extern {
			return errf(name.Pos, "extern declaration cannot have an initializer")
		}
		if ok, err := p.accept(TokLBrace); err != nil {
			return err
		} else if ok {
			if !v.Type.IsArray() {
				return errf(name.Pos, "brace initializer requires an array")
			}
			for {
				e, err := p.parseExpr()
				if err != nil {
					return err
				}
				v.Init = append(v.Init, e)
				if ok, err := p.accept(TokComma); err != nil {
					return err
				} else if !ok {
					break
				}
			}
			if _, err := p.expect(TokRBrace); err != nil {
				return err
			}
			if int64(len(v.Init)) > v.ArrayLen {
				return errf(name.Pos, "too many initializers for %s[%d]", v.Name, v.ArrayLen)
			}
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return err
			}
			v.Init = []*Expr{e}
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return err
	}
	if extern {
		// Record as an extern reference via a synthetic zero-size decl; sema
		// distinguishes it by Global && Init==nil && ArrayLen recorded.
		v.Init = nil
	}
	v.Extern = extern
	p.file.Vars = append(p.file.Vars, v)
	return nil
}

func (p *Parser) parseFunc(ret Type, name Token, static bool) error {
	fn := &FuncDecl{Name: name.Text, Pos: name.Pos, Ret: ret, Static: static}
	if _, err := p.expect(TokLParen); err != nil {
		return err
	}
	if p.tok.Kind != TokRParen {
		for {
			typ, err := p.parseType()
			if err != nil {
				return err
			}
			if typ.IsArray() {
				return errf(p.tok.Pos, "array parameters not supported; use a pointer")
			}
			pn, err := p.expect(TokIdent)
			if err != nil {
				return err
			}
			fn.Params = append(fn.Params, &VarDecl{Name: pn.Text, Pos: pn.Pos, Type: typ})
			if ok, err := p.accept(TokComma); err != nil {
				return err
			} else if !ok {
				break
			}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return err
	}
	if len(fn.Params) > 6 {
		return errf(name.Pos, "function %s has %d parameters; at most 6 supported (register-only calling convention)", fn.Name, len(fn.Params))
	}
	if ok, err := p.accept(TokSemi); err != nil {
		return err
	} else if ok {
		// Forward declaration.
		p.file.Funcs = append(p.file.Funcs, fn)
		return nil
	}
	body, err := p.parseBlock()
	if err != nil {
		return err
	}
	fn.Body = body
	p.file.Funcs = append(p.file.Funcs, fn)
	return nil
}

func (p *Parser) parseBlock() (*Stmt, error) {
	lb, err := p.expect(TokLBrace)
	if err != nil {
		return nil, err
	}
	blk := &Stmt{Kind: StmtBlock, Pos: lb.Pos}
	for p.tok.Kind != TokRBrace {
		if p.tok.Kind == TokEOF {
			return nil, errf(lb.Pos, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Body = append(blk.Body, s)
	}
	return blk, p.next()
}

func (p *Parser) parseStmt() (*Stmt, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case TokSemi:
		return &Stmt{Kind: StmtEmpty, Pos: pos}, p.next()
	case TokLBrace:
		return p.parseBlock()
	case TokLong, TokDouble, TokFnptr:
		return p.parseLocalDecl()
	case TokIf:
		if err := p.next(); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st := &Stmt{Kind: StmtIf, Pos: pos, Cond: cond, Then: then}
		if ok, err := p.accept(TokElse); err != nil {
			return nil, err
		} else if ok {
			els, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil
	case TokWhile:
		if err := p.next(); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &Stmt{Kind: StmtWhile, Pos: pos, Cond: cond, Then: body}, nil
	case TokFor:
		return p.parseFor(pos)
	case TokReturn:
		if err := p.next(); err != nil {
			return nil, err
		}
		st := &Stmt{Kind: StmtReturn, Pos: pos}
		if p.tok.Kind != TokSemi {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Expr = e
		}
		_, err := p.expect(TokSemi)
		return st, err
	case TokBreak:
		if err := p.next(); err != nil {
			return nil, err
		}
		_, err := p.expect(TokSemi)
		return &Stmt{Kind: StmtBreak, Pos: pos}, err
	case TokContinue:
		if err := p.next(); err != nil {
			return nil, err
		}
		_, err := p.expect(TokSemi)
		return &Stmt{Kind: StmtContinue, Pos: pos}, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &Stmt{Kind: StmtExpr, Pos: pos, Expr: e}, nil
}

func (p *Parser) parseFor(pos Pos) (*Stmt, error) {
	if err := p.next(); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	st := &Stmt{Kind: StmtFor, Pos: pos}
	if p.tok.Kind != TokSemi {
		if p.tok.Kind == TokLong || p.tok.Kind == TokDouble || p.tok.Kind == TokFnptr {
			d, err := p.parseLocalDecl() // consumes the semicolon
			if err != nil {
				return nil, err
			}
			st.Init = d
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Init = &Stmt{Kind: StmtExpr, Pos: e.Pos, Expr: e}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
		}
	} else if err := p.next(); err != nil {
		return nil, err
	}
	if p.tok.Kind != TokSemi {
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Cond = c
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if p.tok.Kind != TokRParen {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Post = e
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st.Then = body
	return st, nil
}

func (p *Parser) parseLocalDecl() (*Stmt, error) {
	pos := p.tok.Pos
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	v := &VarDecl{Name: name.Text, Pos: name.Pos, Type: typ}
	if ok, err := p.accept(TokLBracket); err != nil {
		return nil, err
	} else if ok {
		n, err := p.expect(TokInt)
		if err != nil {
			return nil, err
		}
		if n.Int <= 0 {
			return nil, errf(n.Pos, "array length must be positive")
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		switch typ {
		case TypeLong:
			v.Type = TypeArrayLong
		case TypeDouble:
			v.Type = TypeArrayDouble
		default:
			return nil, errf(name.Pos, "array of %v not supported", typ)
		}
		v.ArrayLen = n.Int
	}
	if ok, err := p.accept(TokAssign); err != nil {
		return nil, err
	} else if ok {
		if v.Type.IsArray() {
			return nil, errf(name.Pos, "local array initializers not supported")
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		v.Init = []*Expr{e}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &Stmt{Kind: StmtDecl, Pos: pos, Decl: v}, nil
}

// Binary operator precedence, higher binds tighter.
var binPrec = map[TokKind]int{
	TokOrOr: 1, TokAndAnd: 2,
	TokPipe: 3, TokCaret: 4, TokAmp: 5,
	TokEq: 6, TokNe: 6,
	TokLt: 7, TokLe: 7, TokGt: 7, TokGe: 7,
	TokShl: 8, TokShr: 8,
	TokPlus: 9, TokMinus: 9,
	TokStar: 10, TokSlash: 10, TokPercent: 10,
}

func (p *Parser) parseExpr() (*Expr, error) { return p.parseAssign() }

func (p *Parser) parseAssign() (*Expr, error) {
	lhs, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if p.tok.Kind == TokAssign {
		pos := p.tok.Pos
		if err := p.next(); err != nil {
			return nil, err
		}
		rhs, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: ExprAssign, Pos: pos, X: lhs, Y: rhs}, nil
	}
	return lhs, nil
}

func (p *Parser) parseBinary(minPrec int) (*Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		prec, ok := binPrec[p.tok.Kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		op := p.tok.Kind
		pos := p.tok.Pos
		if err := p.next(); err != nil {
			return nil, err
		}
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		kind := ExprBinary
		if op == TokAndAnd || op == TokOrOr {
			kind = ExprCond
		}
		lhs = &Expr{Kind: kind, Pos: pos, Op: op, X: lhs, Y: rhs}
	}
}

func (p *Parser) parseUnary() (*Expr, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case TokMinus, TokBang, TokTilde:
		op := p.tok.Kind
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: ExprUnary, Pos: pos, Op: op, X: x}, nil
	case TokStar:
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: ExprDeref, Pos: pos, X: x}, nil
	case TokAmp:
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: ExprAddr, Pos: pos, X: x}, nil
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (*Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.tok.Kind {
		case TokLBracket:
			pos := p.tok.Pos
			if err := p.next(); err != nil {
				return nil, err
			}
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			e = &Expr{Kind: ExprIndex, Pos: pos, X: e, Y: idx}
		case TokLParen:
			pos := p.tok.Pos
			if err := p.next(); err != nil {
				return nil, err
			}
			call := &Expr{Kind: ExprCall, Pos: pos}
			if e.Kind == ExprVar {
				// Direct call by name or call through an fnptr variable;
				// sema decides which.
				call.Name = e.Name
				call.X = e
			} else {
				return nil, errf(pos, "call target must be a name")
			}
			if p.tok.Kind != TokRParen {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if ok, err := p.accept(TokComma); err != nil {
						return nil, err
					} else if !ok {
						break
					}
				}
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			if len(call.Args) > 6 {
				return nil, errf(pos, "call with %d arguments; at most 6 supported", len(call.Args))
			}
			e = call
		default:
			return e, nil
		}
	}
}

func (p *Parser) parsePrimary() (*Expr, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case TokInt:
		v := p.tok.Int
		return &Expr{Kind: ExprIntLit, Pos: pos, Int: v}, p.next()
	case TokFloat:
		v := p.tok.Flt
		return &Expr{Kind: ExprFloatLit, Pos: pos, Flt: v}, p.next()
	case TokIdent:
		name := p.tok.Text
		return &Expr{Kind: ExprVar, Pos: pos, Name: name}, p.next()
	case TokLParen:
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(TokRParen)
		return e, err
	}
	return nil, errf(pos, "unexpected %v in expression", p.tok.Kind)
}
