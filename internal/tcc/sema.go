package tcc

import (
	"fmt"
	"math"
	"path"
	"strings"
)

// Builtins are the compiler intrinsics that bottom out in CALL_PAL. The
// runtime library wraps them; user code normally calls the library.
var builtinDecls = []*FuncDecl{
	{Name: "__output", Ret: TypeLong, Params: []*VarDecl{{Name: "x", Type: TypeLong}}, Builtin: true},
	{Name: "__outputc", Ret: TypeLong, Params: []*VarDecl{{Name: "x", Type: TypeLong}}, Builtin: true},
	{Name: "__halt", Ret: TypeLong, Params: []*VarDecl{{Name: "x", Type: TypeLong}}, Builtin: true},
	{Name: "__cycles", Ret: TypeLong, Builtin: true},
}

// stdDecls predeclares the runtime-library API (internal/rtlib) so user
// code can call it without writing forward declarations, as pre-ANSI C
// compilers allowed. A user definition of the same name takes precedence.
var stdDecls = func() map[string]*FuncDecl {
	l, d := TypeLong, TypeDouble
	pl, pd := TypePtrLong, TypePtrDouble
	mk := func(name string, ret Type, params ...Type) *FuncDecl {
		fn := &FuncDecl{Name: name, Ret: ret}
		for i, p := range params {
			fn.Params = append(fn.Params, &VarDecl{Name: fmt.Sprintf("p%d", i), Type: p})
		}
		return fn
	}
	decls := []*FuncDecl{
		mk("print", l, l),
		mk("exit", l, l),
		mk("labs", l, l),
		mk("lmin", l, l, l),
		mk("lmax", l, l, l),
		mk("__divq", l, l, l),
		mk("__remq", l, l, l),
		mk("memcpy8", l, pl, pl, l),
		mk("memset8", l, pl, l, l),
		mk("lsum", l, pl, l),
		mk("lrev", l, pl, l),
		mk("ddot", d, pd, pd, l),
		mk("dscale", l, pd, l, d),
		mk("dmaxv", d, pd, l),
		mk("dabs", d, d),
		mk("dsqrt", d, d),
		mk("dsin", d, d),
		mk("dcos", d, d),
		mk("dexp", d, d),
		mk("dpowi", d, d, l),
		mk("srand48", l, l),
		mk("xrand", l),
		mk("lhash", l, l),
		mk("binsearch", l, pl, l, l),
		mk("qsort8", l, pl, l, l, TypeFnptr),
		mk("issorted", l, pl, l, TypeFnptr),
		mk("print_array", l, pl, l),
		mk("print_pair", l, l, l),
		mk("print_fixed", l, d),
		mk("print_checksum", l, pl, l),
	}
	m := make(map[string]*FuncDecl, len(decls))
	for _, fn := range decls {
		m[fn.Name] = fn
	}
	return m
}()

type scope struct {
	vars   map[string]*VarDecl
	parent *scope
}

func (s *scope) lookup(name string) *VarDecl {
	for sc := s; sc != nil; sc = sc.parent {
		if v, ok := sc.vars[name]; ok {
			return v
		}
	}
	return nil
}

type analyzer struct {
	unit *Unit
	// fileStatics maps file -> name -> decl for file-scope statics.
	fileStatics map[*File]map[string]*VarDecl
	fileFuncs   map[*File]map[string]*FuncDecl
	// defFile records which file supplied each function's body: a definition
	// merged into a prototype from another file must be checked in the
	// defining file's scope, where its file statics are visible.
	defFile   map[*FuncDecl]*File
	curFile   *File
	curFunc   *FuncDecl
	loopDepth int
}

// Analyze resolves names and types across the given files, which together
// form one compilation unit. It returns the analyzed Unit.
func Analyze(name string, files []*File) (*Unit, error) {
	u := &Unit{
		Name:        name,
		Files:       files,
		Vars:        make(map[string]*VarDecl),
		Funcs:       make(map[string]*FuncDecl),
		ExternVars:  make(map[string]*VarDecl),
		ExternFuncs: make(map[string]*FuncDecl),
	}
	a := &analyzer{
		unit:        u,
		fileStatics: make(map[*File]map[string]*VarDecl),
		fileFuncs:   make(map[*File]map[string]*FuncDecl),
		defFile:     make(map[*FuncDecl]*File),
	}

	// Pass 1: collect global declarations.
	for _, f := range files {
		a.fileStatics[f] = make(map[string]*VarDecl)
		a.fileFuncs[f] = make(map[string]*FuncDecl)
		for _, v := range f.Vars {
			if err := a.declareVar(f, v); err != nil {
				return nil, err
			}
		}
		for _, fn := range f.Funcs {
			if err := a.declareFunc(f, fn); err != nil {
				return nil, err
			}
		}
	}

	// Pass 2: check bodies and global initializers.
	for _, f := range files {
		a.curFile = f
		for _, v := range f.Vars {
			if v.Extern {
				continue
			}
			for i, e := range v.Init {
				if err := a.checkConstInit(v, e); err != nil {
					return nil, err
				}
				_ = i
			}
		}
		for _, fn := range f.Funcs {
			// Check each body exactly once, in its defining file: a body
			// merged into another file's prototype node also appears in that
			// file's list, but its file statics live here.
			if fn.Body == nil || a.defFile[fn] != f {
				continue
			}
			if err := a.checkFunc(fn); err != nil {
				return nil, err
			}
		}
	}
	return u, nil
}

// mangle produces the link-time symbol name for a file-static declaration.
func mangle(file *File, name string) string {
	base := path.Base(file.Name)
	base = strings.TrimSuffix(base, path.Ext(base))
	return base + "$" + name
}

func (a *analyzer) declareVar(f *File, v *VarDecl) error {
	if v.Extern {
		// A definition elsewhere in the unit wins; otherwise record extern.
		if _, ok := a.unit.Vars[v.Name]; !ok {
			if prev, ok := a.unit.ExternVars[v.Name]; ok {
				if prev.Type != v.Type {
					return errf(v.Pos, "conflicting extern declarations for %s: %v vs %v", v.Name, prev.Type, v.Type)
				}
			} else {
				a.unit.ExternVars[v.Name] = v
			}
		}
		return nil
	}
	if v.Static {
		if _, ok := a.fileStatics[f][v.Name]; ok {
			return errf(v.Pos, "duplicate static variable %s", v.Name)
		}
		a.fileStatics[f][v.Name] = v
		a.unit.VarOrder = append(a.unit.VarOrder, v)
		return nil
	}
	if prev, ok := a.unit.Vars[v.Name]; ok {
		return errf(v.Pos, "duplicate global variable %s (previous at %s)", v.Name, prev.Pos)
	}
	if _, ok := a.unit.Funcs[v.Name]; ok {
		return errf(v.Pos, "%s already declared as a function", v.Name)
	}
	a.unit.Vars[v.Name] = v
	a.unit.VarOrder = append(a.unit.VarOrder, v)
	delete(a.unit.ExternVars, v.Name)
	return nil
}

func (a *analyzer) declareFunc(f *File, fn *FuncDecl) error {
	if len(fn.Params) > 6 {
		return errf(fn.Pos, "function %s: more than 6 parameters", fn.Name)
	}
	if fn.Static {
		prev := a.fileFuncs[f][fn.Name]
		if prev != nil {
			if prev.Body != nil && fn.Body != nil {
				return errf(fn.Pos, "duplicate static function %s", fn.Name)
			}
			if fn.Body != nil {
				*prev = *fn // definition replaces forward declaration
				a.defFile[prev] = f
			}
			return nil
		}
		a.fileFuncs[f][fn.Name] = fn
		if fn.Body != nil {
			a.defFile[fn] = f
		}
		if fn.Body != nil {
			a.unit.FuncOrder = append(a.unit.FuncOrder, fn)
		} else {
			// static forward declarations must be defined later; track so we
			// can emit in definition order when the body arrives.
			a.unit.FuncOrder = append(a.unit.FuncOrder, fn)
		}
		return nil
	}
	prev := a.unit.Funcs[fn.Name]
	if prev != nil {
		if prev.Body != nil && fn.Body != nil {
			return errf(fn.Pos, "duplicate function %s (previous at %s)", fn.Name, prev.Pos)
		}
		if !sameSignature(prev, fn) {
			return errf(fn.Pos, "conflicting declarations for %s", fn.Name)
		}
		if fn.Body != nil {
			prev.Body = fn.Body
			prev.Pos = fn.Pos
			a.defFile[prev] = f
			delete(a.unit.ExternFuncs, fn.Name)
			// Re-point the file's entry so codegen sees one node.
			for i, g := range f.Funcs {
				if g == fn {
					f.Funcs[i] = prev
				}
			}
			a.unit.FuncOrder = append(a.unit.FuncOrder, prev)
		}
		return nil
	}
	if _, ok := a.unit.Vars[fn.Name]; ok {
		return errf(fn.Pos, "%s already declared as a variable", fn.Name)
	}
	a.unit.Funcs[fn.Name] = fn
	if fn.Body != nil {
		a.defFile[fn] = f
		a.unit.FuncOrder = append(a.unit.FuncOrder, fn)
	} else {
		a.unit.ExternFuncs[fn.Name] = fn
	}
	return nil
}

func sameSignature(a, b *FuncDecl) bool {
	if a.Ret != b.Ret || len(a.Params) != len(b.Params) {
		return false
	}
	for i := range a.Params {
		if a.Params[i].Type != b.Params[i].Type {
			return false
		}
	}
	return true
}

func (a *analyzer) checkConstInit(v *VarDecl, e *Expr) error {
	val, isFloat, ok := constFold(e)
	if !ok {
		return errf(e.Pos, "initializer for %s must be a constant expression", v.Name)
	}
	elem := v.Type
	if v.Type.IsArray() {
		elem = v.Type.Elem()
	}
	switch {
	case elem == TypeDouble:
		e.Type = TypeDouble
	case elem == TypeLong || elem.IsPointer() || elem == TypeFnptr:
		if isFloat {
			return errf(e.Pos, "float initializer for integer variable %s", v.Name)
		}
		e.Type = TypeLong
	}
	_ = val
	return nil
}

// constFold evaluates a constant expression of int/float literals with unary
// minus and basic arithmetic. Returns the value as float64 plus a flag for
// floatness.
func constFold(e *Expr) (val float64, isFloat, ok bool) {
	switch e.Kind {
	case ExprIntLit:
		return float64(e.Int), false, true
	case ExprFloatLit:
		return e.Flt, true, true
	case ExprUnary:
		if e.Op == TokMinus {
			v, f, ok := constFold(e.X)
			return -v, f, ok
		}
	case ExprBinary:
		lv, lf, lok := constFold(e.X)
		rv, rf, rok := constFold(e.Y)
		if !lok || !rok {
			return 0, false, false
		}
		f := lf || rf
		switch e.Op {
		case TokPlus:
			return lv + rv, f, true
		case TokMinus:
			return lv - rv, f, true
		case TokStar:
			return lv * rv, f, true
		}
	}
	return 0, false, false
}

// ConstInitValue returns the encoded 64-bit initializer value for a checked
// constant initializer expression of the given element type.
func ConstInitValue(e *Expr, elem Type) (uint64, error) {
	v, isFloat, ok := constFold(e)
	if !ok {
		return 0, errf(e.Pos, "not a constant initializer")
	}
	if elem == TypeDouble {
		return math.Float64bits(v), nil
	}
	if isFloat {
		return 0, errf(e.Pos, "float initializer for integer data")
	}
	return uint64(int64(v)), nil
}

func (a *analyzer) checkFunc(fn *FuncDecl) error {
	a.curFunc = fn
	sc := &scope{vars: make(map[string]*VarDecl)}
	for _, p := range fn.Params {
		if _, ok := sc.vars[p.Name]; ok {
			return errf(p.Pos, "duplicate parameter %s", p.Name)
		}
		sc.vars[p.Name] = p
	}
	return a.checkStmt(fn.Body, sc)
}

func (a *analyzer) checkStmt(s *Stmt, sc *scope) error {
	switch s.Kind {
	case StmtEmpty:
		return nil
	case StmtExpr:
		_, err := a.checkExpr(s.Expr, sc)
		return err
	case StmtDecl:
		v := s.Decl
		if _, ok := sc.vars[v.Name]; ok {
			return errf(v.Pos, "duplicate local %s", v.Name)
		}
		if len(v.Init) == 1 {
			t, err := a.checkExpr(v.Init[0], sc)
			if err != nil {
				return err
			}
			if err := checkAssignable(v.Type, t, v.Init[0].Pos); err != nil {
				return err
			}
		}
		sc.vars[v.Name] = v
		return nil
	case StmtBlock:
		inner := &scope{vars: make(map[string]*VarDecl), parent: sc}
		for _, st := range s.Body {
			if err := a.checkStmt(st, inner); err != nil {
				return err
			}
		}
		return nil
	case StmtIf:
		if err := a.checkCond(s.Cond, sc); err != nil {
			return err
		}
		if err := a.checkStmt(s.Then, sc); err != nil {
			return err
		}
		if s.Else != nil {
			return a.checkStmt(s.Else, sc)
		}
		return nil
	case StmtWhile:
		if err := a.checkCond(s.Cond, sc); err != nil {
			return err
		}
		a.loopDepth++
		err := a.checkStmt(s.Then, sc)
		a.loopDepth--
		return err
	case StmtFor:
		inner := &scope{vars: make(map[string]*VarDecl), parent: sc}
		if s.Init != nil {
			if err := a.checkStmt(s.Init, inner); err != nil {
				return err
			}
		}
		if s.Cond != nil {
			if err := a.checkCond(s.Cond, inner); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if _, err := a.checkExpr(s.Post, inner); err != nil {
				return err
			}
		}
		a.loopDepth++
		err := a.checkStmt(s.Then, inner)
		a.loopDepth--
		return err
	case StmtReturn:
		if s.Expr == nil {
			return nil
		}
		t, err := a.checkExpr(s.Expr, sc)
		if err != nil {
			return err
		}
		return checkAssignable(a.curFunc.Ret, t, s.Expr.Pos)
	case StmtBreak, StmtContinue:
		if a.loopDepth == 0 {
			return errf(s.Pos, "break/continue outside a loop")
		}
		return nil
	}
	return errf(s.Pos, "unhandled statement kind %d", s.Kind)
}

func (a *analyzer) checkCond(e *Expr, sc *scope) error {
	t, err := a.checkExpr(e, sc)
	if err != nil {
		return err
	}
	if t.IsArray() {
		return errf(e.Pos, "array used as a condition")
	}
	return nil
}

// checkAssignable verifies that a value of type src can be stored into dst,
// allowing the implicit long<->double conversions.
func checkAssignable(dst, src Type, pos Pos) error {
	if dst == src {
		return nil
	}
	if (dst == TypeLong && src == TypeDouble) || (dst == TypeDouble && src == TypeLong) {
		return nil
	}
	if dst.IsPointer() && src.IsArray() && dst.Elem() == src.Elem() {
		return nil
	}
	return errf(pos, "cannot assign %v to %v", src, dst)
}

func (a *analyzer) lookupFunc(name string) *FuncDecl {
	if fn, ok := a.fileFuncs[a.curFile][name]; ok {
		return fn
	}
	if fn, ok := a.unit.Funcs[name]; ok {
		return fn
	}
	if fn, ok := a.unit.ExternFuncs[name]; ok {
		return fn
	}
	for _, b := range builtinDecls {
		if b.Name == name {
			return b
		}
	}
	if fn, ok := stdDecls[name]; ok {
		return fn
	}
	return nil
}

func (a *analyzer) lookupVar(name string, sc *scope) *VarDecl {
	if v := sc.lookup(name); v != nil {
		return v
	}
	if v, ok := a.fileStatics[a.curFile][name]; ok {
		return v
	}
	if v, ok := a.unit.Vars[name]; ok {
		return v
	}
	if v, ok := a.unit.ExternVars[name]; ok {
		return v
	}
	return nil
}

func (a *analyzer) checkExpr(e *Expr, sc *scope) (Type, error) {
	switch e.Kind {
	case ExprIntLit:
		e.Type = TypeLong
		return TypeLong, nil
	case ExprFloatLit:
		e.Type = TypeDouble
		return TypeDouble, nil
	case ExprVar:
		if v := a.lookupVar(e.Name, sc); v != nil {
			e.Var = v
			e.Type = v.Type
			return v.Type, nil
		}
		if fn := a.lookupFunc(e.Name); fn != nil {
			if fn.Builtin {
				return TypeNone, errf(e.Pos, "builtin %s cannot be used as a value", e.Name)
			}
			e.Kind = ExprFuncRef
			e.Func = fn
			e.Type = TypeFnptr
			fn.AddrTaken = true
			return TypeFnptr, nil
		}
		return TypeNone, errf(e.Pos, "undefined name %s", e.Name)
	case ExprIndex:
		bt, err := a.checkExpr(e.X, sc)
		if err != nil {
			return TypeNone, err
		}
		it, err := a.checkExpr(e.Y, sc)
		if err != nil {
			return TypeNone, err
		}
		if it != TypeLong {
			return TypeNone, errf(e.Y.Pos, "array index must be long, got %v", it)
		}
		elem := bt.Elem()
		if elem == TypeNone {
			return TypeNone, errf(e.Pos, "cannot index %v", bt)
		}
		e.Type = elem
		return elem, nil
	case ExprDeref:
		t, err := a.checkExpr(e.X, sc)
		if err != nil {
			return TypeNone, err
		}
		if !t.Decay().IsPointer() {
			return TypeNone, errf(e.Pos, "cannot dereference %v", t)
		}
		e.Type = t.Decay().Elem()
		return e.Type, nil
	case ExprAddr:
		t, err := a.checkExpr(e.X, sc)
		if err != nil {
			return TypeNone, err
		}
		switch e.X.Kind {
		case ExprVar:
			if e.X.Var != nil && !e.X.Var.Global {
				e.X.Var.AddrTaken = true
			}
			if t.IsArray() {
				e.Type = t.Decay()
				return e.Type, nil
			}
			if t == TypeFnptr {
				return TypeNone, errf(e.Pos, "cannot take the address of an fnptr variable")
			}
			e.Type = PtrTo(t)
		case ExprIndex:
			e.Type = PtrTo(t)
		case ExprDeref:
			e.Type = PtrTo(t)
		default:
			return TypeNone, errf(e.Pos, "cannot take the address of this expression")
		}
		if e.Type == TypeNone {
			return TypeNone, errf(e.Pos, "cannot take the address of a %v", t)
		}
		return e.Type, nil
	case ExprUnary:
		t, err := a.checkExpr(e.X, sc)
		if err != nil {
			return TypeNone, err
		}
		switch e.Op {
		case TokMinus:
			if t != TypeLong && t != TypeDouble {
				return TypeNone, errf(e.Pos, "cannot negate %v", t)
			}
			e.Type = t
		case TokBang, TokTilde:
			if t != TypeLong {
				return TypeNone, errf(e.Pos, "operator %v requires long, got %v", e.Op, t)
			}
			e.Type = TypeLong
		default:
			return TypeNone, errf(e.Pos, "bad unary operator %v", e.Op)
		}
		return e.Type, nil
	case ExprBinary:
		lt, err := a.checkExpr(e.X, sc)
		if err != nil {
			return TypeNone, err
		}
		rt, err := a.checkExpr(e.Y, sc)
		if err != nil {
			return TypeNone, err
		}
		lt, rt = lt.Decay(), rt.Decay()
		switch e.Op {
		case TokPlus, TokMinus, TokStar, TokSlash:
			if lt.IsPointer() || rt.IsPointer() {
				return TypeNone, errf(e.Pos, "pointer arithmetic is limited to indexing")
			}
			if lt == TypeDouble || rt == TypeDouble {
				if (lt != TypeDouble && lt != TypeLong) || (rt != TypeDouble && rt != TypeLong) {
					return TypeNone, errf(e.Pos, "bad operands %v, %v for %v", lt, rt, e.Op)
				}
				e.Type = TypeDouble
			} else if lt == TypeLong && rt == TypeLong {
				e.Type = TypeLong
			} else {
				return TypeNone, errf(e.Pos, "bad operands %v, %v for %v", lt, rt, e.Op)
			}
		case TokPercent, TokShl, TokShr, TokAmp, TokPipe, TokCaret:
			if lt != TypeLong || rt != TypeLong {
				return TypeNone, errf(e.Pos, "operator %v requires long operands, got %v, %v", e.Op, lt, rt)
			}
			e.Type = TypeLong
		case TokEq, TokNe, TokLt, TokLe, TokGt, TokGe:
			comparable := (lt == rt) ||
				(lt == TypeLong && rt == TypeDouble) || (lt == TypeDouble && rt == TypeLong)
			if !comparable {
				return TypeNone, errf(e.Pos, "cannot compare %v with %v", lt, rt)
			}
			if lt == TypeFnptr && e.Op != TokEq && e.Op != TokNe {
				return TypeNone, errf(e.Pos, "fnptr supports only == and !=")
			}
			e.Type = TypeLong
		default:
			return TypeNone, errf(e.Pos, "bad binary operator %v", e.Op)
		}
		return e.Type, nil
	case ExprCond:
		if err := a.checkCond(e.X, sc); err != nil {
			return TypeNone, err
		}
		if err := a.checkCond(e.Y, sc); err != nil {
			return TypeNone, err
		}
		e.Type = TypeLong
		return TypeLong, nil
	case ExprAssign:
		lt, err := a.checkExpr(e.X, sc)
		if err != nil {
			return TypeNone, err
		}
		if !isLvalue(e.X) {
			return TypeNone, errf(e.X.Pos, "not an lvalue")
		}
		rt, err := a.checkExpr(e.Y, sc)
		if err != nil {
			return TypeNone, err
		}
		if err := checkAssignable(lt, rt, e.Pos); err != nil {
			return TypeNone, err
		}
		e.Type = lt
		return lt, nil
	case ExprCall:
		// Prefer a variable of type fnptr in scope (indirect call); fall
		// back to a function name (direct call).
		if v := a.lookupVar(e.Name, sc); v != nil && v.Type == TypeFnptr {
			e.X.Var = v
			e.X.Type = TypeFnptr
			e.Func = nil
			for _, arg := range e.Args {
				t, err := a.checkExpr(arg, sc)
				if err != nil {
					return TypeNone, err
				}
				if t.IsArray() {
					arg.Type = t.Decay()
				}
			}
			e.Type = TypeLong // indirect calls return long by convention
			return e.Type, nil
		}
		fn := a.lookupFunc(e.Name)
		if fn == nil {
			return TypeNone, errf(e.Pos, "call to undefined function %s", e.Name)
		}
		if len(e.Args) != len(fn.Params) {
			return TypeNone, errf(e.Pos, "%s expects %d arguments, got %d", fn.Name, len(fn.Params), len(e.Args))
		}
		for i, arg := range e.Args {
			t, err := a.checkExpr(arg, sc)
			if err != nil {
				return TypeNone, err
			}
			if err := checkAssignable(fn.Params[i].Type, t, arg.Pos); err != nil {
				return TypeNone, fmt.Errorf("argument %d of %s: %w", i+1, fn.Name, err)
			}
		}
		e.Func = fn
		e.Type = fn.Ret
		return fn.Ret, nil
	}
	return TypeNone, errf(e.Pos, "unhandled expression kind %d", e.Kind)
}

func isLvalue(e *Expr) bool {
	switch e.Kind {
	case ExprVar:
		return e.Var != nil && !e.Type.IsArray()
	case ExprDeref, ExprIndex:
		return true
	}
	return false
}
