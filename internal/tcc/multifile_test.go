package tcc

import "testing"

// TestStaticResolvesAfterCrossFilePrototype: when a function is prototyped
// in one file and defined in another (compile-all mode), its body must be
// analyzed in the defining file's scope so that file statics resolve.
// Regression test: the definition used to be checked in the prototype's
// file, where the static was invisible.
func TestStaticResolvesAfterCrossFilePrototype(t *testing.T) {
	mainSrc := Source{Name: "m_main", Text: `
long helper(long x);

long main() {
	return helper(4);
}
`}
	helpSrc := Source{Name: "m_help", Text: `
static long scale = 3;

long helper(long x) {
	return x * scale;
}
`}
	for _, opts := range []Options{DefaultOptions(), InterprocOptions()} {
		if _, err := Compile("m_all", []Source{mainSrc, helpSrc}, opts); err != nil {
			t.Fatalf("multi-file unit with cross-file prototype: %v", err)
		}
	}
}
