package tcc

import "repro/internal/axp"

// spillRec records one temp saved across a call.
type spillRec struct {
	isF  bool
	r    axp.Reg
	fr   axp.FReg
	slot int
}

// spillLive saves every live owned temporary to its spill slot.
func (fg *funcgen) spillLive() []spillRec {
	var recs []spillRec
	for _, r := range fg.sortedLiveInt() {
		slot, ok := fg.spillInt[r]
		if !ok {
			slot = fg.newSlot()
			fg.spillInt[r] = slot
		}
		fg.emitFrame(axp.STQ, r, slot, 0)
		recs = append(recs, spillRec{r: r, slot: slot})
	}
	for _, f := range fg.sortedLiveFP() {
		slot, ok := fg.spillFP[f]
		if !ok {
			slot = fg.newSlot()
			fg.spillFP[f] = slot
		}
		fg.emitFrameF(axp.STT, f, slot, 0)
		recs = append(recs, spillRec{isF: true, fr: f, slot: slot})
	}
	return recs
}

// reload restores spilled temporaries after a call.
func (fg *funcgen) reload(recs []spillRec) {
	for _, rec := range recs {
		if rec.isF {
			fg.emitFrameF(axp.LDT, rec.fr, rec.slot, 0)
		} else {
			fg.emitFrame(axp.LDQ, rec.r, rec.slot, 0)
		}
	}
}

// moveArgs places evaluated argument values into the argument registers
// (integer class to r16+i, FP class to f16+i) and frees the temps.
func (fg *funcgen) moveArgs(args []val) {
	for i, v := range args {
		if v.isF {
			fg.emit(axp.FMov(v.fr, axp.FReg(16+i)))
		} else {
			fg.emit(axp.Mov(v.r, axp.Reg(16+i)))
		}
	}
	for _, v := range args {
		fg.free(v)
	}
}

// emitGPReset emits the post-call ldah/lda pair that re-establishes GP from
// the return address.
func (fg *funcgen) emitGPReset(callID int) {
	pair := fg.nextPair
	fg.nextPair++
	hi := fg.emit(axp.MemInst(axp.LDAH, axp.GP, axp.RA, 0))
	hi.GPD = &GPRef{PairID: pair, High: true, Anchor: AnchorAfterCall, CallID: callID}
	lo := fg.emit(axp.MemInst(axp.LDA, axp.GP, axp.GP, 0))
	lo.GPD = &GPRef{PairID: pair, Anchor: AnchorAfterCall, CallID: callID}
}

// callResult copies the return-value register into a fresh owned temp.
func (fg *funcgen) callResult(retF bool, pos Pos) (val, error) {
	if retF {
		t, err := fg.ownedFP(pos)
		if err != nil {
			return val{}, err
		}
		fg.emit(axp.FMov(axp.FV0, t.fr))
		return t, nil
	}
	t, err := fg.ownedInt(pos)
	if err != nil {
		return val{}, err
	}
	fg.emit(axp.Mov(axp.V0, t.r))
	return t, nil
}

// emitCallSym emits a direct call to the named procedure. When localEntry is
// true (file-static callee, same unit) it uses a bsr to the local entry
// point, skipping the PV load and the GP reset — the compile-time
// optimization the paper's compilers performed for unexported procedures.
func (fg *funcgen) emitCallSym(sym string, args []val, retF, localEntry bool, pos Pos) (val, error) {
	fg.isLeaf = false
	fg.moveArgs(args)
	recs := fg.spillLive()
	fg.nextCall++
	callID := fg.nextCall
	if localEntry {
		mi := fg.emit(axp.BranchInst(axp.BSR, axp.RA, 0))
		mi.CallSym = sym
		mi.CallLocalEntry = true
		mi.CallID = callID
	} else {
		litID := fg.emitLitLoad(sym, 0, axp.PV)
		jsr := fg.emit(axp.JumpInst(axp.JSR, axp.RA, axp.PV))
		jsr.Use = &UseRef{LitID: litID, JSR: true}
		jsr.CallID = callID
		fg.emitGPReset(callID)
	}
	fg.reload(recs)
	return fg.callResult(retF, pos)
}

// emitCallIndirect emits a call through a procedure variable: the callee
// address is a runtime value moved into PV, so there is no LITUSE_JSR and
// link-time analysis cannot identify the destination.
func (fg *funcgen) emitCallIndirect(callee val, args []val, pos Pos) (val, error) {
	fg.isLeaf = false
	fg.moveArgs(args)
	fg.emit(axp.Mov(callee.r, axp.PV))
	fg.free(callee)
	recs := fg.spillLive()
	fg.nextCall++
	callID := fg.nextCall
	jsr := fg.emit(axp.JumpInst(axp.JSR, axp.RA, axp.PV))
	jsr.CallID = callID
	fg.emitGPReset(callID)
	fg.reload(recs)
	return fg.callResult(false, pos)
}

// genCall compiles a call expression: builtin, direct, or through an fnptr.
func (fg *funcgen) genCall(e *Expr) (val, error) {
	if e.Func != nil && e.Func.Builtin {
		return fg.genBuiltin(e)
	}

	// Evaluate arguments into temps first; nested calls spill around them.
	args := make([]val, 0, len(e.Args))
	for i, a := range e.Args {
		v, err := fg.genExpr(a)
		if err != nil {
			return val{}, err
		}
		wantF := v.isF
		if e.Func != nil {
			wantF = e.Func.Params[i].Type.IsFloat()
		}
		v, err = fg.coerce(v, wantF, a.Pos)
		if err != nil {
			return val{}, err
		}
		args = append(args, v)
	}

	if e.Func == nil {
		// Indirect call through the fnptr variable resolved by sema.
		callee, err := fg.genExpr(e.X)
		if err != nil {
			return val{}, err
		}
		return fg.emitCallIndirect(callee, args, e.Pos)
	}

	sym := fg.cg.symForFunc(e.Func)
	localEntry := e.Func.Static && e.Func.Body != nil && fg.cg.opts.OptimizeStaticCalls
	return fg.emitCallSym(sym, args, e.Func.Ret.IsFloat(), localEntry, e.Pos)
}

// genBuiltin inlines the CALL_PAL intrinsics.
func (fg *funcgen) genBuiltin(e *Expr) (val, error) {
	switch e.Func.Name {
	case "__cycles":
		fg.emit(axp.Pal(axp.PalCycles))
		t, err := fg.ownedInt(e.Pos)
		if err != nil {
			return val{}, err
		}
		fg.emit(axp.Mov(axp.V0, t.r))
		return t, nil
	case "__output", "__outputc", "__halt":
		v, err := fg.genExpr(e.Args[0])
		if err != nil {
			return val{}, err
		}
		v, err = fg.coerce(v, false, e.Pos)
		if err != nil {
			return val{}, err
		}
		fg.emit(axp.Mov(v.r, axp.A0))
		fg.free(v)
		switch e.Func.Name {
		case "__output":
			fg.emit(axp.Pal(axp.PalOutput))
		case "__outputc":
			fg.emit(axp.Pal(axp.PalOutputChar))
		case "__halt":
			fg.emit(axp.Pal(axp.PalHalt))
		}
		return val{r: axp.Zero}, nil
	}
	return val{}, errf(e.Pos, "unknown builtin %s", e.Func.Name)
}
