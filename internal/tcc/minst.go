package tcc

import (
	"fmt"

	"repro/internal/axp"
	"repro/internal/objfile"
)

// MInst is one machine instruction under construction, carrying the symbolic
// annotations that become relocations at emission time.
type MInst struct {
	In axp.Inst

	// Labels lists intra-procedure labels attached to this instruction.
	Labels []int
	// Target is the intra-procedure label a branch jumps to, or -1.
	Target int

	// Lit marks this instruction as an address load from the GAT.
	Lit *LitRef
	// Use links a memory access or jsr to the address load feeding it.
	Use *UseRef
	// GPD marks one half of a GP-establishing ldah/lda pair.
	GPD *GPRef
	// CallSym makes this bsr/br a direct call to another procedure,
	// relocated by the linker (RBrAddr).
	CallSym string
	// CallLocalEntry targets the procedure's local entry point (skipping its
	// GP-setup pair), used for compile-time-optimized static calls.
	CallLocalEntry bool
	// CallID tags a jsr/bsr call site so post-call GP resets can anchor to it.
	CallID int
	// GPR marks the instruction as a direct GP-relative data reference
	// (optimistic compilation): the linker patches the 16-bit displacement
	// to Sym+Addend-GP or refuses to link.
	GPR *GPRelRef
	// FrameSlot, when >= 0, marks the displacement as a frame-slot reference
	// resolved once the final frame layout is known.
	FrameSlot int
	// Pinned instructions must not be moved by the scheduler.
	Pinned bool
}

// GPRelRef is a direct GP-relative reference to a small datum.
type GPRelRef struct {
	Sym    string
	Addend int64
}

// LitRef identifies a GAT slot by its target symbol.
type LitRef struct {
	ID     int // literal id, referenced by UseRef
	Sym    string
	Addend int64
}

// UseRef links an instruction to the address load whose result it consumes.
type UseRef struct {
	LitID int
	JSR   bool // true for the jsr through PV, false for load/store bases
}

// GPAnchor says what the base register of a GP-setup pair holds.
type GPAnchor uint8

const (
	// AnchorEntry: the base register (PV) holds the procedure entry address.
	AnchorEntry GPAnchor = iota
	// AnchorAfterCall: the base register (RA) holds the address of the
	// instruction following the call identified by CallID.
	AnchorAfterCall
)

// GPRef marks the ldah (High) or lda (!High) of a GP-establishing pair.
type GPRef struct {
	PairID int
	High   bool
	Anchor GPAnchor
	CallID int // for AnchorAfterCall
}

func newMInst(in axp.Inst) *MInst {
	return &MInst{In: in, Target: -1, FrameSlot: -1}
}

// Frag is the code of one procedure under construction.
type Frag struct {
	Name  string
	Insts []*MInst
	// LocalEntry is true when the procedure exposes a local entry point at
	// entry+8 (its GP-setup pair is pinned at the top).
	LocalEntry bool
}

// String renders the fragment for debugging.
func (f *Frag) String() string {
	s := f.Name + ":\n"
	for i, mi := range f.Insts {
		for _, l := range mi.Labels {
			s += fmt.Sprintf(".L%d:\n", l)
		}
		s += fmt.Sprintf("  %3d: %v", i, mi.In)
		if mi.Target >= 0 {
			s += fmt.Sprintf(" -> .L%d", mi.Target)
		}
		if mi.Lit != nil {
			s += fmt.Sprintf(" [lit %s%+d #%d]", mi.Lit.Sym, mi.Lit.Addend, mi.Lit.ID)
		}
		if mi.Use != nil {
			s += fmt.Sprintf(" [use #%d]", mi.Use.LitID)
		}
		if mi.GPD != nil {
			s += fmt.Sprintf(" [gpdisp %d]", mi.GPD.PairID)
		}
		if mi.CallSym != "" {
			s += fmt.Sprintf(" [call %s]", mi.CallSym)
		}
		s += "\n"
	}
	return s
}

// moduleBuilder accumulates the sections, symbols, and relocations of one
// object module as procedures are emitted into it.
type moduleBuilder struct {
	obj      *objfile.Object
	litaKeys map[litaKey]int // (sym,addend) -> slot
	litaTgts []litaKey
	symIdx   map[string]int32
}

type litaKey struct {
	sym    string
	addend int64
}

func newModuleBuilder(name string) *moduleBuilder {
	return &moduleBuilder{
		obj:      objfile.New(name),
		litaKeys: make(map[litaKey]int),
		symIdx:   make(map[string]int32),
	}
}

// symbolIndex interns a symbol-table entry by name, creating an undefined
// entry if the name has not been defined yet.
func (mb *moduleBuilder) symbolIndex(name string) int32 {
	if i, ok := mb.symIdx[name]; ok {
		return i
	}
	i := mb.obj.AddSymbol(objfile.Symbol{Name: name, Kind: objfile.SymUndef, Section: objfile.SecNone})
	mb.symIdx[name] = i
	return i
}

// defineSymbol fills in (or creates) the definition for name.
func (mb *moduleBuilder) defineSymbol(sym objfile.Symbol) int32 {
	if i, ok := mb.symIdx[sym.Name]; ok {
		prev := &mb.obj.Symbols[i]
		if prev.Kind != objfile.SymUndef {
			panic(fmt.Sprintf("tcc: duplicate definition of %s in module %s", sym.Name, mb.obj.Name))
		}
		*prev = sym
		return i
	}
	i := mb.obj.AddSymbol(sym)
	mb.symIdx[sym.Name] = i
	return i
}

// litaSlot interns a GAT slot for sym+addend and returns its index.
func (mb *moduleBuilder) litaSlot(sym string, addend int64) int {
	k := litaKey{sym, addend}
	if s, ok := mb.litaKeys[k]; ok {
		return s
	}
	s := len(mb.litaTgts)
	mb.litaKeys[k] = s
	mb.litaTgts = append(mb.litaTgts, k)
	return s
}

// finishLita materializes the .lita section and its REFQUAD relocations.
func (mb *moduleBuilder) finishLita() {
	lita := &mb.obj.Sections[objfile.SecLita]
	lita.Data = make([]byte, 8*len(mb.litaTgts))
	lita.Size = uint64(len(lita.Data))
	for slot, k := range mb.litaTgts {
		mb.obj.Relocs = append(mb.obj.Relocs, objfile.Reloc{
			Kind:    objfile.RRefQuad,
			Section: objfile.SecLita,
			Offset:  uint64(slot * 8),
			Symbol:  mb.symbolIndex(k.sym),
			Addend:  k.addend,
		})
	}
}

// emitFrag appends the fragment to .text, producing the procedure symbol and
// all relocations. exported and usesGP describe the procedure.
func (mb *moduleBuilder) emitFrag(f *Frag, exported bool) error {
	text := &mb.obj.Sections[objfile.SecText]
	base := uint64(len(text.Data))

	// Map labels and literal ids to instruction indices.
	labelAt := make(map[int]int)
	litAt := make(map[int]int)
	callAt := make(map[int]int)
	for i, mi := range f.Insts {
		for _, l := range mi.Labels {
			if prev, dup := labelAt[l]; dup {
				return fmt.Errorf("tcc: %s: label %d attached at %d and %d", f.Name, l, prev, i)
			}
			labelAt[l] = i
		}
		if mi.Lit != nil {
			litAt[mi.Lit.ID] = i
		}
		if mi.CallID > 0 && (mi.In.Op == axp.JSR || mi.In.Op == axp.BSR) {
			callAt[mi.CallID] = i
		}
	}

	off := func(i int) uint64 { return base + uint64(i*4) }

	usesGP := false
	for i, mi := range f.Insts {
		in := mi.In
		// Resolve intra-procedure branch displacements.
		if mi.Target >= 0 {
			ti, ok := labelAt[mi.Target]
			if !ok {
				return fmt.Errorf("tcc: %s: undefined label %d", f.Name, mi.Target)
			}
			in.Disp = int32(ti - (i + 1))
		}
		w, err := axp.Encode(in)
		if err != nil {
			return fmt.Errorf("tcc: %s: instruction %d: %w", f.Name, i, err)
		}
		var wb [4]byte
		objfile.PutUint32(wb[:], 0, w)
		text.Data = append(text.Data, wb[:]...)

		switch {
		case mi.GPR != nil:
			mb.obj.Relocs = append(mb.obj.Relocs, objfile.Reloc{
				Kind:    objfile.RGPRel16,
				Section: objfile.SecText,
				Offset:  off(i),
				Symbol:  mb.symbolIndex(mi.GPR.Sym),
				Addend:  mi.GPR.Addend,
			})
			usesGP = true
		case mi.Lit != nil:
			slot := mb.litaSlot(mi.Lit.Sym, mi.Lit.Addend)
			mb.obj.Relocs = append(mb.obj.Relocs, objfile.Reloc{
				Kind:    objfile.RLiteral,
				Section: objfile.SecText,
				Offset:  off(i),
				Symbol:  mb.symbolIndex(mi.Lit.Sym),
				Addend:  mi.Lit.Addend,
				Extra:   uint64(slot),
			})
		case mi.Use != nil:
			li, ok := litAt[mi.Use.LitID]
			if !ok {
				return fmt.Errorf("tcc: %s: lituse at %d references missing literal %d", f.Name, i, mi.Use.LitID)
			}
			kind := objfile.RLituseBase
			if mi.Use.JSR {
				kind = objfile.RLituseJSR
			}
			mb.obj.Relocs = append(mb.obj.Relocs, objfile.Reloc{
				Kind:    kind,
				Section: objfile.SecText,
				Offset:  off(i),
				Symbol:  -1,
				Extra:   off(li),
			})
		case mi.GPD != nil && mi.GPD.High:
			usesGP = true
			// Find the paired lda.
			lo := -1
			for j, mj := range f.Insts {
				if mj.GPD != nil && !mj.GPD.High && mj.GPD.PairID == mi.GPD.PairID {
					lo = j
					break
				}
			}
			if lo < 0 {
				return fmt.Errorf("tcc: %s: unpaired gpdisp %d", f.Name, mi.GPD.PairID)
			}
			var anchor uint64
			switch mi.GPD.Anchor {
			case AnchorEntry:
				anchor = base
			case AnchorAfterCall:
				ci, ok := callAt[mi.GPD.CallID]
				if !ok {
					return fmt.Errorf("tcc: %s: gpdisp %d references missing call %d", f.Name, mi.GPD.PairID, mi.GPD.CallID)
				}
				anchor = off(ci) + 4
			}
			mb.obj.Relocs = append(mb.obj.Relocs, objfile.Reloc{
				Kind:    objfile.RGPDisp,
				Section: objfile.SecText,
				Offset:  off(i),
				Symbol:  -1,
				Addend:  int64(anchor),
				Extra:   off(lo),
			})
		case mi.CallSym != "":
			var addend int64
			if mi.CallLocalEntry {
				addend = 8
			}
			mb.obj.Relocs = append(mb.obj.Relocs, objfile.Reloc{
				Kind:    objfile.RBrAddr,
				Section: objfile.SecText,
				Offset:  off(i),
				Symbol:  mb.symbolIndex(mi.CallSym),
				Addend:  addend,
			})
		}
	}

	text.Size = uint64(len(text.Data))
	mb.defineSymbol(objfile.Symbol{
		Name:     f.Name,
		Kind:     objfile.SymProc,
		Section:  objfile.SecText,
		Value:    base,
		End:      text.Size,
		Exported: exported,
		UsesGP:   usesGP,
	})
	return nil
}

// addData appends bytes to a data section at 8-byte alignment and returns
// the offset.
func (mb *moduleBuilder) addData(sec objfile.SectionKind, data []byte) uint64 {
	s := &mb.obj.Sections[sec]
	for len(s.Data)%8 != 0 {
		s.Data = append(s.Data, 0)
	}
	off := uint64(len(s.Data))
	s.Data = append(s.Data, data...)
	s.Size = uint64(len(s.Data))
	return off
}

// addBss reserves size bytes in a bss section and returns the offset.
func (mb *moduleBuilder) addBss(sec objfile.SectionKind, size uint64) uint64 {
	s := &mb.obj.Sections[sec]
	s.Size = (s.Size + 7) &^ 7
	off := s.Size
	s.Size += size
	return off
}
