package tcc

import (
	"strings"
	"testing"

	"repro/internal/axp"
	"repro/internal/objfile"
)

func TestLexBasics(t *testing.T) {
	toks, err := LexAll("t.tc", `long f(long x) { return x + 0x10 * 2.5e1; } // c
/* block */ static extern`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{TokLong, TokIdent, TokLParen, TokLong, TokIdent, TokRParen,
		TokLBrace, TokReturn, TokIdent, TokPlus, TokInt, TokStar, TokFloat, TokSemi,
		TokRBrace, TokStatic, TokExtern, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %v, want %v", i, toks[i].Kind, k)
		}
	}
	if toks[10].Int != 0x10 {
		t.Errorf("hex literal = %d, want 16", toks[10].Int)
	}
	if toks[12].Flt != 25.0 {
		t.Errorf("float literal = %v, want 25", toks[12].Flt)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"@", "/* unterminated", "9999999999999999999999999"} {
		if _, err := LexAll("t.tc", src); err == nil {
			t.Errorf("LexAll(%q): expected error", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"long;",
		"long f(long) {}",
		"long f(long a, long b, long c, long d, long e, long g, long h) { return 0; }",
		"long x[0];",
		"long f() { return 1 }",
		"long f() { if (1) }",
		"double d = {1.0};",
		"extern long x = 5;",
		"extern long f() { return 0; }",
		"long f() { break; }",
		"long f() { return g(); }",
		"long f() { long x; long x; return 0; }",
		"long x; long x;",
		"long f() { return 0; } long f() { return 1; }",
		"long f() { return y; }",
		"long f() { 1 = 2; return 0; }",
		"long f() { return 1.5 & 2; }",
		"double d; long f() { return d[0]; }",
		"long v; long f() { return *v; }",
		"long f(double x) { return 0; } long g() { return f(&g); }",
	}
	for _, src := range cases {
		if _, err := Compile("u", []Source{{Name: "t.tc", Text: src}}, DefaultOptions()); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

const helloSrc = `
long g1 = 5;
long arr[10];
static long s1 = 7;
double pi = 3.14159;

long helper(long a, long b) {
	return a * b + g1;
}

static long shelper(long x) {
	return x - 1;
}

long main() {
	long i;
	long sum = 0;
	for (i = 0; i < 10; i = i + 1) {
		arr[i] = helper(i, i + 1);
		sum = sum + arr[i];
	}
	if (sum > 100 && g1 == 5) {
		sum = shelper(sum);
	}
	while (sum % 7 != 0) {
		sum = sum - 1;
	}
	__output(sum);
	return sum;
}
`

func compileOne(t *testing.T, src string, opts Options) *objfile.Object {
	t.Helper()
	obj, err := Compile("u", []Source{{Name: "t.tc", Text: src}}, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := obj.Validate(); err != nil {
		t.Fatalf("invalid object: %v", err)
	}
	return obj
}

func TestCompileHello(t *testing.T) {
	obj := compileOne(t, helloSrc, DefaultOptions())
	// Must define main, helper, and the mangled static.
	for _, name := range []string{"main", "helper", "t$shelper", "g1", "pi", "t$s1"} {
		if obj.FindSymbol(name) < 0 {
			t.Errorf("symbol %s not defined", name)
		}
	}
	// arr is uninitialized and exported: a common.
	i := obj.FindSymbol("arr")
	if i < 0 || obj.Symbols[i].Kind != objfile.SymCommon || obj.Symbols[i].Size != 80 {
		t.Errorf("arr should be an 80-byte common, got %+v", obj.Symbols[i])
	}
	// __divq is referenced (the % operator) but undefined here.
	d := obj.FindSymbol("__remq")
	if d < 0 || obj.Symbols[d].Kind != objfile.SymUndef {
		t.Errorf("__remq should be an undefined reference")
	}
	// Relocation sanity: every LITERAL slot index within lita, LITUSE links
	// to a LITERAL instruction.
	litAt := map[uint64]bool{}
	slots := obj.LitaSlots()
	for _, r := range obj.Relocs {
		if r.Kind == objfile.RLiteral {
			if int(r.Extra) >= slots {
				t.Errorf("LITERAL slot %d out of range (%d slots)", r.Extra, slots)
			}
			litAt[r.Offset] = true
		}
	}
	for _, r := range obj.Relocs {
		if (r.Kind == objfile.RLituseBase || r.Kind == objfile.RLituseJSR) && !litAt[r.Extra] {
			t.Errorf("LITUSE at %#x references %#x which is not a LITERAL", r.Offset, r.Extra)
		}
	}
	// GP-disp pairs point at ldah/lda.
	insts, err := axp.DecodeAll(obj.Sections[objfile.SecText].Data)
	if err != nil {
		t.Fatalf("generated text does not decode: %v", err)
	}
	for _, r := range obj.Relocs {
		if r.Kind != objfile.RGPDisp {
			continue
		}
		if insts[r.Offset/4].Op != axp.LDAH {
			t.Errorf("GPDISP high at %#x is %v, want ldah", r.Offset, insts[r.Offset/4].Op)
		}
		if insts[r.Extra/4].Op != axp.LDA {
			t.Errorf("GPDISP low at %#x is %v, want lda", r.Extra, insts[r.Extra/4].Op)
		}
	}
}

func TestStaticCallUsesBSR(t *testing.T) {
	obj := compileOne(t, helloSrc, DefaultOptions())
	foundLocalCall := false
	for _, r := range obj.Relocs {
		if r.Kind == objfile.RBrAddr && r.Addend == 8 {
			foundLocalCall = true
			sym := obj.Symbols[r.Symbol]
			if sym.Name != "t$shelper" {
				t.Errorf("local-entry call to %s, want t$shelper", sym.Name)
			}
		}
	}
	if !foundLocalCall {
		t.Error("expected a compile-time-optimized bsr to the static helper")
	}

	// With the optimization off, no BRADDR relocations at all.
	opts := DefaultOptions()
	opts.OptimizeStaticCalls = false
	obj2 := compileOne(t, helloSrc, opts)
	for _, r := range obj2.Relocs {
		if r.Kind == objfile.RBrAddr {
			t.Error("unexpected BRADDR with static-call optimization off")
		}
	}
}

func TestSchedulerDisplacesPrologue(t *testing.T) {
	// With scheduling on, some non-local-entry procedure should not have
	// its GP pair at offsets 0 and 4 (the paper's phenomenon).
	obj := compileOne(t, helloSrc, DefaultOptions())
	split := 0
	checked := 0
	for _, sym := range obj.Symbols {
		if sym.Kind != objfile.SymProc || sym.Name == "t$shelper" {
			continue
		}
		checked++
		var hiOff, loOff uint64 = 1 << 60, 1 << 60
		for _, r := range obj.Relocs {
			if r.Kind == objfile.RGPDisp && uint64(r.Addend) == sym.Value {
				if r.Offset < hiOff {
					hiOff, loOff = r.Offset, r.Extra
				}
			}
		}
		if hiOff != sym.Value || loOff != sym.Value+4 {
			split++
		}
	}
	if checked == 0 {
		t.Fatal("no procedures checked")
	}
	if split == 0 {
		t.Error("expected the scheduler to displace at least one prologue GP pair")
	}

	// Without scheduling, every prologue pair sits at entry.
	opts := DefaultOptions()
	opts.Schedule = false
	obj2 := compileOne(t, helloSrc, opts)
	for _, sym := range obj2.Symbols {
		if sym.Kind != objfile.SymProc {
			continue
		}
		found := false
		for _, r := range obj2.Relocs {
			if r.Kind == objfile.RGPDisp && r.Offset == sym.Value && r.Extra == sym.Value+4 {
				found = true
			}
		}
		if !found {
			t.Errorf("unscheduled %s: GP pair not at entry", sym.Name)
		}
	}
}

func TestLocalEntryPinned(t *testing.T) {
	// Static procedures keep their GP pair at entry even when scheduled,
	// because callers bsr to entry+8.
	obj := compileOne(t, helloSrc, DefaultOptions())
	i := obj.FindSymbol("t$shelper")
	if i < 0 {
		t.Fatal("no static helper")
	}
	sym := obj.Symbols[i]
	found := false
	for _, r := range obj.Relocs {
		if r.Kind == objfile.RGPDisp && r.Offset == sym.Value && r.Extra == sym.Value+4 {
			found = true
		}
	}
	if !found {
		t.Error("static helper's GP pair must be pinned at entry")
	}
}

func TestCompileFnptrIndirectCall(t *testing.T) {
	src := `
long add1(long x) { return x + 1; }
long twice(long x) { return x * 2; }
fnptr table;
long main() {
	table = add1;
	long a = table(4);
	table = twice;
	return a + table(4);
}
`
	obj := compileOne(t, src, DefaultOptions())
	// Function addresses appear in the GAT (taken as values).
	haveAdd1 := false
	for _, r := range obj.Relocs {
		if r.Kind == objfile.RRefQuad && r.Section == objfile.SecLita {
			if obj.Symbols[r.Symbol].Name == "add1" {
				haveAdd1 = true
			}
		}
	}
	if !haveAdd1 {
		t.Error("add1's address should be in the GAT")
	}
	// The indirect call's jsr must NOT carry a LITUSE_JSR.
	insts, err := axp.DecodeAll(obj.Sections[objfile.SecText].Data)
	if err != nil {
		t.Fatal(err)
	}
	jsrWithUse := map[uint64]bool{}
	for _, r := range obj.Relocs {
		if r.Kind == objfile.RLituseJSR {
			jsrWithUse[r.Offset] = true
		}
	}
	indirect := 0
	for i, in := range insts {
		if in.Op == axp.JSR && !jsrWithUse[uint64(i*4)] {
			indirect++
		}
	}
	if indirect < 2 {
		t.Errorf("expected >=2 indirect jsr sites, got %d", indirect)
	}
}

func TestCompileDoubleOps(t *testing.T) {
	src := `
double acc = 0.0;
double scale(double x, long n) {
	double r = x;
	long i;
	for (i = 0; i < n; i = i + 1) {
		r = r * 1.5 + 0.25 + i;
	}
	if (r > 100.0) { r = r / 2.0; }
	return r;
}
long main() {
	acc = scale(2.0, 3);
	return acc > 1.0;
}
`
	obj := compileOne(t, src, DefaultOptions())
	insts, err := axp.DecodeAll(obj.Sections[objfile.SecText].Data)
	if err != nil {
		t.Fatal(err)
	}
	var haveMulT, haveDivT, haveCvtQT, haveCmpT bool
	for _, in := range insts {
		switch in.Op {
		case axp.MULT:
			haveMulT = true
		case axp.DIVT:
			haveDivT = true
		case axp.CVTQT:
			haveCvtQT = true
		case axp.CMPTLT, axp.CMPTLE, axp.CMPTEQ:
			haveCmpT = true
		}
	}
	if !haveMulT || !haveDivT || !haveCvtQT || !haveCmpT {
		t.Errorf("missing FP ops: mult=%v divt=%v cvtqt=%v cmpt=%v",
			haveMulT, haveDivT, haveCvtQT, haveCmpT)
	}
}

func TestInlineUnit(t *testing.T) {
	src := `
long sq(long x) { return x * x; }
long uses(long a) { return sq(a) + sq(3); }
`
	f, err := ParseFile("t.tc", src)
	if err != nil {
		t.Fatal(err)
	}
	u, err := Analyze("u", []*File{f})
	if err != nil {
		t.Fatal(err)
	}
	// sq(a): a used twice in x*x -> not inlined. sq(3) same; param count
	// rule blocks both.
	if n := InlineUnit(u); n != 0 {
		t.Errorf("inlined %d, want 0 (param used twice)", n)
	}

	src2 := `
long half(long x) { return x >> 1; }
long g;
long uses(long a) { return half(a) + half(g); }
`
	f2, err := ParseFile("t.tc", src2)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := Analyze("u", []*File{f2})
	if err != nil {
		t.Fatal(err)
	}
	if n := InlineUnit(u2); n != 2 {
		t.Errorf("inlined %d, want 2", n)
	}
	// Result must still compile.
	if _, err := Generate(u2, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
}

func TestCompileAllModesProduceDifferentCode(t *testing.T) {
	obj1 := compileOne(t, helloSrc, DefaultOptions())
	obj2 := compileOne(t, helloSrc, InterprocOptions())
	if obj1.Sections[objfile.SecText].Size == 0 || obj2.Sections[objfile.SecText].Size == 0 {
		t.Fatal("empty text")
	}
}

func TestGeneratedCodeDecodes(t *testing.T) {
	for _, opts := range []Options{DefaultOptions(), InterprocOptions(), {SmallDataBytes: 8}} {
		obj := compileOne(t, helloSrc, opts)
		if _, err := axp.DecodeAll(obj.Sections[objfile.SecText].Data); err != nil {
			t.Errorf("opts %+v: %v", opts, err)
		}
	}
}

func TestMangle(t *testing.T) {
	f := &File{Name: "dir/sub/mod1.tc"}
	if got := mangle(f, "x"); got != "mod1$x" {
		t.Errorf("mangle = %q, want mod1$x", got)
	}
}

func TestCompileExternRefs(t *testing.T) {
	a := `extern long shared; long get() { return shared; }`
	b := `long shared = 42;`
	// Separate compilation: module a has an undef for shared.
	objA := compileOne(t, a, DefaultOptions())
	i := objA.FindSymbol("shared")
	if i < 0 || objA.Symbols[i].Kind != objfile.SymUndef {
		t.Errorf("shared should be undefined in module a")
	}
	// Compiled together, it resolves.
	obj, err := Compile("u", []Source{{Name: "a.tc", Text: a}, {Name: "b.tc", Text: b}}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	j := obj.FindSymbol("shared")
	if j < 0 || obj.Symbols[j].Kind != objfile.SymData {
		t.Errorf("shared should be defined when compiled together, got %v", obj.Symbols[j].Kind)
	}
}

func TestForwardDeclThenDefine(t *testing.T) {
	src := `
long g(long x);
long f(long x) { return g(x) + 1; }
long g(long x) { return x * 2; }
`
	obj := compileOne(t, src, DefaultOptions())
	i := obj.FindSymbol("g")
	if i < 0 || obj.Symbols[i].Kind != objfile.SymProc {
		t.Fatalf("g should be a defined procedure")
	}
}

func TestFragStringSmoke(t *testing.T) {
	f, err := ParseFile("t.tc", "long f(long x){ return x+1; }")
	if err != nil {
		t.Fatal(err)
	}
	u, err := Analyze("u", []*File{f})
	if err != nil {
		t.Fatal(err)
	}
	fg := newFuncgen(&codegen{unit: u, opts: DefaultOptions(),
		varSym: map[*VarDecl]string{}, funcSym: map[*FuncDecl]string{u.FuncOrder[0]: "f"},
		constPool: map[uint64]string{}, mb: newModuleBuilder("u")}, u.FuncOrder[0])
	frag, err := fg.generate()
	if err != nil {
		t.Fatal(err)
	}
	s := frag.String()
	if !strings.Contains(s, "f:") || !strings.Contains(s, "ret") {
		t.Errorf("frag dump missing pieces:\n%s", s)
	}
}

func TestConstantFolding(t *testing.T) {
	// 6*7 must fold to a single lda; no mulq in main.
	obj := compileOne(t, `long main() { return 6 * 7 + (1 << 10) - (20 / 3); }`, DefaultOptions())
	insts, err := axp.DecodeAll(obj.Sections[objfile.SecText].Data)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range insts {
		if in.Op == axp.MULQ || in.Op == axp.SLL {
			t.Errorf("constant expression not folded: %v", in)
		}
		if in.Op == axp.JSR {
			t.Errorf("constant division not folded: call emitted")
		}
	}
}

func TestFoldIntSemantics(t *testing.T) {
	mk := func(op TokKind, a, b int64) *Expr {
		return &Expr{Kind: ExprBinary, Op: op, Type: TypeLong,
			X: &Expr{Kind: ExprIntLit, Int: a, Type: TypeLong},
			Y: &Expr{Kind: ExprIntLit, Int: b, Type: TypeLong}}
	}
	cases := []struct {
		op   TokKind
		a, b int64
		want int64
	}{
		{TokPlus, 1 << 62, 1 << 62, -9223372036854775808}, // wraps
		{TokStar, -7, 6, -42},
		{TokSlash, -7, 2, -3}, // truncates toward zero
		{TokPercent, -7, 2, -1},
		{TokShl, 1, 70, 64},  // shift count masked to 6 bits
		{TokShr, -64, 3, -8}, // arithmetic
		{TokLt, -1, 0, 1},
		{TokNe, 5, 5, 0},
	}
	for _, c := range cases {
		got, ok := foldInt(mk(c.op, c.a, c.b))
		if !ok || got != c.want {
			t.Errorf("fold %v(%d,%d) = %d,%v want %d", c.op, c.a, c.b, got, ok, c.want)
		}
	}
	if _, ok := foldInt(mk(TokSlash, 1, 0)); ok {
		t.Error("division by zero must not fold")
	}
	if _, ok := foldInt(mk(TokPercent, 1, 0)); ok {
		t.Error("mod by zero must not fold")
	}
}

func TestExpressionTooComplex(t *testing.T) {
	// A balanced expression deep enough to exhaust the 12 integer temps
	// must fail with a clean diagnostic, not a panic. Global reads as
	// leaves prevent constant folding, and no calls means no spilling.
	expr := "gv"
	for i := 0; i < 12; i++ { // each level holds one more temp live
		expr = "(" + expr + " + " + expr + ")"
	}
	src := "long gv = 1;\nlong main() { return " + expr + "; }"
	_, err := Compile("u", []Source{{Name: "t", Text: src}}, DefaultOptions())
	if err == nil {
		t.Fatal("expected out-of-temporaries diagnostic")
	}
	if !strings.Contains(err.Error(), "too complex") {
		t.Errorf("unexpected diagnostic: %v", err)
	}

	// A right-leaning chain of the same size stays shallow and compiles.
	chain := "gv"
	for i := 0; i < 40; i++ {
		chain = "gv + (" + chain + ")"
	}
	src2 := "long gv = 1;\nlong main() { return " + chain + "; }"
	if _, err := Compile("u", []Source{{Name: "t", Text: src2}}, DefaultOptions()); err != nil {
		t.Errorf("chain should compile: %v", err)
	}
}

func TestSemaCornerCases(t *testing.T) {
	good := []string{
		// fnptr passed through, compared, reassigned.
		"long f(long x) { return x; } long g() { fnptr p = f; fnptr q; q = p; return (p == q) + q(3); }",
		// double condition contexts.
		"double d = 1.0; long f() { if (d) { return 1; } while (d > 2.0) { d = d - 1.0; } return 0; }",
		// nested arrays and pointers.
		"long a[8]; long f(long* p) { return p[1]; } long g() { a[1] = 9; return f(a) + f(&a[0]); }",
		// unary chains.
		"long f(long x) { return -(-x) + ~(~x) + !!x; }",
		// implicit conversions both ways in returns and args.
		"double h(double x) { return x; } long f(long n) { double d = h(n); long m = d; return m; }",
		// for loop with empty sections.
		"long f() { long i = 0; for (;;) { i = i + 1; if (i > 3) { break; } } return i; }",
		// shadowing in nested blocks.
		"long f() { long x = 1; { long y = x + 1; { long z = y + 1; x = z; } } return x; }",
	}
	for _, src := range good {
		if _, err := Compile("u", []Source{{Name: "t", Text: src}}, DefaultOptions()); err != nil {
			t.Errorf("should compile: %q: %v", src, err)
		}
	}
	bad := []string{
		// fnptr arithmetic and bad comparisons.
		"long f(long x) { return x; } long g() { fnptr p = f; return p + 1; }",
		"long f(long x) { return x; } long g() { fnptr p = f; return p < p; }",
		// address of fnptr var.
		"long f(long x) { return x; } long g() { fnptr p = f; fnptr* q = &p; return 0; }",
		// calling a long variable.
		"long v; long g() { return v(1); }",
		// array used as scalar condition.
		"long a[4]; long g() { if (a) { return 1; } return 0; }",
		// wrong arity.
		"long f(long x, long y) { return x + y; } long g() { return f(1); }",
		// assigning array.
		"long a[4]; long b[4]; long g() { a = b; return 0; }",
		// builtin as value.
		"long g() { fnptr p = __output; return 0; }",
		// return type mismatch through pointers.
		"double d; long g() { long* p = &d; return *p; }",
	}
	for _, src := range bad {
		if _, err := Compile("u", []Source{{Name: "t", Text: src}}, DefaultOptions()); err == nil {
			t.Errorf("should NOT compile: %q", src)
		}
	}
}
