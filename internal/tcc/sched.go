package tcc

import "repro/internal/axp"

// peepholeFrag removes branches that target the immediately following
// instruction (a return at the end of a function jumps to the epilogue it
// falls into anyway).
func peepholeFrag(f *Frag) {
	out := f.Insts[:0]
	for i, mi := range f.Insts {
		if mi.In.Op == axp.BR && mi.Target >= 0 && len(mi.Labels) == 0 && i+1 < len(f.Insts) {
			next := f.Insts[i+1]
			skip := false
			for _, l := range next.Labels {
				if l == mi.Target {
					skip = true
				}
			}
			if skip {
				continue
			}
		}
		out = append(out, mi)
	}
	f.Insts = out
}

// isBlockEnd reports whether the instruction terminates a scheduling block.
func isBlockEnd(in axp.Inst) bool {
	return in.Op.IsBranch() || in.Op.IsJump() || in.Op == axp.CALLPAL
}

// scheduleFrag reorders instructions within basic blocks to hide latencies,
// in the manner of the compile-time pipeline scheduler of the DEC compilers.
// Pinned instructions (the prologue GP pair of local-entry procedures) act
// as immovable boundaries. Labels stay attached to block entry.
func scheduleFrag(f *Frag) {
	insts := f.Insts
	out := make([]*MInst, 0, len(insts))
	start := 0
	flush := func(end int) {
		if end > start {
			seg := insts[start:end]
			labels := seg[0].Labels
			seg[0].Labels = nil
			raw := make([]axp.Inst, len(seg))
			for i, mi := range seg {
				raw[i] = mi.In
			}
			order := axp.ScheduleOrder(raw)
			scheduled := make([]*MInst, len(seg))
			for pos, idx := range order {
				scheduled[pos] = seg[idx]
			}
			scheduled[0].Labels = append(labels, scheduled[0].Labels...)
			out = append(out, scheduled...)
		}
		start = end
	}
	for i, mi := range insts {
		if len(mi.Labels) > 0 {
			flush(i)
		}
		if mi.Pinned || isBlockEnd(mi.In) {
			flush(i)
			out = append(out, mi)
			start = i + 1
		}
	}
	flush(len(insts))
	f.Insts = out
}
