// Package tcc implements the compiler substrate for the OM reproduction: a
// compiler for "Tiny C", a small C-like language, targeting the Alpha AXP
// subset in internal/axp and emitting relocatable objects in the
// internal/objfile format.
//
// The generated code follows the conservative 64-bit code model the paper
// describes: every global variable and procedure is reached through an
// address load from the module's global address table (.lita) via GP, and
// procedure calling conventions re-establish GP on entry and after every
// call. A compile-time basic-block scheduler (like the one in the DEC
// compilers) reorders instructions for the dual-issue pipeline — and in
// doing so routinely displaces the prologue GP-setup pair, which is exactly
// the obstacle OM-simple trips over and OM-full repairs.
package tcc

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind uint8

const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokFloat

	// Keywords.
	TokLong
	TokDouble
	TokFnptr
	TokStatic
	TokExtern
	TokIf
	TokElse
	TokWhile
	TokFor
	TokReturn
	TokBreak
	TokContinue

	// Punctuation and operators.
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokComma
	TokSemi
	TokAssign
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokAmp
	TokPipe
	TokCaret
	TokTilde
	TokBang
	TokShl
	TokShr
	TokEq
	TokNe
	TokLt
	TokLe
	TokGt
	TokGe
	TokAndAnd
	TokOrOr
)

var tokNames = map[TokKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokInt: "integer", TokFloat: "float",
	TokLong: "long", TokDouble: "double", TokFnptr: "fnptr", TokStatic: "static", TokExtern: "extern",
	TokIf: "if", TokElse: "else", TokWhile: "while", TokFor: "for",
	TokReturn: "return", TokBreak: "break", TokContinue: "continue",
	TokLParen: "(", TokRParen: ")", TokLBrace: "{", TokRBrace: "}",
	TokLBracket: "[", TokRBracket: "]", TokComma: ",", TokSemi: ";",
	TokAssign: "=", TokPlus: "+", TokMinus: "-", TokStar: "*", TokSlash: "/",
	TokPercent: "%", TokAmp: "&", TokPipe: "|", TokCaret: "^", TokTilde: "~",
	TokBang: "!", TokShl: "<<", TokShr: ">>", TokEq: "==", TokNe: "!=",
	TokLt: "<", TokLe: "<=", TokGt: ">", TokGe: ">=", TokAndAnd: "&&", TokOrOr: "||",
}

// String returns a human-readable token name.
func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("tok(%d)", uint8(k))
}

var keywords = map[string]TokKind{
	"long": TokLong, "double": TokDouble, "fnptr": TokFnptr, "static": TokStatic, "extern": TokExtern,
	"if": TokIf, "else": TokElse, "while": TokWhile, "for": TokFor,
	"return": TokReturn, "break": TokBreak, "continue": TokContinue,
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string  // identifier spelling
	Int  int64   // TokInt value
	Flt  float64 // TokFloat value
	Pos  Pos
}

// Pos is a source position.
type Pos struct {
	File string
	Line int
	Col  int
}

// String renders the position as file:line:col.
func (p Pos) String() string { return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col) }

// Error is a compile error carrying a source position.
type Error struct {
	Pos Pos
	Msg string
}

// Error renders the diagnostic with its source position.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
