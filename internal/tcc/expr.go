package tcc

import (
	"math"

	"repro/internal/axp"
)

// lvKind classifies assignable locations.
type lvKind uint8

const (
	lvIntReg lvKind = iota // local in a callee-saved integer register
	lvFPReg                // local in a callee-saved FP register
	lvFrame                // stack-frame slot
	lvMem                  // memory through a base-register temp
	lvGPRel                // direct GP-relative datum (optimistic compilation)
)

// lvalue describes an assignable location during codegen.
type lvalue struct {
	kind   lvKind
	reg    axp.Reg
	freg   axp.FReg
	slot   int   // lvFrame
	extra  int32 // lvFrame: extra byte displacement
	base   val   // lvMem
	disp   int32
	use    *UseRef
	gprSym string // lvGPRel
	gprOff int64  // lvGPRel: byte offset beyond the symbol
	isF    bool
}

// emitLitLoad emits an address load from the GAT into dst and returns the
// literal id for LITUSE chaining.
func (fg *funcgen) emitLitLoad(sym string, addend int64, dst axp.Reg) int {
	id := fg.nextLit
	fg.nextLit++
	mi := fg.emit(axp.MemInst(axp.LDQ, dst, axp.GP, 0))
	mi.Lit = &LitRef{ID: id, Sym: sym, Addend: addend}
	return id
}

// addrOfGlobal loads the address of a global symbol into a fresh temp.
func (fg *funcgen) addrOfGlobal(sym string, addend int64, pos Pos) (val, int, error) {
	t, err := fg.ownedInt(pos)
	if err != nil {
		return val{}, 0, err
	}
	id := fg.emitLitLoad(sym, addend, t.r)
	return t, id, nil
}

// genLValue compiles the location of an assignable expression.
func (fg *funcgen) genLValue(e *Expr) (lvalue, error) {
	isF := e.Type.IsFloat()
	switch e.Kind {
	case ExprVar:
		v := e.Var
		if v.Global {
			if fg.cg.optimistic(v) {
				return lvalue{kind: lvGPRel, gprSym: fg.cg.symForVar(v), isF: isF}, nil
			}
			base, id, err := fg.addrOfGlobal(fg.cg.symForVar(v), 0, e.Pos)
			if err != nil {
				return lvalue{}, err
			}
			return lvalue{kind: lvMem, base: base, use: &UseRef{LitID: id}, isF: isF}, nil
		}
		li := v.Local
		if li.InReg {
			if isF {
				return lvalue{kind: lvFPReg, freg: axp.FReg(li.Reg), isF: true}, nil
			}
			return lvalue{kind: lvIntReg, reg: axp.Reg(li.Reg)}, nil
		}
		return lvalue{kind: lvFrame, slot: int(li.FrameOff), isF: isF}, nil
	case ExprDeref:
		p, err := fg.genExpr(e.X)
		if err != nil {
			return lvalue{}, err
		}
		return lvalue{kind: lvMem, base: p, isF: isF}, nil
	case ExprIndex:
		return fg.genIndexLV(e)
	}
	return lvalue{}, errf(e.Pos, "not an lvalue")
}

// genIndexLV compiles base[index] into a location.
func (fg *funcgen) genIndexLV(e *Expr) (lvalue, error) {
	isF := e.Type.IsFloat()
	constIdx, hasConst := constIndex(e.Y)

	// Global array indexed directly.
	if e.X.Kind == ExprVar && e.X.Var != nil && e.X.Var.Global && e.X.Var.Type.IsArray() {
		sym := fg.cg.symForVar(e.X.Var)
		if fg.cg.optimistic(e.X.Var) {
			if hasConst {
				return lvalue{kind: lvGPRel, gprSym: sym, gprOff: constIdx * 8, isF: isF}, nil
			}
			base, err := fg.gprelAddr(sym, 0, e.Pos)
			if err != nil {
				return lvalue{}, err
			}
			return fg.scaledIndex(base, e.Y, isF)
		}
		if hasConst {
			base, id, err := fg.addrOfGlobal(sym, 0, e.Pos)
			if err != nil {
				return lvalue{}, err
			}
			return lvalue{kind: lvMem, base: base, disp: int32(constIdx * 8), use: &UseRef{LitID: id}, isF: isF}, nil
		}
		base, _, err := fg.addrOfGlobal(sym, 0, e.Pos)
		if err != nil {
			return lvalue{}, err
		}
		return fg.scaledIndex(base, e.Y, isF)
	}

	// Local array.
	if e.X.Kind == ExprVar && e.X.Var != nil && !e.X.Var.Global && e.X.Var.Type.IsArray() {
		li := e.X.Var.Local
		if hasConst {
			return lvalue{kind: lvFrame, slot: int(li.FrameOff), extra: int32(constIdx * 8), isF: isF}, nil
		}
		t, err := fg.ownedInt(e.Pos)
		if err != nil {
			return lvalue{}, err
		}
		fg.emitFrame(axp.LDA, t.r, int(li.FrameOff), 0)
		return fg.scaledIndex(t, e.Y, isF)
	}

	// Pointer value.
	p, err := fg.genExpr(e.X)
	if err != nil {
		return lvalue{}, err
	}
	if hasConst {
		d := constIdx * 8
		if d >= axp.MemDispMin && d <= axp.MemDispMax {
			return lvalue{kind: lvMem, base: p, disp: int32(d), isF: isF}, nil
		}
	}
	return fg.scaledIndex(p, e.Y, isF)
}

// scaledIndex computes base + 8*index into a fresh temp location.
func (fg *funcgen) scaledIndex(base val, idx *Expr, isF bool) (lvalue, error) {
	iv, err := fg.genExpr(idx)
	if err != nil {
		return lvalue{}, err
	}
	t, err := fg.ownedInt(idx.Pos)
	if err != nil {
		return lvalue{}, err
	}
	fg.emit(axp.OpInst(axp.S8ADDQ, iv.r, base.r, t.r))
	fg.free(iv)
	fg.free(base)
	return lvalue{kind: lvMem, base: t, isF: isF}, nil
}

// constIndex reports whether e is an integer literal index (possibly
// negated) in a reasonable range.
func constIndex(e *Expr) (int64, bool) {
	if e.Kind == ExprIntLit {
		if e.Int >= -4000 && e.Int <= 4000 {
			return e.Int, true
		}
	}
	if e.Kind == ExprUnary && e.Op == TokMinus && e.X.Kind == ExprIntLit {
		v := -e.X.Int
		if v >= -4000 && v <= 4000 {
			return v, true
		}
	}
	return 0, false
}

// loadLV loads the value at the location.
func (fg *funcgen) loadLV(lv lvalue, pos Pos) (val, error) {
	switch lv.kind {
	case lvIntReg:
		return val{r: lv.reg}, nil
	case lvFPReg:
		return val{isF: true, fr: lv.freg}, nil
	case lvFrame:
		if lv.isF {
			t, err := fg.ownedFP(pos)
			if err != nil {
				return val{}, err
			}
			fg.emitFrameF(axp.LDT, t.fr, lv.slot, lv.extra)
			return t, nil
		}
		t, err := fg.ownedInt(pos)
		if err != nil {
			return val{}, err
		}
		fg.emitFrame(axp.LDQ, t.r, lv.slot, lv.extra)
		return t, nil
	case lvMem:
		if lv.isF {
			t, err := fg.ownedFP(pos)
			if err != nil {
				return val{}, err
			}
			mi := fg.emit(axp.MemFInst(axp.LDT, t.fr, lv.base.r, lv.disp))
			mi.Use = lv.use
			fg.free(lv.base)
			return t, nil
		}
		t, err := fg.ownedInt(pos)
		if err != nil {
			return val{}, err
		}
		mi := fg.emit(axp.MemInst(axp.LDQ, t.r, lv.base.r, lv.disp))
		mi.Use = lv.use
		fg.free(lv.base)
		return t, nil
	case lvGPRel:
		if lv.isF {
			t, err := fg.ownedFP(pos)
			if err != nil {
				return val{}, err
			}
			mi := fg.emit(axp.MemFInst(axp.LDT, t.fr, axp.GP, 0))
			mi.GPR = &GPRelRef{Sym: lv.gprSym, Addend: lv.gprOff}
			return t, nil
		}
		t, err := fg.ownedInt(pos)
		if err != nil {
			return val{}, err
		}
		mi := fg.emit(axp.MemInst(axp.LDQ, t.r, axp.GP, 0))
		mi.GPR = &GPRelRef{Sym: lv.gprSym, Addend: lv.gprOff}
		return t, nil
	}
	return val{}, errf(pos, "bad lvalue")
}

// storeLV writes v into the location (classes must already match).
func (fg *funcgen) storeLV(lv lvalue, v val) {
	switch lv.kind {
	case lvIntReg:
		fg.emit(axp.Mov(v.r, lv.reg))
	case lvFPReg:
		fg.emit(axp.FMov(v.fr, lv.freg))
	case lvFrame:
		if lv.isF {
			fg.emitFrameF(axp.STT, v.fr, lv.slot, lv.extra)
		} else {
			fg.emitFrame(axp.STQ, v.r, lv.slot, lv.extra)
		}
	case lvMem:
		if lv.isF {
			mi := fg.emit(axp.MemFInst(axp.STT, v.fr, lv.base.r, lv.disp))
			mi.Use = lv.use
		} else {
			mi := fg.emit(axp.MemInst(axp.STQ, v.r, lv.base.r, lv.disp))
			mi.Use = lv.use
		}
		fg.free(lv.base)
	case lvGPRel:
		if lv.isF {
			mi := fg.emit(axp.MemFInst(axp.STT, v.fr, axp.GP, 0))
			mi.GPR = &GPRelRef{Sym: lv.gprSym, Addend: lv.gprOff}
		} else {
			mi := fg.emit(axp.MemInst(axp.STQ, v.r, axp.GP, 0))
			mi.GPR = &GPRelRef{Sym: lv.gprSym, Addend: lv.gprOff}
		}
	}
}

// addrOfLV materializes the address of a memory location into a temp.
func (fg *funcgen) addrOfLV(lv lvalue, pos Pos) (val, error) {
	switch lv.kind {
	case lvFrame:
		t, err := fg.ownedInt(pos)
		if err != nil {
			return val{}, err
		}
		fg.emitFrame(axp.LDA, t.r, lv.slot, lv.extra)
		return t, nil
	case lvMem:
		if lv.disp == 0 && lv.base.owned {
			return lv.base, nil
		}
		t, err := fg.ownedInt(pos)
		if err != nil {
			return val{}, err
		}
		fg.emit(axp.MemInst(axp.LDA, t.r, lv.base.r, lv.disp))
		fg.free(lv.base)
		return t, nil
	case lvGPRel:
		return fg.gprelAddr(lv.gprSym, lv.gprOff, pos)
	}
	return val{}, errf(pos, "cannot take the address of a register variable")
}

// gprelAddr materializes the address of a small datum with one lda through
// GP (optimistic compilation).
func (fg *funcgen) gprelAddr(sym string, addend int64, pos Pos) (val, error) {
	t, err := fg.ownedInt(pos)
	if err != nil {
		return val{}, err
	}
	mi := fg.emit(axp.MemInst(axp.LDA, t.r, axp.GP, 0))
	mi.GPR = &GPRelRef{Sym: sym, Addend: addend}
	return t, nil
}

// convFrameSlot returns the scratch slot used for int<->float conversions.
func (fg *funcgen) convFrameSlot() int {
	if fg.convSlot < 0 {
		fg.convSlot = fg.newSlot()
	}
	return fg.convSlot
}

// coerce converts v to the requested register class (Alpha has no direct
// integer<->FP register moves in this subset, so conversions go through a
// stack scratch slot, as real pre-BWX Alpha code did).
func (fg *funcgen) coerce(v val, wantF bool, pos Pos) (val, error) {
	if v.isF == wantF {
		return v, nil
	}
	slot := fg.convFrameSlot()
	if wantF {
		fg.emitFrame(axp.STQ, v.r, slot, 0)
		fg.free(v)
		f, err := fg.ownedFP(pos)
		if err != nil {
			return val{}, err
		}
		fg.emitFrameF(axp.LDT, f.fr, slot, 0)
		fg.emit(axp.OpFInst(axp.CVTQT, axp.FZero, f.fr, f.fr))
		return f, nil
	}
	ft, err := fg.ownedFP(pos)
	if err != nil {
		return val{}, err
	}
	fg.emit(axp.OpFInst(axp.CVTTQ, axp.FZero, v.fr, ft.fr))
	fg.free(v)
	fg.emitFrameF(axp.STT, ft.fr, slot, 0)
	fg.free(ft)
	t, err := fg.ownedInt(pos)
	if err != nil {
		return val{}, err
	}
	fg.emitFrame(axp.LDQ, t.r, slot, 0)
	return t, nil
}

// loadConst materializes an integer constant.
func (fg *funcgen) loadConst(n int64, pos Pos) (val, error) {
	if n == 0 {
		return val{r: axp.Zero}, nil
	}
	t, err := fg.ownedInt(pos)
	if err != nil {
		return val{}, err
	}
	if n >= axp.MemDispMin && n <= axp.MemDispMax {
		fg.emit(axp.MemInst(axp.LDA, t.r, axp.Zero, int32(n)))
		return t, nil
	}
	if hi, lo, ok := axp.SplitDisp32(n); ok {
		fg.emit(axp.MemInst(axp.LDAH, t.r, axp.Zero, int32(hi)))
		if lo != 0 {
			fg.emit(axp.MemInst(axp.LDA, t.r, t.r, int32(lo)))
		}
		return t, nil
	}
	// 64-bit constant: placed in the unit's literal data and loaded.
	sym := fg.cg.constSym(uint64(n))
	if fg.cg.opts.OptimisticGP > 0 {
		mi := fg.emit(axp.MemInst(axp.LDQ, t.r, axp.GP, 0))
		mi.GPR = &GPRelRef{Sym: sym}
		return t, nil
	}
	id := fg.emitLitLoad(sym, 0, t.r)
	mi := fg.emit(axp.MemInst(axp.LDQ, t.r, t.r, 0))
	mi.Use = &UseRef{LitID: id}
	return t, nil
}

// genExpr compiles an expression into a register value.
func (fg *funcgen) genExpr(e *Expr) (val, error) {
	// Constant folding (-O2 behavior): exact, so semantics are unchanged.
	if e.Kind != ExprIntLit && e.Kind != ExprFloatLit {
		if e.Type == TypeLong {
			if v, ok := foldInt(e); ok {
				return fg.loadConst(v, e.Pos)
			}
		} else if e.Type == TypeDouble {
			if v, ok := foldDbl(e); ok {
				return fg.genExpr(&Expr{Kind: ExprFloatLit, Pos: e.Pos, Type: TypeDouble, Flt: v})
			}
		}
	}
	switch e.Kind {
	case ExprIntLit:
		return fg.loadConst(e.Int, e.Pos)
	case ExprFloatLit:
		if math.Float64bits(e.Flt) == 0 {
			return val{isF: true, fr: axp.FZero}, nil
		}
		sym := fg.cg.constSym(math.Float64bits(e.Flt))
		if fg.cg.opts.OptimisticGP > 0 {
			// One gp-relative load instead of a GAT load plus a use.
			f, err := fg.ownedFP(e.Pos)
			if err != nil {
				return val{}, err
			}
			mi := fg.emit(axp.MemFInst(axp.LDT, f.fr, axp.GP, 0))
			mi.GPR = &GPRelRef{Sym: sym}
			return f, nil
		}
		base, id, err := fg.addrOfGlobal(sym, 0, e.Pos)
		if err != nil {
			return val{}, err
		}
		f, err := fg.ownedFP(e.Pos)
		if err != nil {
			return val{}, err
		}
		mi := fg.emit(axp.MemFInst(axp.LDT, f.fr, base.r, 0))
		mi.Use = &UseRef{LitID: id}
		fg.free(base)
		return f, nil
	case ExprVar:
		v := e.Var
		if v.Type.IsArray() {
			// Array decays to its address.
			if v.Global {
				if fg.cg.optimistic(v) {
					return fg.gprelAddr(fg.cg.symForVar(v), 0, e.Pos)
				}
				base, _, err := fg.addrOfGlobal(fg.cg.symForVar(v), 0, e.Pos)
				return base, err
			}
			t, err := fg.ownedInt(e.Pos)
			if err != nil {
				return val{}, err
			}
			fg.emitFrame(axp.LDA, t.r, int(v.Local.FrameOff), 0)
			return t, nil
		}
		lv, err := fg.genLValue(e)
		if err != nil {
			return val{}, err
		}
		return fg.loadLV(lv, e.Pos)
	case ExprFuncRef:
		base, _, err := fg.addrOfGlobal(fg.cg.symForFunc(e.Func), 0, e.Pos)
		return base, err
	case ExprIndex, ExprDeref:
		lv, err := fg.genLValue(e)
		if err != nil {
			return val{}, err
		}
		return fg.loadLV(lv, e.Pos)
	case ExprAddr:
		switch e.X.Kind {
		case ExprVar:
			v := e.X.Var
			if v.Type.IsArray() {
				return fg.genExpr(e.X) // decay
			}
			if v.Global {
				if fg.cg.optimistic(v) {
					return fg.gprelAddr(fg.cg.symForVar(v), 0, e.Pos)
				}
				base, _, err := fg.addrOfGlobal(fg.cg.symForVar(v), 0, e.Pos)
				return base, err
			}
			t, err := fg.ownedInt(e.Pos)
			if err != nil {
				return val{}, err
			}
			fg.emitFrame(axp.LDA, t.r, int(v.Local.FrameOff), 0)
			return t, nil
		default:
			lv, err := fg.genLValue(e.X)
			if err != nil {
				return val{}, err
			}
			return fg.addrOfLV(lv, e.Pos)
		}
	case ExprUnary:
		return fg.genUnary(e)
	case ExprBinary:
		return fg.genBinary(e)
	case ExprCond:
		return fg.genCondValue(e)
	case ExprAssign:
		lv, err := fg.genLValue(e.X)
		if err != nil {
			return val{}, err
		}
		v, err := fg.genExpr(e.Y)
		if err != nil {
			return val{}, err
		}
		v, err = fg.coerce(v, lv.isF || e.X.Type.IsFloat(), e.Pos)
		if err != nil {
			return val{}, err
		}
		fg.storeLV(lv, v)
		return v, nil
	case ExprCall:
		return fg.genCall(e)
	}
	return val{}, errf(e.Pos, "unhandled expression")
}

func (fg *funcgen) genUnary(e *Expr) (val, error) {
	x, err := fg.genExpr(e.X)
	if err != nil {
		return val{}, err
	}
	switch e.Op {
	case TokMinus:
		if x.isF {
			t, err := fg.ownedFP(e.Pos)
			if err != nil {
				return val{}, err
			}
			fg.emit(axp.OpFInst(axp.SUBT, axp.FZero, x.fr, t.fr))
			fg.free(x)
			return t, nil
		}
		t, err := fg.ownedInt(e.Pos)
		if err != nil {
			return val{}, err
		}
		fg.emit(axp.OpInst(axp.SUBQ, axp.Zero, x.r, t.r))
		fg.free(x)
		return t, nil
	case TokBang:
		t, err := fg.ownedInt(e.Pos)
		if err != nil {
			return val{}, err
		}
		fg.emit(axp.OpLitInst(axp.CMPEQ, x.r, 0, t.r))
		fg.free(x)
		return t, nil
	case TokTilde:
		t, err := fg.ownedInt(e.Pos)
		if err != nil {
			return val{}, err
		}
		fg.emit(axp.OpInst(axp.ORNOT, axp.Zero, x.r, t.r))
		fg.free(x)
		return t, nil
	}
	return val{}, errf(e.Pos, "bad unary operator")
}

var intBinOp = map[TokKind]axp.Op{
	TokPlus: axp.ADDQ, TokMinus: axp.SUBQ, TokStar: axp.MULQ,
	TokAmp: axp.AND, TokPipe: axp.BIS, TokCaret: axp.XOR,
	TokShl: axp.SLL, TokShr: axp.SRA,
}

var fpBinOp = map[TokKind]axp.Op{
	TokPlus: axp.ADDT, TokMinus: axp.SUBT, TokStar: axp.MULT, TokSlash: axp.DIVT,
}

// evalPair evaluates both operands of a binary expression, choosing the
// Sethi-Ullman order: when both sides are side-effect free, the deeper
// subtree goes first so fewer temporaries stay live. Results are returned
// in (x, y) source order.
func (fg *funcgen) evalPair(ex, ey *Expr) (val, val, error) {
	if pure(ex) && pure(ey) && exprSize(ey) > exprSize(ex) {
		y, err := fg.genExpr(ey)
		if err != nil {
			return val{}, val{}, err
		}
		x, err := fg.genExpr(ex)
		if err != nil {
			return val{}, val{}, err
		}
		return x, y, nil
	}
	x, err := fg.genExpr(ex)
	if err != nil {
		return val{}, val{}, err
	}
	y, err := fg.genExpr(ey)
	if err != nil {
		return val{}, val{}, err
	}
	return x, y, nil
}

func (fg *funcgen) genBinary(e *Expr) (val, error) {
	switch e.Op {
	case TokEq, TokNe, TokLt, TokLe, TokGt, TokGe:
		return fg.genCompareValue(e)
	}
	if e.Type == TypeDouble {
		x, err := fg.genExpr(e.X)
		if err != nil {
			return val{}, err
		}
		x, err = fg.coerce(x, true, e.Pos)
		if err != nil {
			return val{}, err
		}
		y, err := fg.genExpr(e.Y)
		if err != nil {
			return val{}, err
		}
		y, err = fg.coerce(y, true, e.Pos)
		if err != nil {
			return val{}, err
		}
		op, ok := fpBinOp[e.Op]
		if !ok {
			return val{}, errf(e.Pos, "bad FP operator %v", e.Op)
		}
		t, err := fg.ownedFP(e.Pos)
		if err != nil {
			return val{}, err
		}
		fg.emit(axp.OpFInst(op, x.fr, y.fr, t.fr))
		fg.free(x)
		fg.free(y)
		return t, nil
	}

	// Integer division and remainder go through the runtime library.
	if e.Op == TokSlash || e.Op == TokPercent {
		name := "__divq"
		if e.Op == TokPercent {
			name = "__remq"
		}
		x, err := fg.genExpr(e.X)
		if err != nil {
			return val{}, err
		}
		y, err := fg.genExpr(e.Y)
		if err != nil {
			return val{}, err
		}
		return fg.emitCallSym(name, []val{x, y}, false, false, e.Pos)
	}

	// Multiplication by a power of two becomes a shift; small constants use
	// the operate-literal form. Both consume only the left operand.
	if e.Op == TokStar {
		if k, ok := constIndex(e.Y); ok && k > 0 && k&(k-1) == 0 {
			x, err := fg.genExpr(e.X)
			if err != nil {
				return val{}, err
			}
			sh := uint8(bitsTrailingZeros(uint64(k)))
			t, err := fg.ownedInt(e.Pos)
			if err != nil {
				return val{}, err
			}
			fg.emit(axp.OpLitInst(axp.SLL, x.r, sh, t.r))
			fg.free(x)
			return t, nil
		}
	}

	op, ok := intBinOp[e.Op]
	if !ok {
		return val{}, errf(e.Pos, "bad integer operator %v", e.Op)
	}

	if e.Y.Kind == ExprIntLit && e.Y.Int >= 0 && e.Y.Int <= 255 {
		x, err := fg.genExpr(e.X)
		if err != nil {
			return val{}, err
		}
		t, err := fg.ownedInt(e.Pos)
		if err != nil {
			return val{}, err
		}
		fg.emit(axp.OpLitInst(op, x.r, uint8(e.Y.Int), t.r))
		fg.free(x)
		return t, nil
	}

	x, y, err := fg.evalPair(e.X, e.Y)
	if err != nil {
		return val{}, err
	}
	t, err := fg.ownedInt(e.Pos)
	if err != nil {
		return val{}, err
	}
	fg.emit(axp.OpInst(op, x.r, y.r, t.r))
	fg.free(x)
	fg.free(y)
	return t, nil
}

func bitsTrailingZeros(v uint64) int {
	n := 0
	for v&1 == 0 {
		v >>= 1
		n++
	}
	return n
}

// genCompareValue compiles a comparison producing 0 or 1 in a register.
func (fg *funcgen) genCompareValue(e *Expr) (val, error) {
	if e.X.Type == TypeDouble || e.Y.Type == TypeDouble {
		return fg.genFPCompareValue(e)
	}
	x, y, err := fg.evalPair(e.X, e.Y)
	if err != nil {
		return val{}, err
	}
	t, err := fg.ownedInt(e.Pos)
	if err != nil {
		return val{}, err
	}
	neg := false
	switch e.Op {
	case TokEq:
		fg.emit(axp.OpInst(axp.CMPEQ, x.r, y.r, t.r))
	case TokNe:
		fg.emit(axp.OpInst(axp.CMPEQ, x.r, y.r, t.r))
		neg = true
	case TokLt:
		fg.emit(axp.OpInst(axp.CMPLT, x.r, y.r, t.r))
	case TokLe:
		fg.emit(axp.OpInst(axp.CMPLE, x.r, y.r, t.r))
	case TokGt:
		fg.emit(axp.OpInst(axp.CMPLT, y.r, x.r, t.r))
	case TokGe:
		fg.emit(axp.OpInst(axp.CMPLE, y.r, x.r, t.r))
	}
	if neg {
		fg.emit(axp.OpLitInst(axp.XOR, t.r, 1, t.r))
	}
	fg.free(x)
	fg.free(y)
	return t, nil
}

func (fg *funcgen) genFPCompareValue(e *Expr) (val, error) {
	ft, err := fg.genFPCompare(e)
	if err != nil {
		return val{}, err
	}
	// Convert the FP truth value (0.0 / 2.0) into an integer 0/1.
	t, err := fg.ownedInt(e.Pos)
	if err != nil {
		return val{}, err
	}
	trueVal, branchOp := int32(1), axp.FBNE
	if e.Op == TokNe {
		// ft holds cmpteq; invert.
		branchOp = axp.FBEQ
	}
	end := fg.newLabel()
	fg.emit(axp.MemInst(axp.LDA, t.r, axp.Zero, trueVal))
	mi := fg.emit(axp.BranchFInst(branchOp, ft.fr, 0))
	mi.Target = end
	fg.emit(axp.Mov(axp.Zero, t.r))
	fg.label(end)
	fg.free(ft)
	return t, nil
}

// genFPCompare emits the cmptXX for a comparison and returns the FP truth
// register. For TokNe the caller must interpret the result inverted
// (register holds cmpteq).
func (fg *funcgen) genFPCompare(e *Expr) (val, error) {
	x, err := fg.genExpr(e.X)
	if err != nil {
		return val{}, err
	}
	x, err = fg.coerce(x, true, e.Pos)
	if err != nil {
		return val{}, err
	}
	y, err := fg.genExpr(e.Y)
	if err != nil {
		return val{}, err
	}
	y, err = fg.coerce(y, true, e.Pos)
	if err != nil {
		return val{}, err
	}
	t, err := fg.ownedFP(e.Pos)
	if err != nil {
		return val{}, err
	}
	switch e.Op {
	case TokEq, TokNe:
		fg.emit(axp.OpFInst(axp.CMPTEQ, x.fr, y.fr, t.fr))
	case TokLt:
		fg.emit(axp.OpFInst(axp.CMPTLT, x.fr, y.fr, t.fr))
	case TokLe:
		fg.emit(axp.OpFInst(axp.CMPTLE, x.fr, y.fr, t.fr))
	case TokGt:
		fg.emit(axp.OpFInst(axp.CMPTLT, y.fr, x.fr, t.fr))
	case TokGe:
		fg.emit(axp.OpFInst(axp.CMPTLE, y.fr, x.fr, t.fr))
	}
	fg.free(x)
	fg.free(y)
	return t, nil
}

// genCondValue materializes a short-circuit && / || as 0 or 1.
func (fg *funcgen) genCondValue(e *Expr) (val, error) {
	t, err := fg.ownedInt(e.Pos)
	if err != nil {
		return val{}, err
	}
	falseLbl := fg.newLabel()
	endLbl := fg.newLabel()
	if err := fg.genBranch(e, falseLbl, false); err != nil {
		return val{}, err
	}
	fg.emit(axp.MemInst(axp.LDA, t.r, axp.Zero, 1))
	fg.emitBr(endLbl)
	fg.label(falseLbl)
	fg.emit(axp.Mov(axp.Zero, t.r))
	fg.label(endLbl)
	return t, nil
}

// Branch opcodes for register-vs-zero comparisons, by operator.
var zeroBranchTrue = map[TokKind]axp.Op{
	TokEq: axp.BEQ, TokNe: axp.BNE, TokLt: axp.BLT,
	TokLe: axp.BLE, TokGt: axp.BGT, TokGe: axp.BGE,
}

var zeroBranchFalse = map[TokKind]axp.Op{
	TokEq: axp.BNE, TokNe: axp.BEQ, TokLt: axp.BGE,
	TokLe: axp.BGT, TokGt: axp.BLE, TokGe: axp.BLT,
}

// mirrorOp flips a comparison for swapped operands (a OP b == b mirror(OP) a).
var mirrorOp = map[TokKind]TokKind{
	TokEq: TokEq, TokNe: TokNe, TokLt: TokGt, TokLe: TokGe, TokGt: TokLt, TokGe: TokLe,
}

// genBranch branches to lbl when the truth of e equals whenTrue.
func (fg *funcgen) genBranch(e *Expr, lbl int, whenTrue bool) error {
	switch e.Kind {
	case ExprUnary:
		if e.Op == TokBang {
			return fg.genBranch(e.X, lbl, !whenTrue)
		}
	case ExprCond:
		if e.Op == TokAndAnd {
			if whenTrue {
				skip := fg.newLabel()
				if err := fg.genBranch(e.X, skip, false); err != nil {
					return err
				}
				if err := fg.genBranch(e.Y, lbl, true); err != nil {
					return err
				}
				fg.label(skip)
				return nil
			}
			if err := fg.genBranch(e.X, lbl, false); err != nil {
				return err
			}
			return fg.genBranch(e.Y, lbl, false)
		}
		// ||
		if whenTrue {
			if err := fg.genBranch(e.X, lbl, true); err != nil {
				return err
			}
			return fg.genBranch(e.Y, lbl, true)
		}
		skip := fg.newLabel()
		if err := fg.genBranch(e.X, skip, true); err != nil {
			return err
		}
		if err := fg.genBranch(e.Y, lbl, false); err != nil {
			return err
		}
		fg.label(skip)
		return nil
	case ExprBinary:
		switch e.Op {
		case TokEq, TokNe, TokLt, TokLe, TokGt, TokGe:
			return fg.genCompareBranch(e, lbl, whenTrue)
		}
	case ExprIntLit:
		truth := e.Int != 0
		if truth == whenTrue {
			fg.emitBr(lbl)
		}
		return nil
	}
	// General value test.
	v, err := fg.genExpr(e)
	if err != nil {
		return err
	}
	if v.isF {
		ft, err := fg.ownedFP(e.Pos)
		if err != nil {
			return err
		}
		fg.emit(axp.OpFInst(axp.CMPTEQ, v.fr, axp.FZero, ft.fr))
		op := axp.FBEQ // value != 0 <=> cmpteq == 0
		if !whenTrue {
			op = axp.FBNE
		}
		mi := fg.emit(axp.BranchFInst(op, ft.fr, 0))
		mi.Target = lbl
		fg.free(ft)
		fg.free(v)
		return nil
	}
	op := axp.BNE
	if !whenTrue {
		op = axp.BEQ
	}
	mi := fg.emit(axp.BranchInst(op, v.r, 0))
	mi.Target = lbl
	fg.free(v)
	return nil
}

func (fg *funcgen) genCompareBranch(e *Expr, lbl int, whenTrue bool) error {
	if e.X.Type == TypeDouble || e.Y.Type == TypeDouble {
		ft, err := fg.genFPCompare(e)
		if err != nil {
			return err
		}
		sense := whenTrue
		if e.Op == TokNe {
			sense = !sense // register holds cmpteq
		}
		op := axp.FBNE
		if !sense {
			op = axp.FBEQ
		}
		mi := fg.emit(axp.BranchFInst(op, ft.fr, 0))
		mi.Target = lbl
		fg.free(ft)
		return nil
	}

	// Compare against zero folds into the branch.
	if isZeroLit(e.Y) {
		x, err := fg.genExpr(e.X)
		if err != nil {
			return err
		}
		tbl := zeroBranchTrue
		if !whenTrue {
			tbl = zeroBranchFalse
		}
		mi := fg.emit(axp.BranchInst(tbl[e.Op], x.r, 0))
		mi.Target = lbl
		fg.free(x)
		return nil
	}
	if isZeroLit(e.X) {
		x, err := fg.genExpr(e.Y)
		if err != nil {
			return err
		}
		tbl := zeroBranchTrue
		if !whenTrue {
			tbl = zeroBranchFalse
		}
		mi := fg.emit(axp.BranchInst(tbl[mirrorOp[e.Op]], x.r, 0))
		mi.Target = lbl
		fg.free(x)
		return nil
	}

	// General: cmp then branch on the boolean.
	x, err := fg.genExpr(e.X)
	if err != nil {
		return err
	}
	y, err := fg.genExpr(e.Y)
	if err != nil {
		return err
	}
	t, err := fg.ownedInt(e.Pos)
	if err != nil {
		return err
	}
	sense := whenTrue
	switch e.Op {
	case TokEq:
		fg.emit(axp.OpInst(axp.CMPEQ, x.r, y.r, t.r))
	case TokNe:
		fg.emit(axp.OpInst(axp.CMPEQ, x.r, y.r, t.r))
		sense = !sense
	case TokLt:
		fg.emit(axp.OpInst(axp.CMPLT, x.r, y.r, t.r))
	case TokLe:
		fg.emit(axp.OpInst(axp.CMPLE, x.r, y.r, t.r))
	case TokGt:
		fg.emit(axp.OpInst(axp.CMPLT, y.r, x.r, t.r))
	case TokGe:
		fg.emit(axp.OpInst(axp.CMPLE, y.r, x.r, t.r))
	}
	op := axp.BNE
	if !sense {
		op = axp.BEQ
	}
	mi := fg.emit(axp.BranchInst(op, t.r, 0))
	mi.Target = lbl
	fg.free(x)
	fg.free(y)
	fg.free(t)
	return nil
}

func isZeroLit(e *Expr) bool { return e.Kind == ExprIntLit && e.Int == 0 }
