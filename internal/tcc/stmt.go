package tcc

import "repro/internal/axp"

// genStmt compiles one statement.
func (fg *funcgen) genStmt(s *Stmt) error {
	switch s.Kind {
	case StmtEmpty:
		return nil
	case StmtBlock:
		for _, st := range s.Body {
			if err := fg.genStmt(st); err != nil {
				return err
			}
		}
		return nil
	case StmtExpr:
		v, err := fg.genExpr(s.Expr)
		if err != nil {
			return err
		}
		fg.free(v)
		return nil
	case StmtDecl:
		return fg.genDecl(s.Decl)
	case StmtIf:
		return fg.genIf(s)
	case StmtWhile:
		return fg.genWhile(s)
	case StmtFor:
		return fg.genFor(s)
	case StmtReturn:
		return fg.genReturn(s)
	case StmtBreak:
		fg.emitBr(fg.breakLbls[len(fg.breakLbls)-1])
		return nil
	case StmtContinue:
		fg.emitBr(fg.contLbls[len(fg.contLbls)-1])
		return nil
	}
	return errf(s.Pos, "unhandled statement")
}

// emitBr emits an unconditional branch to label l.
func (fg *funcgen) emitBr(l int) {
	mi := fg.emit(axp.BranchInst(axp.BR, axp.Zero, 0))
	mi.Target = l
}

func (fg *funcgen) genDecl(v *VarDecl) error {
	fg.assignHome(v)
	if len(v.Init) != 1 {
		return nil
	}
	rv, err := fg.genExpr(v.Init[0])
	if err != nil {
		return err
	}
	rv, err = fg.coerce(rv, v.Type.IsFloat(), v.Pos)
	if err != nil {
		return err
	}
	fg.storeLocal(v, rv)
	fg.free(rv)
	return nil
}

// storeLocal writes rv (already the right class) into the local's home.
func (fg *funcgen) storeLocal(v *VarDecl, rv val) {
	li := v.Local
	switch {
	case li.InReg && v.Type.IsFloat():
		fg.emit(axp.FMov(rv.fr, axp.FReg(li.Reg)))
	case li.InReg:
		fg.emit(axp.Mov(rv.r, axp.Reg(li.Reg)))
	case v.Type.IsFloat():
		fg.emitFrameF(axp.STT, rv.fr, int(li.FrameOff), 0)
	default:
		fg.emitFrame(axp.STQ, rv.r, int(li.FrameOff), 0)
	}
}

func (fg *funcgen) genIf(s *Stmt) error {
	elseLbl := fg.newLabel()
	if err := fg.genBranch(s.Cond, elseLbl, false); err != nil {
		return err
	}
	if err := fg.genStmt(s.Then); err != nil {
		return err
	}
	if s.Else != nil {
		endLbl := fg.newLabel()
		fg.emitBr(endLbl)
		fg.label(elseLbl)
		if err := fg.genStmt(s.Else); err != nil {
			return err
		}
		fg.label(endLbl)
	} else {
		fg.label(elseLbl)
	}
	return nil
}

func (fg *funcgen) genWhile(s *Stmt) error {
	condLbl := fg.newLabel()
	endLbl := fg.newLabel()
	fg.label(condLbl)
	if err := fg.genBranch(s.Cond, endLbl, false); err != nil {
		return err
	}
	fg.breakLbls = append(fg.breakLbls, endLbl)
	fg.contLbls = append(fg.contLbls, condLbl)
	err := fg.genStmt(s.Then)
	fg.breakLbls = fg.breakLbls[:len(fg.breakLbls)-1]
	fg.contLbls = fg.contLbls[:len(fg.contLbls)-1]
	if err != nil {
		return err
	}
	fg.emitBr(condLbl)
	fg.label(endLbl)
	return nil
}

func (fg *funcgen) genFor(s *Stmt) error {
	if s.Init != nil {
		if err := fg.genStmt(s.Init); err != nil {
			return err
		}
	}
	condLbl := fg.newLabel()
	contLbl := fg.newLabel()
	endLbl := fg.newLabel()
	fg.label(condLbl)
	if s.Cond != nil {
		if err := fg.genBranch(s.Cond, endLbl, false); err != nil {
			return err
		}
	}
	fg.breakLbls = append(fg.breakLbls, endLbl)
	fg.contLbls = append(fg.contLbls, contLbl)
	err := fg.genStmt(s.Then)
	fg.breakLbls = fg.breakLbls[:len(fg.breakLbls)-1]
	fg.contLbls = fg.contLbls[:len(fg.contLbls)-1]
	if err != nil {
		return err
	}
	fg.label(contLbl)
	if s.Post != nil {
		v, err := fg.genExpr(s.Post)
		if err != nil {
			return err
		}
		fg.free(v)
	}
	fg.emitBr(condLbl)
	fg.label(endLbl)
	return nil
}

func (fg *funcgen) genReturn(s *Stmt) error {
	if s.Expr != nil {
		v, err := fg.genExpr(s.Expr)
		if err != nil {
			return err
		}
		v, err = fg.coerce(v, fg.fn.Ret.IsFloat(), s.Pos)
		if err != nil {
			return err
		}
		if v.isF {
			fg.emit(axp.FMov(v.fr, axp.FV0))
		} else {
			fg.emit(axp.Mov(v.r, axp.V0))
		}
		fg.free(v)
	}
	fg.emitBr(fg.retLbl)
	return nil
}
