package tcc

import (
	"fmt"
	"sort"

	"repro/internal/axp"
	"repro/internal/objfile"
)

// Options control compilation.
type Options struct {
	// Schedule enables the compile-time basic-block pipeline scheduler
	// (part of -O2). It is this pass that displaces prologue GP-setup pairs.
	Schedule bool
	// OptimizeStaticCalls lets the compiler call file-static procedures in
	// the same unit with a bsr to a local entry point, skipping PV load and
	// GP reset (the paper's footnote-2 optimization).
	OptimizeStaticCalls bool
	// Inline enables the compile-all interprocedural inliner for trivial
	// functions.
	Inline bool
	// SmallDataBytes is the size threshold under which initialized data and
	// static bss go to .sdata/.sbss (near-GAT candidates).
	SmallDataBytes int64
	// OptimisticGP enables optimistic compilation (the paper's §6
	// alternative, like the MIPS -G convention): data items no larger than
	// this many bytes are assumed GP-reachable and accessed with a direct
	// 16-bit GP-relative reference; the linker verifies the assumption and
	// refuses to link when it fails. 0 disables.
	OptimisticGP int64
}

// DefaultOptions mirrors "cc -O2": scheduling and static-call optimization
// on, interprocedural inlining off.
func DefaultOptions() Options {
	return Options{Schedule: true, OptimizeStaticCalls: true, SmallDataBytes: 64}
}

// InterprocOptions mirrors "cc -O4 -ifo": everything in DefaultOptions plus
// inlining across the (whole-program) unit.
func InterprocOptions() Options {
	o := DefaultOptions()
	o.Inline = true
	return o
}

// Source is one named source file.
type Source struct {
	Name string
	Text string
}

// Compile parses, analyzes, and compiles the sources as a single unit,
// producing one relocatable object module.
func Compile(unitName string, sources []Source, opts Options) (*objfile.Object, error) {
	files := make([]*File, 0, len(sources))
	for _, src := range sources {
		f, err := ParseFile(src.Name, src.Text)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	unit, err := Analyze(unitName, files)
	if err != nil {
		return nil, err
	}
	if opts.Inline {
		InlineUnit(unit)
	}
	return Generate(unit, opts)
}

// codegen holds per-unit code generation state.
type codegen struct {
	unit *Unit
	opts Options
	mb   *moduleBuilder

	varSym  map[*VarDecl]string
	funcSym map[*FuncDecl]string
	// constPool interns anonymous 8-byte constants placed in .sdata.
	constPool map[uint64]string
	constData []uint64
	constSyms []string
	nextConst int
}

// Generate compiles an analyzed unit into an object module.
func Generate(unit *Unit, opts Options) (*objfile.Object, error) {
	if opts.SmallDataBytes == 0 {
		opts.SmallDataBytes = 64
	}
	cg := &codegen{
		unit:      unit,
		opts:      opts,
		mb:        newModuleBuilder(unit.Name),
		varSym:    make(map[*VarDecl]string),
		funcSym:   make(map[*FuncDecl]string),
		constPool: make(map[uint64]string),
	}
	cg.assignNames()

	// Compile every defined function, in declaration order.
	for _, fn := range unit.FuncOrder {
		if fn.Body == nil {
			return nil, errf(fn.Pos, "static function %s declared but never defined", fn.Name)
		}
		fg := newFuncgen(cg, fn)
		frag, err := fg.generate()
		if err != nil {
			return nil, err
		}
		peepholeFrag(frag)
		if opts.Schedule {
			scheduleFrag(frag)
		}
		if err := cg.mb.emitFrag(frag, !fn.Static); err != nil {
			return nil, err
		}
	}

	if err := cg.emitData(); err != nil {
		return nil, err
	}
	cg.mb.finishLita()
	if err := cg.mb.obj.Validate(); err != nil {
		return nil, fmt.Errorf("tcc: generated invalid object: %w", err)
	}
	return cg.mb.obj, nil
}

// assignNames picks link-time symbol names for every declaration.
func (cg *codegen) assignNames() {
	for _, f := range cg.unit.Files {
		for _, v := range f.Vars {
			if v.Extern {
				continue
			}
			if v.Static {
				cg.varSym[v] = mangle(f, v.Name)
			} else {
				cg.varSym[v] = v.Name
			}
		}
		for _, fn := range f.Funcs {
			if fn.Static {
				cg.funcSym[fn] = mangle(f, fn.Name)
			} else {
				cg.funcSym[fn] = fn.Name
			}
		}
	}
}

// symForVar returns the link symbol for a global variable decl.
func (cg *codegen) symForVar(v *VarDecl) string {
	if s, ok := cg.varSym[v]; ok {
		return s
	}
	return v.Name // extern
}

// symForFunc returns the link symbol for a function decl.
func (cg *codegen) symForFunc(fn *FuncDecl) string {
	if s, ok := cg.funcSym[fn]; ok {
		return s
	}
	return fn.Name // extern
}

// optimistic reports whether the variable is accessed GP-relatively under
// optimistic compilation.
func (cg *codegen) optimistic(v *VarDecl) bool {
	return cg.opts.OptimisticGP > 0 && v.SizeBytes() <= cg.opts.OptimisticGP
}

// constSym interns an anonymous 8-byte constant and returns its symbol.
func (cg *codegen) constSym(bits uint64) string {
	if s, ok := cg.constPool[bits]; ok {
		return s
	}
	s := fmt.Sprintf("%s$.lc%d", cg.unit.Name, cg.nextConst)
	cg.nextConst++
	cg.constPool[bits] = s
	cg.constData = append(cg.constData, bits)
	cg.constSyms = append(cg.constSyms, s)
	return s
}

// emitData lays out every global variable and pool constant into the data
// sections and defines their symbols.
func (cg *codegen) emitData() error {
	// Pool constants first: they are hot and tiny, so .sdata.
	for i, bits := range cg.constData {
		var b [8]byte
		objfile.PutUint64(b[:], 0, bits)
		off := cg.mb.addData(objfile.SecSData, b[:])
		cg.mb.defineSymbol(objfile.Symbol{
			Name: cg.constSyms[i], Kind: objfile.SymData, Section: objfile.SecSData,
			Value: off, Size: 8, Align: 8,
		})
	}
	for _, v := range cg.unit.VarOrder {
		sym := cg.symForVar(v)
		size := uint64(v.SizeBytes())
		small := int64(size) <= cg.opts.SmallDataBytes
		switch {
		case len(v.Init) > 0:
			elem := v.Type
			if v.Type.IsArray() {
				elem = v.Type.Elem()
			}
			data := make([]byte, size)
			for i, e := range v.Init {
				bits, err := ConstInitValue(e, elem)
				if err != nil {
					return err
				}
				objfile.PutUint64(data, uint64(i*8), bits)
			}
			sec := objfile.SecData
			if small {
				sec = objfile.SecSData
			}
			off := cg.mb.addData(sec, data)
			cg.mb.defineSymbol(objfile.Symbol{
				Name: sym, Kind: objfile.SymData, Section: sec,
				Value: off, Size: size, Align: 8, Exported: !v.Static,
			})
		case v.Static:
			sec := objfile.SecBss
			if small {
				sec = objfile.SecSBss
			}
			off := cg.mb.addBss(sec, size)
			cg.mb.defineSymbol(objfile.Symbol{
				Name: sym, Kind: objfile.SymData, Section: sec,
				Value: off, Size: size, Align: 8,
			})
		case cg.optimistic(v):
			// Optimistic compilation places small exported bss in .sbss
			// (not a common), where the -G convention assumes GP reaches it.
			off := cg.mb.addBss(objfile.SecSBss, size)
			cg.mb.defineSymbol(objfile.Symbol{
				Name: sym, Kind: objfile.SymData, Section: objfile.SecSBss,
				Value: off, Size: size, Align: 8, Exported: true,
			})
		default:
			// Uninitialized exported global: a common, placed by the linker.
			cg.mb.defineSymbol(objfile.Symbol{
				Name: sym, Kind: objfile.SymCommon, Section: objfile.SecNone,
				Size: size, Align: 8, Exported: true,
			})
		}
	}
	return nil
}

// Register pools for expression temporaries (caller-saved).
var intTempPool = []axp.Reg{
	axp.T0, axp.T1, axp.T2, axp.T3, axp.T4, axp.T5, axp.T6, axp.T7,
	axp.T8, axp.T9, axp.T10, axp.T11,
}

var fpTempPool = []axp.FReg{1, 10, 11, 12, 13, 14, 15, 22, 23, 24, 25, 26, 27, 28}

// Callee-saved homes for register-allocated locals.
var intSavedPool = []axp.Reg{axp.S0, axp.S1, axp.S2, axp.S3, axp.S4, axp.S5}

var fpSavedPool = []axp.FReg{2, 3, 4, 5, 6, 7, 8, 9}

// val is a value held in a register during expression evaluation.
type val struct {
	isF   bool
	r     axp.Reg
	fr    axp.FReg
	owned bool // owned temporaries return to the pool when freed
}

// funcgen compiles one function body into a Frag.
type funcgen struct {
	cg   *codegen
	fn   *FuncDecl
	name string

	insts []*MInst

	nextLabel int
	nextLit   int
	nextPair  int
	nextCall  int

	freeInt  []axp.Reg
	freeFP   []axp.FReg
	liveInt  map[axp.Reg]bool
	liveFP   map[axp.FReg]bool
	spillInt map[axp.Reg]int
	spillFP  map[axp.FReg]int

	nextSlot int
	convSlot int

	usedS  []axp.Reg
	usedFS []axp.FReg
	sNext  int
	fsNext int

	isLeaf bool
	retLbl int

	breakLbls []int
	contLbls  []int

	pendingLabels []int
}

func newFuncgen(cg *codegen, fn *FuncDecl) *funcgen {
	fg := &funcgen{
		cg:       cg,
		fn:       fn,
		name:     cg.symForFunc(fn),
		freeInt:  append([]axp.Reg(nil), intTempPool...),
		freeFP:   append([]axp.FReg(nil), fpTempPool...),
		liveInt:  make(map[axp.Reg]bool),
		liveFP:   make(map[axp.FReg]bool),
		spillInt: make(map[axp.Reg]int),
		spillFP:  make(map[axp.FReg]int),
		convSlot: -1,
		isLeaf:   true,
	}
	fg.retLbl = fg.newLabel()
	return fg
}

func (fg *funcgen) newLabel() int { l := fg.nextLabel; fg.nextLabel++; return l }

func (fg *funcgen) newSlot() int { s := fg.nextSlot; fg.nextSlot++; return s }

func (fg *funcgen) emit(in axp.Inst) *MInst {
	mi := newMInst(in)
	if len(fg.pendingLabels) > 0 {
		mi.Labels = append(mi.Labels, fg.pendingLabels...)
		fg.pendingLabels = nil
	}
	fg.insts = append(fg.insts, mi)
	return mi
}

// emitFrame emits an SP-relative memory instruction whose displacement is a
// frame slot resolved at finalization.
func (fg *funcgen) emitFrame(op axp.Op, r axp.Reg, slot int, extra int32) *MInst {
	mi := fg.emit(axp.MemInst(op, r, axp.SP, extra))
	mi.FrameSlot = slot
	return mi
}

func (fg *funcgen) emitFrameF(op axp.Op, f axp.FReg, slot int, extra int32) *MInst {
	mi := fg.emit(axp.MemFInst(op, f, axp.SP, extra))
	mi.FrameSlot = slot
	return mi
}

func (fg *funcgen) label(l int) {
	// Attach to the next instruction emitted; record as pending.
	fg.pendingLabels = append(fg.pendingLabels, l)
}

func (fg *funcgen) allocInt(pos Pos) (axp.Reg, error) {
	if len(fg.freeInt) == 0 {
		return 0, errf(pos, "expression too complex: out of integer temporaries in %s", fg.fn.Name)
	}
	r := fg.freeInt[0]
	fg.freeInt = fg.freeInt[1:]
	fg.liveInt[r] = true
	return r, nil
}

func (fg *funcgen) allocFP(pos Pos) (axp.FReg, error) {
	if len(fg.freeFP) == 0 {
		return 0, errf(pos, "expression too complex: out of FP temporaries in %s", fg.fn.Name)
	}
	f := fg.freeFP[0]
	fg.freeFP = fg.freeFP[1:]
	fg.liveFP[f] = true
	return f, nil
}

func (fg *funcgen) free(v val) {
	if !v.owned {
		return
	}
	if v.isF {
		if fg.liveFP[v.fr] {
			delete(fg.liveFP, v.fr)
			fg.freeFP = append(fg.freeFP, v.fr)
		}
	} else {
		if fg.liveInt[v.r] {
			delete(fg.liveInt, v.r)
			fg.freeInt = append(fg.freeInt, v.r)
		}
	}
}

// ownedInt allocates an owned integer temp as a val.
func (fg *funcgen) ownedInt(pos Pos) (val, error) {
	r, err := fg.allocInt(pos)
	return val{r: r, owned: true}, err
}

func (fg *funcgen) ownedFP(pos Pos) (val, error) {
	f, err := fg.allocFP(pos)
	return val{isF: true, fr: f, owned: true}, err
}

// generate compiles the function and returns its finalized fragment.
func (fg *funcgen) generate() (*Frag, error) {
	// Assign homes to parameters.
	for _, p := range fg.fn.Params {
		fg.assignHome(p)
	}
	// Compile the body into fg.insts.
	if err := fg.genStmt(fg.fn.Body); err != nil {
		return nil, err
	}
	// Terminate with the epilogue at the return label.
	fg.label(fg.retLbl)
	body := fg.insts
	pendingRet := fg.pendingLabels
	fg.pendingLabels = nil

	return fg.finalize(body, pendingRet)
}

// assignHome places a local or parameter in a callee-saved register or a
// frame slot.
func (fg *funcgen) assignHome(v *VarDecl) {
	li := &LocalInfo{}
	v.Local = li
	if v.Type.IsArray() {
		li.AddrTaken = true
		n := int(v.ArrayLen)
		base := fg.nextSlot
		fg.nextSlot += n
		li.FrameOff = int64(base)
		return
	}
	if v.AddrTaken {
		li.AddrTaken = true
		li.FrameOff = int64(fg.newSlot())
		return
	}
	if v.Type.IsFloat() {
		if fg.fsNext < len(fpSavedPool) {
			li.InReg = true
			li.Reg = uint8(fpSavedPool[fg.fsNext])
			fg.usedFS = append(fg.usedFS, fpSavedPool[fg.fsNext])
			fg.fsNext++
			return
		}
	} else {
		if fg.sNext < len(intSavedPool) {
			li.InReg = true
			li.Reg = uint8(intSavedPool[fg.sNext])
			fg.usedS = append(fg.usedS, intSavedPool[fg.sNext])
			fg.sNext++
			return
		}
	}
	li.FrameOff = int64(fg.newSlot())
}

// finalize computes the frame layout, builds the prologue and epilogue, and
// resolves frame-slot displacements.
func (fg *funcgen) finalize(body []*MInst, retLabels []int) (*Frag, error) {
	// Frame layout: [ra][saved s][saved fs][slots...], rounded to 16.
	off := int64(0)
	raOff := int64(-1)
	if !fg.isLeaf {
		raOff = off
		off += 8
	}
	sOff := make(map[axp.Reg]int64)
	for _, r := range fg.usedS {
		sOff[r] = off
		off += 8
	}
	fsOff := make(map[axp.FReg]int64)
	for _, f := range fg.usedFS {
		fsOff[f] = off
		off += 8
	}
	slotBase := off
	off += int64(fg.nextSlot) * 8
	frameSize := (off + 15) &^ 15

	// Resolve frame-slot displacements in the body.
	for _, mi := range body {
		if mi.FrameSlot >= 0 {
			d := slotBase + int64(mi.FrameSlot)*8 + int64(mi.In.Disp)
			if d > axp.MemDispMax {
				return nil, errf(fg.fn.Pos, "frame of %s too large", fg.fn.Name)
			}
			mi.In.Disp = int32(d)
			mi.FrameSlot = -1
		}
	}

	localEntry := fg.fn.Static && fg.cg.opts.OptimizeStaticCalls

	var pro []*MInst
	pair := fg.nextPair
	fg.nextPair++
	hi := newMInst(axp.MemInst(axp.LDAH, axp.GP, axp.PV, 0))
	hi.GPD = &GPRef{PairID: pair, High: true, Anchor: AnchorEntry}
	hi.Pinned = localEntry
	lo := newMInst(axp.MemInst(axp.LDA, axp.GP, axp.GP, 0))
	lo.GPD = &GPRef{PairID: pair, Anchor: AnchorEntry}
	lo.Pinned = localEntry
	pro = append(pro, hi, lo)
	if frameSize > 0 {
		pro = append(pro, newMInst(axp.MemInst(axp.LDA, axp.SP, axp.SP, int32(-frameSize))))
	}
	if !fg.isLeaf {
		pro = append(pro, newMInst(axp.MemInst(axp.STQ, axp.RA, axp.SP, int32(raOff))))
	}
	for _, r := range fg.usedS {
		pro = append(pro, newMInst(axp.MemInst(axp.STQ, r, axp.SP, int32(sOff[r]))))
	}
	for _, f := range fg.usedFS {
		pro = append(pro, newMInst(axp.MemFInst(axp.STT, f, axp.SP, int32(fsOff[f]))))
	}
	// Move parameters to their homes.
	for i, p := range fg.fn.Params {
		li := p.Local
		switch {
		case p.Type.IsFloat() && li.InReg:
			pro = append(pro, newMInst(axp.FMov(axp.FReg(16+i), axp.FReg(li.Reg))))
		case p.Type.IsFloat():
			mi := newMInst(axp.MemFInst(axp.STT, axp.FReg(16+i), axp.SP, int32(slotBase+li.FrameOff*8)))
			pro = append(pro, mi)
		case li.InReg:
			pro = append(pro, newMInst(axp.Mov(axp.Reg(16+i), axp.Reg(li.Reg))))
		default:
			mi := newMInst(axp.MemInst(axp.STQ, axp.Reg(16+i), axp.SP, int32(slotBase+li.FrameOff*8)))
			pro = append(pro, mi)
		}
	}

	var epi []*MInst
	if !fg.isLeaf {
		epi = append(epi, newMInst(axp.MemInst(axp.LDQ, axp.RA, axp.SP, int32(raOff))))
	}
	for _, r := range fg.usedS {
		epi = append(epi, newMInst(axp.MemInst(axp.LDQ, r, axp.SP, int32(sOff[r]))))
	}
	for _, f := range fg.usedFS {
		epi = append(epi, newMInst(axp.MemFInst(axp.LDT, f, axp.SP, int32(fsOff[f]))))
	}
	if frameSize > 0 {
		epi = append(epi, newMInst(axp.MemInst(axp.LDA, axp.SP, axp.SP, int32(frameSize))))
	}
	epi = append(epi, newMInst(axp.JumpInst(axp.RET, axp.Zero, axp.RA)))
	// Attach the return label to the first epilogue instruction.
	epi[0].Labels = append(epi[0].Labels, retLabels...)

	all := make([]*MInst, 0, len(pro)+len(body)+len(epi))
	all = append(all, pro...)
	all = append(all, body...)
	all = append(all, epi...)
	return &Frag{Name: fg.name, Insts: all, LocalEntry: localEntry}, nil
}

// sortedLiveInt returns the live integer temps in fixed order.
func (fg *funcgen) sortedLiveInt() []axp.Reg {
	regs := make([]axp.Reg, 0, len(fg.liveInt))
	for r := range fg.liveInt {
		regs = append(regs, r)
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })
	return regs
}

func (fg *funcgen) sortedLiveFP() []axp.FReg {
	regs := make([]axp.FReg, 0, len(fg.liveFP))
	for f := range fg.liveFP {
		regs = append(regs, f)
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })
	return regs
}
