package axp

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses assembly text in the disassembler's syntax into
// instructions. Supported forms:
//
//	label:
//	  lda   sp, -32(sp)        ; memory format
//	  ldq   v0, 16(gp)
//	  ldt   f1, 8(sp)
//	  addq  a0, a1, v0         ; operate, register form
//	  addq  a0, #7, v0         ; operate, literal form
//	  addt  f1, f2, f3         ; floating operate
//	  beq   v0, label          ; branches take labels or numeric words
//	  br    zero, +3
//	  jsr   ra, (pv)           ; jump group
//	  ret   zero, (ra)
//	  call_pal HALT            ; or OUTPUT, OUTPUTC, RPCC, or a number
//	  nop / unop
//
// Comments start with ';' or '//'. Returns the instructions and a map from
// label to instruction index.
func Assemble(src string) ([]Inst, map[string]int, error) {
	type pending struct {
		inst  int
		label string
		line  int
	}
	var insts []Inst
	labels := make(map[string]int)
	var fixups []pending

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.Index(line, ";"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels, possibly followed by an instruction on the same line.
		for {
			i := strings.Index(line, ":")
			if i < 0 || strings.ContainsAny(line[:i], " \t,(") {
				break
			}
			name := line[:i]
			if _, dup := labels[name]; dup {
				return nil, nil, fmt.Errorf("asm: line %d: duplicate label %q", lineNo+1, name)
			}
			labels[name] = len(insts)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		in, labelRef, err := parseInst(line)
		if err != nil {
			return nil, nil, fmt.Errorf("asm: line %d: %w", lineNo+1, err)
		}
		if labelRef != "" {
			fixups = append(fixups, pending{inst: len(insts), label: labelRef, line: lineNo + 1})
		}
		insts = append(insts, in)
	}
	for _, f := range fixups {
		target, ok := labels[f.label]
		if !ok {
			return nil, nil, fmt.Errorf("asm: line %d: undefined label %q", f.line, f.label)
		}
		insts[f.inst].Disp = int32(target - (f.inst + 1))
	}
	return insts, labels, nil
}

// MustAssemble is Assemble for known-good sources; it panics on error.
func MustAssemble(src string) []Inst {
	insts, _, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return insts
}

var regByName = func() map[string]Reg {
	m := make(map[string]Reg, 40)
	for r := Reg(0); r < NumRegs; r++ {
		m[r.String()] = r
	}
	for i := 0; i < NumRegs; i++ {
		m[fmt.Sprintf("r%d", i)] = Reg(i)
	}
	return m
}()

var opByName = func() map[string]Op {
	m := make(map[string]Op, int(opMax))
	for _, op := range AllOps() {
		m[op.String()] = op
	}
	return m
}()

var palByName = map[string]uint32{
	"HALT": PalHalt, "OUTPUT": PalOutput, "OUTPUTC": PalOutputChar, "RPCC": PalCycles,
}

func parseReg(s string) (Reg, error) {
	if r, ok := regByName[strings.ToLower(strings.TrimSpace(s))]; ok {
		return r, nil
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseFReg(s string) (FReg, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if strings.HasPrefix(s, "f") {
		if n, err := strconv.Atoi(s[1:]); err == nil && n >= 0 && n < NumRegs {
			return FReg(n), nil
		}
	}
	return 0, fmt.Errorf("bad FP register %q", s)
}

func parseInt(s string) (int64, error) {
	return strconv.ParseInt(strings.TrimSpace(s), 0, 64)
}

// parseMemOperand parses "disp(reg)".
func parseMemOperand(s string) (int32, string, error) {
	s = strings.TrimSpace(s)
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, "", fmt.Errorf("bad memory operand %q", s)
	}
	disp := int64(0)
	if open > 0 {
		var err error
		disp, err = parseInt(s[:open])
		if err != nil {
			return 0, "", fmt.Errorf("bad displacement in %q", s)
		}
	}
	return int32(disp), s[open+1 : len(s)-1], nil
}

func parseInst(line string) (Inst, string, error) {
	fields := strings.SplitN(line, " ", 2)
	mnem := strings.ToLower(strings.TrimSpace(fields[0]))
	rest := ""
	if len(fields) == 2 {
		rest = strings.TrimSpace(fields[1])
	}
	switch mnem {
	case "nop":
		return Nop(), "", nil
	case "unop":
		return Unop(), "", nil
	case "call_pal":
		if fn, ok := palByName[strings.ToUpper(rest)]; ok {
			return Pal(fn), "", nil
		}
		n, err := parseInt(rest)
		if err != nil {
			return Inst{}, "", fmt.Errorf("bad PAL function %q", rest)
		}
		return Pal(uint32(n)), "", nil
	}
	op, ok := opByName[mnem]
	if !ok {
		return Inst{}, "", fmt.Errorf("unknown mnemonic %q", mnem)
	}
	args := strings.Split(rest, ",")
	for i := range args {
		args[i] = strings.TrimSpace(args[i])
	}
	switch op.Format() {
	case FormatMem, FormatMemF:
		if len(args) != 2 {
			return Inst{}, "", fmt.Errorf("%s needs 2 operands", mnem)
		}
		disp, baseName, err := parseMemOperand(args[1])
		if err != nil {
			return Inst{}, "", err
		}
		base, err := parseReg(baseName)
		if err != nil {
			return Inst{}, "", err
		}
		if op.Format() == FormatMemF {
			fa, err := parseFReg(args[0])
			if err != nil {
				return Inst{}, "", err
			}
			return MemFInst(op, fa, base, disp), "", nil
		}
		ra, err := parseReg(args[0])
		if err != nil {
			return Inst{}, "", err
		}
		return MemInst(op, ra, base, disp), "", nil
	case FormatJump:
		if len(args) != 2 {
			return Inst{}, "", fmt.Errorf("%s needs 2 operands", mnem)
		}
		ra, err := parseReg(args[0])
		if err != nil {
			return Inst{}, "", err
		}
		t := strings.TrimSuffix(strings.TrimPrefix(args[1], "("), ")")
		rb, err := parseReg(t)
		if err != nil {
			return Inst{}, "", err
		}
		return JumpInst(op, ra, rb), "", nil
	case FormatBranch, FormatBranchF:
		if len(args) != 2 {
			return Inst{}, "", fmt.Errorf("%s needs 2 operands", mnem)
		}
		target := args[1]
		var in Inst
		if op.Format() == FormatBranchF {
			fa, err := parseFReg(args[0])
			if err != nil {
				return Inst{}, "", err
			}
			in = BranchFInst(op, fa, 0)
		} else {
			ra, err := parseReg(args[0])
			if err != nil {
				return Inst{}, "", err
			}
			in = BranchInst(op, ra, 0)
		}
		if n, err := parseInt(target); err == nil {
			in.Disp = int32(n)
			return in, "", nil
		}
		return in, target, nil
	case FormatOp:
		if len(args) != 3 {
			return Inst{}, "", fmt.Errorf("%s needs 3 operands", mnem)
		}
		ra, err := parseReg(args[0])
		if err != nil {
			return Inst{}, "", err
		}
		rc, err := parseReg(args[2])
		if err != nil {
			return Inst{}, "", err
		}
		if strings.HasPrefix(args[1], "#") {
			lit, err := parseInt(args[1][1:])
			if err != nil || lit < 0 || lit > 255 {
				return Inst{}, "", fmt.Errorf("bad literal %q", args[1])
			}
			return OpLitInst(op, ra, uint8(lit), rc), "", nil
		}
		rb, err := parseReg(args[1])
		if err != nil {
			return Inst{}, "", err
		}
		return OpInst(op, ra, rb, rc), "", nil
	case FormatOpF:
		if len(args) != 3 {
			return Inst{}, "", fmt.Errorf("%s needs 3 operands", mnem)
		}
		fa, err := parseFReg(args[0])
		if err != nil {
			return Inst{}, "", err
		}
		fb, err := parseFReg(args[1])
		if err != nil {
			return Inst{}, "", err
		}
		fc, err := parseFReg(args[2])
		if err != nil {
			return Inst{}, "", err
		}
		return OpFInst(op, fa, fb, fc), "", nil
	}
	return Inst{}, "", fmt.Errorf("unsupported mnemonic %q", mnem)
}
