package axp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// canonicalize returns the form of in that Decode produces, so round-trip
// comparisons ignore don't-care fields (e.g. Rb when HasLit).
func canonicalize(in Inst) Inst {
	out := Inst{Op: in.Op}
	switch in.Op.Format() {
	case FormatMem:
		out.Ra, out.Rb, out.Disp = in.Ra&31, in.Rb&31, in.Disp
	case FormatMemF:
		out.Fa, out.Rb, out.Disp = in.Fa&31, in.Rb&31, in.Disp
	case FormatJump:
		out.Ra, out.Rb, out.Disp = in.Ra&31, in.Rb&31, in.Disp&0x3FFF
	case FormatBranch:
		out.Ra, out.Disp = in.Ra&31, in.Disp
	case FormatBranchF:
		out.Fa, out.Disp = in.Fa&31, in.Disp
	case FormatOp:
		out.Ra, out.Rc = in.Ra&31, in.Rc&31
		if in.HasLit {
			out.HasLit, out.Lit = true, in.Lit
		} else {
			out.Rb = in.Rb & 31
		}
	case FormatOpF:
		out.Fa, out.Fb, out.Fc = in.Fa&31, in.Fb&31, in.Fc&31
	case FormatPal:
		out.PalFn = in.PalFn
	}
	return out
}

func randInst(r *rand.Rand) Inst {
	ops := AllOps()
	op := ops[r.Intn(len(ops))]
	in := Inst{Op: op}
	reg := func() Reg { return Reg(r.Intn(32)) }
	freg := func() FReg { return FReg(r.Intn(32)) }
	switch op.Format() {
	case FormatMem:
		in.Ra, in.Rb = reg(), reg()
		in.Disp = int32(int16(r.Uint32()))
	case FormatMemF:
		in.Fa, in.Rb = freg(), reg()
		in.Disp = int32(int16(r.Uint32()))
	case FormatJump:
		in.Ra, in.Rb = reg(), reg()
		in.Disp = int32(r.Intn(1 << 14))
	case FormatBranch:
		in.Ra = reg()
		in.Disp = int32(r.Intn(BranchDispMax-BranchDispMin+1)) + BranchDispMin
	case FormatBranchF:
		in.Fa = freg()
		in.Disp = int32(r.Intn(BranchDispMax-BranchDispMin+1)) + BranchDispMin
	case FormatOp:
		in.Ra, in.Rc = reg(), reg()
		if r.Intn(2) == 0 {
			in.HasLit = true
			in.Lit = uint8(r.Uint32())
		} else {
			in.Rb = reg()
		}
	case FormatOpF:
		in.Fa, in.Fb, in.Fc = freg(), freg(), freg()
	case FormatPal:
		in.PalFn = r.Uint32() & 0x3FFFFFF
	}
	return in
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1994))
	for i := 0; i < 20000; i++ {
		in := randInst(r)
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("decode %v (%#08x): %v", in, w, err)
		}
		if got != canonicalize(in) {
			t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v\nword=%#08x", in, got, w)
		}
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	// testing/quick drives random words through Decode; whatever decodes
	// must re-encode to the identical word.
	f := func(w uint32) bool {
		in, err := Decode(w)
		if err != nil {
			return true // unsupported encodings are fine
		}
		w2, err := Encode(in)
		if err != nil {
			t.Logf("decoded %v from %#08x but re-encode failed: %v", in, w, err)
			return false
		}
		// The jump-group hint and PAL function are the only fields where
		// multiple encodings could collapse; we preserve them, so exact
		// equality is required.
		if w2 != w {
			t.Logf("word %#08x decoded to %v re-encoded to %#08x", w, in, w2)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50000}); err != nil {
		t.Fatal(err)
	}
}

func TestKnownEncodings(t *testing.T) {
	cases := []struct {
		in   Inst
		want uint32
	}{
		// lda sp, -32(sp): opcode 08, ra=30, rb=30, disp=0xFFE0
		{MemInst(LDA, SP, SP, -32), 0x23DEFFE0},
		// ldah gp, 1(pv): opcode 09, ra=29, rb=27, disp=1
		{MemInst(LDAH, GP, PV, 1), 0x27BB0001},
		// ldq pv, 144(gp)
		{MemInst(LDQ, PV, GP, 144), 0xA77D0090},
		// stq ra, 0(sp)
		{MemInst(STQ, RA, SP, 0), 0xB75E0000},
		// jsr ra, (pv): opcode 1A, ra=26, rb=27, fn=1
		{JumpInst(JSR, RA, PV), 0x6B5B4000},
		// ret zero, (ra): fn=2
		{JumpInst(RET, Zero, RA), 0x6BFA8000},
		// bis zero, zero, zero (nop)
		{Nop(), 0x47FF041F},
		// ldq_u zero, 0(zero) (unop)
		{Unop(), 0x2FFF0000},
		// addq a0, a1, v0
		{OpInst(ADDQ, A0, A1, V0), 0x42110400},
		// subq sp, #16, sp (literal form)
		{OpLitInst(SUBQ, SP, 16, SP), 0x43C2153E},
		// br zero, +3
		{BranchInst(BR, Zero, 3), 0xC3E00003},
		// bsr ra, -1
		{BranchInst(BSR, RA, -1), 0xD35FFFFF},
		// beq v0, +8
		{BranchInst(BEQ, V0, 8), 0xE4000008},
	}
	for _, c := range cases {
		got, err := Encode(c.in)
		if err != nil {
			t.Errorf("encode %v: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("encode %v = %#08x, want %#08x", c.in, got, c.want)
		}
	}
}

func TestEncodeRangeErrors(t *testing.T) {
	bad := []Inst{
		MemInst(LDA, V0, GP, 40000),
		MemInst(LDQ, V0, GP, -40000),
		BranchInst(BR, Zero, BranchDispMax+1),
		BranchInst(BSR, RA, BranchDispMin-1),
		{Op: CALLPAL, PalFn: 1 << 26},
		{Op: OpInvalid},
	}
	for _, in := range bad {
		if _, err := Encode(in); err == nil {
			t.Errorf("encode %+v: expected error, got none", in)
		}
	}
}

func TestDecodeUnsupported(t *testing.T) {
	bad := []uint32{
		0x1C << 26,         // unsupported opcode (FPTI group)
		0x1A<<26 | 3<<14,   // jsr_coroutine
		0x10<<26 | 0x7F<<5, // bogus INTA function
		0x10<<26 | 0x1<<13, // SBZ bits set, register form
	}
	for _, w := range bad {
		if _, err := Decode(w); err == nil {
			t.Errorf("decode %#08x: expected error, got none", w)
		}
	}
}

func TestNopPredicates(t *testing.T) {
	if !Nop().IsNop() || !Unop().IsNop() {
		t.Fatal("canonical nops not recognized")
	}
	if Mov(A0, V0).IsNop() {
		t.Fatal("mov recognized as nop")
	}
	if !MemInst(LDA, Zero, GP, 8).IsNop() {
		t.Fatal("lda zero,8(gp) should be a nop")
	}
	if MemInst(LDQ, V0, GP, 0).IsNop() {
		t.Fatal("ldq v0 is not a nop")
	}
}

func TestReadsWrites(t *testing.T) {
	cases := []struct {
		in     Inst
		writes Reg
		reads  []Reg
	}{
		{MemInst(LDQ, V0, GP, 8), V0, []Reg{GP}},
		{MemInst(STQ, RA, SP, 0), Zero, []Reg{RA, SP}},
		{MemInst(LDA, SP, SP, -32), SP, []Reg{SP}},
		{JumpInst(JSR, RA, PV), RA, []Reg{PV}},
		{BranchInst(BSR, RA, 4), RA, nil},
		{BranchInst(BEQ, V0, 4), Zero, []Reg{V0}},
		{OpInst(ADDQ, A0, A1, V0), V0, []Reg{A0, A1}},
		{OpLitInst(SLL, A0, 3, V0), V0, []Reg{A0}},
	}
	for _, c := range cases {
		if got := c.in.Writes(); got != c.writes {
			t.Errorf("%v writes %v, want %v", c.in, got, c.writes)
		}
		got := c.in.Reads()
		if len(got) != len(c.reads) {
			t.Errorf("%v reads %v, want %v", c.in, got, c.reads)
			continue
		}
		for i := range got {
			if got[i] != c.reads[i] {
				t.Errorf("%v reads %v, want %v", c.in, got, c.reads)
				break
			}
		}
	}
}

func TestSplitDisp32(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 32767, 32768, -32768, -32769,
		65536, 0x12345678, -0x12345678, 0x7FFF7FFF, -0x80008000} {
		h, l, ok := SplitDisp32(v)
		if !ok {
			t.Errorf("SplitDisp32(%#x) not ok", v)
			continue
		}
		if got := int64(h)*65536 + int64(l); got != v {
			t.Errorf("SplitDisp32(%#x) = (%d,%d) recombines to %#x", v, h, l, got)
		}
	}
	if _, _, ok := SplitDisp32(0x7FFF8000); ok {
		t.Error("SplitDisp32(0x7FFF8000) should overflow")
	}
	if _, _, ok := SplitDisp32(-0x80008001); ok {
		t.Error("SplitDisp32(-0x80008001) should overflow")
	}
}

func TestBranchDispTo(t *testing.T) {
	base := uint64(0x120001000)
	for _, delta := range []int64{-100, -1, 0, 1, 4, 1000} {
		target := uint64(int64(base) + 4 + delta*4)
		d, ok := BranchDispTo(base, target)
		if !ok || int64(d) != delta {
			t.Errorf("BranchDispTo(+%d words) = %d, %v", delta, d, ok)
		}
	}
	if _, ok := BranchDispTo(base, base+2); ok {
		t.Error("unaligned target should fail")
	}
	if _, ok := BranchDispTo(base, base+4+uint64(BranchDispMax+1)*4); ok {
		t.Error("out-of-range target should fail")
	}
}

func TestEncodeAllDecodeAll(t *testing.T) {
	prog := []Inst{
		MemInst(LDAH, GP, PV, 1),
		MemInst(LDA, GP, GP, 100),
		MemInst(LDA, SP, SP, -32),
		MemInst(STQ, RA, SP, 0),
		MemInst(LDQ, PV, GP, 144),
		JumpInst(JSR, RA, PV),
		MemInst(LDAH, GP, RA, 1),
		MemInst(LDA, GP, GP, 76),
		MemInst(LDQ, RA, SP, 0),
		MemInst(LDA, SP, SP, 32),
		JumpInst(RET, Zero, RA),
	}
	code, err := EncodeAll(prog)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeAll(code)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(prog) {
		t.Fatalf("got %d insts, want %d", len(back), len(prog))
	}
	for i := range prog {
		if back[i] != canonicalize(prog[i]) {
			t.Errorf("inst %d: got %v want %v", i, back[i], prog[i])
		}
	}
	if _, err := DecodeAll(code[:5]); err == nil {
		t.Error("DecodeAll of ragged buffer should fail")
	}
}

func TestDisassembleSmoke(t *testing.T) {
	prog := []Inst{
		BranchInst(BR, Zero, 1),
		Nop(),
		JumpInst(RET, Zero, RA),
	}
	code, err := EncodeAll(prog)
	if err != nil {
		t.Fatal(err)
	}
	out := Disassemble(code, 0x120000000, map[uint64]string{0x120000000: "entry", 0x120000008: "done"})
	for _, want := range []string{"entry:", "done:", "br", "nop", "ret", "<done>"} {
		if !contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func TestReadMasksMatchReads(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		in := randInst(r)
		wantInt, wantFP := uint64(0), uint64(0)
		for _, reg := range in.Reads() {
			if reg != Zero {
				wantInt |= 1 << (reg & 31)
			}
		}
		for _, f := range in.ReadsF() {
			if f != FZero {
				wantFP |= 1 << (f & 31)
			}
		}
		// Mask registers the same way canonicalize does.
		in2, err := Decode(MustEncode(in))
		if err != nil {
			t.Fatal(err)
		}
		gotInt, gotFP := in2.ReadMasks()
		wantInt2, wantFP2 := uint64(0), uint64(0)
		for _, reg := range in2.Reads() {
			if reg != Zero {
				wantInt2 |= 1 << reg
			}
		}
		for _, f := range in2.ReadsF() {
			if f != FZero {
				wantFP2 |= 1 << f
			}
		}
		if gotInt != wantInt2 || gotFP != wantFP2 {
			t.Fatalf("%v: masks (%#x,%#x) vs slices (%#x,%#x)", in2, gotInt, gotFP, wantInt2, wantFP2)
		}
	}
}
