// Package axp models the subset of the Alpha AXP architecture used by this
// reproduction of Srivastava & Wall's link-time address-calculation optimizer
// (PLDI 1994). It provides the register file, instruction representation,
// real 32-bit instruction encodings, and a disassembler.
//
// The subset covers the integer and floating-point operate instructions,
// memory formats, branch formats, the jump group (JMP/JSR/RET), LDA/LDAH
// address arithmetic, and CALL_PAL, which this toolchain uses for program
// observability (output and halt).
package axp

import "fmt"

// Reg is an integer register number, 0..31. Register 31 reads as zero and
// ignores writes. Floating-point registers use the separate FReg type.
type Reg uint8

// Integer register conventions under the Alpha/OSF calling standard.
const (
	V0   Reg = 0 // function value
	T0   Reg = 1 // caller-saved temporaries t0..t7 = r1..r8
	T1   Reg = 2
	T2   Reg = 3
	T3   Reg = 4
	T4   Reg = 5
	T5   Reg = 6
	T6   Reg = 7
	T7   Reg = 8
	S0   Reg = 9 // callee-saved s0..s5 = r9..r14
	S1   Reg = 10
	S2   Reg = 11
	S3   Reg = 12
	S4   Reg = 13
	S5   Reg = 14
	FP   Reg = 15 // frame pointer (s6)
	A0   Reg = 16 // argument registers a0..a5 = r16..r21
	A1   Reg = 17
	A2   Reg = 18
	A3   Reg = 19
	A4   Reg = 20
	A5   Reg = 21
	T8   Reg = 22 // caller-saved temporaries t8..t11 = r22..r25
	T9   Reg = 23
	T10  Reg = 24
	T11  Reg = 25
	RA   Reg = 26 // return address
	PV   Reg = 27 // procedure value (t12); callee entry address
	AT   Reg = 28 // assembler temporary
	GP   Reg = 29 // global pointer: addresses the current GAT
	SP   Reg = 30 // stack pointer
	Zero Reg = 31 // reads as zero; writes discarded
)

// NumRegs is the size of each register file.
const NumRegs = 32

var regNames = [NumRegs]string{
	"v0", "t0", "t1", "t2", "t3", "t4", "t5", "t6",
	"t7", "s0", "s1", "s2", "s3", "s4", "s5", "fp",
	"a0", "a1", "a2", "a3", "a4", "a5", "t8", "t9",
	"t10", "t11", "ra", "pv", "at", "gp", "sp", "zero",
}

// String returns the OSF software name of the register (e.g. "gp", "ra").
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("r%d?", uint8(r))
}

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

// FReg is a floating-point register number, 0..31. F31 reads as +0.0.
type FReg uint8

// Floating-point register conventions.
const (
	FV0   FReg = 0  // FP function value
	FA0   FReg = 16 // FP argument registers f16..f21
	FZero FReg = 31 // reads as zero
)

// String returns the conventional name of the FP register.
func (f FReg) String() string { return fmt.Sprintf("f%d", uint8(f)) }

// Valid reports whether f names an architectural FP register.
func (f FReg) Valid() bool { return f < NumRegs }
