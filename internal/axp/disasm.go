package axp

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// WordBytes is the size in bytes of one instruction.
const WordBytes = 4

// DecodeAll decodes a little-endian code image into instructions. The byte
// length must be a multiple of four.
func DecodeAll(code []byte) ([]Inst, error) {
	if len(code)%WordBytes != 0 {
		return nil, fmt.Errorf("axp: code length %d not a multiple of 4", len(code))
	}
	insts := make([]Inst, 0, len(code)/WordBytes)
	for i := 0; i < len(code); i += WordBytes {
		w := binary.LittleEndian.Uint32(code[i:])
		in, err := Decode(w)
		if err != nil {
			return nil, fmt.Errorf("at offset %#x: %w", i, err)
		}
		insts = append(insts, in)
	}
	return insts, nil
}

// EncodeAll encodes instructions into a little-endian code image.
func EncodeAll(insts []Inst) ([]byte, error) {
	code := make([]byte, len(insts)*WordBytes)
	for i, in := range insts {
		w, err := Encode(in)
		if err != nil {
			return nil, fmt.Errorf("instruction %d (%v): %w", i, in, err)
		}
		binary.LittleEndian.PutUint32(code[i*WordBytes:], w)
	}
	return code, nil
}

// Disassemble renders a code image starting at base address, one instruction
// per line, annotating branch targets with their absolute addresses.
// labels, if non-nil, maps addresses to names printed as "name:" lines.
func Disassemble(code []byte, base uint64, labels map[uint64]string) string {
	var b strings.Builder
	for i := 0; i+WordBytes <= len(code); i += WordBytes {
		addr := base + uint64(i)
		if labels != nil {
			if name, ok := labels[addr]; ok {
				fmt.Fprintf(&b, "%s:\n", name)
			}
		}
		w := binary.LittleEndian.Uint32(code[i:])
		in, err := Decode(w)
		if err != nil {
			fmt.Fprintf(&b, "  %012x:  %08x  .word\n", addr, w)
			continue
		}
		fmt.Fprintf(&b, "  %012x:  %08x  %s", addr, w, in)
		if in.Op.IsBranch() {
			target := addr + WordBytes + uint64(int64(in.Disp)*WordBytes)
			fmt.Fprintf(&b, "\t; -> %#x", target)
			if labels != nil {
				if name, ok := labels[target]; ok {
					fmt.Fprintf(&b, " <%s>", name)
				}
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// BranchTarget computes the absolute target address of a branch instruction
// located at addr.
func BranchTarget(in Inst, addr uint64) uint64 {
	return addr + WordBytes + uint64(int64(in.Disp)*WordBytes)
}

// BranchDispTo computes the word displacement for a branch at addr reaching
// target, and reports whether it fits in the 21-bit field.
func BranchDispTo(addr, target uint64) (int32, bool) {
	delta := int64(target) - int64(addr) - WordBytes
	if delta%WordBytes != 0 {
		return 0, false
	}
	d := delta / WordBytes
	if d < BranchDispMin || d > BranchDispMax {
		return 0, false
	}
	return int32(d), true
}

// SplitDisp32 splits a signed 32-bit displacement into the (high, low) pair
// used by an ldah/lda sequence: value == high*65536 + low, with both halves
// in signed 16-bit range. It reports whether the split is possible (it is for
// any value in [-0x80008000, 0x7FFF7FFF]).
func SplitDisp32(v int64) (high, low int16, ok bool) {
	l := int16(v & 0xFFFF)
	h64 := (v - int64(l)) >> 16
	if h64 < -32768 || h64 > 32767 {
		return 0, 0, false
	}
	return int16(h64), l, true
}
