package axp

import "testing"

func TestAssembleRoundTripsDisassembler(t *testing.T) {
	// Assemble a procedure, then reassemble its disassembly: the decoded
	// instruction streams must be identical.
	src := `
entry:
	ldah  gp, 8192(pv)
	lda   gp, 28576(gp)
	lda   sp, -32(sp)
	stq   ra, 0(sp)
	ldq   pv, 144(gp)
	jsr   ra, (pv)
	ldah  gp, 8192(ra)
	lda   gp, -1(gp)
	addq  v0, #7, t0
	mulq  t0, t0, t1
	cmplt t1, v0, t2
	beq   t2, done
	subq  t1, v0, v0
	br    zero, entry
done:
	ldt   f1, 8(sp)
	addt  f1, f1, f2
	cmpteq f2, f1, f3
	fbne  f3, done
	ldq   ra, 0(sp)
	lda   sp, 32(sp)
	call_pal OUTPUT
	nop
	unop
	ret   zero, (ra)
`
	insts, labels, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if labels["entry"] != 0 || labels["done"] != 14 {
		t.Fatalf("labels = %v", labels)
	}
	code, err := EncodeAll(insts)
	if err != nil {
		t.Fatal(err)
	}
	// Feed the disassembly back through the assembler.
	dis := Disassemble(code, 0, nil)
	// Strip the "addr: word" prefix from each line.
	var cleaned []byte
	for _, line := range splitLines(dis) {
		if len(line) > 26 {
			cleaned = append(cleaned, line[26:]...)
		}
		cleaned = append(cleaned, '\n')
	}
	insts2, _, err := Assemble(string(cleaned))
	if err != nil {
		t.Fatalf("reassembling disassembly: %v\n%s", err, cleaned)
	}
	if len(insts2) != len(insts) {
		t.Fatalf("got %d insts, want %d", len(insts2), len(insts))
	}
	for i := range insts {
		w1 := MustEncode(insts[i])
		w2 := MustEncode(insts2[i])
		if w1 != w2 {
			t.Errorf("inst %d: %#08x vs %#08x (%v vs %v)", i, w1, w2, insts[i], insts2[i])
		}
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func TestAssembleBranchResolution(t *testing.T) {
	insts, _, err := Assemble(`
top:	nop
	nop
	br zero, top
	beq v0, fwd
	nop
fwd:	ret zero, (ra)
`)
	if err != nil {
		t.Fatal(err)
	}
	if insts[2].Disp != -3 {
		t.Errorf("backward branch disp = %d, want -3", insts[2].Disp)
	}
	if insts[3].Disp != 1 {
		t.Errorf("forward branch disp = %d, want 1", insts[3].Disp)
	}
	// Numeric displacement form.
	insts2, _, err := Assemble("br zero, +5\nbsr ra, -2")
	if err != nil {
		t.Fatal(err)
	}
	if insts2[0].Disp != 5 || insts2[1].Disp != -2 {
		t.Errorf("numeric disps = %d, %d", insts2[0].Disp, insts2[1].Disp)
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"frobnicate v0, v0, v0",
		"addq v0, v0",
		"addq v0, #300, v0",
		"ldq v0, 8",
		"ldq v0, 8(nosuch)",
		"beq v0, nowhere",
		"ldt v0, 8(sp)",
		"dup: nop\ndup: nop",
		"call_pal WHAT",
	}
	for _, src := range bad {
		if _, _, err := Assemble(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestAssembleComments(t *testing.T) {
	insts, _, err := Assemble(`
	; full-line comment
	nop           ; trailing comment
	addq v0, v0, v0 // C++-style
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 2 {
		t.Fatalf("got %d insts, want 2", len(insts))
	}
}

func TestDisassembleAnnotations(t *testing.T) {
	// Branches get absolute-target annotations and label names.
	prog := MustAssemble(`
start:
	beq v0, start
	fbne f2, start
	bsr ra, start
	call_pal HALT
	call_pal OUTPUT
	call_pal RPCC
	call_pal 0x99
`)
	code, err := EncodeAll(prog)
	if err != nil {
		t.Fatal(err)
	}
	dis := Disassemble(code, 0x120000000, map[uint64]string{0x120000000: "start"})
	for _, want := range []string{"start:", "<start>", "; -> 0x120000000",
		"call_pal HALT", "call_pal OUTPUT", "call_pal RPCC", "call_pal 0x99"} {
		if !containsStr(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
	// An undecodable word renders as .word rather than failing.
	badWord := make([]byte, 4)
	badWord[3] = 0x70 // opcode 0x1C, unsupported
	dis2 := Disassemble(badWord, 0, nil)
	if !containsStr(dis2, ".word") {
		t.Errorf("bad word not rendered: %s", dis2)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestScheduleOrderEdges(t *testing.T) {
	if got := ScheduleOrder(nil); len(got) != 0 {
		t.Errorf("empty block: %v", got)
	}
	if got := ScheduleOrder([]Inst{Nop()}); len(got) != 1 || got[0] != 0 {
		t.Errorf("single inst: %v", got)
	}
	// A dependent chain must keep its order.
	chain := []Inst{
		MemInst(LDA, T0, Zero, 1),
		OpLitInst(ADDQ, T0, 1, T1),
		OpLitInst(ADDQ, T1, 1, T2),
	}
	order := ScheduleOrder(chain)
	pos := make([]int, 3)
	for p, idx := range order {
		pos[idx] = p
	}
	if !(pos[0] < pos[1] && pos[1] < pos[2]) {
		t.Errorf("dependence violated: %v", order)
	}
	// Stores must not reorder with loads.
	mem := []Inst{
		MemInst(STQ, T0, SP, 0),
		MemInst(LDQ, T1, SP, 8),
		MemInst(STQ, T2, SP, 16),
	}
	order2 := ScheduleOrder(mem)
	pos2 := make([]int, 3)
	for p, idx := range order2 {
		pos2[idx] = p
	}
	if !(pos2[0] < pos2[1] && pos2[1] < pos2[2]) {
		t.Errorf("memory order violated: %v", order2)
	}
}

func TestRegAndOpStrings(t *testing.T) {
	if GP.String() != "gp" || SP.String() != "sp" || Zero.String() != "zero" {
		t.Error("register names wrong")
	}
	if Reg(40).String() != "r40?" {
		t.Errorf("out-of-range reg: %s", Reg(40))
	}
	if FReg(7).String() != "f7" {
		t.Error("freg name wrong")
	}
	if !GP.Valid() || Reg(32).Valid() {
		t.Error("Valid() wrong")
	}
	if LDQ.String() != "ldq" || Op(200).String() == "ldq" {
		t.Error("op names wrong")
	}
	if !JSR.IsCall() || !BSR.IsCall() || BR.IsCall() {
		t.Error("IsCall wrong")
	}
	if !BEQ.IsCondBranch() || BR.IsCondBranch() {
		t.Error("IsCondBranch wrong")
	}
}
