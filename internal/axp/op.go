package axp

import "fmt"

// Format classifies the encoding layout of an instruction.
type Format uint8

const (
	// FormatMem is the memory format: opcode(6) ra(5) rb(5) disp(16).
	FormatMem Format = iota
	// FormatMemF is the memory format for floating loads/stores: fa in the
	// ra field.
	FormatMemF
	// FormatJump is the memory format with a function code in disp<15:14>
	// and a hint in disp<13:0> (opcode 0x1A).
	FormatJump
	// FormatBranch is the branch format: opcode(6) ra(5) disp(21).
	FormatBranch
	// FormatBranchF is the branch format with an FP register in ra.
	FormatBranchF
	// FormatOp is the integer operate format: opcode(6) ra(5) rb(5)/lit(8)
	// litflag(1) func(7) rc(5).
	FormatOp
	// FormatOpF is the floating operate format: opcode(6) fa(5) fb(5)
	// func(11) fc(5).
	FormatOpF
	// FormatPal is CALL_PAL: opcode(6) func(26).
	FormatPal
)

// Op identifies an instruction mnemonic in the supported subset.
type Op uint8

// Supported instruction mnemonics.
const (
	OpInvalid Op = iota

	// Memory-format address arithmetic and loads/stores.
	LDA  // ra <- rb + sext(disp)
	LDAH // ra <- rb + sext(disp)*65536
	LDL  // ra <- sext(mem32[rb+disp])
	LDQ  // ra <- mem64[rb+disp]
	LDQU // ldq_u: unaligned quadword load; ldq_u r31,0(r31) is UNOP
	STL  // mem32[rb+disp] <- ra
	STQ  // mem64[rb+disp] <- ra
	LDT  // fa <- mem64[rb+disp] (IEEE double)
	STT  // mem64[rb+disp] <- fa

	// Jump group (opcode 0x1A).
	JMP // ra <- pc; pc <- rb & ~3
	JSR // ra <- pc; pc <- rb & ~3
	RET // ra <- pc; pc <- rb & ~3

	// Unconditional branches.
	BR  // ra <- pc; pc += 4*disp
	BSR // ra <- pc; pc += 4*disp

	// Integer conditional branches.
	BEQ
	BNE
	BLT
	BLE
	BGE
	BGT
	BLBC // branch if low bit clear
	BLBS // branch if low bit set

	// Floating conditional branches.
	FBEQ
	FBNE
	FBLT
	FBLE
	FBGE
	FBGT

	// Integer operate: arithmetic.
	ADDL
	ADDQ
	SUBL
	SUBQ
	S4ADDQ
	S8ADDQ
	CMPEQ
	CMPLT
	CMPLE
	CMPULT
	CMPULE
	MULL
	MULQ
	UMULH

	// Integer operate: logical and shifts.
	AND
	BIC
	BIS // "or"; bis r31,r31,r31 is the canonical NOP
	ORNOT
	XOR
	EQV
	SLL
	SRL
	SRA
	CMOVEQ
	CMOVNE
	CMOVLT
	CMOVGE

	// Floating operate (IEEE T = double).
	ADDT
	SUBT
	MULT
	DIVT
	CMPTEQ
	CMPTLT
	CMPTLE
	CVTQT // integer (in FP reg) -> double
	CVTTQ // double -> integer (truncate), result in FP reg
	CPYS  // copy sign: fc <- sign(fa) | mantissa+exp(fb); cpys f,f,f is fmov

	// Transfers between register files go through memory in real Alpha
	// (pre-BWX); we model ITOFT/FTOIT-free code the same way, so no ops here.

	// PALcode.
	CALLPAL

	opMax
)

// PAL function codes used by this toolchain's runtime convention.
const (
	// PalHalt stops simulation; a0 holds the exit status.
	PalHalt = 0x0000
	// PalOutput appends the value in a0 to the program's output trace.
	PalOutput = 0x0083
	// PalOutputChar appends the low byte of a0 to the output trace as a byte.
	PalOutputChar = 0x0084
	// PalCycles reads the cycle counter into v0 (modelled RPCC).
	PalCycles = 0x0085
	// PalProfileFlag marks a profiling trap inserted by link-time
	// instrumentation (the ATOM-style use of OM's machinery): the low 25
	// bits carry the basic-block id, and the simulator counts executions
	// without touching any architectural state.
	PalProfileFlag = 1 << 25
	// PalProfileIDMask extracts the block id from a profiling trap.
	PalProfileIDMask = PalProfileFlag - 1
)

type opInfo struct {
	name   string
	format Format
	opcode uint32 // primary 6-bit opcode
	fn     uint32 // function code (operate formats, jump group)
}

var opTable = [opMax]opInfo{
	LDA:  {"lda", FormatMem, 0x08, 0},
	LDAH: {"ldah", FormatMem, 0x09, 0},
	LDL:  {"ldl", FormatMem, 0x28, 0},
	LDQ:  {"ldq", FormatMem, 0x29, 0},
	LDQU: {"ldq_u", FormatMem, 0x0B, 0},
	STL:  {"stl", FormatMem, 0x2C, 0},
	STQ:  {"stq", FormatMem, 0x2D, 0},
	LDT:  {"ldt", FormatMemF, 0x23, 0},
	STT:  {"stt", FormatMemF, 0x27, 0},

	JMP: {"jmp", FormatJump, 0x1A, 0},
	JSR: {"jsr", FormatJump, 0x1A, 1},
	RET: {"ret", FormatJump, 0x1A, 2},

	BR:  {"br", FormatBranch, 0x30, 0},
	BSR: {"bsr", FormatBranch, 0x34, 0},

	BEQ:  {"beq", FormatBranch, 0x39, 0},
	BNE:  {"bne", FormatBranch, 0x3D, 0},
	BLT:  {"blt", FormatBranch, 0x3A, 0},
	BLE:  {"ble", FormatBranch, 0x3B, 0},
	BGE:  {"bge", FormatBranch, 0x3E, 0},
	BGT:  {"bgt", FormatBranch, 0x3F, 0},
	BLBC: {"blbc", FormatBranch, 0x38, 0},
	BLBS: {"blbs", FormatBranch, 0x3C, 0},

	FBEQ: {"fbeq", FormatBranchF, 0x31, 0},
	FBNE: {"fbne", FormatBranchF, 0x35, 0},
	FBLT: {"fblt", FormatBranchF, 0x32, 0},
	FBLE: {"fble", FormatBranchF, 0x33, 0},
	FBGE: {"fbge", FormatBranchF, 0x36, 0},
	FBGT: {"fbgt", FormatBranchF, 0x37, 0},

	ADDL:   {"addl", FormatOp, 0x10, 0x00},
	ADDQ:   {"addq", FormatOp, 0x10, 0x20},
	SUBL:   {"subl", FormatOp, 0x10, 0x09},
	SUBQ:   {"subq", FormatOp, 0x10, 0x29},
	S4ADDQ: {"s4addq", FormatOp, 0x10, 0x22},
	S8ADDQ: {"s8addq", FormatOp, 0x10, 0x32},
	CMPEQ:  {"cmpeq", FormatOp, 0x10, 0x2D},
	CMPLT:  {"cmplt", FormatOp, 0x10, 0x4D},
	CMPLE:  {"cmple", FormatOp, 0x10, 0x6D},
	CMPULT: {"cmpult", FormatOp, 0x10, 0x1D},
	CMPULE: {"cmpule", FormatOp, 0x10, 0x3D},
	MULL:   {"mull", FormatOp, 0x13, 0x00},
	MULQ:   {"mulq", FormatOp, 0x13, 0x20},
	UMULH:  {"umulh", FormatOp, 0x13, 0x30},

	AND:    {"and", FormatOp, 0x11, 0x00},
	BIC:    {"bic", FormatOp, 0x11, 0x08},
	BIS:    {"bis", FormatOp, 0x11, 0x20},
	ORNOT:  {"ornot", FormatOp, 0x11, 0x28},
	XOR:    {"xor", FormatOp, 0x11, 0x40},
	EQV:    {"eqv", FormatOp, 0x11, 0x48},
	SLL:    {"sll", FormatOp, 0x12, 0x39},
	SRL:    {"srl", FormatOp, 0x12, 0x34},
	SRA:    {"sra", FormatOp, 0x12, 0x3C},
	CMOVEQ: {"cmoveq", FormatOp, 0x11, 0x24},
	CMOVNE: {"cmovne", FormatOp, 0x11, 0x26},
	CMOVLT: {"cmovlt", FormatOp, 0x11, 0x44},
	CMOVGE: {"cmovge", FormatOp, 0x11, 0x46},

	ADDT:   {"addt", FormatOpF, 0x16, 0x0A0},
	SUBT:   {"subt", FormatOpF, 0x16, 0x0A1},
	MULT:   {"mult", FormatOpF, 0x16, 0x0A2},
	DIVT:   {"divt", FormatOpF, 0x16, 0x0A3},
	CMPTEQ: {"cmpteq", FormatOpF, 0x16, 0x0A5},
	CMPTLT: {"cmptlt", FormatOpF, 0x16, 0x0A6},
	CMPTLE: {"cmptle", FormatOpF, 0x16, 0x0A7},
	CVTQT:  {"cvtqt", FormatOpF, 0x16, 0x0BE},
	CVTTQ:  {"cvttq", FormatOpF, 0x16, 0x0AF},
	CPYS:   {"cpys", FormatOpF, 0x17, 0x020},

	CALLPAL: {"call_pal", FormatPal, 0x00, 0},
}

// String returns the assembler mnemonic.
func (op Op) String() string {
	if op > OpInvalid && op < opMax {
		return opTable[op].name
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Format returns the encoding format of op.
func (op Op) Format() Format {
	return opTable[op].format
}

// Valid reports whether op is a supported mnemonic.
func (op Op) Valid() bool { return op > OpInvalid && op < opMax }

// IsBranch reports whether op is a PC-relative branch (conditional or not).
func (op Op) IsBranch() bool {
	f := opTable[op].format
	return f == FormatBranch || f == FormatBranchF
}

// IsCondBranch reports whether op is a conditional branch.
func (op Op) IsCondBranch() bool {
	return op.IsBranch() && op != BR && op != BSR
}

// IsJump reports whether op is in the jump group (JMP/JSR/RET).
func (op Op) IsJump() bool { return opTable[op].format == FormatJump }

// IsCall reports whether op transfers control while saving a return address
// used as a call (JSR or BSR).
func (op Op) IsCall() bool { return op == JSR || op == BSR }

// IsMem reports whether op is a memory-format instruction that actually
// accesses memory (loads and stores; LDA/LDAH do not).
func (op Op) IsMem() bool {
	switch op {
	case LDL, LDQ, LDQU, STL, STQ, LDT, STT:
		return true
	}
	return false
}

// IsLoad reports whether op reads memory.
func (op Op) IsLoad() bool {
	switch op {
	case LDL, LDQ, LDQU, LDT:
		return true
	}
	return false
}

// IsStore reports whether op writes memory.
func (op Op) IsStore() bool {
	switch op {
	case STL, STQ, STT:
		return true
	}
	return false
}

// AllOps returns every valid mnemonic, for table-driven tests.
func AllOps() []Op {
	ops := make([]Op, 0, int(opMax)-1)
	for op := OpInvalid + 1; op < opMax; op++ {
		ops = append(ops, op)
	}
	return ops
}
