package axp

import "fmt"

// Inst is a decoded instruction. Fields are interpreted per the op's Format:
//
//	FormatMem:     Ra, Rb (base), Disp (signed 16-bit byte displacement)
//	FormatMemF:    Fa, Rb (base), Disp
//	FormatJump:    Ra (link), Rb (target), Disp holds the 14-bit hint
//	FormatBranch:  Ra, Disp (signed 21-bit word displacement)
//	FormatBranchF: Fa, Disp
//	FormatOp:      Ra, Rb or Lit (if HasLit), Rc
//	FormatOpF:     Fa, Fb, Fc
//	FormatPal:     PalFn
type Inst struct {
	Op     Op
	Ra     Reg
	Rb     Reg
	Rc     Reg
	Fa     FReg
	Fb     FReg
	Fc     FReg
	Disp   int32 // sign-extended displacement (bytes for mem, words for branch)
	Lit    uint8 // 8-bit literal operand (operate format)
	HasLit bool
	PalFn  uint32 // 26-bit PAL function code
}

// Nop returns the canonical integer no-op, bis zero,zero,zero.
func Nop() Inst { return Inst{Op: BIS, Ra: Zero, Rb: Zero, Rc: Zero} }

// Unop returns the canonical universal no-op, ldq_u zero,0(zero), which
// issues in either pipe and touches nothing.
func Unop() Inst { return Inst{Op: LDQU, Ra: Zero, Rb: Zero} }

// IsNop reports whether the instruction has no architectural effect.
func (in Inst) IsNop() bool {
	switch in.Op {
	case BIS:
		return in.Rc == Zero
	case LDQU:
		return in.Ra == Zero
	case LDA, LDAH:
		return in.Ra == Zero
	}
	return false
}

// MemInst builds a memory-format instruction.
func MemInst(op Op, ra, rb Reg, disp int32) Inst {
	return Inst{Op: op, Ra: ra, Rb: rb, Disp: disp}
}

// MemFInst builds a floating memory-format instruction.
func MemFInst(op Op, fa FReg, rb Reg, disp int32) Inst {
	return Inst{Op: op, Fa: fa, Rb: rb, Disp: disp}
}

// OpInst builds a register-register operate instruction.
func OpInst(op Op, ra, rb, rc Reg) Inst {
	return Inst{Op: op, Ra: ra, Rb: rb, Rc: rc}
}

// OpLitInst builds an operate instruction with an 8-bit literal second operand.
func OpLitInst(op Op, ra Reg, lit uint8, rc Reg) Inst {
	return Inst{Op: op, Ra: ra, Lit: lit, HasLit: true, Rc: rc}
}

// OpFInst builds a floating operate instruction.
func OpFInst(op Op, fa, fb, fc FReg) Inst {
	return Inst{Op: op, Fa: fa, Fb: fb, Fc: fc}
}

// BranchInst builds a branch-format instruction with a word displacement.
func BranchInst(op Op, ra Reg, disp int32) Inst {
	return Inst{Op: op, Ra: ra, Disp: disp}
}

// BranchFInst builds a floating branch.
func BranchFInst(op Op, fa FReg, disp int32) Inst {
	return Inst{Op: op, Fa: fa, Disp: disp}
}

// JumpInst builds a jump-group instruction (jmp/jsr/ret).
func JumpInst(op Op, ra, rb Reg) Inst {
	return Inst{Op: op, Ra: ra, Rb: rb}
}

// Pal builds a CALL_PAL instruction.
func Pal(fn uint32) Inst { return Inst{Op: CALLPAL, PalFn: fn} }

// Mov returns bis zero,src,dst (register move).
func Mov(src, dst Reg) Inst { return OpInst(BIS, Zero, src, dst) }

// FMov returns cpys src,src,dst (FP register move).
func FMov(src, dst FReg) Inst { return OpFInst(CPYS, src, src, dst) }

// Writes returns the integer register written by the instruction, or Zero
// if none (writes to Zero are also reported as Zero).
func (in Inst) Writes() Reg {
	switch in.Op.Format() {
	case FormatMem:
		if in.Op.IsStore() {
			return Zero
		}
		return in.Ra // loads and lda/ldah
	case FormatJump:
		return in.Ra
	case FormatBranch:
		if in.Op == BR || in.Op == BSR {
			return in.Ra
		}
		return Zero
	case FormatOp:
		return in.Rc
	}
	return Zero
}

// WritesF returns the FP register written, or FZero if none.
func (in Inst) WritesF() FReg {
	switch in.Op.Format() {
	case FormatMemF:
		if in.Op == LDT {
			return in.Fa
		}
	case FormatOpF:
		return in.Fc
	}
	return FZero
}

// ReadMasks returns bitmasks of the integer and FP registers the
// instruction reads, excluding the zero registers. It allocates nothing and
// is the form the timing model and schedulers use.
func (in Inst) ReadMasks() (ints, fps uint64) {
	set := func(r Reg) {
		if r != Zero {
			ints |= 1 << r
		}
	}
	setF := func(f FReg) {
		if f != FZero {
			fps |= 1 << f
		}
	}
	switch in.Op.Format() {
	case FormatMem:
		if in.Op.IsStore() {
			set(in.Ra)
		}
		set(in.Rb)
	case FormatMemF:
		if in.Op == STT {
			setF(in.Fa)
		}
		set(in.Rb)
	case FormatJump:
		set(in.Rb)
	case FormatBranch:
		if in.Op.IsCondBranch() {
			set(in.Ra)
		}
	case FormatBranchF:
		setF(in.Fa)
	case FormatOp:
		set(in.Ra)
		if !in.HasLit {
			set(in.Rb)
		}
	case FormatOpF:
		setF(in.Fa)
		setF(in.Fb)
	}
	return ints, fps
}

// Reads returns the integer registers read by the instruction. Reads of Zero
// are included; callers that care should filter them.
func (in Inst) Reads() []Reg {
	switch in.Op.Format() {
	case FormatMem:
		if in.Op.IsStore() {
			return []Reg{in.Ra, in.Rb}
		}
		return []Reg{in.Rb}
	case FormatMemF:
		return []Reg{in.Rb}
	case FormatJump:
		return []Reg{in.Rb}
	case FormatBranch:
		if in.Op.IsCondBranch() {
			return []Reg{in.Ra}
		}
		return nil
	case FormatOp:
		if in.HasLit {
			return []Reg{in.Ra}
		}
		return []Reg{in.Ra, in.Rb}
	}
	return nil
}

// ReadsF returns the FP registers read by the instruction.
func (in Inst) ReadsF() []FReg {
	switch in.Op.Format() {
	case FormatMemF:
		if in.Op == STT {
			return []FReg{in.Fa}
		}
	case FormatBranchF:
		return []FReg{in.Fa}
	case FormatOpF:
		return []FReg{in.Fa, in.Fb}
	}
	return nil
}

// String renders the instruction in OSF assembler style.
func (in Inst) String() string {
	switch in.Op.Format() {
	case FormatMem:
		if in.IsNop() && in.Op == LDQU {
			return "unop"
		}
		if in.Op == BIS && in.Rc == Zero && in.Ra == Zero && in.Rb == Zero {
			return "nop"
		}
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Ra, in.Disp, in.Rb)
	case FormatMemF:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Fa, in.Disp, in.Rb)
	case FormatJump:
		return fmt.Sprintf("%s %s, (%s)", in.Op, in.Ra, in.Rb)
	case FormatBranch:
		if in.Op.IsCondBranch() {
			return fmt.Sprintf("%s %s, %+d", in.Op, in.Ra, in.Disp)
		}
		return fmt.Sprintf("%s %s, %+d", in.Op, in.Ra, in.Disp)
	case FormatBranchF:
		return fmt.Sprintf("%s %s, %+d", in.Op, in.Fa, in.Disp)
	case FormatOp:
		if in.IsNop() && in.Op == BIS {
			return "nop"
		}
		if in.HasLit {
			return fmt.Sprintf("%s %s, #%d, %s", in.Op, in.Ra, in.Lit, in.Rc)
		}
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Ra, in.Rb, in.Rc)
	case FormatOpF:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Fa, in.Fb, in.Fc)
	case FormatPal:
		switch in.PalFn {
		case PalHalt:
			return "call_pal HALT"
		case PalOutput:
			return "call_pal OUTPUT"
		case PalOutputChar:
			return "call_pal OUTPUTC"
		case PalCycles:
			return "call_pal RPCC"
		}
		return fmt.Sprintf("call_pal %#x", in.PalFn)
	}
	return fmt.Sprintf("?%v", in.Op)
}
