package axp

// OpLatency is the issue-to-use latency table of the modeled 21064-class
// pipeline, shared by the compile-time scheduler (internal/tcc) and OM's
// link-time rescheduler (internal/om).
func OpLatency(op Op) int {
	switch {
	case op.IsLoad():
		return 3
	case op == MULL || op == MULQ || op == UMULH:
		return 12
	case op == DIVT:
		return 30
	case op.Format() == FormatOpF:
		return 6
	}
	return 1
}

// ScheduleOrder list-schedules a straight-line block of instructions (no
// branches, no labels except at the start) and returns the new issue order
// as a permutation of indices. Dependences considered: register RAW/WAR/WAW
// in both files, and conservative memory ordering (stores are ordered with
// every other memory access; loads may reorder among themselves).
func ScheduleOrder(insts []Inst) []int {
	n := len(insts)
	order := make([]int, 0, n)
	if n == 0 {
		return order
	}
	if n == 1 {
		return append(order, 0)
	}
	type node struct {
		reads, writes   uint64
		freads, fwrites uint64
		isMem, isStore  bool
		lat             int
		succs           []int
		npreds          int
		prio            int
		ready           int
	}
	nodes := make([]node, n)
	for i, in := range insts {
		reads, freads := in.ReadMasks()
		var writes, fwrites uint64
		if w := in.Writes(); w != Zero {
			writes |= 1 << w
		}
		if fw := in.WritesF(); fw != FZero {
			fwrites |= 1 << fw
		}
		nodes[i] = node{
			reads: reads, writes: writes, freads: freads, fwrites: fwrites,
			isMem:   in.Op.IsMem(),
			isStore: in.Op.IsStore(),
			lat:     OpLatency(in.Op),
		}
	}
	for j := 1; j < n; j++ {
		for i := j - 1; i >= 0; i-- {
			ni, nj := &nodes[i], &nodes[j]
			dep := ni.writes&nj.reads != 0 ||
				ni.reads&nj.writes != 0 ||
				ni.writes&nj.writes != 0 ||
				ni.fwrites&nj.freads != 0 ||
				ni.freads&nj.fwrites != 0 ||
				ni.fwrites&nj.fwrites != 0 ||
				(ni.isMem && nj.isMem && (ni.isStore || nj.isStore))
			if dep {
				ni.succs = append(ni.succs, j)
				nj.npreds++
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		p := nodes[i].lat
		for _, s := range nodes[i].succs {
			if nodes[i].lat+nodes[s].prio > p {
				p = nodes[i].lat + nodes[s].prio
			}
		}
		nodes[i].prio = p
	}
	scheduled := make([]bool, n)
	clock := 0
	for len(order) < n {
		best := -1
		minFuture := 1 << 30
		for i := 0; i < n; i++ {
			if scheduled[i] || nodes[i].npreds > 0 {
				continue
			}
			if nodes[i].ready > clock {
				if nodes[i].ready < minFuture {
					minFuture = nodes[i].ready
				}
				continue
			}
			if best < 0 || nodes[i].prio > nodes[best].prio ||
				(nodes[i].prio == nodes[best].prio && i < best) {
				best = i
			}
		}
		if best < 0 {
			clock = minFuture
			continue
		}
		scheduled[best] = true
		order = append(order, best)
		for _, s := range nodes[best].succs {
			nodes[s].npreds--
			if t := clock + nodes[best].lat; t > nodes[s].ready {
				nodes[s].ready = t
			}
		}
		clock++
	}
	return order
}
