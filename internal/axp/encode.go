package axp

import "fmt"

// Displacement range limits.
const (
	// MemDispMin and MemDispMax bound the signed 16-bit memory displacement.
	MemDispMin = -32768
	MemDispMax = 32767
	// BranchDispMin and BranchDispMax bound the signed 21-bit word
	// displacement of the branch format.
	BranchDispMin = -(1 << 20)
	BranchDispMax = (1 << 20) - 1
)

// Encode packs the instruction into its 32-bit Alpha encoding.
func Encode(in Inst) (uint32, error) {
	if !in.Op.Valid() {
		return 0, fmt.Errorf("axp: encode: invalid op %v", in.Op)
	}
	info := opTable[in.Op]
	w := info.opcode << 26
	switch info.format {
	case FormatMem:
		if in.Disp < MemDispMin || in.Disp > MemDispMax {
			return 0, fmt.Errorf("axp: encode %v: memory displacement %d out of range", in.Op, in.Disp)
		}
		w |= uint32(in.Ra&31) << 21
		w |= uint32(in.Rb&31) << 16
		w |= uint32(uint16(in.Disp))
	case FormatMemF:
		if in.Disp < MemDispMin || in.Disp > MemDispMax {
			return 0, fmt.Errorf("axp: encode %v: memory displacement %d out of range", in.Op, in.Disp)
		}
		w |= uint32(in.Fa&31) << 21
		w |= uint32(in.Rb&31) << 16
		w |= uint32(uint16(in.Disp))
	case FormatJump:
		w |= uint32(in.Ra&31) << 21
		w |= uint32(in.Rb&31) << 16
		w |= info.fn << 14
		w |= uint32(in.Disp) & 0x3FFF // branch-prediction hint
	case FormatBranch:
		if in.Disp < BranchDispMin || in.Disp > BranchDispMax {
			return 0, fmt.Errorf("axp: encode %v: branch displacement %d out of range", in.Op, in.Disp)
		}
		w |= uint32(in.Ra&31) << 21
		w |= uint32(in.Disp) & 0x1FFFFF
	case FormatBranchF:
		if in.Disp < BranchDispMin || in.Disp > BranchDispMax {
			return 0, fmt.Errorf("axp: encode %v: branch displacement %d out of range", in.Op, in.Disp)
		}
		w |= uint32(in.Fa&31) << 21
		w |= uint32(in.Disp) & 0x1FFFFF
	case FormatOp:
		w |= uint32(in.Ra&31) << 21
		if in.HasLit {
			w |= uint32(in.Lit) << 13
			w |= 1 << 12
		} else {
			w |= uint32(in.Rb&31) << 16
		}
		w |= info.fn << 5
		w |= uint32(in.Rc & 31)
	case FormatOpF:
		w |= uint32(in.Fa&31) << 21
		w |= uint32(in.Fb&31) << 16
		w |= info.fn << 5
		w |= uint32(in.Fc & 31)
	case FormatPal:
		if in.PalFn > 0x3FFFFFF {
			return 0, fmt.Errorf("axp: encode call_pal: function %#x out of range", in.PalFn)
		}
		w |= in.PalFn
	default:
		return 0, fmt.Errorf("axp: encode %v: unknown format", in.Op)
	}
	return w, nil
}

// MustEncode is Encode but panics on error; for use on literals known valid.
func MustEncode(in Inst) uint32 {
	w, err := Encode(in)
	if err != nil {
		panic(err)
	}
	return w
}

// lookup tables from (opcode, fn) to Op, built once at init.
var (
	memOps    [64]Op        // primary opcode -> mem/memF/branch/branchF ops
	intOpFns  map[uint32]Op // (opcode<<16|fn) -> operate op
	jumpFns   [4]Op         // jump-group function -> op
	decodeErr = func(w uint32) error { return fmt.Errorf("axp: decode: unsupported word %#08x", w) }
)

func init() {
	intOpFns = make(map[uint32]Op)
	for op := OpInvalid + 1; op < opMax; op++ {
		info := opTable[op]
		switch info.format {
		case FormatMem, FormatMemF, FormatBranch, FormatBranchF:
			memOps[info.opcode] = op
		case FormatOp, FormatOpF:
			intOpFns[info.opcode<<16|info.fn] = op
		case FormatJump:
			jumpFns[info.fn] = op
		}
	}
}

// Decode unpacks a 32-bit word into an Inst. It inverts Encode for every
// supported instruction and reports an error for anything else.
func Decode(w uint32) (Inst, error) {
	opcode := w >> 26
	switch opcode {
	case 0x00: // CALL_PAL
		return Inst{Op: CALLPAL, PalFn: w & 0x3FFFFFF}, nil
	case 0x1A: // jump group
		fn := (w >> 14) & 3
		op := jumpFns[fn]
		if op == OpInvalid {
			return Inst{}, decodeErr(w)
		}
		return Inst{
			Op:   op,
			Ra:   Reg((w >> 21) & 31),
			Rb:   Reg((w >> 16) & 31),
			Disp: int32(w & 0x3FFF),
		}, nil
	case 0x10, 0x11, 0x12, 0x13: // integer operate
		fn := (w >> 5) & 0x7F
		op, ok := intOpFns[opcode<<16|fn]
		if !ok {
			return Inst{}, decodeErr(w)
		}
		in := Inst{Op: op, Ra: Reg((w >> 21) & 31), Rc: Reg(w & 31)}
		if w&(1<<12) != 0 {
			in.HasLit = true
			in.Lit = uint8((w >> 13) & 0xFF)
		} else {
			if (w>>13)&0x7 != 0 {
				return Inst{}, decodeErr(w) // SBZ bits set
			}
			in.Rb = Reg((w >> 16) & 31)
		}
		return in, nil
	case 0x16, 0x17: // floating operate
		fn := (w >> 5) & 0x7FF
		op, ok := intOpFns[opcode<<16|fn]
		if !ok {
			return Inst{}, decodeErr(w)
		}
		return Inst{
			Op: op,
			Fa: FReg((w >> 21) & 31),
			Fb: FReg((w >> 16) & 31),
			Fc: FReg(w & 31),
		}, nil
	}
	op := memOps[opcode]
	if op == OpInvalid {
		return Inst{}, decodeErr(w)
	}
	switch opTable[op].format {
	case FormatMem:
		return Inst{
			Op:   op,
			Ra:   Reg((w >> 21) & 31),
			Rb:   Reg((w >> 16) & 31),
			Disp: int32(int16(uint16(w))),
		}, nil
	case FormatMemF:
		return Inst{
			Op:   op,
			Fa:   FReg((w >> 21) & 31),
			Rb:   Reg((w >> 16) & 31),
			Disp: int32(int16(uint16(w))),
		}, nil
	case FormatBranch:
		return Inst{
			Op:   op,
			Ra:   Reg((w >> 21) & 31),
			Disp: signExtend21(w & 0x1FFFFF),
		}, nil
	case FormatBranchF:
		return Inst{
			Op:   op,
			Fa:   FReg((w >> 21) & 31),
			Disp: signExtend21(w & 0x1FFFFF),
		}, nil
	}
	return Inst{}, decodeErr(w)
}

func signExtend21(v uint32) int32 {
	return int32(v<<11) >> 11
}
