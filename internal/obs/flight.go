package obs

import "sync"

// FlightRecorder is a fixed-size ring of completed traces: the service
// records every finished job's span tree here, and operators query the
// recent ones (GET /debug/flights) to see where time went without having
// arranged anything in advance — the "flight recorder" of the black-box
// kind. When the ring is full the oldest trace is overwritten.
type FlightRecorder struct {
	mu    sync.Mutex
	ring  []*TraceDoc
	next  int    // ring slot the next Record writes
	total uint64 // traces ever recorded
}

// NewFlightRecorder builds a recorder holding the last size traces
// (<= 0 selects 128).
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = 128
	}
	return &FlightRecorder{ring: make([]*TraceDoc, size)}
}

// Record adds a completed trace, overwriting the oldest entry when full.
// Safe on a nil receiver and with a nil doc (both no-ops).
func (f *FlightRecorder) Record(d *TraceDoc) {
	if f == nil || d == nil {
		return
	}
	f.mu.Lock()
	f.ring[f.next] = d
	f.next = (f.next + 1) % len(f.ring)
	f.total++
	f.mu.Unlock()
}

// Recent returns up to n recorded traces, newest first (n <= 0 selects all
// retained). The slice is fresh; the docs are shared and read-only.
func (f *FlightRecorder) Recent(n int) []*TraceDoc {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	size := len(f.ring)
	if n <= 0 || n > size {
		n = size
	}
	var out []*TraceDoc
	for i := 1; i <= size && len(out) < n; i++ {
		d := f.ring[(f.next-i+size)%size]
		if d == nil {
			break
		}
		out = append(out, d)
	}
	return out
}

// Get returns the retained trace with the given id (nil when evicted or
// never recorded). Newest match wins if an id was recorded twice.
func (f *FlightRecorder) Get(traceID string) *TraceDoc {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	size := len(f.ring)
	for i := 1; i <= size; i++ {
		d := f.ring[(f.next-i+size)%size]
		if d == nil {
			break
		}
		if d.TraceID == traceID {
			return d
		}
	}
	return nil
}

// Total returns how many traces were ever recorded (retained or not).
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}
