package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestQuantileFromBuckets(t *testing.T) {
	var tm Timer
	// 90 fast observations and 10 slow ones: p50 must land in the fast
	// bucket's range, p99 in the slow one's.
	for i := 0; i < 90; i++ {
		tm.Observe(100 * time.Microsecond) // bucket [64µs, 128µs)
	}
	for i := 0; i < 10; i++ {
		tm.Observe(50 * time.Millisecond) // bucket [32.768ms, 65.536ms)
	}
	st := tm.Stats()
	if p50 := st.Quantile(0.50); p50 < 64*time.Microsecond || p50 >= 128*time.Microsecond {
		t.Errorf("p50 = %v, want within [64µs, 128µs)", p50)
	}
	if p99 := st.Quantile(0.99); p99 < 32*time.Millisecond || p99 > 50*time.Millisecond {
		t.Errorf("p99 = %v, want within [32ms, 50ms]", p99)
	}
	// Quantiles clamp to the observed extremes.
	if p0 := st.Quantile(0); p0 < st.Min {
		t.Errorf("Quantile(0) = %v below Min %v", p0, st.Min)
	}
	if p1 := st.Quantile(1); p1 != st.Max {
		t.Errorf("Quantile(1) = %v, want Max %v", p1, st.Max)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty TimerStats
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	var nilStats *TimerStats
	if got := nilStats.Quantile(0.5); got != 0 {
		t.Errorf("nil Quantile = %v, want 0", got)
	}
	var tm Timer
	tm.Observe(3 * time.Millisecond)
	st := tm.Stats()
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := st.Quantile(q); got != 3*time.Millisecond {
			t.Errorf("single-sample Quantile(%v) = %v, want exactly 3ms", q, got)
		}
	}
}

func TestTimerStatsBucketsExported(t *testing.T) {
	var tm Timer
	tm.Observe(3 * time.Microsecond) // bucket 2: [2µs, 4µs)
	st := tm.Stats()
	if len(st.Buckets) != 3 {
		t.Fatalf("Buckets = %v, want trailing zeros trimmed at index 2", st.Buckets)
	}
	if st.Buckets[2] != 1 {
		t.Errorf("Buckets[2] = %d, want 1", st.Buckets[2])
	}
	if got := BucketUpper(2); got != 4*time.Microsecond {
		t.Errorf("BucketUpper(2) = %v, want 4µs", got)
	}
	if got := BucketUpper(-1); got != 0 {
		t.Errorf("BucketUpper(-1) = %v, want 0", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("omd/jobs-executed").Add(7)
	r.SetGauge("runtime/goroutines", 12)
	r.Timer("omd/job").Observe(3 * time.Millisecond)
	r.Timer("omd/job").Observe(5 * time.Millisecond)

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE omd_jobs_executed_total counter",
		"omd_jobs_executed_total 7",
		"# TYPE runtime_goroutines gauge",
		"runtime_goroutines 12",
		"# TYPE omd_job_seconds histogram",
		`omd_job_seconds_bucket{le="+Inf"} 2`,
		"omd_job_seconds_count 2",
		"omd_job_seconds_sum 0.008",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q:\n%s", want, out)
		}
	}
	// 3ms and 5ms land in [2.048ms, 4.096ms) and [4.096ms, 8.192ms):
	// cumulative counts 1 then 2.
	if !strings.Contains(out, `omd_job_seconds_bucket{le="0.004096"} 1`) {
		t.Errorf("exposition lacks the 4.096ms cumulative bucket:\n%s", out)
	}
	if !strings.Contains(out, `omd_job_seconds_bucket{le="0.008192"} 2`) {
		t.Errorf("exposition lacks the 8.192ms cumulative bucket:\n%s", out)
	}
}

func TestPromNameSanitization(t *testing.T) {
	cases := map[string]string{
		"omd/job":          "omd_job",
		"stage/pass/hits":  "stage_pass_hits",
		"pool-busy-ns":     "pool_busy_ns",
		"9lives":           "_9lives",
		"already_ok":       "already_ok",
		"utilization-j8":   "utilization_j8",
		"heap.inuse.bytes": "heap_inuse_bytes",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestRegistrySnapshotWhileRecording pins the registry against torn reads:
// snapshots taken while other goroutines create metrics and record into
// them must be internally consistent and race-free (the race gate runs
// this package).
func TestRegistrySnapshotWhileRecording(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter("hot/counter").Add(1)
				r.Timer("hot/timer").Observe(time.Duration(j%1000) * time.Microsecond)
				r.SetGauge("hot/gauge", float64(j))
			}
		}(i)
	}
	for i := 0; i < 200; i++ {
		snap := r.Snapshot()
		for _, e := range snap {
			if e.Kind == "timer" && e.Timings != nil {
				var bucketed uint64
				for _, c := range e.Timings.Buckets {
					bucketed += c
				}
				if bucketed != e.Timings.Count {
					t.Fatalf("torn timer snapshot: %d bucketed of %d observed", bucketed, e.Timings.Count)
				}
			}
		}
		var b strings.Builder
		if err := WritePrometheus(&b, snap); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
