// Package obs is the pipeline's observability core: allocation-conscious
// counters, duration histograms, a named-metric registry, and a structured
// event journal with stable reason codes.
//
// Every type is nil-tolerant: methods on a nil *Counter, *Timer, or
// *Registry are no-ops (or return zero values), so instrumented code can
// thread an optional registry without branching — the same pattern
// buildcache uses for its optional cache. Hot paths that must stay
// allocation-free (the simulator run loop, the OM pass bodies) are never
// instrumented per-event; they accumulate into preallocated arrays and the
// observability layer summarizes afterwards.
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	n atomic.Uint64
}

// Add increments the counter by d. Safe on a nil receiver.
func (c *Counter) Add(d uint64) {
	if c != nil {
		c.n.Add(d)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// timerBuckets covers [1µs, ~1h) in powers of two; durations outside the
// range clamp to the first/last bucket.
const timerBuckets = 32

// Timer accumulates observed durations: count, sum, min, max, and an
// exponential histogram (bucket i holds durations in [2^i, 2^(i+1)) µs).
type Timer struct {
	mu      sync.Mutex
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	buckets [timerBuckets]uint64
}

// Observe records one duration. Safe on a nil receiver.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	t.mu.Lock()
	t.count++
	t.sum += d
	if t.count == 1 || d < t.min {
		t.min = d
	}
	if d > t.max {
		t.max = d
	}
	i := bits.Len64(uint64(d / time.Microsecond))
	if i >= timerBuckets {
		i = timerBuckets - 1
	}
	t.buckets[i]++
	t.mu.Unlock()
}

// StartSpan starts a span against the timer and returns the function that
// ends it. Usable as `defer StartSpan(t)()` or stored and called at a
// phase boundary. A nil timer yields a no-op span.
func StartSpan(t *Timer) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.Observe(time.Since(start)) }
}

// TimerStats is a timer snapshot.
type TimerStats struct {
	Count uint64        `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	Min   time.Duration `json:"min_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Stats snapshots the timer (zero value for a nil timer).
func (t *Timer) Stats() TimerStats {
	if t == nil {
		return TimerStats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return TimerStats{Count: t.count, Sum: t.sum, Min: t.min, Max: t.max}
}

// Registry is a set of named counters, timers, and gauges. Names use
// slash-separated components ("harness/compile", "om/lift"); a snapshot
// lists them sorted so output is deterministic.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	timers   map[string]*Timer
	gauges   map[string]float64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		timers:   make(map[string]*Timer),
		gauges:   make(map[string]float64),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil counter, whose Add is a no-op.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Timer returns the named timer, creating it on first use. A nil registry
// returns a nil timer, whose Observe is a no-op.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// SetGauge records a point-in-time value (a utilization, a ratio). Safe on
// a nil receiver.
func (r *Registry) SetGauge(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// SnapshotEntry is one named metric in a snapshot.
type SnapshotEntry struct {
	Name    string      `json:"name"`
	Kind    string      `json:"kind"` // "counter", "timer", or "gauge"
	Count   uint64      `json:"count,omitempty"`
	Gauge   float64     `json:"gauge,omitempty"`
	Timings *TimerStats `json:"timings,omitempty"`
}

// Snapshot returns every metric, sorted by name (timers and counters with
// the same name both appear, counter first).
func (r *Registry) Snapshot() []SnapshotEntry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	var out []SnapshotEntry
	for name, c := range r.counters {
		out = append(out, SnapshotEntry{Name: name, Kind: "counter", Count: c.Value()})
	}
	for name, t := range r.timers {
		st := t.Stats()
		out = append(out, SnapshotEntry{Name: name, Kind: "timer", Timings: &st})
	}
	for name, v := range r.gauges {
		out = append(out, SnapshotEntry{Name: name, Kind: "gauge", Gauge: v})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}
