// Package obs is the pipeline's observability core: allocation-conscious
// counters, duration histograms, a named-metric registry, and a structured
// event journal with stable reason codes.
//
// Every type is nil-tolerant: methods on a nil *Counter, *Timer, or
// *Registry are no-ops (or return zero values), so instrumented code can
// thread an optional registry without branching — the same pattern
// buildcache uses for its optional cache. Hot paths that must stay
// allocation-free (the simulator run loop, the OM pass bodies) are never
// instrumented per-event; they accumulate into preallocated arrays and the
// observability layer summarizes afterwards.
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	n atomic.Uint64
}

// Add increments the counter by d. Safe on a nil receiver.
func (c *Counter) Add(d uint64) {
	if c != nil {
		c.n.Add(d)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// timerBuckets covers [1µs, ~1h) in powers of two; durations outside the
// range clamp to the first/last bucket.
const timerBuckets = 32

// Timer accumulates observed durations: count, sum, min, max, and an
// exponential histogram (bucket i holds durations in [2^i, 2^(i+1)) µs).
type Timer struct {
	mu      sync.Mutex
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	buckets [timerBuckets]uint64
}

// Observe records one duration. Safe on a nil receiver.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	t.mu.Lock()
	t.count++
	t.sum += d
	if t.count == 1 || d < t.min {
		t.min = d
	}
	if d > t.max {
		t.max = d
	}
	i := bits.Len64(uint64(d / time.Microsecond))
	if i >= timerBuckets {
		i = timerBuckets - 1
	}
	t.buckets[i]++
	t.mu.Unlock()
}

// StartSpan starts a span against the timer and returns the function that
// ends it. Usable as `defer StartSpan(t)()` or stored and called at a
// phase boundary. A nil timer yields a no-op span.
func StartSpan(t *Timer) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.Observe(time.Since(start)) }
}

// TimerStats is a timer snapshot.
type TimerStats struct {
	Count uint64        `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	Min   time.Duration `json:"min_ns"`
	Max   time.Duration `json:"max_ns"`
	// Buckets is the exponential histogram: Buckets[i] counts observations
	// below BucketUpper(i) and at or above BucketUpper(i-1). Trailing empty
	// buckets are trimmed, so len(Buckets) <= timerBuckets.
	Buckets []uint64 `json:"buckets,omitempty"`
}

// BucketUpper is the exclusive upper duration bound of histogram bucket i
// (2^i microseconds); bucket i-1's inclusive lower bound. i < 0 returns 0.
func BucketUpper(i int) time.Duration {
	if i < 0 {
		return 0
	}
	return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
}

// Stats snapshots the timer (zero value for a nil timer).
func (t *Timer) Stats() TimerStats {
	if t == nil {
		return TimerStats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := TimerStats{Count: t.count, Sum: t.sum, Min: t.min, Max: t.max}
	last := -1
	for i, c := range t.buckets {
		if c > 0 {
			last = i
		}
	}
	if last >= 0 {
		st.Buckets = append([]uint64(nil), t.buckets[:last+1]...)
	}
	return st
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the histogram by
// linear interpolation inside the covering bucket, clamped to the observed
// [Min, Max]. With no observations it returns 0. Exponential buckets bound
// the relative error by the bucket width (a factor of two), which is plenty
// to tell a 2ms p50 from a 200ms p99.
func (ts *TimerStats) Quantile(q float64) time.Duration {
	if ts == nil || ts.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(ts.Count)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, c := range ts.Buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			lower, upper := BucketUpper(i-1), BucketUpper(i)
			frac := (rank - cum) / float64(c)
			d := lower + time.Duration(frac*float64(upper-lower))
			if d < ts.Min {
				d = ts.Min
			}
			if d > ts.Max {
				d = ts.Max
			}
			return d
		}
		cum = next
	}
	return ts.Max
}

// Registry is a set of named counters, timers, and gauges. Names use
// slash-separated components ("harness/compile", "om/lift"); a snapshot
// lists them sorted so output is deterministic.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	timers   map[string]*Timer
	gauges   map[string]float64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		timers:   make(map[string]*Timer),
		gauges:   make(map[string]float64),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil counter, whose Add is a no-op.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Timer returns the named timer, creating it on first use. A nil registry
// returns a nil timer, whose Observe is a no-op.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// SetGauge records a point-in-time value (a utilization, a ratio). Safe on
// a nil receiver.
func (r *Registry) SetGauge(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// SnapshotEntry is one named metric in a snapshot.
type SnapshotEntry struct {
	Name    string      `json:"name"`
	Kind    string      `json:"kind"` // "counter", "timer", or "gauge"
	Count   uint64      `json:"count,omitempty"`
	Gauge   float64     `json:"gauge,omitempty"`
	Timings *TimerStats `json:"timings,omitempty"`
}

// Snapshot returns every metric, sorted by name (timers and counters with
// the same name both appear, counter first).
func (r *Registry) Snapshot() []SnapshotEntry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	var out []SnapshotEntry
	for name, c := range r.counters {
		out = append(out, SnapshotEntry{Name: name, Kind: "counter", Count: c.Value()})
	}
	for name, t := range r.timers {
		st := t.Stats()
		out = append(out, SnapshotEntry{Name: name, Kind: "timer", Timings: &st})
	}
	for name, v := range r.gauges {
		out = append(out, SnapshotEntry{Name: name, Kind: "gauge", Gauge: v})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}
