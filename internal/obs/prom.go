package obs

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders snapshot entries in the Prometheus text
// exposition format (version 0.0.4): counters as counters, gauges as
// gauges, and timers as cumulative histograms in seconds. Metric names are
// the registry names with every non-alphanumeric rune mapped to '_'
// ("omd/job" -> "omd_job"); counters gain the conventional _total suffix
// and timers the _seconds base unit.
func WritePrometheus(w io.Writer, entries []SnapshotEntry) error {
	for _, e := range entries {
		name := promName(e.Name)
		switch e.Kind {
		case "counter":
			if _, err := fmt.Fprintf(w, "# TYPE %s_total counter\n%s_total %d\n", name, name, e.Count); err != nil {
				return err
			}
		case "gauge":
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", name, name, e.Gauge); err != nil {
				return err
			}
		case "timer":
			if e.Timings == nil {
				continue
			}
			if err := writePromHistogram(w, name, e.Timings); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name string, ts *TimerStats) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s_seconds histogram\n", name); err != nil {
		return err
	}
	var cum uint64
	for i, c := range ts.Buckets {
		cum += c
		if c == 0 {
			continue // the cumulative count catches up at the next non-empty bucket
		}
		le := BucketUpper(i).Seconds()
		if _, err := fmt.Fprintf(w, "%s_seconds_bucket{le=%q} %d\n", name, fmt.Sprintf("%g", le), cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_seconds_bucket{le=\"+Inf\"} %d\n%s_seconds_sum %g\n%s_seconds_count %d\n",
		name, ts.Count, name, ts.Sum.Seconds(), name, ts.Count)
	return err
}

// promName maps a registry name onto the Prometheus metric charset.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
