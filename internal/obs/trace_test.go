package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock steps a fixed amount per reading, so every span duration in a
// test is an exact, deterministic value.
type fakeClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func newFakeClock(step time.Duration) *fakeClock {
	return &fakeClock{now: time.Unix(1000, 0), step: step}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(c.step)
	return c.now
}

func TestTraceDeterministicWithInjectedClock(t *testing.T) {
	clk := newFakeClock(time.Millisecond)
	tr := NewTrace("t1", "job", time.Time{}, clk.Now)
	if tr.ID() != "t1" {
		t.Fatalf("ID() = %q", tr.ID())
	}
	root := tr.Root()

	a := root.Child("phase-a") // clock tick 2
	a.SetAttr("hit", "true")
	a.End() // tick 3 -> duration exactly 1ms
	b := root.Child("phase-b")
	c := b.Child("phase-b/inner")
	c.End()
	b.End()
	root.End()

	d := tr.Doc()
	if d.Version != TraceVersion || d.TraceID != "t1" {
		t.Fatalf("doc header = %q %q", d.Version, d.TraceID)
	}
	pa := d.Find("phase-a")
	if pa == nil {
		t.Fatal("phase-a missing from doc")
	}
	if pa.Duration != time.Millisecond {
		t.Errorf("phase-a duration = %v, want exactly 1ms", pa.Duration)
	}
	if pa.Attrs["hit"] != "true" {
		t.Errorf("phase-a attrs = %v", pa.Attrs)
	}
	if d.Find("phase-b/inner") == nil {
		t.Error("nested child missing from doc")
	}
	if d.Find("nope") != nil {
		t.Error("Find invented a span")
	}
	// Root covers all children: every tick happened inside its window.
	var sum time.Duration
	for _, c := range d.Root.Children {
		sum += c.Duration
	}
	if d.Root.Duration < sum {
		t.Errorf("root %v < sum of children %v", d.Root.Duration, sum)
	}
}

func TestSpanExplicitTimes(t *testing.T) {
	clk := newFakeClock(time.Millisecond)
	start := time.Unix(500, 0)
	tr := NewTrace("t2", "job", start, clk.Now)
	if got := tr.Root().Start(); !got.Equal(start) {
		t.Errorf("root start = %v, want %v", got, start)
	}
	sp := tr.Root().ChildAt("backdated", start.Add(time.Second))
	sp.EndAt(start.Add(3 * time.Second))
	if got := sp.Duration(); got != 2*time.Second {
		t.Errorf("backdated duration = %v, want 2s", got)
	}
	// End is idempotent: a second End must not move the close time.
	sp.End()
	if got := sp.Duration(); got != 2*time.Second {
		t.Errorf("second End moved duration to %v", got)
	}
}

func TestLiveSpanSnapshot(t *testing.T) {
	clk := newFakeClock(time.Millisecond)
	tr := NewTrace("t3", "job", time.Time{}, clk.Now)
	sp := tr.Root().Child("running")
	// Doc on a live trace reports in-progress durations, not zeros.
	d := tr.Doc()
	if got := d.Find("running").Duration; got <= 0 {
		t.Errorf("live span duration = %v, want > 0", got)
	}
	if sp.Duration() <= 0 {
		t.Error("live Duration() <= 0")
	}
}

func TestNilTraceAndSpanAreFree(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" || tr.Root() != nil || tr.Doc() != nil {
		t.Error("nil Trace methods returned non-zero values")
	}
	var sp *Span
	if allocs := testing.AllocsPerRun(100, func() {
		c := sp.Child("x")
		c.SetAttr("k", "v")
		c.End()
		_ = c.Duration()
	}); allocs != 0 {
		t.Errorf("disabled span path allocates %.0f objects per op, want 0", allocs)
	}
	if sp.Doc() != nil {
		t.Error("nil Span.Doc() != nil")
	}
	var d *TraceDoc
	if d.Find("x") != nil || d.Render() != "" {
		t.Error("nil TraceDoc methods returned non-zero values")
	}
	var sd *SpanDoc
	sd.Walk(func(*SpanDoc) { t.Error("nil SpanDoc.Walk visited a span") })
}

func TestSpanConcurrentChildren(t *testing.T) {
	tr := NewTrace("t4", "job", time.Time{}, nil)
	root := tr.Root()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				c := root.Child("c")
				c.SetAttr("k", "v")
				c.End()
			}
		}()
	}
	// Snapshot while children are still being added.
	for i := 0; i < 20; i++ {
		_ = tr.Doc()
	}
	wg.Wait()
	if got := len(tr.Doc().Root.Children); got != 400 {
		t.Errorf("have %d children, want 400", got)
	}
}

func TestTraceDocJSONRoundTrip(t *testing.T) {
	clk := newFakeClock(time.Millisecond)
	tr := NewTrace("t5", "job", time.Time{}, clk.Now)
	tr.Root().Child("child").End()
	tr.Root().End()
	data, err := json.Marshal(tr.Doc())
	if err != nil {
		t.Fatal(err)
	}
	var got TraceDoc
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.TraceID != "t5" || got.Find("child") == nil {
		t.Errorf("round trip lost data: %s", data)
	}
}

func TestRenderShowsDurationsAndPercentages(t *testing.T) {
	clk := newFakeClock(time.Millisecond)
	tr := NewTrace("t6", "job", time.Time{}, clk.Now)
	tr.Root().Child("half").End() // 1ms
	tr.Root().End()               // root: 3 ticks = 3ms
	out := tr.Doc().Render()
	if !strings.Contains(out, "trace t6") {
		t.Errorf("render lacks trace id:\n%s", out)
	}
	if !strings.Contains(out, "job") || !strings.Contains(out, "half") {
		t.Errorf("render lacks span names:\n%s", out)
	}
	if !strings.Contains(out, "100.0%") {
		t.Errorf("render lacks root percentage:\n%s", out)
	}
	if !strings.Contains(out, "1ms") {
		t.Errorf("render lacks child duration:\n%s", out)
	}
}
