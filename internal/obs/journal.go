package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// JournalSchema identifies the journal file format; bump on incompatible
// change so downstream tooling can reject files it does not understand.
const JournalSchema = "om-journal/v1"

// Event is one decision-journal entry: what happened to one candidate site
// (an address load, a call site, a GP-reset pair) and why, as a stable
// reason code downstream tooling can rely on.
type Event struct {
	// Cat is the site category: "addr", "call", or "gpreset".
	Cat string `json:"cat"`
	// Proc is the enclosing procedure's name.
	Proc string `json:"proc"`
	// Index is the instruction's index within the procedure's symbolic form.
	Index int `json:"index"`
	// Target names the symbol the site refers to (the datum loaded, the
	// callee), when known.
	Target string `json:"target,omitempty"`
	// Reason is the stable decision code (e.g. "addr:kept:out-of-gp-range").
	Reason string `json:"reason"`
	// Detail carries free-form context for kept sites (e.g. the GP delta).
	Detail string `json:"detail,omitempty"`
}

// JournalDoc is the serialized decision journal: every candidate site of
// one OM run, plus totals that let a checker prove nothing was dropped.
type JournalDoc struct {
	Schema string `json:"schema"`
	// Level is the optimization level the run used ("om-full", ...).
	Level string `json:"level,omitempty"`
	// Totals gives, per category, the number of candidate sites the program
	// contains (from om.Stats). The journal accounts for 100% of them:
	// len(events of cat) == Totals[cat], enforced by Check.
	Totals map[string]uint64 `json:"totals"`
	// Counts is the per-reason event tally (redundant with Events, present
	// so summaries don't require a full scan).
	Counts map[string]uint64 `json:"reason_counts"`
	Events []Event           `json:"events"`
}

// Recount tallies events by reason code (empty for a nil journal).
func (d *JournalDoc) Recount() map[string]uint64 {
	m := make(map[string]uint64)
	if d == nil {
		return m
	}
	for _, e := range d.Events {
		m[e.Reason]++
	}
	return m
}

// Check verifies the journal's internal accounting: every category's event
// count equals its declared total (no candidate site missing from the
// journal) and the stored reason counts match the events.
func (d *JournalDoc) Check() error {
	if d == nil {
		return fmt.Errorf("journal: no document")
	}
	if d.Schema != JournalSchema {
		return fmt.Errorf("journal: schema %q, want %q", d.Schema, JournalSchema)
	}
	byCat := make(map[string]uint64)
	for _, e := range d.Events {
		byCat[e.Cat]++
	}
	for cat, want := range d.Totals {
		if got := byCat[cat]; got != want {
			return fmt.Errorf("journal: %s events %d, want %d (sites unaccounted for)", cat, got, want)
		}
	}
	for cat, got := range byCat {
		if _, ok := d.Totals[cat]; !ok {
			return fmt.Errorf("journal: %d %s events but no declared total", got, cat)
		}
	}
	counts := d.Recount()
	if len(counts) != len(d.Counts) {
		return fmt.Errorf("journal: %d distinct reasons in events, %d in reason_counts", len(counts), len(d.Counts))
	}
	for reason, n := range counts {
		if d.Counts[reason] != n {
			return fmt.Errorf("journal: reason %s: %d events, reason_counts says %d", reason, n, d.Counts[reason])
		}
	}
	return nil
}

// Reasons returns the journal's reason codes sorted by descending count
// (ties by name) for stable summaries (nil for a nil journal).
func (d *JournalDoc) Reasons() []string {
	if d == nil {
		return nil
	}
	reasons := make([]string, 0, len(d.Counts))
	for r := range d.Counts {
		reasons = append(reasons, r)
	}
	sort.Slice(reasons, func(i, j int) bool {
		if d.Counts[reasons[i]] != d.Counts[reasons[j]] {
			return d.Counts[reasons[i]] > d.Counts[reasons[j]]
		}
		return reasons[i] < reasons[j]
	})
	return reasons
}

// WriteJournal serializes the journal as indented JSON (the same style as
// the repo's BENCH_*.json records).
func WriteJournal(w io.Writer, d *JournalDoc) error {
	data, err := json.MarshalIndent(d, "", "\t")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ReadJournal parses a journal written by WriteJournal.
func ReadJournal(r io.Reader) (*JournalDoc, error) {
	var d JournalDoc
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &d, nil
}
