package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(3)
	c.Add(4)
	if got := c.Value(); got != 7 {
		t.Errorf("Value() = %d, want 7", got)
	}
}

func TestNilReceiversAreNoOps(t *testing.T) {
	var c *Counter
	c.Add(1) // must not panic
	if got := c.Value(); got != 0 {
		t.Errorf("nil Counter.Value() = %d, want 0", got)
	}
	var tm *Timer
	tm.Observe(time.Second)
	if st := tm.Stats(); st.Count != 0 {
		t.Errorf("nil Timer.Stats().Count = %d, want 0", st.Count)
	}
	StartSpan(nil)() // no-op span
	var r *Registry
	if r.Counter("x") != nil {
		t.Error("nil Registry.Counter() != nil")
	}
	if r.Timer("x") != nil {
		t.Error("nil Registry.Timer() != nil")
	}
	r.SetGauge("x", 1)
	if r.Snapshot() != nil {
		t.Error("nil Registry.Snapshot() != nil")
	}
}

func TestTimerStats(t *testing.T) {
	var tm Timer
	tm.Observe(2 * time.Millisecond)
	tm.Observe(5 * time.Millisecond)
	tm.Observe(1 * time.Millisecond)
	tm.Observe(-time.Second) // clamps to 0
	st := tm.Stats()
	if st.Count != 4 {
		t.Errorf("Count = %d, want 4", st.Count)
	}
	if st.Sum != 8*time.Millisecond {
		t.Errorf("Sum = %v, want 8ms", st.Sum)
	}
	if st.Min != 0 {
		t.Errorf("Min = %v, want 0", st.Min)
	}
	if st.Max != 5*time.Millisecond {
		t.Errorf("Max = %v, want 5ms", st.Max)
	}
}

func TestTimerConcurrent(t *testing.T) {
	var tm Timer
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tm.Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if st := tm.Stats(); st.Count != 800 {
		t.Errorf("Count = %d, want 800", st.Count)
	}
}

func TestStartSpan(t *testing.T) {
	var tm Timer
	end := StartSpan(&tm)
	end()
	if st := tm.Stats(); st.Count != 1 {
		t.Errorf("span did not record: Count = %d", st.Count)
	}
}

func TestRegistrySnapshotDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b/count").Add(2)
	r.Counter("a/count").Add(1)
	r.Timer("a/time").Observe(time.Millisecond)
	r.SetGauge("c/util", 0.5)
	// Same name twice returns the same instance.
	r.Counter("a/count").Add(1)
	snap := r.Snapshot()
	var names []string
	for _, e := range snap {
		names = append(names, e.Name+":"+e.Kind)
	}
	want := "a/count:counter a/time:timer b/count:counter c/util:gauge"
	if got := strings.Join(names, " "); got != want {
		t.Errorf("snapshot order = %q, want %q", got, want)
	}
	if snap[0].Count != 2 {
		t.Errorf("a/count = %d, want 2", snap[0].Count)
	}
	if snap[3].Gauge != 0.5 {
		t.Errorf("c/util = %v, want 0.5", snap[3].Gauge)
	}
}

func testDoc() *JournalDoc {
	d := &JournalDoc{
		Schema: JournalSchema,
		Level:  "om-full",
		Totals: map[string]uint64{"addr": 2, "call": 1},
		Events: []Event{
			{Cat: "addr", Proc: "main", Index: 0, Reason: "addr:converted-lda"},
			{Cat: "addr", Proc: "main", Index: 4, Reason: "addr:kept:out-of-gp-range", Detail: "gp+0x10000"},
			{Cat: "call", Proc: "main", Index: 2, Target: "f", Reason: "call:converted-bsr"},
		},
	}
	d.Counts = d.Recount()
	return d
}

func TestJournalCheck(t *testing.T) {
	if err := testDoc().Check(); err != nil {
		t.Fatalf("Check() on consistent doc: %v", err)
	}

	d := testDoc()
	d.Schema = "bogus/v0"
	if err := d.Check(); err == nil {
		t.Error("Check() accepted wrong schema")
	}

	d = testDoc()
	d.Totals["addr"] = 3 // one addr site unaccounted for
	if err := d.Check(); err == nil {
		t.Error("Check() accepted missing events")
	}

	d = testDoc()
	d.Events = append(d.Events, Event{Cat: "gpreset", Reason: "gpreset:other"})
	if err := d.Check(); err == nil {
		t.Error("Check() accepted events with no declared total")
	}

	d = testDoc()
	d.Counts["addr:converted-lda"] = 9
	if err := d.Check(); err == nil {
		t.Error("Check() accepted stale reason_counts")
	}
}

func TestJournalReasons(t *testing.T) {
	d := &JournalDoc{Counts: map[string]uint64{"b": 2, "a": 2, "c": 5}}
	got := strings.Join(d.Reasons(), " ")
	if want := "c a b"; got != want {
		t.Errorf("Reasons() = %q, want %q", got, want)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	d := testDoc()
	var buf bytes.Buffer
	if err := WriteJournal(&buf, d); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(buf.Bytes(), []byte("\n")) {
		t.Error("WriteJournal output lacks trailing newline")
	}
	got, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Check(); err != nil {
		t.Errorf("round-tripped doc fails Check: %v", err)
	}
	if len(got.Events) != len(d.Events) || got.Level != d.Level {
		t.Errorf("round trip lost data: %+v", got)
	}
}
