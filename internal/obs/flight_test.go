package obs

import (
	"fmt"
	"sync"
	"testing"
)

func flightDoc(id string) *TraceDoc {
	return &TraceDoc{Version: TraceVersion, TraceID: id, Root: &SpanDoc{Name: "job"}}
}

func TestFlightRecorderRingWraparound(t *testing.T) {
	f := NewFlightRecorder(3)
	for i := 0; i < 5; i++ {
		f.Record(flightDoc(fmt.Sprintf("t%d", i)))
	}
	if got := f.Total(); got != 5 {
		t.Errorf("Total() = %d, want 5", got)
	}
	recent := f.Recent(0)
	if len(recent) != 3 {
		t.Fatalf("retained %d traces, want 3", len(recent))
	}
	// Newest first; the two oldest were overwritten.
	for i, want := range []string{"t4", "t3", "t2"} {
		if recent[i].TraceID != want {
			t.Errorf("recent[%d] = %s, want %s", i, recent[i].TraceID, want)
		}
	}
	if f.Get("t0") != nil || f.Get("t1") != nil {
		t.Error("evicted traces still retrievable")
	}
	if d := f.Get("t3"); d == nil || d.TraceID != "t3" {
		t.Errorf("Get(t3) = %v", d)
	}
	if got := f.Recent(2); len(got) != 2 || got[0].TraceID != "t4" {
		t.Errorf("Recent(2) = %d entries starting %s", len(got), got[0].TraceID)
	}
}

func TestFlightRecorderPartialFill(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Record(flightDoc("a"))
	f.Record(flightDoc("b"))
	recent := f.Recent(0)
	if len(recent) != 2 || recent[0].TraceID != "b" || recent[1].TraceID != "a" {
		t.Errorf("Recent on a partially filled ring = %v", recent)
	}
	if f.Get("a") == nil {
		t.Error("Get missed a retained trace")
	}
}

func TestFlightRecorderNilSafety(t *testing.T) {
	var f *FlightRecorder
	f.Record(flightDoc("x"))
	if f.Recent(0) != nil || f.Get("x") != nil || f.Total() != 0 {
		t.Error("nil FlightRecorder methods returned non-zero values")
	}
	nf := NewFlightRecorder(0)
	nf.Record(nil) // ignored, not stored as a nil hole
	if got := nf.Recent(0); len(got) != 0 {
		t.Errorf("nil doc was recorded: %v", got)
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(16)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				f.Record(flightDoc(fmt.Sprintf("g%d-%d", i, j)))
				_ = f.Recent(4)
				_ = f.Get("g0-0")
			}
		}(i)
	}
	wg.Wait()
	if got := f.Total(); got != 800 {
		t.Errorf("Total() = %d, want 800", got)
	}
	if got := len(f.Recent(0)); got != 16 {
		t.Errorf("retained %d, want a full ring of 16", got)
	}
}
