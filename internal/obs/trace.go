package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// TraceVersion tags the serialized span-tree format.
const TraceVersion = "om-trace/v1"

// Trace is one request's span tree: a root span covering the whole
// lifecycle, with nested children marking each phase. The clock is
// injectable so tests observe exact, deterministic durations; production
// code passes nil and gets time.Now.
//
// Like the rest of this package, tracing is nil-tolerant end to end: every
// method on a nil *Trace or nil *Span is a no-op that allocates nothing, so
// instrumented code threads an optional span without branching and a
// disabled trace costs zero — the warm-replay allocation pins rely on it.
type Trace struct {
	id    string
	clock func() time.Time
	root  *Span
}

// NewTrace starts a trace. The root span begins at start (zero selects the
// clock's now); a nil clock selects time.Now.
func NewTrace(id, rootName string, start time.Time, clock func() time.Time) *Trace {
	if clock == nil {
		clock = time.Now
	}
	if start.IsZero() {
		start = clock()
	}
	t := &Trace{id: id, clock: clock}
	t.root = &Span{clock: clock, name: rootName, start: start}
	return t
}

// ID returns the trace id ("" for a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root returns the root span (nil for a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Doc snapshots the whole trace. Safe to call while spans are still being
// added or ended: unended spans report their duration as of the snapshot.
func (t *Trace) Doc() *TraceDoc {
	if t == nil {
		return nil
	}
	return &TraceDoc{Version: TraceVersion, TraceID: t.id, Root: t.root.Doc()}
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed phase. Spans are created started and end exactly once;
// children may be added concurrently (the job lifecycle crosses the
// admission goroutine and the worker goroutine).
type Span struct {
	clock func() time.Time
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time
	attrs    []Attr
	children []*Span
}

// Child starts a new child span now. A nil receiver returns nil without
// allocating, which is what makes a disabled trace free.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.ChildAt(name, s.clock())
}

// ChildAt starts a new child span at an explicit time (backdating a phase
// that began before the span tree existed, e.g. request decode before
// admission assigned the trace).
func (s *Span) ChildAt(name string, start time.Time) *Span {
	if s == nil {
		return nil
	}
	c := &Span{clock: s.clock, name: name, start: start}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span now. Idempotent: the first End wins.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.EndAt(s.clock())
}

// EndAt closes the span at an explicit time. Idempotent.
func (s *Span) EndAt(t time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = t
	}
	s.mu.Unlock()
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Start returns the span's start time (zero for nil).
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Duration returns end-start for an ended span, and the duration as of now
// for a live one (0 for nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	end := s.end
	s.mu.Unlock()
	if end.IsZero() {
		end = s.clock()
	}
	return end.Sub(s.start)
}

// Doc snapshots the span and its subtree (nil for a nil span).
func (s *Span) Doc() *SpanDoc {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	end := s.end
	attrs := s.attrs
	children := s.children
	s.mu.Unlock()
	if end.IsZero() {
		end = s.clock()
	}
	d := &SpanDoc{Name: s.name, Start: s.start, Duration: end.Sub(s.start)}
	if len(attrs) > 0 {
		d.Attrs = make(map[string]string, len(attrs))
		for _, a := range attrs {
			d.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range children {
		d.Children = append(d.Children, c.Doc())
	}
	return d
}

// TraceDoc is the serializable form of a completed (or snapshotted) trace.
type TraceDoc struct {
	Version string   `json:"version"`
	TraceID string   `json:"trace_id"`
	Root    *SpanDoc `json:"root"`
}

// SpanDoc is one span in a TraceDoc.
type SpanDoc struct {
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"duration_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*SpanDoc        `json:"children,omitempty"`
}

// Find returns the first span named name in a depth-first walk (nil when
// absent).
func (d *TraceDoc) Find(name string) *SpanDoc {
	if d == nil {
		return nil
	}
	return d.Root.Find(name)
}

// Find returns the first span named name in the subtree rooted here,
// including the receiver itself (nil when absent).
func (d *SpanDoc) Find(name string) *SpanDoc {
	if d == nil {
		return nil
	}
	if d.Name == name {
		return d
	}
	for _, c := range d.Children {
		if f := c.Find(name); f != nil {
			return f
		}
	}
	return nil
}

// Walk visits every span of the subtree depth-first, receiver first.
func (d *SpanDoc) Walk(fn func(*SpanDoc)) {
	if d == nil {
		return
	}
	fn(d)
	for _, c := range d.Children {
		c.Walk(fn)
	}
}

// Render formats the trace as an indented tree, one span per line with its
// duration and share of the root — the form omctl trace prints and the
// slow-job log embeds.
func (d *TraceDoc) Render() string {
	if d == nil || d.Root == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s\n", d.TraceID)
	total := d.Root.Duration
	var walk func(sp *SpanDoc, depth int)
	walk = func(sp *SpanDoc, depth int) {
		pct := 100.0
		if total > 0 {
			pct = 100 * float64(sp.Duration) / float64(total)
		}
		fmt.Fprintf(&b, "%s%-*s %12v %5.1f%%", strings.Repeat("  ", depth),
			32-2*depth, sp.Name, sp.Duration.Round(time.Microsecond), pct)
		if len(sp.Attrs) > 0 {
			keys := make([]string, 0, len(sp.Attrs))
			for k := range sp.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, " %s=%s", k, sp.Attrs[k])
			}
		}
		b.WriteByte('\n')
		for _, c := range sp.Children {
			walk(c, depth+1)
		}
	}
	walk(d.Root, 0)
	return b.String()
}
