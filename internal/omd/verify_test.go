package omd_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/om"
	"repro/internal/omd"
	"repro/internal/verify"
)

// TestVerifyJob: a job submitted with verify gets its image
// translation-validated, the verdict totals land in the status and the
// counters, the om-verify/v1 document is served at /jobs/{id}/verify, and
// the job's trace carries the verify span.
func TestVerifyJob(t *testing.T) {
	s := newTestServer(t, omd.Config{Workers: 2, QueueDepth: 8})
	c := startHTTP(t, s)
	ctx := context.Background()

	st, err := c.SubmitWait(ctx, &omd.JobSpec{
		Version: omd.SpecVersion, Benchmark: "li", Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != omd.JobDone {
		t.Fatalf("state %s (%s)", st.State, st.Error)
	}
	if !st.Verified {
		t.Fatal("verified job status does not say so")
	}
	if st.VerifyChecked == 0 {
		t.Fatal("verification checked nothing")
	}
	if st.VerifyFailed != 0 {
		t.Fatalf("%d verdicts failed on a done job", st.VerifyFailed)
	}
	if st.JournalEvents != 0 {
		t.Errorf("journal leaked to a client that did not request a trace (%d events)", st.JournalEvents)
	}

	raw, err := c.Verify(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := verify.Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.Check(); err != nil {
		t.Fatalf("served verdict document is inconsistent: %v", err)
	}
	if doc.Checked != st.VerifyChecked || doc.Failed != st.VerifyFailed {
		t.Fatalf("status totals (%d/%d) disagree with the document (%d/%d)",
			st.VerifyChecked, st.VerifyFailed, doc.Checked, doc.Failed)
	}

	tr, err := c.Trace(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	vs := tr.Find("verify")
	if vs == nil {
		t.Fatal("job trace has no verify span")
	}
	if vs.Attrs["mode"] != "explicit" || vs.Attrs["outcome"] != "ok" {
		t.Fatalf("verify span attrs: %v", vs.Attrs)
	}

	snap, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counter("omd/verify-runs") == 0 {
		t.Error("omd/verify-runs not counted")
	}
	if snap.Counter("omd/verify-checked") == 0 {
		t.Error("omd/verify-checked not counted")
	}
	if n := snap.Counter("omd/verify-failed"); n != 0 {
		t.Errorf("omd/verify-failed = %d on a clean run", n)
	}

	// A repeat submission is a memo hit and keeps the verdicts.
	st2, err := c.SubmitWait(ctx, &omd.JobSpec{
		Version: omd.SpecVersion, Benchmark: "li", Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st2.MemoHit || !st2.Verified || st2.VerifyChecked != st.VerifyChecked {
		t.Fatalf("memoized verify job lost its verdicts: %+v", st2)
	}
}

// TestVerifyKeyDistinct: verification changes what a job proves, so a
// verified and an unverified submission of the same inputs must not share a
// coalescing key (a memoized unverified result must never answer a verify
// request).
func TestVerifyKeyDistinct(t *testing.T) {
	s := newTestServer(t, omd.Config{Workers: 2, QueueDepth: 8})
	c := startHTTP(t, s)
	ctx := context.Background()

	plain, err := c.SubmitWait(ctx, &omd.JobSpec{Version: omd.SpecVersion, Benchmark: "compress"})
	if err != nil {
		t.Fatal(err)
	}
	verified, err := c.SubmitWait(ctx, &omd.JobSpec{Version: omd.SpecVersion, Benchmark: "compress", Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Key == verified.Key {
		t.Fatal("verify flag does not enter the coalescing key")
	}
	if verified.MemoHit {
		t.Fatal("verify job answered from an unverified memo entry")
	}
	if plain.Verified {
		t.Fatal("unverified job claims verdicts")
	}
}

// TestShadowVerifySample: with VerifySample=1 every fresh execution is
// shadow-verified — the job itself is untouched (done, not failed), the
// verdict totals surface in its status, and the counters move.
func TestShadowVerifySample(t *testing.T) {
	s := newTestServer(t, omd.Config{Workers: 2, QueueDepth: 8, VerifySample: 1})
	c := startHTTP(t, s)
	ctx := context.Background()

	st, err := c.SubmitWait(ctx, &omd.JobSpec{Version: omd.SpecVersion, Benchmark: "li"})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != omd.JobDone {
		t.Fatalf("state %s (%s)", st.State, st.Error)
	}
	if !st.Verified || st.VerifyChecked == 0 {
		t.Fatalf("sampled execution was not shadow-verified: %+v", st)
	}
	tr, err := c.Trace(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	vs := tr.Find("verify")
	if vs == nil {
		t.Fatal("shadow-verified job trace has no verify span")
	}
	if vs.Attrs["mode"] != "shadow" {
		t.Fatalf("verify span mode %q, want shadow", vs.Attrs["mode"])
	}
	snap, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counter("omd/verify-runs") == 0 {
		t.Error("shadow verification not counted")
	}
	if n := snap.Counter("omd/verify-shadow-failures"); n != 0 {
		t.Errorf("%d shadow failures on a clean run", n)
	}
}

// TestVerifyCatchesBrokenPass: the service-level half of the acceptance
// criterion — with a deliberately-broken OM pass injected, an explicit
// verify job fails with a verification error, while a shadow-sampled job
// still completes (and the failure is counted).
func TestVerifyCatchesBrokenPass(t *testing.T) {
	restore := om.SetFaultHookForTesting(func(pg *om.Prog) {
		for _, pr := range pg.Procs {
			for _, si := range pr.Insts {
				if si.Lit != nil && !si.Lit.Converted && !si.Lit.Nullified && !si.Deleted {
					si.Deleted = true
					return
				}
			}
		}
	})
	defer restore()

	s := newTestServer(t, omd.Config{Workers: 1, QueueDepth: 8, VerifySample: 1})
	c := startHTTP(t, s)
	ctx := context.Background()

	st, err := c.SubmitWait(ctx, &omd.JobSpec{
		Version: omd.SpecVersion, Benchmark: "li", Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != omd.JobFailed {
		t.Fatalf("broken pass not caught: state %s", st.State)
	}
	if !strings.Contains(st.Error, "verification failed") {
		t.Fatalf("failure is not a verification error: %s", st.Error)
	}

	// The same damage under shadow sampling (li again — its key differs
	// from the explicit job's, so this is a fresh execution, and the fault
	// hook provably bites on li): job succeeds, failure counted.
	st2, err := c.SubmitWait(ctx, &omd.JobSpec{
		Version: omd.SpecVersion, Benchmark: "li",
	})
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != omd.JobDone {
		t.Fatalf("shadow verification failed the job: %s (%s)", st2.State, st2.Error)
	}
	if st2.Verified {
		t.Fatal("failed shadow check still attached verdicts")
	}
	snap, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counter("omd/verify-shadow-failures") == 0 {
		t.Error("shadow failure not counted")
	}
	if snap.Counter("omd/verify-failed") == 0 {
		t.Error("failed verdicts not counted")
	}
}
