package omd_test

import (
	"bufio"
	"bytes"
	"context"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/buildcache"
	"repro/internal/obs"
	"repro/internal/om"
	"repro/internal/omd"
)

// lifecyclePhases are the spans every fresh (uncached, unmemoized) link job
// must record, in the server's own execution order.
var lifecyclePhases = []string{
	"admission", "queue-wait", "execute",
	"program-cache", "compile", "merge",
	"om", "om/lift", "om/passes", "om/emit",
}

// TestJobTraceLifecycle is the acceptance test for the tentpole: a fresh
// job's trace contains every lifecycle phase with coherent durations, the
// root span covers its children, and the client-assigned trace id survives
// the round trip into status, trace, and flight recorder.
func TestJobTraceLifecycle(t *testing.T) {
	s := newTestServer(t, omd.Config{Workers: 2, QueueDepth: 8})
	c := startHTTP(t, s)
	ctx := context.Background()

	st, err := c.SubmitTraced(ctx, &omd.JobSpec{Version: omd.SpecVersion, Benchmark: "li"}, "trace-abc123", true)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != omd.JobDone {
		t.Fatalf("job state = %s, want done (%s)", st.State, st.Error)
	}
	if st.TraceID != "trace-abc123" {
		t.Fatalf("TraceID = %q, want the submitted header value", st.TraceID)
	}
	if st.QueueWait < 0 || st.Exec <= 0 {
		t.Errorf("status durations queue_wait=%v exec=%v, want >= 0 and > 0", st.QueueWait, st.Exec)
	}

	doc, err := c.Trace(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Version != obs.TraceVersion {
		t.Errorf("trace version = %q, want %q", doc.Version, obs.TraceVersion)
	}
	if doc.TraceID != "trace-abc123" {
		t.Errorf("trace doc id = %q, want trace-abc123", doc.TraceID)
	}
	for _, phase := range lifecyclePhases {
		sp := doc.Find(phase)
		if sp == nil {
			t.Fatalf("trace lacks phase %q:\n%s", phase, doc.Render())
		}
		if sp.Duration < 0 {
			t.Errorf("phase %q duration = %v, want >= 0", phase, sp.Duration)
		}
	}
	for _, phase := range []string{"execute", "om", "om/lift"} {
		if doc.Find(phase).Duration <= 0 {
			t.Errorf("phase %q duration is zero, want > 0:\n%s", phase, doc.Render())
		}
	}
	// The root must cover its direct children: admission + queue-wait +
	// execute are sequential phases of one job.
	var sum time.Duration
	for _, child := range doc.Root.Children {
		sum += child.Duration
	}
	if doc.Root.Duration < sum {
		t.Errorf("root %v < sum of children %v:\n%s", doc.Root.Duration, sum, doc.Render())
	}

	// The completed trace is also in the flight recorder.
	flights, err := c.Flights(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range flights {
		if f.TraceID == "trace-abc123" {
			found = true
		}
	}
	if !found {
		t.Errorf("completed trace missing from /debug/flights (%d entries)", len(flights))
	}
}

// TestTraceWarmPaths: a memo-hit submission still yields a complete (tiny)
// trace, and an image-cache-served re-link on a fresh server records the
// short-circuit: image-cache hit, no om span.
func TestTraceWarmPaths(t *testing.T) {
	cache, err := buildcache.New("")
	if err != nil {
		t.Fatal(err)
	}
	spec := &omd.JobSpec{Version: omd.SpecVersion, Benchmark: "li"}
	ctx := context.Background()

	s1 := newTestServer(t, omd.Config{Workers: 1, QueueDepth: 8, Cache: cache})
	c1 := startHTTP(t, s1)
	first, err := c1.SubmitWait(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Same server, same spec: completed-result memo hit.
	memoSt, err := c1.SubmitWait(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !memoSt.MemoHit {
		t.Fatalf("second submission not a memo hit")
	}
	if memoSt.TraceID == first.TraceID || memoSt.TraceID == "" {
		t.Errorf("server-assigned trace ids collide across jobs: %q", memoSt.TraceID)
	}
	memoDoc, err := c1.Trace(ctx, memoSt.ID)
	if err != nil {
		t.Fatal(err)
	}
	adm := memoDoc.Find("admission")
	if adm == nil || adm.Attrs["outcome"] != "memo-hit" {
		t.Errorf("memo-hit trace lacks admission outcome:\n%s", memoDoc.Render())
	}
	if memoDoc.Find("execute") != nil {
		t.Errorf("memo-hit trace claims an execution:\n%s", memoDoc.Render())
	}
	var memoSum time.Duration
	for _, child := range memoDoc.Root.Children {
		memoSum += child.Duration
	}
	if memoDoc.Root.Duration < memoSum {
		t.Errorf("memo-hit root %v < sum of children %v:\n%s",
			memoDoc.Root.Duration, memoSum, memoDoc.Render())
	}

	// Fresh server, shared build cache: the image is served from the cache
	// and the trace shows exactly that.
	s2 := newTestServer(t, omd.Config{Workers: 1, QueueDepth: 8, Cache: cache})
	c2 := startHTTP(t, s2)
	cachedSt, err := c2.SubmitWait(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !cachedSt.ImageCacheHit {
		t.Fatalf("relink on fresh server not an image-cache hit")
	}
	cachedDoc, err := c2.Trace(ctx, cachedSt.ID)
	if err != nil {
		t.Fatal(err)
	}
	ic := cachedDoc.Find("image-cache")
	if ic == nil || ic.Attrs["hit"] != "true" {
		t.Errorf("image-cache-served trace lacks the hitting lookup:\n%s", cachedDoc.Render())
	}
	if cachedDoc.Find("om") != nil {
		t.Errorf("image-cache-served trace claims om ran:\n%s", cachedDoc.Render())
	}
}

// TestTraceCoalesced: a job that attaches to an in-flight execution records
// an attached-wait plus a grafted copy of the shared execution span, marked
// shared="flight".
func TestTraceCoalesced(t *testing.T) {
	s := newTestServer(t, omd.Config{Workers: 1, QueueDepth: 8})
	if err := s.PrewarmLib(); err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	var gateOnce sync.Once
	s.SetExecGate(func(string) {
		gateOnce.Do(func() { <-release })
	})
	c := startHTTP(t, s)
	ctx := context.Background()

	spec := &omd.JobSpec{Version: omd.SpecVersion, Benchmark: "li"}
	lead, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	follower, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !follower.Coalesced {
		t.Fatalf("second submission did not coalesce")
	}
	close(release)
	if _, err := c.Wait(ctx, follower.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	doc, err := c.Trace(ctx, follower.ID)
	if err != nil {
		t.Fatal(err)
	}
	if adm := doc.Find("admission"); adm == nil || adm.Attrs["outcome"] != "coalesced" {
		t.Errorf("coalesced trace lacks admission outcome:\n%s", doc.Render())
	}
	if doc.Find("attached-wait") == nil {
		t.Errorf("coalesced trace lacks attached-wait:\n%s", doc.Render())
	}
	exec := doc.Find("execute")
	if exec == nil || exec.Attrs["shared"] != "flight" {
		t.Errorf("coalesced trace lacks the shared execution graft:\n%s", doc.Render())
	}

	leadDoc, err := c.Trace(ctx, lead.ID)
	if err != nil {
		t.Fatal(err)
	}
	if le := leadDoc.Find("execute"); le == nil || le.Attrs["shared"] != "" {
		t.Errorf("lead trace's execution should be owned, not shared:\n%s", leadDoc.Render())
	}
}

// TestFlightRecorderBound: the ring retains only the configured number of
// traces, newest first, and /debug/flights?n= further narrows the view.
func TestFlightRecorderBound(t *testing.T) {
	s := newTestServer(t, omd.Config{Workers: 1, QueueDepth: 16, FlightRecorderSize: 3})
	c := startHTTP(t, s)
	ctx := context.Background()

	// 5 distinct jobs (different option levels defeat coalescing/memo).
	specs := []*omd.JobSpec{
		{Version: omd.SpecVersion, Benchmark: "li"},
		{Version: omd.SpecVersion, Benchmark: "compress"},
		{Version: omd.SpecVersion, Benchmark: "li", Options: optDoc(t, om.WithLevel(om.LevelNone))},
		{Version: omd.SpecVersion, Benchmark: "li", Options: optDoc(t, om.WithLevel(om.LevelSimple))},
		{Version: omd.SpecVersion, Benchmark: "li", Options: optDoc(t, om.WithSchedule(true))},
	}
	var last string
	for _, sp := range specs {
		st, err := c.SubmitWait(ctx, sp)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != omd.JobDone {
			t.Fatalf("job failed: %s", st.Error)
		}
		last = st.TraceID
	}
	flights, err := c.Flights(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(flights) != 3 {
		t.Fatalf("flight recorder retained %d traces, want 3", len(flights))
	}
	if flights[0].TraceID != last {
		t.Errorf("newest flight = %q, want the last job's trace %q", flights[0].TraceID, last)
	}
	if narrowed, err := c.Flights(ctx, 2); err != nil || len(narrowed) != 2 {
		t.Errorf("Flights(n=2) = %d traces, err %v; want 2, nil", len(narrowed), err)
	}
}

// TestPrometheusExposition: /metrics?format=prometheus serves text-format
// counters, histograms, and the runtime gauges (satellite: runtime health in
// both views).
func TestPrometheusExposition(t *testing.T) {
	s := newTestServer(t, omd.Config{Workers: 1, QueueDepth: 8})
	c := startHTTP(t, s)
	ctx := context.Background()
	if _, err := c.SubmitWait(ctx, &omd.JobSpec{Version: omd.SpecVersion, Benchmark: "li"}); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		"omd_submitted_total 1",
		"# TYPE omd_job_seconds histogram",
		`omd_job_seconds_bucket{le="+Inf"} 1`,
		"# TYPE runtime_goroutines gauge",
		"runtime_heap_inuse_bytes",
		"runtime_gc_pause_total_ns",
		"omd_workers ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prometheus exposition lacks %q", want)
		}
	}

	// The JSON view carries the same runtime gauges.
	snap, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	foundGoroutines := false
	for _, e := range snap.Metrics {
		if e.Name == "runtime/goroutines" && e.Kind == "gauge" && e.Gauge > 0 {
			foundGoroutines = true
		}
	}
	if !foundGoroutines {
		t.Error("JSON metrics lack the runtime/goroutines gauge")
	}
	if snap.Queue.Workers != 1 || snap.Queue.UptimeMS < 0 {
		t.Errorf("queue info = %+v, want workers=1 and uptime >= 0", snap.Queue)
	}
}

// TestSlowJobLogging: a server with a zero-distance slow threshold logs the
// rendered span tree at Warn, correlated by trace id; a structured
// completion record accompanies every job.
func TestSlowJobLogging(t *testing.T) {
	var mu sync.Mutex
	var logBuf bytes.Buffer
	h := slog.NewTextHandler(&lockedWriter{mu: &mu, w: &logBuf}, nil)
	s := newTestServer(t, omd.Config{
		Workers: 1, QueueDepth: 8,
		SlowJob: time.Nanosecond,
		Slog:    slog.New(h),
	})
	c := startHTTP(t, s)

	st, err := c.SubmitTraced(context.Background(), &omd.JobSpec{Version: omd.SpecVersion, Benchmark: "li"}, "slow-test", true)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	logged := logBuf.String()
	mu.Unlock()
	if !strings.Contains(logged, "omd job done") || !strings.Contains(logged, "trace=slow-test") {
		t.Errorf("completion log missing or uncorrelated:\n%s", logged)
	}
	if !strings.Contains(logged, "omd slow job") {
		t.Errorf("slow-job warning missing:\n%s", logged)
	}
	// The warning carries the rendered tree: every lifecycle phase appears.
	sc := bufio.NewScanner(strings.NewReader(logged))
	var slowLine string
	for sc.Scan() {
		if strings.Contains(sc.Text(), "omd slow job") {
			slowLine = sc.Text()
		}
	}
	for _, phase := range []string{"execute", "om/lift", "om/emit"} {
		if !strings.Contains(logged, phase) {
			t.Errorf("slow-job span tree lacks %q:\n%s", phase, slowLine)
		}
	}
	_ = st
}

type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}
