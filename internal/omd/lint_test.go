package omd_test

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/om"
	"repro/internal/omd"
)

// TestLintJob: a job submitted with lint gets the static whole-program
// analysis at both symbolic stages plus the image, the totals land in the
// status and the counters, the om-lint/v1 documents are served at
// /jobs/{id}/lint, and the job's trace carries the analysis spans.
func TestLintJob(t *testing.T) {
	s := newTestServer(t, omd.Config{Workers: 2, QueueDepth: 8})
	c := startHTTP(t, s)
	ctx := context.Background()

	st, err := c.SubmitWait(ctx, &omd.JobSpec{
		Version: omd.SpecVersion, Benchmark: "li", Lint: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != omd.JobDone {
		t.Fatalf("state %s (%s)", st.State, st.Error)
	}
	if !st.Linted {
		t.Fatal("linted job status does not say so")
	}
	if st.LintChecked == 0 {
		t.Fatal("lint checked nothing")
	}

	raw, err := c.Lint(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var doc omd.LintDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != dataflow.Schema {
		t.Fatalf("served schema %q, want %q", doc.Schema, dataflow.Schema)
	}
	if len(doc.Reports) != 3 {
		t.Fatalf("%d reports served, want lifted+optimized+image", len(doc.Reports))
	}
	wantStages := []string{"lifted", "optimized", ""}
	for i, r := range doc.Reports {
		if r.Stage != wantStages[i] {
			t.Fatalf("report %d stage %q, want %q", i, r.Stage, wantStages[i])
		}
		if r.Errors() != 0 {
			t.Fatalf("report %d carries %d errors on a done job", i, r.Errors())
		}
	}
	if doc.Checked() != st.LintChecked {
		t.Fatalf("status total %d disagrees with the document %d", st.LintChecked, doc.Checked())
	}

	tr, err := c.Trace(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, span := range []string{"lint-lifted", "lint-optimized", "lint"} {
		if tr.Find(span) == nil {
			t.Fatalf("job trace has no %s span", span)
		}
	}
	if ls := tr.Find("lint"); ls.Attrs["outcome"] != "ok" {
		t.Fatalf("lint span attrs: %v", ls.Attrs)
	}

	snap, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counter("omd/lint-runs") == 0 {
		t.Error("omd/lint-runs not counted")
	}
	if snap.Counter("omd/lint-checked") == 0 {
		t.Error("omd/lint-checked not counted")
	}
	if n := snap.Counter("omd/lint-errors"); n != 0 {
		t.Errorf("omd/lint-errors = %d on a clean run", n)
	}

	// A repeat submission is a memo hit and keeps the findings.
	st2, err := c.SubmitWait(ctx, &omd.JobSpec{
		Version: omd.SpecVersion, Benchmark: "li", Lint: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st2.MemoHit || !st2.Linted || st2.LintChecked != st.LintChecked {
		t.Fatalf("memoized lint job lost its findings: %+v", st2)
	}
}

// TestLintKeyDistinct: linting changes what a job proves, so a linted and
// an unlinted submission of the same inputs must not share a coalescing
// key.
func TestLintKeyDistinct(t *testing.T) {
	s := newTestServer(t, omd.Config{Workers: 2, QueueDepth: 8})
	c := startHTTP(t, s)
	ctx := context.Background()

	plain, err := c.SubmitWait(ctx, &omd.JobSpec{Version: omd.SpecVersion, Benchmark: "compress"})
	if err != nil {
		t.Fatal(err)
	}
	linted, err := c.SubmitWait(ctx, &omd.JobSpec{Version: omd.SpecVersion, Benchmark: "compress", Lint: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Key == linted.Key {
		t.Fatal("lint flag does not enter the coalescing key")
	}
	if linted.MemoHit {
		t.Fatal("lint job answered from an unlinted memo entry")
	}
	if plain.Linted {
		t.Fatal("unlinted job claims findings")
	}
}

// TestLintCatchesBrokenPass: the service-level half of the acceptance
// criterion — with a deliberately-broken OM pass injected, an explicit
// lint job fails on the static findings alone (no simulator, no journal).
func TestLintCatchesBrokenPass(t *testing.T) {
	restore := om.SetFaultHookForTesting(func(pg *om.Prog) {
		for _, pr := range pg.Procs {
			for _, si := range pr.Insts {
				if si.Lit != nil && !si.Lit.Converted && !si.Lit.Nullified && !si.Deleted {
					si.Deleted = true
					return
				}
			}
		}
	})
	defer restore()

	s := newTestServer(t, omd.Config{Workers: 1, QueueDepth: 8})
	c := startHTTP(t, s)
	ctx := context.Background()

	st, err := c.SubmitWait(ctx, &omd.JobSpec{
		Version: omd.SpecVersion, Benchmark: "li", Lint: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != omd.JobFailed {
		t.Fatalf("broken pass not caught: state %s", st.State)
	}
	if !strings.Contains(st.Error, "lint failed") {
		t.Fatalf("failure is not a lint error: %s", st.Error)
	}
	snap, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counter("omd/lint-errors") == 0 {
		t.Error("lint error findings not counted")
	}
}
