// Package omd is the link-time optimization service: a resident daemon
// that accepts serialized link jobs over HTTP/JSON, schedules them on a
// bounded worker pool behind an explicit admission queue, coalesces
// identical in-flight requests into a single execution, and keeps the
// build cache warm across requests — the WHOPR-shaped answer to running
// whole-program optimization repeatedly over the same inputs.
//
// A job is an omd-job/v1 document (JobSpec): the program to link (a named
// benchmark of the suite, or uploaded object modules), the resolved OM
// option set in its canonical om-options/v1 form, an optional om-profile/v1
// document for profile-guided layout, and an optional simulation of the
// linked image. The spec maps one-to-one onto om.Run options, so a remote
// job and a local cmd/om invocation of the same inputs produce
// byte-identical images; the server's coalescing key is a content hash over
// everything that determines the result, shared with the build cache's
// image store.
package omd

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/buildcache"
	"repro/internal/dataflow"
	"repro/internal/objfile"
	"repro/internal/om"
	"repro/internal/profile"
	benchspec "repro/internal/spec"
)

// SpecVersion tags the job document format; submissions carrying any other
// version are rejected before admission.
const SpecVersion = "omd-job/v1"

// JobSpec is the serializable description of one link job. Exactly one of
// Benchmark and Objects must be set.
type JobSpec struct {
	// Version must be SpecVersion.
	Version string `json:"version"`
	// Benchmark names a program of the built-in suite (spec.ByName).
	Benchmark string `json:"benchmark,omitempty"`
	// BuildMode selects how a benchmark's sources are compiled:
	// "compile-each" (default) or "compile-all".
	BuildMode string `json:"build_mode,omitempty"`
	// Objects are serialized object modules (objfile format) uploaded by
	// the client, as an alternative to a named benchmark.
	Objects [][]byte `json:"objects,omitempty"`
	// NoStdlib skips linking the runtime library (uploaded objects that
	// already include it).
	NoStdlib bool `json:"no_stdlib,omitempty"`
	// Options is the OM option set in canonical om-options/v1 form
	// (om.MarshalOptions); nil selects the defaults (OM-full).
	Options json.RawMessage `json:"options,omitempty"`
	// Profile is an optional om-profile/v1 document driving
	// profile-guided procedure layout.
	Profile json.RawMessage `json:"profile,omitempty"`
	// Simulate runs the linked image in the timing simulator and returns
	// dynamic statistics with the result.
	Simulate bool `json:"simulate,omitempty"`
	// Verify translation-validates the freshly linked image against its
	// decision journal (om-verify/v1); a rewrite the validator cannot
	// prove sound fails the job. Verified jobs always execute — the
	// persistent image cache cannot answer them, because validation needs
	// the journal of the run that produced the image.
	Verify bool `json:"verify,omitempty"`
	// Lint runs the static whole-program dataflow analysis over the job:
	// the symbolic program before and after the optimization passes, and
	// the emitted image. Any error-severity finding fails the job; the
	// findings documents are served at GET /jobs/{id}/lint. Like Verify,
	// a linted job always executes — the analysis needs the symbolic
	// program, which no cache retains.
	Lint bool `json:"lint,omitempty"`
	// MaxInstructions caps a simulation (0 = server default).
	MaxInstructions uint64 `json:"max_instructions,omitempty"`
	// TimeoutMS overrides the server's per-job deadline (capped by it).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// resolved is a validated JobSpec with every serialized field decoded and
// the coalescing key computed. Uploaded object modules are deliberately NOT
// decoded here: the warm path must answer a repeat submission from the
// resident decoded-program cache without parsing a single module, so the
// keys hash the raw bytes and decoding happens on the execution cold path
// (where a malformed module fails the job rather than the submission).
type resolved struct {
	spec     JobSpec
	canonOpt []byte      // canonical om-options/v1 bytes
	opts     []om.Option // decoded option list (level/sched/ablation/trace/…)
	traced   bool        // options request a decision journal
	prof     *profile.Profile
	bench    benchspec.Benchmark // benchmark jobs
	eachMode bool                // compile-each (benchmark jobs)
	key      string
	// progKey identifies the merged program independent of options: the
	// program inputs (raw uploaded bytes, or benchmark sources + build
	// mode) plus stdlib inclusion. It keys the decoded-program cache.
	progKey string
}

// Resolve validates the spec, decodes its serialized parts, and derives the
// job's content-hash key. The key covers everything that determines the
// result — sources or object bytes, the canonical option form, the
// profile's content hash, stdlib inclusion, and the simulation request — so
// two jobs with equal keys are interchangeable and safe to coalesce.
func (js *JobSpec) resolve() (*resolved, error) {
	if js.Version != SpecVersion {
		return nil, fmt.Errorf("omd: job version %q, want %q", js.Version, SpecVersion)
	}
	if (js.Benchmark == "") == (len(js.Objects) == 0) {
		return nil, fmt.Errorf("omd: exactly one of benchmark and objects must be set")
	}
	if js.TimeoutMS < 0 {
		return nil, fmt.Errorf("omd: negative timeout_ms")
	}
	r := &resolved{spec: *js, eachMode: true}

	optDoc := js.Options
	if optDoc == nil {
		d, err := om.MarshalOptions()
		if err != nil {
			return nil, err
		}
		optDoc = d
	}
	opts, err := om.UnmarshalOptions(optDoc)
	if err != nil {
		return nil, err
	}
	// Re-marshal so the key sees one canonical byte form regardless of the
	// client's whitespace or field order.
	canon, err := om.MarshalOptions(opts...)
	if err != nil {
		return nil, err
	}
	r.canonOpt, r.opts = canon, opts
	// The canonical form is pinned by om's golden test, so probing one
	// field of it is stable.
	var probe struct {
		Trace bool `json:"trace"`
	}
	if err := json.Unmarshal(canon, &probe); err != nil {
		return nil, err
	}
	r.traced = probe.Trace

	if js.Profile != nil {
		p, err := profile.Read(bytes.NewReader(js.Profile))
		if err != nil {
			return nil, fmt.Errorf("omd: profile: %w", err)
		}
		r.prof = p
	}

	if js.Benchmark != "" {
		b, ok := benchspec.ByName(js.Benchmark)
		if !ok {
			return nil, fmt.Errorf("omd: unknown benchmark %q", js.Benchmark)
		}
		r.bench = b
		switch js.BuildMode {
		case "", "compile-each":
			r.eachMode = true
		case "compile-all":
			r.eachMode = false
		default:
			return nil, fmt.Errorf("omd: unknown build_mode %q", js.BuildMode)
		}
	} else {
		if js.BuildMode != "" {
			return nil, fmt.Errorf("omd: build_mode applies only to benchmark jobs")
		}
		for i, data := range js.Objects {
			if len(data) == 0 {
				return nil, fmt.Errorf("omd: object %d is empty", i)
			}
		}
	}
	if err := r.computeKey(); err != nil {
		return nil, err
	}
	return r, nil
}

// variant is the non-program half of the coalescing key: the canonical
// option form plus every request knob that changes the result.
func (r *resolved) variant() string {
	return fmt.Sprintf("omd/%s/nostdlib=%v/sim=%v/maxinst=%d/verify=%v/lint=%v",
		r.canonOpt, r.spec.NoStdlib, r.spec.Simulate, r.spec.MaxInstructions, r.spec.Verify, r.spec.Lint)
}

func (r *resolved) computeKey() error {
	profHash := ""
	if r.prof != nil {
		profHash = r.prof.Hash()
	}
	if r.spec.Benchmark == "" {
		// The raw uploaded bytes are the objfile serialization, so this key
		// equals the decoded-object ImageKey without parsing anything.
		r.key = buildcache.RawImageKey(r.spec.Objects, r.variant(), profHash)
		r.progKey = rawProgramKey(r.spec.Objects, r.spec.NoStdlib)
		return nil
	}
	// Benchmark jobs hash the sources themselves, not just the name, so
	// the key stays content-addressed across daemon versions that ship
	// different generated suites.
	h := sha256.New()
	writeStr := func(s string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	writeStr(SpecVersion + "/bench")
	writeStr(r.bench.Name)
	writeStr(fmt.Sprint(r.eachMode))
	for _, m := range r.bench.Modules {
		writeStr(m.Name)
		writeStr(m.Text)
	}
	writeStr(r.variant())
	writeStr(profHash)
	r.key = fmt.Sprintf("%x", h.Sum(nil))

	hp := sha256.New()
	writeStrTo := func(h interface{ Write([]byte) (int, error) }, s string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	writeStrTo(hp, SpecVersion+"/program/bench")
	writeStrTo(hp, r.bench.Name)
	writeStrTo(hp, fmt.Sprint(r.eachMode))
	for _, m := range r.bench.Modules {
		writeStrTo(hp, m.Name)
		writeStrTo(hp, m.Text)
	}
	writeStrTo(hp, fmt.Sprint(r.spec.NoStdlib))
	r.progKey = fmt.Sprintf("%x", hp.Sum(nil))
	return nil
}

// rawProgramKey is the options-independent program identity of an uploaded
// job: the raw module bytes plus stdlib inclusion. The runtime library is
// resident per server process, so its content needs no hashing here.
func rawProgramKey(raw [][]byte, noStdlib bool) string {
	h := sha256.New()
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(raw)))
	h.Write(n[:])
	for _, data := range raw {
		binary.LittleEndian.PutUint64(n[:], uint64(len(data)))
		h.Write(n[:])
		h.Write(data)
	}
	binary.LittleEndian.PutUint64(n[:], uint64(len(SpecVersion)))
	h.Write(n[:])
	h.Write([]byte(SpecVersion))
	if noStdlib {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// decodeObjects parses the uploaded modules. Only the execution cold path
// calls it: a warm job is answered from the decoded-program cache without
// touching the bytes again.
func (r *resolved) decodeObjects() ([]*objfile.Object, error) {
	objs := make([]*objfile.Object, 0, len(r.spec.Objects))
	for i, data := range r.spec.Objects {
		obj, err := objfile.Read(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("omd: object %d: %w", i, err)
		}
		objs = append(objs, obj)
	}
	return objs, nil
}

// deadline returns the job's deadline budget under the server cap.
func (r *resolved) deadline(serverCap time.Duration) time.Duration {
	if r.spec.TimeoutMS > 0 {
		if d := time.Duration(r.spec.TimeoutMS) * time.Millisecond; d < serverCap {
			return d
		}
	}
	return serverCap
}

// JobState is a job's lifecycle position.
type JobState string

const (
	// JobQueued: admitted, waiting for (or coalesced onto) an execution.
	JobQueued JobState = "queued"
	// JobRunning: its flight holds a worker.
	JobRunning JobState = "running"
	// JobDone: result available.
	JobDone JobState = "done"
	// JobFailed: execution failed (the error string says why; a canceled
	// or deadline-exceeded job lands here too).
	JobFailed JobState = "failed"
)

// LintDoc bundles a linted job's findings documents: the symbolic program
// at both observer stages plus the emitted image, in analysis order.
type LintDoc struct {
	Schema  string             `json:"schema"`
	Reports []*dataflow.Report `json:"reports"`
}

// Checked totals the evaluated check sites across the reports.
func (d *LintDoc) Checked() uint64 {
	var n uint64
	for _, r := range d.Reports {
		n += r.Checked
	}
	return n
}

// Errors counts error-severity findings across the reports.
func (d *LintDoc) Errors() int {
	n := 0
	for _, r := range d.Reports {
		n += r.Errors()
	}
	return n
}

// SimStats is the dynamic half of a job result.
type SimStats struct {
	Exit         int64   `json:"exit"`
	Output       []int64 `json:"output"`
	Cycles       uint64  `json:"cycles"`
	Instructions uint64  `json:"instructions"`
	ICacheMisses uint64  `json:"icache_misses"`
	DCacheMisses uint64  `json:"dcache_misses"`
}

// JobStatus is the wire form of one job's state, returned by submit, poll,
// and list.
type JobStatus struct {
	ID    string   `json:"id"`
	Key   string   `json:"key"`
	State JobState `json:"state"`
	// Coalesced: this job attached to an execution another job started.
	Coalesced bool `json:"coalesced,omitempty"`
	// MemoHit: served instantly from a completed result with the same key.
	MemoHit bool `json:"memo_hit,omitempty"`
	// ImageCacheHit: the image came from the persistent build cache
	// (stats/journal are absent — they exist only on fresh runs).
	ImageCacheHit bool       `json:"image_cache_hit,omitempty"`
	Error         string     `json:"error,omitempty"`
	SubmittedAt   time.Time  `json:"submitted_at"`
	StartedAt     *time.Time `json:"started_at,omitempty"`
	FinishedAt    *time.Time `json:"finished_at,omitempty"`
	Stats         *om.Stats  `json:"stats,omitempty"`
	Sim           *SimStats  `json:"sim,omitempty"`
	ImageBytes    int        `json:"image_bytes,omitempty"`
	JournalEvents int        `json:"journal_events,omitempty"`
	// Verified: the result carries an om-verify/v1 verdict document, served
	// at GET /jobs/{id}/verify. VerifyChecked/VerifyFailed are its totals
	// (an explicit Verify job with failures never reaches JobDone, so a
	// done job always shows VerifyFailed == 0).
	Verified      bool   `json:"verified,omitempty"`
	VerifyChecked uint64 `json:"verify_checked,omitempty"`
	VerifyFailed  uint64 `json:"verify_failed,omitempty"`
	// Linted: the result carries om-lint/v1 findings documents, served at
	// GET /jobs/{id}/lint. LintChecked totals the evaluated check sites
	// across the lifted-program, optimized-program, and image analyses (an
	// explicit Lint job with error findings never reaches JobDone).
	Linted      bool   `json:"linted,omitempty"`
	LintChecked uint64 `json:"lint_checked,omitempty"`
	// TraceID correlates this job with GET /jobs/{id}/trace, the flight
	// recorder, and the server's structured logs.
	TraceID string `json:"trace_id,omitempty"`
	// QueueWait and Exec are the trace-derived phase durations: admission
	// to worker pickup, and pickup to finish. Both are zero until the job
	// reaches a terminal state (and stay zero on a memo hit, which never
	// queues or executes).
	QueueWait time.Duration `json:"queue_wait_ns,omitempty"`
	Exec      time.Duration `json:"exec_ns,omitempty"`
}
