package omd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buildcache"
	"repro/internal/dataflow"
	"repro/internal/link"
	"repro/internal/objfile"
	"repro/internal/obs"
	"repro/internal/om"
	"repro/internal/rtlib"
	"repro/internal/sim"
	"repro/internal/tcc"
	"repro/internal/verify"
)

// Logger receives the server's progress output.
type Logger interface {
	Logf(format string, args ...any)
}

// Config sizes the service.
type Config struct {
	// Workers bounds concurrently executing jobs. <= 0 selects GOMAXPROCS.
	Workers int
	// QueueDepth bounds admitted-but-unstarted executions; a submission
	// that would exceed it is rejected with 429 + Retry-After. <= 0
	// selects 64. Coalesced duplicates never occupy a slot — only
	// distinct in-flight keys do.
	QueueDepth int
	// JobTimeout caps every job's queue-wait + execution time (a job may
	// request less via TimeoutMS). <= 0 selects 5 minutes.
	JobTimeout time.Duration
	// MemoLimit bounds the completed-result memo (FIFO eviction); <= 0
	// selects 256 entries.
	MemoLimit int
	// VerifySample, when > 0, shadow-verifies every Nth fresh execution:
	// the linked image is translation-validated against its decision
	// journal alongside the job. A shadow failure logs and bumps
	// omd/verify-shadow-failures but never fails the job — only jobs that
	// set Verify in their spec fail on a bad verdict. 0 disables sampling.
	VerifySample int
	// Cache persists compiled objects and linked images across jobs (and,
	// with a directory, across restarts). Nil runs uncached.
	Cache *buildcache.Cache
	// Metrics receives the service's counters, gauges, and latency
	// histograms; nil creates a private registry (it still backs
	// /metrics).
	Metrics *obs.Registry
	// Logger receives progress lines; nil discards them.
	Logger Logger
	// FlightRecorderSize bounds the ring of completed job traces served at
	// GET /debug/flights (<= 0 selects 128).
	FlightRecorderSize int
	// SlowJob, when > 0, logs the full span tree of any job whose total
	// latency (admission to finish) reaches it, at Warn level on Slog.
	SlowJob time.Duration
	// Slog receives structured job-lifecycle records, every one carrying
	// the job's trace id so log lines, traces, and API results correlate;
	// nil discards them.
	Slog *slog.Logger
	// Clock injects the time source for job timestamps and trace spans;
	// nil selects time.Now. Tests use a stepped fake for deterministic span
	// durations.
	Clock func() time.Time
}

// TraceHeader is the HTTP header that propagates a client-assigned trace id
// into the job's span tree; absent, the server assigns one at admission.
const TraceHeader = "Om-Trace-Id"

// flight is one admitted execution. Every job with the same key attaches
// to the same flight (singleflight): N identical submissions run one link
// and share the result. refs counts parties that still await the outcome;
// when a waiting client disconnects it drops its ref, and a flight nobody
// awaits cancels itself — cancellation reaches om.Run and sim.RunContext
// through the flight context.
type flight struct {
	key    string
	run    *resolved
	ctx    context.Context
	cancel context.CancelFunc
	jobs   []*jobRecord // guarded by Server.mu
	refs   int          // guarded by Server.mu
	done   chan struct{}
	res    *result
	err    error

	// exec is the execution span, opened on the lead job's trace when a
	// worker picks the flight up. Coalesced jobs share the execution; at
	// completion its SpanDoc is grafted into their traces with a
	// shared="flight" attribute so every job's trace shows where its time
	// went without double-owning the span.
	exec *obs.Span
}

// result is a completed execution's payload, memoized by key.
type result struct {
	image         []byte
	stats         *om.Stats
	journal       *obs.JournalDoc
	verify        *verify.Doc
	lint          *LintDoc
	sim           *SimStats
	imageCacheHit bool
}

// jobRecord is the server-side state of one submitted job.
type jobRecord struct {
	id        string
	key       string
	state     JobState
	coalesced bool
	memoHit   bool
	submitted time.Time
	started   time.Time
	finished  time.Time
	res       *result
	errMsg    string
	fl        *flight // nil once terminal

	// trace is the job's span tree, rooted at request receipt. wait is the
	// open queue-wait (or attached-wait) span; traceDoc is the immutable
	// snapshot taken when the job reaches a terminal state, also pushed into
	// the flight recorder. queueWait/exec are the derived phase durations
	// surfaced in JobStatus.
	trace     *obs.Trace
	wait      *obs.Span
	traceDoc  *obs.TraceDoc
	queueWait time.Duration
	exec      time.Duration
}

// Server owns the admission queue, the worker pool, and the job store. It
// serves the HTTP API via Handler.
type Server struct {
	cfg     Config
	reg     *obs.Registry
	cache   *buildcache.Cache
	log     Logger
	slog    *slog.Logger
	now     func() time.Time
	rec     *obs.FlightRecorder
	started time.Time

	// The resident warm-path stores, shared by every job the server runs:
	// progCache holds merged decoded programs keyed on program inputs;
	// omMemo holds OM's lifted forms and per-procedure pass outcomes. Both
	// are content-addressed, so no eviction or invalidation coordination
	// with jobs is needed, and both report stage/* counters to /metrics.
	progCache *buildcache.ProgramCache
	omMemo    *om.Memo

	baseCtx    context.Context
	baseCancel context.CancelFunc
	queue      chan *flight
	wg         sync.WaitGroup

	mu        sync.Mutex
	draining  bool
	running   int // flights currently executing on workers
	flights   map[string]*flight
	memo      map[string]*result
	memoOrder []string
	jobs      map[string]*jobRecord
	order     []string
	nextID    int

	// execGate, when set (tests only), runs at the top of every execution
	// and may block to create controlled congestion.
	execGate func(key string)

	// verifySeq counts fresh om.Run executions for VerifySample's
	// every-Nth shadow-verification draw.
	verifySeq atomic.Uint64

	libOnce sync.Once
	lib     []*objfile.Object
	libErr  error
}

// NewServer builds the service and starts its worker pool. Stop it with
// Drain (graceful) or Close (immediate).
func NewServer(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.JobTimeout <= 0 {
		cfg.JobTimeout = 5 * time.Minute
	}
	if cfg.MemoLimit <= 0 {
		cfg.MemoLimit = 256
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	lg := cfg.Slog
	if lg == nil {
		lg = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	now := cfg.Clock
	if now == nil {
		now = time.Now
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		reg:        reg,
		cache:      cfg.Cache,
		log:        cfg.Logger,
		slog:       lg,
		now:        now,
		rec:        obs.NewFlightRecorder(cfg.FlightRecorderSize),
		started:    now(),
		progCache:  buildcache.NewProgramCache(0, reg),
		omMemo:     om.NewMemo(reg),
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *flight, cfg.QueueDepth),
		flights:    make(map[string]*flight),
		memo:       make(map[string]*result),
		jobs:       make(map[string]*jobRecord),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

func (s *Server) logf(format string, args ...any) {
	if s.log != nil {
		s.log.Logf(format, args...)
	}
}

// libObjects compiles the runtime library at most once per server, through
// the build cache when one is configured.
func (s *Server) libObjects() ([]*objfile.Object, error) {
	s.libOnce.Do(func() {
		if s.cache != nil {
			s.lib, s.libErr = rtlib.ObjectsVia(s.cache.Compile, tcc.DefaultOptions())
			return
		}
		s.lib, s.libErr = rtlib.StandardObjects()
	})
	return s.lib, s.libErr
}

// errQueueFull is the admission-queue overflow signal (HTTP 429).
var errQueueFull = errors.New("omd: admission queue full")

// errDraining rejects submissions during shutdown (HTTP 503).
var errDraining = errors.New("omd: server is draining")

// submit admits one job: memo hit, coalesce onto an in-flight execution,
// or enqueue a new flight. wait marks the submitter as a live waiter whose
// disconnect may cancel an otherwise-unwatched flight; async submissions
// hold their reference to completion.
//
// traceID names the job's span tree ("" lets the server assign one);
// reqStart backdates the trace root to request receipt so the admission
// span covers decode + resolve work done before the lock (zero selects the
// submission instant).
func (s *Server) submit(rs *resolved, wait bool, traceID string, reqStart time.Time) (*jobRecord, *flight, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.reg.Counter("omd/rejected-draining").Add(1)
		return nil, nil, errDraining
	}
	s.reg.Counter("omd/submitted").Add(1)
	s.nextID++
	now := s.now()
	if reqStart.IsZero() {
		reqStart = now
	}
	rec := &jobRecord{
		id:        fmt.Sprintf("j%d", s.nextID),
		key:       rs.key,
		state:     JobQueued,
		submitted: now,
	}
	if traceID == "" {
		traceID = "t-" + rec.id
	}
	rec.trace = obs.NewTrace(traceID, "job", reqStart, s.now)
	rec.trace.Root().SetAttr("job", rec.id)
	admission := rec.trace.Root().ChildAt("admission", reqStart)

	if res, ok := s.memo[rs.key]; ok {
		rec.state, rec.res, rec.memoHit = JobDone, res, true
		rec.started, rec.finished = rec.submitted, rec.submitted
		s.reg.Counter("omd/memo-hits").Add(1)
		admission.SetAttr("outcome", "memo-hit")
		admission.End()
		// A fresh clock reading: the root must close at or after the
		// admission span it contains.
		s.finishTrace(rec, s.now())
		s.slog.Info("omd job done",
			"trace", rec.trace.ID(), "job", rec.id,
			"state", string(rec.state), "memo_hit", true)
		s.storeJob(rec)
		return rec, nil, nil
	}
	if f, ok := s.flights[rs.key]; ok {
		rec.coalesced, rec.fl = true, f
		admission.SetAttr("outcome", "coalesced")
		admission.End()
		rec.wait = rec.trace.Root().Child("attached-wait")
		if f.jobs[0].state == JobRunning {
			rec.state = JobRunning
			rec.started = now
		}
		f.jobs = append(f.jobs, rec)
		f.refs++
		s.reg.Counter("omd/coalesce-hits").Add(1)
		s.storeJob(rec)
		return rec, f, nil
	}

	fctx, cancel := context.WithTimeout(s.baseCtx, rs.deadline(s.cfg.JobTimeout))
	f := &flight{
		key: rs.key, run: rs, ctx: fctx, cancel: cancel,
		jobs: []*jobRecord{rec}, refs: 1, done: make(chan struct{}),
	}
	rec.fl = f
	select {
	case s.queue <- f:
		s.flights[rs.key] = f
		s.reg.SetGauge("omd/queue-depth", float64(len(s.queue)))
		admission.SetAttr("outcome", "admitted")
		admission.End()
		rec.wait = rec.trace.Root().Child("queue-wait")
		s.storeJob(rec)
		return rec, f, nil
	default:
		cancel()
		s.reg.Counter("omd/rejected-queue-full").Add(1)
		return nil, nil, errQueueFull
	}
}

// finishTrace closes a terminal job's span tree, snapshots it, derives the
// phase durations surfaced in JobStatus, and pushes the document into the
// flight recorder. Callers hold mu; now is the terminal instant.
func (s *Server) finishTrace(rec *jobRecord, now time.Time) {
	if rec.trace == nil || rec.traceDoc != nil {
		return
	}
	rec.wait.EndAt(now)
	root := rec.trace.Root()
	root.SetAttr("state", string(rec.state))
	root.EndAt(now)
	rec.traceDoc = rec.trace.Doc()
	if !rec.started.IsZero() {
		rec.queueWait = rec.started.Sub(rec.submitted)
		if !rec.finished.IsZero() {
			rec.exec = rec.finished.Sub(rec.started)
		}
	}
	s.rec.Record(rec.traceDoc)
}

func (s *Server) storeJob(rec *jobRecord) {
	s.jobs[rec.id] = rec
	s.order = append(s.order, rec.id)
}

// release drops a waiter's interest in a flight. The last leaving waiter
// cancels the flight: the cancellation propagates through om.Run and
// sim.RunContext, so an execution nobody is waiting for stops burning a
// worker mid-simulation rather than running to completion.
func (s *Server) release(f *flight) {
	s.mu.Lock()
	f.refs--
	abandon := f.refs <= 0
	s.mu.Unlock()
	if abandon {
		s.reg.Counter("omd/flights-abandoned").Add(1)
		f.cancel()
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for f := range s.queue {
		s.runFlight(f)
	}
}

func (s *Server) runFlight(f *flight) {
	if gate := s.execGate; gate != nil {
		gate(f.key)
	}
	now := s.now()
	s.mu.Lock()
	s.running++
	s.reg.SetGauge("omd/queue-depth", float64(len(s.queue)))
	s.reg.SetGauge("omd/workers-busy", float64(s.running))
	for _, rec := range f.jobs {
		rec.state = JobRunning
		rec.started = now
	}
	// The lead job's trace owns the execution span; its queue wait ends at
	// pickup. Coalesced jobs keep their attached-wait open to completion.
	lead := f.jobs[0]
	lead.wait.EndAt(now)
	f.exec = lead.trace.Root().ChildAt("execute", now)
	s.mu.Unlock()

	s.reg.Counter("omd/jobs-executed").Add(1)
	jobDone := obs.StartSpan(s.reg.Timer("omd/job"))
	res, err := s.execute(f.ctx, f.run, f.exec)
	jobDone()
	f.cancel() // release the deadline timer

	now = s.now()
	f.exec.EndAt(now)
	s.mu.Lock()
	s.running--
	s.reg.SetGauge("omd/workers-busy", float64(s.running))
	delete(s.flights, f.key)
	if err == nil {
		s.memoize(f.key, res)
	}
	execDoc := f.exec.Doc()
	type doneLog struct {
		rec   *jobRecord
		doc   *obs.TraceDoc
		total time.Duration
	}
	logs := make([]doneLog, 0, len(f.jobs))
	for i, rec := range f.jobs {
		rec.finished = now
		rec.fl = nil
		if err != nil {
			rec.state = JobFailed
			rec.errMsg = err.Error()
		} else {
			rec.state = JobDone
			rec.res = res
		}
		s.finishTrace(rec, now)
		if i > 0 && rec.traceDoc != nil && execDoc != nil {
			// Graft a shallow copy of the shared execution into the
			// coalesced job's document so its trace shows where the time
			// went; the marker keeps it distinguishable from spans the job
			// owns (it may predate the job's own admission).
			shared := *execDoc
			shared.Attrs = sharedAttrs(execDoc.Attrs)
			rec.traceDoc.Root.Children = append(rec.traceDoc.Root.Children, &shared)
		}
		if rec.traceDoc != nil {
			logs = append(logs, doneLog{rec, rec.traceDoc, rec.traceDoc.Root.Duration})
		}
	}
	s.mu.Unlock()
	f.res, f.err = res, err
	close(f.done)
	for _, l := range logs {
		s.logJobDone(l.rec, l.doc, l.total, err)
	}
	if err != nil {
		s.logf("omd: job %s failed: %v", f.key[:12], err)
	} else {
		s.logf("omd: job %s done (%d bytes, %d waiters)", f.key[:12], len(res.image), len(f.jobs))
	}
}

// sharedAttrs copies a span's attributes and adds the shared-flight marker.
func sharedAttrs(attrs map[string]string) map[string]string {
	out := make(map[string]string, len(attrs)+1)
	for k, v := range attrs {
		out[k] = v
	}
	out["shared"] = "flight"
	return out
}

// logJobDone emits the structured completion record, correlated to the
// job's trace, and the full span tree when the job breaches the slow-job
// threshold.
func (s *Server) logJobDone(rec *jobRecord, doc *obs.TraceDoc, total time.Duration, err error) {
	attrs := []any{
		"trace", doc.TraceID,
		"job", rec.id,
		"state", string(rec.state),
		"total", total,
		"queue_wait", rec.queueWait,
		"exec", rec.exec,
		"coalesced", rec.coalesced,
	}
	if err != nil {
		s.slog.Error("omd job failed", append(attrs, "error", err.Error())...)
	} else {
		s.slog.Info("omd job done", attrs...)
	}
	if s.cfg.SlowJob > 0 && total >= s.cfg.SlowJob {
		s.slog.Warn("omd slow job",
			"trace", doc.TraceID, "job", rec.id,
			"total", total, "threshold", s.cfg.SlowJob,
			"spans", "\n"+doc.Render())
	}
}

// memoize stores a completed result with FIFO eviction; callers hold mu.
func (s *Server) memoize(key string, res *result) {
	if _, ok := s.memo[key]; ok {
		return
	}
	s.memo[key] = res
	s.memoOrder = append(s.memoOrder, key)
	if len(s.memoOrder) > s.cfg.MemoLimit {
		delete(s.memo, s.memoOrder[0])
		s.memoOrder = s.memoOrder[1:]
	}
}

// execute runs one link job end to end, warmest path first: a cached image
// needs nothing resolved at all; a resident decoded program skips compile,
// upload decode, and merge; and om.Run itself runs against the server's
// memo, so an options-only relink of a resident program re-lifts and
// re-analyzes nothing that the option change did not invalidate. A traced
// job bypasses the image cache — a journal cannot be reproduced from a
// cached image.
//
// sp is the execution span on the lead job's trace; every stage becomes a
// child, so the span tree mirrors the warm-path short-circuits (a cached
// image shows only the lookup; a resident program shows no compile/merge).
func (s *Server) execute(ctx context.Context, rs *resolved, sp *obs.Span) (*result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// A verifying job needs the journal of the run that produced its image,
	// so it can never be answered from the image cache (same reason as a
	// traced job). Shadow sampling is drawn here, before the cache lookup
	// would short-circuit, so every Nth fresh execution is checked even
	// when its image could have been served cold.
	verifying := rs.spec.Verify
	shadow := false
	if !verifying && s.cfg.VerifySample > 0 &&
		s.verifySeq.Add(1)%uint64(s.cfg.VerifySample) == 0 {
		shadow = true
	}
	// A linting job needs the symbolic program at both observer stages,
	// which only a fresh execution produces — no cache retains it.
	linting := rs.spec.Lint
	if !rs.traced && !verifying && !shadow && !linting {
		ics := sp.Child("image-cache")
		im, ok := s.cache.GetImage(rs.key)
		ics.SetAttr("hit", strconv.FormatBool(ok))
		ics.End()
		if ok {
			res := &result{imageCacheHit: true}
			var err error
			if res.image, err = imageBytes(im); err != nil {
				return nil, err
			}
			if rs.spec.Simulate {
				if res.sim, err = s.simulate(ctx, im, rs, sp); err != nil {
					return nil, err
				}
			}
			return res, nil
		}
	}

	pcs := sp.Child("program-cache")
	p, hit := s.progCache.Get(rs.progKey)
	pcs.SetAttr("hit", strconv.FormatBool(hit))
	pcs.End()
	if !hit {
		var objs []*objfile.Object
		var err error
		if rs.spec.Benchmark != "" {
			cs := sp.Child("compile")
			cs.SetAttr("benchmark", rs.spec.Benchmark)
			compileDone := obs.StartSpan(s.reg.Timer("omd/compile"))
			objs, err = s.compileBenchmark(rs)
			compileDone()
			cs.End()
		} else {
			ds := sp.Child("decode-objects")
			objs, err = rs.decodeObjects()
			ds.End()
		}
		if err != nil {
			return nil, err
		}
		if !rs.spec.NoStdlib {
			lib, err := s.libObjects()
			if err != nil {
				return nil, err
			}
			objs = append(append([]*objfile.Object(nil), objs...), lib...)
		}
		ms := sp.Child("merge")
		p, err = link.Merge(objs)
		ms.End()
		if err != nil {
			return nil, err
		}
		s.progCache.Put(rs.progKey, p)
	}

	omSpan := sp.Child("om")
	linkDone := obs.StartSpan(s.reg.Timer("omd/link"))
	opts := append(append([]om.Option(nil), rs.opts...),
		om.WithMetrics(s.reg), om.WithMemo(s.omMemo), om.WithSpan(omSpan))
	if rs.prof != nil {
		opts = append(opts, om.WithProfile(rs.prof))
	}
	if (verifying || shadow) && !rs.traced {
		// Validation replays the journal, so force one even when the client
		// did not ask for a trace; it is stripped from the result below.
		opts = append(opts, om.WithTrace())
	}
	var progReports []*dataflow.Report
	if linting {
		// The observer runs synchronously inside om.Run; each stage gets
		// its own analysis span on the job trace.
		opts = append(opts, om.WithProgObserver(func(stage om.ProgStage, pg *om.Prog, pl *om.Plan) error {
			as := sp.Child("lint-" + string(stage))
			defer as.End()
			rep, err := dataflow.AnalyzeProg(pg, pl, string(stage))
			if err != nil {
				return err
			}
			as.SetAttr("checked", strconv.FormatUint(rep.Checked, 10))
			as.SetAttr("errors", strconv.Itoa(rep.Errors()))
			progReports = append(progReports, rep)
			return nil
		}))
	}
	omres, err := om.Run(ctx, p, opts...)
	linkDone()
	omSpan.End()
	if err != nil {
		return nil, err
	}
	var vdoc *verify.Doc
	if verifying || shadow {
		if vdoc, err = s.verifyImage(omres.Image, omres.Journal, sp, verifying); err != nil {
			return nil, err
		}
	}
	var ldoc *LintDoc
	if linting {
		if ldoc, err = s.lintImage(progReports, omres.Image, sp); err != nil {
			return nil, err
		}
	}
	if !rs.traced && !verifying && !linting {
		if err := s.cache.PutImage(rs.key, omres.Image); err != nil {
			return nil, err
		}
	}
	res := &result{stats: omres.Stats, journal: omres.Journal, verify: vdoc, lint: ldoc}
	if !rs.traced {
		// The journal, if any, was forced for verification only.
		res.journal = nil
	}
	if res.image, err = imageBytes(omres.Image); err != nil {
		return nil, err
	}
	if rs.spec.Simulate {
		if res.sim, err = s.simulate(ctx, omres.Image, rs, sp); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func (s *Server) compileBenchmark(rs *resolved) ([]*objfile.Object, error) {
	b := rs.bench
	if rs.eachMode {
		var objs []*objfile.Object
		for _, m := range b.Modules {
			obj, err := s.cache.Compile(m.Name, []tcc.Source{m}, tcc.DefaultOptions())
			if err != nil {
				return nil, fmt.Errorf("%s: %w", b.Name, err)
			}
			objs = append(objs, obj)
		}
		return objs, nil
	}
	obj, err := s.cache.Compile(b.Name+"_all", b.Modules, tcc.InterprocOptions())
	if err != nil {
		return nil, fmt.Errorf("%s: %w", b.Name, err)
	}
	return []*objfile.Object{obj}, nil
}

func (s *Server) simulate(ctx context.Context, im *objfile.Image, rs *resolved, sp *obs.Span) (*SimStats, error) {
	cfg := sim.DefaultConfig()
	cfg.MaxInstructions = 2_000_000_000
	if rs.spec.MaxInstructions > 0 {
		cfg.MaxInstructions = rs.spec.MaxInstructions
	}
	simSpan := sp.Child("sim")
	simDone := obs.StartSpan(s.reg.Timer("omd/sim"))
	out, err := sim.RunContext(ctx, im, cfg)
	simDone()
	simSpan.End()
	if err != nil {
		return nil, fmt.Errorf("simulate: %w", err)
	}
	return &SimStats{
		Exit:         out.Exit,
		Output:       out.Output,
		Cycles:       out.Stats.Cycles,
		Instructions: out.Stats.Instructions,
		ICacheMisses: out.Stats.ICacheMisses,
		DCacheMisses: out.Stats.DCacheMisses,
	}, nil
}

// verifyImage translation-validates a freshly linked image against the
// decision journal of the run that produced it, under a "verify" child span
// with the verdict totals as attributes. An explicit (spec.Verify) failure
// fails the job; a sampled shadow failure logs and counts, so background
// verification can never break a build that was not asked to prove itself.
func (s *Server) verifyImage(im *objfile.Image, j *obs.JournalDoc, sp *obs.Span, explicit bool) (*verify.Doc, error) {
	vs := sp.Child("verify")
	defer vs.End()
	mode := "shadow"
	if explicit {
		mode = "explicit"
	}
	vs.SetAttr("mode", mode)
	s.reg.Counter("omd/verify-runs").Add(1)
	verifyDone := obs.StartSpan(s.reg.Timer("omd/verify"))
	doc, err := verify.ValidateImage(im, j)
	verifyDone()
	if doc != nil {
		vs.SetAttr("checked", strconv.FormatUint(doc.Checked, 10))
		vs.SetAttr("failed", strconv.FormatUint(doc.Failed, 10))
		s.reg.Counter("omd/verify-checked").Add(doc.Checked)
		s.reg.Counter("omd/verify-failed").Add(doc.Failed)
	}
	if err == nil {
		err = doc.Err()
	}
	if err != nil {
		vs.SetAttr("outcome", "failed")
		if explicit {
			return nil, fmt.Errorf("omd: verification failed: %w", err)
		}
		s.reg.Counter("omd/verify-shadow-failures").Add(1)
		s.slog.Warn("omd shadow verification failed", "err", err.Error())
		return nil, nil
	}
	vs.SetAttr("outcome", "ok")
	return doc, nil
}

// lintImage completes a lint job's analysis: the emitted image joins the
// two symbolic-program reports the observer collected, under a "lint"
// child span with the finding totals as attributes. Any error-severity
// finding across the three documents fails the job.
func (s *Server) lintImage(progReports []*dataflow.Report, im *objfile.Image, sp *obs.Span) (*LintDoc, error) {
	ls := sp.Child("lint")
	defer ls.End()
	s.reg.Counter("omd/lint-runs").Add(1)
	lintDone := obs.StartSpan(s.reg.Timer("omd/lint"))
	imgRep, err := dataflow.AnalyzeImage(im)
	lintDone()
	if err != nil {
		ls.SetAttr("outcome", "failed")
		return nil, fmt.Errorf("omd: lint: %w", err)
	}
	doc := &LintDoc{Schema: dataflow.Schema, Reports: append(progReports, imgRep)}
	ls.SetAttr("checked", strconv.FormatUint(doc.Checked(), 10))
	ls.SetAttr("errors", strconv.Itoa(doc.Errors()))
	s.reg.Counter("omd/lint-checked").Add(doc.Checked())
	s.reg.Counter("omd/lint-errors").Add(uint64(doc.Errors()))
	if n := doc.Errors(); n > 0 {
		ls.SetAttr("outcome", "failed")
		var first string
		for _, r := range doc.Reports {
			for _, f := range r.Findings {
				if f.Severity == dataflow.SevError {
					first = f.String()
					break
				}
			}
			if first != "" {
				break
			}
		}
		return nil, fmt.Errorf("omd: lint failed: %d error finding(s); first: %s", n, first)
	}
	ls.SetAttr("outcome", "ok")
	return doc, nil
}

func imageBytes(im *objfile.Image) ([]byte, error) {
	var buf bytes.Buffer
	if err := im.Write(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Drain stops admissions and waits for every queued and running job to
// finish; the context bounds the wait, after which in-flight work is
// hard-canceled. Drain is idempotent and safe to call concurrently.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	first := !s.draining
	if first {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	if first {
		s.logf("omd: draining (%d queued)", len(s.queue))
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return fmt.Errorf("omd: drain timed out, in-flight jobs canceled: %w", ctx.Err())
	}
}

// Close hard-stops the server: cancels every flight and reaps the pool.
func (s *Server) Close() {
	s.baseCancel()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = s.Drain(ctx)
}

func (s *Server) status(rec *jobRecord) JobStatus {
	st := JobStatus{
		ID:          rec.id,
		Key:         rec.key,
		State:       rec.state,
		Coalesced:   rec.coalesced,
		MemoHit:     rec.memoHit,
		Error:       rec.errMsg,
		SubmittedAt: rec.submitted,
		TraceID:     rec.trace.ID(),
		QueueWait:   rec.queueWait,
		Exec:        rec.exec,
	}
	if !rec.started.IsZero() {
		t := rec.started
		st.StartedAt = &t
	}
	if !rec.finished.IsZero() {
		t := rec.finished
		st.FinishedAt = &t
	}
	if rec.res != nil {
		st.ImageCacheHit = rec.res.imageCacheHit
		st.Stats = rec.res.stats
		st.Sim = rec.res.sim
		st.ImageBytes = len(rec.res.image)
		if rec.res.journal != nil {
			st.JournalEvents = len(rec.res.journal.Events)
		}
		if rec.res.verify != nil {
			st.Verified = true
			st.VerifyChecked = rec.res.verify.Checked
			st.VerifyFailed = rec.res.verify.Failed
		}
		if rec.res.lint != nil {
			st.Linted = true
			st.LintChecked = rec.res.lint.Checked()
		}
	}
	return st
}

// MetricsSnapshot is the /metrics payload: the registry, cache traffic,
// and queue occupancy in one deterministic document.
type MetricsSnapshot struct {
	Metrics []obs.SnapshotEntry `json:"metrics"`
	Cache   buildcache.Stats    `json:"cache"`
	Queue   QueueInfo           `json:"queue"`
}

// QueueInfo describes the admission queue and pool.
type QueueInfo struct {
	Depth    int   `json:"depth"`
	Capacity int   `json:"capacity"`
	Workers  int   `json:"workers"`
	Running  int   `json:"running"`
	Draining bool  `json:"draining"`
	UptimeMS int64 `json:"uptime_ms"`
}

// Counter returns a named counter's value from the snapshot (0 if absent).
func (m *MetricsSnapshot) Counter(name string) uint64 {
	for _, e := range m.Metrics {
		if e.Name == name && e.Kind == "counter" {
			return e.Count
		}
	}
	return 0
}

// Snapshot assembles the /metrics payload. Go runtime health — goroutine
// count, heap in use, cumulative GC pause — is refreshed into the registry
// as gauges on every snapshot, so both the JSON and Prometheus views carry
// it.
func (s *Server) Snapshot() MetricsSnapshot {
	s.recordRuntimeGauges()
	s.mu.Lock()
	draining := s.draining
	running := s.running
	s.mu.Unlock()
	return MetricsSnapshot{
		Metrics: s.reg.Snapshot(),
		Cache:   s.cache.Stats(),
		Queue: QueueInfo{
			Depth:    len(s.queue),
			Capacity: s.cfg.QueueDepth,
			Workers:  s.cfg.Workers,
			Running:  running,
			Draining: draining,
			UptimeMS: s.now().Sub(s.started).Milliseconds(),
		},
	}
}

// recordRuntimeGauges samples the Go runtime into the registry.
func (s *Server) recordRuntimeGauges() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.reg.SetGauge("runtime/goroutines", float64(runtime.NumGoroutine()))
	s.reg.SetGauge("runtime/heap-inuse-bytes", float64(ms.HeapInuse))
	s.reg.SetGauge("runtime/gc-pause-total-ns", float64(ms.PauseTotalNs))
}

// promEntries flattens the full snapshot — registry, cache traffic, queue
// occupancy — into one entry list for Prometheus text exposition.
func (s *Server) promEntries() []obs.SnapshotEntry {
	snap := s.Snapshot()
	c := snap.Cache
	q := snap.Queue
	counter := func(name string, v uint64) obs.SnapshotEntry {
		return obs.SnapshotEntry{Name: name, Kind: "counter", Count: v}
	}
	gauge := func(name string, v float64) obs.SnapshotEntry {
		return obs.SnapshotEntry{Name: name, Kind: "gauge", Gauge: v}
	}
	draining := 0.0
	if q.Draining {
		draining = 1
	}
	entries := append(snap.Metrics,
		counter("buildcache/hits", uint64(c.Hits)),
		counter("buildcache/disk-hits", uint64(c.DiskHits)),
		counter("buildcache/compiles", uint64(c.Misses)),
		counter("buildcache/image-hits", uint64(c.ImageHits)),
		counter("buildcache/image-misses", uint64(c.ImageMisses)),
		gauge("omd/queue-capacity", float64(q.Capacity)),
		gauge("omd/workers", float64(q.Workers)),
		gauge("omd/workers-running", float64(q.Running)),
		gauge("omd/draining", draining),
		gauge("omd/uptime-seconds", float64(q.UptimeMS)/1000),
	)
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Name != entries[j].Name {
			return entries[i].Name < entries[j].Name
		}
		return entries[i].Kind < entries[j].Kind
	})
	return entries
}

// retryAfter estimates how long a rejected client should back off: the
// mean job latency so far, clamped to [1s, 60s].
func (s *Server) retryAfter() int {
	st := s.reg.Timer("omd/job").Stats()
	if st.Count == 0 {
		return 1
	}
	secs := int(st.Sum.Seconds()/float64(st.Count)) + 1
	if secs > 60 {
		secs = 60
	}
	return secs
}

// Handler returns the HTTP API:
//
//	GET  /healthz            liveness + drain state
//	GET  /metrics            MetricsSnapshot (registry, cache, queue);
//	                         ?format=prometheus (or Accept: text/plain)
//	                         selects Prometheus text exposition
//	POST /jobs               submit a JobSpec; ?wait=1 blocks until done;
//	                         Om-Trace-Id names the job's trace
//	GET  /jobs               all job statuses, submission order
//	GET  /jobs/{id}          one job's status
//	GET  /jobs/{id}/image    the linked image (octet-stream)
//	GET  /jobs/{id}/journal  the decision journal (om-journal/v1)
//	GET  /jobs/{id}/verify   the verdict document (om-verify/v1; jobs
//	                         submitted with verify only)
//	GET  /jobs/{id}/lint     the findings documents (om-lint/v1; jobs
//	                         submitted with lint only)
//	GET  /jobs/{id}/trace    the job's span tree (om-trace/v1; live
//	                         snapshot while the job runs)
//	GET  /debug/flights      recent completed traces, newest first (?n=)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/image", s.handleImage)
	mux.HandleFunc("GET /jobs/{id}/journal", s.handleJournal)
	mux.HandleFunc("GET /jobs/{id}/verify", s.handleVerify)
	mux.HandleFunc("GET /jobs/{id}/lint", s.handleLint)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /debug/flights", s.handleFlights)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	_ = enc.Encode(v)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	status := "ok"
	code := http.StatusOK
	if draining {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{"status": status})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	if format == "prometheus" ||
		(format == "" && strings.Contains(r.Header.Get("Accept"), "text/plain")) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_ = obs.WritePrometheus(w, s.promEntries())
		return
	}
	writeJSON(w, http.StatusOK, s.Snapshot())
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	reqStart := s.now()
	var js JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&js); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	rs, err := js.resolve()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	wait := r.URL.Query().Get("wait") == "1"
	rec, f, err := s.submit(rs, wait, cleanTraceID(r.Header.Get(TraceHeader)), reqStart)
	switch {
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
		writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": err.Error()})
		return
	case errors.Is(err, errDraining):
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	if !wait || f == nil {
		code := http.StatusAccepted
		if f == nil {
			code = http.StatusOK // memo hit: already done
		}
		writeJSON(w, code, s.snapshotJob(rec.id))
		return
	}
	select {
	case <-f.done:
		writeJSON(w, http.StatusOK, s.snapshotJob(rec.id))
	case <-r.Context().Done():
		// Client disconnected mid-wait: drop our interest; the last
		// departing waiter cancels the execution itself.
		s.release(f)
	}
}

func (s *Server) snapshotJob(id string) JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.status(s.jobs[id])
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.status(s.jobs[id]))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// jobFor resolves {id} or writes a 404.
func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) *jobRecord {
	s.mu.Lock()
	rec := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if rec == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such job"})
	}
	return rec
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if rec := s.jobFor(w, r); rec != nil {
		writeJSON(w, http.StatusOK, s.snapshotJob(rec.id))
	}
}

func (s *Server) handleImage(w http.ResponseWriter, r *http.Request) {
	rec := s.jobFor(w, r)
	if rec == nil {
		return
	}
	s.mu.Lock()
	res := rec.res
	s.mu.Unlock()
	if res == nil {
		writeJSON(w, http.StatusConflict, map[string]string{"error": "job has no result yet"})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(res.image)
}

// cleanTraceID restricts a client-supplied trace id to printable ASCII and
// a sane length; anything else falls back to a server-assigned id.
func cleanTraceID(id string) string {
	if len(id) > 128 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		if id[i] < '!' || id[i] > '~' {
			return ""
		}
	}
	return id
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	rec := s.jobFor(w, r)
	if rec == nil {
		return
	}
	s.mu.Lock()
	doc := rec.traceDoc
	tr := rec.trace
	s.mu.Unlock()
	if doc == nil {
		// Not terminal yet: serve a live snapshot of the open tree.
		doc = tr.Doc()
	}
	if doc == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no trace"})
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleFlights(w http.ResponseWriter, r *http.Request) {
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		if v, err := strconv.Atoi(q); err == nil {
			n = v
		}
	}
	writeJSON(w, http.StatusOK, s.rec.Recent(n))
}

func (s *Server) handleJournal(w http.ResponseWriter, r *http.Request) {
	rec := s.jobFor(w, r)
	if rec == nil {
		return
	}
	s.mu.Lock()
	res := rec.res
	s.mu.Unlock()
	if res == nil || res.journal == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no journal (trace not requested or result cached)"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = obs.WriteJournal(w, res.journal)
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	rec := s.jobFor(w, r)
	if rec == nil {
		return
	}
	s.mu.Lock()
	res := rec.res
	s.mu.Unlock()
	if res == nil || res.verify == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no verdicts (job not submitted with verify)"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = verify.Write(w, res.verify)
}

func (s *Server) handleLint(w http.ResponseWriter, r *http.Request) {
	rec := s.jobFor(w, r)
	if rec == nil {
		return
	}
	s.mu.Lock()
	res := rec.res
	s.mu.Unlock()
	if res == nil || res.lint == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no findings (job not submitted with lint)"})
		return
	}
	writeJSON(w, http.StatusOK, res.lint)
}
