package omd_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/buildcache"
	"repro/internal/link"
	"repro/internal/objfile"
	"repro/internal/om"
	"repro/internal/omd"
	"repro/internal/omd/client"
	"repro/internal/rtlib"
	benchspec "repro/internal/spec"
	"repro/internal/tcc"
)

func newTestServer(t *testing.T, cfg omd.Config) *omd.Server {
	t.Helper()
	if cfg.Cache == nil {
		cache, err := buildcache.New("")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Cache = cache
	}
	s := omd.NewServer(cfg)
	t.Cleanup(s.Close)
	return s
}

func startHTTP(t *testing.T, s *omd.Server) *client.Client {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return client.New(ts.URL, ts.Client())
}

func optDoc(t *testing.T, opts ...om.Option) []byte {
	t.Helper()
	doc, err := om.MarshalOptions(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestCoalescingUnderLoad is the headline concurrency test: 50 clients
// hammer the server with 5 distinct specs (10 clients per spec). The
// singleflight map plus the completed-result memo must collapse all 250
// submissions into exactly 5 executions — one per distinct content key,
// ever — with every client of a spec receiving identical image bytes.
func TestCoalescingUnderLoad(t *testing.T) {
	s := newTestServer(t, omd.Config{Workers: 4, QueueDepth: 16})
	c := startHTTP(t, s)

	specs := []*omd.JobSpec{
		{Version: omd.SpecVersion, Benchmark: "li"},
		{Version: omd.SpecVersion, Benchmark: "li", Options: optDoc(t, om.WithLevel(om.LevelNone))},
		{Version: omd.SpecVersion, Benchmark: "li", Options: optDoc(t, om.WithLevel(om.LevelSimple))},
		{Version: omd.SpecVersion, Benchmark: "li", Options: optDoc(t, om.WithSchedule(true))},
		{Version: omd.SpecVersion, Benchmark: "compress"},
	}
	const perSpec = 10
	n := perSpec * len(specs)

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	type outcome struct {
		spec  int
		image []byte
		err   error
	}
	results := make([]outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			which := i % len(specs)
			results[i].spec = which
			st, err := c.SubmitWait(ctx, specs[which])
			if err != nil {
				results[i].err = err
				return
			}
			if st.State != omd.JobDone {
				results[i].err = fmt.Errorf("job %s: state %s (%s)", st.ID, st.State, st.Error)
				return
			}
			results[i].image, results[i].err = c.Image(ctx, st.ID)
		}(i)
	}
	wg.Wait()

	first := make(map[int][]byte)
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("client %d (spec %d): %v", i, r.spec, r.err)
		}
		if prev, ok := first[r.spec]; ok {
			if !bytes.Equal(prev, r.image) {
				t.Errorf("spec %d: divergent images across clients (%d vs %d bytes)", r.spec, len(prev), len(r.image))
			}
		} else {
			first[r.spec] = r.image
		}
	}

	snap, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	executed := snap.Counter("omd/jobs-executed")
	coalesced := snap.Counter("omd/coalesce-hits")
	memo := snap.Counter("omd/memo-hits")
	if executed != uint64(len(specs)) {
		t.Errorf("executed %d flights, want exactly %d (one per distinct spec)", executed, len(specs))
	}
	if got := executed + coalesced + memo; got != uint64(n) {
		t.Errorf("accounting: executed(%d)+coalesced(%d)+memo(%d) = %d, want %d",
			executed, coalesced, memo, got, n)
	}
	if rej := snap.Counter("omd/rejected-queue-full"); rej != 0 {
		t.Errorf("%d spurious queue-full rejections (coalesced duplicates must not occupy slots)", rej)
	}

	// A drain with nothing in flight completes promptly and cleanly.
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestSequentialMemo: a duplicate submitted after its twin finished (no
// in-flight coalescing possible) is served from the memo without a second
// execution.
func TestSequentialMemo(t *testing.T) {
	s := newTestServer(t, omd.Config{Workers: 2, QueueDepth: 8})
	c := startHTTP(t, s)
	ctx := context.Background()

	spec := &omd.JobSpec{Version: omd.SpecVersion, Benchmark: "compress"}
	st1, err := c.SubmitWait(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st1.State != omd.JobDone || st1.MemoHit {
		t.Fatalf("first run: state %s, memoHit %v", st1.State, st1.MemoHit)
	}
	st2, err := c.SubmitWait(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != omd.JobDone || !st2.MemoHit {
		t.Fatalf("second run: state %s, memoHit %v, want instant memo hit", st2.State, st2.MemoHit)
	}
	snap, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Counter("omd/jobs-executed"); got != 1 {
		t.Errorf("executed %d times, want 1", got)
	}
	im1, err := c.Image(ctx, st1.ID)
	if err != nil {
		t.Fatal(err)
	}
	im2, err := c.Image(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(im1, im2) {
		t.Error("memo-served image differs from the original")
	}
}

// TestQueueOverflow429: with one worker held mid-execution and a one-slot
// queue occupied, a third distinct submission must bounce with 429 and a
// Retry-After hint — and the held jobs must still complete once released.
func TestQueueOverflow429(t *testing.T) {
	s := newTestServer(t, omd.Config{Workers: 1, QueueDepth: 1})
	entered := make(chan string, 8)
	release := make(chan struct{})
	s.SetExecGate(func(key string) {
		entered <- key
		<-release
	})
	c := startHTTP(t, s)
	ctx := context.Background()

	mkSpec := func(lvl om.Level) *omd.JobSpec {
		return &omd.JobSpec{Version: omd.SpecVersion, Benchmark: "compress", Options: optDoc(t, om.WithLevel(lvl))}
	}

	stA, err := c.Submit(ctx, mkSpec(om.LevelNone))
	if err != nil {
		t.Fatalf("submit A: %v", err)
	}
	select {
	case <-entered: // worker holds flight A
	case <-time.After(30 * time.Second):
		t.Fatal("worker never picked up flight A")
	}
	stB, err := c.Submit(ctx, mkSpec(om.LevelSimple))
	if err != nil {
		t.Fatalf("submit B: %v", err)
	}

	_, err = c.Submit(ctx, mkSpec(om.LevelFull))
	if !client.IsQueueFull(err) {
		t.Fatalf("submit C: got %v, want 429 queue-full", err)
	}
	if ae := err.(*client.APIError); ae.RetryAfter < 1 {
		t.Errorf("429 carried Retry-After %d, want >= 1s", ae.RetryAfter)
	}

	// A duplicate of the queued spec still coalesces — backpressure applies
	// to new work only, never to joining an admitted flight.
	stB2, err := c.Submit(ctx, mkSpec(om.LevelSimple))
	if err != nil {
		t.Fatalf("duplicate of queued spec rejected: %v", err)
	}
	if !stB2.Coalesced {
		t.Error("duplicate of queued spec did not coalesce")
	}

	close(release)
	for _, id := range []string{stA.ID, stB.ID, stB2.ID} {
		st, err := c.Wait(ctx, id, 20*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != omd.JobDone {
			t.Errorf("job %s: state %s (%s)", id, st.State, st.Error)
		}
	}
	snap, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Counter("omd/rejected-queue-full"); got != 1 {
		t.Errorf("rejected-queue-full = %d, want 1", got)
	}
}

// TestDrainMidFlight: SIGTERM semantics. Draining stops admissions (503 on
// /jobs, 503 on /healthz) while queued and running jobs run to completion.
func TestDrainMidFlight(t *testing.T) {
	s := newTestServer(t, omd.Config{Workers: 1, QueueDepth: 4})
	entered := make(chan string, 8)
	release := make(chan struct{})
	s.SetExecGate(func(key string) {
		entered <- key
		<-release
	})
	c := startHTTP(t, s)
	ctx := context.Background()

	stA, err := c.Submit(ctx, &omd.JobSpec{Version: omd.SpecVersion, Benchmark: "compress"})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-entered:
	case <-time.After(30 * time.Second):
		t.Fatal("worker never picked up flight A")
	}
	stB, err := c.Submit(ctx, &omd.JobSpec{Version: omd.SpecVersion, Benchmark: "li"})
	if err != nil {
		t.Fatal(err)
	}

	drainErr := make(chan error, 1)
	dctx, dcancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer dcancel()
	go func() { drainErr <- s.Drain(dctx) }()

	// Drain flips the draining flag synchronously before waiting, so poll
	// until health reports it, then verify admissions are refused.
	deadline := time.Now().Add(10 * time.Second)
	for c.Healthy(ctx) {
		if time.Now().After(deadline) {
			t.Fatal("server never reported draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	_, err = c.Submit(ctx, &omd.JobSpec{Version: omd.SpecVersion, Benchmark: "ear"})
	ae, ok := err.(*client.APIError)
	if !ok || ae.Code != 503 {
		t.Fatalf("submission during drain: got %v, want 503", err)
	}

	close(release)
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// In-flight and queued jobs completed rather than being dropped.
	for _, id := range []string{stA.ID, stB.ID} {
		st, err := c.Status(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != omd.JobDone {
			t.Errorf("job %s after drain: state %s (%s), want done", id, st.State, st.Error)
		}
	}
}

// loopObject compiles a program that spins for billions of instructions —
// far longer than any test budget — so only cancellation can end its
// simulation.
func loopObject(t *testing.T) []byte {
	t.Helper()
	obj, err := tcc.Compile("loop", []tcc.Source{{Name: "loop", Text: `
long main() {
	long i;
	i = 0;
	while (i < 4000000000) {
		i = i + 1;
	}
	return 0;
}
`}}, tcc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obj.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestClientDisconnectCancelsSimulation: a waiting client that disconnects
// is the only party interested in its flight, so the flight context is
// canceled and the cancellation reaches the running simulator (sim's run
// loop polls it every 64Ki instructions). The job must fail with the
// simulator's cancellation error, not run to completion or time out.
func TestClientDisconnectCancelsSimulation(t *testing.T) {
	s := newTestServer(t, omd.Config{Workers: 1, QueueDepth: 4, JobTimeout: 5 * time.Minute})
	// Pre-warm the runtime library so the held execution reaches the
	// simulator quickly after release.
	if err := s.PrewarmLib(); err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{}, 1)
	s.SetExecGate(func(string) { started <- struct{}{} })
	c := startHTTP(t, s)

	spec := &omd.JobSpec{
		Version:         omd.SpecVersion,
		Objects:         [][]byte{loopObject(t)},
		Options:         optDoc(t, om.WithLevel(om.LevelNone)),
		Simulate:        true,
		MaxInstructions: 1 << 42,
	}

	cctx, disconnect := context.WithCancel(context.Background())
	waitErr := make(chan error, 1)
	go func() {
		_, err := c.SubmitWait(cctx, spec)
		waitErr <- err
	}()

	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("execution never started")
	}
	// Give the pipeline time to get past compile/merge/OM (all fast at
	// level none with a warm library) and into the multi-minute simulation.
	time.Sleep(1500 * time.Millisecond)
	disconnect()
	if err := <-waitErr; err == nil {
		t.Fatal("SubmitWait returned nil after client disconnect")
	}

	// The abandoned flight must fail promptly with the simulator's
	// cancellation error.
	ctx := context.Background()
	deadline := time.Now().Add(30 * time.Second)
	for {
		jobs, err := c.List(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(jobs) != 1 {
			t.Fatalf("have %d jobs, want 1", len(jobs))
		}
		st := jobs[0]
		if st.State == omd.JobFailed {
			if !strings.Contains(st.Error, "canceled") {
				t.Fatalf("job failed with %q, want a cancellation error", st.Error)
			}
			if !strings.Contains(st.Error, "sim: run canceled") {
				t.Fatalf("job failed with %q, want the simulator's cancellation error (cancel did not reach the run loop)", st.Error)
			}
			break
		}
		if st.State == omd.JobDone {
			t.Fatal("abandoned simulation ran to completion instead of being canceled")
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s after disconnect", st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}

	snap, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Counter("omd/flights-abandoned"); got != 1 {
		t.Errorf("flights-abandoned = %d, want 1", got)
	}
}

// TestServedImageMatchesLocalRun: the daemon is a transport, not a
// different linker — a benchmark job and an uploaded-objects job must both
// produce images byte-identical to the same pipeline run locally.
func TestServedImageMatchesLocalRun(t *testing.T) {
	const bench = "compress"
	b, ok := benchspec.ByName(bench)
	if !ok {
		t.Fatal("no benchmark", bench)
	}
	var objs []*objfile.Object
	var uploads [][]byte
	for _, m := range b.Modules {
		obj, err := tcc.Compile(m.Name, []tcc.Source{m}, tcc.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, obj)
		var buf bytes.Buffer
		if err := obj.Write(&buf); err != nil {
			t.Fatal(err)
		}
		uploads = append(uploads, buf.Bytes())
	}
	lib, err := rtlib.StandardObjects()
	if err != nil {
		t.Fatal(err)
	}
	p, err := link.Merge(append(append([]*objfile.Object(nil), objs...), lib...))
	if err != nil {
		t.Fatal(err)
	}
	res, err := om.Run(context.Background(), p, om.WithSchedule(true))
	if err != nil {
		t.Fatal(err)
	}
	var localBuf bytes.Buffer
	if err := res.Image.Write(&localBuf); err != nil {
		t.Fatal(err)
	}
	local := localBuf.Bytes()

	s := newTestServer(t, omd.Config{Workers: 2, QueueDepth: 8})
	c := startHTTP(t, s)
	ctx := context.Background()
	doc := optDoc(t, om.WithSchedule(true))

	for _, tc := range []struct {
		name string
		spec *omd.JobSpec
	}{
		{"benchmark", &omd.JobSpec{Version: omd.SpecVersion, Benchmark: bench, Options: doc}},
		{"uploaded", &omd.JobSpec{Version: omd.SpecVersion, Objects: uploads, Options: doc}},
	} {
		st, err := c.SubmitWait(ctx, tc.spec)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if st.State != omd.JobDone {
			t.Fatalf("%s: state %s (%s)", tc.name, st.State, st.Error)
		}
		served, err := c.Image(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(served, local) {
			t.Errorf("%s job: served image differs from local om.Run (%d vs %d bytes)",
				tc.name, len(served), len(local))
		}
	}
}

// TestTracedJobReturnsJournal: trace jobs bypass the image cache and carry
// a decision journal.
func TestTracedJobReturnsJournal(t *testing.T) {
	s := newTestServer(t, omd.Config{Workers: 2, QueueDepth: 8})
	c := startHTTP(t, s)
	ctx := context.Background()

	st, err := c.SubmitWait(ctx, &omd.JobSpec{
		Version:   omd.SpecVersion,
		Benchmark: "compress",
		Options:   optDoc(t, om.WithTrace()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != omd.JobDone {
		t.Fatalf("state %s (%s)", st.State, st.Error)
	}
	if st.JournalEvents == 0 {
		t.Error("traced job reported no journal events")
	}
	data, err := c.Journal(ctx, st.ID)
	if err != nil {
		t.Fatalf("journal fetch: %v", err)
	}
	if !bytes.Contains(data, []byte("om-journal/v1")) {
		t.Errorf("journal payload missing version tag (got %d bytes)", len(data))
	}
}

// TestSimulatedJobReturnsStats: a Simulate job carries dynamic statistics.
func TestSimulatedJobReturnsStats(t *testing.T) {
	s := newTestServer(t, omd.Config{Workers: 2, QueueDepth: 8})
	c := startHTTP(t, s)
	ctx := context.Background()

	st, err := c.SubmitWait(ctx, &omd.JobSpec{Version: omd.SpecVersion, Benchmark: "compress", Simulate: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != omd.JobDone {
		t.Fatalf("state %s (%s)", st.State, st.Error)
	}
	if st.Sim == nil || st.Sim.Instructions == 0 || st.Sim.Cycles == 0 {
		t.Fatalf("simulated job carried no dynamic stats: %+v", st.Sim)
	}
}

// TestSpecValidation rejects malformed job documents before admission.
func TestSpecValidation(t *testing.T) {
	good := func() *omd.JobSpec { return &omd.JobSpec{Version: omd.SpecVersion, Benchmark: "li"} }
	cases := []struct {
		name string
		mut  func(*omd.JobSpec)
	}{
		{"wrong version", func(js *omd.JobSpec) { js.Version = "omd-job/v0" }},
		{"neither input", func(js *omd.JobSpec) { js.Benchmark = "" }},
		{"both inputs", func(js *omd.JobSpec) { js.Objects = [][]byte{{1}} }},
		{"unknown benchmark", func(js *omd.JobSpec) { js.Benchmark = "nosuch" }},
		{"bad build mode", func(js *omd.JobSpec) { js.BuildMode = "interleave" }},
		{"negative timeout", func(js *omd.JobSpec) { js.TimeoutMS = -1 }},
		{"garbage options", func(js *omd.JobSpec) { js.Options = []byte(`{"version":"nope"}`) }},
		{"garbage profile", func(js *omd.JobSpec) { js.Profile = []byte(`{"not":"a profile"}`) }},
		{"build mode with objects", func(js *omd.JobSpec) {
			js.Benchmark = ""
			js.Objects = [][]byte{{1}}
			js.BuildMode = "compile-each"
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			js := good()
			tc.mut(js)
			if _, err := omd.ResolveKey(js); err == nil {
				t.Errorf("resolve accepted %+v", js)
			}
		})
	}
	if _, err := omd.ResolveKey(good()); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// TestCoalescingKeyDiscriminates: specs that must not share results get
// distinct keys; cosmetic differences (option document formatting) and
// scheduling knobs do not.
func TestCoalescingKeyDiscriminates(t *testing.T) {
	key := func(js *omd.JobSpec) string {
		k, err := omd.ResolveKey(js)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	base := key(&omd.JobSpec{Version: omd.SpecVersion, Benchmark: "li"})
	distinct := map[string]string{
		"level":    key(&omd.JobSpec{Version: omd.SpecVersion, Benchmark: "li", Options: optDoc(t, om.WithLevel(om.LevelNone))}),
		"bench":    key(&omd.JobSpec{Version: omd.SpecVersion, Benchmark: "compress"}),
		"simulate": key(&omd.JobSpec{Version: omd.SpecVersion, Benchmark: "li", Simulate: true}),
		"stdlib":   key(&omd.JobSpec{Version: omd.SpecVersion, Benchmark: "li", NoStdlib: true}),
		"mode":     key(&omd.JobSpec{Version: omd.SpecVersion, Benchmark: "li", BuildMode: "compile-all"}),
	}
	seen := map[string]string{base: "base"}
	for name, k := range distinct {
		if prev, dup := seen[k]; dup {
			t.Errorf("specs %q and %q share a key", name, prev)
		}
		seen[k] = name
	}
	// The default option document and an explicit copy of it are the same
	// job: the key sees the canonical form, not the client's bytes.
	explicit := key(&omd.JobSpec{Version: omd.SpecVersion, Benchmark: "li", Options: optDoc(t)})
	if explicit != base {
		t.Error("explicit default options changed the key")
	}
	// Timeout is a scheduling knob, not a result input: it must not split
	// otherwise identical jobs into separate executions.
	timed := key(&omd.JobSpec{Version: omd.SpecVersion, Benchmark: "li", TimeoutMS: 30_000})
	if timed != base {
		t.Error("timeout_ms changed the coalescing key")
	}
}
