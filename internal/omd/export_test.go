package omd

// Test-only handles on server internals, consumed by the external omd_test
// package (which must live outside this package to import the client
// without a cycle).

// SetExecGate installs a hook that runs at the top of every execution; set
// it before the first submission (the queue-channel handoff orders the
// write for the workers).
func (s *Server) SetExecGate(f func(key string)) { s.execGate = f }

// PrewarmLib compiles the runtime library now, so a gated test's execution
// reaches the interesting phase quickly after release.
func (s *Server) PrewarmLib() error {
	_, err := s.libObjects()
	return err
}

// ResolveKey runs spec validation and returns the coalescing key.
func ResolveKey(js *JobSpec) (string, error) {
	rs, err := js.resolve()
	if err != nil {
		return "", err
	}
	return rs.key, nil
}
