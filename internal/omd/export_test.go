package omd

// Test-only handles on server internals, consumed by the external omd_test
// package (which must live outside this package to import the client
// without a cycle).

import "time"

// SetExecGate installs a hook that runs at the top of every execution; set
// it before the first submission (the queue-channel handoff orders the
// write for the workers).
func (s *Server) SetExecGate(f func(key string)) { s.execGate = f }

// PrewarmLib compiles the runtime library now, so a gated test's execution
// reaches the interesting phase quickly after release.
func (s *Server) PrewarmLib() error {
	_, err := s.libObjects()
	return err
}

// ResolveKey runs spec validation and returns the coalescing key.
func ResolveKey(js *JobSpec) (string, error) {
	rs, err := js.resolve()
	if err != nil {
		return "", err
	}
	return rs.key, nil
}

// SubmitProbe resolves the spec and admits it without waiting, reporting
// whether it was served from the completed-result memo. It exposes the warm
// submit path directly — no HTTP — so tests can pin its allocation cost.
func (s *Server) SubmitProbe(js *JobSpec) (bool, error) {
	rs, err := js.resolve()
	if err != nil {
		return false, err
	}
	rec, _, err := s.submit(rs, false, "", time.Time{})
	if err != nil {
		return false, err
	}
	return rec.memoHit, nil
}
