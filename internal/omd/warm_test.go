package omd_test

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/om"
	"repro/internal/omd"
	"repro/internal/tcc"
)

// TestWarmRelinkSkipsDecodeAndLift: an options-only relink of a program the
// server has already linked must run entirely on the resident caches — the
// om pipeline's own counters prove it re-decoded zero modules and re-lifted
// zero procedures, replaying the cached lift instead.
func TestWarmRelinkSkipsDecodeAndLift(t *testing.T) {
	s := newTestServer(t, omd.Config{Workers: 2, QueueDepth: 8})
	c := startHTTP(t, s)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	run := func(spec *omd.JobSpec) {
		t.Helper()
		st, err := c.SubmitWait(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != omd.JobDone {
			t.Fatalf("job %s: state %s (%s)", st.ID, st.State, st.Error)
		}
	}

	// Cold: first contact with the benchmark decodes and lifts everything.
	run(&omd.JobSpec{Version: omd.SpecVersion, Benchmark: "li",
		Options: optDoc(t, om.WithLevel(om.LevelFull))})
	cold, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Counter("om/decode/modules") == 0 || cold.Counter("om/lift/procs") == 0 {
		t.Fatalf("cold run recorded no decode/lift work: decode=%d lift=%d",
			cold.Counter("om/decode/modules"), cold.Counter("om/lift/procs"))
	}

	// Warm: the same program under different option sets. Each is a distinct
	// job key (no image-cache or memo hit), yet the resident program cache
	// and lift store mean no module is re-decoded and no procedure re-lifted.
	run(&omd.JobSpec{Version: omd.SpecVersion, Benchmark: "li",
		Options: optDoc(t, om.WithLevel(om.LevelSimple))})
	run(&omd.JobSpec{Version: omd.SpecVersion, Benchmark: "li",
		Options: optDoc(t, om.WithLevel(om.LevelFull), om.WithSchedule(true))})
	warm, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}

	if got, was := warm.Counter("om/decode/modules"), cold.Counter("om/decode/modules"); got != was {
		t.Errorf("warm relinks re-decoded %d modules, want 0", got-was)
	}
	if got, was := warm.Counter("om/lift/procs"), cold.Counter("om/lift/procs"); got != was {
		t.Errorf("warm relinks re-lifted %d procedures, want 0", got-was)
	}
	if warm.Counter("om/lift/replayed") == 0 {
		t.Error("warm relinks replayed no lifted procedures")
	}
	if warm.Counter("stage/program/hits") == 0 {
		t.Error("warm relinks never hit the resident program cache")
	}
	if warm.Counter("stage/lift/hits") == 0 {
		t.Error("warm relinks never hit the lift store")
	}
	if executed := warm.Counter("omd/jobs-executed"); executed != 3 {
		t.Errorf("executed %d flights, want 3 (distinct options must not coalesce)", executed)
	}
}

// TestConcurrentMixedOptionsRaceClean: 50 clients submit 10 distinct
// (benchmark, options) jobs concurrently, so several workers link through
// the shared program cache and OM memo at once — the -race gate's probe of
// the warm path. Every client of a spec must see identical image bytes.
func TestConcurrentMixedOptionsRaceClean(t *testing.T) {
	s := newTestServer(t, omd.Config{Workers: 4, QueueDepth: 32})
	c := startHTTP(t, s)

	var specs []*omd.JobSpec
	for _, bench := range []string{"li", "compress"} {
		for _, opts := range [][]om.Option{
			{om.WithLevel(om.LevelNone)},
			{om.WithLevel(om.LevelSimple)},
			{om.WithLevel(om.LevelFull)},
			{om.WithLevel(om.LevelFull), om.WithSchedule(true)},
			{om.WithLevel(om.LevelSimple), om.WithSchedule(true)},
		} {
			specs = append(specs, &omd.JobSpec{
				Version:   omd.SpecVersion,
				Benchmark: bench,
				Options:   optDoc(t, opts...),
			})
		}
	}

	const clients = 50
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	images := make([][]byte, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := c.SubmitWait(ctx, specs[i%len(specs)])
			if err != nil {
				errs[i] = err
				return
			}
			if st.State != omd.JobDone {
				errs[i] = fmt.Errorf("job %s: state %s (%s)", st.ID, st.State, st.Error)
				return
			}
			images[i], errs[i] = c.Image(ctx, st.ID)
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d (spec %d): %v", i, i%len(specs), err)
		}
	}
	for i := len(specs); i < clients; i++ {
		if !bytes.Equal(images[i], images[i%len(specs)]) {
			t.Errorf("client %d: image diverged from its spec twin", i)
		}
	}

	snap, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if executed := snap.Counter("omd/jobs-executed"); executed != uint64(len(specs)) {
		t.Errorf("executed %d flights, want %d", executed, len(specs))
	}
	// Ten option sets over two programs: eight of the ten links found their
	// program resident, and the lift store served every warm one.
	if hits := snap.Counter("stage/program/hits"); hits != uint64(len(specs)-2) {
		t.Errorf("stage/program/hits = %d, want %d", hits, len(specs)-2)
	}
	if snap.Counter("stage/lift/hits") == 0 {
		t.Error("concurrent warm links never hit the lift store")
	}
}

// uploadObject compiles one source text and returns its serialized module.
func uploadObject(t *testing.T, unit, src string) []byte {
	t.Helper()
	obj, err := tcc.Compile(unit, []tcc.Source{{Name: unit, Text: src}}, tcc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obj.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMemoHitSubmitAllocsConstant: re-submitting a finished job is the
// warmest path the daemon has — it must cost a small constant number of
// allocations, independent of how large the uploaded program is. This pins
// the submit path against accidentally decoding, hashing into fresh
// buffers, or copying payloads per poll.
func TestMemoHitSubmitAllocsConstant(t *testing.T) {
	s := newTestServer(t, omd.Config{Workers: 2, QueueDepth: 8})
	c := startHTTP(t, s)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	small := "long main() { return 0; }\n"
	var big strings.Builder
	big.WriteString("long main() {\n\tlong i;\n\ti = 0;\n")
	for i := 0; i < 3000; i++ {
		big.WriteString("\ti = i + 1;\n")
	}
	big.WriteString("\treturn 0;\n}\n")

	probe := func(unit, src string) float64 {
		spec := &omd.JobSpec{
			Version: omd.SpecVersion,
			Objects: [][]byte{uploadObject(t, unit, src)},
		}
		st, err := c.SubmitWait(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != omd.JobDone {
			t.Fatalf("warmup job: state %s (%s)", st.State, st.Error)
		}
		return testing.AllocsPerRun(200, func() {
			hit, err := s.SubmitProbe(spec)
			if err != nil {
				t.Fatal(err)
			}
			if !hit {
				t.Fatal("probe missed the completed-result memo")
			}
		})
	}

	smallAllocs := probe("small", small)
	bigAllocs := probe("big", big.String())
	if smallAllocs > 100 {
		t.Errorf("memo-hit submit allocates %.0f objects, want a small constant", smallAllocs)
	}
	if diff := bigAllocs - smallAllocs; diff > 10 || diff < -10 {
		t.Errorf("memo-hit allocations scale with program size: %.0f (small) vs %.0f (big)",
			smallAllocs, bigAllocs)
	}
}
