// Package client is the typed HTTP client for the omd link service: it
// submits omd-job/v1 specs, polls job status, and fetches results, speaking
// the wire types of package omd directly.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/omd"
)

// Client talks to one omd server.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the server at baseURL (e.g. "http://localhost:7333").
// httpClient nil selects http.DefaultClient.
func New(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: httpClient}
}

// APIError is a non-2xx server response.
type APIError struct {
	Code int
	// RetryAfter is the server's backoff hint in seconds (429 only).
	RetryAfter int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("omd: server returned %d: %s", e.Code, e.Message)
}

// IsQueueFull reports whether err is the server's admission-queue-overflow
// rejection (HTTP 429).
func IsQueueFull(err error) bool {
	ae, ok := err.(*APIError)
	return ok && ae.Code == http.StatusTooManyRequests
}

func (c *Client) do(req *http.Request) (*http.Response, error) {
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return resp, nil
	}
	defer resp.Body.Close()
	ae := &APIError{Code: resp.StatusCode}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
		ae.RetryAfter = ra
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err == nil {
		ae.Message = body.Error
	}
	return nil, ae
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit enqueues a job and returns immediately with its queued status.
func (c *Client) Submit(ctx context.Context, spec *omd.JobSpec) (*omd.JobStatus, error) {
	return c.submit(ctx, spec, "", false)
}

// SubmitWait enqueues a job and blocks until it finishes (or ctx is done —
// disconnecting tells the server this waiter is gone, which cancels the
// execution if no one else shares it).
func (c *Client) SubmitWait(ctx context.Context, spec *omd.JobSpec) (*omd.JobStatus, error) {
	return c.submit(ctx, spec, "", true)
}

// SubmitTraced enqueues a job under a caller-chosen trace id, propagated to
// the server in the Om-Trace-Id header so the job's span tree, log lines,
// and flight-recorder entry all carry the caller's correlation key. An
// empty id lets the server assign one (identical to Submit/SubmitWait).
func (c *Client) SubmitTraced(ctx context.Context, spec *omd.JobSpec, traceID string, wait bool) (*omd.JobStatus, error) {
	return c.submit(ctx, spec, traceID, wait)
}

func (c *Client) submit(ctx context.Context, spec *omd.JobSpec, traceID string, wait bool) (*omd.JobStatus, error) {
	data, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	url := c.base + "/jobs"
	if wait {
		url += "?wait=1"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		req.Header.Set(omd.TraceHeader, traceID)
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st omd.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Status fetches one job's current state.
func (c *Client) Status(ctx context.Context, id string) (*omd.JobStatus, error) {
	var st omd.JobStatus
	if err := c.getJSON(ctx, "/jobs/"+id, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Wait polls a job until it reaches a terminal state. The poll interval
// starts at `initial` (<= 0 selects 20ms) and doubles after every inactive
// poll up to 32× the start, so short jobs resolve quickly while long jobs
// don't hammer the server. Each sleep is jittered ±25% — derived from the
// job id so the schedule is reproducible — which spreads out the polls of
// many waiters that submitted in the same burst.
func (c *Client) Wait(ctx context.Context, id string, initial time.Duration) (*omd.JobStatus, error) {
	if initial <= 0 {
		initial = 20 * time.Millisecond
	}
	max := 32 * initial
	// Cheap deterministic jitter source: hash the job id once, then step a
	// xorshift sequence per poll. No global RNG, no time-based seeding.
	seed := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		seed ^= uint64(id[i])
		seed *= 1099511628211
	}
	if seed == 0 {
		seed = 1
	}
	interval := initial
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.State == omd.JobDone || st.State == omd.JobFailed {
			return st, nil
		}
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		// delay = interval ± 25%.
		jitter := time.Duration(seed % uint64(interval/2))
		delay := interval*3/4 + jitter
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		case <-t.C:
		}
		if interval *= 2; interval > max {
			interval = max
		}
	}
}

// List fetches every job's status in submission order.
func (c *Client) List(ctx context.Context) ([]omd.JobStatus, error) {
	var out []omd.JobStatus
	if err := c.getJSON(ctx, "/jobs", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Image fetches a finished job's linked image bytes.
func (c *Client) Image(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/jobs/"+id+"/image", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// Journal fetches a traced job's decision journal (om-journal/v1 bytes).
func (c *Client) Journal(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/jobs/"+id+"/journal", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// Verify fetches a verified job's verdict document (om-verify/v1 bytes).
func (c *Client) Verify(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/jobs/"+id+"/verify", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// Lint fetches a linted job's findings documents (om-lint/v1 bytes).
func (c *Client) Lint(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/jobs/"+id+"/lint", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// Trace fetches a job's span tree (om-trace/v1). While the job is live the
// server returns a snapshot of the open tree; after completion, the final
// recorded document.
func (c *Client) Trace(ctx context.Context, id string) (*obs.TraceDoc, error) {
	var doc obs.TraceDoc
	if err := c.getJSON(ctx, "/jobs/"+id+"/trace", &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// Flights fetches the server's most recent completed traces, newest first.
// n <= 0 returns everything the flight recorder retains.
func (c *Client) Flights(ctx context.Context, n int) ([]*obs.TraceDoc, error) {
	path := "/debug/flights"
	if n > 0 {
		path += "?n=" + strconv.Itoa(n)
	}
	var out []*obs.TraceDoc
	if err := c.getJSON(ctx, path, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Metrics fetches the server's metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (*omd.MetricsSnapshot, error) {
	var snap omd.MetricsSnapshot
	if err := c.getJSON(ctx, "/metrics", &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// Healthy reports whether the server answers /healthz with 200.
func (c *Client) Healthy(ctx context.Context) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return true
}
