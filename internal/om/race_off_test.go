//go:build !race

package om

const raceEnabled = false
