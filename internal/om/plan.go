package om

import (
	"fmt"
	"sort"

	"repro/internal/link"
	"repro/internal/objfile"
)

// planOpts control layout policy.
type planOpts struct {
	// reduceGAT drops GAT slots with no remaining address loads.
	reduceGAT bool
	// sortCommons places common blocks, sorted by size, with the small data
	// right after the GAT (the OM data-placement optimization).
	sortCommons bool
}

// Plan is a concrete memory layout for the current symbolic program. Data
// addresses are final; text addresses are estimates that emission
// recomputes into its own scratch (alignment padding may shift
// procedures), which is safe because no GP-relative displacement depends
// on a text address. A computed plan is read-only thereafter, so one plan
// can serve the pass memo and any number of concurrent replay emissions.
type Plan struct {
	pg   *Prog
	opts planOpts

	// GAT placement.
	gat      *link.GATPlan
	gatStart []uint64
	gp       []uint64
	keySlot  []map[link.TargetKey]int

	// Text estimate.
	procAddr map[*Proc]uint64

	// Data placement.
	secBase    [][objfile.NumSections]uint64
	commonAddr map[string]uint64
	dataEnd    [2]uint64 // per region: static, shared
}

// regionOf returns 0 for static modules, 1 for shared-library modules.
func (pl *Plan) regionOf(m int) int {
	if pl.pg.P.IsShared(m) {
		return 1
	}
	return 0
}

// computePlan lays out the program under the given policy.
func computePlan(pg *Prog, opts planOpts) (*Plan, error) {
	p := pg.P
	pl := &Plan{pg: pg, opts: opts, procAddr: make(map[*Proc]uint64)}

	// Which module slots are still referenced by live address loads?
	var keep func(m, slot int) bool
	if opts.reduceGAT {
		moduleKeys, err := link.ModuleKeys(p)
		if err != nil {
			return nil, err
		}
		live := make([]map[link.TargetKey]bool, len(p.Objects))
		for i := range live {
			live[i] = make(map[link.TargetKey]bool)
		}
		for _, pr := range pg.Procs {
			for _, si := range pr.Insts {
				if si.Deleted || si.Lit == nil {
					continue
				}
				if si.Lit.Converted || si.Lit.Nullified {
					continue
				}
				live[pr.Mod][si.Lit.Key] = true
			}
		}
		keep = func(m, slot int) bool { return live[m][moduleKeys[m][slot]] }
	}
	gat, err := link.AssignGATs(p, keep)
	if err != nil {
		return nil, err
	}
	pl.gat = gat

	// Text estimate: procedures in order, each aligned to a quadword,
	// placed per region.
	tcur := [2]uint64{objfile.TextBase, objfile.SharedTextBase}
	for _, pr := range pg.Procs {
		r := pl.regionOf(pr.Mod)
		tcur[r] = (tcur[r] + 7) &^ 7
		pl.procAddr[pr] = tcur[r]
		n := 0
		for _, si := range pr.Insts {
			if !si.Deleted {
				n++
			}
		}
		tcur[r] += uint64(n) * 4
	}

	// Data placement, per region.
	dcur := [2]uint64{objfile.DataBase, objfile.SharedDataBase}
	pl.gatStart = make([]uint64, len(gat.Slots))
	pl.gp = make([]uint64, len(gat.Slots))
	pl.keySlot = make([]map[link.TargetKey]int, len(gat.Slots))
	for g, slots := range gat.Slots {
		r := 0
		if gat.GATShared[g] {
			r = 1
		}
		pl.gatStart[g] = dcur[r]
		pl.gp[g] = pl.gatStart[g] + link.GPOffset
		pl.keySlot[g] = make(map[link.TargetKey]int, len(slots))
		for i, k := range slots {
			pl.keySlot[g][k] = i
		}
		dcur[r] += uint64(len(slots)) * 8
	}
	pl.commonAddr = make(map[string]uint64)
	placeCommons := func() {
		commons := append([]*link.Common(nil), p.Commons...)
		if opts.sortCommons {
			sort.Slice(commons, func(i, j int) bool {
				if commons[i].Size != commons[j].Size {
					return commons[i].Size < commons[j].Size
				}
				return commons[i].Name < commons[j].Name
			})
		}
		for _, c := range commons {
			dcur[0] = (dcur[0] + c.Align - 1) &^ (c.Align - 1)
			pl.commonAddr[c.Name] = dcur[0]
			dcur[0] += c.Size
		}
	}
	pl.secBase = make([][objfile.NumSections]uint64, len(p.Objects))
	place := func(sec objfile.SectionKind) {
		for m, obj := range p.Objects {
			r := pl.regionOf(m)
			dcur[r] = (dcur[r] + 7) &^ 7
			pl.secBase[m][sec] = dcur[r]
			dcur[r] += obj.Sections[sec].Size
		}
	}
	if opts.sortCommons {
		// OM placement: small things first, near the GAT.
		placeCommons()
		place(objfile.SecSData)
		place(objfile.SecSBss)
		place(objfile.SecData)
		place(objfile.SecBss)
	} else {
		// Standard placement.
		place(objfile.SecSData)
		place(objfile.SecData)
		placeCommons()
		place(objfile.SecSBss)
		place(objfile.SecBss)
	}
	pl.dataEnd = [2]uint64{(dcur[0] + 7) &^ 7, (dcur[1] + 7) &^ 7}
	return pl, nil
}

// GPOf returns the GP value of the procedure's module.
func (pl *Plan) GPOf(pr *Proc) uint64 { return pl.gp[pl.gat.ModuleGAT[pr.Mod]] }

// GPGroup returns the GAT index of the procedure's module.
func (pl *Plan) GPGroup(pr *Proc) int { return pl.gat.ModuleGAT[pr.Mod] }

// SameGAT reports whether two procedures share a global address table (and
// therefore a GP value).
func (pl *Plan) SameGAT(a, b *Proc) bool { return pl.GPGroup(a) == pl.GPGroup(b) }

// AddrOfKey returns the final address of a resolved target plus addend.
// Text addresses are estimates during transformation; emission recomputes
// them into its own scratch (addrOfKeyAt), leaving the plan untouched.
func (pl *Plan) AddrOfKey(k link.TargetKey) (uint64, error) {
	return pl.addrOfKeyAt(k, pl.procAddr)
}

// addrOfKeyAt is AddrOfKey with procedure addresses read from the given
// map — emission passes its finalized addresses, everything else the plan's
// estimates. The plan itself is never written, so one plan serves
// concurrent emissions.
func (pl *Plan) addrOfKeyAt(k link.TargetKey, procAddr map[*Proc]uint64) (uint64, error) {
	if k.Kind == link.TCommon {
		a, ok := pl.commonAddr[k.Name]
		if !ok {
			return 0, fmt.Errorf("om: unplaced common %s", k.Name)
		}
		return a + uint64(k.Addend), nil
	}
	sym := &pl.pg.P.Objects[k.Mod].Symbols[k.Sym]
	switch sym.Kind {
	case objfile.SymProc:
		pr := pl.pg.procByDef[[2]int32{int32(k.Mod), k.Sym}]
		if pr == nil {
			return 0, fmt.Errorf("om: no lifted procedure for %s", sym.Name)
		}
		return procAddr[pr] + uint64(k.Addend), nil
	case objfile.SymData:
		return pl.secBase[k.Mod][sym.Section] + sym.Value + uint64(k.Addend), nil
	}
	return 0, fmt.Errorf("om: address of non-definition %s", sym.Name)
}

// KeyRegion returns the region the key's datum lives in (commons are always
// static).
func (pl *Plan) KeyRegion(k link.TargetKey) int {
	if k.Kind == link.TCommon {
		return 0
	}
	return pl.regionOf(k.Mod)
}

// IsTextKey reports whether the key names a procedure (text address).
func (pl *Plan) IsTextKey(k link.TargetKey) bool {
	if k.Kind != link.TDef {
		return false
	}
	return pl.pg.P.Objects[k.Mod].Symbols[k.Sym].Kind == objfile.SymProc
}

// SlotAddr returns the address of the GAT slot for key in GAT group g.
func (pl *Plan) SlotAddr(g int, k link.TargetKey) (uint64, bool) {
	i, ok := pl.keySlot[g][k]
	if !ok {
		return 0, false
	}
	return pl.gatStart[g] + uint64(i)*8, true
}

// GATBytes is the total size of all GATs under this plan.
func (pl *Plan) GATBytes() uint64 {
	var n uint64
	for _, slots := range pl.gat.Slots {
		n += uint64(len(slots)) * 8
	}
	return n
}
