package om

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// OptionsVersion tags the canonical serialized form of a resolved option
// set. Bump it only on an incompatible schema change; readers reject any
// other version string.
const OptionsVersion = "om-options/v1"

// configJSON is the wire form of config. The field set and order are part
// of the format: the golden test pins the exact bytes, so any drift between
// what Run accepts and what serializes is a test failure, not a silent
// skew. Parallelism is deliberately absent — it never changes the output
// image (determinism by construction), so it is an execution detail the
// runner chooses, not part of a job's identity. Metrics registries and
// profiles cannot be serialized here; they are attached at run time
// (profiles travel as their own om-profile/v1 document).
type configJSON struct {
	Version    string    `json:"version"`
	Level      string    `json:"level"`
	Schedule   bool      `json:"schedule"`
	Ablation   *Ablation `json:"ablation,omitempty"`
	Instrument bool      `json:"instrument"`
	Trace      bool      `json:"trace"`
}

// ParseLevel parses the wire name of an optimization level: "none",
// "simple", or "full".
func ParseLevel(s string) (Level, error) {
	switch s {
	case "none":
		return LevelNone, nil
	case "simple":
		return LevelSimple, nil
	case "full":
		return LevelFull, nil
	}
	return 0, fmt.Errorf("om: unknown level %q (want none, simple, or full)", s)
}

// wireName is the level's serialized name (the inverse of ParseLevel;
// String() keeps its human-facing "om-full" form for tables).
func (l Level) wireName() (string, error) {
	switch l {
	case LevelNone:
		return "none", nil
	case LevelSimple:
		return "simple", nil
	case LevelFull:
		return "full", nil
	}
	return "", fmt.Errorf("om: level %d has no serialized form", int(l))
}

// MarshalJSON serializes the resolved option set in its canonical form.
func (c *config) MarshalJSON() ([]byte, error) {
	if c.metrics != nil {
		return nil, fmt.Errorf("om: WithMetrics is not serializable; attach the registry at run time")
	}
	if c.profile != nil {
		return nil, fmt.Errorf("om: WithProfile is not serializable; ship the om-profile document separately")
	}
	lvl, err := c.level.wireName()
	if err != nil {
		return nil, err
	}
	w := configJSON{
		Version:    OptionsVersion,
		Level:      lvl,
		Schedule:   c.schedule,
		Instrument: c.instrument,
		Trace:      c.trace,
	}
	if c.ablation != (Ablation{}) {
		ab := c.ablation
		w.Ablation = &ab
	}
	return json.Marshal(&w)
}

// UnmarshalJSON parses the canonical form back into a resolved config. It
// is strict: unknown fields and unknown versions are errors, and an
// ablation is only valid at level full (WithAblation implies it).
func (c *config) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var w configJSON
	if err := dec.Decode(&w); err != nil {
		return fmt.Errorf("om: options: %w", err)
	}
	if w.Version != OptionsVersion {
		return fmt.Errorf("om: options version %q, want %q", w.Version, OptionsVersion)
	}
	lvl, err := ParseLevel(w.Level)
	if err != nil {
		return err
	}
	if w.Ablation != nil && *w.Ablation != (Ablation{}) && lvl != LevelFull {
		return fmt.Errorf("om: options: ablation requires level full, got %q", w.Level)
	}
	c.level = lvl
	c.schedule = w.Schedule
	c.instrument = w.Instrument
	c.trace = w.Trace
	c.ablation = Ablation{}
	if w.Ablation != nil {
		c.ablation = *w.Ablation
	}
	return nil
}

// MarshalOptions resolves an option list exactly the way Run does and
// returns its canonical serialized form. Two option lists that Run treats
// identically marshal to identical bytes, so the result doubles as a
// content-address component for job coalescing. Options that carry live
// objects (WithMetrics, WithProfile) and the execution-only WithParallelism
// are not part of the form; MarshalOptions rejects the first two and
// ignores the third.
func MarshalOptions(opts ...Option) ([]byte, error) {
	cfg := config{level: LevelFull}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg.MarshalJSON()
}

// UnmarshalOptions parses a canonical form produced by MarshalOptions and
// returns an option list that makes Run behave identically. Round trip is
// exact: MarshalOptions(UnmarshalOptions(d)...) == d for any valid d.
func UnmarshalOptions(data []byte) ([]Option, error) {
	var cfg config
	if err := cfg.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	opts := []Option{WithLevel(cfg.level), WithSchedule(cfg.schedule)}
	if cfg.ablation != (Ablation{}) {
		opts = append(opts, WithAblation(cfg.ablation))
	}
	if cfg.instrument {
		opts = append(opts, WithInstrumentation())
	}
	if cfg.trace {
		opts = append(opts, WithTrace())
	}
	return opts, nil
}
