package om

import (
	"context"
	"strings"
	"testing"
)

// traceAt runs OM with the decision journal enabled and returns the result.
func traceAt(t *testing.T, level Level) *Result {
	t.Helper()
	res, err := Run(context.Background(), freshProgram(t), WithLevel(level), WithTrace())
	if err != nil {
		t.Fatalf("om %v: %v", level, err)
	}
	if res.Journal == nil {
		t.Fatalf("om %v: WithTrace produced no journal", level)
	}
	return res
}

// TestJournalAccounting is the tentpole invariant: at every level, the
// journal accounts for 100% of candidate sites, and the per-reason sums
// reproduce the Stats figures they explain.
func TestJournalAccounting(t *testing.T) {
	for _, level := range []Level{LevelNone, LevelSimple, LevelFull} {
		t.Run(level.String(), func(t *testing.T) {
			res := traceAt(t, level)
			d, st := res.Journal, res.Stats
			if err := d.Check(); err != nil {
				t.Fatalf("journal self-check: %v", err)
			}
			if d.Level != level.String() {
				t.Errorf("journal level %q, want %q", d.Level, level.String())
			}

			// Tally by category and by reason family.
			sum := func(pred func(reason string) bool) int {
				n := 0
				for _, e := range d.Events {
					if pred(e.Reason) {
						n++
					}
				}
				return n
			}
			prefix := func(p string) func(string) bool {
				return func(r string) bool { return strings.HasPrefix(r, p) }
			}

			if got := sum(prefix("addr:")); got != st.AddressLoads {
				t.Errorf("addr events %d, want AddressLoads %d", got, st.AddressLoads)
			}
			if got := sum(prefix("addr:converted")); got != st.AddrConverted {
				t.Errorf("converted events %d, want AddrConverted %d", got, st.AddrConverted)
			}
			if got := sum(prefix("addr:nullified")); got != st.AddrNullified {
				t.Errorf("nullified events %d, want AddrNullified %d", got, st.AddrNullified)
			}
			if got := sum(prefix("addr:kept:")); got != st.AddressLoads-st.AddrConverted-st.AddrNullified {
				t.Errorf("kept addr events %d, want %d", got, st.AddressLoads-st.AddrConverted-st.AddrNullified)
			}

			if got := sum(prefix("call:")); got != st.CallSites {
				t.Errorf("call events %d, want CallSites %d", got, st.CallSites)
			}
			if got := sum(func(r string) bool { return r == ReasonCallKeptIndirect }); got != st.IndirectCalls {
				t.Errorf("indirect-call events %d, want IndirectCalls %d", got, st.IndirectCalls)
			}
			// Every call that is still a jsr is either indirect or kept with a
			// jsr reason; converted/already-direct calls are bsr.
			if got := sum(prefix("call:kept:")); got != st.JSRAfter {
				t.Errorf("kept call events %d, want JSRAfter %d", got, st.JSRAfter)
			}

			if got := sum(prefix("gpreset:")); got != st.GPResetBefore {
				t.Errorf("gpreset events %d, want GPResetBefore %d", got, st.GPResetBefore)
			}
			if got := sum(func(r string) bool { return r == ReasonResetRemoved }); got != st.GPResetBefore-st.GPResetAfter {
				t.Errorf("removed gpreset events %d, want %d", got, st.GPResetBefore-st.GPResetAfter)
			}
			if got := sum(prefix("gpreset:kept:")); got != st.GPResetAfter {
				t.Errorf("kept gpreset events %d, want GPResetAfter %d", got, st.GPResetAfter)
			}

			// The program exercises the interesting paths: at full level some
			// loads convert, some calls become bsr, and resets disappear.
			if level == LevelFull {
				if st.AddrConverted+st.AddrNullified == 0 {
					t.Error("fixture removed no address loads; journal test is vacuous")
				}
				if sum(prefix("call:converted")) == 0 {
					t.Error("fixture converted no calls; journal test is vacuous")
				}
			}
		})
	}
}

// TestJournalLevelsDiffer sanity-checks that the journal reflects the level:
// at LevelNone everything is kept, at LevelFull it is not.
func TestJournalLevelsDiffer(t *testing.T) {
	none := traceAt(t, LevelNone).Journal
	for _, e := range none.Events {
		if !strings.Contains(e.Reason, ":kept:") && e.Reason != ReasonCallDirect {
			t.Fatalf("LevelNone journal has optimized site: %+v", e)
		}
	}
	full := traceAt(t, LevelFull).Journal
	if full.Counts[ReasonAddrKeptNoOpt] != 0 {
		t.Errorf("LevelFull journal uses the no-optimization reason")
	}
}

// TestJournalReasonCodesGolden pins the reason-code strings. These are a
// stable interface consumed by omtrace, omdump -stats, and CI checks:
// extending the list is fine, renaming an existing code is a breaking
// change and must fail here.
func TestJournalReasonCodesGolden(t *testing.T) {
	want := []string{
		"addr:converted-lda",
		"addr:converted-ldah",
		"addr:nullified-gp-direct",
		"addr:nullified-pv-dead",
		"addr:kept:no-optimization",
		"addr:kept:pass-disabled",
		"addr:kept:text-address",
		"addr:kept:cross-region",
		"addr:kept:no-address",
		"addr:kept:out-of-gp-range",
		"addr:kept:far-mixed-use",
		"addr:kept:far-disp-overflow",
		"addr:kept:other",
		"call:already-direct",
		"call:converted-bsr",
		"call:converted-bsr-entry-skip",
		"call:converted-bsr-no-prologue",
		"call:kept:no-optimization",
		"call:kept:pass-disabled",
		"call:kept:indirect-call",
		"call:kept:unknown-callee",
		"call:kept:cross-region",
		"call:kept:layout-range",
		"call:kept:other",
		"gpreset:removed-same-gat",
		"gpreset:kept:no-optimization",
		"gpreset:kept:pass-disabled",
		"gpreset:kept:unknown-callee",
		"gpreset:kept:different-gat",
		"gpreset:kept:other",
		"layout:placed-hot-chain",
		"layout:placed-hot",
		"layout:kept:cold",
		"layout:fallback-jsr-range",
	}
	got := JournalReasons()
	if len(got) != len(want) {
		t.Fatalf("JournalReasons() has %d codes, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("JournalReasons()[%d] = %q, want %q (reason codes are a stable interface)", i, got[i], want[i])
		}
	}
}

// TestJournalOffByDefault: without WithTrace, Run pays nothing for the
// journal and the result omits it.
func TestJournalOffByDefault(t *testing.T) {
	res, err := Run(context.Background(), freshProgram(t), WithLevel(LevelFull))
	if err != nil {
		t.Fatal(err)
	}
	if res.Journal != nil {
		t.Error("journal built without WithTrace")
	}
}

// TestStatsFracZeroDenominators: the fraction helpers must not divide by
// zero on an empty program (a Stats of all zeros).
func TestStatsFracZeroDenominators(t *testing.T) {
	var s Stats
	for name, f := range map[string]func() float64{
		"AddrRemovedFrac":   s.AddrRemovedFrac,
		"NullifiedFrac":     s.NullifiedFrac,
		"PVFracBefore":      s.PVFracBefore,
		"PVFracAfter":       s.PVFracAfter,
		"GPResetFracBefore": s.GPResetFracBefore,
		"GPResetFracAfter":  s.GPResetFracAfter,
	} {
		if got := f(); got != 0 {
			t.Errorf("%s() on zero Stats = %v, want 0", name, got)
		}
	}
}
