package om

import (
	"fmt"

	"repro/internal/link"
	"repro/internal/obs"
)

// This file builds the decision journal: one event per address load, call
// site, and GP-reset pair, explaining the site's final disposition with a
// stable reason code. The journal is built after the passes reach their
// fixpoint by classifying every site against the final layout plan — the
// same plan the (no-change) last pass round saw — so the replayed guard
// conditions are exactly the ones that decided each site's fate, and the
// walk trivially accounts for 100% of candidate sites.

// Reason codes. These strings are a stable interface: downstream tooling
// (omtrace, omdump -stats, CI checks) matches on them, and a golden test
// pins them. Extend the list; never rename existing codes.
const (
	// Address loads (cat "addr").
	ReasonAddrConvertedLDA   = "addr:converted-lda"
	ReasonAddrConvertedLDAH  = "addr:converted-ldah"
	ReasonAddrNullified      = "addr:nullified-gp-direct"
	ReasonAddrNullifiedPV    = "addr:nullified-pv-dead"
	ReasonAddrKeptNoOpt      = "addr:kept:no-optimization"
	ReasonAddrKeptDisabled   = "addr:kept:pass-disabled"
	ReasonAddrKeptText       = "addr:kept:text-address"
	ReasonAddrKeptCrossReg   = "addr:kept:cross-region"
	ReasonAddrKeptNoAddr     = "addr:kept:no-address"
	ReasonAddrKeptOutOfRange = "addr:kept:out-of-gp-range"
	ReasonAddrKeptMixedUse   = "addr:kept:far-mixed-use"
	ReasonAddrKeptDispOvfl   = "addr:kept:far-disp-overflow"
	ReasonAddrKeptOther      = "addr:kept:other"

	// Call sites (cat "call").
	ReasonCallDirect          = "call:already-direct"
	ReasonCallConverted       = "call:converted-bsr"
	ReasonCallConvertedSkip   = "call:converted-bsr-entry-skip"
	ReasonCallConvertedNoProl = "call:converted-bsr-no-prologue"
	ReasonCallKeptNoOpt       = "call:kept:no-optimization"
	ReasonCallKeptDisabled    = "call:kept:pass-disabled"
	ReasonCallKeptIndirect    = "call:kept:indirect-call"
	ReasonCallKeptUnknown     = "call:kept:unknown-callee"
	ReasonCallKeptCrossReg    = "call:kept:cross-region"
	ReasonCallKeptLayout      = "call:kept:layout-range"
	ReasonCallKeptOther       = "call:kept:other"

	// GP-reset pairs (cat "gpreset").
	ReasonResetRemoved      = "gpreset:removed-same-gat"
	ReasonResetKeptNoOpt    = "gpreset:kept:no-optimization"
	ReasonResetKeptDisabled = "gpreset:kept:pass-disabled"
	ReasonResetKeptUnknown  = "gpreset:kept:unknown-callee"
	ReasonResetKeptDiffGAT  = "gpreset:kept:different-gat"
	ReasonResetKeptOther    = "gpreset:kept:other"

	// Profile-guided layout placements (cat "layout", WithProfile runs
	// only): one event per procedure, so the 100%-accounting guarantee
	// extends to the layout pass.
	ReasonLayoutChain    = "layout:placed-hot-chain"
	ReasonLayoutHot      = "layout:placed-hot"
	ReasonLayoutCold     = "layout:kept:cold"
	ReasonLayoutFallback = "layout:fallback-jsr-range"
)

// JournalReasons lists every reason code, grouped by category, in a fixed
// order (the golden test and the omtrace legend iterate it).
func JournalReasons() []string {
	return []string{
		ReasonAddrConvertedLDA, ReasonAddrConvertedLDAH,
		ReasonAddrNullified, ReasonAddrNullifiedPV,
		ReasonAddrKeptNoOpt, ReasonAddrKeptDisabled, ReasonAddrKeptText,
		ReasonAddrKeptCrossReg, ReasonAddrKeptNoAddr, ReasonAddrKeptOutOfRange,
		ReasonAddrKeptMixedUse, ReasonAddrKeptDispOvfl, ReasonAddrKeptOther,
		ReasonCallDirect, ReasonCallConverted, ReasonCallConvertedSkip,
		ReasonCallConvertedNoProl, ReasonCallKeptNoOpt, ReasonCallKeptDisabled,
		ReasonCallKeptIndirect, ReasonCallKeptUnknown, ReasonCallKeptCrossReg,
		ReasonCallKeptLayout, ReasonCallKeptOther,
		ReasonResetRemoved, ReasonResetKeptNoOpt, ReasonResetKeptDisabled,
		ReasonResetKeptUnknown, ReasonResetKeptDiffGAT, ReasonResetKeptOther,
		ReasonLayoutChain, ReasonLayoutHot, ReasonLayoutCold, ReasonLayoutFallback,
	}
}

// buildJournal walks the post-pass program and emits one event per
// candidate site. Totals come from the already-collected Stats so the
// journal is checkable against the figures it explains.
func buildJournal(pg *Prog, pl *Plan, cfg config, stats *Stats, lay *layoutResult) *obs.JournalDoc {
	d := &obs.JournalDoc{
		Schema: obs.JournalSchema,
		Level:  cfg.level.String(),
		Totals: map[string]uint64{
			"addr":    uint64(stats.AddressLoads),
			"call":    uint64(stats.CallSites),
			"gpreset": uint64(stats.GPResetBefore),
		},
	}
	if lay != nil {
		// Layout accounts for every procedure, not every instruction site.
		d.Totals["layout"] = uint64(len(pg.Procs))
	}

	// PV literals: address loads whose job was materializing a callee
	// address for a jsr. A nullified one died because its call was
	// converted, not because its uses went GP-relative.
	pvLits := make(map[*SInst]bool)
	for _, pr := range pg.Procs {
		for _, si := range pr.Insts {
			if si.PVLit != nil {
				pvLits[si.PVLit] = true
			}
		}
	}

	for _, pr := range pg.Procs {
		for i, si := range pr.Insts {
			if si.Lit != nil {
				d.Events = append(d.Events, obs.Event{
					Cat: "addr", Proc: pr.Name, Index: i,
					Target: keyName(si.Lit.Key),
					Reason: classifyAddr(pg, pl, cfg, pr, si, pvLits),
					Detail: addrDetail(pl, pr, si),
				})
			}
			if isCallSite(si) {
				d.Events = append(d.Events, obs.Event{
					Cat: "call", Proc: pr.Name, Index: i,
					Target: callTarget(pg, si),
					Reason: classifyCall(pg, pl, cfg, pr, si, lay),
				})
			}
			if si.GPD != nil && si.GPD.High && !si.GPD.Entry {
				// Record the callee when it is known: the translation
				// validator checks an elided reset's callee shares the
				// caller's GP (and a kept different-gat one does not).
				target := ""
				if callee := resetCallee(pg, si.GPD.AfterCall); callee != nil {
					target = callee.Name
				}
				d.Events = append(d.Events, obs.Event{
					Cat: "gpreset", Proc: pr.Name, Index: i,
					Target: target,
					Reason: classifyReset(pg, pl, cfg, pr, si),
				})
			}
		}
	}
	if lay != nil {
		for pos, dec := range lay.decisions {
			d.Events = append(d.Events, obs.Event{
				Cat: "layout", Proc: dec.proc.Name, Index: pos,
				Reason: dec.reason, Detail: dec.detail,
			})
		}
	}
	d.Counts = d.Recount()
	return d
}

func keyName(k link.TargetKey) string {
	if k.Addend != 0 {
		return fmt.Sprintf("%s%+d", k.Name, k.Addend)
	}
	return k.Name
}

// classifyAddr explains an address load's final state by replaying the
// address-optimization guards against the final plan.
func classifyAddr(pg *Prog, pl *Plan, cfg config, pr *Proc, si *SInst, pvLits map[*SInst]bool) string {
	lit := si.Lit
	switch {
	case lit.Nullified && pvLits[si]:
		return ReasonAddrNullifiedPV
	case lit.Nullified:
		return ReasonAddrNullified
	case lit.Converted:
		if si.GPRel != nil && si.GPRel.Kind == GPRelLDAH {
			return ReasonAddrConvertedLDAH
		}
		return ReasonAddrConvertedLDA
	}
	// Kept: still a GAT load. Why?
	if cfg.level == LevelNone {
		return ReasonAddrKeptNoOpt
	}
	if cfg.level == LevelFull && cfg.ablation.NoAddressOpt {
		return ReasonAddrKeptDisabled
	}
	key := lit.Key
	if pl.IsTextKey(key) {
		return ReasonAddrKeptText
	}
	if pl.KeyRegion(key) != pl.regionOf(pr.Mod) {
		return ReasonAddrKeptCrossReg
	}
	addr, err := pl.AddrOfKey(key)
	if err != nil {
		return ReasonAddrKeptNoAddr
	}
	delta := int64(addr) - int64(pl.GPOf(pr))
	if _, _, err := link.SplitGPDisp(delta); err != nil {
		return ReasonAddrKeptOutOfRange
	}
	// Within 32-bit reach: OM-full with pair insertion would have converted
	// it, so the load survived a replace-only level (or the pair-insertion
	// ablation) that could not rewrite its particular use pattern.
	allBase := len(lit.Uses) > 0
	for _, u := range lit.Uses {
		if u.Use == nil || u.Use.JSR || u.Deleted {
			allBase = false
		}
	}
	if !allBase {
		return ReasonAddrKeptMixedUse
	}
	if !fits16(delta) {
		if _, lo, err := link.SplitGPDisp(delta); err == nil {
			for _, u := range lit.Uses {
				if !fits16(int64(lo) + int64(u.In.Disp)) {
					return ReasonAddrKeptDispOvfl
				}
			}
		}
	} else {
		for _, u := range lit.Uses {
			if !fits16(delta + int64(u.In.Disp)) {
				return ReasonAddrKeptDispOvfl
			}
		}
	}
	return ReasonAddrKeptOther
}

// addrDetail renders the GP distance of a kept load (empty otherwise).
func addrDetail(pl *Plan, pr *Proc, si *SInst) string {
	if si.Lit.Converted || si.Lit.Nullified {
		return ""
	}
	addr, err := pl.AddrOfKey(si.Lit.Key)
	if err != nil {
		return ""
	}
	return fmt.Sprintf("gp%+#x", int64(addr)-int64(pl.GPOf(pr)))
}

func callTarget(pg *Prog, si *SInst) string {
	switch {
	case si.Call != nil:
		return si.Call.Target.Name
	case si.Use != nil && si.Use.JSR:
		return keyName(si.Use.Lit.Lit.Key)
	}
	return ""
}

// classifyCall explains a call site's final state.
func classifyCall(pg *Prog, pl *Plan, cfg config, pr *Proc, si *SInst, lay *layoutResult) string {
	if si.Indirect {
		return ReasonCallKeptIndirect
	}
	if lay != nil && lay.reverted[si] {
		return ReasonCallKeptLayout
	}
	if si.Call != nil {
		switch {
		case !si.Call.FromJSR:
			return ReasonCallDirect
		case si.Call.EntryOffset == 8:
			return ReasonCallConvertedSkip
		case si.Call.Target.PrologueDeleted:
			return ReasonCallConvertedNoProl
		}
		return ReasonCallConverted
	}
	// Still a GAT-indirect jsr.
	if cfg.level == LevelNone {
		return ReasonCallKeptNoOpt
	}
	if cfg.level == LevelFull && cfg.ablation.NoCallOpt {
		return ReasonCallKeptDisabled
	}
	if si.Use == nil || !si.Use.JSR {
		return ReasonCallKeptOther
	}
	callee := pg.ProcFor(si.Use.Lit.Lit.Key)
	if callee == nil {
		return ReasonCallKeptUnknown
	}
	if pl.regionOf(pr.Mod) != pl.regionOf(callee.Mod) {
		return ReasonCallKeptCrossReg
	}
	return ReasonCallKeptOther
}

// classifyReset explains a GP-reset pair's final state. Pre-pass every
// lifted pair is a live ldah/lda, so a deleted or no-op'd high half means
// the reset optimization removed it.
func classifyReset(pg *Prog, pl *Plan, cfg config, pr *Proc, si *SInst) string {
	if si.Deleted || si.In.IsNop() {
		return ReasonResetRemoved
	}
	if cfg.level == LevelNone {
		return ReasonResetKeptNoOpt
	}
	if cfg.level == LevelFull && cfg.ablation.NoResetOpt {
		return ReasonResetKeptDisabled
	}
	if len(pl.gat.Slots) > 1 {
		callee := resetCallee(pg, si.GPD.AfterCall)
		if callee == nil {
			return ReasonResetKeptUnknown
		}
		if !pl.SameGAT(pr, callee) {
			return ReasonResetKeptDiffGAT
		}
	}
	return ReasonResetKeptOther
}
