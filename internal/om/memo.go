package om

import (
	"context"
	"encoding/json"
	"sync"

	"repro/internal/buildcache"
	"repro/internal/link"
	"repro/internal/objfile"
	"repro/internal/obs"
)

// Memo is the resident cache behind OM's warm path. It holds two stage
// stores keyed purely by content, so it is safe to share across concurrent
// Runs and across arbitrary option sets:
//
//   - the lifted-form cache maps a program's content hash to its pristine
//     symbolic form, skipping instruction decode and lifting entirely when
//     the same modules link again (under any options);
//   - the per-procedure pass memo maps (procedure bytes, canonical options,
//     inter-procedural context) to the transformed symbolic form at the pass
//     fixpoint, skipping analysis and transformation when an identical
//     (program, options, profile) point links again.
//
// The context component of the pass key is deliberately conservative: it
// hashes the whole program plus the profile, which subsumes everything the
// passes can observe across procedures (GP window pressure, GAT slot
// assignment, layout order). A procedure therefore never replays against a
// stale inter-procedural context — at the cost of a full recompute when any
// module changes.
//
// A Memo never changes output: a warm Run is byte-identical to a cold one
// (pinned by the warm-path golden tests). Memoized forms are cloned before
// use, never handed out.
type Memo struct {
	lifts  *buildcache.StageStore
	passes *buildcache.StageStore

	// keyMemo caches the derived per-procedure pass keys per context
	// string, so a resident point's warm lookups stop re-hashing every
	// procedure's text on each submission. Bounded crudely: a full map is
	// dropped wholesale and rebuilds on demand.
	mu      sync.Mutex
	keyMemo map[string][]string
}

// MemoConfig bounds a Memo's stores. Zero values select defaults.
type MemoConfig struct {
	// LiftEntries bounds cached lifted programs (<= 0 selects 16).
	LiftEntries int
	// PassEntries bounds per-procedure pass memo entries (<= 0 selects 4096).
	PassEntries int
	// PassBytes bounds the pass memo's estimated footprint (<= 0: 512 MiB).
	PassBytes int64
}

// NewMemo builds a memo with default bounds. reg, when non-nil, receives
// the stage/lift/* and stage/pass/* hit, miss, and eviction counters.
func NewMemo(reg *obs.Registry) *Memo {
	return NewMemoWithConfig(MemoConfig{}, reg)
}

// NewMemoWithConfig builds a memo with explicit bounds (tests and
// benchmarks size them down to force eviction).
func NewMemoWithConfig(cfg MemoConfig, reg *obs.Registry) *Memo {
	if cfg.LiftEntries <= 0 {
		cfg.LiftEntries = 16
	}
	if cfg.PassEntries <= 0 {
		cfg.PassEntries = 4096
	}
	if cfg.PassBytes <= 0 {
		cfg.PassBytes = 512 << 20
	}
	return &Memo{
		lifts:   buildcache.NewStageStore("lift", cfg.LiftEntries, 0, reg),
		passes:  buildcache.NewStageStore("pass", cfg.PassEntries, cfg.PassBytes, reg),
		keyMemo: make(map[string][]string),
	}
}

// passKeysFor returns the per-procedure pass keys for a context, through
// the key cache. The returned slice is shared and read-only.
func (m *Memo) passKeysFor(p *link.Program, pctx string) []string {
	m.mu.Lock()
	keys, ok := m.keyMemo[pctx]
	m.mu.Unlock()
	if ok {
		return keys
	}
	keys = procPassKeys(p, pctx)
	m.mu.Lock()
	if len(m.keyMemo) >= 256 {
		clear(m.keyMemo)
	}
	m.keyMemo[pctx] = keys
	m.mu.Unlock()
	return keys
}

// LiftStats and PassStats snapshot the two stage stores.
func (m *Memo) LiftStats() buildcache.StageStats { return m.lifts.Stats() }
func (m *Memo) PassStats() buildcache.StageStats { return m.passes.Stats() }

// liftEntry is one cached lifted program: the pristine symbolic form plus
// the options-independent "before" statistics (static counts of the
// unoptimized form and the baseline GAT size), which depend only on the
// program content and so are computed once per entry.
type liftEntry struct {
	prog   *Prog
	before Stats
}

// passSnapshot is one memoized pass outcome, shared by the pass-memo
// entries of every procedure of its program: the transformed symbolic form
// at the pass fixpoint, the computed layout plan, and the completed
// statistics. The form is stored renumbered and neither it nor the plan is
// ever cloned for a replay — emission is read-only on both, so any number
// of concurrent replays share them directly and a replay is plan + emit,
// nothing else. ctx guards the 64-bit per-procedure keys against
// collisions: a replay is only valid when the snapshot's context string
// matches exactly.
type passSnapshot struct {
	ctx   string
	prog  *Prog
	pl    *Plan
	stats Stats
}

// liftFor returns a mutable lifted form of p, through the lifted-form cache:
// a hit clones the pristine form (no decode, no lift); a miss lifts fresh,
// stores a pristine clone with its before-statistics, and returns the
// original. The boolean reports a cache hit.
func (m *Memo) liftFor(ctx context.Context, p *link.Program, par int) (*Prog, *liftEntry, bool, error) {
	key := "lift/" + p.Hash()
	if v, ok := m.lifts.Get(key); ok {
		le := v.(*liftEntry)
		pg := cloneProg(le.prog)
		pg.par = par
		return pg, le, true, nil
	}
	pg, err := lift(ctx, p, par)
	if err != nil {
		return nil, nil, false, err
	}
	pg.par = par
	le := &liftEntry{prog: cloneProg(pg)}
	if err := le.fillBefore(p); err != nil {
		return nil, nil, false, err
	}
	m.lifts.Put(key, le, progFootprint(le.prog))
	return pg, le, false, nil
}

// fillBefore computes the options-independent before-statistics from the
// pristine form: static instruction/annotation counts and the baseline
// (unreduced, unsorted) GAT footprint.
func (le *liftEntry) fillBefore(p *link.Program) error {
	collectBefore(le.prog, &le.before)
	basePlan, err := link.AssignGATs(p, nil)
	if err != nil {
		return err
	}
	for _, slots := range basePlan.Slots {
		le.before.GATBytesBefore += uint64(len(slots)) * 8
	}
	return nil
}

// passContext derives the shared context component of the pass-memo keys:
// the program's content hash, the canonical om-options/v1 form of the
// semantic options (level, schedule, ablation — metrics, parallelism, and
// the memo itself never change output), and the profile's content hash.
// ok is false when the option set has no canonical form.
func passContext(p *link.Program, cfg *config) (string, bool) {
	cc := config{level: cfg.level, schedule: cfg.schedule, ablation: cfg.ablation}
	doc, err := json.Marshal(&cc)
	if err != nil {
		return "", false
	}
	profHash := ""
	if cfg.profile != nil {
		profHash = cfg.profile.Hash()
	}
	return p.Hash() + "\x00" + string(doc) + "\x00" + profHash, true
}

// procPassKeys derives one pass-memo key per procedure straight from the
// merged program — no lift needed, which is what lets a fully warm Run skip
// the symbolic form entirely. Each key hashes the procedure's identity and
// text bytes together with the shared context. The hash is 64-bit FNV-1a,
// computed inline so the per-poll warm lookup allocates nothing beyond the
// key strings themselves; the snapshot's ctx check makes a collision a
// forced recompute, not a wrong answer.
func procPassKeys(p *link.Program, pctx string) []string {
	var keys []string
	for m, obj := range p.Objects {
		text := obj.Sections[objfile.SecText].Data
		for s := range obj.Symbols {
			sym := &obj.Symbols[s]
			if sym.Kind != objfile.SymProc {
				continue
			}
			h := fnvString(fnvOffset64, pctx)
			h = fnvUint64(h, uint64(m))
			h = fnvUint64(h, uint64(s))
			h = fnvBytes(h, text[sym.Value:sym.End])
			var buf [21]byte
			b := append(buf[:0], "pass/"...)
			for shift := 60; shift >= 0; shift -= 4 {
				b = append(b, "0123456789abcdef"[(h>>shift)&0xf])
			}
			keys = append(keys, string(b))
		}
	}
	return keys
}

// Inline FNV-1a, avoiding hash.Hash's per-call allocation on a warm path
// that runs once per submission.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

func fnvBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return h
}

func fnvUint64(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime64
		v >>= 8
	}
	return h
}

// lookupPasses returns the snapshot to replay when every procedure's entry
// is present, agrees on one snapshot, and that snapshot was stored under
// exactly this context. Any miss — an evicted procedure, a foreign context,
// a key collision — returns nil and the caller recomputes.
func (m *Memo) lookupPasses(keys []string, pctx string) *passSnapshot {
	if len(keys) == 0 {
		return nil
	}
	var snap *passSnapshot
	for _, k := range keys {
		v, ok := m.passes.Get(k)
		if !ok {
			return nil
		}
		s := v.(*passSnapshot)
		if s.ctx != pctx {
			return nil
		}
		if snap == nil {
			snap = s
		} else if snap != s {
			return nil
		}
	}
	return snap
}

// storePasses records a completed pass outcome under every procedure's key.
// The snapshot is shared; its footprint is spread across the entries so the
// store's byte bound sees the real cost once.
func (m *Memo) storePasses(keys []string, snap *passSnapshot) {
	if len(keys) == 0 {
		return
	}
	per := progFootprint(snap.prog)/int64(len(keys)) + 1
	for _, k := range keys {
		m.passes.Put(k, snap, per)
	}
}

// replayRun is the fully warm path: emit straight from the shared
// transformed form under the shared memoized plan — emission never writes
// to either, so no clone of anything is taken. It performs zero
// instruction decodes, zero lifts, zero analysis passes, and zero layout
// recomputation; the result is byte-identical to the cold Run that stored
// the snapshot.
func replayRun(ctx context.Context, snap *passSnapshot, cfg *config) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pg, pl := snap.prog, snap.pl
	cfg.metrics.Counter("om/passes/replayed").Add(uint64(len(pg.Procs)))
	stats := snap.stats
	sched := cfg.schedule && cfg.level == LevelFull
	emitSpan := cfg.span.Child("om/emit")
	emitSpan.SetAttr("replayed", "true")
	emitDone := obs.StartSpan(cfg.metrics.Timer("om/emit"))
	im, err := Emit(pg, pl, sched)
	emitDone()
	emitSpan.End()
	if err != nil {
		return nil, err
	}
	return &Result{Image: im, Stats: &stats}, nil
}
