package om

import (
	"fmt"

	"repro/internal/axp"
)

// Stats aggregates the static measurements the paper reports in Figures
// 3-5 plus the GAT-size reduction from §5.1.
type Stats struct {
	// Figure 3: address loads.
	AddressLoads  int // address loads in the original program
	AddrConverted int // became lda/ldah (load-address) instructions
	AddrNullified int // became no-ops (simple) or were deleted (full)

	// Figure 4: procedure-call bookkeeping.
	CallSites     int // all call sites
	IndirectCalls int // calls through procedure variables
	PVBefore      int // call sites requiring a PV materialization, before
	PVAfter       int // ... after optimization
	GPResetBefore int // call sites followed by a GP-reset pair, before
	GPResetAfter  int // ... after optimization
	JSRBefore     int // general jsr call sites before
	JSRAfter      int // jsr call sites remaining (unconverted)

	// Figure 5: instructions.
	Instructions int // original instruction count
	Nullified    int // instructions turned into no-ops (OM-simple)
	Deleted      int // instructions deleted outright (OM-full)

	// GAT size (§5.1).
	GATBytesBefore uint64
	GATBytesAfter  uint64
}

// AddrRemovedFrac is the Figure 3 quantity: the fraction of address loads
// eliminated (converted or nullified).
func (s *Stats) AddrRemovedFrac() float64 {
	if s.AddressLoads == 0 {
		return 0
	}
	return float64(s.AddrConverted+s.AddrNullified) / float64(s.AddressLoads)
}

// NullifiedFrac is the Figure 5 quantity: the fraction of instructions
// nullified or deleted.
func (s *Stats) NullifiedFrac() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Nullified+s.Deleted) / float64(s.Instructions)
}

// PVFracBefore/PVFracAfter are the Figure 4 (top) quantities.
func (s *Stats) PVFracBefore() float64 { return frac(s.PVBefore, s.CallSites) }

// PVFracAfter is the post-optimization fraction of calls needing PV loads.
func (s *Stats) PVFracAfter() float64 { return frac(s.PVAfter, s.CallSites) }

// GPResetFracBefore is the Figure 4 (bottom) before quantity.
func (s *Stats) GPResetFracBefore() float64 { return frac(s.GPResetBefore, s.CallSites) }

// GPResetFracAfter is the post-optimization fraction of calls with resets.
func (s *Stats) GPResetFracAfter() float64 { return frac(s.GPResetAfter, s.CallSites) }

func frac(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// String renders a compact summary.
func (s *Stats) String() string {
	return fmt.Sprintf(
		"addr loads %d (conv %d, null %d = %.1f%%); calls %d (pv %d->%d, reset %d->%d, indirect %d); insts %d (nop %d, del %d = %.1f%%); GAT %d->%d bytes",
		s.AddressLoads, s.AddrConverted, s.AddrNullified, 100*s.AddrRemovedFrac(),
		s.CallSites, s.PVBefore, s.PVAfter, s.GPResetBefore, s.GPResetAfter, s.IndirectCalls,
		s.Instructions, s.Nullified, s.Deleted, 100*s.NullifiedFrac(),
		s.GATBytesBefore, s.GATBytesAfter)
}

// isCallSite reports whether the instruction is a procedure-call site.
func isCallSite(si *SInst) bool {
	if si.Deleted {
		return false
	}
	if si.In.Op == axp.JSR {
		return true
	}
	return si.In.Op == axp.BSR && si.Call != nil
}

// collectBefore fills the pre-optimization counters from the lifted form.
func collectBefore(pg *Prog, s *Stats) {
	for _, pr := range pg.Procs {
		resets := liveResetIndex(pr)
		for _, si := range pr.Insts {
			s.Instructions++
			if si.Lit != nil {
				s.AddressLoads++
			}
			if !isCallSite(si) {
				continue
			}
			s.CallSites++
			if si.Indirect {
				s.IndirectCalls++
			}
			if si.Indirect || si.PVLit != nil {
				s.PVBefore++
			}
			if si.In.Op == axp.JSR {
				s.JSRBefore++
			}
			if resets[si] {
				s.GPResetBefore++
			}
		}
	}
}

// collectAfter fills the post-optimization counters.
func collectAfter(pg *Prog, pl *Plan, s *Stats) {
	for _, pr := range pg.Procs {
		resets := liveResetIndex(pr)
		for _, si := range pr.Insts {
			if si.Lit != nil {
				// Count removals even when the load itself was deleted.
				if si.Lit.Converted {
					s.AddrConverted++
				} else if si.Lit.Nullified {
					s.AddrNullified++
				}
			}
			if si.Deleted {
				s.Deleted++
				continue
			}
			if si.In.IsNop() && si.In.Op == axp.BIS {
				// Instructions OM-simple turned into canonical no-ops.
				s.Nullified++
			}
			if !isCallSite(si) {
				continue
			}
			if si.In.Op == axp.JSR {
				s.JSRAfter++
			}
			if pvStillNeeded(si) {
				s.PVAfter++
			}
			if resets[si] {
				s.GPResetAfter++
			}
		}
	}
	s.GATBytesAfter = pl.GATBytes()
}

// pvStillNeeded reports whether a call site still materializes PV.
func pvStillNeeded(si *SInst) bool {
	if si.Indirect {
		return true
	}
	if si.PVLit == nil {
		return false
	}
	lit := si.PVLit
	return !lit.Deleted && !lit.In.IsNop() && lit.Lit != nil && !lit.Lit.Nullified
}

// liveResetIndex maps each call instruction to whether a live GP-reset pair
// is anchored to it.
func liveResetIndex(pr *Proc) map[*SInst]bool {
	m := make(map[*SInst]bool)
	for _, si := range pr.Insts {
		if si.Deleted || si.GPD == nil || !si.GPD.High || si.GPD.Entry {
			continue
		}
		if !si.In.IsNop() {
			m[si.GPD.AfterCall] = true
		}
	}
	return m
}
