package om

import (
	"repro/internal/axp"
	"repro/internal/link"
)

func fits16(v int64) bool { return v >= axp.MemDispMin && v <= axp.MemDispMax }

// nullifyInst removes an instruction: OM-full deletes it, OM-simple turns it
// into a no-op (never moving or removing code).
func nullifyInst(si *SInst, full bool) {
	if full {
		si.Deleted = true
	} else {
		keep := SInst{In: axp.Nop(), Labels: si.Labels, Target: -1}
		lit, gpd, use := si.Lit, si.GPD, si.Use
		*si = keep
		// Preserve bookkeeping for statistics.
		si.Lit, si.GPD, si.Use = lit, gpd, use
	}
}

// applyAddressOpts performs the address-load conversion and nullification
// pass against the given layout plan. It returns whether anything changed.
//
//   - nullify: the address load disappears entirely; every linked use is
//     rewritten to reference the datum GP-relatively.
//   - convert (lda): the load becomes lda r, delta(gp) — same register
//     contents, no memory access.
//   - convert (ldah): for data within 32-bit but not 16-bit reach of GP,
//     the load becomes ldah r, hi(gp) and each use adds the low part, "a
//     direct GP-relative reference in the same number of instructions as an
//     indirect reference via the GAT".
func applyAddressOpts(pg *Prog, pl *Plan, full bool) bool {
	return applyAddressOptsEx(pg, pl, full, true)
}

// applyAddressOptsEx is applyAddressOpts with the ldah/lda pair insertion
// separately controllable (for ablation studies). Address loads and their
// uses are procedure-local and the layout plan is frozen for the duration
// of the pass, so procedures transform concurrently.
func applyAddressOptsEx(pg *Prog, pl *Plan, full, insertOK bool) bool {
	return pg.forEachProc(func(pr *Proc) bool {
		changed := false
		gp := int64(pl.GPOf(pr))
		type insertion struct {
			after *SInst
			inst  *SInst
		}
		var inserts []insertion
		for _, si := range pr.Insts {
			if si.Deleted || si.Lit == nil || si.Lit.Converted || si.Lit.Nullified {
				continue
			}
			key := si.Lit.Key
			if pl.IsTextKey(key) {
				// Procedure addresses live ~0.5GB from GP; they are handled
				// by the call optimization, not GP-relative addressing.
				continue
			}
			if pl.KeyRegion(key) != pl.regionOf(pr.Mod) {
				// Data on the other side of a dynamic-link boundary has no
				// fixed distance from this GP; it must stay in the GAT.
				continue
			}
			addr, err := pl.AddrOfKey(key)
			if err != nil {
				continue
			}
			delta := int64(addr) - gp

			uses := si.Lit.Uses
			allBase := len(uses) > 0
			for _, u := range uses {
				if u.Use == nil || u.Use.JSR || u.Deleted {
					allBase = false
				}
			}

			// Nullification: rewrite every use to op r, delta+d(gp).
			if allBase && fits16(delta) {
				ok := true
				for _, u := range uses {
					if !fits16(delta + int64(u.In.Disp)) {
						ok = false
						break
					}
				}
				if ok {
					for _, u := range uses {
						u.GPRel = &GPRelInfo{Kind: GPRelUseDirect, Key: key, Extra: int64(u.In.Disp)}
						u.In.Rb = axp.GP
						u.Use = nil
					}
					si.Lit.Nullified = true
					si.Lit.Uses = nil
					nullifyInst(si, full)
					changed = true
					continue
				}
			}

			// LDAH conversion for 32-bit-reachable data with mem-only uses.
			if allBase && !fits16(delta) {
				hi, lo, err := link.SplitGPDisp(delta)
				if err == nil {
					ok := true
					for _, u := range uses {
						if !fits16(int64(lo) + int64(u.In.Disp)) {
							ok = false
							break
						}
					}
					if ok {
						dst := si.In.Ra
						si.In = axp.MemInst(axp.LDAH, dst, axp.GP, int32(hi))
						si.GPRel = &GPRelInfo{Kind: GPRelLDAH, Key: key}
						si.Lit.Converted = true
						for _, u := range uses {
							u.GPRel = &GPRelInfo{Kind: GPRelUseLow, Key: key,
								Extra: int64(u.In.Disp), HighPart: si}
							u.Use = nil
						}
						changed = true
						continue
					}
				}
			}

			// LDA conversion: works regardless of how the address is used.
			if fits16(delta) {
				dst := si.In.Ra
				si.In = axp.MemInst(axp.LDA, dst, axp.GP, int32(delta))
				si.GPRel = &GPRelInfo{Kind: GPRelLDA, Key: key}
				si.Lit.Converted = true
				changed = true
				continue
			}

			// OM-full may insert code: materialize a 32-bit-far address with
			// an ldah/lda pair, trading the memory load for one extra ALU
			// instruction and removing the GAT entry.
			if full && insertOK {
				if _, _, err := link.SplitGPDisp(delta); err == nil {
					dst := si.In.Ra
					si.In = axp.MemInst(axp.LDAH, dst, axp.GP, 0)
					si.GPRel = &GPRelInfo{Kind: GPRelLDAH, Key: key}
					si.Lit.Converted = true
					low := &SInst{
						In:     axp.MemInst(axp.LDA, dst, dst, 0),
						Target: -1,
						GPRel:  &GPRelInfo{Kind: GPRelUseLow, Key: key, HighPart: si},
					}
					inserts = append(inserts, insertion{after: si, inst: low})
					changed = true
				}
			}
		}
		if len(inserts) > 0 {
			out := make([]*SInst, 0, len(pr.Insts)+len(inserts))
			for _, si := range pr.Insts {
				out = append(out, si)
				for _, ins := range inserts {
					if ins.after == si {
						out = append(out, ins.inst)
					}
				}
			}
			pr.Insts = out
		}
		return changed
	})
}

// resetCallee determines the procedure a call site transfers to, or nil for
// indirect calls.
func resetCallee(pg *Prog, call *SInst) *Proc {
	if call.Call != nil {
		return call.Call.Target
	}
	if call.Use != nil && call.Use.JSR {
		return pg.ProcFor(call.Use.Lit.Lit.Key)
	}
	return nil
}

// applyGPResetOpts nullifies the two GP-reset instructions after calls where
// the callee is known (or knowable: a single program-wide GAT) to share the
// caller's GP. Returns whether anything changed.
func applyGPResetOpts(pg *Prog, pl *Plan, full bool) bool {
	singleGAT := len(pl.gat.Slots) == 1
	// A GP-reset pair, its call, and its partner all live in the same
	// procedure; callee identity is read through the frozen plan. Safe to
	// fan out per procedure.
	return pg.forEachProc(func(pr *Proc) bool {
		changed := false
		for _, si := range pr.Insts {
			if si.Deleted || si.GPD == nil || !si.GPD.High || si.GPD.Entry {
				continue
			}
			call := si.GPD.AfterCall
			if call.Deleted {
				continue
			}
			callee := resetCallee(pg, call)
			same := singleGAT || (callee != nil && pl.SameGAT(pr, callee))
			if !same {
				continue
			}
			if si.GPD.Partner.Deleted || si.GPD.Partner.In.IsNop() {
				continue // already done
			}
			if si.In.IsNop() {
				continue
			}
			nullifyInst(si, full)
			nullifyInst(si.GPD.Partner, full)
			changed = true
		}
		return changed
	})
}

// pairPosition locates the prologue GP pair of a procedure among its live
// instructions, returning the hi instruction, its index, and the lo index.
func pairPosition(pr *Proc) (hi *SInst, hiIdx, loIdx int) {
	live := pr.Live()
	hiIdx, loIdx = -1, -1
	for i, si := range live {
		if si.GPD != nil && si.GPD.High && si.GPD.Entry && !si.In.IsNop() {
			hi = si
			hiIdx = i
			for j, sj := range live {
				if sj == si.GPD.Partner {
					loIdx = j
				}
			}
			return hi, hiIdx, loIdx
		}
	}
	return nil, -1, -1
}

// markPairPositions records, for every procedure, whether its prologue GP
// pair sits exactly at entry (the condition for callers to skip it with a
// bsr to entry+8).
func markPairPositions(pg *Prog) {
	pg.forEachProc(func(pr *Proc) bool {
		hi, hiIdx, loIdx := pairPosition(pr)
		pr.PairAtEntry = hi != nil && hiIdx == 0 && loIdx == 1
		return false
	})
}

// restoreProloguePairs (OM-full) moves scheduler-displaced prologue GP pairs
// back to their logical place at procedure entry, enabling the bsr-skip
// optimization that OM-simple must forgo. Each restoration rearranges only
// its own procedure's instruction list, so procedures proceed concurrently.
func restoreProloguePairs(pg *Prog) {
	pg.forEachProc(func(pr *Proc) bool {
		hi, hiIdx, loIdx := pairPosition(pr)
		if hi == nil || (hiIdx == 0 && loIdx == 1) {
			return false
		}
		lo := hi.GPD.Partner
		// The pair must still be in the entry block (no intervening labels
		// or control transfers), and nothing before it may touch GP or PV.
		live := pr.Live()
		limit := loIdx
		if hiIdx > limit {
			limit = hiIdx
		}
		safe := true
		for i := 0; i <= limit && safe; i++ {
			si := live[i]
			if si == hi || si == lo {
				continue
			}
			if i > 0 && len(si.Labels) > 0 {
				safe = false
			}
			if si.In.Op.IsBranch() || si.In.Op.IsJump() || si.In.Op == axp.CALLPAL {
				safe = false
			}
			if si.In.Writes() == axp.GP || si.In.Writes() == axp.PV {
				safe = false
			}
			for _, r := range si.In.Reads() {
				if r == axp.GP {
					safe = false
				}
			}
		}
		if !safe {
			return false
		}
		// Rebuild the full instruction list with the pair first, carrying
		// any entry labels along.
		entryLabels := append([]int(nil), live[0].Labels...)
		live[0].Labels = nil
		rest := make([]*SInst, 0, len(pr.Insts))
		for _, si := range pr.Insts {
			if si != hi && si != lo {
				rest = append(rest, si)
			}
		}
		hi.Labels = append(entryLabels, hi.Labels...)
		pr.Insts = append([]*SInst{hi, lo}, rest...)
		return true
	})
	markPairPositions(pg)
}

// procUsesGP reports whether any live non-GP-establishing instruction of the
// procedure reads GP.
func procUsesGP(pr *Proc) bool {
	for _, si := range pr.Insts {
		if si.Deleted || si.GPD != nil {
			continue
		}
		for _, r := range si.In.Reads() {
			if r == axp.GP {
				return true
			}
		}
	}
	return false
}

// keyOfProc builds the TargetKey identifying a procedure's address.
func keyOfProc(pr *Proc) link.TargetKey {
	return link.TargetKey{Kind: link.TDef, Mod: pr.Mod, Sym: pr.Sym}
}

// procInAnyGAT reports whether the procedure's address still has a GAT slot
// under the plan (i.e., some remaining address load or PV load targets it).
func procInAnyGAT(pl *Plan, pr *Proc) bool {
	k := keyOfProc(pr)
	for g := range pl.keySlot {
		if _, ok := pl.keySlot[g][k]; ok {
			return true
		}
	}
	return false
}
