package om

// cloneProg deep-copies a symbolic program so one lifted (or transformed)
// form can serve many Runs. The underlying link.Program is shared read-only;
// everything the passes mutate — procedures, instructions, and their
// annotation records — is copied, with every intra-program pointer remapped
// onto the copy. The clone is what makes the warm path sound: a memoized
// form is never handed to a caller directly, so no Run can corrupt it.
func cloneProg(pg *Prog) *Prog {
	out := &Prog{
		P:         pg.P,
		Procs:     make([]*Proc, len(pg.Procs)),
		procByDef: make(map[[2]int32]*Proc, len(pg.Procs)),
		nOrd:      pg.nOrd,
		par:       pg.par,
	}
	procMap := make(map[*Proc]*Proc, len(pg.Procs))
	for i, pr := range pg.Procs {
		np := &Proc{
			Mod:             pr.Mod,
			Sym:             pr.Sym,
			Name:            pr.Name,
			Exported:        pr.Exported,
			nextLabel:       pr.nextLabel,
			DataAddrTaken:   pr.DataAddrTaken,
			PrologueDeleted: pr.PrologueDeleted,
			PairAtEntry:     pr.PairAtEntry,
		}
		np.Insts = make([]*SInst, len(pr.Insts))
		backing := make([]SInst, len(pr.Insts))
		m := make(map[*SInst]*SInst, len(pr.Insts))
		for j, si := range pr.Insts {
			ns := &backing[j]
			*ns = *si
			// Labels are shared: every writer rebinds the field or appends
			// into a fresh backing array, never into a shared one (emission
			// carries its label moves in scratch, not on the instruction).
			np.Insts[j] = ns
			m[si] = ns
		}
		// Remap the intra-procedure pointer graph. Every annotation that can
		// point at an instruction points within its own procedure; only
		// Call.Target crosses procedures (second pass below). A nil key maps
		// to nil, so optional links need no guards.
		for j, si := range pr.Insts {
			ns := np.Insts[j]
			if si.Lit != nil {
				nl := *si.Lit
				if si.Lit.Uses != nil {
					nl.Uses = make([]*SInst, len(si.Lit.Uses))
					for k, u := range si.Lit.Uses {
						nl.Uses[k] = m[u]
					}
				}
				ns.Lit = &nl
			}
			if si.Use != nil {
				nu := *si.Use
				nu.Lit = m[si.Use.Lit]
				ns.Use = &nu
			}
			if si.GPD != nil {
				ng := *si.GPD
				ng.Partner = m[si.GPD.Partner]
				ng.AfterCall = m[si.GPD.AfterCall]
				ns.GPD = &ng
			}
			if si.GPRel != nil {
				ng := *si.GPRel
				ng.HighPart = m[si.GPRel.HighPart]
				ns.GPRel = &ng
			}
			if si.Call != nil {
				nc := *si.Call
				ns.Call = &nc
			}
			ns.PVLit = m[si.PVLit]
		}
		out.Procs[i] = np
		procMap[pr] = np
		out.procByDef[[2]int32{int32(pr.Mod), pr.Sym}] = np
	}
	for _, np := range out.Procs {
		for _, si := range np.Insts {
			if si.Call != nil {
				si.Call.Target = procMap[si.Call.Target]
			}
		}
	}
	return out
}

// progFootprint estimates a symbolic program's resident size for the memo
// stores' byte bounds: the instruction records dominate, with a flat
// allowance per instruction for its annotation records.
func progFootprint(pg *Prog) int64 {
	var n int64
	for _, pr := range pg.Procs {
		n += int64(len(pr.Insts))*192 + 128
	}
	return n
}
