package om

import (
	"context"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/tcc"
)

// TestRunEmitsPhaseSpans: a Run handed a parent span via WithSpan nests one
// child per pipeline phase, each with a positive duration, and the warm
// replay path marks its skips — the per-job trace the omd service threads
// through every link.
func TestRunEmitsPhaseSpans(t *testing.T) {
	ctx := context.Background()
	p := buildProgram(t, []tcc.Source{{Name: "prog", Text: "long main() { return 42; }\n"}})

	cold := obs.NewTrace("cold", "om", time.Time{}, nil)
	if _, err := Run(ctx, p, WithLevel(LevelFull), WithSpan(cold.Root())); err != nil {
		t.Fatal(err)
	}
	cold.Root().End()
	doc := cold.Doc()
	for _, phase := range []string{"om/lift", "om/passes", "om/emit"} {
		sp := doc.Find(phase)
		if sp == nil {
			t.Fatalf("cold run trace lacks %s:\n%s", phase, doc.Render())
		}
		if sp.Duration <= 0 {
			t.Errorf("%s duration = %v, want > 0", phase, sp.Duration)
		}
	}
	if doc.Find("om/layout") != nil {
		t.Error("layout span present without a profile")
	}
	var sum time.Duration
	for _, c := range doc.Root.Children {
		sum += c.Duration
	}
	if doc.Root.Duration < sum {
		t.Errorf("root %v < sum of phase children %v", doc.Root.Duration, sum)
	}

	// Warm replay through a memo: the trace shows the memo lookup hitting
	// and the replayed emit, and no lift/passes phases at all.
	memo := NewMemo(nil)
	opts := []Option{WithLevel(LevelFull), WithMemo(memo)}
	if _, err := Run(ctx, p, opts...); err != nil {
		t.Fatal(err)
	}
	warm := obs.NewTrace("warm", "om", time.Time{}, nil)
	if _, err := Run(ctx, p, append(opts, WithSpan(warm.Root()))...); err != nil {
		t.Fatal(err)
	}
	warm.Root().End()
	wdoc := warm.Doc()
	lookup := wdoc.Find("om/memo-lookup")
	if lookup == nil || lookup.Attrs["hit"] != "true" {
		t.Fatalf("warm run trace lacks a hitting memo lookup:\n%s", wdoc.Render())
	}
	emit := wdoc.Find("om/emit")
	if emit == nil || emit.Attrs["replayed"] != "true" {
		t.Fatalf("warm run trace lacks the replayed emit:\n%s", wdoc.Render())
	}
	if wdoc.Find("om/lift") != nil || wdoc.Find("om/passes") != nil {
		t.Errorf("warm replay trace claims lift/passes ran:\n%s", wdoc.Render())
	}
}
