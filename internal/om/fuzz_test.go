package om

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalOptions: the om-options/v1 parser must never panic, and
// anything it accepts must round-trip through the canonical form exactly
// (the coalescing key in omd depends on that bijection).
func FuzzUnmarshalOptions(f *testing.F) {
	seed := func(opts ...Option) {
		data, err := MarshalOptions(opts...)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	seed()
	seed(WithLevel(LevelNone))
	seed(WithLevel(LevelSimple), WithTrace())
	seed(WithSchedule(true), WithAblation(Ablation{NoGATReduction: true}))
	f.Add([]byte(`{"version":"om-options/v1"}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		opts, err := UnmarshalOptions(data)
		if err != nil {
			return
		}
		canon, err := MarshalOptions(opts...)
		if err != nil {
			t.Fatalf("accepted options do not re-marshal: %v", err)
		}
		opts2, err := UnmarshalOptions(canon)
		if err != nil {
			t.Fatalf("canonical form rejected: %v", err)
		}
		canon2, err := MarshalOptions(opts2...)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("canonical form not a fixed point:\n first %s\nsecond %s", canon, canon2)
		}
	})
}
