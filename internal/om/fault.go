package om

// faultHook, when non-nil, mutates the transformed program after the
// passes (and profile-guided layout) but before statistics collection,
// journal construction, and emission. It models a buggy optimization pass:
// the damage is invisible to OM's own accounting, and the verification
// subsystem must catch it from the outside. Tests only.
var faultHook func(*Prog)

// SetFaultHookForTesting installs a post-pass program mutation and returns
// a function restoring the previous hook. The verify package uses it to
// prove a deliberately-broken OM pass is caught by both the translation
// validator and the differential runner. Not safe for concurrent Runs; the
// tests that use it are serial.
func SetFaultHookForTesting(h func(*Prog)) (restore func()) {
	old := faultHook
	faultHook = h
	return func() { faultHook = old }
}
