package om

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/link"
	"repro/internal/obs"
	"repro/internal/tcc"
)

// matrixPoint is one (options, profile) cell of the golden matrix.
type matrixPoint struct {
	name string
	opts []Option
	prof bool
}

func goldenMatrix() []matrixPoint {
	return []matrixPoint{
		{name: "none", opts: []Option{WithLevel(LevelNone)}},
		{name: "simple", opts: []Option{WithLevel(LevelSimple)}},
		{name: "full", opts: []Option{WithLevel(LevelFull)}},
		{name: "full+sched", opts: []Option{WithLevel(LevelFull), WithSchedule(true)}},
		{name: "ablate-gatred", opts: []Option{WithAblation(Ablation{NoGATReduction: true})}},
		{name: "ablate-call+sched", opts: []Option{WithAblation(Ablation{NoCallOpt: true}), WithSchedule(true)}},
		{name: "full+pgo", opts: []Option{WithLevel(LevelFull)}, prof: true},
		{name: "full+sched+pgo", opts: []Option{WithLevel(LevelFull), WithSchedule(true)}, prof: true},
	}
}

// TestWarmRunByteIdenticalMatrix is the tentpole invariant: for every
// (options, profile) point of the golden matrix, a warm incremental Run —
// lifted-form replay on first sight of the options, full pass-memo replay
// on second sight — produces a byte-identical image to a cold memo-less
// Run. The sweep runs twice so every point is exercised both while the memo
// is filling and after unrelated points have interleaved.
func TestWarmRunByteIdenticalMatrix(t *testing.T) {
	prof := collectProfile(t)
	memo := NewMemo(nil)
	ctx := context.Background()

	cold := make(map[string][]byte)
	for _, pt := range goldenMatrix() {
		opts := pt.opts
		if pt.prof {
			opts = append(append([]Option(nil), opts...), WithProfile(prof))
		}
		res, err := Run(ctx, freshProgram(t), opts...)
		if err != nil {
			t.Fatalf("%s: cold run: %v", pt.name, err)
		}
		cold[pt.name] = imageBytes(t, res.Image)
	}

	for sweep := 0; sweep < 2; sweep++ {
		for _, pt := range goldenMatrix() {
			opts := append([]Option{WithMemo(memo)}, pt.opts...)
			if pt.prof {
				opts = append(opts, WithProfile(prof))
			}
			res, err := Run(ctx, freshProgram(t), opts...)
			if err != nil {
				t.Fatalf("%s: warm run (sweep %d): %v", pt.name, sweep, err)
			}
			if got := imageBytes(t, res.Image); !bytes.Equal(got, cold[pt.name]) {
				t.Errorf("%s: sweep %d image differs from cold run (%d vs %d bytes)",
					pt.name, sweep, len(got), len(cold[pt.name]))
			}
			if res.Stats == nil {
				t.Fatalf("%s: warm run carried no stats", pt.name)
			}
		}
	}
	if st := memo.PassStats(); st.Hits == 0 {
		t.Error("second sweep never hit the pass memo")
	}
	if st := memo.LiftStats(); st.Hits == 0 {
		t.Error("matrix never hit the lifted-form cache")
	}
}

// TestWarmStatsMatchCold: the statistics replayed from the pass memo equal
// the cold run's, field for field.
func TestWarmStatsMatchCold(t *testing.T) {
	ctx := context.Background()
	coldRes, err := Run(ctx, freshProgram(t), WithLevel(LevelFull), WithSchedule(true))
	if err != nil {
		t.Fatal(err)
	}
	memo := NewMemo(nil)
	for i := 0; i < 2; i++ {
		res, err := Run(ctx, freshProgram(t), WithLevel(LevelFull), WithSchedule(true), WithMemo(memo))
		if err != nil {
			t.Fatalf("warm run %d: %v", i, err)
		}
		if *res.Stats != *coldRes.Stats {
			t.Errorf("warm run %d stats diverge:\nwarm %+v\ncold %+v", i, *res.Stats, *coldRes.Stats)
		}
	}
}

// TestWarmRunSkipsDecodeLiftAndPasses proves the acceptance criterion with
// the obs counters: a warm same-options relink performs zero module
// decodes, zero procedure lifts, and zero per-procedure pass computations;
// a warm options-only relink performs zero decodes and zero lifts, and
// recomputes only the passes.
func TestWarmRunSkipsDecodeLiftAndPasses(t *testing.T) {
	ctx := context.Background()
	memo := NewMemo(nil)

	counters := func(opts ...Option) map[string]uint64 {
		reg := obs.NewRegistry()
		opts = append(opts, WithMemo(memo), WithMetrics(reg))
		if _, err := Run(ctx, freshProgram(t), opts...); err != nil {
			t.Fatal(err)
		}
		out := map[string]uint64{}
		for _, name := range []string{
			"om/decode/modules", "om/lift/procs", "om/lift/replayed",
			"om/passes/procs", "om/passes/replayed",
		} {
			out[name] = reg.Counter(name).Value()
		}
		return out
	}

	cold := counters(WithLevel(LevelFull))
	if cold["om/decode/modules"] == 0 || cold["om/lift/procs"] == 0 || cold["om/passes/procs"] == 0 {
		t.Fatalf("cold run did no work: %v", cold)
	}

	warmSame := counters(WithLevel(LevelFull))
	if warmSame["om/decode/modules"] != 0 || warmSame["om/lift/procs"] != 0 || warmSame["om/passes/procs"] != 0 {
		t.Errorf("warm same-options relink redid work: %v", warmSame)
	}
	if warmSame["om/passes/replayed"] != cold["om/passes/procs"] {
		t.Errorf("warm same-options relink replayed %d of %d procedures",
			warmSame["om/passes/replayed"], cold["om/passes/procs"])
	}

	warmNew := counters(WithLevel(LevelFull), WithSchedule(true))
	if warmNew["om/decode/modules"] != 0 || warmNew["om/lift/procs"] != 0 {
		t.Errorf("warm options-only relink re-decoded or re-lifted: %v", warmNew)
	}
	if warmNew["om/lift/replayed"] != cold["om/lift/procs"] {
		t.Errorf("warm options-only relink replayed %d of %d lifted procedures",
			warmNew["om/lift/replayed"], cold["om/lift/procs"])
	}
	if warmNew["om/passes/procs"] == 0 {
		t.Error("options change must recompute the passes")
	}
}

// TestMemoEvictionNeverStale: with the stores sized far below the working
// set, every lookup pattern — partial eviction, full eviction, interleaved
// programs — must fall back to recompute, never serve a stale or foreign
// snapshot. Byte-identity against memo-less runs is the oracle.
func TestMemoEvictionNeverStale(t *testing.T) {
	ctx := context.Background()
	progA := func(t *testing.T) *link.Program { return freshProgram(t) }
	progB := func(t *testing.T) *link.Program {
		return buildProgram(t, []tcc.Source{{Name: "alt", Text: `
long twist(long v) { return v * 7 - 2; }
long main() {
	long i; long acc = 0;
	for (i = 0; i < 9; i = i + 1) acc = acc + twist(i);
	return acc;
}
`}})
	}

	want := map[string][]byte{}
	for name, mk := range map[string]func(*testing.T) *link.Program{"a": progA, "b": progB} {
		for _, sched := range []bool{false, true} {
			res, err := Run(ctx, mk(t), WithLevel(LevelFull), WithSchedule(sched))
			if err != nil {
				t.Fatal(err)
			}
			want[fmt.Sprintf("%s/%v", name, sched)] = imageBytes(t, res.Image)
		}
	}

	// Small bounds: one lifted program, fewer pass entries than procedures.
	memo := NewMemoWithConfig(MemoConfig{LiftEntries: 1, PassEntries: 5}, nil)
	for round := 0; round < 3; round++ {
		for name, mk := range map[string]func(*testing.T) *link.Program{"a": progA, "b": progB} {
			for _, sched := range []bool{false, true} {
				res, err := Run(ctx, mk(t), WithLevel(LevelFull), WithSchedule(sched), WithMemo(memo))
				if err != nil {
					t.Fatal(err)
				}
				key := fmt.Sprintf("%s/%v", name, sched)
				if !bytes.Equal(imageBytes(t, res.Image), want[key]) {
					t.Fatalf("round %d: %s: image diverged under eviction pressure", round, key)
				}
			}
		}
	}
	if st := memo.PassStats(); st.Evictions == 0 {
		t.Error("undersized pass store never evicted; the test exercised nothing")
	}
	if st := memo.LiftStats(); st.Evictions == 0 {
		t.Error("undersized lift store never evicted")
	}
}

// TestMemoTraceAndInstrumentBypass: traced runs recompute their journal
// every time (never replay it away), and instrumentation runs still work
// with a memo attached — both reuse the lifted form only.
func TestMemoTraceAndInstrumentBypass(t *testing.T) {
	ctx := context.Background()
	memo := NewMemo(nil)

	// Prime the pass memo for the same options, so a buggy replay would
	// swallow the journal.
	if _, err := Run(ctx, freshProgram(t), WithLevel(LevelFull), WithMemo(memo)); err != nil {
		t.Fatal(err)
	}
	ref, err := Run(ctx, freshProgram(t), WithLevel(LevelFull), WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		res, err := Run(ctx, freshProgram(t), WithLevel(LevelFull), WithTrace(), WithMemo(memo))
		if err != nil {
			t.Fatalf("traced warm run %d: %v", i, err)
		}
		if res.Journal == nil || len(res.Journal.Events) == 0 {
			t.Fatalf("traced warm run %d returned no journal", i)
		}
		if len(res.Journal.Events) != len(ref.Journal.Events) {
			t.Errorf("traced warm run %d: %d journal events, want %d",
				i, len(res.Journal.Events), len(ref.Journal.Events))
		}
		if !bytes.Equal(imageBytes(t, res.Image), imageBytes(t, ref.Image)) {
			t.Errorf("traced warm run %d image differs from memo-less traced run", i)
		}
	}

	ins, err := Run(ctx, freshProgram(t), WithInstrumentation(), WithMemo(memo))
	if err != nil {
		t.Fatal(err)
	}
	if len(ins.Blocks) == 0 {
		t.Error("instrumented run with memo returned no block table")
	}
	insRef, err := Run(ctx, freshProgram(t), WithInstrumentation())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(imageBytes(t, ins.Image), imageBytes(t, insRef.Image)) {
		t.Error("instrumented image differs with a memo attached")
	}
}

// TestCloneProgIsolation: a cloned program shares nothing mutable with its
// source — running the full pass pipeline on the clone leaves the source
// byte-for-byte reusable.
func TestCloneProgIsolation(t *testing.T) {
	ctx := context.Background()
	p := freshProgram(t)
	pg, err := lift(ctx, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	pg.par = 1

	emit := func(pg *Prog) []byte {
		pl, err := computePlan(pg, planOpts{})
		if err != nil {
			t.Fatal(err)
		}
		im, err := Emit(pg, pl, false)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := im.Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	// Transform a clone with the most invasive pipeline; the pristine
	// original must still emit the unoptimized image afterwards.
	pristine := cloneProg(pg)
	before := emit(cloneProg(pristine))
	clone := cloneProg(pristine)
	if _, err := runFull(ctx, clone, Ablation{}); err != nil {
		t.Fatal(err)
	}
	after := emit(cloneProg(pristine))
	if !bytes.Equal(before, after) {
		t.Error("transforming a clone mutated the pristine program")
	}

	// The clone's cross-procedure links point into the clone, not the source.
	for pi, pr := range clone.Procs {
		for _, si := range pr.Insts {
			if si.Call != nil && si.Call.Target != nil {
				if clone.procByDef[[2]int32{int32(si.Call.Target.Mod), si.Call.Target.Sym}] != si.Call.Target {
					t.Fatalf("proc %d: call target escapes the clone", pi)
				}
			}
		}
	}
}

// TestWarmReplayAllocsConstant pins the warm replay's allocation profile:
// once a (program, options) point is resident, a Run allocates a small
// constant number of objects — the emitted image and a fixed amount of
// bookkeeping — independent of how large the program is. The emit scratch
// (final-instruction slices, label slices, the address table) is pooled,
// so growing the program must not grow the allocation count.
func TestWarmReplayAllocsConstant(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector randomizes sync.Pool reuse; allocation counts are not meaningful")
	}
	ctx := context.Background()
	probe := func(src string) float64 {
		p := buildProgram(t, []tcc.Source{{Name: "prog", Text: src}})
		memo := NewMemo(nil)
		opts := []Option{WithLevel(LevelFull), WithMemo(memo)}
		// First Run stores the snapshot, second settles the pools.
		for i := 0; i < 2; i++ {
			if _, err := Run(ctx, p, opts...); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(50, func() {
			if _, err := Run(ctx, p, opts...); err != nil {
				t.Fatal(err)
			}
		})
	}

	small := probe("long main() { return 0; }\n")
	var big strings.Builder
	big.WriteString("long main() {\n\tlong i;\n\ti = 0;\n")
	for i := 0; i < 2000; i++ {
		big.WriteString("\ti = i + 1;\n")
	}
	big.WriteString("\treturn 0;\n}\n")
	bigAllocs := probe(big.String())

	if small > 120 {
		t.Errorf("warm replay allocates %.0f objects, want a small constant", small)
	}
	if diff := bigAllocs - small; diff > 16 || diff < -16 {
		t.Errorf("warm replay allocations scale with program size: %.0f (small) vs %.0f (big)",
			small, bigAllocs)
	}
}
