package om

import (
	"context"
	"errors"
	"testing"

	"repro/internal/tcc"
)

// TestProgObserverStages verifies the observer contract: StageLifted fires
// with the pre-pass program, StageOptimized with the post-pass one, both
// with a usable layout plan.
func TestProgObserverStages(t *testing.T) {
	p := buildProgram(t, []tcc.Source{{Name: "main", Text: testProgram}})
	var stages []ProgStage
	var liftedInsts, optimizedInsts int
	_, err := Run(context.Background(), p, WithLevel(LevelFull),
		WithProgObserver(func(stage ProgStage, pg *Prog, pl *Plan) error {
			stages = append(stages, stage)
			n := 0
			for _, pr := range pg.Procs {
				n += len(pr.Live())
			}
			switch stage {
			case StageLifted:
				liftedInsts = n
			case StageOptimized:
				optimizedInsts = n
			}
			if pl == nil {
				t.Errorf("stage %s: nil plan", stage)
			} else if pr := pg.Procs[0]; pl.GPGroup(pr) < 0 {
				t.Errorf("stage %s: plan has no GP group for %s", stage, pr.Name)
			}
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 2 || stages[0] != StageLifted || stages[1] != StageOptimized {
		t.Fatalf("observer stages %v, want [lifted optimized]", stages)
	}
	if optimizedInsts >= liftedInsts {
		t.Fatalf("OM-full grew the program: %d lifted, %d optimized live instructions",
			liftedInsts, optimizedInsts)
	}
}

// TestProgObserverError verifies an observer error aborts the run at both
// stages.
func TestProgObserverError(t *testing.T) {
	for _, failAt := range []ProgStage{StageLifted, StageOptimized} {
		p := buildProgram(t, []tcc.Source{{Name: "main", Text: testProgram}})
		boom := errors.New("observer rejects " + string(failAt))
		_, err := Run(context.Background(), p, WithLevel(LevelSimple),
			WithProgObserver(func(stage ProgStage, pg *Prog, pl *Plan) error {
				if stage == failAt {
					return boom
				}
				return nil
			}))
		if !errors.Is(err, boom) {
			t.Fatalf("fail at %s: Run returned %v, want the observer's error", failAt, err)
		}
	}
}

// TestProgObserverBypassesMemo verifies an observed run never replays from
// the pass memo (a replay would skip the passes the observer wants to
// watch) and never pollutes it for later unobserved runs.
func TestProgObserverBypassesMemo(t *testing.T) {
	memo := NewMemo(nil)

	// Warm the memo with an unobserved run.
	p := buildProgram(t, []tcc.Source{{Name: "main", Text: testProgram}})
	if _, err := Run(context.Background(), p, WithLevel(LevelFull), WithMemo(memo)); err != nil {
		t.Fatal(err)
	}

	// The observed run must still fire both stages even with a warm memo.
	p = buildProgram(t, []tcc.Source{{Name: "main", Text: testProgram}})
	fired := 0
	if _, err := Run(context.Background(), p, WithLevel(LevelFull), WithMemo(memo),
		WithProgObserver(func(stage ProgStage, pg *Prog, pl *Plan) error {
			fired++
			return nil
		})); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("observer fired %d times under a warm memo, want 2", fired)
	}
}
