package om

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/axp"
	"repro/internal/link"
	"repro/internal/objfile"
	"repro/internal/rtlib"
	"repro/internal/sim"
	"repro/internal/tcc"
)

// buildProgram compiles user sources (one unit each) plus the runtime
// library and merges them.
func buildProgram(t *testing.T, srcs []tcc.Source) *link.Program {
	t.Helper()
	var objs []*objfile.Object
	for _, s := range srcs {
		obj, err := tcc.Compile(s.Name, []tcc.Source{s}, tcc.DefaultOptions())
		if err != nil {
			t.Fatalf("compile %s: %v", s.Name, err)
		}
		objs = append(objs, obj)
	}
	lib, err := rtlib.StandardObjects()
	if err != nil {
		t.Fatal(err)
	}
	p, err := link.Merge(append(objs, lib...))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func run(t *testing.T, im *objfile.Image) *sim.Result {
	t.Helper()
	res, err := sim.Run(im, sim.Config{MaxInstructions: 100_000_000})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

const testProgram = `
long grid[50];
long total = 0;
double weight = 2.5;
long spare[4];

long up(long a, long b) { return a - b; }

static long scale3(long v) { return v * 3; }

long accumulate(long n) {
	long i;
	for (i = 0; i < n; i = i + 1) {
		grid[i] = lhash(i) % 97 + scale3(i);
		total = total + grid[i];
	}
	return total;
}

long main() {
	accumulate(50);
	qsort8(grid, 0, 49, up);
	print(issorted(grid, 50, up));
	print(total);
	print_fixed(weight * 2.0);
	print(grid[0] + grid[49]);
	spare[1] = total % 1000;
	print(spare[1]);
	return 0;
}
`

// optimizeAt runs OM at the given level and returns image + stats.
func optimizeAt(t *testing.T, p *link.Program, level Level, sched bool) (*objfile.Image, *Stats) {
	t.Helper()
	res, err := Run(context.Background(), p, WithLevel(level), WithSchedule(sched))
	if err != nil {
		t.Fatalf("om %v: %v", level, err)
	}
	return res.Image, res.Stats
}

func freshProgram(t *testing.T) *link.Program {
	return buildProgram(t, []tcc.Source{{Name: "prog", Text: testProgram}})
}

func TestSemanticsPreservedAcrossLevels(t *testing.T) {
	baseIm, err := freshProgram(t).Layout()
	if err != nil {
		t.Fatal(err)
	}
	want := run(t, baseIm)
	if len(want.Output) == 0 || want.Output[0] != 1 {
		t.Fatalf("baseline output suspicious: %v", want.Output)
	}
	configs := []struct {
		level Level
		sched bool
	}{
		{LevelNone, false},
		{LevelSimple, false},
		{LevelFull, false},
		{LevelFull, true},
	}
	for _, c := range configs {
		// Each level needs a fresh lift (transforms mutate the program).
		im, _ := optimizeAt(t, freshProgram(t), c.level, c.sched)
		got := run(t, im)
		if got.Exit != want.Exit {
			t.Errorf("%v sched=%v: exit %d, want %d", c.level, c.sched, got.Exit, want.Exit)
		}
		if fmt.Sprint(got.Output) != fmt.Sprint(want.Output) {
			t.Errorf("%v sched=%v: output %v, want %v", c.level, c.sched, got.Output, want.Output)
		}
	}
}

func TestStatsShapes(t *testing.T) {
	_, none := optimizeAt(t, freshProgram(t), LevelNone, false)
	_, simple := optimizeAt(t, freshProgram(t), LevelSimple, false)
	_, full := optimizeAt(t, freshProgram(t), LevelFull, false)

	if none.AddressLoads == 0 || none.AddrConverted != 0 || none.AddrNullified != 0 {
		t.Errorf("no-opt stats wrong: %+v", none)
	}
	if none.Instructions == 0 || none.Nullified != 0 || none.Deleted != 0 {
		t.Errorf("no-opt instruction stats wrong: %+v", none)
	}

	// OM-simple removes a substantial fraction of address loads.
	if simple.AddrConverted+simple.AddrNullified == 0 {
		t.Error("OM-simple removed no address loads")
	}
	if simple.Deleted != 0 {
		t.Errorf("OM-simple must not delete instructions, deleted %d", simple.Deleted)
	}
	if simple.Nullified == 0 {
		t.Error("OM-simple nullified nothing")
	}

	// OM-full removes at least as many address loads and deletes code.
	if full.AddrConverted+full.AddrNullified < simple.AddrConverted+simple.AddrNullified {
		t.Errorf("OM-full (%d) removed fewer address loads than OM-simple (%d)",
			full.AddrConverted+full.AddrNullified, simple.AddrConverted+simple.AddrNullified)
	}
	if full.Deleted == 0 {
		t.Error("OM-full deleted nothing")
	}
	// Single GAT here: every GP reset disappears and PV loads remain only
	// at indirect call sites.
	if full.GPResetAfter != 0 {
		t.Errorf("OM-full left %d GP resets on a single-GAT program", full.GPResetAfter)
	}
	if full.PVAfter != full.IndirectCalls {
		t.Errorf("OM-full PV loads = %d, want %d (indirect calls only)", full.PVAfter, full.IndirectCalls)
	}
	if full.JSRAfter != full.IndirectCalls {
		t.Errorf("OM-full jsr sites = %d, want %d", full.JSRAfter, full.IndirectCalls)
	}
	// GAT reduction by a large factor.
	if full.GATBytesAfter*2 > full.GATBytesBefore {
		t.Errorf("GAT only reduced %d -> %d bytes", full.GATBytesBefore, full.GATBytesAfter)
	}
	if simple.GATBytesAfter != simple.GATBytesBefore {
		t.Errorf("OM-simple changed the GAT size: %d -> %d", simple.GATBytesBefore, simple.GATBytesAfter)
	}

	// The test program makes indirect calls (qsort8's comparator).
	if full.IndirectCalls == 0 {
		t.Error("expected indirect call sites in the test program")
	}
}

func TestFullSmallerThanBaseline(t *testing.T) {
	baseIm, err := freshProgram(t).Layout()
	if err != nil {
		t.Fatal(err)
	}
	fullIm, _ := optimizeAt(t, freshProgram(t), LevelFull, false)
	baseText := len(baseIm.TextSegment().Data)
	fullText := len(fullIm.TextSegment().Data)
	if fullText >= baseText {
		t.Errorf("OM-full text %d bytes >= baseline %d", fullText, baseText)
	}
	if fullIm.GATBytes() >= baseIm.GATBytes() {
		t.Errorf("OM-full GAT %d >= baseline %d", fullIm.GATBytes(), baseIm.GATBytes())
	}
}

func TestFullFasterThanBaseline(t *testing.T) {
	baseIm, err := freshProgram(t).Layout()
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	base, err := sim.Run(baseIm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	simpleIm, _ := optimizeAt(t, freshProgram(t), LevelSimple, false)
	simple, err := sim.Run(simpleIm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fullIm, _ := optimizeAt(t, freshProgram(t), LevelFull, false)
	full, err := sim.Run(fullIm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if simple.Stats.Cycles > base.Stats.Cycles {
		t.Errorf("OM-simple slower: %d > %d cycles", simple.Stats.Cycles, base.Stats.Cycles)
	}
	if full.Stats.Cycles >= base.Stats.Cycles {
		t.Errorf("OM-full not faster: %d >= %d cycles", full.Stats.Cycles, base.Stats.Cycles)
	}
	if full.Stats.Instructions >= base.Stats.Instructions {
		t.Errorf("OM-full executed as many instructions: %d >= %d",
			full.Stats.Instructions, base.Stats.Instructions)
	}
}

func TestIdempotence(t *testing.T) {
	// Optimizing an already-optimized program should find ~nothing: lift
	// the OM-full output? OM consumes relocatable programs, so instead we
	// check the fixpoint property: a second runFull round reports no
	// changes. This is enforced inside runFull; here we just verify the
	// pass converged (stats stable under a rerun of the pass set).
	p := freshProgram(t)
	pg, err := Lift(p)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := runFull(context.Background(), pg, Ablation{})
	if err != nil {
		t.Fatal(err)
	}
	if applyAddressOpts(pg, pl, true) {
		t.Error("address opts still find work after fixpoint")
	}
	if applyCallOpts(pg, pl, true) {
		t.Error("call opts still find work after fixpoint")
	}
	if applyGPResetOpts(pg, pl, true) {
		t.Error("reset opts still find work after fixpoint")
	}
}

func TestMultiGAT(t *testing.T) {
	// Build a program whose literal pools overflow one GAT. The globals are
	// arrays whose addresses escape into library calls, so OM cannot rewrite
	// the accesses GP-relatively once the data is beyond 16-bit reach — the
	// GAT stays large and split.
	genModule := func(name string, nglobals int, caller bool) string {
		var b strings.Builder
		for i := 0; i < nglobals; i++ {
			fmt.Fprintf(&b, "long %s_g%d[2];\n", name, i)
		}
		fmt.Fprintf(&b, "long %s_sum() {\n long s = 0;\n", name)
		for i := 0; i < nglobals; i++ {
			fmt.Fprintf(&b, " %s_g%d[0] = %d;\n", name, i, i%13)
			fmt.Fprintf(&b, " s = s + lsum(%s_g%d, 2);\n", name, i)
		}
		b.WriteString(" return s;\n}\n")
		if caller {
			b.WriteString(`
long b_sum();
long main() {
	long a = a_sum();
	long b = b_sum();
	print(a);
	print(b);
	return 0;
}
long a_sum();
`)
		}
		return b.String()
	}
	srcs := []tcc.Source{
		{Name: "a", Text: genModule("a", 6000, true)},
		{Name: "b", Text: genModule("b", 6000, false)},
	}
	// Skip the compile-time scheduler: these are single giant basic blocks
	// and the O(n^2) dependence scan would dominate the test.
	opts := tcc.DefaultOptions()
	opts.Schedule = false
	build := func() *link.Program {
		var objs []*objfile.Object
		for _, src := range srcs {
			obj, err := tcc.Compile(src.Name, []tcc.Source{src}, opts)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			objs = append(objs, obj)
		}
		lib, err := rtlib.StandardObjects()
		if err != nil {
			t.Fatal(err)
		}
		p, err := link.Merge(append(objs, lib...))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	baseIm, err := build().Layout()
	if err != nil {
		t.Fatal(err)
	}
	if len(baseIm.GATs) < 2 {
		t.Fatalf("expected multiple GATs, got %d", len(baseIm.GATs))
	}
	want := run(t, baseIm)

	for _, level := range []Level{LevelSimple, LevelFull} {
		im, st := optimizeAt(t, build(), level, false)
		got := run(t, im)
		if fmt.Sprint(got.Output) != fmt.Sprint(want.Output) || got.Exit != want.Exit {
			t.Errorf("%v: output %v exit %d, want %v exit %d",
				level, got.Output, got.Exit, want.Output, want.Exit)
		}
		if level == LevelSimple {
			// OM-simple never reduces the GAT: both tables survive, and the
			// resets after cross-GAT calls must too.
			if len(im.GATs) < 2 {
				t.Errorf("simple: expected multiple GATs, got %d", len(im.GATs))
			}
			if st.GPResetAfter == 0 {
				t.Errorf("simple: expected surviving GP resets across GATs")
			}
		} else {
			// OM-full's ldah/lda materialization empties the GAT of data
			// keys; the whole program collapses into one table, so every
			// reset legitimately disappears.
			if st.GATBytesAfter >= st.GATBytesBefore {
				t.Errorf("full: GAT not reduced: %d -> %d", st.GATBytesBefore, st.GATBytesAfter)
			}
		}
	}
}

func TestLiftRejectsNothingOnRealModules(t *testing.T) {
	p := freshProgram(t)
	pg, err := Lift(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(pg.Procs) < 10 {
		t.Errorf("lifted only %d procedures", len(pg.Procs))
	}
	// Every literal's uses point back at it.
	for _, pr := range pg.Procs {
		for _, si := range pr.Insts {
			if si.Use != nil && si.Use.Lit.Lit == nil {
				t.Fatalf("%s: use linked to non-literal", pr.Name)
			}
			if si.Lit != nil {
				for _, u := range si.Lit.Uses {
					if u.Use == nil || u.Use.Lit != si {
						t.Fatalf("%s: inconsistent use chain", pr.Name)
					}
				}
			}
		}
	}
}

func TestSimpleKeepsInstructionCount(t *testing.T) {
	p := freshProgram(t)
	pg, err := Lift(p)
	if err != nil {
		t.Fatal(err)
	}
	before := 0
	for _, pr := range pg.Procs {
		before += len(pr.Insts)
	}
	if _, err := runSimple(pg); err != nil {
		t.Fatal(err)
	}
	after := 0
	for _, pr := range pg.Procs {
		for _, si := range pr.Insts {
			if si.Deleted {
				t.Fatalf("%s: OM-simple deleted an instruction", pr.Name)
			}
			after++
		}
	}
	if before != after {
		t.Fatalf("instruction count changed %d -> %d", before, after)
	}
}

func TestAlignmentPass(t *testing.T) {
	// Under om-full+sched every backward-branch target must be quadword
	// aligned in the emitted image.
	im, _ := optimizeAt(t, freshProgram(t), LevelFull, true)
	text := im.TextSegment()
	insts, err := axp.DecodeAll(text.Data)
	if err != nil {
		t.Fatal(err)
	}
	misaligned := 0
	for i, in := range insts {
		if !in.Op.IsBranch() || in.Op == axp.BSR {
			continue
		}
		addr := text.Addr + uint64(i*4)
		target := addr + 4 + uint64(int64(in.Disp)*4)
		if target <= addr && target%8 != 0 {
			misaligned++
			t.Errorf("backward branch at %#x targets misaligned %#x", addr, target)
		}
	}
	_ = misaligned
}

func TestFullRemovesAllGATLoads(t *testing.T) {
	// With the whole-program single GAT reduced away, no instruction may
	// still load through GP (lda/ldah through GP are fine; ldq is not,
	// except the indirect-call PV materializations that read variables).
	im, st := optimizeAt(t, freshProgram(t), LevelFull, false)
	if st.GATBytesAfter != 0 {
		t.Skipf("GAT not empty (%d bytes); program retains text keys", st.GATBytesAfter)
	}
	text := im.TextSegment()
	insts, err := axp.DecodeAll(text.Data)
	if err != nil {
		t.Fatal(err)
	}
	gp := im.GATs[0].GP
	for i, in := range insts {
		if in.Op == axp.LDQ && in.Rb == axp.GP {
			addr := gp + uint64(int64(in.Disp))
			// A GP-relative data load is fine; it must land in the data
			// segment, not in a (nonexistent) GAT.
			data := im.DataSegment()
			if addr < data.Addr || addr >= data.End() {
				t.Errorf("instruction %d: ldq via GP outside data segment (%#x)", i, addr)
			}
		}
	}
}

func TestAblatedStillCorrect(t *testing.T) {
	// Every single-component ablation must still preserve semantics.
	baseIm, err := freshProgram(t).Layout()
	if err != nil {
		t.Fatal(err)
	}
	want := run(t, baseIm)
	for _, ab := range Ablations() {
		res, err := Run(context.Background(), freshProgram(t),
			WithAblation(ab), WithSchedule(true))
		if err != nil {
			t.Fatalf("%s: %v", ab.Name(), err)
		}
		got := run(t, res.Image)
		if fmt.Sprint(got.Output) != fmt.Sprint(want.Output) || got.Exit != want.Exit {
			t.Errorf("%s: output %v exit %d, want %v exit %d",
				ab.Name(), got.Output, got.Exit, want.Output, want.Exit)
		}
	}
}

func TestInstrumentation(t *testing.T) {
	// An instrumented program must produce identical output, and the block
	// counts must be consistent with execution.
	baseIm, err := freshProgram(t).Layout()
	if err != nil {
		t.Fatal(err)
	}
	want := run(t, baseIm)

	ires, err := Run(context.Background(), freshProgram(t), WithInstrumentation())
	if err != nil {
		t.Fatal(err)
	}
	im, blocks := ires.Image, ires.Blocks
	if len(blocks) < 50 {
		t.Fatalf("only %d blocks instrumented", len(blocks))
	}
	res, err := sim.Run(im, sim.Config{MaxInstructions: 100_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res.Output) != fmt.Sprint(want.Output) || res.Exit != want.Exit {
		t.Fatalf("instrumented output %v exit %d, want %v exit %d",
			res.Output, res.Exit, want.Output, want.Exit)
	}
	if res.Profile == nil {
		t.Fatal("no profile collected")
	}
	// Per-procedure entry blocks: main executes exactly once; __start once;
	// the qsort comparator many times.
	byProcEntry := map[string]uint64{}
	for _, b := range blocks {
		if b.Index == 0 {
			byProcEntry[b.Proc] = res.Profile[b.ID]
		}
	}
	if byProcEntry["main"] != 1 {
		t.Errorf("main entry count = %d, want 1", byProcEntry["main"])
	}
	if byProcEntry["__start"] != 1 {
		t.Errorf("__start entry count = %d, want 1", byProcEntry["__start"])
	}
	if byProcEntry["up"] < 100 {
		t.Errorf("comparator entry count = %d, want many", byProcEntry["up"])
	}
	if byProcEntry["qsort8"] < 10 {
		t.Errorf("qsort8 entry count = %d, want recursive many", byProcEntry["qsort8"])
	}
	// Static helper called through a bsr to its local entry must still be
	// counted (the trap sits after the pinned GP pair).
	if byProcEntry["prog$scale3"] != 50 {
		t.Errorf("scale3 entry count = %d, want 50", byProcEntry["prog$scale3"])
	}
}
