package om

import (
	"fmt"

	"repro/internal/axp"
	"repro/internal/link"
	"repro/internal/objfile"
)

// normalizeLabels moves labels off deleted instructions onto the next live
// one and returns the live instruction list.
func normalizeLabels(pr *Proc) ([]*SInst, error) {
	var pending []int
	live := make([]*SInst, 0, len(pr.Insts))
	for _, si := range pr.Insts {
		if si.Deleted {
			pending = append(pending, si.Labels...)
			si.Labels = nil
			continue
		}
		if len(pending) > 0 {
			si.Labels = append(pending, si.Labels...)
			pending = nil
		}
		live = append(live, si)
	}
	if len(pending) > 0 {
		return nil, fmt.Errorf("om: %s: labels %v dangle past the last instruction", pr.Name, pending)
	}
	return live, nil
}

// rescheduleProc list-schedules each basic block of the live instruction
// list, using the same latency model as the compile-time scheduler. A
// GP-setup pair at procedure entry is pinned there: callers may be
// branching to entry+8 to skip it.
func rescheduleProc(live []*SInst) []*SInst {
	pinned := 0
	if len(live) >= 2 &&
		live[0].GPD != nil && live[0].GPD.High && live[0].GPD.Entry &&
		live[1].GPD != nil && live[1] == live[0].GPD.Partner {
		pinned = 2
	}
	if pinned > 0 {
		rest := rescheduleBody(live[pinned:])
		return append(live[:pinned:pinned], rest...)
	}
	return rescheduleBody(live)
}

// rescheduleBody schedules without any pinned prefix.
func rescheduleBody(live []*SInst) []*SInst {
	isEnd := func(in axp.Inst) bool {
		return in.Op.IsBranch() || in.Op.IsJump() || in.Op == axp.CALLPAL
	}
	out := make([]*SInst, 0, len(live))
	start := 0
	flush := func(end int) {
		if end > start {
			seg := live[start:end]
			labels := seg[0].Labels
			seg[0].Labels = nil
			raw := make([]axp.Inst, len(seg))
			for i, si := range seg {
				raw[i] = si.In
			}
			order := axp.ScheduleOrder(raw)
			scheduled := make([]*SInst, len(seg))
			for pos, idx := range order {
				scheduled[pos] = seg[idx]
			}
			scheduled[0].Labels = append(labels, scheduled[0].Labels...)
			out = append(out, scheduled...)
		}
		start = end
	}
	for i, si := range live {
		if len(si.Labels) > 0 {
			flush(i)
		}
		if isEnd(si.In) {
			flush(i)
			out = append(out, si)
			start = i + 1
		}
	}
	flush(len(live))
	return out
}

// alignLoopTargets inserts unops so that instructions targeted by backward
// branches start on a quadword boundary (procedure bases are quadword
// aligned). This is the OM-full alignment pass that helps the dual-issue
// fetcher.
func alignLoopTargets(live []*SInst) []*SInst {
	// Identify labels targeted by a later (backward) branch.
	labelIdx := make(map[int]int)
	for i, si := range live {
		for _, l := range si.Labels {
			labelIdx[l] = i
		}
	}
	backward := make(map[int]bool)
	for i, si := range live {
		if si.Target >= 0 {
			if ti, ok := labelIdx[si.Target]; ok && ti <= i {
				backward[si.Target] = true
			}
		}
	}
	if len(backward) == 0 {
		return live
	}
	out := make([]*SInst, 0, len(live)+8)
	off := 0
	for _, si := range live {
		isTarget := false
		for _, l := range si.Labels {
			if backward[l] {
				isTarget = true
			}
		}
		if isTarget && off%8 != 0 {
			out = append(out, &SInst{In: axp.Unop(), Target: -1})
			off += 4
		}
		out = append(out, si)
		off += 4
	}
	return out
}

// Emit regenerates an executable image from the symbolic program under the
// given plan. When sched is true the OM-full rescheduler and loop-alignment
// passes run first.
func Emit(pg *Prog, pl *Plan, sched bool) (*objfile.Image, error) {
	p := pg.P

	// Finalize instruction lists and procedure addresses, per region.
	finals := make([][]*SInst, len(pg.Procs))
	tcur := [2]uint64{objfile.TextBase, objfile.SharedTextBase}
	instAddr := make(map[*SInst]uint64)
	for i, pr := range pg.Procs {
		live, err := normalizeLabels(pr)
		if err != nil {
			return nil, err
		}
		if sched {
			live = rescheduleProc(live)
			live = alignLoopTargets(live)
		}
		finals[i] = live
		r := pl.regionOf(pr.Mod)
		tcur[r] = (tcur[r] + 7) &^ 7
		pl.procAddr[pr] = tcur[r]
		for _, si := range live {
			instAddr[si] = tcur[r]
			tcur[r] += 4
		}
	}

	// Encode into per-region text blobs.
	textBases := [2]uint64{objfile.TextBase, objfile.SharedTextBase}
	texts := [2][]byte{
		make([]byte, tcur[0]-objfile.TextBase),
		make([]byte, tcur[1]-objfile.SharedTextBase),
	}
	unop := axp.MustEncode(axp.Unop())
	for r := 0; r < 2; r++ {
		for i := uint64(0); i+4 <= uint64(len(texts[r])); i += 4 {
			objfile.PutUint32(texts[r], i, unop)
		}
	}
	putWord := func(addr uint64, w uint32) {
		r := 0
		if addr >= objfile.SharedTextBase {
			r = 1
		}
		objfile.PutUint32(texts[r], addr-textBases[r], w)
	}
	for pi, pr := range pg.Procs {
		gp := int64(pl.GPOf(pr))
		gatIdx := pl.GPGroup(pr)
		live := finals[pi]
		labelAddr := make(map[int]uint64)
		for _, si := range live {
			for _, l := range si.Labels {
				labelAddr[l] = instAddr[si]
			}
		}
		for _, si := range live {
			in := si.In
			addr := instAddr[si]
			switch {
			case si.GPRel != nil:
				d, err := gprelDisp(pl, si, gp)
				if err != nil {
					return nil, fmt.Errorf("om: %s at %#x: %w", pr.Name, addr, err)
				}
				in.Disp = d
			case si.Lit != nil && !si.Lit.Converted && !si.Lit.Nullified:
				slotAddr, ok := pl.SlotAddr(gatIdx, si.Lit.Key)
				if !ok {
					return nil, fmt.Errorf("om: %s: GAT slot for %v vanished", pr.Name, si.Lit.Key)
				}
				d := int64(slotAddr) - gp
				if !fits16(d) {
					return nil, fmt.Errorf("om: %s: GAT slot beyond GP reach", pr.Name)
				}
				in.Disp = int32(d)
			case si.GPD != nil && !in.IsNop():
				if si.GPD.High {
					anchor, err := gpdAnchor(pg, pl, pr, si, instAddr)
					if err != nil {
						return nil, err
					}
					hi, lo, err := link.SplitGPDisp(gp - int64(anchor))
					if err != nil {
						return nil, fmt.Errorf("om: %s: %w", pr.Name, err)
					}
					in.Disp = int32(hi)
					// Stash the low half for the partner via the map trick:
					// partner is processed on its own; recompute there.
					_ = lo
				} else {
					// Low half: recompute from the paired high.
					hiInst := si.GPD.Partner
					anchor, err := gpdAnchor(pg, pl, pr, hiInst, instAddr)
					if err != nil {
						return nil, err
					}
					_, lo, err := link.SplitGPDisp(gp - int64(anchor))
					if err != nil {
						return nil, fmt.Errorf("om: %s: %w", pr.Name, err)
					}
					in.Disp = int32(lo)
				}
			}
			if si.Call != nil && !si.Deleted {
				target := pl.procAddr[si.Call.Target] + si.Call.EntryOffset
				d, ok := axp.BranchDispTo(addr, target)
				if !ok {
					return nil, fmt.Errorf("om: %s: call at %#x cannot reach %s+%d",
						pr.Name, addr, si.Call.Target.Name, si.Call.EntryOffset)
				}
				in.Disp = d
			} else if si.Target >= 0 {
				ta, ok := labelAddr[si.Target]
				if !ok {
					return nil, fmt.Errorf("om: %s: missing label %d", pr.Name, si.Target)
				}
				d, ok := axp.BranchDispTo(addr, ta)
				if !ok {
					return nil, fmt.Errorf("om: %s: branch out of range", pr.Name)
				}
				in.Disp = d
			}
			w, err := axp.Encode(in)
			if err != nil {
				return nil, fmt.Errorf("om: %s at %#x: encode %v: %w", pr.Name, addr, in, err)
			}
			putWord(addr, w)
		}
	}

	// Data segments under the plan's placement, per region.
	dataBases := [2]uint64{objfile.DataBase, objfile.SharedDataBase}
	blobs := [2][]byte{
		make([]byte, pl.dataEnd[0]-objfile.DataBase),
		make([]byte, pl.dataEnd[1]-objfile.SharedDataBase),
	}
	putQuad := func(addr uint64, v uint64) {
		r := 0
		if addr >= objfile.SharedDataBase {
			r = 1
		}
		objfile.PutUint64(blobs[r], addr-dataBases[r], v)
	}
	addrOfKey := func(k link.TargetKey) (uint64, error) { return pl.AddrOfKey(k) }
	for g, slots := range pl.gat.Slots {
		for i, k := range slots {
			a, err := addrOfKey(k)
			if err != nil {
				return nil, err
			}
			putQuad(pl.gatStart[g]+uint64(i*8), a)
		}
	}
	for m, obj := range p.Objects {
		region := pl.regionOf(m)
		for _, sec := range []objfile.SectionKind{objfile.SecSData, objfile.SecData} {
			copy(blobs[region][pl.secBase[m][sec]-dataBases[region]:], obj.Sections[sec].Data)
		}
		for _, r := range obj.Relocs {
			if r.Kind != objfile.RRefQuad || r.Section == objfile.SecLita {
				continue
			}
			a, err := addrOfKey(link.Key(p.Resolve(m, r.Symbol), r.Addend))
			if err != nil {
				return nil, err
			}
			putQuad(pl.secBase[m][r.Section]+r.Offset, a)
		}
	}

	// Image assembly.
	var entryAddr uint64
	found := false
	for _, pr := range pg.Procs {
		if pr.Name == p.EntryName && pr.Exported {
			entryAddr = pl.procAddr[pr]
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("om: entry symbol %s not found", p.EntryName)
	}
	im := &objfile.Image{
		Entry: entryAddr,
		Segments: []objfile.Segment{
			{Name: ".text", Addr: objfile.TextBase, Data: texts[0]},
			{Name: ".data", Addr: objfile.DataBase, Data: blobs[0]},
		},
	}
	if len(texts[1]) > 0 || len(blobs[1]) > 0 {
		im.Segments = append(im.Segments,
			objfile.Segment{Name: ".text.so", Addr: objfile.SharedTextBase, Data: texts[1]},
			objfile.Segment{Name: ".data.so", Addr: objfile.SharedDataBase, Data: blobs[1]},
		)
	}
	for pi, pr := range pg.Procs {
		im.Symbols = append(im.Symbols, objfile.ImageSymbol{
			Name: pr.Name, Addr: pl.procAddr[pr],
			Size: uint64(len(finals[pi])) * 4, Kind: objfile.SymProc,
			GP: pl.GPOf(pr),
		})
	}
	for m, obj := range p.Objects {
		for s := range obj.Symbols {
			sym := &obj.Symbols[s]
			if sym.Kind != objfile.SymData {
				continue
			}
			im.Symbols = append(im.Symbols, objfile.ImageSymbol{
				Name: sym.Name, Addr: pl.secBase[m][sym.Section] + sym.Value,
				Size: sym.Size, Kind: objfile.SymData,
			})
		}
	}
	for _, c := range p.Commons {
		im.Symbols = append(im.Symbols, objfile.ImageSymbol{
			Name: c.Name, Addr: pl.commonAddr[c.Name], Size: c.Size, Kind: objfile.SymData,
		})
	}
	for g := range pl.gat.Slots {
		im.GATs = append(im.GATs, objfile.GATRange{
			Start: pl.gatStart[g],
			End:   pl.gatStart[g] + uint64(len(pl.gat.Slots[g]))*8,
			GP:    pl.gp[g],
		})
	}
	im.SortSymbols()
	if err := im.Validate(); err != nil {
		return nil, fmt.Errorf("om: %w", err)
	}
	return im, nil
}

// gprelDisp computes the final displacement of a GP-relative rewrite.
func gprelDisp(pl *Plan, si *SInst, gp int64) (int32, error) {
	g := si.GPRel
	addr, err := pl.AddrOfKey(g.Key)
	if err != nil {
		return 0, err
	}
	delta := int64(addr) - gp
	switch g.Kind {
	case GPRelLDA, GPRelUseDirect:
		d := delta + g.Extra
		if !fits16(d) {
			return 0, fmt.Errorf("GP-relative displacement %d no longer fits", d)
		}
		return int32(d), nil
	case GPRelLDAH:
		hi, _, err := link.SplitGPDisp(delta)
		if err != nil {
			return 0, err
		}
		return int32(hi), nil
	case GPRelUseLow:
		haddr, err := pl.AddrOfKey(g.HighPart.GPRel.Key)
		if err != nil {
			return 0, err
		}
		_, lo, err := link.SplitGPDisp(int64(haddr) - gp)
		if err != nil {
			return 0, err
		}
		d := int64(lo) + g.Extra
		if !fits16(d) {
			return 0, fmt.Errorf("low-part displacement %d no longer fits", d)
		}
		return int32(d), nil
	}
	return 0, fmt.Errorf("unknown GP-relative kind %d", g.Kind)
}

// gpdAnchor computes the address held in the base register of a GP pair.
func gpdAnchor(pg *Prog, pl *Plan, pr *Proc, hi *SInst, instAddr map[*SInst]uint64) (uint64, error) {
	if hi.GPD.Entry {
		return pl.procAddr[pr], nil
	}
	call := hi.GPD.AfterCall
	a, ok := instAddr[call]
	if !ok {
		return 0, fmt.Errorf("om: %s: GP reset anchored to a removed call", pr.Name)
	}
	return a + 4, nil
}
