package om

import (
	"fmt"
	"sync"

	"repro/internal/axp"
	"repro/internal/link"
	"repro/internal/objfile"
)

// Emission is fully read-only on the Prog: label moves, scheduling orders,
// and final addresses live in pooled scratch (emitScratch) rather than on
// the instructions. That property is what lets the warm path emit straight
// from a memoized snapshot that concurrent Runs share — no defensive clone,
// no races.

// normalizeLabels computes the live instruction list and, in labs, the
// label set addressing each live instruction: labels on deleted
// instructions move onto the next live one. labs[i] belongs to live[i];
// the procedure itself is never modified. Results are appended to the
// passed-in buffers (emission scratch), reusing their capacity.
func normalizeLabels(pr *Proc, live []*SInst, labs [][]int) ([]*SInst, [][]int, error) {
	var pending []int
	for _, si := range pr.Insts {
		if si.Deleted {
			pending = append(pending, si.Labels...)
			continue
		}
		l := si.Labels
		if len(pending) > 0 {
			l = append(pending, si.Labels...)
			pending = nil
		}
		live = append(live, si)
		labs = append(labs, l)
	}
	if len(pending) > 0 {
		return nil, nil, fmt.Errorf("om: %s: labels %v dangle past the last instruction", pr.Name, pending)
	}
	return live, labs, nil
}

// rescheduleProc list-schedules each basic block of the live instruction
// list, using the same latency model as the compile-time scheduler. A
// GP-setup pair at procedure entry is pinned there: callers may be
// branching to entry+8 to skip it.
func rescheduleProc(live []*SInst, labs [][]int) ([]*SInst, [][]int) {
	pinned := 0
	if len(live) >= 2 &&
		live[0].GPD != nil && live[0].GPD.High && live[0].GPD.Entry &&
		live[1].GPD != nil && live[1] == live[0].GPD.Partner {
		pinned = 2
	}
	if pinned > 0 {
		rest, restLabs := rescheduleBody(live[pinned:], labs[pinned:])
		return append(live[:pinned:pinned], rest...), append(labs[:pinned:pinned], restLabs...)
	}
	return rescheduleBody(live, labs)
}

// rescheduleBody schedules without any pinned prefix.
func rescheduleBody(live []*SInst, labs [][]int) ([]*SInst, [][]int) {
	isEnd := func(in axp.Inst) bool {
		return in.Op.IsBranch() || in.Op.IsJump() || in.Op == axp.CALLPAL
	}
	out := make([]*SInst, 0, len(live))
	outLabs := make([][]int, 0, len(live))
	start := 0
	flush := func(end int) {
		if end > start {
			seg := live[start:end]
			raw := make([]axp.Inst, len(seg))
			for i, si := range seg {
				raw[i] = si.In
			}
			order := axp.ScheduleOrder(raw)
			scheduled := make([]*SInst, len(seg))
			for pos, idx := range order {
				scheduled[pos] = seg[idx]
			}
			out = append(out, scheduled...)
			// Only seg[0] can carry labels — a labeled instruction forces a
			// flush before itself — and they address the segment's first
			// slot in the new order.
			outLabs = append(outLabs, labs[start])
			for i := 1; i < len(seg); i++ {
				outLabs = append(outLabs, nil)
			}
		}
		start = end
	}
	for i, si := range live {
		if len(labs[i]) > 0 {
			flush(i)
		}
		if isEnd(si.In) {
			flush(i)
			out = append(out, si)
			outLabs = append(outLabs, labs[i])
			start = i + 1
		}
	}
	flush(len(live))
	return out, outLabs
}

// alignLoopTargets inserts unops so that instructions targeted by backward
// branches start on a quadword boundary (procedure bases are quadword
// aligned). This is the OM-full alignment pass that helps the dual-issue
// fetcher. Inserted padding carries ord -1: it is emission-local and has no
// slot in the address scratch.
func alignLoopTargets(live []*SInst, labs [][]int) ([]*SInst, [][]int) {
	// Identify labels targeted by a later (backward) branch.
	labelIdx := make(map[int]int)
	for i := range live {
		for _, l := range labs[i] {
			labelIdx[l] = i
		}
	}
	backward := make(map[int]bool)
	for i, si := range live {
		if si.Target >= 0 {
			if ti, ok := labelIdx[si.Target]; ok && ti <= i {
				backward[si.Target] = true
			}
		}
	}
	if len(backward) == 0 {
		return live, labs
	}
	out := make([]*SInst, 0, len(live)+8)
	outLabs := make([][]int, 0, len(live)+8)
	off := 0
	for i, si := range live {
		isTarget := false
		for _, l := range labs[i] {
			if backward[l] {
				isTarget = true
			}
		}
		if isTarget && off%8 != 0 {
			out = append(out, &SInst{In: axp.Unop(), Target: -1, ord: -1})
			outLabs = append(outLabs, nil)
			off += 4
		}
		out = append(out, si)
		outLabs = append(outLabs, labs[i])
		off += 4
	}
	return out, outLabs
}

// emitScratch holds Emit's reusable working storage, pooled so a resident
// daemon's warm relinks do not reallocate it per job.
type emitScratch struct {
	finals [][]*SInst
	labs   [][][]int
	// addrs maps an instruction's ordinal (SInst.ord) to its final text
	// address for this emission. 0 means "not part of the current emission"
	// (all text bases are nonzero), which is how a GP reset anchored to a
	// removed call is detected.
	addrs []uint64
	// procAddr holds this emission's finalized procedure addresses — the
	// refinement of the plan's estimates after label normalization,
	// scheduling, and alignment padding. Keeping it here (not on the plan)
	// is what lets one plan serve concurrent emissions.
	procAddr map[*Proc]uint64
	// gaps are the alignment-padding word addresses between procedures —
	// the only text words the encode loop does not write, filled with
	// unops instead of prefilling the whole region.
	gaps      []uint64
	labelAddr map[int]uint64
}

var emitScratchPool = sync.Pool{
	New: func() any {
		return &emitScratch{
			procAddr:  make(map[*Proc]uint64, 64),
			labelAddr: make(map[int]uint64, 64),
		}
	},
}

// release drops instruction and label references (so the pool never pins a
// program) while keeping every backing array's capacity, and returns the
// scratch to the pool.
func (sc *emitScratch) release() {
	for i := range sc.finals {
		f := sc.finals[i][:cap(sc.finals[i])]
		clear(f)
		sc.finals[i] = f[:0]
	}
	for i := range sc.labs {
		l := sc.labs[i][:cap(sc.labs[i])]
		clear(l)
		sc.labs[i] = l[:0]
	}
	clear(sc.procAddr)
	clear(sc.labelAddr)
	sc.gaps = sc.gaps[:0]
	emitScratchPool.Put(sc)
}

// Emit regenerates an executable image from the symbolic program under the
// given plan. When sched is true the OM-full rescheduler and loop-alignment
// passes run first. Emission never writes to the program: a renumbered Prog
// (Run renumbers before every emission) can be emitted concurrently by any
// number of goroutines.
func Emit(pg *Prog, pl *Plan, sched bool) (*objfile.Image, error) {
	p := pg.P
	if pg.nOrd == 0 {
		// Direct API callers may emit a program Run never renumbered.
		pg.renumber()
	}
	sc := emitScratchPool.Get().(*emitScratch)
	defer sc.release()
	if cap(sc.addrs) < pg.nOrd {
		sc.addrs = make([]uint64, pg.nOrd)
	}
	addrs := sc.addrs[:pg.nOrd]
	clear(addrs)

	// Finalize instruction lists and procedure addresses, per region.
	if cap(sc.finals) < len(pg.Procs) {
		sc.finals = make([][]*SInst, len(pg.Procs))
	}
	if cap(sc.labs) < len(pg.Procs) {
		sc.labs = make([][][]int, len(pg.Procs))
	}
	finals := sc.finals[:len(pg.Procs)]
	labsAll := sc.labs[:len(pg.Procs)]
	procAddr := sc.procAddr
	tcur := [2]uint64{objfile.TextBase, objfile.SharedTextBase}
	for i, pr := range pg.Procs {
		live, labs, err := normalizeLabels(pr, finals[i][:0], labsAll[i][:0])
		if err != nil {
			return nil, err
		}
		if sched {
			live, labs = rescheduleProc(live, labs)
			live, labs = alignLoopTargets(live, labs)
		}
		finals[i] = live
		labsAll[i] = labs
		r := pl.regionOf(pr.Mod)
		for tcur[r]%8 != 0 {
			sc.gaps = append(sc.gaps, tcur[r])
			tcur[r] += 4
		}
		procAddr[pr] = tcur[r]
		for _, si := range live {
			if si.ord >= 0 {
				addrs[si.ord] = tcur[r]
			}
			tcur[r] += 4
		}
	}

	// Encode into per-region text blobs.
	textBases := [2]uint64{objfile.TextBase, objfile.SharedTextBase}
	texts := [2][]byte{
		make([]byte, tcur[0]-objfile.TextBase),
		make([]byte, tcur[1]-objfile.SharedTextBase),
	}
	putWord := func(addr uint64, w uint32) {
		r := 0
		if addr >= objfile.SharedTextBase {
			r = 1
		}
		objfile.PutUint32(texts[r], addr-textBases[r], w)
	}
	// Every text word belongs to exactly one live instruction except the
	// alignment padding between procedures; the encode loop below writes
	// the former, so only the recorded gaps need unops.
	unop := axp.MustEncode(axp.Unop())
	for _, a := range sc.gaps {
		putWord(a, unop)
	}
	labelAddr := sc.labelAddr
	for pi, pr := range pg.Procs {
		gp := int64(pl.GPOf(pr))
		gatIdx := pl.GPGroup(pr)
		live := finals[pi]
		labs := labsAll[pi]
		base := procAddr[pr]
		clear(labelAddr)
		for i := range live {
			for _, l := range labs[i] {
				labelAddr[l] = base + 4*uint64(i)
			}
		}
		for idx, si := range live {
			in := si.In
			addr := base + 4*uint64(idx)
			switch {
			case si.GPRel != nil:
				d, err := gprelDisp(pl, si, gp, procAddr)
				if err != nil {
					return nil, fmt.Errorf("om: %s at %#x: %w", pr.Name, addr, err)
				}
				in.Disp = d
			case si.Lit != nil && !si.Lit.Converted && !si.Lit.Nullified:
				slotAddr, ok := pl.SlotAddr(gatIdx, si.Lit.Key)
				if !ok {
					return nil, fmt.Errorf("om: %s: GAT slot for %v vanished", pr.Name, si.Lit.Key)
				}
				d := int64(slotAddr) - gp
				if !fits16(d) {
					return nil, fmt.Errorf("om: %s: GAT slot beyond GP reach", pr.Name)
				}
				in.Disp = int32(d)
			case si.GPD != nil && !in.IsNop():
				if si.GPD.High {
					anchor, err := gpdAnchor(pr, si, addrs, procAddr)
					if err != nil {
						return nil, err
					}
					hi, lo, err := link.SplitGPDisp(gp - int64(anchor))
					if err != nil {
						return nil, fmt.Errorf("om: %s: %w", pr.Name, err)
					}
					in.Disp = int32(hi)
					// Stash the low half for the partner via the map trick:
					// partner is processed on its own; recompute there.
					_ = lo
				} else {
					// Low half: recompute from the paired high.
					hiInst := si.GPD.Partner
					anchor, err := gpdAnchor(pr, hiInst, addrs, procAddr)
					if err != nil {
						return nil, err
					}
					_, lo, err := link.SplitGPDisp(gp - int64(anchor))
					if err != nil {
						return nil, fmt.Errorf("om: %s: %w", pr.Name, err)
					}
					in.Disp = int32(lo)
				}
			}
			if si.Call != nil && !si.Deleted {
				target := procAddr[si.Call.Target] + si.Call.EntryOffset
				d, ok := axp.BranchDispTo(addr, target)
				if !ok {
					return nil, fmt.Errorf("om: %s: call at %#x cannot reach %s+%d",
						pr.Name, addr, si.Call.Target.Name, si.Call.EntryOffset)
				}
				in.Disp = d
			} else if si.Target >= 0 {
				ta, ok := labelAddr[si.Target]
				if !ok {
					return nil, fmt.Errorf("om: %s: missing label %d", pr.Name, si.Target)
				}
				d, ok := axp.BranchDispTo(addr, ta)
				if !ok {
					return nil, fmt.Errorf("om: %s: branch out of range", pr.Name)
				}
				in.Disp = d
			}
			w, err := axp.Encode(in)
			if err != nil {
				return nil, fmt.Errorf("om: %s at %#x: encode %v: %w", pr.Name, addr, in, err)
			}
			putWord(addr, w)
		}
	}

	// Data segments under the plan's placement, per region. Only the
	// initialized extent — GATs plus the placed sdata/data sections — is
	// materialized; everything past it (bss, sbss, commons placed at the
	// tail) becomes the segment's ZeroSize, which the loader zero-fills.
	// On a warm relink this is most of the data region, so the saving is
	// what keeps the resident pipeline's allocation rate flat.
	dataBases := [2]uint64{objfile.DataBase, objfile.SharedDataBase}
	dataInit := dataBases
	for g, slots := range pl.gat.Slots {
		r := 0
		if pl.gat.GATShared[g] {
			r = 1
		}
		if end := pl.gatStart[g] + uint64(len(slots))*8; end > dataInit[r] {
			dataInit[r] = end
		}
	}
	for m, obj := range p.Objects {
		r := pl.regionOf(m)
		for _, sec := range []objfile.SectionKind{objfile.SecSData, objfile.SecData} {
			if end := pl.secBase[m][sec] + obj.Sections[sec].Size; end > dataInit[r] {
				dataInit[r] = end
			}
		}
	}
	for r := 0; r < 2; r++ {
		dataInit[r] = (dataInit[r] + 7) &^ 7
	}
	blobs := [2][]byte{
		make([]byte, dataInit[0]-objfile.DataBase),
		make([]byte, dataInit[1]-objfile.SharedDataBase),
	}
	putQuad := func(addr uint64, v uint64) {
		r := 0
		if addr >= objfile.SharedDataBase {
			r = 1
		}
		objfile.PutUint64(blobs[r], addr-dataBases[r], v)
	}
	addrOfKey := func(k link.TargetKey) (uint64, error) { return pl.addrOfKeyAt(k, procAddr) }
	for g, slots := range pl.gat.Slots {
		for i, k := range slots {
			a, err := addrOfKey(k)
			if err != nil {
				return nil, err
			}
			putQuad(pl.gatStart[g]+uint64(i*8), a)
		}
	}
	for m, obj := range p.Objects {
		region := pl.regionOf(m)
		for _, sec := range []objfile.SectionKind{objfile.SecSData, objfile.SecData} {
			copy(blobs[region][pl.secBase[m][sec]-dataBases[region]:], obj.Sections[sec].Data)
		}
		for _, r := range obj.Relocs {
			if r.Kind != objfile.RRefQuad || r.Section == objfile.SecLita {
				continue
			}
			a, err := addrOfKey(link.Key(p.Resolve(m, r.Symbol), r.Addend))
			if err != nil {
				return nil, err
			}
			putQuad(pl.secBase[m][r.Section]+r.Offset, a)
		}
	}

	// Image assembly.
	var entryAddr uint64
	found := false
	for _, pr := range pg.Procs {
		if pr.Name == p.EntryName && pr.Exported {
			entryAddr = procAddr[pr]
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("om: entry symbol %s not found", p.EntryName)
	}
	im := &objfile.Image{
		Entry: entryAddr,
		Segments: []objfile.Segment{
			{Name: ".text", Addr: objfile.TextBase, Data: texts[0]},
			{Name: ".data", Addr: objfile.DataBase, Data: blobs[0],
				ZeroSize: pl.dataEnd[0] - dataInit[0]},
		},
	}
	if len(texts[1]) > 0 || pl.dataEnd[1] > objfile.SharedDataBase {
		im.Segments = append(im.Segments,
			objfile.Segment{Name: ".text.so", Addr: objfile.SharedTextBase, Data: texts[1]},
			objfile.Segment{Name: ".data.so", Addr: objfile.SharedDataBase, Data: blobs[1],
				ZeroSize: pl.dataEnd[1] - dataInit[1]},
		)
	}
	for pi, pr := range pg.Procs {
		im.Symbols = append(im.Symbols, objfile.ImageSymbol{
			Name: pr.Name, Addr: procAddr[pr],
			Size: uint64(len(finals[pi])) * 4, Kind: objfile.SymProc,
			GP: pl.GPOf(pr),
		})
	}
	for m, obj := range p.Objects {
		for s := range obj.Symbols {
			sym := &obj.Symbols[s]
			if sym.Kind != objfile.SymData {
				continue
			}
			im.Symbols = append(im.Symbols, objfile.ImageSymbol{
				Name: sym.Name, Addr: pl.secBase[m][sym.Section] + sym.Value,
				Size: sym.Size, Kind: objfile.SymData,
			})
		}
	}
	for _, c := range p.Commons {
		im.Symbols = append(im.Symbols, objfile.ImageSymbol{
			Name: c.Name, Addr: pl.commonAddr[c.Name], Size: c.Size, Kind: objfile.SymData,
		})
	}
	for g := range pl.gat.Slots {
		im.GATs = append(im.GATs, objfile.GATRange{
			Start: pl.gatStart[g],
			End:   pl.gatStart[g] + uint64(len(pl.gat.Slots[g]))*8,
			GP:    pl.gp[g],
		})
	}
	im.SortSymbols()
	if err := im.Validate(); err != nil {
		return nil, fmt.Errorf("om: %w", err)
	}
	return im, nil
}

// gprelDisp computes the final displacement of a GP-relative rewrite.
func gprelDisp(pl *Plan, si *SInst, gp int64, procAddr map[*Proc]uint64) (int32, error) {
	g := si.GPRel
	addr, err := pl.addrOfKeyAt(g.Key, procAddr)
	if err != nil {
		return 0, err
	}
	delta := int64(addr) - gp
	switch g.Kind {
	case GPRelLDA, GPRelUseDirect:
		d := delta + g.Extra
		if !fits16(d) {
			return 0, fmt.Errorf("GP-relative displacement %d no longer fits", d)
		}
		return int32(d), nil
	case GPRelLDAH:
		hi, _, err := link.SplitGPDisp(delta)
		if err != nil {
			return 0, err
		}
		return int32(hi), nil
	case GPRelUseLow:
		haddr, err := pl.addrOfKeyAt(g.HighPart.GPRel.Key, procAddr)
		if err != nil {
			return 0, err
		}
		_, lo, err := link.SplitGPDisp(int64(haddr) - gp)
		if err != nil {
			return 0, err
		}
		d := int64(lo) + g.Extra
		if !fits16(d) {
			return 0, fmt.Errorf("low-part displacement %d no longer fits", d)
		}
		return int32(d), nil
	}
	return 0, fmt.Errorf("unknown GP-relative kind %d", g.Kind)
}

// gpdAnchor computes the address held in the base register of a GP pair,
// reading the emission's ordinal-indexed address scratch.
func gpdAnchor(pr *Proc, hi *SInst, addrs []uint64, procAddr map[*Proc]uint64) (uint64, error) {
	if hi.GPD.Entry {
		return procAddr[pr], nil
	}
	call := hi.GPD.AfterCall
	if call == nil || call.ord < 0 || int(call.ord) >= len(addrs) || addrs[call.ord] == 0 {
		return 0, fmt.Errorf("om: %s: GP reset anchored to a removed call", pr.Name)
	}
	return addrs[call.ord] + 4, nil
}
