package om

import (
	"fmt"

	"repro/internal/axp"
	"repro/internal/layout"
	"repro/internal/objfile"
	"repro/internal/profile"
)

// This file is the profile-guided layout pass (WithProfile): reorder
// pg.Procs under a Pettis–Hansen placement computed from the profile's
// call-edge weights, then re-verify every direct call's branch range
// against the new order — a hot/cold split can push a callee beyond the
// bsr's 21-bit displacement window, in which case the jsr→bsr conversion
// is reverted (the call goes back through the GAT, whose 64-bit slot
// reaches anywhere). Reordering itself is safe by construction: emission
// recomputes every displacement and address constant from the symbolic
// form, and no GP-relative displacement depends on a text address.

// layoutResult records what the layout pass did, for the decision journal.
type layoutResult struct {
	// decisions holds one entry per procedure, in final placement order.
	decisions []layoutDecision
	// reverted marks call sites whose jsr→bsr conversion was undone.
	reverted map[*SInst]bool
}

// layoutDecision explains one procedure's placement.
type layoutDecision struct {
	proc   *Proc
	reason string
	detail string
}

// applyLayout reorders the program's procedures under the profile and
// returns a fresh plan for the new order. full selects the revert style
// (delete-undo vs no-op-undo) matching the level that converted the calls;
// sched makes the range check pessimistic about post-layout scheduling
// growth (alignment unops).
func applyLayout(pg *Prog, pl *Plan, prof *profile.Profile, full, sched bool) (*Plan, *layoutResult, error) {
	// Per-procedure hotness by name. Distinct static procedures may share a
	// name across modules; counts attribute to the first occurrence, and
	// later twins get a qualified key so they order stably as cold rather
	// than aliasing the first one's counts.
	weight := make(map[string]uint64, len(prof.Procs))
	for _, pc := range prof.Procs {
		w := pc.Weight
		if w == 0 {
			w = pc.Entries
		}
		weight[pc.Name] = w
	}
	procs := make([]layout.Proc, len(pg.Procs))
	firstIdx := make(map[string]int, len(pg.Procs))
	for i, pr := range pg.Procs {
		key := pr.Name
		if _, dup := firstIdx[pr.Name]; dup {
			key = fmt.Sprintf("%s@%d", pr.Name, pr.Mod)
		} else {
			firstIdx[pr.Name] = i
			procs[i].Weight = weight[pr.Name]
		}
		procs[i].Key = key
	}
	var edges []layout.Edge
	for _, e := range prof.Edges {
		ci, ok := firstIdx[e.Caller]
		if !ok {
			continue
		}
		li, ok := firstIdx[e.Callee]
		if !ok {
			continue
		}
		if pl.regionOf(pg.Procs[ci].Mod) != pl.regionOf(pg.Procs[li].Mod) {
			// Static and shared text are separate address streams; chaining
			// across them cannot create adjacency.
			continue
		}
		edges = append(edges, layout.Edge{From: ci, To: li, Weight: e.Weight})
	}
	ord := layout.Order(procs, edges)

	reordered := make([]*Proc, len(pg.Procs))
	res := &layoutResult{reverted: make(map[*SInst]bool)}
	decisionOf := make(map[*Proc]int, len(pg.Procs))
	for pos, idx := range ord.Order {
		pr := pg.Procs[idx]
		reordered[pos] = pr
		var dec layoutDecision
		dec.proc = pr
		switch ord.Kind[idx] {
		case layout.Chained:
			dec.reason = ReasonLayoutChain
			dec.detail = fmt.Sprintf("chain %d, weight %d", ord.Chain[idx], procs[idx].Weight)
		case layout.Hot:
			dec.reason = ReasonLayoutHot
			dec.detail = fmt.Sprintf("weight %d", procs[idx].Weight)
		default:
			dec.reason = ReasonLayoutCold
		}
		decisionOf[pr] = pos
		res.decisions = append(res.decisions, dec)
	}
	pg.Procs = reordered

	// The new text order invalidates the plan's procedure-address estimates
	// (data placement is unaffected); recompute, then iterate the range
	// check to a fixpoint — reverting a conversion can resurrect a GAT slot
	// and an instruction, shifting later addresses.
	for round := 0; ; round++ {
		var err error
		pl, err = computePlan(pg, pl.opts)
		if err != nil {
			return nil, nil, err
		}
		far := collectFarCalls(pg, pl, sched)
		if len(far) == 0 {
			break
		}
		if round > len(pg.Procs) {
			return nil, nil, fmt.Errorf("om: layout: branch-range fixpoint did not converge")
		}
		for _, fc := range far {
			if fc.si.Call == nil || !fc.si.Call.FromJSR {
				return nil, nil, fmt.Errorf(
					"om: layout: %s: compiler-direct call to %s cannot reach after reordering",
					fc.pr.Name, fc.si.Call.Target.Name)
			}
			callee := fc.si.Call.Target.Name
			if err := revertCall(fc.si, full); err != nil {
				return nil, nil, err
			}
			res.reverted[fc.si] = true
			d := &res.decisions[decisionOf[fc.pr]]
			d.reason = ReasonLayoutFallback
			d.detail = fmt.Sprintf("call to %s beyond bsr range", callee)
		}
	}
	return pl, res, nil
}

// farCall is a direct call that may not fit its 21-bit displacement under
// the new procedure order.
type farCall struct {
	pr *Proc
	si *SInst
}

// collectFarCalls bounds every direct call's displacement pessimistically:
// procedure sizes are over-estimated (every label may gain an alignment
// unop when sched is on, plus quadword rounding), and each call site is
// tested from both ends of its procedure (scheduling may move it within
// its block). A call that fits under these bounds fits under the real
// emission layout, whose addresses are dominated by the estimate.
func collectFarCalls(pg *Prog, pl *Plan, sched bool) []farCall {
	est := make(map[*Proc]uint64, len(pg.Procs))
	size := make(map[*Proc]uint64, len(pg.Procs))
	tcur := [2]uint64{objfile.TextBase, objfile.SharedTextBase}
	for _, pr := range pg.Procs {
		live := pr.Live()
		words := uint64(len(live))
		if sched {
			for _, si := range live {
				words += uint64(len(si.Labels))
			}
		}
		r := pl.regionOf(pr.Mod)
		tcur[r] = (tcur[r] + 7) &^ 7
		est[pr] = tcur[r]
		size[pr] = words
		tcur[r] += words * 4
	}
	var out []farCall
	for _, pr := range pg.Procs {
		first := est[pr]
		last := first
		if size[pr] > 1 {
			last = first + (size[pr]-1)*4
		}
		for _, si := range pr.Insts {
			if si.Deleted || si.Call == nil {
				continue
			}
			tgt := est[si.Call.Target] + si.Call.EntryOffset
			if _, ok := axp.BranchDispTo(first, tgt); !ok {
				out = append(out, farCall{pr, si})
				continue
			}
			if _, ok := axp.BranchDispTo(last, tgt); !ok {
				out = append(out, farCall{pr, si})
			}
		}
	}
	return out
}

// revertCall undoes a jsr→bsr conversion: the call becomes a GAT-indirect
// jsr again, re-linked to its PV load, which is brought back to life if
// the conversion had nullified it. Sound in every GP regime: the jsr loads
// the callee's address from the GAT, and the callee's entry behavior
// (prologue present or deleted) is unchanged from what the bsr targeted.
func revertCall(si *SInst, full bool) error {
	lit := si.PVLit
	if lit == nil || lit.Lit == nil {
		return fmt.Errorf("om: layout: cannot revert call to %s: no PV literal",
			si.Call.Target.Name)
	}
	si.In = si.Call.origJSR
	origPV := si.Call.origPV
	si.Call = nil
	si.Use = &UseInfo{Lit: lit, JSR: true}
	lit.Lit.Uses = append(lit.Lit.Uses, si)
	if lit.Lit.Nullified {
		lit.Lit.Nullified = false
		if full {
			lit.Deleted = false // OM-full deletion preserved the instruction
		} else {
			lit.In = origPV // OM-simple overwrote it with a no-op
		}
	}
	return nil
}
