package om

import (
	"sync"
	"sync/atomic"
)

// forEachProc applies fn to every procedure of the program, fanning the
// calls out across the program's configured parallelism (Prog.par). fn must
// confine its writes to the procedure it is handed; state of other
// procedures may only be read, and only fields no concurrent fn call
// writes. Because every call sees the same pre-pass state and the aggregate
// result is the OR of all per-procedure results, the outcome is independent
// of goroutine scheduling — a parallel pass is observationally identical to
// the serial loop it replaces.
func (pg *Prog) forEachProc(fn func(*Proc) bool) bool {
	n := pg.par
	if n > len(pg.Procs) {
		n = len(pg.Procs)
	}
	if n <= 1 {
		changed := false
		for _, pr := range pg.Procs {
			if fn(pr) {
				changed = true
			}
		}
		return changed
	}
	var next atomic.Int64
	var changed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(len(pg.Procs)) {
					return
				}
				if fn(pg.Procs[i]) {
					changed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	return changed.Load()
}
