// Package om implements the paper's contribution: the OM link-time
// code-modification system, specialized to address-calculation optimization
// on the Alpha AXP.
//
// OM translates the object code of the entire program into a symbolic form:
// procedures with label-based control flow and relocation-derived
// annotations (address loads, their uses, GP-establishing pairs, direct-call
// branches). It analyzes and transforms this form — at the OM-simple level
// by one-for-one instruction replacement, at the OM-full level with
// deletion, insertion, and reordering — and regenerates executable object
// code, recomputing every displacement and address constant from the
// symbolic form.
package om

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/axp"
	"repro/internal/link"
	"repro/internal/objfile"
)

// SInst is one instruction in OM's symbolic form.
type SInst struct {
	In axp.Inst

	// Labels are intra-procedure labels attached to this instruction.
	Labels []int
	// Target is the label a branch jumps to, or -1.
	Target int

	// Lit marks an address load from the GAT.
	Lit *LitInfo
	// Use links a memory access or jsr to its address load.
	Use *UseInfo
	// GPD marks half of a GP-establishing pair.
	GPD *GPDInfo
	// Call marks a direct call/branch to another procedure.
	Call *CallInfo
	// GPRel marks an instruction rewritten to address data GP-relatively;
	// its displacement is recomputed from the final layout at emission.
	GPRel *GPRelInfo

	// Deleted marks instructions removed by OM-full; they are skipped at
	// emission. OM-simple instead overwrites In with a no-op.
	Deleted bool

	// PVLit records, for a direct jsr call site, the address load that
	// materializes PV (for statistics after the Use link is dissolved).
	PVLit *SInst
	// Indirect marks a call through a procedure variable.
	Indirect bool

	// ord is the instruction's dense program-wide ordinal, assigned by
	// Prog.renumber. Emit indexes its pooled address scratch with it, which
	// keeps emission fully read-only on the program — the property that lets
	// concurrent Runs replay one memoized snapshot without cloning it.
	// Instructions Emit fabricates itself (alignment padding) carry -1.
	ord int32
}

// LitInfo describes an address load: ldq rX, slot(gp).
type LitInfo struct {
	Key  link.TargetKey
	Uses []*SInst
	// Converted: the load became a load-address (lda or ldah) and no longer
	// references the GAT.
	Converted bool
	// Nullified: the load was no-op'd (simple) or deleted (full).
	Nullified bool
}

// UseInfo links an instruction to the address load feeding it.
type UseInfo struct {
	Lit *SInst
	JSR bool
}

// GPDInfo describes half of a GP-establishing ldah/lda pair.
type GPDInfo struct {
	Partner *SInst
	High    bool
	// Entry: the pair's base register holds the procedure entry address
	// (prologue, PV). Otherwise AfterCall holds the call whose return
	// address (RA) is the base.
	Entry     bool
	AfterCall *SInst
}

// CallInfo describes a direct call whose destination is a known procedure.
type CallInfo struct {
	Target *Proc
	// EntryOffset is the byte offset into the target (0 or 8 for the local
	// entry point past the GP-setup pair).
	EntryOffset uint64
	// FromJSR: the call was a GAT-indirect jsr that the call optimization
	// converted to this direct bsr (vs. a bsr the compiler emitted).
	FromJSR bool

	// origJSR and origPV snapshot the jsr and its PV-load instruction at
	// conversion time (FromJSR only), so the profile-guided layout pass can
	// revert the conversion when reordering pushes the callee beyond the
	// bsr's 21-bit displacement. origPV matters at OM-simple, where
	// nullification overwrites the load in place.
	origJSR axp.Inst
	origPV  axp.Inst
}

// GPRelKind distinguishes the GP-relative rewrite applied to an instruction.
type GPRelKind uint8

const (
	// GPRelLDA: the instruction computes key's address: lda r, delta(gp).
	GPRelLDA GPRelKind = iota
	// GPRelLDAH: the instruction computes the high part: ldah r, hi(gp).
	GPRelLDAH
	// GPRelUseDirect: a load/store rewritten to op r, delta+orig(gp).
	GPRelUseDirect
	// GPRelUseLow: a load/store rewritten against a GPRelLDAH base:
	// op r, lo+orig(base).
	GPRelUseLow
)

// GPRelInfo carries the symbolic GP-relative rewrite.
type GPRelInfo struct {
	Kind GPRelKind
	Key  link.TargetKey
	// Extra is the displacement added beyond the key's address (the
	// original use displacement).
	Extra int64
	// HighPart, for GPRelUseLow, is the ldah this use pairs with.
	HighPart *SInst
}

// Proc is one procedure in symbolic form.
type Proc struct {
	Mod      int
	Sym      int32
	Name     string
	Exported bool
	Insts    []*SInst

	nextLabel int

	// Analysis/transform state:
	// DataAddrTaken: the procedure's address appears in initialized data
	// (function-pointer tables); its full entry must stay intact.
	DataAddrTaken bool
	// PrologueDeleted: OM-full removed the GP-setup pair entirely.
	PrologueDeleted bool
	// PairAtEntry: the prologue GP pair occupies the first two slots.
	PairAtEntry bool
}

// NewLabel allocates a fresh intra-procedure label.
func (pr *Proc) NewLabel() int {
	l := pr.nextLabel
	pr.nextLabel++
	return l
}

// Live returns the non-deleted instructions.
func (pr *Proc) Live() []*SInst {
	live := make([]*SInst, 0, len(pr.Insts))
	for _, si := range pr.Insts {
		if !si.Deleted {
			live = append(live, si)
		}
	}
	return live
}

// Prog is the whole program in symbolic form.
type Prog struct {
	P     *link.Program
	Procs []*Proc
	// procByDef finds the Proc for a (module, symbol) definition.
	procByDef map[[2]int32]*Proc
	// nOrd is the ordinal count assigned by the last renumber (the size of
	// Emit's address scratch). 0 means the program was never renumbered.
	nOrd int
	// par bounds the goroutines used by per-procedure passes (see
	// forEachProc); 0 or 1 means serial.
	par int
}

// renumber assigns every instruction a dense program-wide ordinal. Run
// calls it after the last phase that can add instructions and before the
// program is published to the pass memo, so emission — including concurrent
// replays of a shared memoized snapshot — only ever reads the ordinals.
func (pg *Prog) renumber() {
	n := int32(0)
	for _, pr := range pg.Procs {
		for _, si := range pr.Insts {
			si.ord = n
			n++
		}
	}
	pg.nOrd = int(n)
}

// ProcFor resolves a target key to its procedure, if it names one.
func (pg *Prog) ProcFor(k link.TargetKey) *Proc {
	if k.Kind != link.TDef || k.Addend != 0 {
		return nil
	}
	return pg.procByDef[[2]int32{int32(k.Mod), k.Sym}]
}

// pendingCall is a direct call noted during module lifting, resolved once
// every procedure of every module exists.
type pendingCall struct {
	inst   *SInst
	target link.Target
	addend int64
}

// liftedModule is the result of lifting one module's text.
type liftedModule struct {
	procs   []*Proc
	pending []pendingCall
}

// Lift translates every procedure of the merged program into symbolic form.
func Lift(p *link.Program) (*Prog, error) {
	return lift(context.Background(), p, 1)
}

// lift is Lift with cancellation and bounded per-module parallelism.
// Modules are lifted independently and merged in module order, so the
// resulting Prog is identical for every parallelism setting.
func lift(ctx context.Context, p *link.Program, par int) (*Prog, error) {
	mods := make([]*liftedModule, len(p.Objects))
	errs := make([]error, len(p.Objects))
	if par > len(p.Objects) {
		par = len(p.Objects)
	}
	if par <= 1 {
		for m, obj := range p.Objects {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			mods[m], errs[m] = liftModule(p, m, obj)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < par; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					m := int(next.Add(1) - 1)
					if m >= len(p.Objects) || ctx.Err() != nil {
						return
					}
					mods[m], errs[m] = liftModule(p, m, p.Objects[m])
				}
			}()
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	pg := &Prog{P: p, procByDef: make(map[[2]int32]*Proc)}
	var pending []pendingCall
	for _, lm := range mods {
		for _, pr := range lm.procs {
			pg.Procs = append(pg.Procs, pr)
			pg.procByDef[[2]int32{int32(pr.Mod), pr.Sym}] = pr
		}
		pending = append(pending, lm.pending...)
	}

	// Resolve direct-call targets now that all procedures exist.
	for _, pc := range pending {
		if pc.target.Kind != link.TDef {
			return nil, fmt.Errorf("om: lift: call to non-procedure %s", pc.target.Name)
		}
		tp := pg.procByDef[[2]int32{int32(pc.target.Mod), pc.target.Sym}]
		if tp == nil {
			return nil, fmt.Errorf("om: lift: call to unknown procedure %s", pc.target.Name)
		}
		pc.inst.Call = &CallInfo{Target: tp, EntryOffset: uint64(pc.addend)}
	}

	// Data-section address-taken procedures (function-pointer tables in
	// initialized data).
	for m, obj := range p.Objects {
		for _, r := range obj.Relocs {
			if r.Kind != objfile.RRefQuad || r.Section == objfile.SecLita {
				continue
			}
			t := p.Resolve(m, r.Symbol)
			if t.Kind == link.TDef {
				if tp := pg.procByDef[[2]int32{int32(t.Mod), t.Sym}]; tp != nil {
					tp.DataAddrTaken = true
				}
			}
		}
	}
	return pg, nil
}

// liftModule decodes and annotates one module's procedures. It touches no
// program-wide state, so modules lift concurrently.
func liftModule(p *link.Program, m int, obj *objfile.Object) (*liftedModule, error) {
	lm := &liftedModule{}
	text := obj.Sections[objfile.SecText].Data
	insts, err := axp.DecodeAll(text)
	if err != nil {
		return nil, fmt.Errorf("om: lift %s: %w", obj.Name, err)
	}
	// Index relocations by offset.
	litAt := make(map[uint64]*objfile.Reloc)
	useAt := make(map[uint64]*objfile.Reloc)
	gpdAt := make(map[uint64]*objfile.Reloc)
	brAt := make(map[uint64]*objfile.Reloc)
	gprAt := make(map[uint64]*objfile.Reloc)
	for i := range obj.Relocs {
		r := &obj.Relocs[i]
		if r.Section != objfile.SecText {
			continue
		}
		switch r.Kind {
		case objfile.RLiteral:
			litAt[r.Offset] = r
		case objfile.RLituseBase, objfile.RLituseJSR:
			useAt[r.Offset] = r
		case objfile.RGPDisp:
			gpdAt[r.Offset] = r
		case objfile.RBrAddr:
			brAt[r.Offset] = r
		case objfile.RGPRel16:
			gprAt[r.Offset] = r
		}
	}

	// Procedures of this module in address order.
	var procSyms []int32
	for s := range obj.Symbols {
		if obj.Symbols[s].Kind == objfile.SymProc {
			procSyms = append(procSyms, int32(s))
		}
	}
	for i := 0; i < len(procSyms); i++ {
		for j := i + 1; j < len(procSyms); j++ {
			if obj.Symbols[procSyms[j]].Value < obj.Symbols[procSyms[i]].Value {
				procSyms[i], procSyms[j] = procSyms[j], procSyms[i]
			}
		}
	}

	covered := uint64(0)
	for _, s := range procSyms {
		sym := &obj.Symbols[s]
		if sym.Value != covered {
			return nil, fmt.Errorf("om: lift %s: gap before procedure %s (%#x..%#x)",
				obj.Name, sym.Name, covered, sym.Value)
		}
		covered = sym.End

		pr := &Proc{Mod: m, Sym: s, Name: sym.Name, Exported: sym.Exported}
		base := sym.Value
		n := int((sym.End - sym.Value) / 4)
		// One contiguous slab per procedure: emission walks the
		// instructions of resident memoized forms on every warm relink,
		// and the collector rescans them on every cycle, so locality and
		// object count matter more than in a one-shot link.
		pr.Insts = make([]*SInst, n)
		backing := make([]SInst, n)
		for i := 0; i < n; i++ {
			backing[i] = SInst{In: insts[int(base/4)+i], Target: -1}
			pr.Insts[i] = &backing[i]
		}

		// Pass 1: labels for intra-procedure branch targets.
		labelAt := make(map[int]int)
		for i, si := range pr.Insts {
			off := base + uint64(i*4)
			if !si.In.Op.IsBranch() {
				continue
			}
			if _, isCall := brAt[off]; isCall {
				continue
			}
			targetOff := int64(off) + 4 + int64(si.In.Disp)*4
			ti := (targetOff - int64(base)) / 4
			if ti < 0 || ti >= int64(n) {
				return nil, fmt.Errorf("om: lift %s: %s branch at +%#x leaves the procedure",
					obj.Name, sym.Name, off-base)
			}
			l, ok := labelAt[int(ti)]
			if !ok {
				l = pr.NewLabel()
				labelAt[int(ti)] = l
				pr.Insts[ti].Labels = append(pr.Insts[ti].Labels, l)
			}
			si.Target = l
		}

		// Pass 2: relocation annotations.
		sidxAt := func(off uint64) (*SInst, bool) {
			i := (int64(off) - int64(base)) / 4
			if i < 0 || i >= int64(n) {
				return nil, false
			}
			return pr.Insts[i], true
		}
		for i, si := range pr.Insts {
			off := base + uint64(i*4)
			if r, ok := litAt[off]; ok {
				si.Lit = &LitInfo{Key: link.Key(p.Resolve(m, r.Symbol), r.Addend)}
			}
			if r, ok := gprAt[off]; ok {
				// Optimistically compiled GP-relative reference: already
				// in OM's target form; re-anchor it to the final layout.
				si.GPRel = &GPRelInfo{
					Kind:  GPRelUseDirect,
					Key:   link.Key(p.Resolve(m, r.Symbol), 0),
					Extra: r.Addend,
				}
			}
			if r, ok := useAt[off]; ok {
				lit, ok := sidxAt(r.Extra)
				if !ok || lit.Lit == nil {
					return nil, fmt.Errorf("om: lift %s: %s: LITUSE at +%#x has no literal at +%#x",
						obj.Name, sym.Name, off-base, r.Extra-base)
				}
				si.Use = &UseInfo{Lit: lit, JSR: r.Kind == objfile.RLituseJSR}
				lit.Lit.Uses = append(lit.Lit.Uses, si)
				if si.Use.JSR {
					si.PVLit = lit
				}
			}
			if si.In.Op == axp.JSR && si.Use == nil {
				si.Indirect = true
			}
			if r, ok := gpdAt[off]; ok {
				lo, ok := sidxAt(r.Extra)
				if !ok {
					return nil, fmt.Errorf("om: lift %s: %s: GPDISP pair escapes procedure", obj.Name, sym.Name)
				}
				hi := si
				anchor := uint64(r.Addend)
				g := &GPDInfo{Partner: lo, High: true}
				if anchor == base {
					g.Entry = true
				} else {
					call, ok := sidxAt(anchor - 4)
					if !ok || !(call.In.Op == axp.JSR || call.In.Op == axp.BSR) {
						return nil, fmt.Errorf("om: lift %s: %s: GPDISP anchor +%#x is not after a call",
							obj.Name, sym.Name, anchor-base)
					}
					g.AfterCall = call
				}
				hi.GPD = g
				lo.GPD = &GPDInfo{Partner: hi}
			}
			if r, ok := brAt[off]; ok {
				lm.pending = append(lm.pending, pendingCall{
					inst: si, target: p.Resolve(m, r.Symbol), addend: r.Addend,
				})
			}
		}
		lm.procs = append(lm.procs, pr)
	}
	if covered != obj.Sections[objfile.SecText].Size {
		return nil, fmt.Errorf("om: lift %s: %#x bytes of text not covered by procedures",
			obj.Name, obj.Sections[objfile.SecText].Size-covered)
	}
	return lm, nil
}
