//go:build race

package om

// raceEnabled reports that this binary was built with the race detector,
// which deliberately randomizes sync.Pool reuse — allocation-count
// assertions are meaningless under it.
const raceEnabled = true
