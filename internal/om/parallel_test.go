package om

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/objfile"
)

func imageBytes(t *testing.T, im *objfile.Image) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := im.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelOutputIdentical checks the determinism-by-construction claim:
// at every optimization level, an OM run with many analysis goroutines
// produces an image byte-identical to the serial run, with equal stats.
func TestParallelOutputIdentical(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"none", []Option{WithLevel(LevelNone)}},
		{"simple", []Option{WithLevel(LevelSimple)}},
		{"full", []Option{WithLevel(LevelFull)}},
		{"full+sched", []Option{WithLevel(LevelFull), WithSchedule(true)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial, err := Run(context.Background(), freshProgram(t),
				append([]Option{WithParallelism(1)}, tc.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			par, err := Run(context.Background(), freshProgram(t),
				append([]Option{WithParallelism(8)}, tc.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(imageBytes(t, serial.Image), imageBytes(t, par.Image)) {
				t.Error("parallel image differs from serial image")
			}
			switch {
			case serial.Stats == nil && par.Stats == nil:
			case serial.Stats == nil || par.Stats == nil || *serial.Stats != *par.Stats:
				t.Errorf("stats diverged:\nserial: %+v\nparallel: %+v", serial.Stats, par.Stats)
			}
		})
	}
}

// TestRunCanceled checks that a canceled context aborts Run.
func TestRunCanceled(t *testing.T) {
	p := freshProgram(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, p); err == nil {
		t.Fatal("expected error from canceled context")
	}
}
