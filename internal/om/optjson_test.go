package om

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/obs"
	"repro/internal/profile"
)

// TestOptionsGoldenJSON pins the canonical serialized form of the resolved
// option set byte for byte. If this test fails, the om-options/v1 wire
// format changed: either revert the drift or bump OptionsVersion and update
// every producer (omd.JobSpec in particular).
func TestOptionsGoldenJSON(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
		want string
	}{
		{
			name: "defaults",
			opts: nil,
			want: `{"version":"om-options/v1","level":"full","schedule":false,"instrument":false,"trace":false}`,
		},
		{
			name: "simple",
			opts: []Option{WithLevel(LevelSimple)},
			want: `{"version":"om-options/v1","level":"simple","schedule":false,"instrument":false,"trace":false}`,
		},
		{
			name: "full+sched+trace",
			opts: []Option{WithLevel(LevelFull), WithSchedule(true), WithTrace()},
			want: `{"version":"om-options/v1","level":"full","schedule":true,"instrument":false,"trace":true}`,
		},
		{
			name: "ablated",
			opts: []Option{WithAblation(Ablation{NoCallOpt: true, NoGATReduction: true})},
			want: `{"version":"om-options/v1","level":"full","schedule":false,"ablation":{"no_gat_reduction":true,"no_call_opt":true},"instrument":false,"trace":false}`,
		},
		{
			name: "instrumented",
			opts: []Option{WithInstrumentation()},
			want: `{"version":"om-options/v1","level":"full","schedule":false,"instrument":true,"trace":false}`,
		},
		{
			name: "parallelism is not part of the form",
			opts: []Option{WithLevel(LevelNone), WithParallelism(7)},
			want: `{"version":"om-options/v1","level":"none","schedule":false,"instrument":false,"trace":false}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := MarshalOptions(tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != tc.want {
				t.Errorf("canonical form drifted:\ngot  %s\nwant %s", got, tc.want)
			}
		})
	}
}

// TestOptionsRoundTrip checks Marshal∘Unmarshal is the identity on the
// canonical form for every level/schedule/ablation/instrument/trace
// combination the API can express.
func TestOptionsRoundTrip(t *testing.T) {
	var optSets [][]Option
	for _, lvl := range []Level{LevelNone, LevelSimple, LevelFull} {
		for _, sched := range []bool{false, true} {
			for _, trace := range []bool{false, true} {
				optSets = append(optSets, []Option{
					WithLevel(lvl), WithSchedule(sched),
				})
				if trace {
					optSets[len(optSets)-1] = append(optSets[len(optSets)-1], WithTrace())
				}
			}
		}
	}
	for _, ab := range Ablations() {
		optSets = append(optSets, []Option{WithAblation(ab), WithSchedule(true)})
	}
	optSets = append(optSets, []Option{WithInstrumentation()})

	for _, opts := range optSets {
		data, err := MarshalOptions(opts...)
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalOptions(data)
		if err != nil {
			t.Fatalf("%s: %v", data, err)
		}
		again, err := MarshalOptions(back...)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, again) {
			t.Errorf("round trip not identity:\nfirst  %s\nsecond %s", data, again)
		}
	}
}

// TestOptionsRejectUnserializable: options carrying live objects have no
// wire form and must fail loudly rather than silently drop state.
func TestOptionsRejectUnserializable(t *testing.T) {
	if _, err := MarshalOptions(WithMetrics(obs.NewRegistry())); err == nil {
		t.Error("WithMetrics marshaled silently")
	}
	if _, err := MarshalOptions(WithProfile(profile.New("test"))); err == nil {
		t.Error("WithProfile marshaled silently")
	}
}

// TestOptionsUnmarshalStrict rejects malformed documents: wrong version,
// unknown fields, unknown levels, and ablations below level full.
func TestOptionsUnmarshalStrict(t *testing.T) {
	bad := []string{
		`{"version":"om-options/v0","level":"full","schedule":false,"instrument":false,"trace":false}`,
		`{"version":"om-options/v1","level":"max","schedule":false,"instrument":false,"trace":false}`,
		`{"version":"om-options/v1","level":"full","schedule":false,"instrument":false,"trace":false,"extra":1}`,
		`{"version":"om-options/v1","level":"simple","schedule":false,"ablation":{"no_call_opt":true},"instrument":false,"trace":false}`,
	}
	for _, doc := range bad {
		if _, err := UnmarshalOptions([]byte(doc)); err == nil {
			t.Errorf("accepted invalid document: %s", doc)
		}
	}
}

// TestRunMatchesRoundTrippedOptions is the direct Run equivalence test
// (successor of the removed TestDeprecatedWrappersMatchRun): Run under an
// option list and Run under its serialize/deserialize round trip produce
// byte-identical images and equal stats, so a remote JobSpec can never
// drift from a local invocation.
func TestRunMatchesRoundTrippedOptions(t *testing.T) {
	for _, opts := range [][]Option{
		{WithLevel(LevelSimple)},
		{WithLevel(LevelFull), WithSchedule(true)},
		{WithAblation(Ablation{NoCallOpt: true})},
	} {
		data, err := MarshalOptions(opts...)
		if err != nil {
			t.Fatal(err)
		}
		wire, err := UnmarshalOptions(data)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := Run(context.Background(), freshProgram(t), opts...)
		if err != nil {
			t.Fatal(err)
		}
		viaWire, err := Run(context.Background(), freshProgram(t), wire...)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(imageBytes(t, direct.Image), imageBytes(t, viaWire.Image)) {
			t.Errorf("%s: image differs between direct and round-tripped options", data)
		}
		switch {
		case direct.Stats == nil && viaWire.Stats == nil:
		case direct.Stats == nil || viaWire.Stats == nil || *direct.Stats != *viaWire.Stats:
			t.Errorf("%s: stats diverged:\ndirect %+v\nwire   %+v", data, direct.Stats, viaWire.Stats)
		}
	}
}
