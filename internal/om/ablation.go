package om

import (
	"repro/internal/link"
	"repro/internal/objfile"
)

// Ablation switches: each disables one component of OM-full so its
// individual contribution can be measured (the ablation study DESIGN.md
// calls for; see the harness Ablation table and BenchmarkAblation).
type Ablation struct {
	// NoGATReduction keeps every original GAT slot.
	NoGATReduction bool
	// NoCommonSort leaves commons in standard-linker placement.
	NoCommonSort bool
	// NoPrologueRestore skips moving displaced GP pairs back to entry,
	// leaving OM-full with OM-simple's call-site limitation.
	NoPrologueRestore bool
	// NoPairInsertion disables the ldah/lda materialization of far
	// addresses, so address loads without LITUSE chains survive.
	NoPairInsertion bool
	// NoCallOpt leaves every jsr and PV load untouched.
	NoCallOpt bool
	// NoResetOpt keeps all GP resets.
	NoResetOpt bool
	// NoPrologueDelete keeps every procedure's GP-setup pair.
	NoPrologueDelete bool
	// NoAddressOpt disables address-load conversion and nullification.
	NoAddressOpt bool
}

// Name returns a short label for the single enabled switch (for tables).
func (ab Ablation) Name() string {
	switch {
	case ab.NoGATReduction:
		return "-gat-reduction"
	case ab.NoCommonSort:
		return "-common-sort"
	case ab.NoPrologueRestore:
		return "-prologue-restore"
	case ab.NoPairInsertion:
		return "-pair-insertion"
	case ab.NoCallOpt:
		return "-call-opt"
	case ab.NoResetOpt:
		return "-reset-opt"
	case ab.NoPrologueDelete:
		return "-prologue-delete"
	case ab.NoAddressOpt:
		return "-address-opt"
	}
	return "full"
}

// Ablations enumerates the single-component ablations plus the unablated
// baseline.
func Ablations() []Ablation {
	return []Ablation{
		{},
		{NoAddressOpt: true},
		{NoCallOpt: true},
		{NoResetOpt: true},
		{NoPrologueDelete: true},
		{NoPrologueRestore: true},
		{NoGATReduction: true},
		{NoCommonSort: true},
		{NoPairInsertion: true},
	}
}

// runFullAblated is runFull with components switched off.
func runFullAblated(pg *Prog, ab Ablation) (*Plan, error) {
	if !ab.NoPrologueRestore {
		restoreProloguePairs(pg)
	} else {
		markPairPositions(pg)
	}
	var pl *Plan
	for round := 0; ; round++ {
		var err error
		pl, err = computePlan(pg, planOpts{
			reduceGAT:   !ab.NoGATReduction,
			sortCommons: !ab.NoCommonSort,
		})
		if err != nil {
			return nil, err
		}
		changed := false
		if !ab.NoAddressOpt && applyAddressOptsEx(pg, pl, true, !ab.NoPairInsertion) {
			changed = true
		}
		if !ab.NoCallOpt && applyCallOpts(pg, pl, true) {
			changed = true
		}
		if !ab.NoResetOpt && applyGPResetOpts(pg, pl, true) {
			changed = true
		}
		if !ab.NoPrologueDelete && applyPrologueOpts(pg, pl) {
			changed = true
		}
		if !changed || round > 20 {
			break
		}
	}
	return pl, nil
}

// OptimizeFullAblated runs OM-full with the given components disabled and
// regenerates an image; used by the ablation study.
func OptimizeFullAblated(p *link.Program, ab Ablation, sched bool) (*objfile.Image, *Stats, error) {
	pg, err := Lift(p)
	if err != nil {
		return nil, nil, err
	}
	stats := &Stats{}
	collectBefore(pg, stats)
	basePlan, err := link.AssignGATs(p, nil)
	if err != nil {
		return nil, nil, err
	}
	for _, slots := range basePlan.Slots {
		stats.GATBytesBefore += uint64(len(slots)) * 8
	}
	pl, err := runFullAblated(pg, ab)
	if err != nil {
		return nil, nil, err
	}
	collectAfter(pg, pl, stats)
	im, err := Emit(pg, pl, sched)
	if err != nil {
		return nil, nil, err
	}
	return im, stats, nil
}
