package om

// Ablation switches: each disables one component of OM-full so its
// individual contribution can be measured (the ablation study DESIGN.md
// calls for; see the harness Ablation table and BenchmarkAblation). The
// JSON names are part of the om-options/v1 wire form and must stay stable.
type Ablation struct {
	// NoGATReduction keeps every original GAT slot.
	NoGATReduction bool `json:"no_gat_reduction,omitempty"`
	// NoCommonSort leaves commons in standard-linker placement.
	NoCommonSort bool `json:"no_common_sort,omitempty"`
	// NoPrologueRestore skips moving displaced GP pairs back to entry,
	// leaving OM-full with OM-simple's call-site limitation.
	NoPrologueRestore bool `json:"no_prologue_restore,omitempty"`
	// NoPairInsertion disables the ldah/lda materialization of far
	// addresses, so address loads without LITUSE chains survive.
	NoPairInsertion bool `json:"no_pair_insertion,omitempty"`
	// NoCallOpt leaves every jsr and PV load untouched.
	NoCallOpt bool `json:"no_call_opt,omitempty"`
	// NoResetOpt keeps all GP resets.
	NoResetOpt bool `json:"no_reset_opt,omitempty"`
	// NoPrologueDelete keeps every procedure's GP-setup pair.
	NoPrologueDelete bool `json:"no_prologue_delete,omitempty"`
	// NoAddressOpt disables address-load conversion and nullification.
	NoAddressOpt bool `json:"no_address_opt,omitempty"`
}

// Name returns a short label for the single enabled switch (for tables).
func (ab Ablation) Name() string {
	switch {
	case ab.NoGATReduction:
		return "-gat-reduction"
	case ab.NoCommonSort:
		return "-common-sort"
	case ab.NoPrologueRestore:
		return "-prologue-restore"
	case ab.NoPairInsertion:
		return "-pair-insertion"
	case ab.NoCallOpt:
		return "-call-opt"
	case ab.NoResetOpt:
		return "-reset-opt"
	case ab.NoPrologueDelete:
		return "-prologue-delete"
	case ab.NoAddressOpt:
		return "-address-opt"
	}
	return "full"
}

// Ablations enumerates the single-component ablations plus the unablated
// baseline.
func Ablations() []Ablation {
	return []Ablation{
		{},
		{NoAddressOpt: true},
		{NoCallOpt: true},
		{NoResetOpt: true},
		{NoPrologueDelete: true},
		{NoPrologueRestore: true},
		{NoGATReduction: true},
		{NoCommonSort: true},
		{NoPairInsertion: true},
	}
}
