package om

import (
	"context"

	"repro/internal/link"
	"repro/internal/objfile"
)

// Ablation switches: each disables one component of OM-full so its
// individual contribution can be measured (the ablation study DESIGN.md
// calls for; see the harness Ablation table and BenchmarkAblation).
type Ablation struct {
	// NoGATReduction keeps every original GAT slot.
	NoGATReduction bool
	// NoCommonSort leaves commons in standard-linker placement.
	NoCommonSort bool
	// NoPrologueRestore skips moving displaced GP pairs back to entry,
	// leaving OM-full with OM-simple's call-site limitation.
	NoPrologueRestore bool
	// NoPairInsertion disables the ldah/lda materialization of far
	// addresses, so address loads without LITUSE chains survive.
	NoPairInsertion bool
	// NoCallOpt leaves every jsr and PV load untouched.
	NoCallOpt bool
	// NoResetOpt keeps all GP resets.
	NoResetOpt bool
	// NoPrologueDelete keeps every procedure's GP-setup pair.
	NoPrologueDelete bool
	// NoAddressOpt disables address-load conversion and nullification.
	NoAddressOpt bool
}

// Name returns a short label for the single enabled switch (for tables).
func (ab Ablation) Name() string {
	switch {
	case ab.NoGATReduction:
		return "-gat-reduction"
	case ab.NoCommonSort:
		return "-common-sort"
	case ab.NoPrologueRestore:
		return "-prologue-restore"
	case ab.NoPairInsertion:
		return "-pair-insertion"
	case ab.NoCallOpt:
		return "-call-opt"
	case ab.NoResetOpt:
		return "-reset-opt"
	case ab.NoPrologueDelete:
		return "-prologue-delete"
	case ab.NoAddressOpt:
		return "-address-opt"
	}
	return "full"
}

// Ablations enumerates the single-component ablations plus the unablated
// baseline.
func Ablations() []Ablation {
	return []Ablation{
		{},
		{NoAddressOpt: true},
		{NoCallOpt: true},
		{NoResetOpt: true},
		{NoPrologueDelete: true},
		{NoPrologueRestore: true},
		{NoGATReduction: true},
		{NoCommonSort: true},
		{NoPairInsertion: true},
	}
}

// OptimizeFullAblated runs OM-full with the given components disabled and
// regenerates an image; used by the ablation study.
//
// Deprecated: use Run with WithAblation.
func OptimizeFullAblated(p *link.Program, ab Ablation, sched bool) (*objfile.Image, *Stats, error) {
	res, err := Run(context.Background(), p, WithAblation(ab), WithSchedule(sched))
	if err != nil {
		return nil, nil, err
	}
	return res.Image, res.Stats, nil
}
