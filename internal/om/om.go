package om

import (
	"context"
	"runtime"

	"repro/internal/link"
	"repro/internal/objfile"
	"repro/internal/obs"
	"repro/internal/profile"
)

// config is the resolved option set of one Run.
type config struct {
	level       Level
	schedule    bool
	ablation    Ablation
	instrument  bool
	parallelism int
	trace       bool
	metrics     *obs.Registry
	profile     *profile.Profile
	memo        *Memo
	span        *obs.Span
	observer    func(ProgStage, *Prog, *Plan) error
}

// Option configures a Run.
type Option func(*config)

// WithLevel selects the optimization level (default LevelFull).
func WithLevel(l Level) Option { return func(c *config) { c.level = l } }

// WithSchedule reschedules the code after optimizing (the paper's "w/sched"
// column). It only takes effect at LevelFull.
func WithSchedule(on bool) Option { return func(c *config) { c.schedule = on } }

// WithAblation runs OM-full with the given components disabled (the
// ablation study). It implies LevelFull.
func WithAblation(ab Ablation) Option {
	return func(c *config) {
		c.ablation = ab
		c.level = LevelFull
	}
}

// WithInstrumentation inserts a profiling trap at the entry of every basic
// block and regenerates an unoptimized image (a pixie/ATOM-style build).
// The optimization level and ablation settings are ignored; the block table
// is returned in Result.Blocks.
func WithInstrumentation() Option { return func(c *config) { c.instrument = true } }

// WithParallelism bounds the number of goroutines used for per-procedure
// lifting and transformation. n <= 0 selects GOMAXPROCS. Every setting
// produces byte-identical output: procedures are analyzed independently and
// the plan is applied in program order.
func WithParallelism(n int) Option { return func(c *config) { c.parallelism = n } }

// WithTrace collects the decision journal: one event per address load,
// call site, and GP-reset pair, explaining its final disposition with a
// stable reason code (Result.Journal). Ignored for instrumentation runs.
func WithTrace() Option { return func(c *config) { c.trace = true } }

// WithMetrics records per-phase wall time (om/lift, om/passes, om/layout,
// om/emit) into the registry. A nil registry disables recording.
func WithMetrics(m *obs.Registry) Option { return func(c *config) { c.metrics = m } }

// WithSpan nests per-phase child spans (om/memo-lookup, om/lift, om/passes,
// om/layout, om/emit) under sp, marking the run's position in a caller's
// trace — the per-job dimension the aggregate WithMetrics timers lack. Like
// WithMetrics it is an execution detail excluded from a job's serialized
// identity, and a nil span disables tracing at zero cost (the nil-span fast
// path allocates nothing, pinned by the warm-replay allocation test).
func WithSpan(sp *obs.Span) Option { return func(c *config) { c.span = sp } }

// WithMemo attaches a resident memo (NewMemo) to the Run: lifted symbolic
// forms and per-procedure pass outcomes are reused across every Run sharing
// the memo. The memo never changes output — a warm Run is byte-identical to
// a cold one — and, like WithParallelism, it is an execution detail excluded
// from a job's serialized identity. Traced and instrumentation runs bypass
// the pass memo (journals and block tables must be recomputed) but still
// reuse lifted forms.
func WithMemo(m *Memo) Option { return func(c *config) { c.memo = m } }

// WithProfile enables profile-guided code layout: after the optimization
// passes, procedures are reordered by Pettis–Hansen call-graph chain
// merging over the profile's edge weights (hot caller/callee pairs become
// adjacent, never-executed procedures sink to the end), and every direct
// call's branch range is re-verified against the new order — a conversion
// whose callee lands beyond the bsr window reverts to its original
// GAT-indirect jsr. The profile is validated against the lifted program's
// procedure names; a stale profile fails the Run. A nil profile is a no-op,
// and instrumentation runs ignore the option.
func WithProfile(p *profile.Profile) Option { return func(c *config) { c.profile = p } }

// ProgStage identifies the pipeline point a WithProgObserver callback sees.
type ProgStage string

const (
	// StageLifted is the symbolic program fresh from lifting, before any
	// optimization pass runs.
	StageLifted ProgStage = "lifted"
	// StageOptimized is the transformed program under its final plan, after
	// every pass (and the fault-injection hook, when armed).
	StageOptimized ProgStage = "optimized"
)

// WithProgObserver invokes fn on the symbolic program at StageLifted (under
// a fresh unoptimized plan) and again at StageOptimized (under the final
// plan) — the two snapshots `om -lint` compares in shadow mode. The observer
// must treat the program and plan as read-only; an error aborts the Run.
// Observed runs bypass the pass memo's warm path so the observer sees the
// real pipeline, never a replay, and instrumentation runs ignore the option.
func WithProgObserver(fn func(ProgStage, *Prog, *Plan) error) Option {
	return func(c *config) { c.observer = fn }
}

// Result is the outcome of a Run.
type Result struct {
	// Image is the regenerated executable.
	Image *objfile.Image
	// Stats covers the paper's static measurements (nil for an
	// instrumentation run).
	Stats *Stats
	// Blocks maps profile ids to basic blocks (instrumentation runs only).
	Blocks []BlockInfo
	// Journal is the decision journal (WithTrace runs only).
	Journal *obs.JournalDoc
}

// Run is the single OM entrypoint: lift the merged program to symbolic
// form, analyze and transform it as the options direct, and regenerate an
// executable image. The context cancels long analyses between passes and
// rounds; per-procedure work is spread across goroutines (WithParallelism)
// while keeping the output byte-identical to a serial run.
func Run(ctx context.Context, p *link.Program, opts ...Option) (*Result, error) {
	cfg := config{level: LevelFull}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.parallelism <= 0 {
		cfg.parallelism = runtime.GOMAXPROCS(0)
	}

	// Fully warm path: when an untraced, uninstrumented Run's (program,
	// options, profile) point has a complete per-procedure pass memo, skip
	// decode, lift, and every analysis pass — clone the memoized transformed
	// form, recompute the final plan, and emit.
	var passKeys []string
	var passCtx string
	if cfg.memo != nil && !cfg.trace && !cfg.instrument && cfg.observer == nil {
		lookupSpan := cfg.span.Child("om/memo-lookup")
		if pctx, ok := passContext(p, &cfg); ok {
			passCtx = pctx
			passKeys = cfg.memo.passKeysFor(p, pctx)
			if snap := cfg.memo.lookupPasses(passKeys, pctx); snap != nil {
				lookupSpan.SetAttr("hit", "true")
				lookupSpan.End()
				if res, err := replayRun(ctx, snap, &cfg); err == nil {
					return res, nil
				}
				// A failed replay falls through to the cold path, which
				// reports any genuine error itself.
			}
		}
		lookupSpan.End()
	}

	var (
		pg         *Prog
		le         *liftEntry
		liftReplay bool
		err        error
	)
	liftSpan := cfg.span.Child("om/lift")
	liftDone := obs.StartSpan(cfg.metrics.Timer("om/lift"))
	if cfg.memo != nil {
		pg, le, liftReplay, err = cfg.memo.liftFor(ctx, p, cfg.parallelism)
	} else {
		pg, err = lift(ctx, p, cfg.parallelism)
	}
	liftDone()
	liftSpan.End()
	if err != nil {
		return nil, err
	}
	pg.par = cfg.parallelism
	if liftReplay {
		liftSpan.SetAttr("replayed", "true")
		cfg.metrics.Counter("om/lift/replayed").Add(uint64(len(pg.Procs)))
	} else {
		cfg.metrics.Counter("om/decode/modules").Add(uint64(len(p.Objects)))
		cfg.metrics.Counter("om/lift/procs").Add(uint64(len(pg.Procs)))
	}

	if cfg.instrument {
		blocks, err := Instrument(pg)
		if err != nil {
			return nil, err
		}
		pl, err := computePlan(pg, planOpts{})
		if err != nil {
			return nil, err
		}
		pg.renumber()
		im, err := Emit(pg, pl, false)
		if err != nil {
			return nil, err
		}
		return &Result{Image: im, Blocks: blocks}, nil
	}

	stats := &Stats{}
	if le != nil {
		// The before-statistics depend only on program content; the lifted-
		// form cache computed them once for this entry.
		*stats = le.before
	} else {
		collectBefore(pg, stats)
		basePlan, err := link.AssignGATs(p, nil)
		if err != nil {
			return nil, err
		}
		for _, slots := range basePlan.Slots {
			stats.GATBytesBefore += uint64(len(slots)) * 8
		}
	}

	if cfg.observer != nil {
		basePl, err := computePlan(pg, planOpts{})
		if err != nil {
			return nil, err
		}
		if err := cfg.observer(StageLifted, pg, basePl); err != nil {
			return nil, err
		}
	}

	cfg.metrics.Counter("om/passes/procs").Add(uint64(len(pg.Procs)))
	passSpan := cfg.span.Child("om/passes")
	passDone := obs.StartSpan(cfg.metrics.Timer("om/passes"))
	var pl *Plan
	switch cfg.level {
	case LevelNone:
		pl, err = computePlan(pg, planOpts{})
	case LevelSimple:
		pl, err = runSimple(pg)
	case LevelFull:
		pl, err = runFull(ctx, pg, cfg.ablation)
	}
	passDone()
	passSpan.End()
	if err != nil {
		return nil, err
	}

	var lay *layoutResult
	if cfg.profile != nil {
		known := make(map[string]bool, len(pg.Procs))
		for _, pr := range pg.Procs {
			known[pr.Name] = true
		}
		if err := cfg.profile.ValidateNames(known); err != nil {
			return nil, err
		}
		layoutSpan := cfg.span.Child("om/layout")
		layoutDone := obs.StartSpan(cfg.metrics.Timer("om/layout"))
		pl, lay, err = applyLayout(pg, pl, cfg.profile,
			cfg.level == LevelFull, cfg.schedule && cfg.level == LevelFull)
		layoutDone()
		layoutSpan.End()
		if err != nil {
			return nil, err
		}
	}
	if faultHook != nil {
		faultHook(pg)
	}
	collectAfter(pg, pl, stats)
	if cfg.observer != nil {
		if err := cfg.observer(StageOptimized, pg, pl); err != nil {
			return nil, err
		}
	}

	// Renumber before publication and emission: the ordinals index Emit's
	// address scratch, and once the program reaches the pass memo concurrent
	// replays read them, so no later phase may write to the program.
	pg.renumber()
	if passKeys != nil {
		// The program and plan themselves are the snapshot — emission is
		// read-only on both, so the pass-fixpoint form needs no defensive
		// clone and replays skip even the layout computation.
		cfg.memo.storePasses(passKeys, &passSnapshot{
			ctx: passCtx, prog: pg, pl: pl, stats: *stats,
		})
	}

	var journal *obs.JournalDoc
	if cfg.trace {
		journal = buildJournal(pg, pl, cfg, stats, lay)
	}

	sched := cfg.schedule && cfg.level == LevelFull
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	emitSpan := cfg.span.Child("om/emit")
	emitDone := obs.StartSpan(cfg.metrics.Timer("om/emit"))
	im, err := Emit(pg, pl, sched)
	emitDone()
	emitSpan.End()
	if err != nil {
		return nil, err
	}
	return &Result{Image: im, Stats: stats, Journal: journal}, nil
}
