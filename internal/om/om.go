package om

import (
	"repro/internal/link"
	"repro/internal/objfile"
)

// Options select the OM optimization level and whether OM-full also
// reschedules the code after optimizing (the paper's "w/sched" column).
type Options struct {
	Level    Level
	Schedule bool
}

// Optimize runs OM on a merged program: lift to symbolic form, analyze and
// transform at the requested level, and regenerate an executable image.
// The returned statistics cover the paper's static measurements.
func Optimize(p *link.Program, opts Options) (*objfile.Image, *Stats, error) {
	pg, err := Lift(p)
	if err != nil {
		return nil, nil, err
	}
	stats := &Stats{}
	collectBefore(pg, stats)

	basePlan, err := link.AssignGATs(p, nil)
	if err != nil {
		return nil, nil, err
	}
	for _, slots := range basePlan.Slots {
		stats.GATBytesBefore += uint64(len(slots)) * 8
	}

	var pl *Plan
	switch opts.Level {
	case LevelNone:
		pl, err = computePlan(pg, planOpts{})
	case LevelSimple:
		pl, err = runSimple(pg)
	case LevelFull:
		pl, err = runFull(pg)
	}
	if err != nil {
		return nil, nil, err
	}
	collectAfter(pg, pl, stats)

	sched := opts.Schedule && opts.Level == LevelFull
	im, err := Emit(pg, pl, sched)
	if err != nil {
		return nil, nil, err
	}
	return im, stats, nil
}

// OptimizeObjects is a convenience wrapper: merge then optimize.
func OptimizeObjects(objects []*objfile.Object, opts Options) (*objfile.Image, *Stats, error) {
	p, err := link.Merge(objects)
	if err != nil {
		return nil, nil, err
	}
	return Optimize(p, opts)
}
