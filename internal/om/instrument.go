package om

import (
	"fmt"

	"repro/internal/axp"
	"repro/internal/profile"
)

// BlockInfo names one instrumented basic block.
type BlockInfo struct {
	ID    uint32
	Proc  string
	Index int // block ordinal within the procedure
	// Calls names the known callees of the block's call sites (direct calls
	// and GAT-indirect jsr with a resolvable target; calls through procedure
	// variables are omitted). With the block's execution count this yields
	// call-edge weights for profile-guided layout.
	Calls []string
}

// Instrument inserts a profiling trap at the entry of every basic block —
// the ATOM-style application of OM's machinery the paper points to ("OM
// lets us work with a symbolic form... flexible program instrumentation
// tools"). Each trap carries the block id; the simulator counts executions
// without disturbing any architectural state.
//
// Instrumentation runs on the lifted (unoptimized) form, like pixie on a
// final binary: call it after Lift and emit with LevelNone.
func Instrument(pg *Prog) ([]BlockInfo, error) {
	var blocks []BlockInfo
	nextID := uint32(0)
	for _, pr := range pg.Procs {
		idx := 0
		trap := func() *SInst {
			if nextID > axp.PalProfileIDMask {
				return nil
			}
			si := &SInst{In: axp.Pal(axp.PalProfileFlag | nextID), Target: -1}
			blocks = append(blocks, BlockInfo{ID: nextID, Proc: pr.Name, Index: idx})
			nextID++
			idx++
			return si
		}

		var out []*SInst
		// Entry block: if the prologue GP pair is pinned at entry (local
		// entry points target entry+8), count after the pair so skipped
		// entries are still observed.
		insts := pr.Insts
		start := 0
		if len(insts) >= 2 &&
			insts[0].GPD != nil && insts[0].GPD.High && insts[0].GPD.Entry &&
			insts[1].GPD != nil && insts[1] == insts[0].GPD.Partner {
			out = append(out, insts[0], insts[1])
			start = 2
		}
		tr := trap()
		if tr == nil {
			return nil, fmt.Errorf("om: instrument: more than %d blocks", axp.PalProfileIDMask)
		}
		out = append(out, tr)

		prevEndsBlock := false
		for i := start; i < len(insts); i++ {
			si := insts[i]
			leader := prevEndsBlock || len(si.Labels) > 0
			if leader {
				tr := trap()
				if tr == nil {
					return nil, fmt.Errorf("om: instrument: more than %d blocks", axp.PalProfileIDMask)
				}
				// Branch targets must hit the counter: move the labels.
				tr.Labels = si.Labels
				si.Labels = nil
				out = append(out, tr)
			}
			out = append(out, si)
			if si.In.Op == axp.JSR || si.In.Op == axp.BSR {
				if callee := resetCallee(pg, si); callee != nil {
					cur := &blocks[len(blocks)-1]
					cur.Calls = append(cur.Calls, callee.Name)
				}
			}
			prevEndsBlock = si.In.Op.IsBranch() || si.In.Op.IsJump() || si.In.Op == axp.CALLPAL
		}
		pr.Insts = out
	}
	return blocks, nil
}

// TrapBlocks converts the instrumentation block table into the profile
// package's source-neutral form, for profile.FromTraps.
func TrapBlocks(blocks []BlockInfo) []profile.TrapBlock {
	out := make([]profile.TrapBlock, len(blocks))
	for i, b := range blocks {
		out[i] = profile.TrapBlock{Proc: b.Proc, Index: b.Index, Calls: b.Calls}
	}
	return out
}
