package om

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/link"
	"repro/internal/objfile"
	"repro/internal/rtlib"
	"repro/internal/tcc"
)

// sharedProgram builds a program whose math and util library modules are
// marked as a dynamically-linked shared library.
func sharedProgram(t *testing.T) *link.Program {
	t.Helper()
	user := `
long grid[32];
long total = 0;

long fill(long n) {
	long i;
	for (i = 0; i < n; i = i + 1) {
		grid[i] = lhash(i) % 100;   // lhash lives in the shared library
		total = total + grid[i];
	}
	return total;
}

long main() {
	fill(32);
	print(total);                  // print is statically linked
	print_fixed(dsqrt(total));     // dsqrt is in the shared library
	print(xrand() > 0);            // xrand too
	srand48(7);
	return 0;
}
`
	obj, err := tcc.Compile("user", []tcc.Source{{Name: "user", Text: user}}, tcc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	lib, err := rtlib.StandardObjects()
	if err != nil {
		t.Fatal(err)
	}
	p, err := link.Merge(append([]*objfile.Object{obj}, lib...))
	if err != nil {
		t.Fatal(err)
	}
	p.MarkShared("libmath", "libutil")
	return p
}

func TestSharedLibraryLayout(t *testing.T) {
	im, err := sharedProgram(t).Layout()
	if err != nil {
		t.Fatal(err)
	}
	if len(im.Segments) != 4 {
		t.Fatalf("expected 4 segments, got %d", len(im.Segments))
	}
	// Shared procedures land in the far region; static ones do not.
	dsqrt, ok := im.FindSymbol("dsqrt")
	if !ok || dsqrt.Addr < objfile.SharedTextBase {
		t.Errorf("dsqrt at %#x, want in shared text", dsqrt.Addr)
	}
	pr, ok := im.FindSymbol("print")
	if !ok || pr.Addr >= objfile.SharedTextBase {
		t.Errorf("print at %#x, want in static text", pr.Addr)
	}
	// Two GP domains, one per region.
	if len(im.GATs) < 2 {
		t.Fatalf("expected at least 2 GATs, got %d", len(im.GATs))
	}
	var haveShared, haveStatic bool
	for _, g := range im.GATs {
		if g.Start >= objfile.SharedDataBase {
			haveShared = true
		} else {
			haveStatic = true
		}
	}
	if !haveShared || !haveStatic {
		t.Error("expected GATs in both regions")
	}
	// Shared procedures carry the shared-region GP.
	if dsqrt.GP < objfile.SharedDataBase {
		t.Errorf("dsqrt GP %#x not in shared data region", dsqrt.GP)
	}
}

func TestSharedLibrarySemanticsAndConservatism(t *testing.T) {
	baseIm, err := sharedProgram(t).Layout()
	if err != nil {
		t.Fatal(err)
	}
	want := run(t, baseIm)

	for _, cfg := range []struct {
		Level    Level
		Schedule bool
	}{
		{Level: LevelNone},
		{Level: LevelSimple},
		{Level: LevelFull},
		{Level: LevelFull, Schedule: true},
	} {
		res, err := Run(context.Background(), sharedProgram(t),
			WithLevel(cfg.Level), WithSchedule(cfg.Schedule))
		if err != nil {
			t.Fatalf("%v: %v", cfg.Level, err)
		}
		im, st := res.Image, res.Stats
		got := run(t, im)
		if fmt.Sprint(got.Output) != fmt.Sprint(want.Output) || got.Exit != want.Exit {
			t.Errorf("%v: output %v exit %d, want %v exit %d",
				cfg.Level, got.Output, got.Exit, want.Output, want.Exit)
		}
		if cfg.Level == LevelFull {
			// Cross-boundary calls must keep their jsr, PV load, and reset.
			if st.JSRAfter == 0 {
				t.Error("full: every jsr was converted despite the shared library")
			}
			if st.GPResetAfter == 0 {
				t.Error("full: every GP reset vanished despite the shared library")
			}
			if st.PVAfter <= st.IndirectCalls {
				t.Errorf("full: PV loads (%d) should exceed indirect calls (%d): shared-library calls keep theirs",
					st.PVAfter, st.IndirectCalls)
			}
		}
	}
}

func TestSharedLibraryStaticSideStillOptimized(t *testing.T) {
	// The statically linked part keeps its full benefit: intra-static calls
	// become bsr, static data goes GP-relative.
	res, err := Run(context.Background(), sharedProgram(t), WithLevel(LevelFull))
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.AddrConverted+st.AddrNullified == 0 {
		t.Fatal("no address loads removed at all")
	}
	// GAT shrinks but cannot disappear: shared-library entries survive.
	if st.GATBytesAfter == 0 {
		t.Error("GAT empty: shared-library references should persist")
	}
	if st.GATBytesAfter >= st.GATBytesBefore {
		t.Errorf("GAT not reduced: %d -> %d", st.GATBytesBefore, st.GATBytesAfter)
	}
}
