package om

import (
	"context"

	"repro/internal/axp"
)

// applyCallOpts converts general jsr calls through the GAT into direct bsr
// calls, retargets them past the callee's GP-setup pair when legal, and
// removes the PV load when nothing needs PV any more. Returns whether
// anything changed.
//
// In OM-simple (full=false) the jsr may be replaced by a bsr and the PV load
// no-op'd, but only when the callee's pair already sits at entry — code is
// never moved, so a displaced pair blocks the skip (and therefore the
// PV-load nullification), exactly as the paper reports.
func applyCallOpts(pg *Prog, pl *Plan, full bool) bool {
	singleGAT := len(pl.gat.Slots) == 1
	// Call sites mutate only their own procedure (the PV literal a LITUSE
	// chain names is always in the same procedure); callee state is only
	// read, and no concurrent call writes it. Safe to fan out per procedure.
	return pg.forEachProc(func(pr *Proc) bool {
		changed := false
		// A caller whose own prologue was deleted holds whatever GP its
		// caller had; with multiple GATs that value cannot be trusted to
		// satisfy a skipped callee prologue.
		gpTrusted := singleGAT || !pr.PrologueDeleted
		for _, si := range pr.Insts {
			if si.Deleted || si.In.Op != axp.JSR || si.Use == nil || !si.Use.JSR {
				continue
			}
			lit := si.Use.Lit
			callee := pg.ProcFor(lit.Lit.Key)
			if callee == nil {
				continue
			}
			if pl.regionOf(pr.Mod) != pl.regionOf(callee.Mod) {
				// A call into (or out of) a shared library: the bsr's 21-bit
				// displacement cannot span the regions, and "calls to
				// dynamically linked library routines cannot be optimized as
				// statically linked calls can" (§6). Leave the jsr, its PV
				// load, and its GP reset alone.
				continue
			}
			sameGAT := pl.SameGAT(pr, callee)
			entryOff := uint64(0)
			needPV := true
			switch {
			case callee.PrologueDeleted:
				// Sound only when the deletion itself was sound (decided in
				// applyPrologueOpts); the call needs no PV.
				needPV = false
			case callee.PairAtEntry && sameGAT && gpTrusted:
				entryOff = 8
				needPV = false
			default:
				// Displaced pair, different GAT, or untrusted caller GP:
				// the callee's pair executes and computes GP from PV.
				needPV = true
			}
			si.Call = &CallInfo{Target: callee, EntryOffset: entryOff, FromJSR: true,
				origJSR: si.In, origPV: lit.In}
			si.In = axp.BranchInst(axp.BSR, axp.RA, 0)
			si.Use = nil
			for i, u := range lit.Lit.Uses {
				if u == si {
					lit.Lit.Uses = append(lit.Lit.Uses[:i], lit.Lit.Uses[i+1:]...)
					break
				}
			}
			if !needPV && len(lit.Lit.Uses) == 0 && !lit.Lit.Nullified {
				lit.Lit.Nullified = true
				nullifyInst(lit, full)
			}
			changed = true
		}
		return changed
	})
}

// normalizeLocalEntries re-derives the entry offset of every direct call
// after prologue decisions changed (a deleted pair turns entry+8 back into
// entry+0).
func normalizeLocalEntries(pg *Prog) {
	for _, pr := range pg.Procs {
		for _, si := range pr.Insts {
			if si.Deleted || si.Call == nil {
				continue
			}
			callee := si.Call.Target
			switch {
			case callee.PrologueDeleted:
				si.Call.EntryOffset = 0
			case si.Call.EntryOffset == 8 && !callee.PairAtEntry:
				si.Call.EntryOffset = 0
			}
		}
	}
}

// applyPrologueOpts (OM-full only) deletes procedure GP-setup pairs.
//
// With a single program-wide GAT, GP is a constant of the whole execution:
// the entry procedure establishes it once and no remaining instruction ever
// changes it, so every other prologue pair is dead — including those of
// address-taken procedures reached through procedure variables. This is the
// whole-program reasoning that only a link-time optimizer can do.
//
// With multiple GATs the pass is conservative: a pair is deleted only when
// its procedure never reads GP and never makes a call that relies on the
// caller's GP (an entry+8 skip).
func applyPrologueOpts(pg *Prog, pl *Plan) bool {
	singleGAT := len(pl.gat.Slots) == 1
	changed := false
	for _, pr := range pg.Procs {
		if pr.PrologueDeleted {
			continue
		}
		hi, _, _ := pairPosition(pr)
		if hi == nil {
			continue
		}
		deletable := false
		if singleGAT {
			deletable = pr.Name != pg.P.EntryName
		} else {
			deletable = !procUsesGP(pr) && !hasGPReliantCalls(pr)
		}
		if !deletable {
			continue
		}
		hi.Deleted = true
		hi.GPD.Partner.Deleted = true
		pr.PrologueDeleted = true
		pr.PairAtEntry = false
		changed = true
	}
	if changed {
		normalizeLocalEntries(pg)
	}
	return changed
}

// hasGPReliantCalls reports whether the procedure makes a direct call that
// skips the callee's GP setup (and therefore passes its own GP along).
func hasGPReliantCalls(pr *Proc) bool {
	for _, si := range pr.Insts {
		if si.Deleted || si.Call == nil {
			continue
		}
		if si.Call.EntryOffset == 8 || si.Call.Target.PrologueDeleted {
			return true
		}
	}
	return false
}

// Level selects the optimization level.
type Level int

const (
	// LevelNone lifts and regenerates code without optimizing (the "OM no
	// opt" configuration of the paper's build-time table).
	LevelNone Level = iota
	// LevelSimple is the traditional-linker level: one-for-one instruction
	// replacement, no code motion; removed instructions become no-ops.
	LevelSimple
	// LevelFull understands control structure and may delete, insert, and
	// reorder instructions: prologue restoration, bsr retargeting past
	// GP-setup, PV-load removal, GAT reduction, and (optionally)
	// rescheduling with quadword alignment of branch targets.
	LevelFull
)

// String names the optimization level.
func (l Level) String() string {
	switch l {
	case LevelNone:
		return "om-none"
	case LevelSimple:
		return "om-simple"
	case LevelFull:
		return "om-full"
	}
	return "om-?"
}

// runSimple performs the OM-simple pass set against a fixed layout.
func runSimple(pg *Prog) (*Plan, error) {
	// OM-simple sorts commons near the GAT and picks the GP, but never
	// changes instruction counts, so one layout round suffices.
	pl, err := computePlan(pg, planOpts{reduceGAT: false, sortCommons: true})
	if err != nil {
		return nil, err
	}
	markPairPositions(pg)
	applyCallOpts(pg, pl, false)
	applyGPResetOpts(pg, pl, false)
	applyAddressOpts(pg, pl, false)
	return pl, nil
}

// runFull performs the OM-full pass set, iterating with GAT reduction until
// the layout and the code reach a fixpoint. The zero Ablation runs every
// component; each switch disables one (the ablation study). The context is
// checked between rounds, the natural cancellation points of the fixpoint.
func runFull(ctx context.Context, pg *Prog, ab Ablation) (*Plan, error) {
	if !ab.NoPrologueRestore {
		restoreProloguePairs(pg)
	} else {
		markPairPositions(pg)
	}
	var pl *Plan
	for round := 0; ; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var err error
		pl, err = computePlan(pg, planOpts{
			reduceGAT:   !ab.NoGATReduction,
			sortCommons: !ab.NoCommonSort,
		})
		if err != nil {
			return nil, err
		}
		changed := false
		if !ab.NoAddressOpt && applyAddressOptsEx(pg, pl, true, !ab.NoPairInsertion) {
			changed = true
		}
		if !ab.NoCallOpt && applyCallOpts(pg, pl, true) {
			changed = true
		}
		if !ab.NoResetOpt && applyGPResetOpts(pg, pl, true) {
			changed = true
		}
		if !ab.NoPrologueDelete && applyPrologueOpts(pg, pl) {
			changed = true
		}
		if !changed {
			break
		}
		if round > 20 {
			break // defensive bound; the pass set is monotone
		}
	}
	return pl, nil
}
