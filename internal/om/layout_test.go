package om

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/objfile"
	"repro/internal/profile"
	"repro/internal/sim"
)

// collectProfile runs the instrumented build of the program and converts
// the trap counts into an om-profile.
func collectProfile(t *testing.T) *profile.Profile {
	t.Helper()
	res, err := Run(context.Background(), freshProgram(t), WithInstrumentation())
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	simres := run(t, res.Image)
	if len(simres.Profile) == 0 {
		t.Fatal("instrumented run produced no trap counts")
	}
	p := profile.FromTraps(TrapBlocks(res.Blocks), simres.Profile)
	if len(p.Edges) == 0 {
		t.Fatal("trap profile has no call edges; layout would be vacuous")
	}
	return p
}

// TestLayoutSemanticsPreserved: OM-full with profile-guided layout produces
// a program with identical behavior, and the hot procedures move ahead of
// cold ones in the image.
func TestLayoutSemanticsPreserved(t *testing.T) {
	prof := collectProfile(t)

	base, err := Run(context.Background(), freshProgram(t), WithLevel(LevelFull))
	if err != nil {
		t.Fatal(err)
	}
	want := run(t, base.Image)

	for _, sched := range []bool{false, true} {
		res, err := Run(context.Background(), freshProgram(t),
			WithLevel(LevelFull), WithSchedule(sched), WithProfile(prof))
		if err != nil {
			t.Fatalf("om-full+layout sched=%v: %v", sched, err)
		}
		got := run(t, res.Image)
		if got.Exit != want.Exit || fmt.Sprint(got.Output) != fmt.Sprint(want.Output) {
			t.Errorf("sched=%v: layout changed behavior: exit %d/%d output %v vs %v",
				sched, got.Exit, want.Exit, got.Output, want.Output)
		}
	}

	// The layout must actually reorder: weight of the first placed
	// procedure is positive (a hot chain head), not whatever module order
	// put first.
	res, err := Run(context.Background(), freshProgram(t),
		WithLevel(LevelFull), WithProfile(prof))
	if err != nil {
		t.Fatal(err)
	}
	weights := make(map[string]uint64)
	for _, pc := range prof.Procs {
		weights[pc.Name] = pc.Weight
	}
	firstAddr, firstName := ^uint64(0), ""
	for _, s := range res.Image.Symbols {
		if s.Kind == objfile.SymProc && s.Addr < firstAddr {
			firstAddr, firstName = s.Addr, s.Name
		}
	}
	if weights[firstName] == 0 {
		t.Errorf("first placed procedure %q is cold; layout did not take effect", firstName)
	}
}

// TestLayoutIdempotent: re-laying-out an already-laid-out program is a
// no-op — the second application returns the procedures in the same order.
func TestLayoutIdempotent(t *testing.T) {
	prof := collectProfile(t)

	pg, err := Lift(freshProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := runFull(context.Background(), pg, Ablation{})
	if err != nil {
		t.Fatal(err)
	}
	order := func() []string {
		names := make([]string, len(pg.Procs))
		for i, pr := range pg.Procs {
			names[i] = pr.Name
		}
		return names
	}
	pl, _, err = applyLayout(pg, pl, prof, true, false)
	if err != nil {
		t.Fatal(err)
	}
	first := order()
	_, _, err = applyLayout(pg, pl, prof, true, false)
	if err != nil {
		t.Fatal(err)
	}
	second := order()
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatalf("layout is not idempotent:\nfirst  %v\nsecond %v", first, second)
	}
}

// TestLayoutJournalAccounting: with WithProfile and WithTrace, the journal
// gains a layout category accounting for every procedure exactly once, and
// still passes its self-check.
func TestLayoutJournalAccounting(t *testing.T) {
	prof := collectProfile(t)
	res, err := Run(context.Background(), freshProgram(t),
		WithLevel(LevelFull), WithProfile(prof), WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	d := res.Journal
	if err := d.Check(); err != nil {
		t.Fatalf("journal self-check: %v", err)
	}
	seen := make(map[string]int)
	var n uint64
	for _, e := range d.Events {
		if e.Cat != "layout" {
			continue
		}
		n++
		seen[e.Proc+"/"+fmt.Sprint(e.Index)]++
		switch e.Reason {
		case ReasonLayoutChain, ReasonLayoutHot, ReasonLayoutCold, ReasonLayoutFallback:
		default:
			t.Errorf("unexpected layout reason %q", e.Reason)
		}
	}
	if n != d.Totals["layout"] {
		t.Errorf("layout events %d, total %d", n, d.Totals["layout"])
	}
	if n == 0 {
		t.Fatal("no layout events")
	}
	var chains int
	for r, c := range d.Counts {
		if r == ReasonLayoutChain {
			chains = int(c)
		}
	}
	if chains == 0 {
		t.Error("no procedure placed in a hot chain; fixture profile is vacuous")
	}
}

// TestLayoutRevert exercises the bsr fallback machinery directly: after
// OM-full converts calls, revert one and re-plan; the program must still
// behave identically (the call goes back through the GAT, whose slot and
// PV load are resurrected).
func TestLayoutRevert(t *testing.T) {
	base, err := Run(context.Background(), freshProgram(t), WithLevel(LevelFull))
	if err != nil {
		t.Fatal(err)
	}
	want := run(t, base.Image)

	pg, err := Lift(freshProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := runFull(context.Background(), pg, Ablation{})
	if err != nil {
		t.Fatal(err)
	}
	reverted := 0
	for _, pr := range pg.Procs {
		for _, si := range pr.Insts {
			if si.Deleted || si.Call == nil || !si.Call.FromJSR {
				continue
			}
			if err := revertCall(si, true); err != nil {
				t.Fatalf("revert in %s: %v", pr.Name, err)
			}
			reverted++
		}
	}
	if reverted == 0 {
		t.Fatal("fixture converted no calls; revert test is vacuous")
	}
	pl, err = computePlan(pg, pl.opts)
	if err != nil {
		t.Fatal(err)
	}
	im, err := Emit(pg, pl, false)
	if err != nil {
		t.Fatalf("emit after revert: %v", err)
	}
	got := run(t, im)
	if got.Exit != want.Exit || fmt.Sprint(got.Output) != fmt.Sprint(want.Output) {
		t.Fatalf("reverting all conversions changed behavior: %v vs %v", got.Output, want.Output)
	}
}

// TestLayoutStaleProfileRejected: a profile naming procedures the program
// does not contain fails the Run instead of silently mislaying code.
func TestLayoutStaleProfileRejected(t *testing.T) {
	p := profile.New("synthetic")
	p.Procs = []profile.ProcCount{{Name: "no_such_procedure", Entries: 1, Weight: 1}}
	_, err := Run(context.Background(), freshProgram(t),
		WithLevel(LevelFull), WithProfile(p))
	if err == nil {
		t.Fatal("stale profile accepted")
	}
}

// TestLayoutAtEveryLevel: WithProfile composes with every level (reverts
// need level-matched undo, reordering needs none), preserving behavior.
func TestLayoutAtEveryLevel(t *testing.T) {
	prof := collectProfile(t)
	baseIm, err := freshProgram(t).Layout()
	if err != nil {
		t.Fatal(err)
	}
	want := run(t, baseIm)
	for _, level := range []Level{LevelNone, LevelSimple, LevelFull} {
		res, err := Run(context.Background(), freshProgram(t),
			WithLevel(level), WithProfile(prof))
		if err != nil {
			t.Fatalf("%v+layout: %v", level, err)
		}
		got := run(t, res.Image)
		if got.Exit != want.Exit || fmt.Sprint(got.Output) != fmt.Sprint(want.Output) {
			t.Errorf("%v+layout changed behavior", level)
		}
	}
}

// TestProfileFromEngine: the engine-profiler source (FromImage) builds an
// equivalent pipeline input — procedures attribute, entries count, and on
// an OM-full image (calls converted to bsr) edges decode.
func TestProfileFromEngine(t *testing.T) {
	res, err := Run(context.Background(), freshProgram(t), WithLevel(LevelFull))
	if err != nil {
		t.Fatal(err)
	}
	simres, err := sim.Run(res.Image, sim.Config{MaxInstructions: 100_000_000, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	blocks := make([]profile.PCBlock, len(simres.BlockProfile))
	for i, b := range simres.BlockProfile {
		blocks[i] = profile.PCBlock{PC: b.PC, Len: b.Len, Count: b.Count}
	}
	p, err := profile.FromImage(res.Image, blocks)
	if err != nil {
		t.Fatal(err)
	}
	if p.Source != "engine" {
		t.Errorf("source %q", p.Source)
	}
	if len(p.Procs) == 0 || len(p.Edges) == 0 {
		t.Fatalf("engine profile is empty: %d procs, %d edges", len(p.Procs), len(p.Edges))
	}
	var mainEntries uint64
	for _, pc := range p.Procs {
		if pc.Name == "main" {
			mainEntries = pc.Entries
		}
	}
	if mainEntries != 1 {
		t.Errorf("main entries = %d, want 1", mainEntries)
	}

	// The engine profile drives the same layout pipeline.
	res2, err := Run(context.Background(), freshProgram(t),
		WithLevel(LevelFull), WithProfile(p))
	if err != nil {
		t.Fatalf("om-full+engine-profile: %v", err)
	}
	want := run(t, res.Image)
	got := run(t, res2.Image)
	if got.Exit != want.Exit || fmt.Sprint(got.Output) != fmt.Sprint(want.Output) {
		t.Error("engine-profile layout changed behavior")
	}
}
