package profile

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sample() *Profile {
	p := New("trap")
	p.Procs = []ProcCount{
		{Name: "main", Entries: 1, Weight: 10},
		{Name: "f", Entries: 5, Weight: 50},
	}
	p.Blocks = []BlockCount{
		{Proc: "main", Index: 0, Count: 1},
		{Proc: "f", Index: 0, Count: 5},
		{Proc: "f", Index: 1, Count: 45},
	}
	p.Edges = []Edge{{Caller: "main", Callee: "f", Weight: 5}}
	return p
}

// TestRoundTrip: Write then Read reproduces the profile, canonically
// ordered.
func TestRoundTrip(t *testing.T) {
	p := sample()
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("round trip changed the profile:\nwrote %+v\nread  %+v", p, q)
	}
	if q.Procs[0].Name != "f" {
		t.Errorf("procs not canonically sorted: %+v", q.Procs)
	}
}

// TestReadRejects: wrong schema and malformed entries fail loudly.
func TestReadRejects(t *testing.T) {
	for name, doc := range map[string]string{
		"bad schema":   `{"schema":"om-profile/v0","procs":[]}`,
		"not json":     `hello`,
		"empty proc":   `{"schema":"om-profile/v1","procs":[{"name":"","entries":1}]}`,
		"neg index":    `{"schema":"om-profile/v1","procs":[],"blocks":[{"proc":"f","index":-1,"count":1}]}`,
		"empty caller": `{"schema":"om-profile/v1","procs":[],"edges":[{"caller":"","callee":"f","weight":1}]}`,
	} {
		if _, err := Read(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: Read accepted it", name)
		}
	}
}

// TestValidate: names are checked against the target program.
func TestValidate(t *testing.T) {
	p := sample()
	if err := p.ValidateNames(map[string]bool{"main": true, "f": true}); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	if err := p.ValidateNames(map[string]bool{"main": true}); err == nil {
		t.Fatal("profile with unknown procedure accepted")
	}
}

// TestMerge: counts sum deterministically regardless of argument order.
func TestMerge(t *testing.T) {
	a, b := sample(), sample()
	b.Edges = append(b.Edges, Edge{Caller: "f", Callee: "main", Weight: 2})
	ab, ba := Merge(a, b), Merge(b, a)
	if !reflect.DeepEqual(ab, ba) {
		t.Fatalf("merge is order-dependent:\nab %+v\nba %+v", ab, ba)
	}
	if ab.Source != "merge" {
		t.Errorf("merge source %q", ab.Source)
	}
	for _, pc := range ab.Procs {
		if pc.Name == "f" && (pc.Entries != 10 || pc.Weight != 100) {
			t.Errorf("f not summed: %+v", pc)
		}
	}
	want := []Edge{{"f", "main", 2}, {"main", "f", 10}}
	if !reflect.DeepEqual(ab.Edges, want) {
		t.Errorf("edges = %+v, want %+v", ab.Edges, want)
	}
}

// TestHash: equal content hashes equally even from different input order;
// any count change produces a different hash (the cache-key property).
func TestHash(t *testing.T) {
	a := sample()
	b := sample()
	// Same content, scrambled input order.
	b.Procs[0], b.Procs[1] = b.Procs[1], b.Procs[0]
	b.Blocks[0], b.Blocks[2] = b.Blocks[2], b.Blocks[0]
	if a.Hash() != b.Hash() {
		t.Fatal("hash depends on input order")
	}
	c := sample()
	c.Blocks[1].Count++
	if a.Hash() == c.Hash() {
		t.Fatal("hash ignores a count change")
	}
}

// TestFromTraps: block counts aggregate to procedure weights, index-0
// blocks count entries, and call lists become weighted edges; untouched
// procedures are omitted.
func TestFromTraps(t *testing.T) {
	blocks := []TrapBlock{
		{Proc: "main", Index: 0, Calls: []string{"f"}},
		{Proc: "main", Index: 1},
		{Proc: "f", Index: 0},
		{Proc: "dead", Index: 0},
	}
	counts := map[uint32]uint64{0: 1, 1: 7, 2: 5}
	p := FromTraps(blocks, counts)
	if p.Source != "trap" {
		t.Errorf("source %q", p.Source)
	}
	wantProcs := []ProcCount{
		{Name: "f", Entries: 5, Weight: 5},
		{Name: "main", Entries: 1, Weight: 8},
	}
	if !reflect.DeepEqual(p.Procs, wantProcs) {
		t.Errorf("procs = %+v, want %+v", p.Procs, wantProcs)
	}
	wantEdges := []Edge{{Caller: "main", Callee: "f", Weight: 1}}
	if !reflect.DeepEqual(p.Edges, wantEdges) {
		t.Errorf("edges = %+v, want %+v", p.Edges, wantEdges)
	}
	for _, b := range p.Blocks {
		if b.Proc == "dead" {
			t.Errorf("unexecuted block kept: %+v", b)
		}
	}
}
