package profile

import (
	"bytes"
	"testing"
)

// FuzzProfileRead: the om-profile/v1 parser must never panic, and anything
// it accepts must be canonical under a write/read round trip (Hash depends
// on that).
func FuzzProfileRead(f *testing.F) {
	p := New("synthetic")
	p.Procs = []ProcCount{{Name: "main", Entries: 1, Weight: 10}}
	p.Blocks = []BlockCount{{Proc: "main", Index: 0, Count: 10}}
	p.Edges = []Edge{{Caller: "main", Callee: "main", Weight: 3}}
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"schema":"om-profile/v1","procs":[]}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Write(&out, p); err != nil {
			t.Fatalf("accepted profile does not re-serialize: %v", err)
		}
		p2, err := Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if p.Hash() != p2.Hash() {
			t.Fatal("round trip changed the canonical hash")
		}
	})
}
