// Package profile defines the om-profile/v1 interchange format: execution
// profiles collected by the simulator and consumed by OM's profile-guided
// layout pass. A profile records per-procedure entry counts, per-block
// execution counts, and call-edge weights derived from call-site block
// counts. Profiles from either collection mode — instrumentation traps
// (sim.Result.Profile plus OM's block table) or the engine profiler
// (sim.Result.BlockProfile plus the image symbol table) — normalize to the
// same format, so every downstream consumer is source-agnostic.
package profile

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/axp"
	"repro/internal/objfile"
)

// Schema identifies the profile file format; bump on incompatible change so
// downstream tooling can reject files it does not understand.
const Schema = "om-profile/v1"

// Profile is one program's execution profile. All slices are kept in
// canonical order (procs and blocks by name/index, edges by caller then
// callee), so equal profiles serialize identically and Hash is well-defined.
type Profile struct {
	SchemaV string `json:"schema"`
	// Source records how the counts were collected: "trap" (instrumentation
	// traps), "engine" (the simulator's block profiler), "merge", or
	// "synthetic" (tests).
	Source string `json:"source,omitempty"`
	// Procs holds per-procedure counts (every procedure with a nonzero
	// entry or block count).
	Procs []ProcCount `json:"procs"`
	// Blocks holds per-block execution counts.
	Blocks []BlockCount `json:"blocks,omitempty"`
	// Edges holds call-edge weights: how often a call site in Caller
	// transferred to Callee, derived from the call site's block count.
	Edges []Edge `json:"edges,omitempty"`
}

// ProcCount is one procedure's dynamic summary.
type ProcCount struct {
	Name string `json:"name"`
	// Entries counts how often control entered the procedure.
	Entries uint64 `json:"entries"`
	// Weight is the procedure's total block-entry count — its hotness.
	Weight uint64 `json:"weight"`
}

// BlockCount is one basic block's execution count. Index is the block's
// ordinal within its procedure (trap profiles) or the block's byte offset
// from the procedure entry divided by 4 (engine profiles): a stable,
// source-local identifier, not comparable across sources.
type BlockCount struct {
	Proc  string `json:"proc"`
	Index int    `json:"index"`
	Count uint64 `json:"count"`
}

// Edge is one weighted call-graph edge.
type Edge struct {
	Caller string `json:"caller"`
	Callee string `json:"callee"`
	Weight uint64 `json:"weight"`
}

// normalize sorts the slices canonically and coalesces duplicate entries by
// summing their counts.
func (p *Profile) normalize() {
	if len(p.Procs) > 0 {
		m := make(map[string]ProcCount, len(p.Procs))
		for _, pc := range p.Procs {
			e := m[pc.Name]
			e.Name = pc.Name
			e.Entries += pc.Entries
			e.Weight += pc.Weight
			m[pc.Name] = e
		}
		p.Procs = p.Procs[:0]
		for _, pc := range m {
			p.Procs = append(p.Procs, pc)
		}
		sort.Slice(p.Procs, func(i, j int) bool { return p.Procs[i].Name < p.Procs[j].Name })
	}
	if len(p.Blocks) > 0 {
		type bkey struct {
			proc string
			idx  int
		}
		m := make(map[bkey]uint64, len(p.Blocks))
		for _, b := range p.Blocks {
			m[bkey{b.Proc, b.Index}] += b.Count
		}
		p.Blocks = p.Blocks[:0]
		for k, n := range m {
			p.Blocks = append(p.Blocks, BlockCount{Proc: k.proc, Index: k.idx, Count: n})
		}
		sort.Slice(p.Blocks, func(i, j int) bool {
			if p.Blocks[i].Proc != p.Blocks[j].Proc {
				return p.Blocks[i].Proc < p.Blocks[j].Proc
			}
			return p.Blocks[i].Index < p.Blocks[j].Index
		})
	}
	if len(p.Edges) > 0 {
		type ekey struct{ caller, callee string }
		m := make(map[ekey]uint64, len(p.Edges))
		for _, e := range p.Edges {
			m[ekey{e.Caller, e.Callee}] += e.Weight
		}
		p.Edges = p.Edges[:0]
		for k, w := range m {
			p.Edges = append(p.Edges, Edge{Caller: k.caller, Callee: k.callee, Weight: w})
		}
		sort.Slice(p.Edges, func(i, j int) bool {
			if p.Edges[i].Caller != p.Edges[j].Caller {
				return p.Edges[i].Caller < p.Edges[j].Caller
			}
			return p.Edges[i].Callee < p.Edges[j].Callee
		})
	}
}

// New returns an empty profile with the schema set.
func New(source string) *Profile {
	return &Profile{SchemaV: Schema, Source: source}
}

// Write serializes the profile as indented JSON (the repo's house style for
// machine-readable records), in canonical order.
func Write(w io.Writer, p *Profile) error {
	p.normalize()
	data, err := json.MarshalIndent(p, "", "\t")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Read parses a profile written by Write, checks the schema, and normalizes
// the result (so hand-edited or merged-by-hand files are accepted as long
// as the schema matches).
func Read(r io.Reader) (*Profile, error) {
	var p Profile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	if p.SchemaV != Schema {
		return nil, fmt.Errorf("profile: schema %q, want %q", p.SchemaV, Schema)
	}
	for _, pc := range p.Procs {
		if pc.Name == "" {
			return nil, fmt.Errorf("profile: proc entry with empty name")
		}
	}
	for _, b := range p.Blocks {
		if b.Proc == "" {
			return nil, fmt.Errorf("profile: block entry with empty proc")
		}
		if b.Index < 0 {
			return nil, fmt.Errorf("profile: block %s has negative index %d", b.Proc, b.Index)
		}
	}
	for _, e := range p.Edges {
		if e.Caller == "" || e.Callee == "" {
			return nil, fmt.Errorf("profile: edge with empty endpoint (%q -> %q)", e.Caller, e.Callee)
		}
	}
	p.normalize()
	return &p, nil
}

// Validate checks every name in the profile against the program it is about
// to steer: known reports whether a procedure name exists in the target
// image or symbolic program. A stale profile (collected from a different
// program) fails here instead of silently mislaying code.
func (p *Profile) Validate(known func(name string) bool) error {
	for _, pc := range p.Procs {
		if !known(pc.Name) {
			return fmt.Errorf("profile: procedure %q not in the program (stale profile?)", pc.Name)
		}
	}
	for _, b := range p.Blocks {
		if !known(b.Proc) {
			return fmt.Errorf("profile: block counts for unknown procedure %q", b.Proc)
		}
	}
	for _, e := range p.Edges {
		if !known(e.Caller) {
			return fmt.Errorf("profile: call edge from unknown procedure %q", e.Caller)
		}
		if !known(e.Callee) {
			return fmt.Errorf("profile: call edge to unknown procedure %q", e.Callee)
		}
	}
	return nil
}

// ValidateNames is Validate against a fixed name set.
func (p *Profile) ValidateNames(names map[string]bool) error {
	return p.Validate(func(n string) bool { return names[n] })
}

// Merge combines profiles from multiple runs by summing counts. The result
// is deterministic: canonical order, independent of argument order (beyond
// the Source annotation when only one input is given).
func Merge(ps ...*Profile) *Profile {
	if len(ps) == 1 {
		out := *ps[0]
		out.normalize()
		return &out
	}
	out := New("merge")
	for _, p := range ps {
		out.Procs = append(out.Procs, p.Procs...)
		out.Blocks = append(out.Blocks, p.Blocks...)
		out.Edges = append(out.Edges, p.Edges...)
	}
	out.normalize()
	return out
}

// Hash returns the SHA-256 of the canonical serialization, for
// content-addressed caching of everything the profile influences.
func (p *Profile) Hash() string {
	h := sha256.New()
	if err := Write(h, p); err != nil {
		// json.Marshal on this struct cannot fail; keep the signature simple.
		panic(fmt.Sprintf("profile: hash: %v", err))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TrapBlock names one instrumented basic block: the shape of OM's block
// table (om.BlockInfo), declared here so the profile package does not
// depend on the optimizer it feeds.
type TrapBlock struct {
	// Proc is the enclosing procedure and Index the block's ordinal in it.
	Proc  string
	Index int
	// Calls names the procedures directly called from this block (known
	// direct or GAT-indirect call targets; unresolvable indirect calls are
	// absent).
	Calls []string
}

// FromTraps builds a profile from an instrumentation run: the block table
// OM returned for the instrumented image and the trap counts the simulator
// collected (sim.Result.Profile, keyed by block id = table index).
func FromTraps(blocks []TrapBlock, counts map[uint32]uint64) *Profile {
	p := New("trap")
	entries := make(map[string]uint64)
	weight := make(map[string]uint64)
	for id, b := range blocks {
		n := counts[uint32(id)]
		weight[b.Proc] += n
		if b.Index == 0 {
			entries[b.Proc] += n
		}
		if n == 0 {
			continue
		}
		p.Blocks = append(p.Blocks, BlockCount{Proc: b.Proc, Index: b.Index, Count: n})
		for _, callee := range b.Calls {
			p.Edges = append(p.Edges, Edge{Caller: b.Proc, Callee: callee, Weight: n})
		}
	}
	for name, w := range weight {
		if w == 0 && entries[name] == 0 {
			continue
		}
		p.Procs = append(p.Procs, ProcCount{Name: name, Entries: entries[name], Weight: w})
	}
	p.normalize()
	return p
}

// PCBlock is one engine-profiler record: a basic-block entry PC, the
// block's instruction count, and its execution count. It mirrors
// sim.BlockCount without importing the simulator.
type PCBlock struct {
	PC    uint64
	Len   int
	Count uint64
}

// FromImage builds a profile from an engine-profiler run against the image
// it executed: block PCs attribute to the covering procedure symbols, a
// block starting at the procedure entry (or the entry+8 local entry point
// past the GP-setup pair) counts as a procedure entry, and call edges come
// from decoding each counted block's terminating bsr. Calls still made
// through a jsr have no decodable callee and contribute no edge — profile
// an OM-optimized image (where calls are direct) for full edge coverage.
func FromImage(im *objfile.Image, blocks []PCBlock) (*Profile, error) {
	procs := make([]objfile.ImageSymbol, 0, len(im.Symbols))
	for _, s := range im.Symbols {
		if s.Kind == objfile.SymProc {
			procs = append(procs, s)
		}
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i].Addr < procs[j].Addr })
	covering := func(pc uint64) *objfile.ImageSymbol {
		i := sort.Search(len(procs), func(i int) bool { return procs[i].Addr > pc })
		if i == 0 {
			return nil
		}
		s := &procs[i-1]
		if pc >= s.Addr+s.Size {
			return nil
		}
		return s
	}

	p := New("engine")
	entries := make(map[string]uint64)
	weight := make(map[string]uint64)
	for _, b := range blocks {
		sym := covering(b.PC)
		if sym == nil {
			return nil, fmt.Errorf("profile: block pc %#x covered by no procedure symbol", b.PC)
		}
		weight[sym.Name] += b.Count
		if b.PC == sym.Addr || b.PC == sym.Addr+8 {
			entries[sym.Name] += b.Count
		}
		p.Blocks = append(p.Blocks, BlockCount{
			Proc: sym.Name, Index: int((b.PC - sym.Addr) / 4), Count: b.Count,
		})
		callee, ok, err := blockCallee(im, b.PC, b.Len)
		if err != nil {
			return nil, err
		}
		if ok {
			sym2 := covering(callee)
			if sym2 != nil {
				p.Edges = append(p.Edges, Edge{Caller: sym.Name, Callee: sym2.Name, Weight: b.Count})
			}
		}
	}
	for name, w := range weight {
		p.Procs = append(p.Procs, ProcCount{Name: name, Entries: entries[name], Weight: w})
	}
	p.normalize()
	return p, nil
}

// blockCallee decodes the last instruction of the block at pc; if it is a
// bsr call (RA-linked), it returns the callee entry address.
func blockCallee(im *objfile.Image, pc uint64, blockLen int) (uint64, bool, error) {
	if blockLen <= 0 {
		return 0, false, nil
	}
	last := pc + uint64(4*(blockLen-1))
	for _, seg := range im.TextSegments() {
		if last < seg.Addr || last+4 > seg.Addr+uint64(len(seg.Data)) {
			continue
		}
		word := uint32(seg.Data[last-seg.Addr]) |
			uint32(seg.Data[last-seg.Addr+1])<<8 |
			uint32(seg.Data[last-seg.Addr+2])<<16 |
			uint32(seg.Data[last-seg.Addr+3])<<24
		in, err := axp.Decode(word)
		if err != nil {
			return 0, false, fmt.Errorf("profile: decode at %#x: %w", last, err)
		}
		if in.Op == axp.BSR && in.Ra == axp.RA {
			return last + 4 + uint64(int64(in.Disp)*4), true, nil
		}
		return 0, false, nil
	}
	return 0, false, nil
}
