package dataflow

import (
	"fmt"

	"repro/internal/axp"
)

// VKind enumerates the abstract-value lattice for register contents.
type VKind uint8

const (
	// Bot: no information yet / unreachable.
	Bot VKind = iota
	// KConst: a known 64-bit constant (concrete addresses at image level).
	KConst
	// KAddr: the entry address of procedure N plus offset C (program
	// level, where text addresses are symbolic until emission).
	KAddr
	// KGP: the GP of cluster N plus byte offset C; a valid global pointer
	// is KGP with offset 0.
	KGP
	// KGPHi: the high half of a GP-establishing pair for cluster N has
	// executed; only the pair's low half can complete it.
	KGPHi
	// KRet: the return address of the call at instruction C of procedure
	// N (program level; at image level return addresses are constants).
	KRet
	// KInGP: whatever GP procedure N was entered with. Procedures that
	// never touch GP exit with this, making them GP-transparent at every
	// call site — the fact OM's reset deletion relies on.
	KInGP
	// Top: any value.
	Top
)

// Value is one point of the lattice.
type Value struct {
	Kind VKind
	N    int
	C    uint64
}

// String renders the value for findings and debugging.
func (v Value) String() string {
	switch v.Kind {
	case Bot:
		return "⊥"
	case KConst:
		return fmt.Sprintf("%#x", v.C)
	case KAddr:
		return fmt.Sprintf("proc%d+%d", v.N, int64(v.C))
	case KGP:
		return fmt.Sprintf("gp%d%+d", v.N, int64(v.C))
	case KGPHi:
		return fmt.Sprintf("gp%d:hi", v.N)
	case KRet:
		return fmt.Sprintf("ret(proc%d@%d)", v.N, v.C)
	case KInGP:
		return fmt.Sprintf("gp-in(proc%d)", v.N)
	}
	return "⊤"
}

var top = Value{Kind: Top}

// meet is the lattice meet: equal values survive, ⊥ is the identity,
// anything else degrades to ⊤.
func meet(a, b Value) Value {
	if a == b {
		return a
	}
	if a.Kind == Bot {
		return b
	}
	if b.Kind == Bot {
		return a
	}
	return top
}

// State is the abstract integer register file.
type State [axp.NumRegs]Value

func (s *State) get(r axp.Reg) Value {
	if r == axp.Zero {
		return Value{Kind: KConst}
	}
	return s[r]
}

func (s *State) set(r axp.Reg, v Value) {
	if r != axp.Zero {
		s[r] = v
	}
}

// meetInto merges o into s, reporting whether s changed.
func (s *State) meetInto(o *State) bool {
	changed := false
	for r := range s {
		if m := meet(s[r], o[r]); m != s[r] {
			s[r] = m
			changed = true
		}
	}
	return changed
}

// add applies pointer arithmetic to an abstract value.
func addVal(v Value, d int64) Value {
	switch v.Kind {
	case KConst, KAddr, KGP:
		v.C += uint64(d)
		return v
	case Bot:
		return v
	}
	return top
}

// interp is the interprocedural abstract interpretation: a fixpoint over
// procedure entry states (seeded with each procedure's calling contract)
// and exit-GP summaries, refined by the contributions of every resolved
// call site and the convention-driven fan-out of computed calls.
type interp struct {
	p *Program
	// entry[p][0] is the accumulated abstract state at the procedure
	// entry, entry[p][1] at the entry+8 local entry (pair procedures).
	entry [][2]State
	// exitGP[p] is the meet of the GP value at every return site.
	exitGP []Value
	// blockIn[p][b] is the final in-state of every block, kept for the
	// check pass.
	blockIn [][]State
	// reached[p][b]: block b has been entered by some round's worklist;
	// unreached blocks keep all-⊥ states and transfer nothing.
	reached [][]bool
	// needsGP[p]: GP is live into the procedure entry — the calling
	// contract includes a valid GP (deleted-prologue procedures).
	needsGP []bool
	// allExit caches the meet of every procedure's non-preserving exit GP
	// — the after-call GP of a fully unresolved computed call — and
	// anyPreserve records whether some procedure exits GP-transparent
	// (its contribution is the calling site's own GP).
	allExit     Value
	anyPreserve bool
}

func newInterp(p *Program) *interp {
	n := len(p.Procs)
	ip := &interp{
		p:       p,
		entry:   make([][2]State, n),
		exitGP:  make([]Value, n),
		blockIn: make([][]State, n),
		reached: make([][]bool, n),
		needsGP: make([]bool, n),
	}
	for i, pr := range p.Procs {
		ip.blockIn[i] = make([]State, len(pr.Blocks))
		ip.reached[i] = make([]bool, len(pr.Blocks))
		if len(pr.Blocks) > 0 {
			liveIn, _ := pr.Liveness()
			ip.needsGP[i] = liveIn[0].Int&(1<<axp.GP) != 0
		}
		// Seed the calling contract: PV holds the procedure's own entry
		// (the jsr convention the simulator also boots with) and GP is the
		// cluster's — every procedure is entered with a valid GP or
		// re-establishes one from PV before using it, so a procedure that
		// never writes GP exits with its cluster's value. That makes a
		// same-cluster call GP-transparent while a cross-cluster call
		// correctly demands the caller reset GP afterwards. A worse actual
		// caller meets the seed down to ⊤ and the checks see it; the seed
		// itself keeps never-called library procedures from reporting
		// vacuous violations.
		st := &ip.entry[i][0]
		for r := range st {
			st[r] = top
		}
		st.set(axp.PV, ip.selfAddr(i))
		if ip.needsGP[i] && pr.Cluster >= 0 {
			st.set(axp.GP, ip.gpOf(pr.Cluster))
		} else {
			// The procedure never consumes its caller's GP: track the
			// incoming value symbolically so preservation is visible to
			// every caller individually.
			st.set(axp.GP, Value{Kind: KInGP, N: i})
		}
		e8 := &ip.entry[i][1]
		if pr.PairAtEntry && len(pr.Code) > 2 {
			for r := range e8 {
				e8[r] = top
			}
			if pr.Cluster >= 0 {
				// entry+8 skips the pair: the caller shares the GP.
				e8.set(axp.GP, ip.gpOf(pr.Cluster))
			}
		}
	}
	return ip
}

// selfAddr is the abstract entry address of procedure i: symbolic at
// program level, concrete at image level.
func (ip *interp) selfAddr(i int) Value {
	if ip.p.Source == "image" {
		return Value{Kind: KConst, C: ip.p.Procs[i].Addr}
	}
	return Value{Kind: KAddr, N: i}
}

// gpOf is the abstract "valid GP of cluster k".
func (ip *interp) gpOf(k int) Value {
	if ip.p.GPValue != nil {
		return Value{Kind: KConst, C: ip.p.GPValue[k]}
	}
	return Value{Kind: KGP, N: k}
}

// solve iterates the whole program to a fixpoint. Every transfer is
// monotone over a finite-height lattice, so the round count is bounded by
// the call-graph depth times the lattice height; the cap is a safety net.
func (ip *interp) solve() {
	for round := 0; round < 1000; round++ {
		ip.allExit = Bottom()
		ip.anyPreserve = false
		for i := range ip.p.Procs {
			if ip.exitGP[i].Kind == KInGP {
				ip.anyPreserve = true
				continue
			}
			ip.allExit = meet(ip.allExit, ip.exitGP[i])
		}
		if !ip.analyzeAll() {
			return
		}
	}
}

// Bottom returns the ⊥ value.
func Bottom() Value { return Value{Kind: Bot} }

// analyzeAll runs one round over every procedure, reporting whether any
// entry state or exit summary changed.
func (ip *interp) analyzeAll() bool {
	changed := false
	for i := range ip.p.Procs {
		if ip.analyzeProc(i) {
			changed = true
		}
	}
	return changed
}

// analyzeProc runs the intra-procedure worklist to a local fixpoint,
// propagating call contributions and the exit summary. It reports whether
// any state outside the procedure changed.
func (ip *interp) analyzeProc(pi int) bool {
	pr := ip.p.Procs[pi]
	if len(pr.Blocks) == 0 {
		return false
	}
	in := ip.blockIn[pi]
	external := false

	// The worklist is seeded from the entry blocks (and every block a
	// previous round reached — call summaries may have refined since):
	// CFG-unreachable blocks are never processed, so their all-⊥ states
	// cannot pollute reachable successors.
	work := make([]bool, len(pr.Blocks))
	var queue []int
	push := func(b int) {
		if !work[b] {
			work[b] = true
			queue = append(queue, b)
		}
	}
	in[0].meetInto(&ip.entry[pi][0])
	push(0)
	if pr.PairAtEntry && len(pr.Code) > 2 {
		b8 := pr.blockOf[2]
		in[b8].meetInto(&ip.entry[pi][1])
		push(b8)
	}
	for b, r := range ip.reached[pi] {
		if r {
			push(b)
		}
	}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		work[b] = false
		ip.reached[pi][b] = true
		st := in[b]
		for i := pr.Blocks[b].Start; i < pr.Blocks[b].End; i++ {
			if ip.step(pi, i, &st) {
				external = true
			}
		}
		for _, s := range pr.Blocks[b].Succs {
			if in[s].meetInto(&st) || !ip.reached[pi][s] {
				push(s)
			}
		}
	}
	return external
}

// step applies instruction i of procedure pi to st, recording call
// contributions and exit summaries. It reports whether state outside the
// procedure changed.
func (ip *interp) step(pi, i int, st *State) bool {
	pr := ip.p.Procs[pi]
	inst := &pr.Code[i]
	in := inst.In

	// Unreached code (an all-⊥ state) transfers nothing.
	if inst.Call {
		return ip.stepCall(pi, i, st)
	}
	if inst.Ret {
		old := ip.exitGP[pi]
		ip.exitGP[pi] = meet(old, st.get(axp.GP))
		return ip.exitGP[pi] != old
	}
	if inst.Halt {
		return false
	}

	// Program-level GP pairs transfer as a unit: the displacements are
	// symbolic until emission, so the half's arithmetic is meaningless —
	// what matters is that the pair's base register holds the anchor the
	// pair was linked against.
	if inst.SetsGPHi >= 0 {
		base := st.get(in.Rb)
		ok := false
		if inst.GPAnchor >= 0 {
			// After-call pair: the base must be the anchored call's
			// return address.
			ok = base.Kind == KRet && base.N == pi && base.C == uint64(inst.GPAnchor)
		} else {
			// Prologue pair: the base (PV) must be this procedure's
			// entry.
			ok = base.Kind == KAddr && base.N == pi && base.C == 0
		}
		if base.Kind == Bot {
			st.set(axp.GP, Bottom())
		} else if ok {
			st.set(axp.GP, Value{Kind: KGPHi, N: inst.SetsGPHi})
		} else {
			st.set(axp.GP, top)
		}
		return false
	}
	if inst.SetsGP >= 0 {
		prev := st.get(in.Rb)
		if prev.Kind == KGPHi && prev.N == inst.SetsGP {
			st.set(axp.GP, Value{Kind: KGP, N: inst.SetsGP})
		} else if prev.Kind == Bot {
			st.set(axp.GP, Bottom())
		} else {
			st.set(axp.GP, top)
		}
		return false
	}

	if inst.LoadVal != nil {
		st.set(in.Writes(), *inst.LoadVal)
		return false
	}

	switch {
	case in.Op == axp.LDA:
		st.set(in.Ra, addVal(st.get(in.Rb), int64(in.Disp)))
	case in.Op == axp.LDAH:
		st.set(in.Ra, addVal(st.get(in.Rb), int64(in.Disp)*65536))
	case in.Op.IsLoad():
		if in.Op.Format() == axp.FormatMem {
			base := st.get(in.Rb)
			v := top
			if base.Kind == Bot {
				// ⊥ stays ⊥: a load off a not-yet-computed base must not
				// inject ⊤ into the descending fixpoint (call-site
				// contributions never rise back).
				v = Bottom()
			} else if base.Kind == KConst && ip.p.SlotValue != nil {
				if sv, ok := ip.p.SlotValue(base.C + uint64(int64(in.Disp))); ok {
					v = sv
				}
			}
			st.set(in.Ra, v)
		}
	case in.Op == axp.BIS && !in.HasLit && in.Ra == axp.Zero:
		// mov rb, rc
		st.set(in.Rc, st.get(in.Rb))
	case in.Op == axp.BIS && in.HasLit && in.Ra == axp.Zero:
		st.set(in.Rc, Value{Kind: KConst, C: uint64(in.Lit)})
	case (in.Op == axp.ADDQ || in.Op == axp.SUBQ) && in.HasLit:
		d := int64(in.Lit)
		if in.Op == axp.SUBQ {
			d = -d
		}
		st.set(in.Rc, addVal(st.get(in.Ra), d))
	case in.Op == axp.CALLPAL:
		if in.PalFn == axp.PalCycles {
			st.set(axp.V0, top)
		}
	case in.Op == axp.JMP:
		st.set(in.Ra, top)
	case in.Op.IsBranch():
		if r := in.Writes(); r != axp.Zero {
			st.set(r, top)
		}
	default:
		if r := in.Writes(); r != axp.Zero {
			st.set(r, top)
		}
	}
	return false
}

// stepCall resolves the call's targets, contributes the callee entry
// states, and applies the call's effect on the caller state.
func (ip *interp) stepCall(pi, i int, st *State) bool {
	pr := ip.p.Procs[pi]
	inst := &pr.Code[i]
	changed := false

	targets := inst.Targets
	fanned := false
	if len(targets) == 0 && inst.Fan {
		// Computed call: resolve through the abstract PV, falling back to
		// every procedure (the convention still guarantees the callee is
		// entered with PV = its own entry).
		pv := st.get(axp.PV)
		switch {
		case pv.Kind == KAddr && pv.C == 0:
			targets = []CallTarget{{Proc: pv.N}}
		case pv.Kind == KConst:
			if t, off := ip.p.ProcByAddr(pv.C); t >= 0 && off == 0 {
				targets = []CallTarget{{Proc: t}}
			} else {
				fanned = true
			}
		case pv.Kind == Bot:
			// Unreached call site: contribute nothing.
			targets = nil
		default:
			fanned = true
		}
	}

	gp := st.get(axp.GP)
	pv := st.get(axp.PV)
	contribute := func(t CallTarget, pvVal Value) {
		slot := 0
		if t.Off == 8 {
			slot = 1
		}
		var contrib State
		for r := range contrib {
			contrib[r] = top
		}
		if ip.needsGP[t.Proc] {
			// Only GP-consuming callees carry a GP contract to violate;
			// for the rest the symbolic entry seed stands untouched.
			contrib.set(axp.GP, gp)
		} else {
			contrib.set(axp.GP, Bottom())
		}
		contrib.set(axp.PV, pvVal)
		if ip.entry[t.Proc][slot].meetInto(&contrib) {
			changed = true
		}
	}

	afterGP := Bottom()
	if fanned {
		for t := range ip.p.Procs {
			contribute(CallTarget{Proc: t}, ip.selfAddr(t))
		}
		afterGP = ip.allExit
		if ip.anyPreserve {
			afterGP = meet(afterGP, gp)
		}
	} else {
		for _, t := range targets {
			pvc := pv
			if t.Off == 8 {
				// The local entry skips the pair; PV carries no contract.
				pvc = top
			}
			contribute(t, pvc)
			ex := ip.exitGP[t.Proc]
			if ex.Kind == KInGP {
				// The callee hands back whatever this site passed in.
				ex = gp
			}
			afterGP = meet(afterGP, ex)
		}
	}

	// The call's effect in the caller: callee-saved registers survive,
	// the return address is the call's own, GP is whatever the callees
	// exit with, everything else is clobbered.
	var post State
	for r := range post {
		post[r] = top
	}
	for _, r := range []axp.Reg{axp.S0, axp.S1, axp.S2, axp.S3, axp.S4, axp.S5, axp.FP, axp.SP} {
		post[r] = st.get(r)
	}
	post.set(axp.GP, afterGP)
	if ip.p.Source == "image" {
		post.set(axp.RA, Value{Kind: KConst, C: inst.Addr + 4})
	} else {
		post.set(axp.RA, Value{Kind: KRet, N: pi, C: uint64(i)})
	}
	*st = post
	return changed
}
