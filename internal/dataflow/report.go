package dataflow

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Schema identifies the findings document format.
const Schema = "om-lint/v1"

// Finding is one reported check result.
type Finding struct {
	ID       string   `json:"id"`
	Check    string   `json:"check"`
	Severity Severity `json:"severity"`
	Proc     string   `json:"proc"`
	// Addr locates the instruction (exact at image level, the layout
	// estimate at program level).
	Addr   uint64 `json:"addr"`
	Detail string `json:"detail"`
}

// String renders the finding in the one-line text form omlint prints.
func (f Finding) String() string {
	return fmt.Sprintf("%s %s %s +%#x: %s", f.ID, f.Check, f.Proc, f.Addr, f.Detail)
}

// Report is an om-lint/v1 findings document: what was analyzed, how many
// check sites were evaluated, and every finding.
type Report struct {
	Schema string `json:"schema"`
	// Source is "prog" (OM's symbolic form) or "image" (a linked
	// executable).
	Source string `json:"source"`
	// Stage distinguishes pre- and post-optimization program-level runs
	// ("lifted", "optimized"; empty for images).
	Stage  string `json:"stage,omitempty"`
	Procs  int    `json:"procs"`
	Blocks int    `json:"blocks"`
	Insts  int    `json:"insts"`
	// Checked counts evaluated check sites; a clean report proves that
	// many sites, it is not merely the absence of output.
	Checked  uint64    `json:"checked"`
	Findings []Finding `json:"findings"`
}

// add appends a finding for check id, resolving its catalog entry.
func (r *Report) add(f Finding) {
	if f.Check == "" {
		ci := checkInfo(f.ID)
		f.Check, f.Severity = ci.Name, ci.Severity
	}
	r.Findings = append(r.Findings, f)
}

// sort orders findings by procedure address, then check ID, for stable
// output across runs.
func (r *Report) sort() {
	sort.Slice(r.Findings, func(i, j int) bool {
		a, b := r.Findings[i], r.Findings[j]
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		return a.Detail < b.Detail
	})
}

// Errors counts error-severity findings — the number a lint gate fails on.
func (r *Report) Errors() int {
	n := 0
	for _, f := range r.Findings {
		if f.Severity == SevError {
			n++
		}
	}
	return n
}

// ByID tallies findings per check ID.
func (r *Report) ByID() map[string]int {
	m := make(map[string]int)
	for _, f := range r.Findings {
		m[f.ID]++
	}
	return m
}

// Write emits the document as indented JSON in the repository's house
// style.
func (r *Report) Write(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "\t")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// ReadReport parses an om-lint/v1 document.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, err
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("dataflow: document schema %q, want %q", r.Schema, Schema)
	}
	return &r, nil
}
