// Package dataflow is the static whole-program analysis layer of the
// link-time optimizer: it proves, without executing anything, the dataflow
// facts OM's address-calculation rewrites rely on and that the verify
// package witnesses dynamically (translation validation needs a decision
// journal, differential execution needs a simulator run — both are
// O(execution); this package is O(image)).
//
// The framework operates over one unified program model with two
// front-ends: FromProg lifts OM's symbolic form (om.Proc/om.SInst, before
// or after the optimization passes), and FromImage decodes a final linked
// executable. Over that model it builds a control-flow graph per procedure
// (basic blocks; branch, bsr and jsr edges including GAT-indirect calls;
// the computed-branch fallback to "all labels"), runs the classic
// iterative dataflow analyses (reaching definitions, liveness,
// dominators), and runs an interprocedural abstract interpretation of
// register contents over a small lattice (⊥, GP-of-cluster-k plus offset,
// procedure-address plus offset, constant, ⊤). The checks (DF001…) consume
// those results and report findings with stable IDs and severities in an
// om-lint/v1 document.
package dataflow

import (
	"fmt"

	"repro/internal/axp"
)

// CallTarget is one resolved callee of a call instruction.
type CallTarget struct {
	// Proc indexes Program.Procs.
	Proc int
	// Off is the byte offset of the entry used: 0 for the full entry, 8
	// for the local entry past the GP-establishing pair.
	Off uint64
}

// Inst is one instruction of the unified model. The front-ends precompute
// every fact whose derivation differs between the symbolic and the image
// level, so the CFG builder, the solvers, and the interpreter are shared.
type Inst struct {
	In axp.Inst

	// Addr is the instruction's address: exact at image level, the layout
	// plan's estimate at program level.
	Addr uint64

	// BranchTo is the intra-procedure branch target as an instruction
	// index, or -1 (calls, returns, computed branches, targets outside
	// the procedure).
	BranchTo int
	// HasLabel marks branch-target instructions at program level; the
	// computed-branch fallback fans out to labeled blocks. Image-level
	// code has no labels, so there the fallback is every block leader.
	HasLabel bool

	// Call marks a control transfer that saves a return address (bsr,
	// jsr). Targets lists the resolved callees; an empty list with Fan
	// set means the callee is computed: the interpreter resolves it from
	// the abstract PV value, falling back to every procedure.
	Call    bool
	Targets []CallTarget
	Fan     bool
	// Ret and Halt terminate a procedure (ret; call_pal HALT).
	Ret  bool
	Halt bool

	// SetsGP marks the instruction that completes a GP-establishing pair
	// for cluster SetsGP (the low half), SetsGPHi the half that starts it.
	// Both are -1 otherwise. Program level only: there the pair's
	// displacements are symbolic (emission recomputes them), so the
	// interpreter models the pair as a unit; at image level the pair is
	// ordinary ldah/lda arithmetic on concrete values.
	SetsGP   int
	SetsGPHi int
	// GPAnchor, for an after-call pair's high half, is the instruction
	// index of the call whose return address the pair is anchored to;
	// -1 for a prologue (entry) pair.
	GPAnchor int

	// LoadVal, when non-nil, is the abstract value this instruction
	// produces regardless of its operands (program-level GAT address
	// loads and their lda/ldah conversions, whose result the layout plan
	// determines).
	LoadVal *Value

	// LitLoad marks a live GAT address load (an omlint check site);
	// LitSlotOK records the front-end's slot audit: the slot exists, its
	// displacement is encodable, and (image level) its content is a
	// plausible address.
	LitLoad   bool
	LitSlotOK bool
	// LitDetail carries the front-end's description of a failed slot
	// audit.
	LitDetail string
}

// Proc is one procedure of the unified model.
type Proc struct {
	Name string
	// Addr is the entry address (layout estimate at program level).
	Addr uint64
	// Cluster is the GP cluster (GAT index) the procedure's code expects,
	// or -1 if unknown.
	Cluster int
	// PairAtEntry: a GP-establishing ldah/lda pair occupies Code[0] and
	// Code[1], making entry+8 a valid local entry point.
	PairAtEntry bool
	Code        []Inst

	// Blocks is the procedure's CFG, filled by BuildCFG.
	Blocks []Block
	// blockOf maps an instruction index to its block index.
	blockOf []int
}

// Program is the unified whole-program model both front-ends produce.
type Program struct {
	// Source identifies the front-end: "prog" or "image".
	Source string
	Procs  []*Proc
	// Clusters is the number of GP clusters (global address tables).
	Clusters int
	// GPValue is the concrete GP of each cluster (image level; nil at
	// program level, where GP values are symbolic).
	GPValue []uint64
	// SlotValue resolves a concrete address to the abstract content of a
	// GAT slot (image level; nil at program level, where GAT loads carry
	// LoadVal instead).
	SlotValue func(addr uint64) (Value, bool)
	// Extra carries findings the front-end established structurally
	// (e.g. DF008 dangling symbolic links), merged into the report.
	Extra []Finding
}

// ProcByAddr returns the index of the procedure whose entry is addr, and
// the entry offset (0 or 8) when addr is its local entry; -1 otherwise.
func (p *Program) ProcByAddr(addr uint64) (int, uint64) {
	for i, pr := range p.Procs {
		if addr == pr.Addr {
			return i, 0
		}
		if addr == pr.Addr+8 && pr.PairAtEntry {
			return i, 8
		}
	}
	return -1, 0
}

// Severity grades a finding.
type Severity string

const (
	// SevError findings are violated invariants: the image (or symbolic
	// program) is statically provably broken, or cannot be proven sound.
	SevError Severity = "error"
	// SevInfo findings are missed-optimization and code-quality reports;
	// they never fail a lint run.
	SevInfo Severity = "info"
)

// CheckInfo describes one check of the catalog.
type CheckInfo struct {
	ID       string   `json:"id"`
	Name     string   `json:"name"`
	Severity Severity `json:"severity"`
	Doc      string   `json:"doc"`
}

// Checks returns the stable check catalog.
func Checks() []CheckInfo {
	return []CheckInfo{
		{"DF001", "gp-clobbered-before-use", SevError,
			"every instruction that reads GP must see the GP value of its procedure's cluster: the abstract GP at the use must be GP-of-cluster-k (program level) or the procedure's concrete GP (image level); catches clobbered GP, missing GP resets after cross-cluster calls, resets anchored to a stale return address, and prologues entered with a wrong procedure value"},
		{"DF002", "dead-literal-load", SevInfo,
			"a GAT address load whose result register is dead (not live-out under the conservative call-reads-all model): a missed address-optimization opportunity"},
		{"DF003", "unreachable-block", SevInfo,
			"a basic block with no CFG path from its procedure's entry points"},
		{"DF004", "redundant-gp-reset", SevInfo,
			"an after-call GP-establishing pair whose incoming GP is already the procedure's own: OM-full's GP-reset optimization would remove it (program level only)"},
		{"DF005", "out-of-range-bsr", SevError,
			"a direct call's displacement must fit the branch format's signed 21-bit word window, and an entry+8 local-entry call requires the callee's GP pair to occupy its first two slots"},
		{"DF006", "use-before-def", SevError,
			"a register read reached by no definition on any path from the procedure entry (calls define every register; argument, callee-saved, and linkage registers are defined at entry)"},
		{"DF007", "gat-slot-broken", SevError,
			"a GAT address load must name an existing slot within the 16-bit displacement window of its cluster's GP, and (image level) the slot must hold an address inside the image — a text address only at a procedure entry"},
		{"DF008", "dangling-link", SevError,
			"an instruction still consumes the register of a GAT address load that was deleted or nullified without the use being rewritten (program level only; this is the invariant OM's passes must preserve and the one the fault-injection hook breaks)"},
	}
}

// checkInfo resolves an ID; it panics on catalog drift, which the tests pin.
func checkInfo(id string) CheckInfo {
	for _, c := range Checks() {
		if c.ID == id {
			return c
		}
	}
	panic(fmt.Sprintf("dataflow: unknown check %s", id))
}

// Analyze runs the full pipeline over an already-built model: CFG
// construction, the iterative solvers, the interprocedural abstract
// interpretation, and every check in the catalog.
func Analyze(p *Program) *Report {
	rep := &Report{Schema: Schema, Source: p.Source, Procs: len(p.Procs)}
	for _, pr := range p.Procs {
		pr.BuildCFG()
		rep.Blocks += len(pr.Blocks)
		rep.Insts += len(pr.Code)
	}
	ip := newInterp(p)
	ip.solve()
	runChecks(p, ip, rep)
	for _, f := range p.Extra {
		rep.add(f)
	}
	rep.sort()
	return rep
}
