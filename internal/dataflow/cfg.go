package dataflow

import "repro/internal/axp"

// Block is one basic block: the half-open instruction range [Start, End)
// and its successor blocks. A terminator with no successors (ret, halt, a
// branch leaving the procedure) ends the procedure.
type Block struct {
	Start, End int
	Succs      []int
}

// BuildCFG partitions the procedure into basic blocks and wires the edges.
//
// Leaders are: instruction 0; instruction 2 when a GP pair occupies the
// entry (the entry+8 local entry point callers can branch to); every
// branch target; and every instruction following a control transfer.
// Calls (bsr, jsr) end their block with a fallthrough edge — the call
// returns — while ret and call_pal HALT end it with none. A computed
// branch (jmp) falls back to "all labels": every labeled block at program
// level, every block at image level, the conservative over-approximation
// the paper's whole-program view requires.
func (pr *Proc) BuildCFG() {
	n := len(pr.Code)
	pr.Blocks = nil
	pr.blockOf = make([]int, n)
	if n == 0 {
		return
	}

	leader := make([]bool, n)
	leader[0] = true
	if pr.PairAtEntry && n > 2 {
		leader[2] = true
	}
	ends := func(in axp.Inst) bool {
		return in.Op.IsBranch() || in.Op.IsJump() ||
			(in.Op == axp.CALLPAL && in.PalFn == axp.PalHalt)
	}
	for i := range pr.Code {
		if t := pr.Code[i].BranchTo; t >= 0 && t < n {
			leader[t] = true
		}
		if ends(pr.Code[i].In) && i+1 < n {
			leader[i+1] = true
		}
	}

	for i := 0; i < n; i++ {
		if !leader[i] {
			continue
		}
		end := i + 1
		for end < n && !leader[end] {
			end++
		}
		b := len(pr.Blocks)
		pr.Blocks = append(pr.Blocks, Block{Start: i, End: end})
		for j := i; j < end; j++ {
			pr.blockOf[j] = b
		}
		i = end - 1
	}

	// The computed-branch fallback target set.
	known := pr.labelsKnown()
	var fallback []int
	for b := range pr.Blocks {
		lead := &pr.Code[pr.Blocks[b].Start]
		if known && !lead.HasLabel {
			continue
		}
		fallback = append(fallback, b)
	}

	for b := range pr.Blocks {
		blk := &pr.Blocks[b]
		last := &pr.Code[blk.End-1]
		in := last.In
		next := -1
		if blk.End < n {
			next = pr.blockOf[blk.End]
		}
		switch {
		case last.Ret || last.Halt:
			// No successors.
		case last.Call:
			// bsr/jsr: the callee returns to the next instruction.
			if next >= 0 {
				blk.Succs = append(blk.Succs, next)
			}
		case in.Op == axp.JMP:
			blk.Succs = append(blk.Succs, fallback...)
		case in.Op.IsBranch() && !in.Op.IsCondBranch():
			// Unconditional br: target only (or procedure exit when the
			// target is outside).
			if last.BranchTo >= 0 {
				blk.Succs = append(blk.Succs, pr.blockOf[last.BranchTo])
			}
		case in.Op.IsCondBranch():
			if last.BranchTo >= 0 {
				blk.Succs = append(blk.Succs, pr.blockOf[last.BranchTo])
			}
			if next >= 0 {
				blk.Succs = append(blk.Succs, next)
			}
		default:
			// Plain fallthrough into the next leader (or off the end).
			if next >= 0 {
				blk.Succs = append(blk.Succs, next)
			}
		}
	}
}

// labelsKnown reports whether the procedure carries label information
// (program level); without it the computed-branch fallback must include
// every block.
func (pr *Proc) labelsKnown() bool {
	for i := range pr.Code {
		if pr.Code[i].HasLabel {
			return true
		}
	}
	return false
}

// BlockOf returns the block index containing instruction i.
func (pr *Proc) BlockOf(i int) int { return pr.blockOf[i] }

// Entries returns the block indexes control can enter the procedure at:
// block 0, plus the entry+8 block when a GP pair occupies the entry.
func (pr *Proc) Entries() []int {
	if len(pr.Blocks) == 0 {
		return nil
	}
	es := []int{0}
	if pr.PairAtEntry && len(pr.Code) > 2 {
		if b := pr.blockOf[2]; b != 0 {
			es = append(es, b)
		}
	}
	return es
}

// Reachable marks the blocks reachable from the procedure's entry points.
func (pr *Proc) Reachable() []bool {
	seen := make([]bool, len(pr.Blocks))
	var stack []int
	for _, e := range pr.Entries() {
		if !seen[e] {
			seen[e] = true
			stack = append(stack, e)
		}
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range pr.Blocks[b].Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}
