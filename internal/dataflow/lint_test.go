package dataflow

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/link"
	"repro/internal/objfile"
	"repro/internal/om"
	"repro/internal/rtlib"
	"repro/internal/tcc"
)

// lintFixture exercises every address-calculation shape the checks prove:
// global data in several sections, direct and indirect calls through the
// runtime, floating-point literals, and enough procedures to populate the
// call graph.
const lintFixture = `
long table[40];
long sum = 0;
double ratio = 1.5;
long pad[6];

long down(long a, long b) { return b - a; }

static long twist(long v) { return v * 5 + 1; }

long fill(long n) {
	long i;
	for (i = 0; i < n; i = i + 1) {
		table[i] = lhash(i + 3) % 89 + twist(i);
		sum = sum + table[i];
	}
	return sum;
}

long main() {
	fill(40);
	qsort8(table, 0, 39, down);
	print(issorted(table, 40, down));
	print(sum);
	print_fixed(ratio * 4.0);
	pad[2] = sum % 500;
	print(pad[2] + table[0]);
	return 0;
}
`

func fixtureObjects(t *testing.T) []*objfile.Object {
	t.Helper()
	obj, err := tcc.Compile("prog", []tcc.Source{{Name: "prog", Text: lintFixture}}, tcc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	lib, err := rtlib.StandardObjects()
	if err != nil {
		t.Fatal(err)
	}
	return append([]*objfile.Object{obj}, lib...)
}

// TestImageCleanAcrossLevels is the acceptance criterion's golden half:
// every optimization level's image analyzes to zero error findings.
func TestImageCleanAcrossLevels(t *testing.T) {
	objs := fixtureObjects(t)
	for _, lvl := range []om.Level{om.LevelNone, om.LevelSimple, om.LevelFull} {
		for _, sched := range []bool{false, true} {
			p, err := link.Merge(objs)
			if err != nil {
				t.Fatal(err)
			}
			res, err := om.Run(context.Background(), p,
				om.WithLevel(lvl), om.WithSchedule(sched))
			if err != nil {
				t.Fatal(err)
			}
			rep, err := AnalyzeImage(res.Image)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Errors() != 0 {
				for _, f := range rep.Findings {
					if f.Severity == SevError {
						t.Errorf("%v sched=%v: %s", lvl, sched, f.String())
					}
				}
				t.Fatalf("%v sched=%v: %d static errors on a golden image", lvl, sched, rep.Errors())
			}
			if rep.Checked == 0 {
				t.Fatalf("%v sched=%v: clean report proved zero check sites", lvl, sched)
			}
			if rep.Source != "image" {
				t.Fatalf("image report source %q", rep.Source)
			}
		}
	}
}

// TestProgObserverStages analyzes the symbolic form at both observer
// stages: the lifted program carries the redundant GP resets OM-full
// removes (the missed-optimization report), and both stages stay free of
// error findings.
func TestProgObserverStages(t *testing.T) {
	objs := fixtureObjects(t)
	p, err := link.Merge(objs)
	if err != nil {
		t.Fatal(err)
	}
	reports := map[om.ProgStage]*Report{}
	_, err = om.Run(context.Background(), p, om.WithLevel(om.LevelFull),
		om.WithProgObserver(func(stage om.ProgStage, pg *om.Prog, pl *om.Plan) error {
			rep, err := AnalyzeProg(pg, pl, string(stage))
			if err != nil {
				return err
			}
			reports[stage] = rep
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	lifted, optimized := reports[om.StageLifted], reports[om.StageOptimized]
	if lifted == nil || optimized == nil {
		t.Fatalf("observer stages missing: %v", reports)
	}
	for stage, rep := range reports {
		if rep.Errors() != 0 {
			for _, f := range rep.Findings {
				t.Logf("%s: %s", stage, f.String())
			}
			t.Fatalf("stage %s: %d error findings on a correct program", stage, rep.Errors())
		}
		if rep.Stage != string(stage) {
			t.Fatalf("report stage %q, want %q", rep.Stage, stage)
		}
	}
	// OM-full's GP-reset optimization removes what DF004 flags: the lifted
	// program must carry redundant resets and the optimized one must not.
	if n := lifted.ByID()["DF004"]; n == 0 {
		t.Fatal("lifted program reports no redundant GP resets to optimize")
	}
	if n := optimized.ByID()["DF004"]; n != 0 {
		t.Fatalf("optimized program still reports %d redundant GP resets", n)
	}
}

// TestFaultHookCaughtStatically is the acceptance criterion's adversarial
// half: the fault-injection hook (a kept address load silently deleted
// after the passes) must be caught by the program-level analysis alone —
// no simulator, no decision journal.
func TestFaultHookCaughtStatically(t *testing.T) {
	restore := om.SetFaultHookForTesting(func(pg *om.Prog) {
		for _, pr := range pg.Procs {
			for _, si := range pr.Insts {
				if si.Lit != nil && !si.Lit.Converted && !si.Lit.Nullified && !si.Deleted {
					si.Deleted = true
					return
				}
			}
		}
	})
	defer restore()

	objs := fixtureObjects(t)
	p, err := link.Merge(objs)
	if err != nil {
		t.Fatal(err)
	}
	var post *Report
	_, err = om.Run(context.Background(), p, om.WithLevel(om.LevelFull),
		om.WithProgObserver(func(stage om.ProgStage, pg *om.Prog, pl *om.Plan) error {
			if stage != om.StageOptimized {
				return nil
			}
			rep, err := AnalyzeProg(pg, pl, string(stage))
			if err != nil {
				return err
			}
			post = rep
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if post == nil {
		t.Fatal("optimized-stage observer never fired")
	}
	if post.Errors() == 0 {
		t.Fatal("static analysis missed the injected fault")
	}
	if post.ByID()["DF008"] == 0 {
		t.Fatalf("fault not attributed to DF008 dangling-link: %v", post.ByID())
	}
}

// TestCheckCatalog pins the stable check IDs: removing or re-grading a
// check is a findings-document compatibility break.
func TestCheckCatalog(t *testing.T) {
	want := map[string]Severity{
		"DF001": SevError,
		"DF002": SevInfo,
		"DF003": SevInfo,
		"DF004": SevInfo,
		"DF005": SevError,
		"DF006": SevError,
		"DF007": SevError,
		"DF008": SevError,
	}
	got := Checks()
	if len(got) != len(want) {
		t.Fatalf("catalog has %d checks, want %d", len(got), len(want))
	}
	for _, c := range got {
		sev, ok := want[c.ID]
		if !ok {
			t.Fatalf("unknown check %s in catalog", c.ID)
		}
		if c.Severity != sev {
			t.Fatalf("check %s severity %s, want %s", c.ID, c.Severity, sev)
		}
		if c.Name == "" || c.Doc == "" {
			t.Fatalf("check %s missing name or doc", c.ID)
		}
	}
}

func TestReportRoundTrip(t *testing.T) {
	objs := fixtureObjects(t)
	p, err := link.Merge(objs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := om.Run(context.Background(), p, om.WithLevel(om.LevelSimple))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeImage(res.Image)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || got.Checked != rep.Checked ||
		len(got.Findings) != len(rep.Findings) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, rep)
	}
	// A wrong schema must be rejected.
	if _, err := ReadReport(bytes.NewBufferString(`{"schema":"nope/v9"}`)); err == nil {
		t.Fatal("foreign schema accepted")
	}
}
