package dataflow

import (
	"math/rand"
	"testing"

	"repro/internal/axp"
)

// synth builds a procedure from instructions with precomputed edge facts,
// the way a front-end would, and runs the CFG builder.
func synth(t *testing.T, insts ...Inst) *Proc {
	t.Helper()
	pr := &Proc{Name: "synth", Addr: 0x1000, Cluster: 0, Code: insts}
	for i := range pr.Code {
		pr.Code[i].Addr = pr.Addr + uint64(4*i)
		if pr.Code[i].SetsGP == 0 {
			pr.Code[i].SetsGP = -1
		}
		if pr.Code[i].SetsGPHi == 0 {
			pr.Code[i].SetsGPHi = -1
		}
	}
	pr.BuildCFG()
	return pr
}

// branch constructs a branch instruction with a resolved in-procedure
// target index.
func branch(op axp.Op, to int) Inst {
	return Inst{In: axp.BranchInst(op, axp.Zero, 0), BranchTo: to}
}

func ret() Inst {
	return Inst{In: axp.JumpInst(axp.RET, axp.Zero, axp.RA), Ret: true}
}

func TestCFGEmptyProc(t *testing.T) {
	pr := &Proc{Name: "empty"}
	pr.BuildCFG()
	if len(pr.Blocks) != 0 {
		t.Fatalf("empty procedure produced %d blocks", len(pr.Blocks))
	}
	if got := pr.Entries(); got != nil {
		t.Fatalf("empty procedure has entries %v", got)
	}
	if r := pr.Reachable(); len(r) != 0 {
		t.Fatalf("empty procedure has reachability %v", r)
	}
	// The whole pipeline must tolerate it too.
	p := &Program{Source: "prog", Procs: []*Proc{pr}, Clusters: 1}
	rep := Analyze(p)
	if len(rep.Findings) != 0 {
		t.Fatalf("empty procedure produced findings: %v", rep.Findings)
	}
}

func TestCFGSelfLoop(t *testing.T) {
	// B0: nop; B1: beq self; B2: ret.
	pr := synth(t,
		Inst{In: axp.Nop()},
		branch(axp.BEQ, 1),
		ret(),
	)
	if len(pr.Blocks) != 3 {
		t.Fatalf("got %d blocks, want 3: %+v", len(pr.Blocks), pr.Blocks)
	}
	b1 := pr.Blocks[1]
	want := map[int]bool{1: true, 2: true}
	if len(b1.Succs) != 2 || !want[b1.Succs[0]] || !want[b1.Succs[1]] {
		t.Fatalf("self-loop block has succs %v, want {1,2}", b1.Succs)
	}
}

func TestCFGFallthroughIntoLabel(t *testing.T) {
	// Straight-line code where instruction 2 is a branch target: the
	// fallthrough from the first block must land on the labeled leader.
	pr := synth(t,
		Inst{In: axp.Nop()},
		Inst{In: axp.Nop()},
		Inst{In: axp.Nop(), HasLabel: true}, // target of the later branch
		branch(axp.BNE, 2),
		ret(),
	)
	if pr.BlockOf(2) == pr.BlockOf(1) {
		t.Fatalf("labeled instruction 2 shares block %d with instruction 1", pr.BlockOf(1))
	}
	b0 := pr.Blocks[pr.BlockOf(0)]
	if len(b0.Succs) != 1 || b0.Succs[0] != pr.BlockOf(2) {
		t.Fatalf("entry block succs %v, want fallthrough into labeled block %d",
			b0.Succs, pr.BlockOf(2))
	}
}

func TestCFGEndsInUnconditionalBranch(t *testing.T) {
	// A procedure whose last instruction is `br` back to the top: no
	// fallthrough off the end, and everything stays reachable.
	pr := synth(t,
		Inst{In: axp.Nop()},
		Inst{In: axp.Nop()},
		branch(axp.BR, 0),
	)
	last := pr.Blocks[len(pr.Blocks)-1]
	if len(last.Succs) != 1 || last.Succs[0] != 0 {
		t.Fatalf("trailing br block has succs %v, want [0]", last.Succs)
	}
	for b, ok := range pr.Reachable() {
		if !ok {
			t.Fatalf("block %d unreachable in a single loop", b)
		}
	}

	// A trailing br that leaves the procedure (target unresolved) must end
	// the CFG with no successors rather than fall off the end.
	pr = synth(t,
		Inst{In: axp.Nop()},
		branch(axp.BR, -1),
	)
	last = pr.Blocks[len(pr.Blocks)-1]
	if len(last.Succs) != 0 {
		t.Fatalf("procedure-exiting br has succs %v, want none", last.Succs)
	}
}

func TestCFGIndirectCallFanout(t *testing.T) {
	// A GAT-indirect jsr: a call edge-wise (fallthrough to the return
	// point), with the callee fan resolved by the interpreter, not the CFG.
	pr := synth(t,
		Inst{In: axp.MemInst(axp.LDQ, axp.PV, axp.GP, -32656)},
		Inst{In: axp.JumpInst(axp.JSR, axp.RA, axp.PV), Call: true, Fan: true, BranchTo: -1},
		Inst{In: axp.Nop()},
		ret(),
	)
	call := pr.Blocks[pr.BlockOf(1)]
	if len(call.Succs) != 1 || call.Succs[0] != pr.BlockOf(2) {
		t.Fatalf("jsr block succs %v, want fallthrough [%d]", call.Succs, pr.BlockOf(2))
	}
}

func TestCFGComputedBranchFanout(t *testing.T) {
	// A computed jmp at program level fans out to the labeled blocks only;
	// without label information (image level) it fans to every block.
	mk := func(labeled bool) *Proc {
		target := Inst{In: axp.Nop()}
		target.HasLabel = labeled
		return synth(t,
			Inst{In: axp.JumpInst(axp.JMP, axp.Zero, axp.T0), BranchTo: -1},
			target,
			ret(),
		)
	}
	pr := mk(true)
	jmp := pr.Blocks[pr.BlockOf(0)]
	if len(jmp.Succs) != 1 || jmp.Succs[0] != pr.BlockOf(1) {
		t.Fatalf("labeled fan: jmp succs %v, want [%d]", jmp.Succs, pr.BlockOf(1))
	}
	pr = mk(false)
	jmp = pr.Blocks[pr.BlockOf(0)]
	if len(jmp.Succs) != len(pr.Blocks) {
		t.Fatalf("unlabeled fan: jmp succs %v, want all %d blocks", jmp.Succs, len(pr.Blocks))
	}
}

func TestCFGEntryPair(t *testing.T) {
	pr := &Proc{Name: "paired", Addr: 0x2000, Cluster: 0, PairAtEntry: true, Code: []Inst{
		{In: axp.MemInst(axp.LDAH, axp.GP, axp.PV, 8192), SetsGPHi: 0, SetsGP: -1, GPAnchor: -1},
		{In: axp.MemInst(axp.LDA, axp.GP, axp.GP, 0), SetsGP: 0, SetsGPHi: -1},
		{In: axp.Nop(), SetsGP: -1, SetsGPHi: -1},
		ret(),
	}}
	pr.BuildCFG()
	es := pr.Entries()
	if len(es) != 2 || es[0] != 0 || es[1] != pr.BlockOf(2) {
		t.Fatalf("paired entries %v, want [0 %d]", es, pr.BlockOf(2))
	}
}

// TestCFGProperties is the structural property test: over randomized
// instruction streams, every instruction lands in exactly one block, every
// edge targets a block leader, and block ranges tile the code.
func TestCFGProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		code := make([]Inst, n)
		for i := range code {
			switch rng.Intn(8) {
			case 0:
				code[i] = branch(axp.BEQ, rng.Intn(n))
			case 1:
				code[i] = branch(axp.BR, rng.Intn(n))
			case 2:
				code[i] = Inst{In: axp.JumpInst(axp.JSR, axp.RA, axp.PV),
					Call: true, Fan: true, BranchTo: -1}
			case 3:
				code[i] = ret()
			case 4:
				code[i] = Inst{In: axp.JumpInst(axp.JMP, axp.Zero, axp.T0), BranchTo: -1}
			default:
				code[i] = Inst{In: axp.Nop()}
			}
		}
		// Mark the branch targets as labeled, as a front-end would.
		for i := range code {
			if t := code[i].BranchTo; t >= 0 {
				code[t].HasLabel = true
			}
		}
		pr := synth(t, code...)

		// Blocks tile [0, n): contiguous, non-overlapping, covering.
		at := 0
		for b, blk := range pr.Blocks {
			if blk.Start != at || blk.End <= blk.Start {
				t.Fatalf("trial %d: block %d spans [%d,%d), want start %d",
					trial, b, blk.Start, blk.End, at)
			}
			at = blk.End
			for j := blk.Start; j < blk.End; j++ {
				if pr.BlockOf(j) != b {
					t.Fatalf("trial %d: instruction %d maps to block %d, inside block %d",
						trial, j, pr.BlockOf(j), b)
				}
			}
		}
		if at != n {
			t.Fatalf("trial %d: blocks cover [0,%d), code has %d instructions", trial, at, n)
		}

		// Every edge targets a leader.
		leaders := make(map[int]bool, len(pr.Blocks))
		for _, blk := range pr.Blocks {
			leaders[blk.Start] = true
		}
		for b, blk := range pr.Blocks {
			for _, s := range blk.Succs {
				if s < 0 || s >= len(pr.Blocks) {
					t.Fatalf("trial %d: block %d has out-of-range successor %d", trial, b, s)
				}
				if !leaders[pr.Blocks[s].Start] {
					t.Fatalf("trial %d: successor %d does not start at a leader", trial, s)
				}
			}
		}
	}
}
