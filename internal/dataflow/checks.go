package dataflow

import (
	"fmt"

	"repro/internal/axp"
)

// entryDefined are the integer registers a procedure may read without a
// prior definition: the value/argument registers, the callee-saved set it
// must preserve (reading them is how it saves them), and the linkage
// registers the calling convention defines at entry.
const entryDefined = uint64(1<<axp.V0) |
	uint64(1<<axp.A0) | uint64(1<<axp.A1) | uint64(1<<axp.A2) |
	uint64(1<<axp.A3) | uint64(1<<axp.A4) | uint64(1<<axp.A5) |
	uint64(1<<axp.S0) | uint64(1<<axp.S1) | uint64(1<<axp.S2) |
	uint64(1<<axp.S3) | uint64(1<<axp.S4) | uint64(1<<axp.S5) |
	uint64(1<<axp.FP) | uint64(1<<axp.SP) | uint64(1<<axp.GP) |
	uint64(1<<axp.RA) | uint64(1<<axp.PV) | uint64(1<<axp.AT)

// runChecks walks every procedure with the converged abstract states and
// the iterative-dataflow solutions, evaluating the whole catalog.
func runChecks(p *Program, ip *interp, rep *Report) {
	for pi, pr := range p.Procs {
		if len(pr.Code) == 0 {
			continue
		}
		reach := pr.Reachable()
		liveOut := pr.LiveOutAt()
		df := pr.ReachingDefs()

		add := func(id string, i int, format string, args ...any) {
			rep.add(Finding{
				ID:     id,
				Proc:   pr.Name,
				Addr:   pr.Code[i].Addr,
				Detail: fmt.Sprintf(format, args...),
			})
		}

		for b := range pr.Blocks {
			blk := &pr.Blocks[b]
			if !reach[b] {
				// DF003: no CFG path from the procedure's entries.
				rep.Checked++
				add("DF003", blk.Start, "block of %d instructions is unreachable",
					blk.End-blk.Start)
				continue
			}
			st := ip.blockIn[pi][b]
			defsIn := df.In[b].clone()
			for i := blk.Start; i < blk.End; i++ {
				inst := &pr.Code[i]
				in := inst.In

				// DF001: every GP read must see this cluster's GP.
				ints, _ := in.ReadMasks()
				readsGP := ints&(1<<axp.GP) != 0
				if readsGP && in.Writes() != axp.GP &&
					inst.SetsGP < 0 && inst.SetsGPHi < 0 && pr.Cluster >= 0 {
					rep.Checked++
					want := ip.gpOf(pr.Cluster)
					if v := st.get(axp.GP); v.Kind != Bot && v != want {
						add("DF001", i, "%s reads gp holding %s, want %s",
							in.Op, v, want)
					}
				}

				// DF004: an after-call GP reset whose incoming GP is
				// already valid (program level only).
				if inst.SetsGPHi >= 0 && inst.GPAnchor >= 0 {
					rep.Checked++
					if st.get(axp.GP) == ip.gpOf(inst.SetsGPHi) {
						add("DF004", i, "GP reset after call is redundant: gp already holds %s",
							ip.gpOf(inst.SetsGPHi))
					}
				}

				// DF005: direct-call displacement window and local-entry
				// validity.
				if inst.Call && in.Op == axp.BSR {
					for _, t := range inst.Targets {
						rep.Checked++
						tp := p.Procs[t.Proc]
						disp := (int64(tp.Addr+t.Off) - int64(inst.Addr+4)) / 4
						if disp < axp.BranchDispMin || disp > axp.BranchDispMax {
							add("DF005", i, "bsr %s+%d displacement %d exceeds the 21-bit window",
								tp.Name, t.Off, disp)
						}
						if t.Off == 8 && !tp.PairAtEntry {
							add("DF005", i, "bsr targets local entry %s+8 but no GP pair occupies the entry",
								tp.Name)
						}
					}
				}

				// DF006: a read no definition reaches on any path.
				for r := axp.Reg(0); r < axp.NumRegs; r++ {
					if ints&(1<<r) == 0 || entryDefined&(1<<r) != 0 {
						continue
					}
					rep.Checked++
					if !defsIn.intersects(df.DefsOf[r]) {
						add("DF006", i, "%s reads %s with no reaching definition",
							in.Op, r)
					}
				}

				// DF002/DF007: GAT address-load sites.
				if inst.LitLoad {
					rep.Checked++
					if !inst.LitSlotOK {
						add("DF007", i, "%s", inst.LitDetail)
					}
					if r := in.Writes(); r != axp.Zero &&
						liveOut[i].Int&(1<<r) == 0 {
						add("DF002", i, "address load into dead register %s", r)
					}
				}

				// Advance the reaching-definition set and the abstract
				// state past this instruction (call sites kill everything
				// and are themselves exempt from per-register kills).
				if inst.Call {
					for w := range defsIn {
						defsIn[w] = 0
					}
					defsIn.set(i)
				} else if d := pr.defs(i).Int; d != 0 {
					for r := 0; r < axp.NumRegs; r++ {
						if d&(1<<r) != 0 {
							for w := range defsIn {
								defsIn[w] &^= df.DefsOf[r][w] &^ df.calls[w]
							}
						}
					}
					defsIn.set(i)
				}
				ip.step(pi, i, &st)
			}
		}
	}
}
