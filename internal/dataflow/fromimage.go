package dataflow

import (
	"fmt"
	"sort"

	"repro/internal/axp"
	"repro/internal/objfile"
)

// FromImage builds the unified model by decoding a fully linked
// executable: procedure extents from the symbol table, GP values and slot
// contents from the image's global address tables. Everything is concrete
// here — the analysis runs in KConst and checks the very bytes the
// simulator would execute.
func FromImage(im *objfile.Image) (*Program, error) {
	p := &Program{Source: "image", Clusters: len(im.GATs)}
	p.GPValue = make([]uint64, len(im.GATs))
	for k, g := range im.GATs {
		p.GPValue[k] = g.GP
	}
	clusterOf := func(gp uint64) int {
		for k, g := range im.GATs {
			if g.GP == gp {
				return k
			}
		}
		return -1
	}

	var syms []objfile.ImageSymbol
	for _, s := range im.Symbols {
		if s.Kind == objfile.SymProc && s.Size > 0 {
			syms = append(syms, s)
		}
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i].Addr < syms[j].Addr })

	texts := im.TextSegments()
	for _, s := range syms {
		var seg *objfile.Segment
		for _, t := range texts {
			if s.Addr >= t.Addr && s.Addr+s.Size <= t.Addr+uint64(len(t.Data)) {
				seg = t
				break
			}
		}
		if seg == nil {
			return nil, fmt.Errorf("dataflow: %s [%#x,%#x) outside every text segment",
				s.Name, s.Addr, s.Addr+s.Size)
		}
		code := seg.Data[s.Addr-seg.Addr : s.Addr-seg.Addr+s.Size]
		insts, err := axp.DecodeAll(code)
		if err != nil {
			return nil, fmt.Errorf("dataflow: %s: %w", s.Name, err)
		}

		dp := &Proc{
			Name:    s.Name,
			Addr:    s.Addr,
			Cluster: clusterOf(s.GP),
			Code:    make([]Inst, len(insts)),
		}
		dp.PairAtEntry = len(insts) > 1 &&
			insts[0].Op == axp.LDAH && insts[0].Ra == axp.GP && insts[0].Rb == axp.PV &&
			insts[1].Op == axp.LDA && insts[1].Ra == axp.GP && insts[1].Rb == axp.GP

		for i, in := range insts {
			inst := &dp.Code[i]
			inst.In = in
			inst.Addr = s.Addr + uint64(4*i)
			inst.BranchTo = -1
			inst.SetsGP, inst.SetsGPHi, inst.GPAnchor = -1, -1, -1

			switch {
			case in.Op == axp.JSR:
				inst.Call = true
				inst.Fan = true
			case in.Op == axp.BSR:
				inst.Call = true // targets resolved once every extent is known
			case in.Op == axp.RET:
				inst.Ret = true
			case in.Op == axp.CALLPAL && in.PalFn == axp.PalHalt:
				inst.Halt = true
			case in.Op.IsBranch():
				t := axp.BranchTarget(in, inst.Addr)
				if t >= s.Addr && t < s.Addr+s.Size {
					inst.BranchTo = int((t - s.Addr) / 4)
				}
			}
		}
		p.Procs = append(p.Procs, dp)
	}

	// quadAt reads an initialized quadword from the image.
	quadAt := func(addr uint64) (uint64, bool) {
		for i := range im.Segments {
			sg := &im.Segments[i]
			if addr >= sg.Addr && addr+8 <= sg.Addr+uint64(len(sg.Data)) {
				return objfile.Uint64At(sg.Data, addr-sg.Addr), true
			}
		}
		return 0, false
	}
	inGAT := func(addr uint64) bool {
		for _, g := range im.GATs {
			if addr >= g.Start && addr+8 <= g.End {
				return true
			}
		}
		return false
	}
	inImage := func(addr uint64) bool {
		for i := range im.Segments {
			sg := &im.Segments[i]
			if addr >= sg.Addr && addr <= sg.End() {
				return true
			}
		}
		return false
	}
	inText := func(addr uint64) bool {
		for _, t := range texts {
			if addr >= t.Addr && addr < t.End() {
				return true
			}
		}
		return false
	}

	// The GAT is the image's only read-only address table; loads through it
	// produce known constants. Mutable data stays ⊤.
	p.SlotValue = func(addr uint64) (Value, bool) {
		if !inGAT(addr) {
			return Value{}, false
		}
		q, ok := quadAt(addr)
		if !ok {
			return Value{}, false
		}
		return Value{Kind: KConst, C: q}, true
	}

	// Second pass, with every extent and entry pair known: resolve bsr
	// targets and classify GAT address loads.
	for _, dp := range p.Procs {
		gp := uint64(0)
		if dp.Cluster >= 0 {
			gp = p.GPValue[dp.Cluster]
		}
		for i := range dp.Code {
			inst := &dp.Code[i]
			in := inst.In
			switch {
			case in.Op == axp.BSR:
				t := axp.BranchTarget(in, inst.Addr)
				if ti, off := p.ProcByAddr(t); ti >= 0 {
					inst.Targets = []CallTarget{{Proc: ti, Off: off}}
				} else {
					p.Extra = append(p.Extra, Finding{
						ID: "DF005", Proc: dp.Name, Addr: inst.Addr,
						Detail: fmt.Sprintf("bsr targets %#x, not a procedure entry", t),
					})
				}
			case in.Op == axp.LDQ && in.Rb == axp.GP && dp.Cluster >= 0:
				slot := gp + uint64(int64(in.Disp))
				if !inGAT(slot) {
					break
				}
				inst.LitLoad = true
				inst.LitSlotOK = true
				c, ok := quadAt(slot)
				switch {
				case !ok:
					inst.LitSlotOK = false
					inst.LitDetail = fmt.Sprintf("GAT slot %#x is uninitialized", slot)
				case inText(c):
					if ti, _ := p.ProcByAddr(c); ti < 0 {
						inst.LitSlotOK = false
						inst.LitDetail = fmt.Sprintf("GAT slot %#x holds %#x, inside text but not a procedure entry", slot, c)
					}
				case !inImage(c):
					inst.LitSlotOK = false
					inst.LitDetail = fmt.Sprintf("GAT slot %#x holds %#x, outside the image", slot, c)
				}
			}
		}
	}
	return p, nil
}

// AnalyzeImage decodes a linked image and runs the full analysis.
func AnalyzeImage(im *objfile.Image) (*Report, error) {
	p, err := FromImage(im)
	if err != nil {
		return nil, err
	}
	return Analyze(p), nil
}
