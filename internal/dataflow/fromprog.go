package dataflow

import (
	"fmt"

	"repro/internal/axp"
	"repro/internal/link"
	"repro/internal/om"
)

// FromProg builds the unified model from OM's symbolic form under a
// layout plan (text addresses are the plan's estimates, data and GAT
// addresses are final). It works on the lifted program before any pass
// and on the transformed program after them — the pair `om -lint` runs in
// shadow mode. The program and plan are only read.
func FromProg(pg *om.Prog, pl *om.Plan) (*Program, error) {
	p := &Program{Source: "prog"}
	procIdx := make(map[*om.Proc]int, len(pg.Procs))
	for i, pr := range pg.Procs {
		procIdx[pr] = i
		if g := pl.GPGroup(pr); g >= p.Clusters {
			p.Clusters = g + 1
		}
	}

	// addrValue is the abstract value of a resolved key: procedure
	// addresses stay symbolic (emission may shift them), data and common
	// addresses are final under the plan.
	addrValue := func(key link.TargetKey, extra int64) (Value, error) {
		if pl.IsTextKey(key) {
			k0 := key
			k0.Addend = 0
			if tp := pg.ProcFor(k0); tp != nil {
				return Value{Kind: KAddr, N: procIdx[tp], C: uint64(key.Addend + extra)}, nil
			}
		}
		a, err := pl.AddrOfKey(key)
		if err != nil {
			return top, err
		}
		return Value{Kind: KConst, C: a + uint64(extra)}, nil
	}

	for _, pr := range pg.Procs {
		live := pr.Live()
		dp := &Proc{
			Name:    pr.Name,
			Cluster: pl.GPGroup(pr),
			Code:    make([]Inst, len(live)),
		}
		key := link.TargetKey{Kind: link.TDef, Mod: pr.Mod, Sym: pr.Sym, Name: pr.Name}
		addr, err := pl.AddrOfKey(key)
		if err != nil {
			return nil, fmt.Errorf("dataflow: %s: %w", pr.Name, err)
		}
		dp.Addr = addr

		// Live-index maps: labels on deleted instructions resolve to the
		// next live instruction, mirroring emission's normalizeLabels.
		liveIdx := make(map[*om.SInst]int, len(live))
		labelIdx := make(map[int]int)
		n := 0
		for _, si := range pr.Insts {
			for _, l := range si.Labels {
				labelIdx[l] = n
			}
			if !si.Deleted {
				liveIdx[si] = n
				n++
			}

			// DF008 (structural half): a deleted address load whose literal
			// record says "kept". Every legitimate removal marks the record
			// first — nullification sets Nullified before nullifyInst, the
			// lda/ldah and bsr conversions set Converted, and prologue-pair
			// deletion carries GPD, not Lit — so this state is reachable
			// only by a pass dropping a load whose value may still be
			// consumed (the fault-injection hook's exact mutation).
			if si.Deleted && si.Lit != nil && !si.Lit.Converted && !si.Lit.Nullified {
				p.Extra = append(p.Extra, Finding{
					ID: "DF008", Proc: pr.Name, Addr: addr + uint64(4*n),
					Detail: fmt.Sprintf("address load of %s deleted without conversion or nullification",
						si.Lit.Key.Name),
				})
			}
		}

		for i, si := range live {
			inst := &dp.Code[i]
			inst.In = si.In
			inst.Addr = addr + uint64(4*i)
			inst.BranchTo = -1
			inst.SetsGP, inst.SetsGPHi, inst.GPAnchor = -1, -1, -1
			inst.HasLabel = len(si.Labels) > 0
			if si.Target >= 0 {
				if t, ok := labelIdx[si.Target]; ok && t < len(live) {
					inst.BranchTo = t
				}
			}

			switch {
			case si.Call != nil:
				inst.Call = true
				inst.Targets = []CallTarget{{
					Proc: procIdx[si.Call.Target], Off: si.Call.EntryOffset,
				}}
			case si.In.Op == axp.JSR:
				inst.Call = true
				if si.Use != nil && si.Use.Lit != nil && si.Use.Lit.Lit != nil {
					k := si.Use.Lit.Lit.Key
					off := uint64(k.Addend)
					k0 := k
					k0.Addend = 0
					if tp := pg.ProcFor(k0); tp != nil && (off == 0 || off == 8) {
						inst.Targets = []CallTarget{{Proc: procIdx[tp], Off: off}}
					} else {
						inst.Fan = true
					}
				} else {
					inst.Fan = true
				}
			case si.In.Op == axp.BSR:
				// A live bsr without a Call annotation has no known
				// target procedure; treat it as a computed call.
				inst.Call = true
				inst.Fan = true
			case si.In.Op == axp.RET:
				inst.Ret = true
			case si.In.Op == axp.CALLPAL && si.In.PalFn == axp.PalHalt:
				inst.Halt = true
			}

			// GP-establishing pairs: mark the halves so the interpreter
			// models them as a unit (their displacements are symbolic).
			// A nullified half no longer writes GP and carries no mark.
			if si.GPD != nil && si.In.Writes() == axp.GP {
				if si.GPD.High {
					inst.SetsGPHi = dp.Cluster
					if si.GPD.AfterCall != nil {
						if a, ok := liveIdx[si.GPD.AfterCall]; ok {
							inst.GPAnchor = a
						} else {
							inst.GPAnchor = -2 // anchor call deleted: never valid
						}
					}
				} else {
					inst.SetsGP = dp.Cluster
				}
			}

			// Address loads and their conversions produce the plan's
			// value for the key, whatever their operands.
			switch {
			case si.Lit != nil && !si.Deleted && !si.Lit.Nullified && si.In.Writes() != axp.Zero:
				v, err := addrValue(si.Lit.Key, 0)
				if err != nil {
					return nil, fmt.Errorf("dataflow: %s: %w", pr.Name, err)
				}
				inst.LoadVal = &v
				if !si.Lit.Converted {
					inst.LitLoad = true
					inst.LitSlotOK = true
					g := dp.Cluster
					if slot, ok := pl.SlotAddr(g, si.Lit.Key); !ok {
						inst.LitSlotOK = false
						inst.LitDetail = fmt.Sprintf("no GAT slot for %s in cluster %d", si.Lit.Key.Name, g)
					} else if d := int64(slot) - int64(pl.GPOf(pr)); d < axp.MemDispMin || d > axp.MemDispMax {
						inst.LitSlotOK = false
						inst.LitDetail = fmt.Sprintf("GAT slot for %s at displacement %d, outside the 16-bit window", si.Lit.Key.Name, d)
					}
				}
			case si.GPRel != nil:
				switch si.GPRel.Kind {
				case om.GPRelLDA:
					v, err := addrValue(si.GPRel.Key, si.GPRel.Extra)
					if err != nil {
						return nil, fmt.Errorf("dataflow: %s: %w", pr.Name, err)
					}
					inst.LoadVal = &v
				case om.GPRelLDAH:
					// Half an address: only its paired low-part use can
					// complete it.
					t := top
					inst.LoadVal = &t
				}
			}

			// DF008: the instruction still consumes a literal load's
			// register but the load is gone and the use was never
			// rewritten — the invariant OM's passes must preserve, and
			// the one the fault-injection hook breaks.
			if si.Use != nil && si.Use.Lit != nil && si.GPRel == nil &&
				!(si.Call != nil && si.Call.FromJSR) {
				lit := si.Use.Lit
				broken := lit.Deleted || lit.Lit == nil || lit.Lit.Nullified
				if broken {
					p.Extra = append(p.Extra, Finding{
						ID: "DF008", Proc: pr.Name, Addr: inst.Addr,
						Detail: fmt.Sprintf("%s consumes a deleted or nullified address load", si.In.Op),
					})
				}
			}
		}

		// A GP pair in the first two slots makes entry+8 a local entry.
		dp.PairAtEntry = len(dp.Code) > 1 &&
			dp.Code[0].SetsGPHi >= 0 && dp.Code[0].GPAnchor == -1 &&
			dp.Code[1].SetsGP >= 0
		p.Procs = append(p.Procs, dp)
	}
	return p, nil
}

// AnalyzeProg builds the model from OM's symbolic form and runs the full
// analysis. stage labels the report ("lifted", "optimized").
func AnalyzeProg(pg *om.Prog, pl *om.Plan, stage string) (*Report, error) {
	p, err := FromProg(pg, pl)
	if err != nil {
		return nil, err
	}
	rep := Analyze(p)
	rep.Stage = stage
	return rep, nil
}
