package dataflow

import (
	"testing"

	"repro/internal/axp"
)

func TestLivenessLoop(t *testing.T) {
	// i0: lda t0, 7(zero)      t0 := 7
	// i1: addq t0, t1, t0      loop body reads t0, t1
	// i2: bne t1 -> i1         loop back edge
	// i3: ret
	pr := synth(t,
		Inst{In: axp.MemInst(axp.LDA, axp.T0, axp.Zero, 7)},
		Inst{In: axp.OpInst(axp.ADDQ, axp.T0, axp.T1, axp.T0), HasLabel: true},
		branch(axp.BNE, 1),
		ret(),
	)
	liveIn, _ := pr.Liveness()
	entry := liveIn[pr.BlockOf(0)]
	if entry.Int&(1<<axp.T0) != 0 {
		t.Fatal("t0 live-in at entry despite the definition before its use")
	}
	if entry.Int&(1<<axp.T1) == 0 {
		t.Fatal("t1 read in the loop is not live-in at entry")
	}
	out := pr.LiveOutAt()
	if out[0].Int&(1<<axp.T0) == 0 {
		t.Fatal("t0 dead after its definition despite the loop's use")
	}
}

func TestLivenessCallReadsAll(t *testing.T) {
	// A call must be treated as reading every register: a definition before
	// it is live into the call even with no explicit later use.
	pr := synth(t,
		Inst{In: axp.MemInst(axp.LDA, axp.T5, axp.Zero, 3)},
		Inst{In: axp.BranchInst(axp.BSR, axp.RA, 0), Call: true,
			Targets: []CallTarget{{Proc: 0}}, BranchTo: -1},
		ret(),
	)
	out := pr.LiveOutAt()
	if out[0].Int&(1<<axp.T5) == 0 {
		t.Fatal("t5 dead before a call under the call-reads-all model")
	}
}

func TestReachingDefsCallSiteAliasing(t *testing.T) {
	// A call site defines every register at once. A later definition of one
	// register must not kill the site: its definitions of the other
	// registers still reach.
	//
	// i0: bsr f            defines everything, including t5
	// i1: lda t8, 500(zero)  redefines t8 only
	// i2: stq t5, 0(sp)      reads t5 — the call's definition must reach
	pr := synth(t,
		Inst{In: axp.BranchInst(axp.BSR, axp.RA, 0), Call: true,
			Targets: []CallTarget{{Proc: 0}}, BranchTo: -1},
		Inst{In: axp.MemInst(axp.LDA, axp.T8, axp.Zero, 500)},
		Inst{In: axp.MemInst(axp.STQ, axp.T5, axp.SP, 0)},
		ret(),
	)
	df := pr.ReachingDefs()
	at2 := df.ReachAt(2)
	if !at2.intersects(df.DefsOf[axp.T5]) {
		t.Fatal("call-site definition of t5 killed by an unrelated lda")
	}
	// The lda did kill nothing else's t8 claim but its own site reaches.
	if !at2.intersects(df.DefsOf[axp.T8]) {
		t.Fatal("lda t8 definition does not reach the following use point")
	}
}

func TestReachingDefsCallKillsPriorDefs(t *testing.T) {
	// A call clobbers every register, including a prior call's definitions:
	// nothing from before it reaches past it.
	pr := synth(t,
		Inst{In: axp.MemInst(axp.LDA, axp.T0, axp.Zero, 1)},
		Inst{In: axp.BranchInst(axp.BSR, axp.RA, 0), Call: true,
			Targets: []CallTarget{{Proc: 0}}, BranchTo: -1},
		Inst{In: axp.BranchInst(axp.BSR, axp.RA, 0), Call: true,
			Targets: []CallTarget{{Proc: 0}}, BranchTo: -1},
		Inst{In: axp.OpInst(axp.ADDQ, axp.T0, axp.T0, axp.T0)},
		ret(),
	)
	df := pr.ReachingDefs()
	at3 := df.ReachAt(3)
	var want bitset = newBitset(len(pr.Code))
	want.set(2)
	if !equalBits(at3, want) {
		t.Fatalf("after back-to-back calls, reaching set is %v, want only the second call", at3)
	}
}

func TestReachingDefsMerge(t *testing.T) {
	// Two definitions of t0 on diverging paths both reach the join.
	// i0: beq -> i3
	// i1: lda t0, 1(zero)
	// i2: br -> i4
	// i3: lda t0, 2(zero)
	// i4: addq t0,t0,t0 (join)
	pr := synth(t,
		branch(axp.BEQ, 3),
		Inst{In: axp.MemInst(axp.LDA, axp.T0, axp.Zero, 1)},
		branch(axp.BR, 4),
		Inst{In: axp.MemInst(axp.LDA, axp.T0, axp.Zero, 2), HasLabel: true},
		Inst{In: axp.OpInst(axp.ADDQ, axp.T0, axp.T0, axp.T0), HasLabel: true},
		ret(),
	)
	df := pr.ReachingDefs()
	at4 := df.ReachAt(4)
	var want bitset = newBitset(len(pr.Code))
	want.set(1)
	want.set(3)
	if !equalBits(at4, want) {
		t.Fatalf("join reaching set %v, want sites {1,3}", at4)
	}
}

func TestDominators(t *testing.T) {
	// Diamond: B0 -> {B1, B2} -> B3; idom(B3) = B0.
	pr := synth(t,
		branch(axp.BEQ, 2),                  // B0
		branch(axp.BR, 3),                   // B1
		Inst{In: axp.Nop(), HasLabel: true}, // B2 head
		Inst{In: axp.Nop(), HasLabel: true}, // B3 head (join)
		ret(),
	)
	idom := pr.Dominators()
	b0, b3 := pr.BlockOf(0), pr.BlockOf(3)
	if idom[b0] != -1 {
		t.Fatalf("entry block has idom %d, want -1", idom[b0])
	}
	if idom[b3] != b0 {
		t.Fatalf("join block idom %d, want entry %d", idom[b3], b0)
	}
	if idom[pr.BlockOf(1)] != b0 || idom[pr.BlockOf(2)] != b0 {
		t.Fatal("diamond arms not immediately dominated by the entry")
	}
}

func TestDominatorsUnreachable(t *testing.T) {
	pr := synth(t,
		ret(),
		Inst{In: axp.Nop()}, // dead code past the return
		ret(),
	)
	idom := pr.Dominators()
	if b := pr.BlockOf(1); idom[b] != -1 {
		t.Fatalf("unreachable block has idom %d, want -1", idom[b])
	}
}
