package dataflow

import "repro/internal/axp"

// RegSet is a pair of register bitmasks (integer, floating-point).
type RegSet struct {
	Int, FP uint64
}

const allRegs = ^uint64(0) >> (64 - axp.NumRegs)

// uses returns the registers instruction i reads, under the conservative
// interprocedural model: calls and returns read every register (arguments,
// results, and callee-saved contents flow through them), and so does the
// halt trap.
func (pr *Proc) uses(i int) RegSet {
	in := pr.Code[i].In
	if pr.Code[i].Call || pr.Code[i].Ret || pr.Code[i].Halt {
		return RegSet{Int: allRegs, FP: allRegs}
	}
	ints, fps := in.ReadMasks()
	return RegSet{Int: ints, FP: fps}
}

// defs returns the registers instruction i writes. Calls define every
// register: the callee may clobber anything, so no use after the call can
// be attributed to a definition before it.
func (pr *Proc) defs(i int) RegSet {
	if pr.Code[i].Call {
		return RegSet{Int: allRegs &^ (1 << axp.Zero), FP: allRegs &^ (1 << axp.FZero)}
	}
	in := pr.Code[i].In
	var d RegSet
	if r := in.Writes(); r != axp.Zero {
		d.Int |= 1 << r
	}
	if f := in.WritesF(); f != axp.FZero {
		d.FP |= 1 << f
	}
	if in.Op == axp.CALLPAL && in.PalFn == axp.PalCycles {
		d.Int |= 1 << axp.V0
	}
	return d
}

// Liveness computes per-block live-in/live-out register sets by the
// standard backward iterative dataflow. Index the results by block.
func (pr *Proc) Liveness() (liveIn, liveOut []RegSet) {
	nb := len(pr.Blocks)
	liveIn = make([]RegSet, nb)
	liveOut = make([]RegSet, nb)
	use := make([]RegSet, nb)
	def := make([]RegSet, nb)
	for b, blk := range pr.Blocks {
		for i := blk.Start; i < blk.End; i++ {
			u, d := pr.uses(i), pr.defs(i)
			use[b].Int |= u.Int &^ def[b].Int
			use[b].FP |= u.FP &^ def[b].FP
			def[b].Int |= d.Int
			def[b].FP |= d.FP
		}
	}
	for changed := true; changed; {
		changed = false
		for b := nb - 1; b >= 0; b-- {
			var out RegSet
			for _, s := range pr.Blocks[b].Succs {
				out.Int |= liveIn[s].Int
				out.FP |= liveIn[s].FP
			}
			in := RegSet{
				Int: use[b].Int | (out.Int &^ def[b].Int),
				FP:  use[b].FP | (out.FP &^ def[b].FP),
			}
			if out != liveOut[b] || in != liveIn[b] {
				liveOut[b], liveIn[b] = out, in
				changed = true
			}
		}
	}
	return liveIn, liveOut
}

// LiveOutAt computes the per-instruction live-out sets from the block
// solution by one backward walk per block.
func (pr *Proc) LiveOutAt() []RegSet {
	_, liveOut := pr.Liveness()
	out := make([]RegSet, len(pr.Code))
	for b, blk := range pr.Blocks {
		cur := liveOut[b]
		for i := blk.End - 1; i >= blk.Start; i-- {
			out[i] = cur
			u, d := pr.uses(i), pr.defs(i)
			cur.Int = u.Int | (cur.Int &^ d.Int)
			cur.FP = u.FP | (cur.FP &^ d.FP)
		}
	}
	return out
}

// bitset is a dense bit vector over instruction indexes (definition
// sites).
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (s bitset) set(i int) { s[i/64] |= 1 << (i % 64) }

func (s bitset) orInto(t bitset) bool {
	changed := false
	for i := range s {
		if n := t[i] | s[i]; n != t[i] {
			t[i] = n
			changed = true
		}
	}
	return changed
}

func (s bitset) clone() bitset {
	c := make(bitset, len(s))
	copy(c, s)
	return c
}

func (s bitset) intersects(t bitset) bool {
	for i := range s {
		if s[i]&t[i] != 0 {
			return true
		}
	}
	return false
}

// DefFlow is the reaching-definitions solution: for every block, the set
// of definition sites (instruction indexes) reaching its entry, plus the
// per-register site index needed to answer queries.
type DefFlow struct {
	pr *Proc
	// In[b] is the set of definitions reaching block b's entry.
	In []bitset
	// DefsOf[r] is the set of sites defining integer register r.
	DefsOf [axp.NumRegs]bitset
	// calls marks call sites. A call defines every register at once, so a
	// later definition of one register must not kill the site — its
	// definitions of the other registers still reach.
	calls bitset
}

// ReachingDefs runs the classic forward may-analysis over definition
// sites. Call instructions define every register, which keeps the
// solution conservative across the opaque parts of the call graph.
func (pr *Proc) ReachingDefs() *DefFlow {
	n := len(pr.Code)
	nb := len(pr.Blocks)
	df := &DefFlow{pr: pr, In: make([]bitset, nb)}
	for r := range df.DefsOf {
		df.DefsOf[r] = newBitset(n)
	}
	df.calls = newBitset(n)
	for i := 0; i < n; i++ {
		if pr.Code[i].Call {
			df.calls.set(i)
		}
		d := pr.defs(i).Int
		for r := 0; r < axp.NumRegs; r++ {
			if d&(1<<r) != 0 {
				df.DefsOf[r].set(i)
			}
		}
	}

	gen := make([]bitset, nb)
	killRegs := make([]uint64, nb)
	out := make([]bitset, nb)
	for b, blk := range pr.Blocks {
		df.In[b] = newBitset(n)
		gen[b] = newBitset(n)
		out[b] = newBitset(n)
		for i := blk.Start; i < blk.End; i++ {
			d := pr.defs(i).Int
			if d == 0 {
				continue
			}
			killRegs[b] |= d
			// Later definitions in the block kill earlier ones of the
			// same registers (call sites excepted: they still define
			// every other register).
			for w := range gen[b] {
				for r := 0; r < axp.NumRegs; r++ {
					if d&(1<<r) != 0 {
						gen[b][w] &^= df.DefsOf[r][w] &^ df.calls[w]
					}
				}
			}
			gen[b].set(i)
		}
	}

	preds := make([][]int, nb)
	for b := range pr.Blocks {
		for _, s := range pr.Blocks[b].Succs {
			preds[s] = append(preds[s], b)
		}
	}

	for changed := true; changed; {
		changed = false
		for b := range pr.Blocks {
			// in[b] = union of predecessors' out.
			in := newBitset(n)
			for _, p := range preds[b] {
				out[p].orInto(in)
			}
			if !equalBits(in, df.In[b]) {
				df.In[b] = in
				changed = true
			}
			// out[b] = gen ∪ (in − kill): remove every non-call site
			// defining a register the block redefines, then add the
			// block's own.
			newOut := in.clone()
			for r := 0; r < axp.NumRegs; r++ {
				if killRegs[b]&(1<<r) != 0 {
					for w := range newOut {
						newOut[w] &^= df.DefsOf[r][w] &^ df.calls[w]
					}
				}
			}
			if killRegs[b] == allRegs&^(1<<axp.Zero) {
				// The block contains a call, which kills even prior calls.
				for w := range newOut {
					newOut[w] = 0
				}
			}
			for w := range newOut {
				newOut[w] |= gen[b][w]
			}
			if !equalBits(newOut, out[b]) {
				out[b] = newOut
				changed = true
			}
		}
	}
	return df
}

func equalBits(a, b bitset) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ReachAt returns the definition sites reaching instruction i (before it
// executes), derived from the block solution.
func (df *DefFlow) ReachAt(i int) bitset {
	pr := df.pr
	b := pr.blockOf[i]
	cur := df.In[b].clone()
	for j := pr.Blocks[b].Start; j < i; j++ {
		d := pr.defs(j).Int
		if d == 0 {
			continue
		}
		for r := 0; r < axp.NumRegs; r++ {
			if d&(1<<r) != 0 {
				for w := range cur {
					cur[w] &^= df.DefsOf[r][w] &^ df.calls[w]
				}
			}
		}
		if pr.Code[j].Call {
			for w := range cur {
				cur[w] = 0
			}
		}
		cur.set(j)
	}
	return cur
}

// Dominators computes the immediate-dominator array by the standard
// iterative dataflow over the reverse postorder, with block 0 as the root
// (the entry+8 block, when present, is treated as dominated by the entry:
// both entries share the procedure's prologue contract). Unreachable
// blocks carry -1.
func (pr *Proc) Dominators() []int {
	nb := len(pr.Blocks)
	idom := make([]int, nb)
	for i := range idom {
		idom[i] = -1
	}
	if nb == 0 {
		return idom
	}

	// Reverse postorder from block 0.
	order := make([]int, 0, nb)
	mark := make([]int8, nb)
	var dfs func(int)
	dfs = func(b int) {
		mark[b] = 1
		for _, s := range pr.Blocks[b].Succs {
			if mark[s] == 0 {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	dfs(0)
	for _, e := range pr.Entries() {
		if mark[e] == 0 {
			dfs(e)
		}
	}
	rpo := make([]int, 0, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		rpo = append(rpo, order[i])
	}
	rpoNum := make([]int, nb)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range rpo {
		rpoNum[b] = i
	}

	preds := make([][]int, nb)
	for b := range pr.Blocks {
		for _, s := range pr.Blocks[b].Succs {
			preds[s] = append(preds[s], b)
		}
	}

	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}

	idom[rpo[0]] = rpo[0]
	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			newIdom := -1
			for _, p := range preds[b] {
				if idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom == -1 {
				// A secondary entry (entry+8) with no processed
				// predecessor: root it at the primary entry.
				newIdom = rpo[0]
			}
			if idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	idom[rpo[0]] = -1
	return idom
}
