package rtlib

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/link"
	"repro/internal/objfile"
	"repro/internal/sim"
	"repro/internal/tcc"
)

func TestLibraryExports(t *testing.T) {
	objs, err := StandardObjects()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"__start", "print", "exit", "__divq", "__remq", "labs",
		"memcpy8", "lsum", "ddot", "dsqrt", "dsin", "dexp", "qsort8",
		"xrand", "binsearch", "print_array", "print_fixed", "print_checksum"}
	defined := map[string]bool{}
	for _, o := range objs {
		for _, s := range o.Symbols {
			if s.Kind == objfile.SymProc && s.Exported {
				defined[s.Name] = true
			}
		}
	}
	for _, name := range want {
		if !defined[name] {
			t.Errorf("library does not export %s", name)
		}
	}
}

// runMain builds a program around the given main body and returns its output.
func runMain(t *testing.T, body string) []int64 {
	t.Helper()
	obj, err := tcc.Compile("t", []tcc.Source{{Name: "t", Text: body}}, tcc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	lib, err := StandardObjects()
	if err != nil {
		t.Fatal(err)
	}
	im, err := link.Link(append([]*objfile.Object{obj}, lib...))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(im, sim.Config{MaxInstructions: 50_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exit != 0 {
		t.Fatalf("exit %d, output %v", res.Exit, res.Output)
	}
	return res.Output
}

func TestDivisionMatchesGo(t *testing.T) {
	// The runtime's shift-subtract division must agree with Go's (C-style
	// truncating) division for a broad sample including negatives.
	vals := []int64{1, 2, 3, 7, 10, 97, 1000, 65535, 1 << 40, -1, -2, -7, -97, -(1 << 40), 0, 5, -5}
	divisors := []int64{1, 2, 3, 7, 10, 97, -1, -3, -10, 1 << 20}
	var body string
	body = "long main() {\n"
	var want []int64
	for _, a := range vals {
		for _, b := range divisors {
			body += fmt.Sprintf("\tprint(%d / %d);\n\tprint(%d %% %d);\n", a, b, a, b)
			want = append(want, a/b, a%b)
		}
	}
	body += "\treturn 0;\n}\n"
	got := runMain(t, body)
	if len(got) != len(want) {
		t.Fatalf("got %d outputs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("division case %d: got %d, want %d", i, got[i], want[i])
		}
	}
}

func TestMathAccuracy(t *testing.T) {
	cases := []struct {
		expr string
		want float64
		tol  float64
	}{
		{"dsqrt(2.0)", math.Sqrt2, 1e-5},
		{"dsqrt(144.0)", 12, 1e-5},
		{"dsin(1.0)", math.Sin(1), 1e-4},
		{"dsin(10.0)", math.Sin(10), 1e-3},
		{"dcos(0.5)", math.Cos(0.5), 1e-4},
		{"dexp(1.0)", math.E, 1e-4},
		{"dexp(-2.0)", math.Exp(-2), 1e-4},
		{"dexp(5.0)", math.Exp(5), 0.2},
		{"dpowi(2.0, 10)", 1024, 1e-6},
		{"dpowi(3.0, -2)", 1.0 / 9, 1e-6},
		{"dabs(-4.25)", 4.25, 0},
	}
	body := "long main() {\n"
	for _, c := range cases {
		body += fmt.Sprintf("\tprint_fixed(%s);\n", c.expr)
	}
	body += "\treturn 0;\n}\n"
	got := runMain(t, body)
	for i, c := range cases {
		gotVal := float64(got[i]) / 1e6
		if math.Abs(gotVal-c.want) > c.tol+1e-6 {
			t.Errorf("%s = %v, want %v (tol %v)", c.expr, gotVal, c.want, c.tol)
		}
	}
}

func TestRandAndHashDeterministic(t *testing.T) {
	out1 := runMain(t, `
long main() {
	srand48(99);
	print(xrand());
	print(xrand());
	print(lhash(12345));
	return 0;
}
`)
	out2 := runMain(t, `
long main() {
	srand48(99);
	print(xrand());
	print(xrand());
	print(lhash(12345));
	return 0;
}
`)
	if fmt.Sprint(out1) != fmt.Sprint(out2) {
		t.Fatalf("nondeterministic: %v vs %v", out1, out2)
	}
	for _, v := range out1[:2] {
		if v < 0 {
			t.Errorf("xrand returned negative %d", v)
		}
	}
}

func TestMemHelpers(t *testing.T) {
	out := runMain(t, `
long a[16];
long b[16];
long main() {
	long i;
	for (i = 0; i < 16; i = i + 1) { a[i] = i * i; }
	memcpy8(b, a, 16);
	print(lsum(b, 16));
	memset8(b, 7, 16);
	print(lsum(b, 16));
	lrev(a, 16);
	print(a[0]);
	print(binsearch(b, 16, 7) >= 0);
	print(binsearch(b, 16, 8));
	return 0;
}
`)
	want := []int64{1240, 112, 225, 1, -1}
	if fmt.Sprint(out) != fmt.Sprint(want) {
		t.Fatalf("got %v, want %v", out, want)
	}
}
