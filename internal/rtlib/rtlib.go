// Package rtlib provides the "standard library" of the reproduction: a set
// of Tiny C modules compiled separately (precompiled, like the vendor
// libraries the paper links against) covering startup, integer division,
// printing, memory utilities, math routines, and sorting. Library-to-library
// calls (qsort through a comparison fnptr, print_array calling print, math
// helpers calling each other) reproduce the call structure the paper relies
// on: even interprocedurally optimized user code cannot improve calls into
// or inside these modules.
package rtlib

import (
	"fmt"
	"sync"

	"repro/internal/objfile"
	"repro/internal/tcc"
)

// CrtSource is the startup module: the linker's entry point calls main and
// halts with its result.
const CrtSource = `
// crt0: program startup.
long main();

long __start() {
	__halt(main());
	return 0;
}
`

// RtSource is the core runtime: output, exit, and integer division (the
// Alpha has no integer divide instruction; compilers call these routines).
const RtSource = `
// rt: core runtime services.

long print(long x) {
	__output(x);
	return 0;
}

long exit(long code) {
	__halt(code);
	return 0;
}

long labs(long x) {
	if (x < 0) { return -x; }
	return x;
}

long lmin(long a, long b) {
	if (a < b) { return a; }
	return b;
}

long lmax(long a, long b) {
	if (a > b) { return a; }
	return b;
}

// udivpos divides non-negative a by positive b by shift-subtract.
static long udivpos(long a, long b) {
	long q = 0;
	long r = a;
	long i = 62;
	while (i >= 0) {
		if ((r >> i) >= b) {
			r = r - (b << i);
			q = q + (1 << i);
		}
		i = i - 1;
	}
	return q;
}

long __divq(long a, long b) {
	long neg = 0;
	if (a < 0) { a = -a; neg = !neg; }
	if (b < 0) { b = -b; neg = !neg; }
	long q = udivpos(a, b);
	if (neg) { return -q; }
	return q;
}

long __remq(long a, long b) {
	return a - __divq(a, b) * b;
}
`

// MemSource provides block operations over long/double arrays.
const MemSource = `
// mem: block operations.

long memcpy8(long* dst, long* src, long n) {
	long i;
	for (i = 0; i < n; i = i + 1) {
		dst[i] = src[i];
	}
	return n;
}

long memset8(long* dst, long v, long n) {
	long i;
	for (i = 0; i < n; i = i + 1) {
		dst[i] = v;
	}
	return n;
}

long lsum(long* a, long n) {
	long s = 0;
	long i;
	for (i = 0; i < n; i = i + 1) {
		s = s + a[i];
	}
	return s;
}

long lrev(long* a, long n) {
	long i = 0;
	long j = n - 1;
	while (i < j) {
		long t = a[i];
		a[i] = a[j];
		a[j] = t;
		i = i + 1;
		j = j - 1;
	}
	return n;
}

double ddot(double* a, double* b, long n) {
	double s = 0.0;
	long i;
	for (i = 0; i < n; i = i + 1) {
		s = s + a[i] * b[i];
	}
	return s;
}

long dscale(double* a, long n, double k) {
	long i;
	for (i = 0; i < n; i = i + 1) {
		a[i] = a[i] * k;
	}
	return n;
}

double dmaxv(double* a, long n) {
	double m = a[0];
	long i;
	for (i = 1; i < n; i = i + 1) {
		if (a[i] > m) { m = a[i]; }
	}
	return m;
}
`

// MathSource provides double-precision math routines.
const MathSource = `
// math: double-precision routines built on the FP subset.

double dabs(double x) {
	if (x < 0.0) { return -x; }
	return x;
}

double dsqrt(double x) {
	if (x <= 0.0) { return 0.0; }
	double g = x;
	if (g > 1.0) { g = 0.5 * x + 0.5; }
	long i = 0;
	while (i < 30) {
		g = 0.5 * (g + x / g);
		i = i + 1;
	}
	return g;
}

double dsin(double x) {
	double pi = 3.141592653589793;
	double tp = 6.283185307179586;
	while (x > pi) { x = x - tp; }
	while (x < -pi) { x = x + tp; }
	double x2 = x * x;
	double t = x;
	double s = x;
	long k = 1;
	while (k < 11) {
		double d = (2.0 * k) * (2.0 * k + 1.0);
		t = -(t * x2) / d;
		s = s + t;
		k = k + 1;
	}
	return s;
}

double dcos(double x) {
	return dsin(x + 1.5707963267948966);
}

double dexp(double x) {
	long neg = 0;
	if (x < 0.0) { neg = 1; x = -x; }
	// Scale down into [0,1) by halving, square back up.
	long squarings = 0;
	while (x > 1.0) { x = 0.5 * x; squarings = squarings + 1; }
	double t = 1.0;
	double s = 1.0;
	long k = 1;
	while (k < 14) {
		t = t * x / k;
		s = s + t;
		k = k + 1;
	}
	while (squarings > 0) { s = s * s; squarings = squarings - 1; }
	if (neg) { return 1.0 / s; }
	return s;
}

double dpowi(double x, long n) {
	double r = 1.0;
	long neg = 0;
	if (n < 0) { neg = 1; n = -n; }
	while (n > 0) {
		if (n & 1) { r = r * x; }
		x = x * x;
		n = n >> 1;
	}
	if (neg) { return 1.0 / r; }
	return r;
}
`

// UtilSource provides a PRNG, hashing, searching, and an indirect-call
// quicksort (a library routine that calls through a procedure variable).
const UtilSource = `
// util: PRNG, hashing, sorting.

static long rngState = 88172645463325252;

long srand48(long seed) {
	if (seed == 0) { seed = 1; }
	rngState = seed;
	return 0;
}

long xrand() {
	// xorshift64
	long x = rngState;
	x = x ^ (x << 13);
	x = x ^ ((x >> 7) & 144115188075855871);
	x = x ^ (x << 17);
	rngState = x;
	if (x < 0) { return -x; }
	return x;
}

long lhash(long x) {
	x = x ^ (x >> 33);
	x = x * 1099511628211;
	x = x ^ (x >> 29);
	return x;
}

long binsearch(long* a, long n, long key) {
	long lo = 0;
	long hi = n - 1;
	while (lo <= hi) {
		long mid = (lo + hi) / 2;
		if (a[mid] == key) { return mid; }
		if (a[mid] < key) { lo = mid + 1; }
		else { hi = mid - 1; }
	}
	return -1;
}

// qsort8 sorts a[lo..hi] with a user comparison function: the classic
// library routine that calls through a procedure variable.
long qsort8(long* a, long lo, long hi, fnptr cmp) {
	if (lo >= hi) { return 0; }
	long pivot = a[(lo + hi) / 2];
	long i = lo;
	long j = hi;
	while (i <= j) {
		while (cmp(a[i], pivot) < 0) { i = i + 1; }
		while (cmp(pivot, a[j]) < 0) { j = j - 1; }
		if (i <= j) {
			long t = a[i];
			a[i] = a[j];
			a[j] = t;
			i = i + 1;
			j = j - 1;
		}
	}
	qsort8(a, lo, j, cmp);
	qsort8(a, i, hi, cmp);
	return 0;
}

long issorted(long* a, long n, fnptr cmp) {
	long i;
	for (i = 1; i < n; i = i + 1) {
		if (cmp(a[i], a[i-1]) < 0) { return 0; }
	}
	return 1;
}
`

// IoSource provides printing helpers (library-to-library calls into rt).
const IoSource = `
// io: formatted-ish output built on print.
long print(long x);

long print_array(long* a, long n) {
	long i;
	for (i = 0; i < n; i = i + 1) {
		print(a[i]);
	}
	return n;
}

long print_pair(long a, long b) {
	print(a);
	print(b);
	return 0;
}

// print_fixed prints a double as a fixed-point integer scaled by 1000000.
long print_fixed(double d) {
	double scaled = d * 1000000.0;
	long asInt = scaled;
	print(asInt);
	return 0;
}

long print_checksum(long* a, long n) {
	long h = 0;
	long i;
	for (i = 0; i < n; i = i + 1) {
		h = h * 31 + a[i];
	}
	print(h);
	return h;
}
`

// Module pairs a module name with its source text.
type Module struct {
	Name   string
	Source string
}

// Modules returns the library module list, crt0 first.
func Modules() []Module {
	return []Module{
		{"crt0", CrtSource},
		{"rt", RtSource},
		{"mem", MemSource},
		{"math", MathSource},
		{"util", UtilSource},
		{"io", IoSource},
	}
}

// Objects compiles each library module separately — the modules are
// "precompiled" in the paper's sense; user-side interprocedural compilation
// never sees their sources.
func Objects(opts tcc.Options) ([]*objfile.Object, error) {
	return ObjectsVia(tcc.Compile, opts)
}

// ObjectsVia compiles the library modules through the given tcc.Compile-
// compatible function, letting callers inject a caching compiler (e.g.
// (*buildcache.Cache).Compile) so repeated builds skip recompilation.
func ObjectsVia(compile func(unit string, sources []tcc.Source, opts tcc.Options) (*objfile.Object, error), opts tcc.Options) ([]*objfile.Object, error) {
	var objs []*objfile.Object
	for _, m := range Modules() {
		obj, err := compile("lib"+m.Name, []tcc.Source{{Name: m.Name + ".tc", Text: m.Source}}, opts)
		if err != nil {
			return nil, fmt.Errorf("rtlib: compiling %s: %w", m.Name, err)
		}
		objs = append(objs, obj)
	}
	return objs, nil
}

var (
	stdOnce sync.Once
	stdObjs []*objfile.Object
	stdErr  error
)

// StandardObjects compiles the library with the standard -O2 options. The
// result is compiled once per process and shared by every caller — linking
// never mutates object modules, so the precompiled library is reused across
// benchmarks, runners, and concurrent link jobs instead of being rebuilt.
func StandardObjects() ([]*objfile.Object, error) {
	stdOnce.Do(func() {
		stdObjs, stdErr = Objects(tcc.DefaultOptions())
	})
	return stdObjs, stdErr
}
