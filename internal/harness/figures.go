package harness

import (
	"fmt"
	"strings"
	"time"
)

// mean returns the unweighted arithmetic mean, as the paper's keys do.
func mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

func header(b *strings.Builder, title, paper string) {
	fmt.Fprintf(b, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	if paper != "" {
		fmt.Fprintf(b, "Paper: %s\n", paper)
	}
	b.WriteByte('\n')
}

// Figure3 renders the static fraction of address loads removed (converted
// vs nullified), for each program and build mode, under OM-simple and
// OM-full.
func Figure3(results []*Result) string {
	var b strings.Builder
	header(&b, "Figure 3: static fraction of address loads removed",
		"simple removes ~half (converted+nullified); full removes nearly all")
	fmt.Fprintf(&b, "%-10s | %28s | %28s\n", "", "compile-each", "compile-all")
	fmt.Fprintf(&b, "%-10s | %13s %14s | %13s %14s\n", "program",
		"simple c/n/%", "full c/n/%", "simple c/n/%", "full c/n/%")
	line := strings.Repeat("-", 92)
	fmt.Fprintln(&b, line)
	means := map[string][]float64{}
	cell := func(res *Result, bm BuildMode, lm LinkMode, key string) string {
		st := res.M[Variant{bm, lm}].Static
		pct := 100 * st.AddrRemovedFrac()
		means[key] = append(means[key], pct)
		return fmt.Sprintf("%4d/%4d %4.0f%%", st.AddrConverted, st.AddrNullified, pct)
	}
	for _, res := range results {
		fmt.Fprintf(&b, "%-10s | %s %s | %s %s\n", res.Name,
			cell(res, CompileEach, OMSimple, "es"),
			cell(res, CompileEach, OMFull, "ef"),
			cell(res, CompileAll, OMSimple, "as"),
			cell(res, CompileAll, OMFull, "af"))
	}
	fmt.Fprintln(&b, line)
	fmt.Fprintf(&b, "%-10s | %9.1f%% %9.1f%%      | %9.1f%% %9.1f%%\n", "MEAN",
		mean(means["es"]), mean(means["ef"]), mean(means["as"]), mean(means["af"]))
	return b.String()
}

// Figure4 renders the static fraction of calls that still require PV loads
// (top) and GP-reset code (bottom), for no-OM / OM-simple / OM-full.
func Figure4(results []*Result) string {
	var b strings.Builder
	header(&b, "Figure 4: static fraction of calls requiring PV-loads (top) and GP-reset code (bottom)",
		"no-OM ~85%+ even with interprocedural compilation; simple leaves most PV loads; full leaves only calls through procedure variables")
	for _, section := range []string{"PV-loads", "GP-reset"} {
		fmt.Fprintf(&b, "\n-- %s --\n", section)
		fmt.Fprintf(&b, "%-10s | %25s | %25s\n", "", "compile-each", "compile-all")
		fmt.Fprintf(&b, "%-10s | %7s %8s %7s | %7s %8s %7s\n", "program",
			"no-OM", "simple", "full", "no-OM", "simple", "full")
		line := strings.Repeat("-", 68)
		fmt.Fprintln(&b, line)
		means := map[string][]float64{}
		frac := func(res *Result, bm BuildMode, lm LinkMode) float64 {
			st := res.M[Variant{bm, lm}].Static
			if section == "PV-loads" {
				return 100 * st.PVFracAfter()
			}
			return 100 * st.GPResetFracAfter()
		}
		for _, res := range results {
			vals := []float64{
				frac(res, CompileEach, OMNone), frac(res, CompileEach, OMSimple), frac(res, CompileEach, OMFull),
				frac(res, CompileAll, OMNone), frac(res, CompileAll, OMSimple), frac(res, CompileAll, OMFull),
			}
			for i, k := range []string{"en", "es", "ef", "an", "as", "af"} {
				means[k] = append(means[k], vals[i])
			}
			fmt.Fprintf(&b, "%-10s | %6.1f%% %7.1f%% %6.1f%% | %6.1f%% %7.1f%% %6.1f%%\n",
				res.Name, vals[0], vals[1], vals[2], vals[3], vals[4], vals[5])
		}
		fmt.Fprintln(&b, line)
		fmt.Fprintf(&b, "%-10s | %6.1f%% %7.1f%% %6.1f%% | %6.1f%% %7.1f%% %6.1f%%\n", "MEAN",
			mean(means["en"]), mean(means["es"]), mean(means["ef"]),
			mean(means["an"]), mean(means["as"]), mean(means["af"]))
	}
	return b.String()
}

// Figure5 renders the static fraction of instructions nullified (simple) or
// deleted (full).
func Figure5(results []*Result) string {
	var b strings.Builder
	header(&b, "Figure 5: static fraction of instructions nullified",
		"simple nullifies ~6% (no-ops); full deletes ~11%")
	fmt.Fprintf(&b, "%-10s | %21s | %21s\n", "", "compile-each", "compile-all")
	fmt.Fprintf(&b, "%-10s | %10s %10s | %10s %10s\n", "program", "simple", "full", "simple", "full")
	line := strings.Repeat("-", 62)
	fmt.Fprintln(&b, line)
	means := map[string][]float64{}
	cell := func(res *Result, bm BuildMode, lm LinkMode, key string) float64 {
		st := res.M[Variant{bm, lm}].Static
		pct := 100 * st.NullifiedFrac()
		means[key] = append(means[key], pct)
		return pct
	}
	for _, res := range results {
		fmt.Fprintf(&b, "%-10s | %9.1f%% %9.1f%% | %9.1f%% %9.1f%%\n", res.Name,
			cell(res, CompileEach, OMSimple, "es"), cell(res, CompileEach, OMFull, "ef"),
			cell(res, CompileAll, OMSimple, "as"), cell(res, CompileAll, OMFull, "af"))
	}
	fmt.Fprintln(&b, line)
	fmt.Fprintf(&b, "%-10s | %9.1f%% %9.1f%% | %9.1f%% %9.1f%%\n", "MEAN",
		mean(means["es"]), mean(means["ef"]), mean(means["as"]), mean(means["af"]))
	return b.String()
}

// Figure6 renders the dynamic performance improvement of each OM level over
// the standard link.
func Figure6(results []*Result) string {
	var b strings.Builder
	header(&b, "Figure 6: dynamic improvement over program without link-time optimization",
		"compile-each: simple 1.5%, full 3.8%, full+sched 4.2%; compile-all: 1.35% / 3.4% / 3.6%")
	fmt.Fprintf(&b, "%-10s | %26s | %26s\n", "", "compile-each", "compile-all")
	fmt.Fprintf(&b, "%-10s | %8s %8s %8s | %8s %8s %8s\n", "program",
		"simple", "full", "+sched", "simple", "full", "+sched")
	line := strings.Repeat("-", 72)
	fmt.Fprintln(&b, line)
	means := map[string][]float64{}
	cell := func(res *Result, bm BuildMode, lm LinkMode, key string) float64 {
		v := res.Improvement(bm, lm)
		means[key] = append(means[key], v)
		return v
	}
	for _, res := range results {
		fmt.Fprintf(&b, "%-10s | %7.2f%% %7.2f%% %7.2f%% | %7.2f%% %7.2f%% %7.2f%%\n", res.Name,
			cell(res, CompileEach, OMSimple, "es"), cell(res, CompileEach, OMFull, "ef"),
			cell(res, CompileEach, OMFullSched, "eS"),
			cell(res, CompileAll, OMSimple, "as"), cell(res, CompileAll, OMFull, "af"),
			cell(res, CompileAll, OMFullSched, "aS"))
	}
	fmt.Fprintln(&b, line)
	fmt.Fprintf(&b, "%-10s | %7.2f%% %7.2f%% %7.2f%% | %7.2f%% %7.2f%% %7.2f%%\n", "MEAN",
		mean(means["es"]), mean(means["ef"]), mean(means["eS"]),
		mean(means["as"]), mean(means["af"]), mean(means["aS"]))
	fmt.Fprintf(&b, "%-10s | %7.2f%% %7.2f%% %7.2f%% | %7.2f%% %7.2f%% %7.2f%%\n", "MEDIAN",
		median(means["es"]), median(means["ef"]), median(means["eS"]),
		median(means["as"]), median(means["af"]), median(means["aS"]))
	return b.String()
}

func median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	for i := range s {
		for j := i + 1; j < len(s); j++ {
			if s[j] < s[i] {
				s[i], s[j] = s[j], s[i]
			}
		}
	}
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

// Figure7 renders build times: standard link, interprocedural build, and
// the OM configurations (from objects).
func Figure7(results []*Result) string {
	var b strings.Builder
	header(&b, "Figure 7: build times in seconds",
		"OM a modest constant over ld; interproc build 1-2 orders slower; scheduling superlinear on big-basic-block programs")
	fmt.Fprintf(&b, "%-10s | %9s %9s | %9s %9s %9s %9s\n", "program",
		"std link", "iproc bld", "om none", "om simple", "om full", "om w/schd")
	line := strings.Repeat("-", 76)
	fmt.Fprintln(&b, line)
	secs := func(d time.Duration) float64 { return d.Seconds() }
	for _, res := range results {
		ld := res.M[Variant{CompileEach, LinkStandard}].BuildTime
		iproc := res.CompileTime[CompileAll] + res.M[Variant{CompileAll, LinkStandard}].BuildTime
		fmt.Fprintf(&b, "%-10s | %9.4f %9.4f | %9.4f %9.4f %9.4f %9.4f\n", res.Name,
			secs(ld), secs(iproc),
			secs(res.M[Variant{CompileEach, OMNone}].BuildTime),
			secs(res.M[Variant{CompileEach, OMSimple}].BuildTime),
			secs(res.M[Variant{CompileEach, OMFull}].BuildTime),
			secs(res.M[Variant{CompileEach, OMFullSched}].BuildTime))
	}
	return b.String()
}

// GATTable renders the §5.1 GAT-size reduction.
func GATTable(results []*Result) string {
	var b strings.Builder
	header(&b, "GAT size before and after OM-full (§5.1)",
		"reduced by an order of magnitude, to 3%-15% of original")
	fmt.Fprintf(&b, "%-10s | %22s | %22s\n", "", "compile-each", "compile-all")
	fmt.Fprintf(&b, "%-10s | %8s %8s %5s | %8s %8s %5s\n", "program",
		"before", "after", "%", "before", "after", "%")
	line := strings.Repeat("-", 64)
	fmt.Fprintln(&b, line)
	var pcts []float64
	for _, res := range results {
		se := res.M[Variant{CompileEach, OMFull}].Static
		sa := res.M[Variant{CompileAll, OMFull}].Static
		pe := 100 * float64(se.GATBytesAfter) / float64(se.GATBytesBefore)
		pa := 100 * float64(sa.GATBytesAfter) / float64(sa.GATBytesBefore)
		pcts = append(pcts, pe)
		fmt.Fprintf(&b, "%-10s | %8d %8d %4.0f%% | %8d %8d %4.0f%%\n", res.Name,
			se.GATBytesBefore, se.GATBytesAfter, pe,
			sa.GATBytesBefore, sa.GATBytesAfter, pa)
	}
	fmt.Fprintln(&b, line)
	fmt.Fprintf(&b, "%-10s | mean remaining %.1f%% (compile-each)\n", "MEAN", mean(pcts))
	return b.String()
}

// CodeSizeTable is an extra report: text bytes per variant (the paper's
// "programs can be made 10 percent smaller").
func CodeSizeTable(results []*Result) string {
	var b strings.Builder
	header(&b, "Program text size (bytes)",
		"OM-full makes programs ~10% smaller")
	fmt.Fprintf(&b, "%-10s | %9s %9s %7s\n", "program", "standard", "om-full", "shrink")
	line := strings.Repeat("-", 44)
	fmt.Fprintln(&b, line)
	var pcts []float64
	for _, res := range results {
		base := res.M[Variant{CompileEach, LinkStandard}].TextBytes
		full := res.M[Variant{CompileEach, OMFull}].TextBytes
		pct := 100 * float64(base-full) / float64(base)
		pcts = append(pcts, pct)
		fmt.Fprintf(&b, "%-10s | %9d %9d %6.1f%%\n", res.Name, base, full, pct)
	}
	fmt.Fprintln(&b, line)
	fmt.Fprintf(&b, "%-10s | mean shrink %.1f%%\n", "MEAN", mean(pcts))
	return b.String()
}
