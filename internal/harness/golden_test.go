package harness

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
	"repro/internal/spec"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenBenchmarks are the e2e-matrix programs pinned by the regression
// test: spice (the smallest FP benchmark) and compress (an integer one).
var goldenBenchmarks = []string{"spice", "compress"}

// goldenCell freezes everything the simulator reports for one matrix cell.
// Any engine change that perturbs architectural results or the timing
// model's counters shows up as a diff against testdata/golden_stats.json.
type goldenCell struct {
	Benchmark string    `json:"benchmark"`
	Build     string    `json:"build"`
	Link      string    `json:"link"`
	Exit      int64     `json:"exit"`
	Output    []int64   `json:"output"`
	Stats     sim.Stats `json:"stats"`
}

// TestGoldenStatsMatrix runs the full experiment matrix for the pinned
// benchmarks and requires the simulator's results — program output AND
// every Stats counter — to match the committed golden file exactly. The
// golden was generated with the pre-block-engine interpreter, so this test
// is the proof that execution-core rewrites stay bit-identical. Regenerate
// deliberately with: go test ./internal/harness -run GoldenStats -update
func TestGoldenStatsMatrix(t *testing.T) {
	r, err := New()
	if err != nil {
		t.Fatal(err)
	}
	var cells []goldenCell
	for _, name := range goldenBenchmarks {
		b, ok := spec.ByName(name)
		if !ok {
			t.Fatalf("no benchmark %s", name)
		}
		res, err := r.RunBenchmark(context.Background(), b)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range AllVariants() {
			m := res.M[v]
			cells = append(cells, goldenCell{
				Benchmark: name,
				Build:     v.Build.String(),
				Link:      v.Link.String(),
				Exit:      m.Exit,
				Output:    m.Output,
				Stats:     m.Run,
			})
		}
	}
	got, err := json.MarshalIndent(cells, "", "\t")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "golden_stats.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d cells)", path, len(cells))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (regenerate with -update): %v", err)
	}
	if string(got) != string(want) {
		// Pinpoint the first diverging cell for a readable failure.
		var wantCells []goldenCell
		if err := json.Unmarshal(want, &wantCells); err == nil && len(wantCells) == len(cells) {
			for i := range cells {
				g, w := cells[i], wantCells[i]
				if gj, _ := json.Marshal(g); string(gj) != mustJSON(w) {
					t.Fatalf("simulation results diverged from golden at %s %s/%s:\n got: %+v\nwant: %+v",
						g.Benchmark, g.Build, g.Link, g, w)
				}
			}
		}
		t.Fatal("simulation results diverged from golden (shape change); inspect testdata/golden_stats.json")
	}
}

func mustJSON(v any) string {
	b, _ := json.Marshal(v)
	return string(b)
}
