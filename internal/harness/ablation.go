package harness

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/link"
	"repro/internal/objfile"
	"repro/internal/om"
	"repro/internal/sim"
	"repro/internal/spec"
)

// AblationRow is the measurement for one disabled component on one
// benchmark.
type AblationRow struct {
	Bench       string
	Ablation    om.Ablation
	Improvement float64 // % cycles vs standard link
	Deleted     int
	GATBytes    uint64
}

// RunAblations measures OM-full with each component disabled, over the
// named benchmarks (compile-each mode). Benchmarks fan out across the
// runner's worker pool; rows come back in deterministic bench-major,
// ablation-declaration order regardless of scheduling.
func (r *Runner) RunAblations(ctx context.Context, names []string) ([]AblationRow, error) {
	benches, err := selectBenchmarks(names)
	if err != nil {
		return nil, err
	}
	if _, err := r.libObjects(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	s := r.newSem()
	perBench := make([][]AblationRow, len(benches))
	errs := make([]error, len(benches))
	var wg sync.WaitGroup
	for i, b := range benches {
		wg.Add(1)
		go func(i int, b spec.Benchmark) {
			defer wg.Done()
			release, err := s.acquire(ctx)
			if err != nil {
				errs[i] = err
				return
			}
			defer release()
			perBench[i], errs[i] = r.ablateBenchmark(ctx, b)
			if errs[i] != nil {
				cancel()
			}
		}(i, b)
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, br := range perBench {
		rows = append(rows, br...)
	}
	return rows, nil
}

// ablateBenchmark measures every ablation configuration of one benchmark
// against its standard-link baseline.
func (r *Runner) ablateBenchmark(ctx context.Context, b spec.Benchmark) ([]AblationRow, error) {
	objs, _, err := r.compile(b, CompileEach)
	if err != nil {
		return nil, err
	}
	lib, err := r.libObjects()
	if err != nil {
		return nil, err
	}
	all := append(append([]*objfile.Object(nil), objs...), lib...)
	baseIm, err := link.Link(all)
	if err != nil {
		return nil, err
	}
	baseRun, err := sim.RunContext(ctx, baseIm, r.SimConfig)
	if err != nil {
		return nil, err
	}
	ref := fmt.Sprint(baseRun.Exit, baseRun.Output)
	var rows []AblationRow
	for _, ab := range om.Ablations() {
		p, err := link.Merge(all)
		if err != nil {
			return nil, err
		}
		res, err := om.Run(ctx, p, om.WithAblation(ab))
		if err != nil {
			return nil, fmt.Errorf("%s %s: %w", b.Name, ab.Name(), err)
		}
		im, st := res.Image, res.Stats
		run, err := sim.RunContext(ctx, im, r.SimConfig)
		if err != nil {
			return nil, fmt.Errorf("%s %s: %w", b.Name, ab.Name(), err)
		}
		if got := fmt.Sprint(run.Exit, run.Output); got != ref {
			return nil, fmt.Errorf("%s %s: output diverged", b.Name, ab.Name())
		}
		imp := 100 * (float64(baseRun.Stats.Cycles) - float64(run.Stats.Cycles)) /
			float64(baseRun.Stats.Cycles)
		rows = append(rows, AblationRow{
			Bench: b.Name, Ablation: ab, Improvement: imp,
			Deleted: st.Deleted, GATBytes: st.GATBytesAfter,
		})
		r.logf("  %-10s %-18s improvement=%6.2f%% deleted=%d", b.Name, ab.Name(), imp, st.Deleted)
	}
	return rows, nil
}

// AblationTable renders the ablation study: the cycle improvement of
// OM-full with each component disabled, averaged over the benchmarks.
func AblationTable(rows []AblationRow) string {
	var b strings.Builder
	header(&b, "Ablation: OM-full with one component disabled (dynamic improvement over ld)",
		"the drop from the 'full' row attributes the win to each mechanism")
	// Group by ablation name in declaration order.
	order := []string{}
	byName := map[string][]AblationRow{}
	for _, row := range rows {
		n := row.Ablation.Name()
		if _, ok := byName[n]; !ok {
			order = append(order, n)
		}
		byName[n] = append(byName[n], row)
	}
	fmt.Fprintf(&b, "%-20s | %10s %10s %12s\n", "configuration", "mean impr", "min impr", "mean deleted")
	line := strings.Repeat("-", 60)
	fmt.Fprintln(&b, line)
	for _, n := range order {
		var imps []float64
		minImp := 1e9
		deleted := 0
		for _, row := range byName[n] {
			imps = append(imps, row.Improvement)
			if row.Improvement < minImp {
				minImp = row.Improvement
			}
			deleted += row.Deleted
		}
		fmt.Fprintf(&b, "%-20s | %9.2f%% %9.2f%% %12d\n",
			n, mean(imps), minImp, deleted/len(byName[n]))
	}
	return b.String()
}
