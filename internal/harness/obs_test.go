package harness

import (
	"context"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/spec"
)

// TestRunBenchmarkObservability runs one benchmark with metrics and tracing
// on: every OM cell must carry a checkable decision journal, and the
// registry must show the phase timers and pool utilization.
func TestRunBenchmarkObservability(t *testing.T) {
	r, err := New(WithMetrics(obs.NewRegistry()), WithTrace(true))
	if err != nil {
		t.Fatal(err)
	}
	b, ok := spec.ByName("compress")
	if !ok {
		t.Fatal("no benchmark compress")
	}
	res, err := r.RunBenchmark(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range AllVariants() {
		m := res.M[v]
		if m == nil {
			t.Fatalf("missing variant %v", v)
		}
		if v.Link == LinkStandard {
			if m.Journal != nil {
				t.Errorf("%v: standard link should have no journal", v)
			}
			continue
		}
		if m.Journal == nil {
			t.Errorf("%v: Trace on but no journal", v)
			continue
		}
		if err := m.Journal.Check(); err != nil {
			t.Errorf("%v: journal fails accounting check: %v", v, err)
		}
		// The journal records the OM level; the +sched variant shares the
		// om-full level, so prefix-match the link mode name.
		if !strings.HasPrefix(v.Link.String(), m.Journal.Level) {
			t.Errorf("%v: journal level %q does not match link mode %q", v, m.Journal.Level, v.Link)
		}
	}

	snap := r.Metrics.Snapshot()
	byName := map[string]obs.SnapshotEntry{}
	for _, e := range snap {
		byName[e.Name] = e
	}
	for _, name := range []string{"harness/compile", "harness/link", "harness/sim", "om/lift", "om/passes", "om/emit"} {
		e, ok := byName[name]
		if !ok {
			t.Errorf("metrics missing timer %s", name)
			continue
		}
		if e.Timings == nil || e.Timings.Count == 0 {
			t.Errorf("timer %s recorded nothing", name)
		}
	}
	util := false
	for _, e := range snap {
		if strings.HasPrefix(e.Name, "harness/pool-utilization-j") {
			util = true
			if e.Gauge < 0 || e.Gauge > 1 {
				t.Errorf("pool utilization %v outside [0,1]", e.Gauge)
			}
		}
	}
	if !util {
		t.Error("metrics missing pool-utilization gauge")
	}
}

// TestRunBenchmarkNoObservabilityByDefault: with the fields unset the
// runner attaches no journals (the harness pays nothing for the feature).
func TestRunBenchmarkNoObservabilityByDefault(t *testing.T) {
	res := runOne(t, "compress")
	for v, m := range res.M {
		if m.Journal != nil {
			t.Errorf("%v: journal present without Trace", v)
		}
	}
}
