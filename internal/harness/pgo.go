package harness

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/buildcache"
	"repro/internal/objfile"
	"repro/internal/obs"
	"repro/internal/om"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/spec"
)

// PGOICacheBytes is the instruction-cache size used for both cells of the
// F-PGO experiment. The synthetic suite's text segments (~5KB) fit entirely
// inside the 21064's 8KB I-cache, so at the default size procedure
// placement cannot change the miss count; a 1KB cache restores the capacity
// pressure the paper's full-size workloads put on the real machine.
// Baseline and PGO cells run with the same scaled cache, so the delta
// isolates layout.
const PGOICacheBytes = 1 << 10

// PGORow is the F-PGO measurement for one benchmark: OM-full against
// OM-full plus profile-guided layout, both timed with the scaled I-cache.
type PGORow struct {
	Bench       string
	BaseCycles  uint64
	PGOCycles   uint64
	BaseIMisses uint64
	PGOIMisses  uint64
	// ProfileProcs / ProfileEdges size the collected profile.
	ProfileProcs int
	ProfileEdges int
	// ImageCacheHit reports that the PGO link was served from the image
	// cache (keyed on the profile's content hash) instead of relinked.
	ImageCacheHit bool
	// Journal is the PGO link's decision journal (Runner.Trace only).
	Journal *obs.JournalDoc
}

// CycleDelta is the percent cycle improvement of the PGO cell over the
// OM-full baseline (positive = faster).
func (row PGORow) CycleDelta() float64 {
	if row.BaseCycles == 0 {
		return 0
	}
	return 100 * (float64(row.BaseCycles) - float64(row.PGOCycles)) / float64(row.BaseCycles)
}

// IMissDelta is the percent I-cache-miss reduction of the PGO cell over the
// OM-full baseline (positive = fewer misses).
func (row PGORow) IMissDelta() float64 {
	if row.BaseIMisses == 0 {
		return 0
	}
	return 100 * (float64(row.BaseIMisses) - float64(row.PGOIMisses)) / float64(row.BaseIMisses)
}

// RunPGO runs the F-PGO feedback loop over the named benchmarks
// (compile-each mode): build instrumented, run to collect a trap profile,
// relink OM-full with profile-guided layout, and measure both the baseline
// and the laid-out image under the scaled I-cache. Every stage verifies
// program behavior against the instrumented run. Benchmarks fan out across
// the runner's worker pool; rows come back in name order.
func (r *Runner) RunPGO(ctx context.Context, names []string) ([]PGORow, error) {
	benches, err := selectBenchmarks(names)
	if err != nil {
		return nil, err
	}
	if _, err := r.libObjects(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	s := r.newSem()
	rows := make([]PGORow, len(benches))
	errs := make([]error, len(benches))
	var wg sync.WaitGroup
	for i, b := range benches {
		wg.Add(1)
		go func(i int, b spec.Benchmark) {
			defer wg.Done()
			release, err := s.acquire(ctx)
			if err != nil {
				errs[i] = err
				return
			}
			defer release()
			rows[i], errs[i] = r.pgoBenchmark(ctx, b)
			if errs[i] != nil {
				cancel()
			}
		}(i, b)
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return rows, nil
}

// pgoBenchmark runs the full feedback loop for one benchmark.
func (r *Runner) pgoBenchmark(ctx context.Context, b spec.Benchmark) (PGORow, error) {
	fail := func(stage string, err error) (PGORow, error) {
		return PGORow{}, fmt.Errorf("%s pgo %s: %w", b.Name, stage, err)
	}
	objs, _, err := r.compile(b, CompileEach)
	if err != nil {
		return PGORow{}, err
	}
	lib, err := r.libObjects()
	if err != nil {
		return PGORow{}, err
	}
	all := append(append([]*objfile.Object(nil), objs...), lib...)

	// Training run: instrumented build, trap counts, call-edge profile.
	p, _, err := r.Programs.GetOrMerge(all)
	if err != nil {
		return fail("merge", err)
	}
	iopts := []om.Option{om.WithInstrumentation()}
	if r.Memo != nil {
		iopts = append(iopts, om.WithMemo(r.Memo))
	}
	ires, err := om.Run(ctx, p, iopts...)
	if err != nil {
		return fail("instrument", err)
	}
	irun, err := sim.RunContext(ctx, ires.Image, r.SimConfig)
	if err != nil {
		return fail("train", err)
	}
	ref := fmt.Sprint(irun.Exit, irun.Output)
	prof := profile.FromTraps(om.TrapBlocks(ires.Blocks), irun.Profile)

	// Baseline: OM-full without layout, under the scaled I-cache.
	cfg := r.SimConfig
	cfg.ICacheBytes = PGOICacheBytes
	if p, _, err = r.Programs.GetOrMerge(all); err != nil {
		return fail("merge", err)
	}
	bopts := []om.Option{om.WithLevel(om.LevelFull), om.WithMetrics(r.Metrics)}
	if r.Memo != nil {
		bopts = append(bopts, om.WithMemo(r.Memo))
	}
	bres, err := om.Run(ctx, p, bopts...)
	if err != nil {
		return fail("baseline", err)
	}
	brun, err := sim.RunContext(ctx, bres.Image, cfg)
	if err != nil {
		return fail("baseline", err)
	}

	// PGO cell: relink with the profile, through the image cache. The cache
	// key folds the profile's content hash, so a changed profile can never
	// reuse a stale layout; tracing bypasses the cache because the journal
	// only exists on a live link.
	key, err := buildcache.ImageKey(all, "om-full+pgo", prof.Hash())
	if err != nil {
		return fail("key", err)
	}
	var im *objfile.Image
	var journal *obs.JournalDoc
	cacheHit := false
	if !r.Trace {
		im, cacheHit = r.Cache.GetImage(key)
	}
	if im == nil {
		if p, _, err = r.Programs.GetOrMerge(all); err != nil {
			return fail("merge", err)
		}
		opts := []om.Option{om.WithLevel(om.LevelFull), om.WithProfile(prof), om.WithMetrics(r.Metrics)}
		if r.Memo != nil {
			opts = append(opts, om.WithMemo(r.Memo))
		}
		if r.Trace {
			opts = append(opts, om.WithTrace())
		}
		res, err := om.Run(ctx, p, opts...)
		if err != nil {
			return fail("relink", err)
		}
		im, journal = res.Image, res.Journal
		if err := r.Cache.PutImage(key, im); err != nil {
			return fail("cache", err)
		}
	}
	prun, err := sim.RunContext(ctx, im, cfg)
	if err != nil {
		return fail("pgo", err)
	}

	// The whole loop must be behavior-preserving: instrumented, baseline,
	// and laid-out images agree on exit code and output trace.
	if got := fmt.Sprint(brun.Exit, brun.Output); got != ref {
		return fail("verify", fmt.Errorf("baseline output diverged: %s vs %s", got, ref))
	}
	if got := fmt.Sprint(prun.Exit, prun.Output); got != ref {
		return fail("verify", fmt.Errorf("layout changed behavior: %s vs %s", got, ref))
	}

	row := PGORow{
		Bench:         b.Name,
		BaseCycles:    brun.Stats.Cycles,
		PGOCycles:     prun.Stats.Cycles,
		BaseIMisses:   brun.Stats.ICacheMisses,
		PGOIMisses:    prun.Stats.ICacheMisses,
		ProfileProcs:  len(prof.Procs),
		ProfileEdges:  len(prof.Edges),
		ImageCacheHit: cacheHit,
		Journal:       journal,
	}
	r.logf("  %-10s pgo cycles=%d->%d (%+.2f%%) imiss=%d->%d (%+.2f%%) edges=%d cachehit=%v",
		b.Name, row.BaseCycles, row.PGOCycles, row.CycleDelta(),
		row.BaseIMisses, row.PGOIMisses, row.IMissDelta(), row.ProfileEdges, cacheHit)
	return row, nil
}

// PGORegressions lists the benchmarks whose PGO cell executed more cycles
// than the OM-full baseline — the pgo-smoke gate.
func PGORegressions(rows []PGORow) []string {
	var bad []string
	for _, row := range rows {
		if row.PGOCycles > row.BaseCycles {
			bad = append(bad, fmt.Sprintf("%s: %d -> %d cycles", row.Bench, row.BaseCycles, row.PGOCycles))
		}
	}
	return bad
}

// PGOTable renders the F-PGO experiment: cycle and I-cache-miss deltas of
// profile-guided layout over the OM-full baseline.
func PGOTable(rows []PGORow) string {
	var b strings.Builder
	header(&b, fmt.Sprintf("F-PGO: profile-guided procedure layout over OM-full (%d-byte I-cache)", PGOICacheBytes),
		"Pettis-Hansen chain merging on simulator call-edge profiles; both cells share the scaled I-cache")
	fmt.Fprintf(&b, "%-10s | %11s %11s %8s | %10s %10s %8s | %6s\n", "program",
		"base cyc", "pgo cyc", "Δcyc", "base imiss", "pgo imiss", "Δimiss", "edges")
	line := strings.Repeat("-", 92)
	fmt.Fprintln(&b, line)
	var cycs, imiss []float64
	for _, row := range rows {
		cycs = append(cycs, row.CycleDelta())
		imiss = append(imiss, row.IMissDelta())
		fmt.Fprintf(&b, "%-10s | %11d %11d %7.2f%% | %10d %10d %7.2f%% | %6d\n",
			row.Bench, row.BaseCycles, row.PGOCycles, row.CycleDelta(),
			row.BaseIMisses, row.PGOIMisses, row.IMissDelta(), row.ProfileEdges)
	}
	fmt.Fprintln(&b, line)
	fmt.Fprintf(&b, "%-10s | %11s %11s %7.2f%% | %10s %10s %7.2f%%\n", "MEAN",
		"", "", mean(cycs), "", "", mean(imiss))
	return b.String()
}
