package harness

import (
	"context"
	"strings"
	"testing"

	"repro/internal/buildcache"
)

// TestRunPGO drives the whole F-PGO feedback loop on one call-heavy
// benchmark: the row must carry a real profile, the behavioral verification
// inside pgoBenchmark must hold (RunPGO errors otherwise), and a second run
// against the same cache must serve the relink from the image cache.
func TestRunPGO(t *testing.T) {
	if testing.Short() {
		t.Skip("pgo loop in -short mode")
	}
	cache, err := buildcache.New("")
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}

	rows, err := r.RunPGO(context.Background(), []string{"li"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Bench != "li" {
		t.Fatalf("rows = %+v", rows)
	}
	row := rows[0]
	if row.ProfileProcs == 0 || row.ProfileEdges == 0 {
		t.Errorf("empty profile: %d procs, %d edges", row.ProfileProcs, row.ProfileEdges)
	}
	if row.BaseCycles == 0 || row.PGOCycles == 0 {
		t.Error("empty dynamic stats")
	}
	if row.ImageCacheHit {
		t.Error("first run reported an image cache hit")
	}
	// li is the call-heavy benchmark the layout targets: with the scaled
	// I-cache the laid-out image must not miss more than the baseline.
	if row.PGOIMisses > row.BaseIMisses {
		t.Errorf("layout increased I-cache misses: %d -> %d", row.BaseIMisses, row.PGOIMisses)
	}

	again, err := r.RunPGO(context.Background(), []string{"li"})
	if err != nil {
		t.Fatal(err)
	}
	if !again[0].ImageCacheHit {
		t.Error("second run with unchanged profile did not hit the image cache")
	}
	if again[0].PGOCycles != row.PGOCycles {
		t.Errorf("cached image timed differently: %d vs %d", again[0].PGOCycles, row.PGOCycles)
	}

	body := PGOTable(rows)
	if !strings.Contains(body, "li") || !strings.Contains(body, "F-PGO") {
		t.Errorf("table missing content:\n%s", body)
	}
	if bad := PGORegressions(rows); row.PGOCycles <= row.BaseCycles && len(bad) != 0 {
		t.Errorf("no regression but PGORegressions = %v", bad)
	}
}

// TestRunPGOTraceJournal: with tracing on, the PGO link yields a journal
// whose layout category passes the self-check.
func TestRunPGOTraceJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("pgo loop in -short mode")
	}
	r, err := New(WithTrace(true))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := r.RunPGO(context.Background(), []string{"eqntott"})
	if err != nil {
		t.Fatal(err)
	}
	j := rows[0].Journal
	if j == nil {
		t.Fatal("tracing run produced no journal")
	}
	if err := j.Check(); err != nil {
		t.Fatalf("journal self-check: %v", err)
	}
	if j.Totals["layout"] == 0 {
		t.Error("journal has no layout category")
	}
}
