package harness

import (
	"context"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/spec"
)

// TestRunBenchmarkSpans: a runner handed a parent span records one child
// per pipeline stage — compiles, links (with the om phases nested inside),
// and simulations — even with cells running concurrently.
func TestRunBenchmarkSpans(t *testing.T) {
	tr := obs.NewTrace("harness-test", "matrix", time.Time{}, nil)
	r, err := New(WithSpan(tr.Root()), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	b, ok := spec.ByName("compress")
	if !ok {
		t.Fatal("no benchmark compress")
	}
	if _, err := r.RunBenchmark(context.Background(), b); err != nil {
		t.Fatal(err)
	}
	tr.Root().End()
	doc := tr.Doc()

	counts := map[string]int{}
	doc.Root.Walk(func(sp *obs.SpanDoc) {
		counts[sp.Name]++
		if sp.Duration < 0 {
			t.Errorf("span %s has negative duration %v", sp.Name, sp.Duration)
		}
	})
	// The matrix has 2 build modes and 2×5 cells; at minimum every stage
	// must appear, and sims once per cell.
	if counts["harness/compile"] != 2 {
		t.Errorf("compile spans = %d, want 2 (one per build mode)", counts["harness/compile"])
	}
	if counts["harness/link"] != 10 {
		t.Errorf("link spans = %d, want 10 (one per cell)", counts["harness/link"])
	}
	if counts["harness/sim"] != 10 {
		t.Errorf("sim spans = %d, want 10 (one per cell)", counts["harness/sim"])
	}
	// OM phases nest under the OM links (8 cells; the 2 standard links have
	// none).
	if counts["om/lift"] != 8 || counts["om/passes"] != 8 || counts["om/emit"] != 8 {
		t.Errorf("om phase spans = lift %d / passes %d / emit %d, want 8 each",
			counts["om/lift"], counts["om/passes"], counts["om/emit"])
	}
	link := doc.Find("harness/link")
	if link.Find("om/lift") == nil && counts["om/lift"] > 0 {
		// The first link found may be the standard one; find an OM link.
		found := false
		doc.Root.Walk(func(sp *obs.SpanDoc) {
			if sp.Name == "harness/link" && sp.Find("om/lift") != nil {
				found = true
			}
		})
		if !found {
			t.Error("om phases are not nested inside their link span")
		}
	}
}
