package harness

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/buildcache"
	"repro/internal/spec"
	"repro/internal/tcc"
)

// tinyBenchmark is a small two-module program: fast enough to run the full
// matrix in every test mode, cross-module calls so the link treatments
// actually differ.
func tinyBenchmark() spec.Benchmark {
	return spec.Benchmark{
		Name:      "tiny",
		Character: "test program",
		Modules: []tcc.Source{
			{Name: "tiny_main", Text: `
long helper(long x);
long print(long x);

long table[16];

long main() {
	long s = 0;
	long i;
	for (i = 0; i < 16; i = i + 1) {
		table[i] = helper(i);
		s = s + table[i];
	}
	print(s);
	print(table[7]);
	return s & 255;
}
`},
			{Name: "tiny_help", Text: `
static long scale = 3;
long bias = 11;

long helper(long x) {
	return x * scale + bias;
}
`},
		},
	}
}

// flatten renders every deterministic field of a Result (everything except
// wall-clock timings) as one comparable string.
func flatten(res *Result) string {
	out := fmt.Sprintf("name=%s\n", res.Name)
	for _, v := range AllVariants() {
		m := res.M[v]
		out += fmt.Sprintf("%v/%v: cycles=%d insts=%d exit=%d output=%v text=%d gat=%d",
			v.Build, v.Link, m.Run.Cycles, m.Run.Instructions,
			m.Exit, m.Output, m.TextBytes, m.GATBytes)
		if m.Static != nil {
			out += fmt.Sprintf(" deleted=%d converted=%d", m.Static.Deleted, m.Static.AddrConverted)
		}
		out += "\n"
	}
	return out
}

// TestParallelDeterminism checks the tentpole guarantee: the parallel
// runner's measurements are byte-identical to a serial run at any
// parallelism. (Not short-gated: the race-detector run relies on it to
// exercise the concurrent paths.)
func TestParallelDeterminism(t *testing.T) {
	b := tinyBenchmark()
	var ref string
	for _, par := range []int{1, 8} {
		r, err := New(WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.RunBenchmark(context.Background(), b)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		got := flatten(res)
		if par == 1 {
			ref = got
			continue
		}
		if got != ref {
			t.Errorf("parallelism %d diverged from serial run:\n--- serial ---\n%s--- parallel ---\n%s",
				par, ref, got)
		}
	}
}

// TestRunnerCacheSkipsRecompiles checks the warm-cache path: a second
// benchmark run against the same cache performs zero compiles.
func TestRunnerCacheSkipsRecompiles(t *testing.T) {
	cache, err := buildcache.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b := tinyBenchmark()
	run := func() {
		r, err := New(WithParallelism(4), WithCache(cache))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.RunBenchmark(context.Background(), b); err != nil {
			t.Fatal(err)
		}
	}
	run()
	cold := cache.Stats()
	if cold.Misses == 0 {
		t.Fatal("cold run compiled nothing")
	}
	run()
	warm := cache.Stats()
	if warm.Misses != cold.Misses {
		t.Errorf("warm run compiled %d units; want 0", warm.Misses-cold.Misses)
	}
	if warm.Hits <= cold.Hits {
		t.Errorf("warm run recorded no cache hits: cold=%+v warm=%+v", cold, warm)
	}
}

// TestRunnerCancellation checks that a canceled context aborts the suite
// with the context's error.
func TestRunnerCancellation(t *testing.T) {
	r, err := New()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.RunBenchmark(ctx, tinyBenchmark()); err == nil {
		t.Fatal("expected error from canceled context")
	}
}
