package harness

import (
	"context"
	"testing"

	"repro/internal/spec"
)

// TestRunnerWithLint: a linting runner statically analyzes every OM-linked
// cell's image, attaches the clean om-lint/v1 report to the measurement,
// and — with verification also on — cross-checks the static findings
// against the dynamic verdicts. Standard-link cells carry neither.
func TestRunnerWithLint(t *testing.T) {
	r, err := New(WithLint(true), WithVerify(true))
	if err != nil {
		t.Fatal(err)
	}
	b, ok := spec.ByName("compress")
	if !ok {
		t.Fatal("no benchmark compress")
	}
	res, err := r.RunBenchmark(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	for v, m := range res.M {
		if v.Link == LinkStandard {
			if m.Lint != nil {
				t.Errorf("%v: standard link carries a lint report", v)
			}
			continue
		}
		if m.Lint == nil {
			t.Errorf("%v: OM cell has no lint report", v)
			continue
		}
		if m.Lint.Source != "image" || m.Lint.Checked == 0 {
			t.Errorf("%v: lint report source=%q checked=%d", v, m.Lint.Source, m.Lint.Checked)
		}
		if n := m.Lint.Errors(); n != 0 {
			t.Errorf("%v: %d error findings on a clean image; first: %s", v, n, m.Lint.Findings[0])
		}
		if err := m.Verify.CrossCheckStatic(m.Lint); err != nil {
			t.Errorf("%v: engines disagree: %v", v, err)
		}
	}
}
