// Package harness drives the paper's full experiment matrix: every
// benchmark is built in compile-each and compile-all modes, linked with the
// standard linker and with OM at each level, run in the timing simulator,
// and measured statically and dynamically. The figure generators then
// reproduce the rows of Figures 3-7 and the GAT-size observation of §5.1.
package harness

import (
	"fmt"
	"time"

	"repro/internal/link"
	"repro/internal/objfile"
	"repro/internal/om"
	"repro/internal/rtlib"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/tcc"
)

// BuildMode selects how the benchmark's user sources are compiled.
type BuildMode int

const (
	// CompileEach compiles every source file separately with -O2-style
	// intraprocedural optimization.
	CompileEach BuildMode = iota
	// CompileAll compiles all user sources as one unit with interprocedural
	// optimization (the libraries stay precompiled, as in the paper).
	CompileAll
)

// String names the compilation mode.
func (m BuildMode) String() string {
	if m == CompileAll {
		return "compile-all"
	}
	return "compile-each"
}

// LinkMode selects the link-time treatment.
type LinkMode int

const (
	// LinkStandard is the traditional linker with no optimization.
	LinkStandard LinkMode = iota
	// OMNone runs OM's lift/regenerate pipeline without optimizing.
	OMNone
	// OMSimple is the replace-only level.
	OMSimple
	// OMFull is the full level.
	OMFull
	// OMFullSched is OM-full plus rescheduling and loop alignment.
	OMFullSched
)

var linkModeNames = map[LinkMode]string{
	LinkStandard: "ld", OMNone: "om-none", OMSimple: "om-simple",
	OMFull: "om-full", OMFullSched: "om-full+sched",
}

// String names the link treatment.
func (m LinkMode) String() string { return linkModeNames[m] }

// Variant is one cell of the experiment matrix.
type Variant struct {
	Build BuildMode
	Link  LinkMode
}

// Measurement holds everything recorded for one variant of one benchmark.
type Measurement struct {
	Static    *om.Stats // nil for LinkStandard
	Run       sim.Stats
	Exit      int64
	Output    []int64
	BuildTime time.Duration // link step only (ld or OM)
	TextBytes int
	GATBytes  uint64
}

// Result aggregates one benchmark across the matrix.
type Result struct {
	Name string
	// CompileTime[mode] is the time to compile the user sources.
	CompileTime map[BuildMode]time.Duration
	M           map[Variant]*Measurement
}

// Runner executes the matrix.
type Runner struct {
	// SimConfig is the timing configuration for dynamic measurements.
	SimConfig sim.Config
	// Verbose prints progress lines.
	Verbose bool
	// Log receives progress output when Verbose.
	Log func(format string, args ...any)

	lib []*objfile.Object
}

// NewRunner builds a runner with the default timing model.
func NewRunner() (*Runner, error) {
	lib, err := rtlib.StandardObjects()
	if err != nil {
		return nil, err
	}
	cfg := sim.DefaultConfig()
	cfg.MaxInstructions = 2_000_000_000
	return &Runner{SimConfig: cfg, lib: lib, Log: func(string, ...any) {}}, nil
}

// compile produces the user objects for the given mode, timing the step.
func (r *Runner) compile(b spec.Benchmark, mode BuildMode) ([]*objfile.Object, time.Duration, error) {
	start := time.Now()
	var objs []*objfile.Object
	if mode == CompileEach {
		for _, m := range b.Modules {
			obj, err := tcc.Compile(m.Name, []tcc.Source{m}, tcc.DefaultOptions())
			if err != nil {
				return nil, 0, fmt.Errorf("%s: %w", b.Name, err)
			}
			objs = append(objs, obj)
		}
	} else {
		obj, err := tcc.Compile(b.Name+"_all", b.Modules, tcc.InterprocOptions())
		if err != nil {
			return nil, 0, fmt.Errorf("%s: %w", b.Name, err)
		}
		objs = []*objfile.Object{obj}
	}
	return objs, time.Since(start), nil
}

// linkVariant produces the image (and OM stats) for one link mode.
func (r *Runner) linkVariant(objs []*objfile.Object, mode LinkMode) (*objfile.Image, *om.Stats, time.Duration, error) {
	all := append(append([]*objfile.Object(nil), objs...), r.lib...)
	start := time.Now()
	switch mode {
	case LinkStandard:
		im, err := link.Link(all)
		return im, nil, time.Since(start), err
	default:
		opts := om.Options{}
		switch mode {
		case OMNone:
			opts.Level = om.LevelNone
		case OMSimple:
			opts.Level = om.LevelSimple
		case OMFull:
			opts.Level = om.LevelFull
		case OMFullSched:
			opts.Level = om.LevelFull
			opts.Schedule = true
		}
		im, st, err := om.OptimizeObjects(all, opts)
		return im, st, time.Since(start), err
	}
}

// AllVariants is the full matrix.
func AllVariants() []Variant {
	var vs []Variant
	for _, b := range []BuildMode{CompileEach, CompileAll} {
		for _, l := range []LinkMode{LinkStandard, OMNone, OMSimple, OMFull, OMFullSched} {
			vs = append(vs, Variant{b, l})
		}
	}
	return vs
}

// RunBenchmark measures one benchmark across the whole matrix, verifying
// that every variant produces identical program output.
func (r *Runner) RunBenchmark(b spec.Benchmark) (*Result, error) {
	res := &Result{
		Name:        b.Name,
		CompileTime: make(map[BuildMode]time.Duration),
		M:           make(map[Variant]*Measurement),
	}
	objsByMode := make(map[BuildMode][]*objfile.Object)
	for _, mode := range []BuildMode{CompileEach, CompileAll} {
		objs, dt, err := r.compile(b, mode)
		if err != nil {
			return nil, err
		}
		objsByMode[mode] = objs
		res.CompileTime[mode] = dt
	}

	var refOutput string
	for _, v := range AllVariants() {
		im, st, dt, err := r.linkVariant(objsByMode[v.Build], v.Link)
		if err != nil {
			return nil, fmt.Errorf("%s %v/%v: %w", b.Name, v.Build, v.Link, err)
		}
		run, err := sim.Run(im, r.SimConfig)
		if err != nil {
			return nil, fmt.Errorf("%s %v/%v: %w", b.Name, v.Build, v.Link, err)
		}
		out := fmt.Sprint(run.Exit, run.Output)
		if refOutput == "" {
			refOutput = out
		} else if out != refOutput {
			return nil, fmt.Errorf("%s %v/%v: output diverged: %s vs %s",
				b.Name, v.Build, v.Link, out, refOutput)
		}
		res.M[v] = &Measurement{
			Static:    st,
			Run:       run.Stats,
			Exit:      run.Exit,
			Output:    run.Output,
			BuildTime: dt,
			TextBytes: len(im.TextSegment().Data),
			GATBytes:  im.GATBytes(),
		}
		r.Log("  %-10s %-12s %-13s cycles=%-11d insts=%-10d link=%v",
			b.Name, v.Build, v.Link, run.Stats.Cycles, run.Stats.Instructions, dt.Round(time.Millisecond))
	}
	return res, nil
}

// RunSuite measures every benchmark (or the named subset).
func (r *Runner) RunSuite(names []string) ([]*Result, error) {
	benches := spec.All()
	if len(names) > 0 {
		var sel []spec.Benchmark
		for _, n := range names {
			b, ok := spec.ByName(n)
			if !ok {
				return nil, fmt.Errorf("harness: unknown benchmark %q", n)
			}
			sel = append(sel, b)
		}
		benches = sel
	}
	var results []*Result
	for _, b := range benches {
		r.Log("%s:", b.Name)
		res, err := r.RunBenchmark(b)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	return results, nil
}

// Improvement returns the percent cycle improvement of the optimized link
// over the standard link for the same build mode.
func (res *Result) Improvement(build BuildMode, lk LinkMode) float64 {
	base := res.M[Variant{build, LinkStandard}].Run.Cycles
	opt := res.M[Variant{build, lk}].Run.Cycles
	if base == 0 {
		return 0
	}
	return 100 * (float64(base) - float64(opt)) / float64(base)
}
